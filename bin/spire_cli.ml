(* spire_cli: command-line front end for the Spire reproduction.

     dune exec bin/spire_cli.exe -- redteam
     dune exec bin/spire_cli.exe -- latency --samples 100 --poll 0.05
     dune exec bin/spire_cli.exe -- plant --minutes 30 --rotation 300
     dune exec bin/spire_cli.exe -- breach --craft-days 3 --recovery-days 2
*)

open Cmdliner

let fresh_world () = (Sim.Engine.create (), Sim.Trace.create ())

let mini_scenario =
  {
    Plc.Power.scenario_name = "cli-mini";
    plcs =
      [ { Plc.Power.plc_name = "MAIN"; breaker_names = [ "B10-1"; "B57"; "B56" ]; physical = true } ];
    feeds = [ { Plc.Power.load_name = "Building-A"; path = [ "B10-1"; "B57" ] } ];
  }

(* --- redteam ----------------------------------------------------------------- *)

let redteam full =
  let engine, trace = fresh_world () in
  let scenario = if full then Plc.Power.red_team else mini_scenario in
  let tb = Attack.Testbed.create ~scenario ~engine ~trace () in
  let print title steps =
    Printf.printf "\n== %s ==\n" title;
    List.iter (fun s -> Format.printf "%a@." Attack.Campaign.pp_step s) steps
  in
  print "Commercial SCADA" (Attack.Campaign.run_commercial tb);
  print "Spire: network attacks" (Attack.Campaign.run_spire_network tb);
  print "Spire: replica excursion" (Attack.Campaign.run_excursion tb)

let redteam_cmd =
  let full =
    Arg.(value & flag & info [ "full" ] ~doc:"Use the full 11-PLC red-team topology.")
  in
  Cmd.v
    (Cmd.info "redteam" ~doc:"Run the Section IV red-team campaign against both systems.")
    Term.(const redteam $ full)

(* --- latency ------------------------------------------------------------------ *)

(* Shared by latency/chaos: drop back to sign-per-message with no
   verified-signature cache, for measuring the amortized pipeline's gain. *)
let plain_crypto (config : Prime.Config.t) =
  { config with Prime.Config.batch_signing = false; sig_cache_capacity = 0 }

let no_batch_arg =
  Arg.(
    value & flag
    & info [ "no-batch-signing" ]
        ~doc:"Disable Merkle batch signing and the verified-signature cache.")

(* Spines data-plane escape hatches, parity with --no-batch-signing. *)
let no_route_cache_arg =
  Arg.(
    value & flag
    & info [ "no-route-cache" ]
        ~doc:"Recompute Dijkstra next hops per packet instead of caching per view epoch.")

let no_coalescing_arg =
  Arg.(
    value & flag
    & info [ "no-coalescing" ]
        ~doc:"Send every overlay payload as its own link message instead of coalescing frames.")

let apply_data_plane ~no_route_cache ~no_coalescing (config : Prime.Config.t) =
  let config =
    if no_route_cache then { config with Prime.Config.route_cache = false } else config
  in
  if no_coalescing then { config with Prime.Config.coalescing = false } else config

(* Durable-store escape hatches, parity with the crypto and data-plane
   flags above. *)
let no_durable_store_arg =
  Arg.(
    value & flag
    & info [ "no-durable-store" ]
        ~doc:"Run replicas without the durable store (no WAL, no authenticated checkpoints).")

let checkpoint_interval_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "checkpoint-interval" ] ~docv:"N"
        ~doc:"Executions between authenticated checkpoints (default from the deployment config).")

let apply_store ~no_durable_store ~checkpoint_interval (config : Prime.Config.t) =
  let config =
    if no_durable_store then { config with Prime.Config.durable_store = false } else config
  in
  match checkpoint_interval with
  | None -> config
  | Some k -> { config with Prime.Config.checkpoint_interval = max 1 k }

let latency samples poll gap no_batch no_route_cache no_coalescing no_durable_store
    checkpoint_interval json_file =
  let pr name stats completed =
    Printf.printf "%-24s %3d/%d samples  mean %7.1f ms  p50 %7.1f ms  p99 %7.1f ms\n" name
      completed samples
      (1000.0 *. Sim.Stats.Summary.mean stats)
      (1000.0 *. Sim.Stats.Summary.median stats)
      (1000.0 *. Sim.Stats.Summary.percentile stats 99.0)
  in
  let horizon = 5.0 +. (gap *. float_of_int (samples + 4)) in
  let engine, trace = fresh_world () in
  let config = Prime.Config.power_plant () in
  let config = if no_batch then plain_crypto config else config in
  let config = apply_data_plane ~no_route_cache ~no_coalescing config in
  let config = apply_store ~no_durable_store ~checkpoint_interval config in
  let deployment =
    Spire.Deployment.create ~proxy_poll_period:poll ~engine ~trace ~config mini_scenario
  in
  Sim.Engine.run ~until:5.0 engine;
  let stats, done_ =
    Spire.Measure.spire_reaction_time ~deployment ~breaker:"B57" ~samples ~gap ()
  in
  Sim.Engine.run ~until:horizon engine;
  pr "Spire (6 replicas)" stats !done_;
  let engine2, trace2 = fresh_world () in
  let commercial = Spire.Commercial.create ~engine:engine2 ~trace:trace2 mini_scenario in
  Sim.Engine.run ~until:5.0 engine2;
  let cstats, cdone =
    Spire.Measure.commercial_reaction_time ~engine:engine2 ~commercial ~breaker:"B57" ~samples
      ~gap ()
  in
  Sim.Engine.run ~until:horizon engine2;
  pr "Commercial" cstats !cdone;
  Printf.printf "\nSpire is %.2fx faster (mean).\n"
    (Sim.Stats.Summary.mean cstats /. Sim.Stats.Summary.mean stats);
  match json_file with
  | None -> ()
  | Some file ->
      let doc =
        Obs.Json.Obj
          [
            ("schema", Obs.Json.Str "spire-cli-latency/1");
            ("samples", Obs.Json.Num (float_of_int samples));
            ("poll_period", Obs.Json.Num poll);
            ("spire", Obs.Export.summary_to_json stats);
            ("spire_completed", Obs.Json.Num (float_of_int !done_));
            ("commercial", Obs.Export.summary_to_json cstats);
            ("commercial_completed", Obs.Json.Num (float_of_int !cdone));
            ( "mean_ratio",
              Obs.Json.Num (Sim.Stats.Summary.mean cstats /. Sim.Stats.Summary.mean stats) );
          ]
      in
      (match open_out file with
      | exception Sys_error msg ->
          Printf.eprintf "cannot write %s: %s\n" file msg;
          exit 1
      | oc ->
          output_string oc (Obs.Json.to_string_pretty doc);
          output_char oc '\n';
          close_out oc;
          Printf.eprintf "wrote %s\n%!" file)

let latency_cmd =
  let samples =
    Arg.(value & opt int 50 & info [ "samples" ] ~doc:"Number of breaker flips to time.")
  in
  let poll =
    Arg.(value & opt float 0.1 & info [ "poll" ] ~doc:"Spire proxy polling period (seconds).")
  in
  let gap = Arg.(value & opt float 1.5 & info [ "gap" ] ~doc:"Seconds between flips.") in
  let json =
    Arg.(
      value
      & opt ~vopt:(Some "BENCH_latency_cli.json") (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write latency summaries as JSON to $(docv) (defaults to BENCH_latency_cli.json \
             when given without a value).")
  in
  Cmd.v
    (Cmd.info "latency" ~doc:"Measure breaker-flip-to-HMI reaction time (Section V).")
    Term.(
      const latency $ samples $ poll $ gap $ no_batch_arg $ no_route_cache_arg
      $ no_coalescing_arg $ no_durable_store_arg $ checkpoint_interval_arg $ json)

(* --- plant -------------------------------------------------------------------- *)

let plant minutes rotation =
  let engine, trace = fresh_world () in
  let config = Prime.Config.power_plant () in
  let scenario = Plc.Power.power_plant in
  let deployment =
    Spire.Deployment.create ~n_hmis:3 ~proxy_poll_period:0.25 ~engine ~trace ~config scenario
  in
  Sim.Engine.run ~until:5.0 engine;
  let rng = Sim.Engine.split_rng engine in
  let recovery =
    Diversity.Recovery.create ~engine ~trace ~rng ~n:config.Prime.Config.n
      ~rotation_period:rotation ~downtime:(Float.min 30.0 (rotation /. 3.0))
      ~disk_policy:Diversity.Recovery.Alternate
      ~take_down:(fun i -> Spire.Deployment.take_down_replica deployment i)
      ~bring_up:(fun i _ ~disk ->
        match disk with
        | Diversity.Recovery.Disk_wiped -> Spire.Deployment.bring_up_replica_clean deployment i
        | Diversity.Recovery.Disk_intact -> Spire.Deployment.bring_up_replica_intact deployment i)
      ()
  in
  Diversity.Recovery.start recovery;
  let driver = Spire.Scenario_driver.create deployment in
  Spire.Scenario_driver.start driver ~period:5.0;
  Printf.printf "Running %d simulated minutes (rotation every %.0f s)...\n%!" minutes rotation;
  Sim.Engine.run ~until:(float_of_int minutes *. 60.0) engine;
  Spire.Scenario_driver.stop driver;
  Diversity.Recovery.stop recovery;
  Printf.printf "recoveries: %d, commands: %d, executed: %d\n"
    (Diversity.Recovery.recoveries recovery)
    (Spire.Scenario_driver.commands_issued driver)
    (Prime.Replica.exec_seq
       (Spire.Deployment.replicas deployment).(0).Spire.Deployment.r_replica);
  let digests =
    Array.map
      (fun r -> Scada.State.digest (Scada.Master.state r.Spire.Deployment.r_master))
      (Spire.Deployment.replicas deployment)
  in
  Printf.printf "all masters agree: %b\n"
    (Array.for_all (fun d -> String.equal d digests.(0)) digests)

let plant_cmd =
  let minutes =
    Arg.(value & opt int 20 & info [ "minutes" ] ~doc:"Simulated minutes to run.")
  in
  let rotation =
    Arg.(value & opt float 300.0 & info [ "rotation" ] ~doc:"Proactive recovery period (s).")
  in
  Cmd.v
    (Cmd.info "plant" ~doc:"Run the Section V power-plant deployment.")
    Term.(const plant $ minutes $ rotation)

(* --- breach ------------------------------------------------------------------- *)

let breach craft_days recovery_days horizon =
  let engine = Sim.Engine.create () in
  let rng = Sim.Engine.split_rng engine in
  let day = 86_400.0 in
  let n = 6 and f = 1 in
  let variants = Array.init n (fun _ -> Diversity.Variant.compile rng) in
  let compromised = Array.make n false in
  let breach_day = ref None in
  let rec craft () =
    let target = variants.(Sim.Rng.int rng n) in
    ignore
      (Sim.Engine.schedule engine ~delay:(craft_days *. day) (fun () ->
           let e = Diversity.Variant.Exploit.craft ~name:"x" target in
           Array.iteri
             (fun i v -> if Diversity.Variant.Exploit.works_against e v then compromised.(i) <- true)
             variants;
           let count = Array.fold_left (fun a c -> if c then a + 1 else a) 0 compromised in
           if count > f && !breach_day = None then
             breach_day := Some (Sim.Engine.now engine /. day);
           craft ()))
  in
  craft ();
  if recovery_days > 0.0 then begin
    let next = ref 0 in
    ignore
      (Sim.Engine.every engine ~period:(recovery_days *. day) (fun () ->
           variants.(!next) <- Diversity.Variant.compile rng;
           compromised.(!next) <- false;
           next := (!next + 1) mod n))
  end;
  Sim.Engine.run ~until:(horizon *. day) engine;
  match !breach_day with
  | Some d -> Printf.printf "breached on day %.1f\n" d
  | None -> Printf.printf "never breached in %.0f days\n" horizon

let breach_cmd =
  let craft =
    Arg.(value & opt float 3.0 & info [ "craft-days" ] ~doc:"Days to craft one exploit.")
  in
  let recovery =
    Arg.(
      value & opt float 2.0
      & info [ "recovery-days" ] ~doc:"Per-replica recovery period in days (0 = none).")
  in
  let horizon =
    Arg.(value & opt float 90.0 & info [ "horizon" ] ~doc:"Simulated horizon in days.")
  in
  Cmd.v
    (Cmd.info "breach" ~doc:"Diversity + proactive recovery breach simulation (Section II).")
    Term.(const breach $ craft $ recovery $ horizon)

(* --- chaos -------------------------------------------------------------------- *)

(* Multi-seed soak: hundreds of lossy-class campaigns back to back, one
   line per seed, exiting non-zero if any seed trips an invariant. The
   flight recorder stays off (observe:false) to keep the sweep fast; a
   failing seed is replayed individually with `chaos --seed N` to get
   the full dump. *)
let chaos_soak ~config ~duration ~load_period seeds =
  let failures = ref [] in
  let started = Sys.time () in
  for seed = 1 to seeds do
    let result =
      Chaos.Runner.run ~config ~seed ~duration ~load_period ~observe:false
        ~fault_class:Chaos.Fault.Lossy ()
    in
    let n_viol = List.length result.Chaos.Runner.violations in
    if n_viol > 0 then failures := (seed, result.Chaos.Runner.violations) :: !failures;
    Printf.printf "soak seed %4d: exec_seq %5d, %2d faults, %d violations%s\n%!" seed
      result.Chaos.Runner.final_exec_seq
      (List.length result.Chaos.Runner.schedule)
      n_viol
      (if n_viol > 0 then "  <-- FAIL" else "")
  done;
  let elapsed = Sys.time () -. started in
  match List.rev !failures with
  | [] ->
      Printf.printf "soak: %d lossy seeds, 0 violations (%.1f s)\n" seeds elapsed;
      0
  | fs ->
      Printf.printf "soak: %d/%d seeds VIOLATED invariants (%.1f s)\n" (List.length fs)
        seeds elapsed;
      List.iter
        (fun (seed, vs) ->
          List.iter
            (fun v ->
              Printf.printf "  seed %d t=%.2f [%s] %s\n" seed v.Chaos.Invariant.v_time
                v.Chaos.Invariant.v_invariant v.Chaos.Invariant.v_detail)
            vs)
        fs;
      1

let chaos seed duration load_period soak no_batch no_route_cache no_coalescing
    no_durable_store checkpoint_interval json_file =
  let config = Prime.Config.power_plant () in
  let config = if no_batch then plain_crypto config else config in
  let config = apply_data_plane ~no_route_cache ~no_coalescing config in
  let config = apply_store ~no_durable_store ~checkpoint_interval config in
  match soak with
  | Some seeds when seeds > 0 -> exit (chaos_soak ~config ~duration ~load_period seeds)
  | Some _ | None ->
  let result = Chaos.Runner.run ~config ~seed ~duration ~load_period () in
  Printf.printf "chaos seed %d: %.0f s, %d faults injected\n" seed duration
    (List.length result.Chaos.Runner.schedule);
  List.iter
    (fun (at, desc) -> Printf.printf "  t=%6.1f  %s\n" at desc)
    result.Chaos.Runner.schedule;
  Printf.printf "commands issued: %d, executed through seq %d (%d executions checked)\n"
    result.commands_issued result.final_exec_seq result.executions_checked;
  Printf.printf "view transitions: %d, view-change latencies: [%s] s\n"
    (List.length result.view_transitions)
    (String.concat "; " (List.map (Printf.sprintf "%.2f") result.view_change_latencies));
  Printf.printf "recovery latencies: [%s] s\n"
    (String.concat "; " (List.map (Printf.sprintf "%.2f") result.recovery_latencies));
  Printf.printf "link faults: %d dropped, %d duplicated, %d delayed (%d dedup evictions)\n"
    result.link_dropped result.link_duplicated result.link_delayed result.dedup_evictions;
  (match json_file with
  | None -> ()
  | Some file -> (
      let doc =
        Obs.Json.Obj
          [
            ("schema", Obs.Json.Str "spire-chaos/1");
            ("result", Chaos.Runner.result_to_json result);
          ]
      in
      match open_out file with
      | exception Sys_error msg ->
          Printf.eprintf "cannot write %s: %s\n" file msg;
          exit 1
      | oc ->
          output_string oc (Obs.Json.to_string_pretty doc);
          output_char oc '\n';
          close_out oc;
          Printf.eprintf "wrote %s\n%!" file));
  match result.violations with
  | [] -> Printf.printf "invariants: OK (0 violations)\n"
  | vs ->
      Printf.printf "invariants: %d VIOLATIONS\n" (List.length vs);
      List.iter
        (fun v ->
          Printf.printf "  t=%.2f [%s] %s\n" v.Chaos.Invariant.v_time
            v.Chaos.Invariant.v_invariant v.Chaos.Invariant.v_detail)
        vs;
      exit 1

let chaos_cmd =
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Fault-schedule seed.") in
  let duration =
    Arg.(value & opt float 120.0 & info [ "duration" ] ~doc:"Chaos window in simulated seconds.")
  in
  let load_period =
    Arg.(value & opt float 1.0 & info [ "load-period" ] ~doc:"Seconds between HMI commands.")
  in
  let soak =
    Arg.(
      value
      & opt (some int) None
      & info [ "soak" ] ~docv:"SEEDS"
          ~doc:
            "Soak mode: run $(docv) consecutive seeds (1..$(docv)) of lossy-class fault \
             schedules and report per-seed invariant results; exits non-zero if any seed \
             violates an invariant.")
  in
  let json =
    Arg.(
      value
      & opt ~vopt:(Some "BENCH_chaos_cli.json") (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the full chaos result as JSON to $(docv) (defaults to BENCH_chaos_cli.json \
             when given without a value).")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run a seeded fault-injection scenario with continuous invariant checking; exits \
          non-zero on any violation.")
    Term.(
      const chaos $ seed $ duration $ load_period $ soak $ no_batch_arg $ no_route_cache_arg
      $ no_coalescing_arg $ no_durable_store_arg $ checkpoint_interval_arg $ json)

(* --- monitor ------------------------------------------------------------------ *)

(* Group a probe sample by the shard label suffix ("name@s03"); probes
   without a suffix land in the "" bucket, which sorts first and is
   printed as the plain global section. *)
let group_sample_by_shard sample =
  let buckets = Hashtbl.create 8 in
  List.iter
    (fun (name, metrics) ->
      let label, base =
        match String.rindex_opt name '@' with
        | Some i ->
            (String.sub name (i + 1) (String.length name - i - 1), String.sub name 0 i)
        | None -> ("", name)
      in
      let cell =
        match Hashtbl.find_opt buckets label with
        | Some c -> c
        | None ->
            let c = ref [] in
            Hashtbl.add buckets label c;
            c
      in
      cell := (base, metrics) :: !cell)
    sample;
  Hashtbl.fold (fun label cell acc -> (label, List.rev !cell) :: acc) buckets []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Run a short fault-free deployment with the flight recorder, health
   probes and alert engine switched on, then report what the run can say
   about itself: a live health sample, any alarms, the tail of the
   flight log, and recorder counters. With --shards > 1 the same run
   drives a sharded grid instead: one replicated master group per shard,
   probe output grouped by shard label, and a per-shard exec frontier /
   agreement report from one aggregated query per shard. *)
let monitor duration poll tail shards devices json_file =
  if shards < 1 then begin
    Printf.eprintf "--shards must be >= 1\n";
    exit 2
  end;
  if devices < 0 then begin
    Printf.eprintf "--devices must be >= 0\n";
    exit 2
  end;
  let flight = Obs.Flight.default and probes = Obs.Probe.default in
  let prev_flight = Obs.Flight.enabled flight in
  let prev_probes = Obs.Probe.enabled probes in
  Obs.Flight.reset flight;
  Obs.Flight.set_enabled flight true;
  Obs.Probe.reset probes;
  Obs.Probe.set_enabled probes true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Flight.reset flight;
      Obs.Flight.set_enabled flight prev_flight;
      Obs.Probe.reset probes;
      Obs.Probe.set_enabled probes prev_probes)
  @@ fun () ->
  let engine, trace = fresh_world () in
  Obs.Flight.set_clock flight (fun () -> Sim.Engine.now engine);
  let config = Prime.Config.power_plant () in
  let scenario = if devices > 0 then Plc.Power.synthetic ~devices () else mini_scenario in
  let grid =
    if shards > 1 then
      Some (Spire.Grid.create ~proxy_poll_period:poll ~engine ~trace ~config ~shards scenario)
    else None
  in
  let deployments =
    match grid with
    | Some g -> Array.map (fun s -> s.Spire.Grid.s_deployment) (Spire.Grid.shards g)
    | None ->
        [| Spire.Deployment.create ~proxy_poll_period:poll ~engine ~trace ~config scenario |]
  in
  let alert = Obs.Alert.create ~flight () in
  let sampler =
    Sim.Engine.every engine ~period:0.05 (fun () ->
        Obs.Alert.evaluate alert ~time:(Sim.Engine.now engine) (Obs.Probe.sample probes))
  in
  let drivers = Array.map Spire.Scenario_driver.create deployments in
  Array.iter (fun dr -> Spire.Scenario_driver.start dr ~period:1.0) drivers;
  Sim.Engine.run ~until:duration engine;
  Array.iter Spire.Scenario_driver.stop drivers;
  Sim.Engine.cancel_timer engine sampler;
  let sample = Obs.Probe.sample probes in
  (* Sum the scada state counters across every replica probe (shard
     suffixes included): how digest reads split between cached-root
     lookups and full recomputes, and how often a snapshot blob was
     actually re-encoded. *)
  let digest_cached, digest_recompute, serializations =
    List.fold_left
      (fun (c, r, s) (name, metrics) ->
        if String.length name >= 12 && String.equal (String.sub name 0 12) "scada.state." then
          let get k = match List.assoc_opt k metrics with Some v -> int_of_float v | None -> 0 in
          (c + get "digest_cached", r + get "digest_recompute", s + get "serialize")
        else (c, r, s))
      (0, 0, 0) sample
  in
  let alarms = Obs.Alert.alarms alert in
  let events = Obs.Flight.events flight in
  let tail_events =
    let n = List.length events in
    List.filteri (fun i _ -> i >= n - tail) events
  in
  Printf.printf
    "monitored %.0f s: %d probes, %d flight events (%d warn, %d alarm), %d alarms raised\n"
    duration (List.length sample) (Obs.Flight.total flight)
    (Obs.Flight.warn_count flight)
    (Obs.Flight.alarm_count flight)
    (Obs.Alert.alarm_count alert);
  Printf.printf "state digests: %d cached, %d recomputed; %d serializations\n" digest_cached
    digest_recompute serializations;
  List.iter
    (fun (label, entries) ->
      if String.equal label "" then Printf.printf "\n== health ==\n"
      else Printf.printf "\n== health (%s) ==\n" label;
      List.iter
        (fun (name, metrics) ->
          Printf.printf "  %-24s %s\n" name
            (String.concat "  " (List.map (fun (m, v) -> Printf.sprintf "%s=%g" m v) metrics)))
        entries)
    (group_sample_by_shard sample);
  (* Electrical overlay summary: one line per deployment, straight off
     the live net (ground truth, not the replicated telemetry image). *)
  Printf.printf "\n== power ==\n";
  Array.iteri
    (fun i d ->
      let net = Spire.Deployment.power_net d in
      Printf.printf "  net %d: %.3f Hz  served %.1f MW  shed %.1f MW  tripped lines %d\n" i
        (Power.Net.frequency_hz net) (Power.Net.served_mw net) (Power.Net.shed_mw net)
        (Power.Net.tripped_lines net))
    deployments;
  let tri_counts rows =
    List.fold_left
      (fun (e, d, u) (_, st) ->
        match st with
        | `Energized -> (e + 1, d, u)
        | `De_energized -> (e, d + 1, u)
        | `Unknown -> (e, d, u + 1))
      (0, 0, 0) rows
  in
  let overview = match grid with Some g -> Spire.Grid.overview g | None -> [] in
  if overview <> [] then begin
    Printf.printf "\n== shards ==\n";
    List.iter
      (fun r ->
        let energized, dark, unknown = tri_counts r.Spire.Grid.o_energized in
        Printf.printf
          "  %-4s exec frontier %6d  breakers %3d/%-3d closed  feeds %d lit/%d dark/%d \
           unknown  agreed %b\n"
          r.Spire.Grid.o_label r.Spire.Grid.o_exec_frontier r.Spire.Grid.o_closed
          r.Spire.Grid.o_breakers energized dark unknown r.Spire.Grid.o_agreed)
      overview
  end;
  Printf.printf "\n== alarms ==\n";
  if alarms = [] then Printf.printf "  (none)\n"
  else
    List.iter
      (fun a ->
        Printf.printf "  t=%6.2f  %-18s %s\n" a.Obs.Alert.al_time a.Obs.Alert.al_rule
          a.Obs.Alert.al_detail)
      alarms;
  Printf.printf "\n== flight tail (last %d of %d) ==\n" (List.length tail_events)
    (Obs.Flight.total flight);
  List.iter
    (fun e ->
      Printf.printf "  #%-5d t=%6.2f %-5s %-8s %-18s %s\n" e.Obs.Flight.ev_seq
        e.Obs.Flight.ev_time
        (Obs.Flight.severity_label e.Obs.Flight.ev_severity)
        e.Obs.Flight.ev_subsystem e.Obs.Flight.ev_kind e.Obs.Flight.ev_detail)
    tail_events;
  match json_file with
  | None -> ()
  | Some file -> (
      let num_i n = Obs.Json.Num (float_of_int n) in
      let commands =
        Array.fold_left (fun a dr -> a + Spire.Scenario_driver.commands_issued dr) 0 drivers
      in
      let shard_rows =
        List.map
          (fun r ->
            let energized, dark, unknown = tri_counts r.Spire.Grid.o_energized in
            Obs.Json.Obj
              [
                ("shard", num_i r.Spire.Grid.o_shard);
                ("label", Obs.Json.Str r.Spire.Grid.o_label);
                ("agreed", Obs.Json.Bool r.Spire.Grid.o_agreed);
                ("exec_frontier", num_i r.Spire.Grid.o_exec_frontier);
                ("breakers", num_i r.Spire.Grid.o_breakers);
                ("closed", num_i r.Spire.Grid.o_closed);
                ("feeds_energized", num_i energized);
                ("feeds_dark", num_i dark);
                ("feeds_unknown", num_i unknown);
              ])
          overview
      in
      let power_rows =
        Array.to_list
          (Array.mapi
             (fun i d ->
               let net = Spire.Deployment.power_net d in
               Obs.Json.Obj
                 [
                   ("net", num_i i);
                   ("frequency_hz", Obs.Json.Num (Power.Net.frequency_hz net));
                   ("served_mw", Obs.Json.Num (Power.Net.served_mw net));
                   ("shed_mw", Obs.Json.Num (Power.Net.shed_mw net));
                   ("tripped_lines", num_i (Power.Net.tripped_lines net));
                 ])
             deployments)
      in
      let doc =
        Obs.Json.Obj
          ([
             ("schema", Obs.Json.Str "spire-monitor/1");
             ("duration", Obs.Json.Num duration);
             ("health", Obs.Probe.sample_json sample);
             ("power", Obs.Json.List power_rows);
             ("alarms", Obs.Json.List (List.map Obs.Alert.alarm_to_json alarms));
             ("flight_tail", Obs.Json.List (List.map Obs.Flight.event_to_json tail_events));
             ( "counters",
               Obs.Json.Obj
                 [
                   ("flight_total", num_i (Obs.Flight.total flight));
                   ("flight_retained", num_i (Obs.Flight.retained flight));
                   ("flight_warns", num_i (Obs.Flight.warn_count flight));
                   ("flight_alarms", num_i (Obs.Flight.alarm_count flight));
                   ("alarms_raised", num_i (Obs.Alert.alarm_count alert));
                   ("probes", num_i (Obs.Probe.count probes));
                   ("commands_issued", num_i commands);
                   ("scada_digest_cached", num_i digest_cached);
                   ("scada_digest_recompute", num_i digest_recompute);
                   ("scada_serialize", num_i serializations);
                 ] );
           ]
          @ if shard_rows = [] then [] else [ ("shards", Obs.Json.List shard_rows) ])
      in
      match open_out file with
      | exception Sys_error msg ->
          Printf.eprintf "cannot write %s: %s\n" file msg;
          exit 1
      | oc ->
          output_string oc (Obs.Json.to_string_pretty doc);
          output_char oc '\n';
          close_out oc;
          Printf.eprintf "wrote %s\n%!" file)

let monitor_cmd =
  let duration =
    Arg.(value & opt float 30.0 & info [ "duration" ] ~doc:"Simulated seconds to observe.")
  in
  let poll =
    Arg.(value & opt float 0.1 & info [ "poll" ] ~doc:"Spire proxy polling period (seconds).")
  in
  let tail =
    Arg.(value & opt int 20 & info [ "tail" ] ~doc:"Flight-log events to show from the end.")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ]
          ~doc:
            "Partition the field into this many substation shards, each under its own \
             replicated master group; probe output is grouped per shard.")
  in
  let devices =
    Arg.(
      value & opt int 0
      & info [ "devices" ]
          ~doc:
            "Monitor a synthetic scenario with this many field devices (0 = the built-in \
             mini scenario).")
  in
  let json =
    Arg.(
      value
      & opt ~vopt:(Some "BENCH_monitor_cli.json") (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the health sample, alarms, flight tail and counters as JSON to $(docv) \
             (defaults to BENCH_monitor_cli.json when given without a value).")
  in
  Cmd.v
    (Cmd.info "monitor"
       ~doc:
         "Run a short observed deployment and report health probes, alarms and the flight-log \
          tail.")
    Term.(const monitor $ duration $ poll $ tail $ shards $ devices $ json)

let main =
  Cmd.group
    (Cmd.info "spire_cli" ~version:"1.0"
       ~doc:"Spire intrusion-tolerant SCADA reproduction (DSN 2019).")
    [ redteam_cmd; latency_cmd; plant_cmd; breach_cmd; chaos_cmd; monitor_cmd ]

let () = exit (Cmd.eval main)
