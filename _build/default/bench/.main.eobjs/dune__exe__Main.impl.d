bench/main.ml: Analyze Array Attack Bechamel Benchmark Char Crypto Diversity Harness Hashtbl Int64 List Mana Measure Netbase Plc Prime Printf Scada Sim Spire Staged String Sys Test Time Toolkit
