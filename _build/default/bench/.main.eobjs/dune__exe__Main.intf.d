bench/main.mli:
