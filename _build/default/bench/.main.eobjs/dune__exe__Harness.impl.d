bench/harness.ml: Array Crypto Hashtbl Obj Prime Printf Sim
