(* Additional netbase edge cases: host overload under flood, router TTL
   and return routing, firewall default directions, promiscuous taps,
   switch counters, and IP spoofing interactions with the firewall. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ip = Netbase.Addr.Ip.v

type lan = {
  engine : Sim.Engine.t;
  trace : Sim.Trace.t;
  switch : Netbase.Switch.t;
  host_a : Netbase.Host.t;
  host_b : Netbase.Host.t;
}

let make_lan ?ingress_rate_b () =
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create () in
  let switch = Netbase.Switch.create ~engine ~trace "sw" in
  let host_a = Netbase.Host.create ~engine ~trace "a" in
  let nic_a = Netbase.Host.add_nic host_a ~ip:(ip 10 0 0 1) in
  let (_ : int) = Netbase.Host.plug_into_switch host_a nic_a switch in
  let host_b =
    match ingress_rate_b with
    | Some rate -> Netbase.Host.create ~ingress_rate:rate ~engine ~trace "b"
    | None -> Netbase.Host.create ~engine ~trace "b"
  in
  let nic_b = Netbase.Host.add_nic host_b ~ip:(ip 10 0 0 2) in
  let (_ : int) = Netbase.Host.plug_into_switch host_b nic_b switch in
  { engine; trace; switch; host_a; host_b }

let test_host_overload_sheds_packets () =
  (* A host with little processing capacity drops under a packet flood
     (the host-level half of the DoS model). *)
  let lan = make_lan ~ingress_rate_b:100.0 () in
  let received = ref 0 in
  Netbase.Host.udp_bind lan.host_b ~port:7000 (fun ~src:_ ~dst_port:_ ~size:_ _ ->
      incr received);
  (* Warm ARP. *)
  Netbase.Host.udp_send lan.host_a ~dst_ip:(ip 10 0 0 2) ~dst_port:7000 ~src_port:9 ~size:60
    (Netbase.Packet.Raw "warm");
  Sim.Engine.run ~until:0.5 lan.engine;
  for i = 1 to 2000 do
    ignore
      (Sim.Engine.schedule lan.engine ~delay:(0.001 *. float_of_int i) (fun () ->
           Netbase.Host.udp_send lan.host_a ~dst_ip:(ip 10 0 0 2) ~dst_port:7000 ~src_port:9
             ~size:60 (Netbase.Packet.Raw "x")))
  done;
  Sim.Engine.run ~until:5.0 lan.engine;
  check "some delivered" true (!received > 10);
  check "overload drops occurred" true
    (Sim.Stats.Counter.get (Netbase.Host.counters lan.host_b) "rx.overload_drop" > 0);
  check "well below the offered load" true (!received < 1500)

let test_spoofed_source_passes_address_filter () =
  (* The firewall filters by source address; a spoofed packet claiming an
     allowed address gets through the address check — the reason Spire
     additionally authenticates at the Spines layer. *)
  let lan = make_lan () in
  let fw = Netbase.Host.firewall lan.host_b in
  Netbase.Firewall.set_default fw Netbase.Firewall.Ingress Netbase.Firewall.Deny;
  Netbase.Firewall.add fw
    (Netbase.Firewall.rule ~remote_ip:(ip 10 0 0 50) ~local_port:7000
       ~description:"trusted peer only" Netbase.Firewall.Ingress);
  let received = ref 0 in
  Netbase.Host.udp_bind lan.host_b ~port:7000 (fun ~src:_ ~dst_port:_ ~size:_ _ ->
      incr received);
  (* Honest packet from a non-allowed address: dropped. *)
  Netbase.Host.udp_send lan.host_a ~dst_ip:(ip 10 0 0 2) ~dst_port:7000 ~src_port:9 ~size:60
    (Netbase.Packet.Raw "honest");
  Sim.Engine.run ~until:1.0 lan.engine;
  check_int "honest denied" 0 !received;
  (* Spoofed as the trusted peer: admitted by the address filter. *)
  Netbase.Host.udp_send ~spoof_src:(ip 10 0 0 50) lan.host_a ~dst_ip:(ip 10 0 0 2)
    ~dst_port:7000 ~src_port:9 ~size:60 (Netbase.Packet.Raw "spoofed");
  Sim.Engine.run ~until:2.0 lan.engine;
  check_int "spoof passed the address filter" 1 !received

let test_promiscuous_tap_sees_other_traffic () =
  let lan = make_lan () in
  let host_c = Netbase.Host.create ~engine:lan.engine ~trace:lan.trace "sniffer" in
  let nic_c = Netbase.Host.add_nic host_c ~ip:(ip 10 0 0 3) in
  let (_ : int) = Netbase.Host.plug_into_switch host_c nic_c lan.switch in
  let seen = ref 0 in
  Netbase.Host.set_promiscuous nic_c (Some (fun _ -> incr seen));
  Netbase.Host.udp_bind lan.host_b ~port:7000 (fun ~src:_ ~dst_port:_ ~size:_ _ -> ());
  (* Broadcast ARP is always visible to the sniffer. *)
  Netbase.Host.udp_send lan.host_a ~dst_ip:(ip 10 0 0 2) ~dst_port:7000 ~src_port:9 ~size:60
    (Netbase.Packet.Raw "x");
  Sim.Engine.run ~until:1.0 lan.engine;
  check "sniffer saw the ARP exchange" true (!seen >= 1)

let test_router_multihop_reply_path () =
  (* Request and reply both cross the router (reply routing needs the
     gateway configuration on both sides). *)
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create () in
  let sw1 = Netbase.Switch.create ~engine ~trace "net1" in
  let sw2 = Netbase.Switch.create ~engine ~trace "net2" in
  let router = Netbase.Router.create ~engine ~trace "gw" in
  let (_ : Netbase.Host.nic) = Netbase.Router.add_interface router ~ip:(ip 10 1 0 254) sw1 in
  let (_ : Netbase.Host.nic) = Netbase.Router.add_interface router ~ip:(ip 10 2 0 254) sw2 in
  Netbase.Router.permit router ~src_subnet:(ip 10 1 0 0) ~dst_subnet:(ip 10 2 0 0)
    ~description:"fwd" ();
  Netbase.Router.permit router ~src_subnet:(ip 10 2 0 0) ~dst_subnet:(ip 10 1 0 0)
    ~description:"rev" ();
  let client = Netbase.Host.create ~engine ~trace "client" in
  let c_nic = Netbase.Host.add_nic client ~ip:(ip 10 1 0 5) in
  let (_ : int) = Netbase.Host.plug_into_switch client c_nic sw1 in
  Netbase.Host.set_default_gateway client (ip 10 1 0 254);
  let server = Netbase.Host.create ~engine ~trace "server" in
  let s_nic = Netbase.Host.add_nic server ~ip:(ip 10 2 0 7) in
  let (_ : int) = Netbase.Host.plug_into_switch server s_nic sw2 in
  Netbase.Host.set_default_gateway server (ip 10 2 0 254);
  let got_reply = ref false in
  Netbase.Host.udp_bind server ~port:7000 (fun ~src ~dst_port:_ ~size:_ _ ->
      Netbase.Host.udp_send server ~dst_ip:src.Netbase.Addr.ip ~dst_port:src.Netbase.Addr.port
        ~src_port:7000 ~size:30 (Netbase.Packet.Raw "pong"));
  Netbase.Host.udp_bind client ~port:7001 (fun ~src:_ ~dst_port:_ ~size:_ _ ->
      got_reply := true);
  Netbase.Host.udp_send client ~dst_ip:(ip 10 2 0 7) ~dst_port:7000 ~src_port:7001 ~size:30
    (Netbase.Packet.Raw "ping");
  Sim.Engine.run ~until:3.0 engine;
  check "request-reply across router" true !got_reply

let test_firewall_egress_default_deny () =
  let lan = make_lan () in
  let fw = Netbase.Host.firewall lan.host_a in
  Netbase.Firewall.set_default fw Netbase.Firewall.Egress Netbase.Firewall.Deny;
  let received = ref 0 in
  Netbase.Host.udp_bind lan.host_b ~port:7000 (fun ~src:_ ~dst_port:_ ~size:_ _ ->
      incr received);
  Netbase.Host.udp_send lan.host_a ~dst_ip:(ip 10 0 0 2) ~dst_port:7000 ~src_port:9 ~size:60
    (Netbase.Packet.Raw "blocked");
  Sim.Engine.run ~until:1.0 lan.engine;
  check_int "egress denied" 0 !received;
  check "counted on sender" true
    (Sim.Stats.Counter.get (Netbase.Host.counters lan.host_a) "tx.firewall_drop" > 0)

let test_udp_bind_conflict_rejected () =
  let lan = make_lan () in
  Netbase.Host.udp_bind lan.host_b ~port:7000 (fun ~src:_ ~dst_port:_ ~size:_ _ -> ());
  Alcotest.check_raises "double bind"
    (Invalid_argument "Host.udp_bind: b port 7000 already bound") (fun () ->
      Netbase.Host.udp_bind lan.host_b ~port:7000 (fun ~src:_ ~dst_port:_ ~size:_ _ -> ()));
  (* Unbinding frees the port. *)
  Netbase.Host.udp_unbind lan.host_b ~port:7000;
  Netbase.Host.udp_bind lan.host_b ~port:7000 (fun ~src:_ ~dst_port:_ ~size:_ _ -> ());
  check "rebound after unbind" true true

let test_no_route_is_counted () =
  let lan = make_lan () in
  (* No NIC on that subnet and no gateway. *)
  Netbase.Host.udp_send lan.host_a ~dst_ip:(ip 172 16 0 1) ~dst_port:7000 ~src_port:9 ~size:60
    (Netbase.Packet.Raw "lost");
  Sim.Engine.run ~until:0.5 lan.engine;
  check_int "no-route counted" 1
    (Sim.Stats.Counter.get (Netbase.Host.counters lan.host_a) "tx.no_route")

let suite =
  [
    ("host overload sheds packets", `Quick, test_host_overload_sheds_packets);
    ("spoofed source passes address filter", `Quick, test_spoofed_source_passes_address_filter);
    ("promiscuous tap", `Quick, test_promiscuous_tap_sees_other_traffic);
    ("router multihop reply path", `Quick, test_router_multihop_reply_path);
    ("firewall egress default deny", `Quick, test_firewall_egress_default_deny);
    ("udp bind conflict rejected", `Quick, test_udp_bind_conflict_rejected);
    ("no route counted", `Quick, test_no_route_is_counted);
  ]

let () = Alcotest.run "netbase-extra" [ ("netbase-extra", suite) ]
