test/test_diversity.ml: Alcotest Diversity Int64 List QCheck QCheck_alcotest Sim
