test/test_netbase_extra.mli:
