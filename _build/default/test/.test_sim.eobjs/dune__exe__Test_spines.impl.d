test/test_spines.ml: Alcotest Array Int64 List Netbase Printf QCheck QCheck_alcotest Queue Sim Spines
