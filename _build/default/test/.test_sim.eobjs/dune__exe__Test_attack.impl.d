test/test_attack.ml: Alcotest Array Attack List Netbase Plc Prime Printf Sim Spire String
