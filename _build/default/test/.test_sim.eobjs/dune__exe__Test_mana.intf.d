test/test_mana.mli:
