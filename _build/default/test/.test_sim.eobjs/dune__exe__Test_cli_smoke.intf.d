test/test_cli_smoke.mli:
