test/test_netbase_extra.ml: Alcotest Netbase Sim
