test/test_scada.ml: Alcotest Gen List Plc QCheck QCheck_alcotest Result Scada String
