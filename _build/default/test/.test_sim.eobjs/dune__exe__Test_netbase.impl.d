test/test_netbase.ml: Alcotest Hashtbl List Netbase Option QCheck QCheck_alcotest Sim
