test/test_cli_smoke.ml: Alcotest Array Diversity List Plc Prime Printf Scada Sim Spire
