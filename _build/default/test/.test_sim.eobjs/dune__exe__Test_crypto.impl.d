test/test_crypto.ml: Alcotest Char Crypto Gen List Printf QCheck QCheck_alcotest String
