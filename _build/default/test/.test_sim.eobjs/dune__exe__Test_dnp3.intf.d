test/test_dnp3.mli:
