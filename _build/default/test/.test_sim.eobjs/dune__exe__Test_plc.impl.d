test/test_plc.ml: Alcotest Array Gen List Netbase Plc Printf QCheck QCheck_alcotest Sim
