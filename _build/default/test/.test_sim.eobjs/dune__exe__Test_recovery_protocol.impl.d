test/test_recovery_protocol.ml: Alcotest Array Crypto Hashtbl List Obj Prime Printf Sim
