test/test_scada.mli:
