test/test_spines.mli:
