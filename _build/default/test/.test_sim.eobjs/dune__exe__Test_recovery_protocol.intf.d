test/test_recovery_protocol.mli:
