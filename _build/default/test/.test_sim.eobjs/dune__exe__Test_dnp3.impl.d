test/test_dnp3.ml: Alcotest Array Bytes Char Gen List Plc Prime Printf QCheck QCheck_alcotest Scada Sim Spire
