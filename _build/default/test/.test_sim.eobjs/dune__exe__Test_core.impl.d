test/test_core.ml: Alcotest Array Crypto List Plc Prime Scada Sim Spire String
