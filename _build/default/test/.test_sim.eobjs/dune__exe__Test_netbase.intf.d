test/test_netbase.mli:
