test/test_mana.ml: Alcotest Array List Mana Netbase Sim String
