test/test_session.ml: Alcotest Array List Netbase Printf Sim Spines
