test/test_prime.ml: Alcotest Array Crypto Hashtbl Int64 List Obj Option Prime Printf QCheck QCheck_alcotest Sim
