(* Tests for the field-device layer: Modbus framing, the emulated PLC,
   breakers, and the power topology scenarios. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Modbus ---------------------------------------------------------------- *)

let roundtrip_request req =
  Plc.Modbus.decode_request (Plc.Modbus.encode_request req)

let roundtrip_response resp =
  Plc.Modbus.decode_response (Plc.Modbus.encode_response resp)

let test_modbus_request_roundtrips () =
  let cases =
    [
      Plc.Modbus.Read_coils { addr = 0; count = 7 };
      Plc.Modbus.Write_single_coil { addr = 3; value = true };
      Plc.Modbus.Write_single_coil { addr = 4; value = false };
      Plc.Modbus.Read_holding_registers { addr = 100; count = 16 };
      Plc.Modbus.Write_single_register { addr = 2; value = 0xBEEF };
    ]
  in
  List.iteri
    (fun i body ->
      let framed = { Plc.Modbus.transaction = 42 + i; unit_id = 1; body } in
      let decoded = roundtrip_request framed in
      check (Printf.sprintf "case %d" i) true (decoded = framed))
    cases

let test_modbus_response_roundtrips () =
  let cases =
    [
      Plc.Modbus.Coil_written { addr = 3; value = true };
      Plc.Modbus.Registers [ 0; 1; 0xFFFF; 7 ];
      Plc.Modbus.Register_written { addr = 9; value = 123 };
      Plc.Modbus.Exception_response { function_code = 1; exception_code = 2 };
    ]
  in
  List.iteri
    (fun i body ->
      let framed = { Plc.Modbus.transaction = i; unit_id = 3; body } in
      let decoded = roundtrip_response framed in
      check (Printf.sprintf "case %d" i) true (decoded = framed))
    cases

let test_modbus_coils_roundtrip_with_padding () =
  (* Coil responses pad to whole bytes; truncation recovers the count. *)
  let bits = [ true; false; true; true; false; false; true; false; true; true ] in
  let framed = { Plc.Modbus.transaction = 1; unit_id = 1; body = Plc.Modbus.Coils bits } in
  match roundtrip_response framed with
  | { Plc.Modbus.body = Plc.Modbus.Coils decoded; _ } ->
      Alcotest.(check (list bool)) "padded bits" bits
        (Plc.Modbus.truncate_coils decoded (List.length bits))
  | _ -> Alcotest.fail "wrong body"

let test_modbus_decode_errors () =
  check "short frame" true
    (match Plc.Modbus.decode_request "abc" with
    | exception Plc.Modbus.Decode_error _ -> true
    | _ -> false);
  (* Unsupported function code. *)
  let bogus = "\x00\x01\x00\x00\x00\x02\x01\x2b" in
  check "unsupported function" true
    (match Plc.Modbus.decode_request bogus with
    | exception Plc.Modbus.Decode_error _ -> true
    | _ -> false)

let prop_modbus_write_coil_roundtrip =
  QCheck.Test.make ~count:200 ~name:"modbus write-coil roundtrips for arbitrary addresses"
    QCheck.(pair (int_bound 0xFFFF) bool)
    (fun (addr, value) ->
      let framed =
        { Plc.Modbus.transaction = 7; unit_id = 1;
          body = Plc.Modbus.Write_single_coil { addr; value } }
      in
      roundtrip_request framed = framed)

let prop_modbus_registers_roundtrip =
  QCheck.Test.make ~count:200 ~name:"modbus register list roundtrips"
    QCheck.(list_of_size Gen.(int_range 0 20) (int_bound 0xFFFF))
    (fun regs ->
      let framed =
        { Plc.Modbus.transaction = 7; unit_id = 1; body = Plc.Modbus.Registers regs }
      in
      roundtrip_response framed = framed)

(* --- Breaker ------------------------------------------------------------------ *)

let test_breaker_actuation_delay () =
  let engine = Sim.Engine.create () in
  let b = Plc.Breaker.create ~engine ~actuation_delay:0.1 "B1" in
  check "initially closed" true (Plc.Breaker.is_closed b);
  Plc.Breaker.command b Plc.Breaker.Open;
  check "not yet moved" true (Plc.Breaker.is_closed b);
  Sim.Engine.run ~until:0.05 engine;
  check "still moving" true (Plc.Breaker.is_closed b);
  Sim.Engine.run ~until:0.2 engine;
  check "now open" false (Plc.Breaker.is_closed b);
  check_int "one actuation" 1 (Plc.Breaker.actuations b)

let test_breaker_superseded_command () =
  let engine = Sim.Engine.create () in
  let b = Plc.Breaker.create ~engine ~actuation_delay:0.1 "B1" in
  Plc.Breaker.command b Plc.Breaker.Open;
  Sim.Engine.run ~until:0.05 engine;
  (* Countermand before the first actuation lands. *)
  Plc.Breaker.command b Plc.Breaker.Closed;
  Sim.Engine.run ~until:0.5 engine;
  check "stays closed" true (Plc.Breaker.is_closed b);
  check_int "no net actuation" 0 (Plc.Breaker.actuations b)

let test_breaker_force_immediate () =
  let engine = Sim.Engine.create () in
  let b = Plc.Breaker.create ~engine "B1" in
  let changes = ref 0 in
  Plc.Breaker.on_change b (fun _ -> incr changes);
  Plc.Breaker.force b Plc.Breaker.Open;
  check "immediate" false (Plc.Breaker.is_closed b);
  Plc.Breaker.toggle_force b;
  check "toggled back" true (Plc.Breaker.is_closed b);
  check_int "two change events" 2 !changes

(* --- Device --------------------------------------------------------------------- *)

let make_device () =
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create () in
  let d = Plc.Device.create ~engine ~trace ~name:"TEST" ~n_coils:3 in
  let breakers =
    Array.init 3 (fun i ->
        let b = Plc.Breaker.create ~engine ~actuation_delay:0.05 (Printf.sprintf "B%d" i) in
        Plc.Device.wire_breaker d ~coil:i b;
        b)
  in
  (engine, d, breakers)

let test_device_coil_write_drives_breaker () =
  let engine, d, breakers = make_device () in
  let req =
    { Plc.Modbus.transaction = 1; unit_id = 1;
      body = Plc.Modbus.Write_single_coil { addr = 1; value = false } }
  in
  (match Plc.Device.handle_request d req with
  | { Plc.Modbus.body = Plc.Modbus.Coil_written { addr = 1; value = false }; _ } -> ()
  | _ -> Alcotest.fail "unexpected response");
  Sim.Engine.run ~until:1.0 engine;
  check "breaker opened" false (Plc.Breaker.is_closed breakers.(1));
  check "others untouched" true (Plc.Breaker.is_closed breakers.(0))

let test_device_holding_registers_reflect_actual () =
  let engine, d, breakers = make_device () in
  Plc.Breaker.force breakers.(2) Plc.Breaker.Open;
  Sim.Engine.run ~until:0.1 engine;
  let req =
    { Plc.Modbus.transaction = 2; unit_id = 1;
      body = Plc.Modbus.Read_holding_registers { addr = 0; count = 3 } }
  in
  match Plc.Device.handle_request d req with
  | { Plc.Modbus.body = Plc.Modbus.Registers regs; _ } ->
      Alcotest.(check (list int)) "actual positions" [ 1; 1; 0 ] regs
  | _ -> Alcotest.fail "unexpected response"

let test_device_out_of_range_is_exception () =
  let _, d, _ = make_device () in
  let req =
    { Plc.Modbus.transaction = 3; unit_id = 1;
      body = Plc.Modbus.Read_coils { addr = 0; count = 99 } }
  in
  match Plc.Device.handle_request d req with
  | { Plc.Modbus.body = Plc.Modbus.Exception_response { exception_code = 2; _ }; _ } -> ()
  | _ -> Alcotest.fail "expected illegal-address exception"

let test_device_compromised_logic_ignores_commands () =
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create () in
  let d = Plc.Device.create ~engine ~trace ~name:"VICTIM" ~n_coils:1 in
  let b = Plc.Breaker.create ~engine ~actuation_delay:0.05 "B0" in
  Plc.Device.wire_breaker d ~coil:0 b;
  let host = Netbase.Host.create ~engine ~trace "plc-host" in
  let nic = Netbase.Host.add_nic host ~ip:(Netbase.Addr.Ip.v 10 9 9 2) in
  let attacker_host = Netbase.Host.create ~engine ~trace "attacker" in
  let a_nic = Netbase.Host.add_nic attacker_host ~ip:(Netbase.Addr.Ip.v 10 9 9 3) in
  let switch = Netbase.Switch.create ~engine ~trace "lan" in
  let (_ : int) = Netbase.Host.plug_into_switch host nic switch in
  let (_ : int) = Netbase.Host.plug_into_switch attacker_host a_nic switch in
  Plc.Device.serve_on d host;
  check "logic intact" false (Plc.Device.logic_compromised d);
  (* Attacker uploads malicious logic, then the operator's write is
     silently discarded while the attacker can actuate directly. *)
  Netbase.Host.udp_send attacker_host ~dst_ip:(Netbase.Addr.Ip.v 10 9 9 2)
    ~dst_port:Plc.Device.maintenance_port ~src_port:5000 ~size:64
    (Plc.Device.Maint_upload "evil-logic");
  Sim.Engine.run ~until:1.0 engine;
  check "logic compromised" true (Plc.Device.logic_compromised d);
  let req =
    { Plc.Modbus.transaction = 4; unit_id = 1;
      body = Plc.Modbus.Write_single_coil { addr = 0; value = false } }
  in
  ignore (Plc.Device.handle_request d req);
  Sim.Engine.run ~until:2.0 engine;
  check "operator command ignored" true (Plc.Breaker.is_closed b);
  Netbase.Host.udp_send attacker_host ~dst_ip:(Netbase.Addr.Ip.v 10 9 9 2)
    ~dst_port:Plc.Device.maintenance_port ~src_port:5000 ~size:32
    (Plc.Device.Maint_actuate { coil = 0; close = false });
  Sim.Engine.run ~until:3.0 engine;
  check "attacker actuates" false (Plc.Breaker.is_closed b)

let test_device_maintenance_actuate_needs_compromise () =
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create () in
  let d = Plc.Device.create ~engine ~trace ~name:"STOCK" ~n_coils:1 in
  let b = Plc.Breaker.create ~engine "B0" in
  Plc.Device.wire_breaker d ~coil:0 b;
  let host = Netbase.Host.create ~engine ~trace "plc-host" in
  let nic = Netbase.Host.add_nic host ~ip:(Netbase.Addr.Ip.v 10 9 9 2) in
  let attacker_host = Netbase.Host.create ~engine ~trace "attacker" in
  let a_nic = Netbase.Host.add_nic attacker_host ~ip:(Netbase.Addr.Ip.v 10 9 9 3) in
  let switch = Netbase.Switch.create ~engine ~trace "lan" in
  let (_ : int) = Netbase.Host.plug_into_switch host nic switch in
  let (_ : int) = Netbase.Host.plug_into_switch attacker_host a_nic switch in
  Plc.Device.serve_on d host;
  Netbase.Host.udp_send attacker_host ~dst_ip:(Netbase.Addr.Ip.v 10 9 9 2)
    ~dst_port:Plc.Device.maintenance_port ~src_port:5000 ~size:32
    (Plc.Device.Maint_actuate { coil = 0; close = false });
  Sim.Engine.run ~until:1.0 engine;
  check "stock firmware ignores direct actuation" true (Plc.Breaker.is_closed b)

(* --- Power scenarios --------------------------------------------------------------- *)

let test_power_energized_paths () =
  let s = Plc.Power.red_team in
  let closed_except names name = not (List.mem name names) in
  let e = Plc.Power.energized s ~is_closed:(closed_except [ "B10-1" ]) in
  check "Building-A dark" true (List.assoc "Building-A" e = false);
  check "Building-B dark (shares B10-1)" true (List.assoc "Building-B" e = false);
  check "Building-C on" true (List.assoc "Building-C" e = true)

let test_power_find_plc () =
  check "finds MAIN" true (Plc.Power.find_plc Plc.Power.red_team "MAIN" <> None);
  check "missing plc" true (Plc.Power.find_plc Plc.Power.red_team "NOPE" = None)

let suite =
  [
    ("modbus request roundtrips", `Quick, test_modbus_request_roundtrips);
    ("modbus response roundtrips", `Quick, test_modbus_response_roundtrips);
    ("modbus coils padding", `Quick, test_modbus_coils_roundtrip_with_padding);
    ("modbus decode errors", `Quick, test_modbus_decode_errors);
    ("breaker actuation delay", `Quick, test_breaker_actuation_delay);
    ("breaker superseded command", `Quick, test_breaker_superseded_command);
    ("breaker force immediate", `Quick, test_breaker_force_immediate);
    ("device coil write drives breaker", `Quick, test_device_coil_write_drives_breaker);
    ("device holding registers reflect actual", `Quick, test_device_holding_registers_reflect_actual);
    ("device out of range exception", `Quick, test_device_out_of_range_is_exception);
    ("device compromised logic", `Quick, test_device_compromised_logic_ignores_commands);
    ("device stock firmware resists actuation", `Quick, test_device_maintenance_actuate_needs_compromise);
    ("power energized paths", `Quick, test_power_energized_paths);
    ("power find plc", `Quick, test_power_find_plc);
    QCheck_alcotest.to_alcotest prop_modbus_write_coil_roundtrip;
    QCheck_alcotest.to_alcotest prop_modbus_registers_roundtrip;
  ]

let () = Alcotest.run "plc" [ ("plc", suite) ]
