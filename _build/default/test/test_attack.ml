(* Tests for the red-team campaign: the commercial system falls exactly
   the way Section IV-B describes, and Spire holds at every step. *)

let check = Alcotest.(check bool)

let make_testbed () =
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create () in
  (* A small scenario keeps the campaign fast; the bench runs the full
     red-team topology. *)
  let scenario =
    {
      Plc.Power.scenario_name = "campaign-mini";
      plcs = [ { Plc.Power.plc_name = "MAIN"; breaker_names = [ "B10-1"; "B57"; "B56" ]; physical = true } ];
      feeds = [ { Plc.Power.load_name = "Building-A"; path = [ "B10-1"; "B57" ] } ];
    }
  in
  Attack.Testbed.create ~scenario ~engine ~trace ()

let find_step steps ~attack =
  match List.find_opt (fun s -> String.equal s.Attack.Campaign.attack attack) steps with
  | Some s -> s
  | None -> Alcotest.fail ("step missing: " ^ attack)

let test_commercial_campaign_breaches () =
  let tb = make_testbed () in
  let steps = Attack.Campaign.run_commercial tb in
  let expect_breach attack =
    let s = find_step steps ~attack in
    check (attack ^ " breached") true s.Attack.Campaign.succeeded
  in
  expect_breach "exploit historian service";
  expect_breach "scan operations network";
  expect_breach "PLC memory dump (maintenance port)";
  expect_breach "upload modified PLC configuration";
  expect_breach "actuate breaker via compromised PLC";
  expect_breach "operator attempts restoration";
  expect_breach "ARP MITM: modify updates to HMI"

let test_spire_network_campaign_holds () =
  let tb = make_testbed () in
  let steps = Attack.Campaign.run_spire_network tb in
  List.iter
    (fun s ->
      check
        (Printf.sprintf "spire held against %s" s.Attack.Campaign.attack)
        false s.Attack.Campaign.succeeded)
    steps;
  (* The key mechanisms in the detail lines. *)
  let scan = find_step steps ~attack:"scan Spire operations network" in
  check "no visibility" true
    (String.length scan.Attack.Campaign.detail > 0
    && scan.Attack.Campaign.detail = "no visibility into the system (every probe filtered)")

let test_excursion_holds () =
  let tb = make_testbed () in
  let steps = Attack.Campaign.run_excursion tb in
  List.iter
    (fun s ->
      check
        (Printf.sprintf "excursion step held: %s" s.Attack.Campaign.attack)
        false s.Attack.Campaign.succeeded)
    steps;
  Alcotest.(check int) "five excursion steps" 5 (List.length steps)

let test_unhardened_spire_is_vulnerable_to_arp () =
  (* Ablation: without the Section III-B hardening, the same ARP poison
     sticks. *)
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create () in
  let scenario =
    {
      Plc.Power.scenario_name = "soft";
      plcs = [ { Plc.Power.plc_name = "MAIN"; breaker_names = [ "B57" ]; physical = true } ];
      feeds = [];
    }
  in
  let config = Prime.Config.red_team () in
  let d = Spire.Deployment.create ~hardened:false ~engine ~trace ~config scenario in
  Sim.Engine.run ~until:3.0 engine;
  let attacker = Attack.Attacker.create ~engine ~trace in
  let pos =
    Attack.Attacker.attach attacker ~name:"mallory" ~ip:(Netbase.Addr.Ip.v 10 0 2 66)
      (Spire.Deployment.external_switch d)
  in
  let r0 = (Spire.Deployment.replicas d).(0) in
  let victim_mac = Netbase.Host.nic_mac r0.Spire.Deployment.r_external_nic in
  let (_ : Sim.Engine.timer) =
    Attack.Actions.arp_poison attacker pos ~victim_ip:(Spire.Addressing.replica_external 0)
      ~victim_mac ~impersonate:(Spire.Addressing.proxy_external 0)
  in
  Sim.Engine.run ~until:6.0 engine;
  let poisoned =
    match
      Netbase.Host.arp_lookup r0.Spire.Deployment.r_host (Spire.Addressing.proxy_external 0)
    with
    | Some mac -> Netbase.Addr.Mac.equal mac (Netbase.Host.nic_mac pos.Attack.Attacker.pos_nic)
    | None -> false
  in
  check "unhardened deployment poisoned" true poisoned

let suite =
  [
    ("commercial campaign breaches", `Slow, test_commercial_campaign_breaches);
    ("spire network campaign holds", `Slow, test_spire_network_campaign_holds);
    ("replica excursion holds", `Slow, test_excursion_holds);
    ("unhardened spire vulnerable to arp", `Quick, test_unhardened_spire_is_vulnerable_to_arp);
  ]

let () = Alcotest.run "attack" [ ("attack", suite) ]
