(* Tests for the Spines remote session layer: attach/deliver, failover
   across daemons, authentication, and deduplication. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ip = Netbase.Addr.Ip.v

type rig = {
  engine : Sim.Engine.t;
  trace : Sim.Trace.t;
  switch : Netbase.Switch.t;
  nodes : Spines.Node.t array;
  client_host : Netbase.Host.t;
}

(* Three overlay daemons on one LAN plus a client machine. *)
let make_rig ?(key = "group-key") () =
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create () in
  let switch = Netbase.Switch.create ~engine ~trace "lan" in
  let topology = Spines.Topology.full_mesh [ 0; 1; 2 ] in
  let nodes =
    Array.init 3 (fun i ->
        let host = Netbase.Host.create ~engine ~trace (Printf.sprintf "daemon%d" i) in
        let nic = Netbase.Host.add_nic host ~ip:(ip 10 0 0 (i + 1)) in
        let (_ : int) = Netbase.Host.plug_into_switch host nic switch in
        Spines.Node.create ~engine ~trace ~host ~id:i
          (Spines.Node.default_config ~group_key:key topology))
  in
  Array.iteri
    (fun i node ->
      Array.iteri (fun j _ -> if i <> j then Spines.Node.set_peer_address node j (ip 10 0 0 (j + 1))) nodes;
      Spines.Node.start node)
    nodes;
  let client_host = Netbase.Host.create ~engine ~trace "client" in
  let nic = Netbase.Host.add_nic client_host ~ip:(ip 10 0 0 99) in
  let (_ : int) = Netbase.Host.plug_into_switch client_host nic switch in
  { engine; trace; switch; nodes; client_host }

let make_session ?(key = "group-key") rig name =
  Spines.Node.Session.create ~engine:rig.engine ~trace:rig.trace ~host:rig.client_host ~key
    ~daemons:[ (0, ip 10 0 0 1); (1, ip 10 0 0 2); (2, ip 10 0 0 3) ]
    ~daemon_session_port:8101 ~name ()

let test_session_delivery_roundtrip () =
  let rig = make_rig () in
  let session = make_session rig "hmi-test" in
  let got = ref [] in
  Spines.Node.Session.set_handler session (fun ~size:_ payload -> got := payload :: !got);
  Spines.Node.Session.start session;
  Sim.Engine.run ~until:0.5 rig.engine;
  (* Client -> overlay: send to a local client on daemon 2. *)
  let node2_got = ref 0 in
  Spines.Node.register_client rig.nodes.(2) ~client:5 (fun ~src:_ ~size:_ _ -> incr node2_got);
  Spines.Node.Session.send session ~size:50
    (Spines.Node.To_client { node = 2; client = 5 })
    (Netbase.Packet.Raw "up");
  Sim.Engine.run ~until:1.0 rig.engine;
  check_int "uplink delivered" 1 !node2_got;
  (* Overlay -> client: a daemon-side client sends to the session name. *)
  Spines.Node.register_client rig.nodes.(2) ~client:6 (fun ~src:_ ~size:_ _ -> ());
  Spines.Node.send rig.nodes.(2) ~client:6 ~size:60 (Spines.Node.To_session "hmi-test")
    (Netbase.Packet.Raw "down");
  Sim.Engine.run ~until:2.0 rig.engine;
  check_int "downlink delivered" 1 (List.length !got)

let test_session_failover () =
  let rig = make_rig () in
  let session = make_session rig "proxy-test" in
  let got = ref 0 in
  Spines.Node.Session.set_handler session (fun ~size:_ _ -> incr got);
  Spines.Node.Session.start session;
  Sim.Engine.run ~until:0.5 rig.engine;
  check_int "attached to first daemon" 0 (Spines.Node.Session.current_daemon session);
  (* The home daemon dies; the session must re-home. *)
  Spines.Node.stop rig.nodes.(0);
  Sim.Engine.run ~until:6.0 rig.engine;
  check "failed over" true (Spines.Node.Session.current_daemon session <> 0);
  (* Delivery works through the new daemon. *)
  Spines.Node.register_client rig.nodes.(2) ~client:6 (fun ~src:_ ~size:_ _ -> ());
  Spines.Node.send rig.nodes.(2) ~client:6 ~size:60 (Spines.Node.To_session "proxy-test")
    (Netbase.Packet.Raw "after-failover");
  Sim.Engine.run ~until:8.0 rig.engine;
  check_int "delivered after failover" 1 !got;
  check "failover counted" true
    (Sim.Stats.Counter.get (Spines.Node.Session.counters session) "failover" >= 1)

let test_session_wrong_key_rejected () =
  let rig = make_rig () in
  let session = make_session ~key:"not-the-group-key" rig "mallory-session" in
  Spines.Node.Session.set_handler session (fun ~size:_ _ -> ());
  Spines.Node.Session.start session;
  (* Try to inject into the overlay. *)
  let node2_got = ref 0 in
  Spines.Node.register_client rig.nodes.(2) ~client:5 (fun ~src:_ ~size:_ _ -> incr node2_got);
  Spines.Node.Session.send session ~size:50
    (Spines.Node.To_client { node = 2; client = 5 })
    (Netbase.Packet.Raw "forged");
  Sim.Engine.run ~until:2.0 rig.engine;
  check_int "nothing injected" 0 !node2_got;
  check "daemon rejected the session traffic" true
    (Sim.Stats.Counter.get (Spines.Node.counters rig.nodes.(0)) "session.auth_reject" > 0)

let test_session_send_requires_attachment () =
  let rig = make_rig () in
  (* Sending without a prior attach is ignored by the daemon. *)
  let session = make_session rig "eager" in
  let node2_got = ref 0 in
  Spines.Node.register_client rig.nodes.(2) ~client:5 (fun ~src:_ ~size:_ _ -> incr node2_got);
  (* Deliberately not started: no attach has happened. *)
  Spines.Node.Session.send session ~size:50
    (Spines.Node.To_client { node = 2; client = 5 })
    (Netbase.Packet.Raw "early");
  Sim.Engine.run ~until:1.0 rig.engine;
  check_int "unattached send dropped" 0 !node2_got;
  check "counted" true
    (Sim.Stats.Counter.get (Spines.Node.counters rig.nodes.(0)) "session.not_attached" > 0)

let test_session_duplicate_suppression () =
  let rig = make_rig () in
  let session = make_session rig "dedup-client" in
  let got = ref 0 in
  Spines.Node.Session.set_handler session (fun ~size:_ _ -> incr got);
  Spines.Node.Session.start session;
  Sim.Engine.run ~until:0.5 rig.engine;
  Spines.Node.register_client rig.nodes.(1) ~client:6 (fun ~src:_ ~size:_ _ -> ());
  Spines.Node.send rig.nodes.(1) ~client:6 ~size:60 (Spines.Node.To_session "dedup-client")
    (Netbase.Packet.Raw "one");
  Sim.Engine.run ~until:1.5 rig.engine;
  check_int "delivered once despite flooding over three daemons" 1 !got

let suite =
  [
    ("session delivery roundtrip", `Quick, test_session_delivery_roundtrip);
    ("session failover", `Quick, test_session_failover);
    ("session wrong key rejected", `Quick, test_session_wrong_key_rejected);
    ("session send requires attachment", `Quick, test_session_send_requires_attachment);
    ("session duplicate suppression", `Quick, test_session_duplicate_suppression);
  ]

let () = Alcotest.run "session" [ ("session", suite) ]
