(* Tests for the DNP3 subset and the RTU outstation: framing roundtrips,
   checksum rejection, event buffering/overflow, operate commands, and
   the end-to-end RTU-behind-proxy deployment. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- codec -------------------------------------------------------------- *)

let roundtrip_request r = Plc.Dnp3.decode_request (Plc.Dnp3.encode_request r)

let roundtrip_response r = Plc.Dnp3.decode_response (Plc.Dnp3.encode_response r)

let test_request_roundtrips () =
  let cases =
    [
      Plc.Dnp3.Read_class { classes = [ 0 ] };
      Plc.Dnp3.Read_class { classes = [ 1; 2; 3 ] };
      Plc.Dnp3.Operate { index = 7; close = true };
      Plc.Dnp3.Operate { index = 1000; close = false };
      Plc.Dnp3.Clear_events;
    ]
  in
  List.iteri
    (fun i body ->
      let framed = { Plc.Dnp3.sequence = i land 0xFF; body } in
      check (Printf.sprintf "case %d" i) true (roundtrip_request framed = framed))
    cases

let test_response_roundtrips () =
  let cases =
    [
      Plc.Dnp3.Static_data [ true; false; true; true; false ];
      Plc.Dnp3.Static_data [];
      Plc.Dnp3.Events
        [
          { Plc.Dnp3.ev_index = 3; ev_closed = false; ev_time = 12.5 };
          { Plc.Dnp3.ev_index = 0; ev_closed = true; ev_time = 13.75 };
        ];
      Plc.Dnp3.Operate_ack { op_index = 2; op_close = true; success = true };
      Plc.Dnp3.Operate_ack { op_index = 9; op_close = false; success = false };
      Plc.Dnp3.Events_cleared;
    ]
  in
  List.iteri
    (fun i body ->
      let framed = { Plc.Dnp3.sequence = i; body } in
      check (Printf.sprintf "case %d" i) true (roundtrip_response framed = framed))
    cases

let test_checksum_rejected () =
  let bytes =
    Plc.Dnp3.encode_request { Plc.Dnp3.sequence = 1; body = Plc.Dnp3.Clear_events }
  in
  (* Corrupt one payload byte. *)
  let corrupted = Bytes.of_string bytes in
  Bytes.set corrupted (Bytes.length corrupted - 1)
    (Char.chr (Char.code (Bytes.get corrupted (Bytes.length corrupted - 1)) lxor 0xFF));
  check "corruption detected" true
    (match Plc.Dnp3.decode_request (Bytes.to_string corrupted) with
    | exception Plc.Dnp3.Decode_error _ -> true
    | _ -> false)

let test_bad_start_bytes_rejected () =
  check "garbage rejected" true
    (match Plc.Dnp3.decode_request "\x00\x00\x00\x00\x00\x00" with
    | exception Plc.Dnp3.Decode_error _ -> true
    | _ -> false)

let prop_operate_roundtrip =
  QCheck.Test.make ~count:200 ~name:"dnp3 operate roundtrips"
    QCheck.(pair (int_bound 0xFFFF) bool)
    (fun (index, close) ->
      let framed = { Plc.Dnp3.sequence = 9; body = Plc.Dnp3.Operate { index; close } } in
      roundtrip_request framed = framed)

let prop_static_roundtrip =
  QCheck.Test.make ~count:200 ~name:"dnp3 static data roundtrips"
    QCheck.(list_of_size Gen.(int_range 0 40) bool)
    (fun bits ->
      let framed = { Plc.Dnp3.sequence = 3; body = Plc.Dnp3.Static_data bits } in
      roundtrip_response framed = framed)

(* --- RTU outstation ------------------------------------------------------- *)

let make_rtu () =
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create () in
  let rtu = Plc.Rtu.create ~engine ~trace ~name:"RTU-1" ~n_points:3 () in
  let breakers =
    Array.init 3 (fun i ->
        let b = Plc.Breaker.create ~engine ~actuation_delay:0.05 (Printf.sprintf "P%d" i) in
        Plc.Rtu.wire_breaker rtu ~index:i b;
        b)
  in
  (engine, rtu, breakers)

let ask rtu body =
  (Plc.Rtu.handle_request rtu { Plc.Dnp3.sequence = 1; body }).Plc.Dnp3.body

let test_rtu_static_read () =
  let engine, rtu, breakers = make_rtu () in
  Plc.Breaker.force breakers.(1) Plc.Breaker.Open;
  Sim.Engine.run ~until:0.1 engine;
  match ask rtu (Plc.Dnp3.Read_class { classes = [ 0 ] }) with
  | Plc.Dnp3.Static_data bits -> Alcotest.(check (list bool)) "states" [ true; false; true ] bits
  | _ -> Alcotest.fail "expected static data"

let test_rtu_buffers_events_with_timestamps () =
  let engine, rtu, breakers = make_rtu () in
  ignore (Sim.Engine.schedule engine ~delay:1.0 (fun () -> Plc.Breaker.force breakers.(0) Plc.Breaker.Open));
  ignore (Sim.Engine.schedule engine ~delay:2.5 (fun () -> Plc.Breaker.force breakers.(0) Plc.Breaker.Closed));
  Sim.Engine.run ~until:5.0 engine;
  (match ask rtu (Plc.Dnp3.Read_class { classes = [ 1 ] }) with
  | Plc.Dnp3.Events [ e1; e2 ] ->
      check "first event open" false e1.Plc.Dnp3.ev_closed;
      Alcotest.(check (float 0.001)) "device timestamp" 1.0 e1.Plc.Dnp3.ev_time;
      check "second event closed" true e2.Plc.Dnp3.ev_closed;
      Alcotest.(check (float 0.001)) "device timestamp 2" 2.5 e2.Plc.Dnp3.ev_time
  | _ -> Alcotest.fail "expected two events");
  (* Clearing empties the buffer. *)
  (match ask rtu Plc.Dnp3.Clear_events with
  | Plc.Dnp3.Events_cleared -> ()
  | _ -> Alcotest.fail "expected clear ack");
  match ask rtu (Plc.Dnp3.Read_class { classes = [ 1 ] }) with
  | Plc.Dnp3.Events [] -> ()
  | _ -> Alcotest.fail "buffer should be empty"

let test_rtu_event_overflow () =
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create () in
  let rtu = Plc.Rtu.create ~event_buffer_limit:5 ~engine ~trace ~name:"RTU-S" ~n_points:1 () in
  let b = Plc.Breaker.create ~engine "P0" in
  Plc.Rtu.wire_breaker rtu ~index:0 b;
  for _ = 1 to 10 do
    Plc.Breaker.toggle_force b
  done;
  check "overflow flagged" true (Plc.Rtu.events_overflowed rtu);
  check "buffer bounded" true (Plc.Rtu.pending_events rtu <= 5)

let test_rtu_operate () =
  let engine, rtu, breakers = make_rtu () in
  (match ask rtu (Plc.Dnp3.Operate { index = 2; close = false }) with
  | Plc.Dnp3.Operate_ack { success = true; _ } -> ()
  | _ -> Alcotest.fail "expected successful ack");
  Sim.Engine.run ~until:1.0 engine;
  check "breaker opened" false (Plc.Breaker.is_closed breakers.(2));
  match ask rtu (Plc.Dnp3.Operate { index = 99; close = true }) with
  | Plc.Dnp3.Operate_ack { success = false; _ } -> ()
  | _ -> Alcotest.fail "expected failure ack"

(* --- end-to-end: Spire with a DNP3 RTU site -------------------------------- *)

let test_deployment_with_dnp3_rtu () =
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create () in
  let scenario =
    {
      Plc.Power.scenario_name = "dnp3-mini";
      plcs =
        [ { Plc.Power.plc_name = "RTUSITE"; breaker_names = [ "R1"; "R2" ]; physical = true } ];
      feeds = [ { Plc.Power.load_name = "Feeder"; path = [ "R1"; "R2" ] } ];
    }
  in
  let config = Prime.Config.red_team () in
  let d =
    Spire.Deployment.create ~dnp3_plcs:[ "RTUSITE" ] ~engine ~trace ~config scenario
  in
  Sim.Engine.run ~until:3.0 engine;
  let hmi = (Spire.Deployment.hmis d).(0).Spire.Deployment.h_hmi in
  Alcotest.(check (option bool)) "hmi populated via dnp3" (Some true)
    (Scada.Hmi.displayed_closed hmi "R1");
  (* Field change flows through the RTU's event buffer. *)
  (match Spire.Deployment.find_breaker d "R1" with
  | Some (_, b) -> Plc.Breaker.force b Plc.Breaker.Open
  | None -> Alcotest.fail "breaker missing");
  Sim.Engine.run ~until:6.0 engine;
  Alcotest.(check (option bool)) "event reached hmi" (Some false)
    (Scada.Hmi.displayed_closed hmi "R1");
  (* Supervisory command goes out as a DNP3 Operate. *)
  ignore (Scada.Hmi.command hmi ~breaker:"R2" ~close:false);
  Sim.Engine.run ~until:12.0 engine;
  (match Spire.Deployment.find_breaker d "R2" with
  | Some (_, b) -> check "operate actuated breaker" false (Plc.Breaker.is_closed b)
  | None -> Alcotest.fail "breaker missing");
  (* And it really is the DNP3 frontend doing the work. *)
  check_int "frontend is dnp3" 1
    (match (Spire.Deployment.proxies d).(0).Spire.Deployment.p_frontend with
    | Spire.Deployment.Dnp3_rtu _ -> 1
    | Spire.Deployment.Modbus_plc _ -> 0)

let suite =
  [
    ("dnp3 request roundtrips", `Quick, test_request_roundtrips);
    ("dnp3 response roundtrips", `Quick, test_response_roundtrips);
    ("dnp3 checksum rejected", `Quick, test_checksum_rejected);
    ("dnp3 bad start bytes rejected", `Quick, test_bad_start_bytes_rejected);
    ("rtu static read", `Quick, test_rtu_static_read);
    ("rtu buffers events with timestamps", `Quick, test_rtu_buffers_events_with_timestamps);
    ("rtu event overflow", `Quick, test_rtu_event_overflow);
    ("rtu operate", `Quick, test_rtu_operate);
    ("deployment with dnp3 rtu", `Quick, test_deployment_with_dnp3_rtu);
    QCheck_alcotest.to_alcotest prop_operate_roundtrip;
    QCheck_alcotest.to_alcotest prop_static_roundtrip;
  ]

let () = Alcotest.run "dnp3" [ ("dnp3", suite) ]
