(* Tests for the MANA IDS: feature extraction, clustering, and detection
   of the red team's attack classes on synthetic captures. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ip = Netbase.Addr.Ip.v

let mac_a = Netbase.Addr.Mac.fresh ()
let mac_b = Netbase.Addr.Mac.fresh ()

let udp_record ~time ~src ~dst ~dst_port ~size =
  Netbase.Pcap.of_frame ~time
    (Netbase.Packet.udp_frame ~src_mac:mac_a ~dst_mac:mac_b ~src_ip:src ~dst_ip:dst
       ~src_port:5000 ~dst_port ~size (Netbase.Packet.Raw "x"))

let arp_reply_record ~time ~sender ~target =
  Netbase.Pcap.of_frame ~time
    {
      Netbase.Packet.src_mac = mac_a;
      dst_mac = mac_b;
      l3 =
        Netbase.Packet.Arp_reply
          { sender_ip = sender; sender_mac = mac_a; target_ip = target; target_mac = mac_b };
    }

(* Regular SCADA chatter: two constant flows, constant sizes (the paper:
   "short constant system updates ... ideal for machine learning"). *)
let baseline_window ~t0 =
  List.concat
    (List.init 10 (fun i ->
         let time = t0 +. (0.1 *. float_of_int i) in
         [
           udp_record ~time ~src:(ip 10 0 0 1) ~dst:(ip 10 0 0 2) ~dst_port:502 ~size:80;
           udp_record ~time ~src:(ip 10 0 0 2) ~dst:(ip 10 0 0 3) ~dst_port:5500 ~size:120;
         ]))

let fill_baseline pcap ~windows =
  (* Pcap.capture expects frames; rebuild from records is awkward, so we
     use frames directly. *)
  for w = 0 to windows - 1 do
    let t0 = float_of_int w in
    List.iteri
      (fun i _ ->
        let time = t0 +. (0.1 *. float_of_int i) in
        Netbase.Pcap.capture pcap ~time
          (Netbase.Packet.udp_frame ~src_mac:mac_a ~dst_mac:mac_b ~src_ip:(ip 10 0 0 1)
             ~dst_ip:(ip 10 0 0 2) ~src_port:5000 ~dst_port:502 ~size:80
             (Netbase.Packet.Raw "poll"));
        Netbase.Pcap.capture pcap ~time
          (Netbase.Packet.udp_frame ~src_mac:mac_b ~dst_mac:mac_a ~src_ip:(ip 10 0 0 2)
             ~dst_ip:(ip 10 0 0 3) ~src_port:5001 ~dst_port:5500 ~size:120
             (Netbase.Packet.Raw "update")))
      (List.init 10 (fun i -> i))
  done

(* --- features ------------------------------------------------------------ *)

let test_features_empty_window () =
  let f = Mana.Features.create () in
  let v = Mana.Features.extract f [] in
  Array.iter (fun x -> check "all zero" true (x = 0.0)) v

let test_features_baseline_shape () =
  let f = Mana.Features.create () in
  let v = Mana.Features.extract f (baseline_window ~t0:0.0) in
  check "20 packets" true (v.(0) = 20.0);
  check "two flows" true (v.(3) = 2.0);
  check "no arp" true (v.(5) = 0.0 && v.(6) = 0.0)

let test_features_detect_scan_fanout () =
  let f = Mana.Features.create () in
  (* Learn baseline flows first, then freeze. *)
  ignore (Mana.Features.extract f (baseline_window ~t0:0.0));
  Mana.Features.freeze f;
  let scan =
    List.init 50 (fun i ->
        udp_record ~time:(float_of_int i *. 0.01) ~src:(ip 10 0 0 99) ~dst:(ip 10 0 0 (i mod 10))
          ~dst_port:(1000 + i) ~size:40)
  in
  let v = Mana.Features.extract f scan in
  check "high fanout" true (v.(8) >= 40.0);
  check "many new flows" true (v.(4) >= 40.0)

let test_features_detect_unsolicited_arp () =
  let f = Mana.Features.create () in
  Mana.Features.freeze f;
  let storm =
    List.init 20 (fun i ->
        arp_reply_record ~time:(float_of_int i *. 0.05) ~sender:(ip 10 0 0 2)
          ~target:(ip 10 0 0 1))
  in
  let v = Mana.Features.extract f storm in
  check "unsolicited ratio 1.0" true (v.(7) = 1.0);
  check "arp replies counted" true (v.(6) = 20.0)

(* --- kmeans ----------------------------------------------------------------- *)

let test_kmeans_separates_blobs () =
  let rng = Sim.Rng.create 5L in
  let blob center = List.init 20 (fun i -> [| center +. (0.01 *. float_of_int i); center |]) in
  let data = blob 0.0 @ blob 10.0 in
  let model = Mana.Kmeans.train ~rng ~k:2 ~iterations:20 data in
  check "training points near centroids" true
    (List.for_all (fun p -> Mana.Kmeans.distance model p < 1.0) data);
  check "outlier far" true (Mana.Kmeans.distance model [| 50.0; 50.0 |] > 20.0)

let test_kmeans_rejects_empty () =
  let rng = Sim.Rng.create 6L in
  Alcotest.check_raises "no data" (Invalid_argument "Kmeans.train: no data") (fun () ->
      ignore (Mana.Kmeans.train ~rng ~k:2 ~iterations:5 []))

(* --- detector ------------------------------------------------------------------ *)

let make_trained_detector () =
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create () in
  let pcap = Netbase.Pcap.create () in
  fill_baseline pcap ~windows:30;
  let det = Mana.Detector.create ~window:1.0 ~threshold:6.0 ~consecutive_required:2 ~engine ~trace () in
  Mana.Detector.train det ~rng:(Sim.Rng.create 17L) pcap ~t0:0.0 ~t1:30.0;
  (engine, det, pcap)

let test_detector_quiet_on_baseline () =
  let _, det, pcap = make_trained_detector () in
  (* 20 more windows of the same traffic: no alerts. *)
  for w = 30 to 49 do
    let t0 = float_of_int w in
    List.iter (fun i ->
        Netbase.Pcap.capture pcap ~time:(t0 +. (0.1 *. float_of_int i))
          (Netbase.Packet.udp_frame ~src_mac:mac_a ~dst_mac:mac_b ~src_ip:(ip 10 0 0 1)
             ~dst_ip:(ip 10 0 0 2) ~src_port:5000 ~dst_port:502 ~size:80
             (Netbase.Packet.Raw "poll"));
        Netbase.Pcap.capture pcap ~time:(t0 +. (0.1 *. float_of_int i))
          (Netbase.Packet.udp_frame ~src_mac:mac_b ~dst_mac:mac_a ~src_ip:(ip 10 0 0 2)
             ~dst_ip:(ip 10 0 0 3) ~src_port:5001 ~dst_port:5500 ~size:120
             (Netbase.Packet.Raw "update")))
      (List.init 10 (fun i -> i));
    Mana.Detector.evaluate det pcap
  done;
  check_int "no false alerts" 0 (List.length (Mana.Detector.alerts det));
  check_int "twenty windows scored" 20 (Mana.Detector.windows_scored det)

let test_detector_flags_port_scan () =
  let _, det, pcap = make_trained_detector () in
  for w = 30 to 33 do
    let t0 = float_of_int w in
    (* Baseline chatter continues... *)
    Netbase.Pcap.capture pcap ~time:t0
      (Netbase.Packet.udp_frame ~src_mac:mac_a ~dst_mac:mac_b ~src_ip:(ip 10 0 0 1)
         ~dst_ip:(ip 10 0 0 2) ~src_port:5000 ~dst_port:502 ~size:80 (Netbase.Packet.Raw "p"));
    (* ...plus a scanner sweeping ports. *)
    for i = 0 to 60 do
      Netbase.Pcap.capture pcap ~time:(t0 +. (0.01 *. float_of_int i))
        (Netbase.Packet.udp_frame ~src_mac:mac_b ~dst_mac:mac_a ~src_ip:(ip 10 0 0 99)
           ~dst_ip:(ip 10 0 0 (1 + (i mod 5))) ~src_port:40001 ~dst_port:(1000 + i) ~size:40
           Netbase.Packet.Scan_probe)
    done;
    Mana.Detector.evaluate det pcap
  done;
  check "alerted" true (List.length (Mana.Detector.alerts det) > 0);
  check "categorised as scan/probe or new flows" true
    (List.mem "scan-or-probe" (Mana.Detector.alert_categories det))

let test_detector_flags_flood () =
  let _, det, pcap = make_trained_detector () in
  for w = 30 to 33 do
    let t0 = float_of_int w in
    for i = 0 to 2000 do
      Netbase.Pcap.capture pcap ~time:(t0 +. (0.0004 *. float_of_int i))
        (Netbase.Packet.udp_frame ~src_mac:mac_b ~dst_mac:mac_a ~src_ip:(ip 10 0 0 66)
           ~dst_ip:(ip 10 0 0 2) ~src_port:44444 ~dst_port:8120 ~size:1400
           (Netbase.Packet.Raw "flood"))
    done;
    Mana.Detector.evaluate det pcap
  done;
  check "alerted" true (List.length (Mana.Detector.alerts det) > 0)

let test_detector_flags_arp_poisoning () =
  let _, det, pcap = make_trained_detector () in
  for w = 30 to 33 do
    let t0 = float_of_int w in
    (* Gratuitous ARP replies every 100 ms, as the poisoner maintains its
       hold on the victims' caches. *)
    for i = 0 to 9 do
      Netbase.Pcap.capture pcap ~time:(t0 +. (0.1 *. float_of_int i))
        {
          Netbase.Packet.src_mac = mac_b;
          dst_mac = mac_a;
          l3 =
            Netbase.Packet.Arp_reply
              { sender_ip = ip 10 0 0 2; sender_mac = mac_b; target_ip = ip 10 0 0 1;
                target_mac = mac_a };
        }
    done;
    Mana.Detector.evaluate det pcap
  done;
  check "alerted" true (List.length (Mana.Detector.alerts det) > 0);
  check "categorised as arp anomaly" true
    (List.mem "arp-anomaly" (Mana.Detector.alert_categories det))

let test_detector_requires_training () =
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create () in
  let det = Mana.Detector.create ~engine ~trace () in
  let pcap = Netbase.Pcap.create () in
  check "untrained" false (Mana.Detector.is_trained det);
  Alcotest.check_raises "evaluate before train"
    (Invalid_argument "Detector.evaluate: not trained") (fun () ->
      Mana.Detector.evaluate det pcap)

(* --- board -------------------------------------------------------------------- *)

let test_board_conditions () =
  let engine, det, pcap = make_trained_detector () in
  let board = Mana.Board.create ~elevated_window:60.0 ~engine () in
  Mana.Board.add_network board ~name:"operations" det;
  check "normal at rest" true (Mana.Board.overall board = Mana.Board.Normal);
  (* Inject a flood to raise alerts. *)
  for w = 30 to 35 do
    let t0 = float_of_int w in
    for i = 0 to 1500 do
      Netbase.Pcap.capture pcap ~time:(t0 +. (0.0005 *. float_of_int i))
        (Netbase.Packet.udp_frame ~src_mac:mac_b ~dst_mac:mac_a ~src_ip:(ip 10 0 0 66)
           ~dst_ip:(ip 10 0 0 2) ~src_port:44444 ~dst_port:8120 ~size:1400
           (Netbase.Packet.Raw "flood"))
    done;
    Mana.Detector.evaluate det pcap
  done;
  check "critical under sustained attack" true (Mana.Board.overall board = Mana.Board.Critical);
  let rendering = Mana.Board.render board in
  check "board names the network" true
    (String.length rendering > 0
    &&
    let contains hay needle =
      let nl = String.length needle and hl = String.length hay in
      let rec scan i = i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1)) in
      scan 0
    in
    contains rendering "operations" && contains rendering "CRITICAL")

let test_board_multiple_networks () =
  let engine, det_ops, _ = make_trained_detector () in
  let board = Mana.Board.create ~engine () in
  Mana.Board.add_network board ~name:"ops" det_ops;
  Mana.Board.add_network board ~name:"enterprise" det_ops;
  (* Rendering covers both rows. *)
  let r = Mana.Board.render board in
  check "two rows" true (List.length (String.split_on_char '\n' r) >= 3)

let suite =
  [
    ("board conditions", `Quick, test_board_conditions);
    ("board multiple networks", `Quick, test_board_multiple_networks);
    ("features empty window", `Quick, test_features_empty_window);
    ("features baseline shape", `Quick, test_features_baseline_shape);
    ("features detect scan fanout", `Quick, test_features_detect_scan_fanout);
    ("features detect unsolicited arp", `Quick, test_features_detect_unsolicited_arp);
    ("kmeans separates blobs", `Quick, test_kmeans_separates_blobs);
    ("kmeans rejects empty", `Quick, test_kmeans_rejects_empty);
    ("detector quiet on baseline", `Quick, test_detector_quiet_on_baseline);
    ("detector flags port scan", `Quick, test_detector_flags_port_scan);
    ("detector flags flood", `Quick, test_detector_flags_flood);
    ("detector flags arp poisoning", `Quick, test_detector_flags_arp_poisoning);
    ("detector requires training", `Quick, test_detector_requires_training);
  ]

let () = Alcotest.run "mana" [ ("mana", suite) ]
