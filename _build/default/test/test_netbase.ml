(* Tests for the simulated network stack: addressing, firewalling,
   switching (learning and static/port-security modes), ARP resolution and
   poisoning, scan semantics, routing/ACLs, cables, and the host
   compromise model. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let ip = Netbase.Addr.Ip.v

(* A tiny two-host LAN on one switch; returns everything the tests poke. *)
type lan = {
  engine : Sim.Engine.t;
  trace : Sim.Trace.t;
  switch : Netbase.Switch.t;
  host_a : Netbase.Host.t;
  nic_a : Netbase.Host.nic;
  host_b : Netbase.Host.t;
  nic_b : Netbase.Host.nic;
}

let make_lan ?(mode = Netbase.Switch.Learning) ?(os = Netbase.Host.ubuntu_desktop)
    ?firewall_b () =
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create () in
  let switch = Netbase.Switch.create ~mode ~engine ~trace "sw0" in
  let host_a = Netbase.Host.create ~os ~engine ~trace "alpha" in
  let nic_a = Netbase.Host.add_nic host_a ~ip:(ip 10 0 0 1) in
  let (_ : int) = Netbase.Host.plug_into_switch host_a nic_a switch in
  let host_b =
    match firewall_b with
    | None -> Netbase.Host.create ~os ~engine ~trace "beta"
    | Some fw -> Netbase.Host.create ~os ~firewall:fw ~engine ~trace "beta"
  in
  let nic_b = Netbase.Host.add_nic host_b ~ip:(ip 10 0 0 2) in
  let (_ : int) = Netbase.Host.plug_into_switch host_b nic_b switch in
  { engine; trace; switch; host_a; nic_a; host_b; nic_b }

(* --- Addr -------------------------------------------------------------- *)

let test_ip_roundtrip () =
  check_str "to_string" "192.168.1.7" (Netbase.Addr.Ip.to_string (ip 192 168 1 7));
  check "of_string" true
    (Netbase.Addr.Ip.equal (Netbase.Addr.Ip.of_string "10.20.30.40") (ip 10 20 30 40));
  check "subnet24 same" true (Netbase.Addr.Ip.same_subnet24 (ip 10 0 1 1) (ip 10 0 1 200));
  check "subnet24 diff" false (Netbase.Addr.Ip.same_subnet24 (ip 10 0 1 1) (ip 10 0 2 1))

let test_ip_invalid () =
  Alcotest.check_raises "octet range" (Invalid_argument "Ip.v: octet out of range") (fun () ->
      ignore (ip 256 0 0 1));
  Alcotest.check_raises "malformed" (Invalid_argument "Ip.of_string: 1.2.3") (fun () ->
      ignore (Netbase.Addr.Ip.of_string "1.2.3"))

let test_mac_fresh_unique () =
  let a = Netbase.Addr.Mac.fresh () and b = Netbase.Addr.Mac.fresh () in
  check "distinct" false (Netbase.Addr.Mac.equal a b);
  check "not broadcast" false (Netbase.Addr.Mac.is_broadcast a)

(* --- Firewall ----------------------------------------------------------- *)

let test_firewall_default_allow () =
  let fw = Netbase.Firewall.create () in
  let v =
    Netbase.Firewall.evaluate fw ~direction:Netbase.Firewall.Ingress ~remote_ip:(ip 1 2 3 4)
      ~local_port:80 ~remote_port:9999
  in
  check "open by default" true (v.Netbase.Firewall.action = Netbase.Firewall.Allow)

let test_firewall_locked_down () =
  let fw = Netbase.Firewall.locked_down () in
  let v =
    Netbase.Firewall.evaluate fw ~direction:Netbase.Firewall.Ingress ~remote_ip:(ip 1 2 3 4)
      ~local_port:80 ~remote_port:9999
  in
  check "deny by default" true (v.Netbase.Firewall.action = Netbase.Firewall.Deny)

let test_firewall_allow_peer () =
  let fw = Netbase.Firewall.locked_down () in
  Netbase.Firewall.allow_peer fw ~remote_ip:(ip 10 0 0 9) ~local_port:8100
    ~description:"spines peer";
  let ok =
    Netbase.Firewall.evaluate fw ~direction:Netbase.Firewall.Ingress ~remote_ip:(ip 10 0 0 9)
      ~local_port:8100 ~remote_port:8100
  in
  check "peer admitted" true (ok.Netbase.Firewall.action = Netbase.Firewall.Allow);
  check_str "matched rule" "spines peer" (Option.get ok.Netbase.Firewall.matched);
  let wrong_ip =
    Netbase.Firewall.evaluate fw ~direction:Netbase.Firewall.Ingress ~remote_ip:(ip 10 0 0 10)
      ~local_port:8100 ~remote_port:8100
  in
  check "other ip denied" true (wrong_ip.Netbase.Firewall.action = Netbase.Firewall.Deny);
  let wrong_port =
    Netbase.Firewall.evaluate fw ~direction:Netbase.Firewall.Ingress ~remote_ip:(ip 10 0 0 9)
      ~local_port:8101 ~remote_port:8100
  in
  check "other port denied" true (wrong_port.Netbase.Firewall.action = Netbase.Firewall.Deny);
  let egress =
    Netbase.Firewall.evaluate fw ~direction:Netbase.Firewall.Egress ~remote_ip:(ip 10 0 0 9)
      ~local_port:41000 ~remote_port:8100
  in
  check "egress to peer admitted" true (egress.Netbase.Firewall.action = Netbase.Firewall.Allow)

let test_firewall_first_match_wins () =
  let fw = Netbase.Firewall.create () in
  Netbase.Firewall.add fw
    (Netbase.Firewall.rule ~action:Netbase.Firewall.Deny ~local_port:502
       ~description:"block modbus" Netbase.Firewall.Ingress);
  Netbase.Firewall.add fw
    (Netbase.Firewall.rule ~action:Netbase.Firewall.Allow ~local_port:502
       ~description:"allow modbus" Netbase.Firewall.Ingress);
  let v =
    Netbase.Firewall.evaluate fw ~direction:Netbase.Firewall.Ingress ~remote_ip:(ip 1 1 1 1)
      ~local_port:502 ~remote_port:5000
  in
  check "first rule applies" true (v.Netbase.Firewall.action = Netbase.Firewall.Deny)

let prop_firewall_locked_down_denies_everything =
  QCheck.Test.make ~count:200 ~name:"locked-down firewall denies arbitrary packets"
    QCheck.(triple (int_range 0 255) (int_range 1 65535) (int_range 1 65535))
    (fun (oct, local_port, remote_port) ->
      let fw = Netbase.Firewall.locked_down () in
      let v =
        Netbase.Firewall.evaluate fw ~direction:Netbase.Firewall.Ingress
          ~remote_ip:(ip 10 0 0 oct) ~local_port ~remote_port
      in
      v.Netbase.Firewall.action = Netbase.Firewall.Deny)

(* --- UDP delivery over a switch ----------------------------------------- *)

let test_udp_end_to_end () =
  let lan = make_lan () in
  let received = ref None in
  Netbase.Host.udp_bind lan.host_b ~port:7000 (fun ~src ~dst_port ~size payload ->
      received := Some (src, dst_port, size, payload));
  Netbase.Host.udp_send lan.host_a ~dst_ip:(ip 10 0 0 2) ~dst_port:7000 ~src_port:9 ~size:100
    (Netbase.Packet.Raw "hello");
  Sim.Engine.run lan.engine;
  match !received with
  | Some (src, dst_port, size, Netbase.Packet.Raw body) ->
      check "src ip" true (Netbase.Addr.Ip.equal src.Netbase.Addr.ip (ip 10 0 0 1));
      check_int "src port" 9 src.Netbase.Addr.port;
      check_int "dst port" 7000 dst_port;
      check_int "size" 100 size;
      check_str "body" "hello" body
  | _ -> Alcotest.fail "datagram not delivered"

let test_udp_closed_port_counted () =
  let lan = make_lan () in
  Netbase.Host.udp_send lan.host_a ~dst_ip:(ip 10 0 0 2) ~dst_port:12345 ~src_port:9 ~size:50
    (Netbase.Packet.Raw "x");
  Sim.Engine.run lan.engine;
  check_int "closed-port drop" 1
    (Sim.Stats.Counter.get (Netbase.Host.counters lan.host_b) "rx.port_closed")

let test_udp_blocked_by_ingress_firewall () =
  let fw = Netbase.Firewall.locked_down () in
  Netbase.Firewall.set_default fw Netbase.Firewall.Egress Netbase.Firewall.Allow;
  let lan = make_lan ~firewall_b:fw () in
  let received = ref false in
  Netbase.Host.udp_bind lan.host_b ~port:7000 (fun ~src:_ ~dst_port:_ ~size:_ _ ->
      received := true);
  Netbase.Host.udp_send lan.host_a ~dst_ip:(ip 10 0 0 2) ~dst_port:7000 ~src_port:9 ~size:50
    (Netbase.Packet.Raw "x");
  Sim.Engine.run lan.engine;
  check "not delivered" false !received;
  check_int "firewall drop counted" 1
    (Sim.Stats.Counter.get (Netbase.Host.counters lan.host_b) "rx.firewall_drop")

let test_arp_resolution_once () =
  let lan = make_lan () in
  let count = ref 0 in
  Netbase.Host.udp_bind lan.host_b ~port:7000 (fun ~src:_ ~dst_port:_ ~size:_ _ -> incr count);
  for _ = 1 to 3 do
    Netbase.Host.udp_send lan.host_a ~dst_ip:(ip 10 0 0 2) ~dst_port:7000 ~src_port:9 ~size:50
      (Netbase.Packet.Raw "x")
  done;
  Sim.Engine.run lan.engine;
  check_int "all delivered" 3 !count;
  (* Only the first send needed an ARP exchange. *)
  check_int "one arp request" 1
    (Sim.Stats.Counter.get (Netbase.Host.counters lan.host_a) "arp.request_sent");
  match Netbase.Host.arp_lookup lan.host_a (ip 10 0 0 2) with
  | Some mac -> check "learned b's mac" true (Netbase.Addr.Mac.equal mac (Netbase.Host.nic_mac lan.nic_b))
  | None -> Alcotest.fail "arp entry missing"

(* --- ARP poisoning ------------------------------------------------------- *)

let poison_frame ~attacker_nic ~victim_ip ~victim_mac ~impersonated_ip =
  (* Gratuitous/unsolicited ARP reply claiming [impersonated_ip] is at the
     attacker's MAC. *)
  {
    Netbase.Packet.src_mac = Netbase.Host.nic_mac attacker_nic;
    dst_mac = victim_mac;
    l3 =
      Netbase.Packet.Arp_reply
        {
          sender_ip = impersonated_ip;
          sender_mac = Netbase.Host.nic_mac attacker_nic;
          target_ip = victim_ip;
          target_mac = victim_mac;
        };
  }

let test_arp_poisoning_dynamic_cache () =
  let lan = make_lan () in
  let attacker = Netbase.Host.create ~engine:lan.engine ~trace:lan.trace "mallory" in
  let attacker_nic = Netbase.Host.add_nic attacker ~ip:(ip 10 0 0 66) in
  let (_ : int) = Netbase.Host.plug_into_switch attacker attacker_nic lan.switch in
  (* Prime alpha's cache with the honest mapping. *)
  Netbase.Host.udp_send lan.host_a ~dst_ip:(ip 10 0 0 2) ~dst_port:7000 ~src_port:9 ~size:50
    (Netbase.Packet.Raw "x");
  Sim.Engine.run lan.engine;
  (* Poison: claim 10.0.0.2 is at mallory's MAC. *)
  Netbase.Host.inject_frame attacker attacker_nic
    (poison_frame ~attacker_nic ~victim_ip:(ip 10 0 0 1)
       ~victim_mac:(Netbase.Host.nic_mac lan.nic_a) ~impersonated_ip:(ip 10 0 0 2));
  Sim.Engine.run lan.engine;
  (match Netbase.Host.arp_lookup lan.host_a (ip 10 0 0 2) with
  | Some mac ->
      check "cache poisoned" true (Netbase.Addr.Mac.equal mac (Netbase.Host.nic_mac attacker_nic))
  | None -> Alcotest.fail "entry vanished");
  (* Traffic for beta now lands on mallory. *)
  let hijacked = ref false in
  Netbase.Host.set_raw_handler attacker
    (Some
       (fun _ frame ->
         match frame.Netbase.Packet.l3 with
         | Netbase.Packet.Ipv4 { dst; _ } when Netbase.Addr.Ip.equal dst (ip 10 0 0 2) ->
             hijacked := true;
             true
         | _ -> false));
  Netbase.Host.udp_send lan.host_a ~dst_ip:(ip 10 0 0 2) ~dst_port:7000 ~src_port:9 ~size:50
    (Netbase.Packet.Raw "secret");
  Sim.Engine.run lan.engine;
  check "traffic hijacked" true !hijacked

let test_arp_poisoning_defeated_by_static_entry () =
  let lan = make_lan () in
  let attacker = Netbase.Host.create ~engine:lan.engine ~trace:lan.trace "mallory" in
  let attacker_nic = Netbase.Host.add_nic attacker ~ip:(ip 10 0 0 66) in
  let (_ : int) = Netbase.Host.plug_into_switch attacker attacker_nic lan.switch in
  (* Section III-B hardening: static mapping of MAC to IP. *)
  Netbase.Host.set_static_arp lan.host_a ~ip:(ip 10 0 0 2)
    ~mac:(Netbase.Host.nic_mac lan.nic_b);
  Netbase.Host.inject_frame attacker attacker_nic
    (poison_frame ~attacker_nic ~victim_ip:(ip 10 0 0 1)
       ~victim_mac:(Netbase.Host.nic_mac lan.nic_a) ~impersonated_ip:(ip 10 0 0 2));
  Sim.Engine.run lan.engine;
  (match Netbase.Host.arp_lookup lan.host_a (ip 10 0 0 2) with
  | Some mac ->
      check "static entry intact" true
        (Netbase.Addr.Mac.equal mac (Netbase.Host.nic_mac lan.nic_b))
  | None -> Alcotest.fail "entry vanished");
  check "poison attempt recorded" true
    (Sim.Stats.Counter.get (Netbase.Host.counters lan.host_a) "arp.static_protected" >= 1)

let test_arp_ignore_multihomed () =
  (* A hardened dual-homed replica must not answer, on its external NIC,
     ARP queries for its internal-network address. *)
  let probe_host os =
    let engine = Sim.Engine.create () in
    let trace = Sim.Trace.create () in
    let external_sw = Netbase.Switch.create ~engine ~trace "ext" in
    let replica = Netbase.Host.create ~os ~engine ~trace "replica" in
    let ext_nic = Netbase.Host.add_nic replica ~ip:(ip 10 0 2 1) in
    let (_ : int) = Netbase.Host.plug_into_switch replica ext_nic external_sw in
    let _int_nic = Netbase.Host.add_nic replica ~ip:(ip 10 0 1 1) in
    let attacker = Netbase.Host.create ~engine ~trace "scanner" in
    let a_nic = Netbase.Host.add_nic attacker ~ip:(ip 10 0 2 66) in
    let (_ : int) = Netbase.Host.plug_into_switch attacker a_nic external_sw in
    let leaked = ref false in
    Netbase.Host.set_raw_handler attacker
      (Some
         (fun _ frame ->
           (match frame.Netbase.Packet.l3 with
           | Netbase.Packet.Arp_reply { sender_ip; _ }
             when Netbase.Addr.Ip.equal sender_ip (ip 10 0 1 1) ->
               leaked := true
           | _ -> ());
           false));
    Netbase.Host.inject_frame attacker a_nic
      {
        Netbase.Packet.src_mac = Netbase.Host.nic_mac a_nic;
        dst_mac = Netbase.Addr.Mac.broadcast;
        l3 =
          Netbase.Packet.Arp_request
            {
              sender_ip = ip 10 0 2 66;
              sender_mac = Netbase.Host.nic_mac a_nic;
              target_ip = ip 10 0 1 1;
            };
      };
    Sim.Engine.run engine;
    !leaked
  in
  check "default profile leaks internal address" true
    (probe_host Netbase.Host.ubuntu_desktop);
  check "hardened profile does not" false (probe_host Netbase.Host.centos_minimal)

(* --- Switch port security ------------------------------------------------ *)

let test_static_switch_blocks_unknown_mac () =
  let lan = make_lan ~mode:Netbase.Switch.Static () in
  Netbase.Switch.bind_mac lan.switch (Netbase.Host.nic_mac lan.nic_a) 0;
  Netbase.Switch.bind_mac lan.switch (Netbase.Host.nic_mac lan.nic_b) 1;
  let delivered = ref 0 in
  Netbase.Host.udp_bind lan.host_b ~port:7000 (fun ~src:_ ~dst_port:_ ~size:_ _ ->
      incr delivered);
  Netbase.Host.udp_send lan.host_a ~dst_ip:(ip 10 0 0 2) ~dst_port:7000 ~src_port:9 ~size:50
    (Netbase.Packet.Raw "legit");
  Sim.Engine.run lan.engine;
  check_int "legit traffic flows" 1 !delivered;
  (* Rogue device on a new port: its MAC has no binding, frames dropped. *)
  let rogue = Netbase.Host.create ~engine:lan.engine ~trace:lan.trace "rogue" in
  let rogue_nic = Netbase.Host.add_nic rogue ~ip:(ip 10 0 0 66) in
  let (_ : int) = Netbase.Host.plug_into_switch rogue rogue_nic lan.switch in
  Netbase.Host.udp_send rogue ~dst_ip:(ip 10 0 0 2) ~dst_port:7000 ~src_port:9 ~size:50
    (Netbase.Packet.Raw "evil");
  Sim.Engine.run lan.engine;
  check_int "rogue traffic dropped" 1 !delivered;
  check "port-security drop counted" true
    (Sim.Stats.Counter.get (Netbase.Switch.counters lan.switch) "drop.port_security" >= 1)

let test_static_switch_blocks_mac_spoof () =
  let lan = make_lan ~mode:Netbase.Switch.Static () in
  Netbase.Switch.bind_mac lan.switch (Netbase.Host.nic_mac lan.nic_a) 0;
  Netbase.Switch.bind_mac lan.switch (Netbase.Host.nic_mac lan.nic_b) 1;
  let rogue = Netbase.Host.create ~engine:lan.engine ~trace:lan.trace "rogue" in
  let rogue_nic = Netbase.Host.add_nic rogue ~ip:(ip 10 0 0 66) in
  let (_ : int) = Netbase.Host.plug_into_switch rogue rogue_nic lan.switch in
  let delivered = ref 0 in
  Netbase.Host.udp_bind lan.host_b ~port:7000 (fun ~src:_ ~dst_port:_ ~size:_ _ ->
      incr delivered);
  (* Spoof alpha's MAC from the rogue port. *)
  Netbase.Host.inject_frame rogue rogue_nic
    (Netbase.Packet.udp_frame
       ~src_mac:(Netbase.Host.nic_mac lan.nic_a)
       ~dst_mac:(Netbase.Host.nic_mac lan.nic_b)
       ~src_ip:(ip 10 0 0 1) ~dst_ip:(ip 10 0 0 2) ~src_port:9 ~dst_port:7000 ~size:50
       (Netbase.Packet.Raw "spoof"));
  Sim.Engine.run lan.engine;
  check_int "spoofed frame dropped" 0 !delivered

let test_learning_switch_floods_then_filters () =
  let lan = make_lan () in
  let seen_by_c = ref 0 in
  let host_c = Netbase.Host.create ~engine:lan.engine ~trace:lan.trace "gamma" in
  let nic_c = Netbase.Host.add_nic host_c ~ip:(ip 10 0 0 3) in
  let (_ : int) = Netbase.Host.plug_into_switch host_c nic_c lan.switch in
  Netbase.Host.set_promiscuous nic_c (Some (fun _ -> incr seen_by_c));
  Netbase.Host.udp_bind lan.host_b ~port:7000 (fun ~src:_ ~dst_port:_ ~size:_ _ -> ());
  Netbase.Host.udp_send lan.host_a ~dst_ip:(ip 10 0 0 2) ~dst_port:7000 ~src_port:9 ~size:50
    (Netbase.Packet.Raw "one");
  Sim.Engine.run lan.engine;
  let after_first = !seen_by_c in
  check "first exchange flooded to third port" true (after_first > 0);
  Netbase.Host.udp_send lan.host_a ~dst_ip:(ip 10 0 0 2) ~dst_port:7000 ~src_port:9 ~size:50
    (Netbase.Packet.Raw "two");
  Sim.Engine.run lan.engine;
  check_int "second unicast not flooded" after_first !seen_by_c

(* --- Scan semantics -------------------------------------------------------- *)

let run_scan lan ~scanner ~scanner_nic:_ ~target_ip ~ports =
  let results : (int, string) Hashtbl.t = Hashtbl.create 8 in
  Netbase.Host.udp_bind scanner ~port:40001 (fun ~src ~dst_port:_ ~size:_ payload ->
      match payload with
      | Netbase.Packet.Scan_ack { service } ->
          Hashtbl.replace results src.Netbase.Addr.port ("open:" ^ service)
      | Netbase.Packet.Icmp_port_unreachable ->
          Hashtbl.replace results src.Netbase.Addr.port "closed"
      | _ -> ());
  List.iter
    (fun port ->
      Netbase.Host.udp_send scanner ~dst_ip:target_ip ~dst_port:port ~src_port:40001 ~size:40
        Netbase.Packet.Scan_probe)
    ports;
  Sim.Engine.run lan.engine;
  fun port ->
    match Hashtbl.find_opt results port with Some s -> s | None -> "filtered"

let test_port_scan_open_closed_filtered () =
  let lan = make_lan () in
  let scanner = Netbase.Host.create ~engine:lan.engine ~trace:lan.trace "scanner" in
  let scanner_nic = Netbase.Host.add_nic scanner ~ip:(ip 10 0 0 99) in
  let (_ : int) = Netbase.Host.plug_into_switch scanner scanner_nic lan.switch in
  let status =
    run_scan lan ~scanner ~scanner_nic ~target_ip:(ip 10 0 0 2) ~ports:[ 22; 777 ]
  in
  check_str "ssh open" "open:sshd-old" (status 22);
  check_str "777 closed" "closed" (status 777)

let test_port_scan_against_locked_down_host () =
  let fw = Netbase.Firewall.locked_down () in
  let lan = make_lan ~os:Netbase.Host.centos_minimal ~firewall_b:fw () in
  let scanner = Netbase.Host.create ~engine:lan.engine ~trace:lan.trace "scanner" in
  let scanner_nic = Netbase.Host.add_nic scanner ~ip:(ip 10 0 0 99) in
  let (_ : int) = Netbase.Host.plug_into_switch scanner scanner_nic lan.switch in
  let status =
    run_scan lan ~scanner ~scanner_nic ~target_ip:(ip 10 0 0 2) ~ports:[ 22; 777; 8100 ]
  in
  check_str "ssh filtered" "filtered" (status 22);
  check_str "777 filtered" "filtered" (status 777);
  check_str "8100 filtered" "filtered" (status 8100)

(* --- Router / segment ACLs -------------------------------------------------- *)

type routed = {
  engine : Sim.Engine.t;
  enterprise_host : Netbase.Host.t;
  ops_host : Netbase.Host.t;
}

let make_routed ~permit_502 =
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create () in
  let ent_sw = Netbase.Switch.create ~engine ~trace "enterprise" in
  let ops_sw = Netbase.Switch.create ~engine ~trace "operations" in
  let router = Netbase.Router.create ~engine ~trace "corp-fw" in
  let (_ : Netbase.Host.nic) = Netbase.Router.add_interface router ~ip:(ip 10 0 10 254) ent_sw in
  let (_ : Netbase.Host.nic) = Netbase.Router.add_interface router ~ip:(ip 10 0 20 254) ops_sw in
  if permit_502 then
    Netbase.Router.permit router ~src_subnet:(ip 10 0 10 0) ~dst_subnet:(ip 10 0 20 0)
      ~dst_port:502 ~description:"historian to scada" ();
  let enterprise_host = Netbase.Host.create ~engine ~trace "historian" in
  let e_nic = Netbase.Host.add_nic enterprise_host ~ip:(ip 10 0 10 5) in
  let (_ : int) = Netbase.Host.plug_into_switch enterprise_host e_nic ent_sw in
  Netbase.Host.set_default_gateway enterprise_host (ip 10 0 10 254);
  let ops_host = Netbase.Host.create ~engine ~trace "plc" in
  let o_nic = Netbase.Host.add_nic ops_host ~ip:(ip 10 0 20 7) in
  let (_ : int) = Netbase.Host.plug_into_switch ops_host o_nic ops_sw in
  Netbase.Host.set_default_gateway ops_host (ip 10 0 20 254);
  { engine; enterprise_host; ops_host }

let test_router_permits_acl_flow () =
  let net = make_routed ~permit_502:true in
  let got = ref false in
  Netbase.Host.udp_bind net.ops_host ~port:502 (fun ~src:_ ~dst_port:_ ~size:_ _ ->
      got := true);
  Netbase.Host.udp_send net.enterprise_host ~dst_ip:(ip 10 0 20 7) ~dst_port:502 ~src_port:5001
    ~size:64 (Netbase.Packet.Raw "modbus read");
  Sim.Engine.run net.engine;
  check "cross-segment modbus delivered" true !got

let test_router_drops_unpermitted_flow () =
  let net = make_routed ~permit_502:false in
  let got = ref false in
  Netbase.Host.udp_bind net.ops_host ~port:502 (fun ~src:_ ~dst_port:_ ~size:_ _ ->
      got := true);
  Netbase.Host.udp_send net.enterprise_host ~dst_ip:(ip 10 0 20 7) ~dst_port:502 ~src_port:5001
    ~size:64 (Netbase.Packet.Raw "modbus read");
  Sim.Engine.run net.engine;
  check "acl blocks flow" false !got

(* --- Cable -------------------------------------------------------------------- *)

let test_cable_point_to_point () =
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create () in
  let plc = Netbase.Host.create ~engine ~trace "plc" in
  let plc_nic = Netbase.Host.add_nic plc ~ip:(ip 192 168 50 2) in
  let proxy = Netbase.Host.create ~engine ~trace "proxy" in
  let proxy_nic = Netbase.Host.add_nic proxy ~ip:(ip 192 168 50 1) in
  Netbase.Cable.connect ~engine ~latency:1e-5 proxy proxy_nic plc plc_nic;
  let got = ref false in
  Netbase.Host.udp_bind plc ~port:502 (fun ~src:_ ~dst_port:_ ~size:_ _ -> got := true);
  Netbase.Host.udp_send proxy ~dst_ip:(ip 192 168 50 2) ~dst_port:502 ~src_port:5002 ~size:12
    (Netbase.Packet.Raw "read coils");
  Sim.Engine.run engine;
  check "delivered over cable" true !got

(* --- DoS / backlog -------------------------------------------------------------- *)

let test_switch_backlog_drops_flood () =
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create () in
  (* Slow 10 Mb/s port with a 10 ms backlog bound makes saturation cheap. *)
  let switch =
    Netbase.Switch.create ~bandwidth:1_250_000.0 ~max_backlog:0.01 ~engine ~trace "slow"
  in
  let a = Netbase.Host.create ~engine ~trace "flooder" in
  let nic_a = Netbase.Host.add_nic a ~ip:(ip 10 0 0 1) in
  let (_ : int) = Netbase.Host.plug_into_switch a nic_a switch in
  let b = Netbase.Host.create ~engine ~trace "victim" in
  let nic_b = Netbase.Host.add_nic b ~ip:(ip 10 0 0 2) in
  let (_ : int) = Netbase.Host.plug_into_switch b nic_b switch in
  let received = ref 0 in
  Netbase.Host.udp_bind b ~port:7000 (fun ~src:_ ~dst_port:_ ~size:_ _ -> incr received);
  (* Resolve ARP first so the flood is pure unicast. *)
  Netbase.Host.udp_send a ~dst_ip:(ip 10 0 0 2) ~dst_port:7000 ~src_port:9 ~size:100
    (Netbase.Packet.Raw "warm");
  Sim.Engine.run engine;
  for _ = 1 to 200 do
    Netbase.Host.udp_send a ~dst_ip:(ip 10 0 0 2) ~dst_port:7000 ~src_port:9 ~size:1400
      (Netbase.Packet.Raw "flood")
  done;
  Sim.Engine.run engine;
  check "some flood delivered" true (!received > 1);
  check "saturation drops occurred" true
    (Sim.Stats.Counter.get (Netbase.Switch.counters switch) "drop.backlog" > 0);
  check "not everything got through" true (!received < 201)

(* --- Compromise model -------------------------------------------------------------- *)

let test_remote_exploit_requires_vulnerable_service () =
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create () in
  let target = Netbase.Host.create ~os:Netbase.Host.ubuntu_desktop ~engine ~trace "victim" in
  let (_ : Netbase.Host.nic) = Netbase.Host.add_nic target ~ip:(ip 10 0 0 2) in
  check "starts clean" true (Netbase.Host.compromise_level target = Netbase.Host.Clean);
  (match
     Netbase.Host.attempt_remote_exploit target ~from_ip:(ip 10 0 0 9) ~port:22
       ~exploit:"ssh-exploit"
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("expected success: " ^ e));
  check "user level" true (Netbase.Host.compromise_level target = Netbase.Host.User_level)

let test_remote_exploit_blocked_by_patching_and_firewall () =
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create () in
  let hardened =
    Netbase.Host.create ~os:Netbase.Host.centos_minimal
      ~firewall:(Netbase.Firewall.locked_down ()) ~engine ~trace "replica"
  in
  let (_ : Netbase.Host.nic) = Netbase.Host.add_nic hardened ~ip:(ip 10 0 0 2) in
  (match
     Netbase.Host.attempt_remote_exploit hardened ~from_ip:(ip 10 0 0 9) ~port:22
       ~exploit:"ssh-exploit"
   with
  | Ok () -> Alcotest.fail "should be filtered"
  | Error e -> check_str "firewall filters" "filtered" e);
  (* Even with the firewall open, the patched service resists. *)
  let semi =
    Netbase.Host.create ~os:Netbase.Host.centos_minimal ~engine ~trace "replica2"
  in
  let (_ : Netbase.Host.nic) = Netbase.Host.add_nic semi ~ip:(ip 10 0 0 3) in
  match
    Netbase.Host.attempt_remote_exploit semi ~from_ip:(ip 10 0 0 9) ~port:22
      ~exploit:"ssh-exploit"
  with
  | Ok () -> Alcotest.fail "patched sshd must resist"
  | Error e -> check_str "patched" "service not vulnerable" e

let test_privilege_escalation_depends_on_os () =
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create () in
  let old_os = Netbase.Host.create ~os:Netbase.Host.ubuntu_desktop ~engine ~trace "old" in
  Netbase.Host.set_compromise old_os Netbase.Host.User_level;
  (match Netbase.Host.attempt_privilege_escalation old_os ~exploit:"dirtycow" with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("dirtycow should work on old kernel: " ^ e));
  check "root" true (Netbase.Host.compromise_level old_os = Netbase.Host.Root_level);
  let new_os = Netbase.Host.create ~os:Netbase.Host.centos_minimal ~engine ~trace "new" in
  Netbase.Host.set_compromise new_os Netbase.Host.User_level;
  (match Netbase.Host.attempt_privilege_escalation new_os ~exploit:"dirtycow" with
  | Ok () -> Alcotest.fail "patched kernel must resist dirtycow"
  | Error _ -> ());
  check "still user" true (Netbase.Host.compromise_level new_os = Netbase.Host.User_level)

(* --- Pcap ---------------------------------------------------------------------- *)

let test_pcap_tap_records_traffic () =
  let lan = make_lan () in
  let cap = Netbase.Pcap.create () in
  Netbase.Switch.add_tap lan.switch (fun frame ->
      Netbase.Pcap.capture cap ~time:(Sim.Engine.now lan.engine) frame);
  Netbase.Host.udp_bind lan.host_b ~port:7000 (fun ~src:_ ~dst_port:_ ~size:_ _ -> ());
  Netbase.Host.udp_send lan.host_a ~dst_ip:(ip 10 0 0 2) ~dst_port:7000 ~src_port:9 ~size:64
    (Netbase.Packet.Raw "x");
  Sim.Engine.run lan.engine;
  (* ARP request + reply + the datagram. *)
  check "captured at least 3 frames" true (Netbase.Pcap.length cap >= 3);
  let udp_records =
    List.filter
      (fun r -> match r.Netbase.Pcap.info with Netbase.Pcap.Udp _ -> true | _ -> false)
      (Netbase.Pcap.records cap)
  in
  check_int "one udp record" 1 (List.length udp_records)

let suite =
  [
    ("ip roundtrip", `Quick, test_ip_roundtrip);
    ("ip invalid", `Quick, test_ip_invalid);
    ("mac fresh unique", `Quick, test_mac_fresh_unique);
    ("firewall default allow", `Quick, test_firewall_default_allow);
    ("firewall locked down", `Quick, test_firewall_locked_down);
    ("firewall allow peer", `Quick, test_firewall_allow_peer);
    ("firewall first match", `Quick, test_firewall_first_match_wins);
    ("udp end to end", `Quick, test_udp_end_to_end);
    ("udp closed port", `Quick, test_udp_closed_port_counted);
    ("udp ingress firewall", `Quick, test_udp_blocked_by_ingress_firewall);
    ("arp resolves once", `Quick, test_arp_resolution_once);
    ("arp poisoning works on dynamic cache", `Quick, test_arp_poisoning_dynamic_cache);
    ("static arp defeats poisoning", `Quick, test_arp_poisoning_defeated_by_static_entry);
    ("arp_ignore on multihomed host", `Quick, test_arp_ignore_multihomed);
    ("static switch blocks unknown mac", `Quick, test_static_switch_blocks_unknown_mac);
    ("static switch blocks mac spoof", `Quick, test_static_switch_blocks_mac_spoof);
    ("learning switch floods then filters", `Quick, test_learning_switch_floods_then_filters);
    ("port scan open/closed/filtered", `Quick, test_port_scan_open_closed_filtered);
    ("port scan vs locked-down host", `Quick, test_port_scan_against_locked_down_host);
    ("router permits acl flow", `Quick, test_router_permits_acl_flow);
    ("router drops unpermitted flow", `Quick, test_router_drops_unpermitted_flow);
    ("cable point to point", `Quick, test_cable_point_to_point);
    ("switch backlog drops flood", `Quick, test_switch_backlog_drops_flood);
    ("remote exploit needs vulnerable service", `Quick, test_remote_exploit_requires_vulnerable_service);
    ("remote exploit blocked by patch/firewall", `Quick, test_remote_exploit_blocked_by_patching_and_firewall);
    ("privilege escalation depends on os", `Quick, test_privilege_escalation_depends_on_os);
    ("pcap tap records traffic", `Quick, test_pcap_tap_records_traffic);
    QCheck_alcotest.to_alcotest prop_firewall_locked_down_denies_everything;
  ]

let () = Alcotest.run "netbase" [ ("netbase", suite) ]
