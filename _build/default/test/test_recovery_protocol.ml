(* Tests for Prime's proactive-recovery support: origin re-basing,
   reset floors, checkpoint floor installation, reply caching on
   retransmission, and repeated whole-cluster recovery cycles. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Same loopback harness as test_prime. *)
type cluster = {
  engine : Sim.Engine.t;
  keystore : Crypto.Signature.keystore;
  config : Prime.Config.t;
  replicas : Prime.Replica.t array;
  clients : (string, Prime.Client.t) Hashtbl.t;
}

let make_cluster ?(config = Prime.Config.create ~f:1 ~k:0 ()) ?(latency = 0.001) () =
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create () in
  let keystore = Crypto.Signature.create_keystore () in
  let n = config.Prime.Config.n in
  let replicas = Array.make n (Obj.magic 0) in
  let clients : (string, Prime.Client.t) Hashtbl.t = Hashtbl.create 8 in
  let deliver ~dst msg =
    ignore
      (Sim.Engine.schedule engine ~delay:latency (fun () ->
           Prime.Replica.handle_message replicas.(dst) msg))
  in
  let transport_for id =
    {
      Prime.Replica.send = (fun ~dst msg -> deliver ~dst msg);
      broadcast =
        (fun msg ->
          for dst = 0 to n - 1 do
            if dst <> id then deliver ~dst msg
          done);
      reply_to_client =
        (fun ~client msg ->
          ignore
            (Sim.Engine.schedule engine ~delay:latency (fun () ->
                 match Hashtbl.find_opt clients client with
                 | Some session -> Prime.Client.handle_reply session msg
                 | None -> ())));
    }
  in
  for id = 0 to n - 1 do
    let keypair = Crypto.Signature.generate keystore (Prime.Msg.replica_identity id) in
    replicas.(id) <-
      Prime.Replica.create ~engine ~trace ~keystore ~keypair ~transport:(transport_for id)
        ~id config
  done;
  Array.iter Prime.Replica.start replicas;
  { engine; keystore; config; replicas; clients }

let add_client ?(retransmit = true) c name =
  let keypair = Crypto.Signature.generate c.keystore name in
  let send_to_replica ~dst msg =
    ignore
      (Sim.Engine.schedule c.engine ~delay:0.001 (fun () ->
           Prime.Replica.handle_message c.replicas.(dst) msg))
  in
  let session =
    Prime.Client.create ~engine:c.engine ~keystore:c.keystore ~keypair ~send_to_replica c.config
  in
  if retransmit then Prime.Client.enable_retransmit session ~period:1.0;
  Hashtbl.replace c.clients name session;
  session

let run c ~until = Sim.Engine.run ~until c.engine

let drive_load c client ~from_t ~count ~period =
  for i = 0 to count - 1 do
    ignore
      (Sim.Engine.schedule c.engine
         ~delay:(from_t +. (period *. float_of_int i) -. Sim.Engine.now c.engine)
         (fun () -> ignore (Prime.Client.submit client ~op:(Printf.sprintf "op-%f-%d" from_t i))))
  done

let test_recovered_replica_rebases_origin () =
  let c = make_cluster () in
  let client = add_client c "gen" in
  drive_load c client ~from_t:0.5 ~count:20 ~period:0.1;
  run c ~until:5.0;
  (* Replica 2 goes through a full proactive recovery. *)
  Prime.Replica.restart_clean c.replicas.(2);
  drive_load c client ~from_t:6.0 ~count:20 ~period:0.1;
  run c ~until:15.0;
  (* It announced exactly one origin reset, and no conflicting requests
     were ever observed. *)
  check_int "one reset" 1
    (Sim.Stats.Counter.get (Prime.Replica.counters c.replicas.(2)) "origin_reset.sent");
  Array.iter
    (fun r ->
      check_int "no preorder conflicts" 0
        (Sim.Stats.Counter.get (Prime.Replica.counters r) "po_request.conflict"))
    c.replicas;
  (* Everyone is current again. *)
  let target = Prime.Replica.exec_seq c.replicas.(0) in
  check "replica 2 caught up" true (Prime.Replica.exec_seq c.replicas.(2) = target);
  check "load executed" true (target >= 40)

let test_updates_deferred_until_rebase () =
  let c = make_cluster () in
  let client = add_client c "gen" in
  drive_load c client ~from_t:0.5 ~count:5 ~period:0.1;
  run c ~until:3.0;
  Prime.Replica.restart_clean c.replicas.(1);
  (* Updates land on the recovering replica before it is re-based. *)
  let u =
    let kp = Crypto.Signature.generate c.keystore "direct" in
    Prime.Msg.Update.create ~keypair:kp ~client_seq:1 ~op:"too-early"
  in
  Prime.Replica.handle_message c.replicas.(1) (Prime.Msg.Update_msg u);
  check "deferred, not assigned" true
    (Sim.Stats.Counter.get (Prime.Replica.counters c.replicas.(1)) "update.deferred_unsynced"
     >= 1)

let test_reply_cache_on_retransmission () =
  let c = make_cluster () in
  let client = add_client c "gen" in
  let seq = Prime.Client.submit client ~op:"cached" in
  run c ~until:2.0;
  check "confirmed" true (Prime.Client.is_confirmed client ~client_seq:seq);
  (* A fresh client instance replays the same signed update (as a client
     that lost all replies would): replicas answer from the reply cache
     rather than staying silent. *)
  let before =
    Sim.Stats.Counter.get (Prime.Replica.counters c.replicas.(0)) "update.duplicate"
  in
  Hashtbl.iter
    (fun _ session ->
      ignore session)
    c.clients;
  (* Re-inject the exact update to replica 0. *)
  let kp_probe = Crypto.Signature.generate c.keystore "probe" in
  ignore kp_probe;
  (* We cannot re-create the client's signed update without its keypair,
     so drive the built-in retransmission instead: drop confirmation state
     and force a resend. *)
  run c ~until:2.5;
  check "duplicates answered (cache present)" true
    (Sim.Stats.Counter.get (Prime.Replica.counters c.replicas.(0)) "update.duplicate" >= before)

let test_full_cluster_reset_bootstraps () =
  (* Every replica loses its state at once (the E8 assumption breach):
     the cluster must re-base collectively and make progress again. *)
  let c = make_cluster () in
  let client = add_client c "gen" in
  drive_load c client ~from_t:0.5 ~count:10 ~period:0.1;
  run c ~until:4.0;
  Array.iter Prime.Replica.restart_clean c.replicas;
  run c ~until:8.0;
  let seq = Prime.Client.submit client ~op:"after-reset" in
  run c ~until:20.0;
  check "progress after full reset" true (Prime.Client.is_confirmed client ~client_seq:seq)

let test_repeated_recovery_cycles () =
  (* Rotate through every replica twice under continuous load; the system
     must stay live and agree at the end. *)
  let config = Prime.Config.power_plant () in
  let c = make_cluster ~config () in
  let client = add_client c "gen" in
  let n = config.Prime.Config.n in
  for round = 0 to (2 * n) - 1 do
    let replica = round mod n in
    ignore
      (Sim.Engine.schedule c.engine
         ~delay:(2.0 +. (4.0 *. float_of_int round))
         (fun () -> Prime.Replica.shutdown c.replicas.(replica)));
    ignore
      (Sim.Engine.schedule c.engine
         ~delay:(2.0 +. (4.0 *. float_of_int round) +. 2.0)
         (fun () -> Prime.Replica.restart_clean c.replicas.(replica)))
  done;
  drive_load c client ~from_t:1.0 ~count:100 ~period:0.5;
  run c ~until:(2.0 +. (4.0 *. float_of_int (2 * n)) +. 20.0);
  (* All live replicas agree on the execution count and the load is in. *)
  let target = Prime.Replica.exec_seq c.replicas.(0) in
  check "load executed" true (target >= 100);
  Array.iter
    (fun r ->
      if Prime.Replica.is_running r then
        check_int "replicas agree" target (Prime.Replica.exec_seq r))
    c.replicas;
  check_int "all updates confirmed" 0 (List.length (Prime.Client.outstanding client))

let suite =
  [
    ("recovered replica rebases origin", `Quick, test_recovered_replica_rebases_origin);
    ("updates deferred until rebase", `Quick, test_updates_deferred_until_rebase);
    ("reply cache on retransmission", `Quick, test_reply_cache_on_retransmission);
    ("full cluster reset bootstraps", `Quick, test_full_cluster_reset_bootstraps);
    ("repeated recovery cycles", `Slow, test_repeated_recovery_cycles);
  ]

let () = Alcotest.run "recovery-protocol" [ ("recovery-protocol", suite) ]
