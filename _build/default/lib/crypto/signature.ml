(* Simulated digital signatures.

   The paper's systems sign messages with RSA keys. No public-key package
   is installed here, so we model signatures as HMAC-SHA256 tags under a
   per-identity secret held in a keystore that plays the role of the PKI.

   The security property the protocols need — only the holder of the
   private key can produce a signature that verifies under the matching
   public key — is enforced structurally: [keypair] values are unforgeable
   capabilities (the secret is never exposed), and [sign] is the only way
   to build a [t] carrying a valid tag. Simulated attackers that have not
   captured a replica's keypair cannot call [sign] as that identity; an
   attacker that *has* captured one (the paper's root-access excursion)
   can, which is exactly the threat model BFT replication addresses. *)

type identity = string

type keypair = { id : identity; secret : string }

type t = { signer : identity; tag : string }

type keystore = { secrets : (identity, string) Hashtbl.t; mutable counter : int }

let create_keystore () = { secrets = Hashtbl.create 32; counter = 0 }

let generate ks id =
  if Hashtbl.mem ks.secrets id then
    invalid_arg (Printf.sprintf "Signature.generate: identity %s already registered" id);
  ks.counter <- ks.counter + 1;
  (* Secrets only need to be unique and unguessable-by-construction inside
     the simulation; deriving them from the keystore instance and a counter
     keeps runs deterministic. *)
  let secret = Sha256.digest (Printf.sprintf "keystore-secret:%s:%d" id ks.counter) in
  Hashtbl.replace ks.secrets id secret;
  { id; secret }

let identity kp = kp.id

let signer t = t.signer

let sign kp message = { signer = kp.id; tag = Hmac.mac ~key:kp.secret message }

let verify ks ~signer message t =
  String.equal t.signer signer
  &&
  match Hashtbl.find_opt ks.secrets signer with
  | None -> false
  | Some secret -> Hmac.verify ~key:secret ~tag:t.tag message

(* A deliberately invalid signature, used by attack code to model a forged
   message from an adversary who lacks the key. *)
let forge ~signer message =
  { signer; tag = Hmac.mac ~key:"attacker-has-no-key" message }

let size_bytes = 32
