(** SHA-256 (FIPS 180-4), implemented from scratch because no crypto
    package is available in this environment. Verified against the FIPS
    test vectors in the test suite. *)

(** A digest is 32 raw bytes. *)
type digest = string

type ctx

(** Fresh streaming context. *)
val init : unit -> ctx

(** Absorb input incrementally. *)
val feed_string : ctx -> string -> unit

(** Finish and return the digest. The context must not be reused. *)
val finalize : ctx -> digest

(** One-shot hash. *)
val digest : string -> digest

(** Hash the concatenation of the parts without building it. *)
val digest_list : string list -> digest

(** Lowercase hex rendering of a digest. *)
val to_hex : digest -> string

(** [hex_of_string s] is [to_hex (digest s)]. *)
val hex_of_string : string -> string
