(* HMAC-SHA256 (RFC 2104). Keys longer than the 64-byte block are hashed
   first, shorter keys are zero-padded, per the RFC. *)

let block_size = 64

let normalize_key key =
  let key = if String.length key > block_size then Sha256.digest key else key in
  if String.length key = block_size then key
  else key ^ String.make (block_size - String.length key) '\000'

let xor_with s byte =
  String.map (fun c -> Char.chr (Char.code c lxor byte)) s

let mac ~key message =
  let key = normalize_key key in
  let inner = Sha256.digest_list [ xor_with key 0x36; message ] in
  Sha256.digest_list [ xor_with key 0x5c; inner ]

let mac_list ~key parts =
  let key = normalize_key key in
  let ctx = Sha256.init () in
  Sha256.feed_string ctx (xor_with key 0x36);
  List.iter (Sha256.feed_string ctx) parts;
  let inner = Sha256.finalize ctx in
  Sha256.digest_list [ xor_with key 0x5c; inner ]

(* Constant-time-style comparison; timing is not observable in the
   simulator but the idiom is kept for fidelity. *)
let verify ~key ~tag message =
  let expected = mac ~key message in
  String.length expected = String.length tag
  &&
  let diff = ref 0 in
  String.iteri (fun i c -> diff := !diff lor (Char.code c lxor Char.code tag.[i])) expected;
  !diff = 0
