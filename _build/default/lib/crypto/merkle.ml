(* Merkle hash trees over lists of byte strings.

   Used for state-transfer integrity: a recovering SCADA master fetches
   state chunks from peers and checks each against the root agreed through
   the replication protocol. Leaves and interior nodes use distinct domain
   separators so a leaf cannot be replayed as an interior node. *)

type proof_step = { sibling : Sha256.digest; sibling_on_left : bool }

type proof = proof_step list

let leaf_hash data = Sha256.digest_list [ "\x00merkle-leaf"; data ]

let node_hash left right = Sha256.digest_list [ "\x01merkle-node"; left; right ]

(* Build all levels bottom-up; odd nodes are promoted unchanged (Bitcoin-
   style duplication would allow leaf-set ambiguity). *)
let levels leaves =
  if leaves = [] then invalid_arg "Merkle.levels: no leaves";
  let rec build level acc =
    if List.length level = 1 then List.rev (level :: acc)
    else
      let rec pair = function
        | left :: right :: rest -> node_hash left right :: pair rest
        | [ odd ] -> [ odd ]
        | [] -> []
      in
      build (pair level) (level :: acc)
  in
  build (List.map leaf_hash leaves) []

let root leaves =
  match List.rev (levels leaves) with
  | [ r ] :: _ -> r
  | _ -> assert false

let proof leaves index =
  let n = List.length leaves in
  if index < 0 || index >= n then invalid_arg "Merkle.proof: index out of range";
  let all_levels = levels leaves in
  let rec walk levels idx acc =
    match levels with
    | [] | [ _ ] -> List.rev acc
    | level :: rest ->
        let arr = Array.of_list level in
        let len = Array.length arr in
        let sibling_idx = if idx mod 2 = 0 then idx + 1 else idx - 1 in
        let acc =
          if sibling_idx < len then
            { sibling = arr.(sibling_idx); sibling_on_left = sibling_idx < idx } :: acc
          else acc (* promoted odd node: no sibling at this level *)
        in
        walk rest (idx / 2) acc
  in
  walk all_levels index []

let verify_proof ~root:expected ~leaf ~proof =
  let folded =
    List.fold_left
      (fun acc step ->
        if step.sibling_on_left then node_hash step.sibling acc else node_hash acc step.sibling)
      (leaf_hash leaf) proof
  in
  String.equal folded expected
