(** Merkle hash trees with membership proofs, used to integrity-check
    application state transfer chunks against an agreed root. *)

type proof_step = { sibling : Sha256.digest; sibling_on_left : bool }

type proof = proof_step list

(** Root hash over the leaf data list. Raises [Invalid_argument] on an
    empty list. *)
val root : string list -> Sha256.digest

(** [proof leaves index] is the membership proof for [List.nth leaves
    index]. Raises [Invalid_argument] if [index] is out of range. *)
val proof : string list -> int -> proof

(** [verify_proof ~root ~leaf ~proof] checks that [leaf] is a member of
    the tree with the given [root]. *)
val verify_proof : root:Sha256.digest -> leaf:string -> proof:proof -> bool

(** Domain-separated leaf hash (exposed for tests). *)
val leaf_hash : string -> Sha256.digest
