lib/crypto/merkle.mli: Sha256
