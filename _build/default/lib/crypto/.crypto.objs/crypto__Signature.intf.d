lib/crypto/signature.mli:
