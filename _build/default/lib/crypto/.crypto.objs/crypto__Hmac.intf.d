lib/crypto/hmac.mli:
