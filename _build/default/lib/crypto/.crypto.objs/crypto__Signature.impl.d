lib/crypto/signature.ml: Hashtbl Hmac Printf Sha256 String
