(* Red-team actor.

   An attacker owns machines attached to networks (its [position]s), a
   scratch log of attempted actions with outcomes, and — once it
   compromises hosts — footholds it can escalate. All attack actions act
   through the same network primitives as legitimate code: raw frame
   injection, UDP sockets, promiscuous sniffing. *)

type outcome = Succeeded of string | Failed of string

let outcome_ok = function Succeeded _ -> true | Failed _ -> false

let outcome_detail = function Succeeded d | Failed d -> d

type position = {
  pos_name : string;
  pos_host : Netbase.Host.t;
  pos_nic : Netbase.Host.nic;
}

type t = {
  engine : Sim.Engine.t;
  trace : Sim.Trace.t;
  mutable positions : position list;
  mutable log : (float * string * outcome) list;
  counters : Sim.Stats.Counter.t;
  learned_macs : (Netbase.Addr.Ip.t, Netbase.Addr.Mac.t) Hashtbl.t;
}

let create ~engine ~trace =
  {
    engine;
    trace;
    positions = [];
    log = [];
    counters = Sim.Stats.Counter.create ();
    learned_macs = Hashtbl.create 32;
  }

(* Passive sniffing installed on every attacker NIC: learn MAC addresses
   from any ARP traffic seen on the wire. *)
let sniff_arp t frame =
  match frame.Netbase.Packet.l3 with
  | Netbase.Packet.Arp_reply { sender_ip; sender_mac; _ }
  | Netbase.Packet.Arp_request { sender_ip; sender_mac; _ } ->
      Hashtbl.replace t.learned_macs sender_ip sender_mac
  | Netbase.Packet.Ipv4 _ -> ()

let known_mac t ip = Hashtbl.find_opt t.learned_macs ip

let counters t = t.counters

let log t = List.rev t.log

let record t ~action outcome =
  t.log <- (Sim.Engine.now t.engine, action, outcome) :: t.log;
  Sim.Stats.Counter.incr t.counters
    (if outcome_ok outcome then "action.succeeded" else "action.failed");
  Sim.Trace.record t.trace ~time:(Sim.Engine.now t.engine) ~category:"attack" "%s: %s — %s"
    action
    (match outcome with Succeeded _ -> "SUCCESS" | Failed _ -> "failed")
    (outcome_detail outcome)

(* Attach an attacker machine to a switch. [bound] registers its MAC in
   the switch's static table (models being handed a provisioned port, as
   in the red-team rules of engagement). *)
let attach ?(bound = true) t ~name ~ip switch =
  let host = Netbase.Host.create ~os:Netbase.Host.ubuntu_desktop ~engine:t.engine ~trace:t.trace name in
  let nic = Netbase.Host.add_nic host ~ip in
  let port = Netbase.Host.plug_into_switch host nic switch in
  if bound then Netbase.Switch.bind_mac switch (Netbase.Host.nic_mac nic) port;
  Netbase.Host.set_promiscuous nic (Some (fun frame -> sniff_arp t frame));
  let position = { pos_name = name; pos_host = host; pos_nic = nic } in
  t.positions <- position :: t.positions;
  position

(* Use an already-compromised machine as a position (the replica
   excursion hands the red team a Spire machine). *)
let position_on t ~name host nic =
  let position = { pos_name = name; pos_host = host; pos_nic = nic } in
  t.positions <- position :: t.positions;
  position
