lib/attack/testbed.mli: Netbase Plc Prime Scada Sim Spire
