lib/attack/testbed.ml: Array List Netbase Plc Prime Scada Sim Spire
