lib/attack/actions.ml: Attacker Hashtbl List Netbase Plc Sim String
