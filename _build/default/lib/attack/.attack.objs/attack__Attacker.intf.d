lib/attack/attacker.mli: Hashtbl Netbase Sim
