lib/attack/actions.mli: Attacker Netbase Sim
