lib/attack/campaign.mli: Format Testbed
