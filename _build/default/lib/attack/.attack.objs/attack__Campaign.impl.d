lib/attack/campaign.ml: Actions Array Attacker Fmt List Netbase Plc Prime Printf Result Scada Sim Spines Spire String Testbed
