lib/attack/attacker.ml: Hashtbl List Netbase Sim
