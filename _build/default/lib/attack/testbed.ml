(* The red-team experiment testbed (Fig. 3).

   One enterprise network (historian "PI server" plus a business
   workstation) connected through the corporate firewall/router to two
   parallel operations networks: the commercial SCADA system and Spire.
   As in the experiment, the corporate firewall's ACL admits the
   enterprise-to-operations flows that day-to-day operation needs — and,
   as the red team discovered on the commercial side, that is enough of a
   path to reach the PLC's maintenance service. *)

type t = {
  engine : Sim.Engine.t;
  trace : Sim.Trace.t;
  enterprise_switch : Netbase.Switch.t;
  enterprise_pcap : Netbase.Pcap.t;
  historian_host : Netbase.Host.t;
  workstation : Netbase.Host.t;
  router : Netbase.Router.t;
  commercial : Spire.Commercial.t;
  spire : Spire.Deployment.t;
  historian : Scada.Historian.t;
}

let create ?(config = Prime.Config.red_team ()) ?(scenario = Plc.Power.red_team)
    ?(spire_hardened = true) ~engine ~trace () =
  (* Enterprise network. *)
  let enterprise_switch = Netbase.Switch.create ~engine ~trace "enterprise" in
  let enterprise_pcap = Netbase.Pcap.create () in
  Netbase.Switch.add_tap enterprise_switch (fun frame ->
      Netbase.Pcap.capture enterprise_pcap ~time:(Sim.Engine.now engine) frame);
  let historian_host =
    Netbase.Host.create ~os:Netbase.Host.ubuntu_desktop ~engine ~trace "pi-server"
  in
  let h_nic = Netbase.Host.add_nic historian_host ~ip:Spire.Addressing.historian_ip in
  let (_ : int) = Netbase.Host.plug_into_switch historian_host h_nic enterprise_switch in
  Netbase.Host.set_default_gateway historian_host Spire.Addressing.enterprise_gateway;
  Netbase.Host.add_service historian_host ~port:5450
    { Netbase.Host.name = "pi-historian"; remote_vuln = Some "historian-exploit" };
  let workstation =
    Netbase.Host.create ~os:Netbase.Host.ubuntu_desktop ~engine ~trace "workstation"
  in
  let w_nic = Netbase.Host.add_nic workstation ~ip:Spire.Addressing.workstation_ip in
  let (_ : int) = Netbase.Host.plug_into_switch workstation w_nic enterprise_switch in
  Netbase.Host.set_default_gateway workstation Spire.Addressing.enterprise_gateway;
  (* The two parallel operations networks. *)
  let commercial = Spire.Commercial.create ~engine ~trace scenario in
  let spire = Spire.Deployment.create ~hardened:spire_hardened ~engine ~trace ~config scenario in
  (* Corporate firewall: enterprise uplink plus one interface on each
     operations network. The ACL mirrors the permissive reality the red
     team found: enterprise hosts may reach the operations subnets (the
     historian collects from the SCADA systems), but nothing may cross
     between the two operations networks. *)
  let router = Netbase.Router.create ~engine ~trace "corp-firewall" in
  let (_ : Netbase.Host.nic) =
    Netbase.Router.add_interface router ~ip:Spire.Addressing.enterprise_gateway
      enterprise_switch
  in
  let (_ : Netbase.Host.nic) =
    Netbase.Router.add_interface router ~ip:Spire.Addressing.commercial_gateway
      (Spire.Commercial.ops_switch commercial)
  in
  let (_ : Netbase.Host.nic) =
    Netbase.Router.add_interface router ~ip:Spire.Addressing.spire_ops_gateway
      (Spire.Deployment.external_switch spire)
  in
  Netbase.Router.permit router ~src_subnet:Spire.Addressing.enterprise_subnet
    ~dst_subnet:Spire.Addressing.commercial_subnet ~description:"enterprise to commercial ops" ();
  Netbase.Router.permit router ~src_subnet:Spire.Addressing.commercial_subnet
    ~dst_subnet:Spire.Addressing.enterprise_subnet ~description:"commercial ops to enterprise" ();
  Netbase.Router.permit router ~src_subnet:Spire.Addressing.enterprise_subnet
    ~dst_subnet:Spire.Addressing.external_subnet ~description:"enterprise to spire ops" ();
  Netbase.Router.permit router ~src_subnet:Spire.Addressing.external_subnet
    ~dst_subnet:Spire.Addressing.enterprise_subnet ~description:"spire ops to enterprise" ();
  let historian = Scada.Historian.create () in
  (* Feed the historian from the commercial master's state changes (its
     normal data source in the testbed). *)
  ignore
    (Sim.Engine.every engine ~period:5.0 (fun () ->
         Scada.Historian.record historian ~time:(Sim.Engine.now engine) ~source:"commercial"
           ~kind:"sample" ~detail:"periodic archive"));
  {
    engine;
    trace;
    enterprise_switch;
    enterprise_pcap;
    historian_host;
    workstation;
    router;
    commercial;
    spire;
    historian;
  }

let commercial t = t.commercial

let spire t = t.spire

let engine t = t.engine

(* Useful target lists for reconnaissance. *)
let commercial_targets t =
  ignore t;
  Spire.Addressing.commercial_master :: Spire.Addressing.commercial_backup
  :: Spire.Addressing.commercial_hmi
  :: List.init
       (Array.length (Spire.Commercial.plc_hosts t.commercial))
       (fun k -> Spire.Addressing.commercial_plc k)

let spire_targets t =
  let n = (Spire.Deployment.config t.spire).Prime.Config.n in
  let n_proxies = Array.length (Spire.Deployment.proxies t.spire) in
  List.init n (fun i -> Spire.Addressing.replica_external i)
  @ List.init n_proxies (fun k -> Spire.Addressing.proxy_external k)
  @ [ Spire.Addressing.hmi_external 0 ]
