(** Red-team actor: machines attached to networks, an action log, and
    passive ARP sniffing on every attacker NIC. *)

type outcome = Succeeded of string | Failed of string

val outcome_ok : outcome -> bool

val outcome_detail : outcome -> string

type position = {
  pos_name : string;
  pos_host : Netbase.Host.t;
  pos_nic : Netbase.Host.nic;
}

type t = {
  engine : Sim.Engine.t;
  trace : Sim.Trace.t;
  mutable positions : position list;
  mutable log : (float * string * outcome) list;
  counters : Sim.Stats.Counter.t;
  learned_macs : (Netbase.Addr.Ip.t, Netbase.Addr.Mac.t) Hashtbl.t;
}

val create : engine:Sim.Engine.t -> trace:Sim.Trace.t -> t

(** A MAC learned by passive sniffing, if any. *)
val known_mac : t -> Netbase.Addr.Ip.t -> Netbase.Addr.Mac.t option

val counters : t -> Sim.Stats.Counter.t

val log : t -> (float * string * outcome) list

val record : t -> action:string -> outcome -> unit

(** Attach an attacker machine to a switch. [bound] (default true)
    registers its MAC in the switch's static table — being handed a
    provisioned port, per the rules of engagement. *)
val attach : ?bound:bool -> t -> name:string -> ip:Netbase.Addr.Ip.t -> Netbase.Switch.t -> position

(** Use an already-compromised machine as a position (the replica
    excursion). *)
val position_on : t -> name:string -> Netbase.Host.t -> Netbase.Host.nic -> position
