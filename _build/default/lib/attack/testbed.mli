(** The Fig. 3 red-team testbed: enterprise network (historian,
    workstation) behind a corporate firewall/router, connected to the two
    parallel operations networks — the commercial SCADA system and
    Spire. *)

type t = {
  engine : Sim.Engine.t;
  trace : Sim.Trace.t;
  enterprise_switch : Netbase.Switch.t;
  enterprise_pcap : Netbase.Pcap.t;
  historian_host : Netbase.Host.t;
  workstation : Netbase.Host.t;
  router : Netbase.Router.t;
  commercial : Spire.Commercial.t;
  spire : Spire.Deployment.t;
  historian : Scada.Historian.t;
}

(** [spire_hardened:false] builds Spire without the Section III-B
    hardening — the ablation behind the paper's "lessons learned". *)
val create :
  ?config:Prime.Config.t ->
  ?scenario:Plc.Power.scenario ->
  ?spire_hardened:bool ->
  engine:Sim.Engine.t ->
  trace:Sim.Trace.t ->
  unit ->
  t

val commercial : t -> Spire.Commercial.t

val spire : t -> Spire.Deployment.t

val engine : t -> Sim.Engine.t

(** Reconnaissance target lists. *)
val commercial_targets : t -> Netbase.Addr.Ip.t list

val spire_targets : t -> Netbase.Addr.Ip.t list
