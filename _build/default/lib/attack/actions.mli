(** Red-team attack actions (the Section IV toolbox): reconnaissance,
    ARP poisoning / man-in-the-middle, IP spoofing, denial of service,
    host exploitation, and the PLC maintenance-channel attacks. *)

type scan_result = { scanned_ip : Netbase.Addr.Ip.t; port : int; status : string }

(** Paced connection-probe sweep (50 probes/s). Returns a lookup function
    to query once the simulation has run: "open:<service>", "closed", or
    "filtered". *)
val port_scan :
  Attacker.t ->
  Attacker.position ->
  targets:Netbase.Addr.Ip.t list ->
  ports:int list ->
  Netbase.Addr.Ip.t ->
  int ->
  string

(** Broadcast an ARP request for [ip]; read the result via the returned
    thunk (backed by the attacker's passive sniffer) after running. *)
val resolve_mac :
  Attacker.t -> Attacker.position -> ip:Netbase.Addr.Ip.t -> unit -> Netbase.Addr.Mac.t option

(** Poison [victim]'s ARP cache so [impersonate] maps to the attacker's
    MAC; re-sent every second until the returned timer is cancelled. *)
val arp_poison :
  Attacker.t ->
  Attacker.position ->
  victim_ip:Netbase.Addr.Ip.t ->
  victim_mac:Netbase.Addr.Mac.t ->
  impersonate:Netbase.Addr.Ip.t ->
  Sim.Engine.timer

type intercept = {
  mutable intercepted : int;
  mutable forwarded : int;
  mutable tampered : int;
  mutable dropped : int;
}

(** Full MITM between two hosts: poison both directions and intercept
    their traffic. [rewrite] returns a replacement payload (tamper), the
    original (relay), or [None] (drop). *)
val man_in_the_middle :
  Attacker.t ->
  Attacker.position ->
  ip_a:Netbase.Addr.Ip.t ->
  mac_a:Netbase.Addr.Mac.t ->
  ip_b:Netbase.Addr.Ip.t ->
  mac_b:Netbase.Addr.Mac.t ->
  rewrite:(Netbase.Packet.payload -> Netbase.Packet.payload option) ->
  intercept

(** Send a datagram with a forged source address. *)
val spoofed_send :
  Attacker.t ->
  Attacker.position ->
  pretend_ip:Netbase.Addr.Ip.t ->
  dst_ip:Netbase.Addr.Ip.t ->
  dst_port:int ->
  src_port:int ->
  size:int ->
  Netbase.Packet.payload ->
  unit

(** Flood [rate] packets/s at the target for [duration] seconds; the
    returned ref counts packets sent. *)
val dos_flood :
  Attacker.t ->
  Attacker.position ->
  target_ip:Netbase.Addr.Ip.t ->
  target_port:int ->
  rate:float ->
  duration:float ->
  int ref

(** Remote service exploitation (reachability + matching vulnerability). *)
val exploit_service :
  Attacker.t -> Attacker.position -> Netbase.Host.t -> port:int -> exploit:string ->
  (unit, string) result

(** Local privilege escalation on a host with a foothold. *)
val escalate : Attacker.t -> Netbase.Host.t -> exploit:string -> (unit, string) result

(** Dump a PLC's configuration over the vendor maintenance channel; the
    result fills in when (if) the PLC answers. *)
val dump_plc_config :
  Attacker.t -> Attacker.position -> plc_ip:Netbase.Addr.Ip.t -> string option ref

val upload_plc_config :
  Attacker.t -> Attacker.position -> plc_ip:Netbase.Addr.Ip.t -> config:string -> unit

(** Direct actuation via the maintenance channel (honoured only by
    compromised logic). *)
val actuate_plc :
  Attacker.t -> Attacker.position -> plc_ip:Netbase.Addr.Ip.t -> coil:int -> close:bool -> unit
