(* The scripted red-team campaign of Section IV.

   Three phases, as in the exercise:
   - E1: the commercial system, attacked first from the enterprise
     network (pivot through the corporate firewall, PLC configuration
     dump and upload, breaker takeover) and then from inside the
     operations network (ARP MITM between SCADA master and HMI);
   - E2: Spire, attacked from the same positions with the same toolbox
     (scanning, ARP poisoning, IP spoofing, traffic floods);
   - E3: the excursion granting the red team gradually increasing control
     of one Spire replica (daemon stop, unkeyed rebuild, privilege
     escalation attempts, keyed patched binary, insider flooding).

   Every step records whether the *attacker* succeeded and what the
   system-level effect was; the bench layer prints these as the
   E1/E2/E3 tables. *)

type step = {
  phase : string;
  attack : string;
  attacker_position : string;
  succeeded : bool; (* from the attacker's perspective *)
  detail : string;
}

let step ~phase ~attack ~position ~succeeded detail =
  { phase; attack; attacker_position = position; succeeded; detail }

(* Progress probe: did the cycling SCADA service keep actuating breakers
   during an attack window? *)
let total_actuations deployment =
  Array.fold_left
    (fun acc p ->
      Array.fold_left (fun acc b -> acc + Plc.Breaker.actuations b) acc
        p.Spire.Deployment.p_breakers)
    0
    (Spire.Deployment.proxies deployment)

let hmi_field_consistent deployment =
  let hmi = (Spire.Deployment.hmis deployment).(0).Spire.Deployment.h_hmi in
  Array.for_all
    (fun p ->
      Array.for_all
        (fun b ->
          Scada.Hmi.displayed_closed hmi (Plc.Breaker.name b)
          = Some (Plc.Breaker.is_closed b))
        p.Spire.Deployment.p_breakers)
    (Spire.Deployment.proxies deployment)

(* --- E1: commercial system ----------------------------------------------------- *)

let run_commercial (tb : Testbed.t) =
  let engine = Testbed.engine tb in
  let attacker = Attacker.create ~engine ~trace:tb.Testbed.trace in
  let steps = ref [] in
  let push s = steps := s :: !steps in
  let run ~until = Sim.Engine.run ~until engine in
  let t0 = Sim.Engine.now engine in
  (* Settle the system. *)
  run ~until:(t0 +. 3.0);
  (* Position 1: the enterprise network. *)
  let ent =
    Attacker.attach attacker ~name:"redteam-ent" ~ip:(Netbase.Addr.Ip.v 10 0 10 66)
      tb.Testbed.enterprise_switch
  in
  Netbase.Host.set_default_gateway ent.Attacker.pos_host Spire.Addressing.enterprise_gateway;
  (* Step 1: compromise an enterprise machine (the historian). *)
  let r = Actions.exploit_service attacker ent tb.Testbed.historian_host ~port:5450 ~exploit:"historian-exploit" in
  push
    (step ~phase:"enterprise" ~attack:"exploit historian service" ~position:"enterprise"
       ~succeeded:(Result.is_ok r)
       (match r with Ok () -> "PI server compromised (user level)" | Error e -> e));
  (* Step 2: scan the commercial operations network through the firewall. *)
  let targets = Testbed.commercial_targets tb in
  let status = Actions.port_scan attacker ent ~targets ~ports:[ 502; 5500; 9600; 22 ] in
  run ~until:(Sim.Engine.now engine +. 2.0);
  let plc0 = Spire.Addressing.commercial_plc 0 in
  let visible =
    List.length
      (List.filter
         (fun ip ->
           List.exists
             (fun p ->
               let s = status ip p in
               String.length s >= 4 && String.sub s 0 4 = "open")
             [ 502; 5500; 9600; 22 ])
         targets)
  in
  push
    (step ~phase:"enterprise" ~attack:"scan operations network" ~position:"enterprise"
       ~succeeded:(visible > 0)
       (Printf.sprintf "%d of %d operations hosts expose services through the firewall" visible
          (List.length targets)));
  (* Step 3: dump the PLC configuration over its maintenance channel. *)
  let dump = Actions.dump_plc_config attacker ent ~plc_ip:plc0 in
  run ~until:(Sim.Engine.now engine +. 2.0);
  push
    (step ~phase:"enterprise" ~attack:"PLC memory dump (maintenance port)" ~position:"enterprise"
       ~succeeded:(!dump <> None)
       (match !dump with
       | Some config -> "configuration exfiltrated: " ^ config
       | None -> "no answer from PLC"));
  (* Step 4: upload modified configuration. *)
  (match !dump with
  | Some config ->
      Actions.upload_plc_config attacker ent ~plc_ip:plc0 ~config:(config ^ ":backdoored");
      run ~until:(Sim.Engine.now engine +. 2.0)
  | None -> ());
  let device0 = (Spire.Commercial.devices tb.Testbed.commercial).(0) in
  push
    (step ~phase:"enterprise" ~attack:"upload modified PLC configuration" ~position:"enterprise"
       ~succeeded:(Plc.Device.logic_compromised device0)
       (if Plc.Device.logic_compromised device0 then "malicious ladder logic installed"
        else "upload rejected"));
  (* Step 5: take control — open a breaker against the operator. *)
  let b57 =
    match Spire.Commercial.find_breaker tb.Testbed.commercial "B57" with
    | Some b -> b
    | None -> invalid_arg "campaign: B57 missing"
  in
  let was_closed = Plc.Breaker.is_closed b57 in
  Actions.actuate_plc attacker ent ~plc_ip:plc0 ~coil:1 ~close:(not was_closed);
  run ~until:(Sim.Engine.now engine +. 2.0);
  push
    (step ~phase:"enterprise" ~attack:"actuate breaker via compromised PLC" ~position:"enterprise"
       ~succeeded:(Plc.Breaker.is_closed b57 <> was_closed)
       (if Plc.Breaker.is_closed b57 <> was_closed then
          "attacker controls field equipment from the enterprise network"
        else "breaker did not move"));
  (* The operator tries to restore it through the SCADA master; the
     compromised logic ignores the command. *)
  Spire.Commercial.hmi_command tb.Testbed.commercial ~breaker:"B57" ~close:was_closed;
  run ~until:(Sim.Engine.now engine +. 3.0);
  push
    (step ~phase:"enterprise" ~attack:"operator attempts restoration" ~position:"enterprise"
       ~succeeded:(Plc.Breaker.is_closed b57 <> was_closed)
       (if Plc.Breaker.is_closed b57 <> was_closed then
          "supervisory commands ignored by malicious logic"
        else "operator regained control"));
  (* Position 2: directly on the commercial operations network. *)
  let ops =
    Attacker.attach attacker ~name:"redteam-ops" ~ip:(Netbase.Addr.Ip.v 10 0 20 66)
      (Spire.Commercial.ops_switch tb.Testbed.commercial)
  in
  (* Step 6: ARP MITM between master and HMI; invert every display update
     and so paint a false picture for the operator. *)
  let master_mac = Actions.resolve_mac attacker ops ~ip:Spire.Addressing.commercial_master in
  let hmi_mac = Actions.resolve_mac attacker ops ~ip:Spire.Addressing.commercial_hmi in
  run ~until:(Sim.Engine.now engine +. 1.0);
  (match (master_mac (), hmi_mac ()) with
  | Some m_mac, Some h_mac ->
      let stats =
        Actions.man_in_the_middle attacker ops ~ip_a:Spire.Addressing.commercial_master
          ~mac_a:m_mac ~ip_b:Spire.Addressing.commercial_hmi ~mac_b:h_mac
          ~rewrite:(fun payload ->
            match payload with
            | Spire.Commercial.Hmi_plain { breaker; closed } ->
                Some (Spire.Commercial.Hmi_plain { breaker; closed = not closed })
            | other -> Some other)
      in
      run ~until:(Sim.Engine.now engine +. 5.0);
      (* The HMI now shows the inverse of the field truth. *)
      let b56 =
        match Spire.Commercial.find_breaker tb.Testbed.commercial "B56" with
        | Some b -> b
        | None -> invalid_arg "campaign: B56 missing"
      in
      Plc.Breaker.force b56 Plc.Breaker.Open;
      run ~until:(Sim.Engine.now engine +. 4.0);
      let displayed = Spire.Commercial.displayed_closed tb.Testbed.commercial "B56" in
      let lied = displayed = Some true (* field is open, screen says closed *) in
      push
        (step ~phase:"operations" ~attack:"ARP MITM: modify updates to HMI"
           ~position:"commercial operations" ~succeeded:(stats.Actions.tampered > 0 && lied)
           (Printf.sprintf
              "%d updates intercepted, %d tampered; HMI shows B56 closed while field is open"
              stats.Actions.intercepted stats.Actions.tampered))
  | _ ->
      push
        (step ~phase:"operations" ~attack:"ARP MITM: modify updates to HMI"
           ~position:"commercial operations" ~succeeded:false "could not resolve victim MACs"));
  List.rev !steps

(* --- E2: Spire, network attacks -------------------------------------------------- *)

let run_spire_network (tb : Testbed.t) =
  let engine = Testbed.engine tb in
  let deployment = Testbed.spire tb in
  let attacker = Attacker.create ~engine ~trace:tb.Testbed.trace in
  let steps = ref [] in
  let push s = steps := s :: !steps in
  let run ~until = Sim.Engine.run ~until engine in
  run ~until:(Sim.Engine.now engine +. 3.0);
  (* The breaker-cycling workload the red team tried to disrupt. *)
  let driver = Spire.Scenario_driver.create deployment in
  Spire.Scenario_driver.start driver ~period:0.5;
  run ~until:(Sim.Engine.now engine +. 5.0);
  (* Position 1: enterprise network. *)
  let ent =
    Attacker.attach attacker ~name:"redteam-ent2" ~ip:(Netbase.Addr.Ip.v 10 0 10 67)
      tb.Testbed.enterprise_switch
  in
  Netbase.Host.set_default_gateway ent.Attacker.pos_host Spire.Addressing.enterprise_gateway;
  let spire_ips = Testbed.spire_targets tb in
  let status =
    Actions.port_scan attacker ent ~targets:spire_ips
      ~ports:[ 22; 502; 5500; 8100; 8120; 9600 ]
  in
  run ~until:(Sim.Engine.now engine +. 2.0);
  let any_visible =
    List.exists
      (fun ip ->
        List.exists
          (fun p -> not (String.equal (status ip p) "filtered"))
          [ 22; 502; 5500; 8100; 8120; 9600 ])
      spire_ips
  in
  push
    (step ~phase:"enterprise" ~attack:"scan Spire operations network" ~position:"enterprise"
       ~succeeded:any_visible
       (if any_visible then "some Spire services visible"
        else "no visibility into the system (every probe filtered)"));
  (* Position 2: directly on the Spire operations (external) network. *)
  let ops =
    Attacker.attach attacker ~name:"redteam-spire-ops" ~ip:(Netbase.Addr.Ip.v 10 0 2 66)
      (Spire.Deployment.external_switch deployment)
  in
  (* Port scan from inside. *)
  let status2 =
    Actions.port_scan attacker ops ~targets:spire_ips ~ports:[ 22; 502; 8120; 9600 ]
  in
  run ~until:(Sim.Engine.now engine +. 2.0);
  let any_visible2 =
    List.exists
      (fun ip ->
        List.exists (fun p -> not (String.equal (status2 ip p) "filtered")) [ 22; 502; 8120; 9600 ])
      spire_ips
  in
  push
    (step ~phase:"operations" ~attack:"port scan from inside" ~position:"spire operations"
       ~succeeded:any_visible2
       (if any_visible2 then "services exposed" else "host firewalls filter every probe"));
  (* ARP poisoning against replica 0, impersonating the MAIN proxy. *)
  let r0 = (Spire.Deployment.replicas deployment).(0) in
  let victim_mac = Netbase.Host.nic_mac r0.Spire.Deployment.r_external_nic in
  let (_ : Sim.Engine.timer) =
    Actions.arp_poison attacker ops ~victim_ip:(Spire.Addressing.replica_external 0)
      ~victim_mac ~impersonate:(Spire.Addressing.proxy_external 0)
  in
  run ~until:(Sim.Engine.now engine +. 3.0);
  let poisoned =
    match Netbase.Host.arp_lookup r0.Spire.Deployment.r_host (Spire.Addressing.proxy_external 0) with
    | Some mac -> Netbase.Addr.Mac.equal mac (Netbase.Host.nic_mac ops.Attacker.pos_nic)
    | None -> false
  in
  push
    (step ~phase:"operations" ~attack:"ARP poisoning (impersonate proxy)"
       ~position:"spire operations" ~succeeded:poisoned
       (if poisoned then "replica redirects proxy traffic to attacker"
        else "static ARP entries ignore the poison"));
  (* IP spoofing: inject garbage into the replication port pretending to
     be a legitimate proxy. *)
  let before_garbage =
    Sim.Stats.Counter.get (Spines.Node.counters r0.Spire.Deployment.r_external_node) "link.garbage"
    + Sim.Stats.Counter.get (Spines.Node.counters r0.Spire.Deployment.r_external_node) "auth.reject"
  in
  for _ = 1 to 20 do
    Actions.spoofed_send attacker ops ~pretend_ip:(Spire.Addressing.proxy_external 0)
      ~dst_ip:(Spire.Addressing.replica_external 0) ~dst_port:Spire.Addressing.spines_external_port
      ~src_port:Spire.Addressing.spines_external_port ~size:200 (Netbase.Packet.Raw "forged spines traffic")
  done;
  run ~until:(Sim.Engine.now engine +. 2.0);
  let after_garbage =
    Sim.Stats.Counter.get (Spines.Node.counters r0.Spire.Deployment.r_external_node) "link.garbage"
    + Sim.Stats.Counter.get (Spines.Node.counters r0.Spire.Deployment.r_external_node) "auth.reject"
  in
  let consistent = hmi_field_consistent deployment in
  push
    (step ~phase:"operations" ~attack:"IP spoofing into replication port"
       ~position:"spire operations"
       ~succeeded:false
       (Printf.sprintf
          "%d forged packets rejected by Spines authentication; service %s"
          (after_garbage - before_garbage)
          (if consistent then "unaffected" else "DEGRADED")));
  (* Denial-of-service burst against a replica (spoofed as an allowed
     peer, so the host firewall cannot drop it by address). *)
  let actuations_before = total_actuations deployment in
  let (_ : int ref) =
    Actions.dos_flood attacker ops ~target_ip:(Spire.Addressing.replica_external 0)
      ~target_port:Spire.Addressing.spines_external_port ~rate:20_000.0 ~duration:5.0
  in
  run ~until:(Sim.Engine.now engine +. 8.0);
  let actuations_during = total_actuations deployment - actuations_before in
  push
    (step ~phase:"operations" ~attack:"denial-of-service burst (20k pkt/s, 5 s)"
       ~position:"spire operations" ~succeeded:(actuations_during = 0)
       (Printf.sprintf "breaker cycling continued: %d actuations during the flood"
          actuations_during));
  Spire.Scenario_driver.stop driver;
  run ~until:(Sim.Engine.now engine +. 5.0);
  List.rev !steps

(* --- E3: the replica excursion ---------------------------------------------------- *)

let run_excursion (tb : Testbed.t) =
  let engine = Testbed.engine tb in
  let deployment = Testbed.spire tb in
  let attacker = Attacker.create ~engine ~trace:tb.Testbed.trace in
  let steps = ref [] in
  let push s = steps := s :: !steps in
  let run ~until = Sim.Engine.run ~until engine in
  run ~until:(Sim.Engine.now engine +. 3.0);
  let driver = Spire.Scenario_driver.create deployment in
  Spire.Scenario_driver.start driver ~period:0.5;
  run ~until:(Sim.Engine.now engine +. 5.0);
  let r0 = (Spire.Deployment.replicas deployment).(0) in
  let service_ok ~window =
    let before = total_actuations deployment in
    run ~until:(Sim.Engine.now engine +. window);
    total_actuations deployment - before
  in
  (* User-level access granted on replica 0. *)
  Netbase.Host.set_compromise r0.Spire.Deployment.r_host Netbase.Host.User_level;
  (* Step 1: stop the Spines daemons. *)
  Spines.Node.stop r0.Spire.Deployment.r_internal_node;
  Spines.Node.stop r0.Spire.Deployment.r_external_node;
  let progressed = service_ok ~window:10.0 in
  push
    (step ~phase:"excursion" ~attack:"stop Spines daemons on one replica"
       ~position:"replica-0 (user)" ~succeeded:(progressed = 0)
       (Printf.sprintf "system tolerates the silent replica: %d actuations" progressed));
  (* Step 2: run a rebuilt open-source daemon without the new keys. *)
  let rogue_config =
    {
      (Spines.Node.default_config ~port:Spire.Addressing.spines_internal_port ~it_mode:true
         (Spines.Topology.full_mesh
            (List.init (Spire.Deployment.config deployment).Prime.Config.n (fun i -> i))))
      with
      Spines.Node.group_key = None;
    }
  in
  let rogue =
    Spines.Node.create ~engine ~trace:tb.Testbed.trace ~host:r0.Spire.Deployment.r_host ~id:0
      rogue_config
  in
  for j = 1 to (Spire.Deployment.config deployment).Prime.Config.n - 1 do
    Spines.Node.set_peer_address rogue j (Spire.Addressing.replica_internal j)
  done;
  Spines.Node.start rogue;
  Spines.Node.send rogue ~client:1 ~size:100 (Spines.Node.To_group "prime")
    (Netbase.Packet.Raw "malicious injection");
  let r1 = (Spire.Deployment.replicas deployment).(1) in
  let rejects_before =
    Sim.Stats.Counter.get (Spines.Node.counters r1.Spire.Deployment.r_internal_node) "auth.reject"
  in
  let progressed = service_ok ~window:8.0 in
  let rejects_after =
    Sim.Stats.Counter.get (Spines.Node.counters r1.Spire.Deployment.r_internal_node) "auth.reject"
  in
  Spines.Node.stop rogue;
  push
    (step ~phase:"excursion" ~attack:"run modified daemon without encryption keys"
       ~position:"replica-0 (user)" ~succeeded:(progressed = 0 && rejects_after <= rejects_before)
       (Printf.sprintf "peers rejected %d unauthenticated messages; %d actuations continued"
          (rejects_after - rejects_before) progressed));
  (* Step 3: privilege escalation attempts (dirtycow, sshd). *)
  let dirty = Actions.escalate attacker r0.Spire.Deployment.r_host ~exploit:"dirtycow" in
  let sshd = Actions.escalate attacker r0.Spire.Deployment.r_host ~exploit:"ssh-exploit" in
  push
    (step ~phase:"excursion" ~attack:"privilege escalation (dirtycow, sshd)"
       ~position:"replica-0 (user)"
       ~succeeded:(Result.is_ok dirty || Result.is_ok sshd)
       (match (dirty, sshd) with
       | Error a, Error b -> Printf.sprintf "both failed on hardened CentOS: %s; %s" a b
       | _ -> "escalated to root"));
  (* Step 4: patch the (keyed) Spines binary with the discovered exploit;
     accepted as a member, but the vulnerable code path is disabled in
     intrusion-tolerant mode. *)
  Spines.Node.start r0.Spire.Deployment.r_internal_node;
  Spines.Node.start r0.Spire.Deployment.r_external_node;
  Spines.Node.inject_exploit r0.Spire.Deployment.r_internal_node "drop-foreign-traffic";
  let exploited_before =
    Sim.Stats.Counter.get (Spines.Node.counters r0.Spire.Deployment.r_internal_node) "exploit.dropped"
  in
  let progressed = service_ok ~window:10.0 in
  let exploited_after =
    Sim.Stats.Counter.get (Spines.Node.counters r0.Spire.Deployment.r_internal_node) "exploit.dropped"
  in
  push
    (step ~phase:"excursion" ~attack:"patched keyed binary with exploit"
       ~position:"replica-0 (user)"
       ~succeeded:(exploited_after > exploited_before || progressed = 0)
       (Printf.sprintf
          "accepted as valid member; exploit fired %d times (code path disabled in IT mode); %d actuations"
          (exploited_after - exploited_before) progressed));
  (* Step 5: root access granted — insider floods the overlay as a
     trusted member, attacking fairness. *)
  Netbase.Host.set_compromise r0.Spire.Deployment.r_host Netbase.Host.Root_level;
  for _ = 1 to 3000 do
    Spines.Node.send r0.Spire.Deployment.r_internal_node ~client:99 ~size:500
      (Spines.Node.To_group "prime") (Netbase.Packet.Raw "insider flood")
  done;
  let clipped_probe () =
    Sim.Stats.Counter.get (Spines.Node.counters r1.Spire.Deployment.r_internal_node)
      "fairness.clipped"
  in
  let clipped_before = clipped_probe () in
  let progressed = service_ok ~window:10.0 in
  let clipped_after = clipped_probe () in
  push
    (step ~phase:"excursion" ~attack:"insider flooding as trusted member (root)"
       ~position:"replica-0 (root)" ~succeeded:(progressed = 0)
       (Printf.sprintf
          "source fairness clipped %d flood messages; %d actuations continued"
          (clipped_after - clipped_before) progressed));
  Spire.Scenario_driver.stop driver;
  run ~until:(Sim.Engine.now engine +. 3.0);
  List.rev !steps

let pp_step ppf s =
  Fmt.pf ppf "%-12s %-48s %-24s %-7s %s" s.phase s.attack s.attacker_position
    (if s.succeeded then "BREACH" else "held")
    s.detail
