(** The scripted Section IV red-team campaign: the commercial system from
    enterprise and operations positions (E1), Spire under network attacks
    (E2), and the compromised-replica excursion (E3). Each step records
    whether the attacker succeeded and the observed system-level effect. *)

type step = {
  phase : string;
  attack : string;
  attacker_position : string;
  succeeded : bool; (* from the attacker's perspective *)
  detail : string;
}

(** E1: historian exploit, operations scan, PLC configuration dump and
    upload, breaker takeover, HMI MITM. *)
val run_commercial : Testbed.t -> step list

(** E2: scans, ARP poisoning, IP spoofing and DoS against Spire, with the
    breaker-cycling workload running. *)
val run_spire_network : Testbed.t -> step list

(** E3: daemon stop, unkeyed daemon, privilege escalation, patched keyed
    binary, insider flooding — with gradually increasing replica access. *)
val run_excursion : Testbed.t -> step list

val pp_step : Format.formatter -> step -> unit
