lib/plc/rtu.ml: Array Breaker Dnp3 List Netbase Sim String
