lib/plc/power.ml: List Printf String
