lib/plc/dnp3.ml: Array Buffer Char List Netbase Printf String
