lib/plc/device.ml: Array Breaker List Modbus Netbase Printf Sim String
