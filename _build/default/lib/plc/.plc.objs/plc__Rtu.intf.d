lib/plc/rtu.mli: Breaker Dnp3 Netbase Sim
