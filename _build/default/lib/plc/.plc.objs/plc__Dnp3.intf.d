lib/plc/dnp3.mli: Netbase
