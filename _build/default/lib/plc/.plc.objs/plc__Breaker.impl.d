lib/plc/breaker.ml: Fmt List Sim
