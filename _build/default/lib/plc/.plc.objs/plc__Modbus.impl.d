lib/plc/modbus.ml: Array Buffer Char List Netbase Printf String
