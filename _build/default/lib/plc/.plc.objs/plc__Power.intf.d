lib/plc/power.mli:
