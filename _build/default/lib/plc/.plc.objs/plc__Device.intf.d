lib/plc/device.mli: Breaker Modbus Netbase Sim
