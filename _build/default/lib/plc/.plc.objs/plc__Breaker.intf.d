lib/plc/breaker.mli: Format Sim
