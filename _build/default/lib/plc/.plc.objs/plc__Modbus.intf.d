lib/plc/modbus.mli: Netbase
