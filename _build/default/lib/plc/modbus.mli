(** Modbus with real MBAP binary framing (the subset the deployment used:
    coil reads/writes, register reads/writes). Plaintext by design — an
    attacker on the wire can decode and forge frames, which is why Spire
    confines Modbus to the dedicated proxy-to-PLC cable. *)

val tcp_port : int

type request =
  | Read_coils of { addr : int; count : int }
  | Write_single_coil of { addr : int; value : bool }
  | Read_holding_registers of { addr : int; count : int }
  | Write_single_register of { addr : int; value : int }

type response =
  | Coils of bool list
  | Coil_written of { addr : int; value : bool }
  | Registers of int list
  | Register_written of { addr : int; value : int }
  | Exception_response of { function_code : int; exception_code : int }

type 'a framed = { transaction : int; unit_id : int; body : 'a }

(** Raw Modbus bytes on the wire. *)
type Netbase.Packet.payload += Frame of string

exception Decode_error of string

val encode_request : request framed -> string

val encode_response : response framed -> string

(** Raise [Decode_error] on malformed frames. *)
val decode_request : string -> request framed

val decode_response : string -> response framed

(** Coil responses pad to whole bytes; keep only the first [count]. *)
val truncate_coils : bool list -> int -> bool list

val describe_request : request -> string
