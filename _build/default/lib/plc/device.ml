(* Emulated PLC (OpenPLC stand-in).

   Serves Modbus on port 502: coils command the wired breakers, holding
   registers expose their actual positions. Also carries the vendor
   maintenance service the red team abused on the commercial system — an
   unauthenticated configuration dump/upload channel on a separate port.
   Once malicious logic is uploaded, the PLC ignores legitimate coil
   writes and obeys the attacker's actuation commands: exactly the
   control takeover described in Section IV-B. *)

let maintenance_port = 9600

type Netbase.Packet.payload +=
  | Maint_dump_request
  | Maint_dump_reply of string
  | Maint_upload of string
  | Maint_actuate of { coil : int; close : bool }
  | Maint_ack

type t = {
  name : string;
  engine : Sim.Engine.t;
  trace : Sim.Trace.t;
  coils : bool array; (* commanded: true = close breaker *)
  breakers : Breaker.t option array;
  original_config : string;
  mutable config : string;
  counters : Sim.Stats.Counter.t;
}

let create ~engine ~trace ~name ~n_coils =
  {
    name;
    engine;
    trace;
    coils = Array.make n_coils false;
    breakers = Array.make n_coils None;
    original_config = Printf.sprintf "ladder-logic:%s:v1" name;
    config = Printf.sprintf "ladder-logic:%s:v1" name;
    counters = Sim.Stats.Counter.create ();
  }

let name t = t.name

let counters t = t.counters

let n_coils t = Array.length t.coils

let logic_compromised t = not (String.equal t.config t.original_config)

let wire_breaker t ~coil breaker =
  if coil < 0 || coil >= Array.length t.coils then invalid_arg "Device.wire_breaker: bad coil";
  t.breakers.(coil) <- Some breaker;
  t.coils.(coil) <- Breaker.commanded breaker = Breaker.Closed

let breaker t ~coil = t.breakers.(coil)

let coil_state t ~coil = t.coils.(coil)

(* Actual position as seen by the process image: 1 = closed. *)
let holding_value t i =
  match t.breakers.(i) with
  | Some b -> if Breaker.is_closed b then 1 else 0
  | None -> if t.coils.(i) then 1 else 0

let write_coil t ~coil value =
  if coil >= 0 && coil < Array.length t.coils then begin
    t.coils.(coil) <- value;
    match t.breakers.(coil) with
    | Some b -> Breaker.command b (if value then Breaker.Closed else Breaker.Open)
    | None -> ()
  end

(* --- Modbus service ------------------------------------------------------ *)

let handle_request t (req : Modbus.request Modbus.framed) : Modbus.response Modbus.framed =
  let illegal code =
    { req with Modbus.body = Modbus.Exception_response { function_code = code; exception_code = 2 } }
  in
  Sim.Stats.Counter.incr t.counters "modbus.request";
  match req.Modbus.body with
  | Modbus.Read_coils { addr; count } ->
      if addr < 0 || addr + count > Array.length t.coils then illegal 0x01
      else
        { req with Modbus.body = Modbus.Coils (List.init count (fun i -> t.coils.(addr + i))) }
  | Modbus.Write_single_coil { addr; value } ->
      if addr < 0 || addr >= Array.length t.coils then illegal 0x05
      else if logic_compromised t then begin
        (* Malicious logic discards operator commands. *)
        Sim.Stats.Counter.incr t.counters "modbus.ignored_by_malware";
        Sim.Trace.record t.trace ~time:(Sim.Engine.now t.engine) ~category:"plc"
          "%s: compromised logic ignored write-coil %d=%b" t.name addr value;
        { req with Modbus.body = Modbus.Coil_written { addr; value } }
      end
      else begin
        write_coil t ~coil:addr value;
        { req with Modbus.body = Modbus.Coil_written { addr; value } }
      end
  | Modbus.Read_holding_registers { addr; count } ->
      if addr < 0 || addr + count > Array.length t.coils then illegal 0x03
      else
        { req with
          Modbus.body = Modbus.Registers (List.init count (fun i -> holding_value t (addr + i)))
        }
  | Modbus.Write_single_register { addr; value } ->
      if addr < 0 || addr >= Array.length t.coils then illegal 0x06
      else begin
        write_coil t ~coil:addr (value <> 0);
        { req with Modbus.body = Modbus.Register_written { addr; value } }
      end

(* Bind the Modbus and maintenance services on a host. The maintenance
   service is the attack surface: unauthenticated by design (vendor
   default), so network reachability is the only protection. *)
let serve_on t host =
  Netbase.Host.add_service host ~port:Modbus.tcp_port
    { Netbase.Host.name = "modbus"; remote_vuln = None };
  Netbase.Host.udp_bind host ~port:Modbus.tcp_port (fun ~src ~dst_port:_ ~size:_ payload ->
      match payload with
      | Modbus.Frame bytes -> (
          match Modbus.decode_request bytes with
          | req ->
              let resp = Modbus.encode_response (handle_request t req) in
              Netbase.Host.udp_send host ~dst_ip:src.Netbase.Addr.ip
                ~dst_port:src.Netbase.Addr.port ~src_port:Modbus.tcp_port
                ~size:(String.length resp) (Modbus.Frame resp)
          | exception Modbus.Decode_error _ ->
              Sim.Stats.Counter.incr t.counters "modbus.garbage")
      | _ -> Sim.Stats.Counter.incr t.counters "modbus.garbage");
  Netbase.Host.add_service host ~port:maintenance_port
    { Netbase.Host.name = "plc-maintenance"; remote_vuln = None };
  Netbase.Host.udp_bind host ~port:maintenance_port (fun ~src ~dst_port:_ ~size:_ payload ->
      let reply p size =
        Netbase.Host.udp_send host ~dst_ip:src.Netbase.Addr.ip ~dst_port:src.Netbase.Addr.port
          ~src_port:maintenance_port ~size p
      in
      match payload with
      | Maint_dump_request ->
          Sim.Stats.Counter.incr t.counters "maint.dump";
          Sim.Trace.record t.trace ~time:(Sim.Engine.now t.engine) ~category:"plc"
            "%s: configuration dumped via maintenance port" t.name;
          reply (Maint_dump_reply t.config) (String.length t.config + 16)
      | Maint_upload config ->
          Sim.Stats.Counter.incr t.counters "maint.upload";
          t.config <- config;
          Sim.Trace.record t.trace ~time:(Sim.Engine.now t.engine) ~category:"plc"
            "%s: configuration REPLACED via maintenance port%s" t.name
            (if logic_compromised t then " (malicious logic installed)" else "");
          reply Maint_ack 16
      | Maint_actuate { coil; close } ->
          (* Only honoured by compromised logic: stock firmware exposes
             dump/upload but not direct actuation. *)
          if logic_compromised t then begin
            Sim.Stats.Counter.incr t.counters "maint.actuate";
            if coil >= 0 && coil < Array.length t.coils then begin
              t.coils.(coil) <- close;
              match t.breakers.(coil) with
              | Some b -> Breaker.command b (if close then Breaker.Closed else Breaker.Open)
              | None -> ()
            end;
            reply Maint_ack 16
          end
      | Maint_dump_reply _ | Maint_ack -> ()
      | _ -> Sim.Stats.Counter.incr t.counters "maint.garbage")
