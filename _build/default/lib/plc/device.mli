(** Emulated PLC (OpenPLC stand-in): Modbus coils command wired breakers,
    holding registers expose actual positions. Also carries the
    unauthenticated vendor maintenance service (configuration dump /
    upload) the red team abused on the commercial system; once malicious
    logic is uploaded, legitimate coil writes are ignored and the
    attacker's direct actuation commands are obeyed. *)

(** Maintenance protocol payloads (unauthenticated by vendor design;
    network reachability is the only protection). *)
type Netbase.Packet.payload +=
  | Maint_dump_request
  | Maint_dump_reply of string
  | Maint_upload of string
  | Maint_actuate of { coil : int; close : bool }
  | Maint_ack

val maintenance_port : int

type t

val create : engine:Sim.Engine.t -> trace:Sim.Trace.t -> name:string -> n_coils:int -> t

val name : t -> string

val counters : t -> Sim.Stats.Counter.t

val n_coils : t -> int

(** Has a non-factory configuration been uploaded? *)
val logic_compromised : t -> bool

(** Wire a breaker to a coil. Raises [Invalid_argument] on a bad coil. *)
val wire_breaker : t -> coil:int -> Breaker.t -> unit

val breaker : t -> coil:int -> Breaker.t option

val coil_state : t -> coil:int -> bool

(** Process one Modbus request (exposed for unit tests; network service
    via {!serve_on}). *)
val handle_request : t -> Modbus.request Modbus.framed -> Modbus.response Modbus.framed

(** Bind the Modbus and maintenance services on [host]. *)
val serve_on : t -> Netbase.Host.t -> unit
