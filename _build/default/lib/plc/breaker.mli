(** Circuit breaker: commanded vs actual position with mechanical
    actuation delay. [force] models a physical flip (the Section V
    measurement device). *)

type position = Open | Closed

type t

val create : ?initial:position -> ?actuation_delay:float -> engine:Sim.Engine.t -> string -> t

val name : t -> string

val actual : t -> position

val commanded : t -> position

(** Completed position changes so far. *)
val actuations : t -> int

val is_closed : t -> bool

(** Hook fired when the actual position changes. *)
val on_change : t -> (t -> unit) -> unit

(** Drive toward [position] after the actuation delay; a newer command
    supersedes an in-flight one. *)
val command : t -> position -> unit

(** Immediate physical flip (bypasses the command path). *)
val force : t -> position -> unit

val toggle_force : t -> unit

val position_to_string : position -> string

val pp : Format.formatter -> t -> unit
