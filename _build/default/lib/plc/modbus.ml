(* Modbus protocol: MBAP-framed PDUs with real binary encoding.

   The subset implemented is what the deployment used: coil reads/writes
   for breaker control and register reads for status. Frames are encoded
   to actual bytes — Modbus is a plaintext protocol, and the red-team
   experiment depends on that: an attacker who can see or inject
   operations-network traffic can decode and forge these frames (which is
   why Spire only speaks Modbus over a dedicated wire behind the proxy). *)

let tcp_port = 502

type request =
  | Read_coils of { addr : int; count : int }
  | Write_single_coil of { addr : int; value : bool }
  | Read_holding_registers of { addr : int; count : int }
  | Write_single_register of { addr : int; value : int }

type response =
  | Coils of bool list
  | Coil_written of { addr : int; value : bool }
  | Registers of int list
  | Register_written of { addr : int; value : int }
  | Exception_response of { function_code : int; exception_code : int }

type 'a framed = { transaction : int; unit_id : int; body : 'a }

type Netbase.Packet.payload += Frame of string (* raw bytes on the wire *)

(* --- binary helpers ----------------------------------------------------- *)

let u8 buf v = Buffer.add_char buf (Char.chr (v land 0xFF))

let u16 buf v =
  u8 buf (v lsr 8);
  u8 buf v

let get_u8 s off = Char.code s.[off]

let get_u16 s off = (get_u8 s off lsl 8) lor get_u8 s (off + 1)

exception Decode_error of string

let need s off n =
  if String.length s < off + n then raise (Decode_error "short frame")

(* --- PDU encoding -------------------------------------------------------- *)

let encode_request_pdu buf = function
  | Read_coils { addr; count } ->
      u8 buf 0x01;
      u16 buf addr;
      u16 buf count
  | Write_single_coil { addr; value } ->
      u8 buf 0x05;
      u16 buf addr;
      u16 buf (if value then 0xFF00 else 0x0000)
  | Read_holding_registers { addr; count } ->
      u8 buf 0x03;
      u16 buf addr;
      u16 buf count
  | Write_single_register { addr; value } ->
      u8 buf 0x06;
      u16 buf addr;
      u16 buf value

let encode_response_pdu buf = function
  | Coils bits ->
      u8 buf 0x01;
      let nbytes = (List.length bits + 7) / 8 in
      u8 buf nbytes;
      let bytes = Array.make nbytes 0 in
      List.iteri (fun i b -> if b then bytes.(i / 8) <- bytes.(i / 8) lor (1 lsl (i mod 8))) bits;
      Array.iter (fun b -> u8 buf b) bytes
  | Coil_written { addr; value } ->
      u8 buf 0x05;
      u16 buf addr;
      u16 buf (if value then 0xFF00 else 0x0000)
  | Registers regs ->
      u8 buf 0x03;
      u8 buf (2 * List.length regs);
      List.iter (fun r -> u16 buf r) regs
  | Register_written { addr; value } ->
      u8 buf 0x06;
      u16 buf addr;
      u16 buf value
  | Exception_response { function_code; exception_code } ->
      u8 buf (function_code lor 0x80);
      u8 buf exception_code

(* MBAP header: transaction id, protocol id (0), length, unit id. *)
let encode_mbap ~transaction ~unit_id pdu =
  let buf = Buffer.create 16 in
  u16 buf transaction;
  u16 buf 0;
  u16 buf (String.length pdu + 1);
  u8 buf unit_id;
  Buffer.add_string buf pdu;
  Buffer.contents buf

let encode_request { transaction; unit_id; body } =
  let buf = Buffer.create 8 in
  encode_request_pdu buf body;
  encode_mbap ~transaction ~unit_id (Buffer.contents buf)

let encode_response { transaction; unit_id; body } =
  let buf = Buffer.create 8 in
  encode_response_pdu buf body;
  encode_mbap ~transaction ~unit_id (Buffer.contents buf)

(* --- decoding -------------------------------------------------------------- *)

let decode_mbap s =
  need s 0 8;
  let transaction = get_u16 s 0 in
  let proto = get_u16 s 2 in
  if proto <> 0 then raise (Decode_error "bad protocol id");
  let len = get_u16 s 4 in
  need s 6 len;
  let unit_id = get_u8 s 6 in
  (transaction, unit_id, String.sub s 7 (len - 1))

let decode_request s =
  let transaction, unit_id, pdu = decode_mbap s in
  need pdu 0 1;
  let body =
    match get_u8 pdu 0 with
    | 0x01 ->
        need pdu 1 4;
        Read_coils { addr = get_u16 pdu 1; count = get_u16 pdu 3 }
    | 0x05 ->
        need pdu 1 4;
        Write_single_coil { addr = get_u16 pdu 1; value = get_u16 pdu 3 = 0xFF00 }
    | 0x03 ->
        need pdu 1 4;
        Read_holding_registers { addr = get_u16 pdu 1; count = get_u16 pdu 3 }
    | 0x06 ->
        need pdu 1 4;
        Write_single_register { addr = get_u16 pdu 1; value = get_u16 pdu 3 }
    | code -> raise (Decode_error (Printf.sprintf "unsupported function 0x%02x" code))
  in
  { transaction; unit_id; body }

let decode_response s =
  let transaction, unit_id, pdu = decode_mbap s in
  need pdu 0 1;
  let code = get_u8 pdu 0 in
  let body =
    if code land 0x80 <> 0 then begin
      need pdu 1 1;
      Exception_response { function_code = code land 0x7F; exception_code = get_u8 pdu 1 }
    end
    else
      match code with
      | 0x01 ->
          need pdu 1 1;
          let nbytes = get_u8 pdu 1 in
          need pdu 2 nbytes;
          let bits = ref [] in
          for i = nbytes - 1 downto 0 do
            let b = get_u8 pdu (2 + i) in
            for j = 7 downto 0 do
              bits := (b land (1 lsl j) <> 0) :: !bits
            done
          done;
          Coils !bits
      | 0x05 ->
          need pdu 1 4;
          Coil_written { addr = get_u16 pdu 1; value = get_u16 pdu 3 = 0xFF00 }
      | 0x03 ->
          need pdu 1 1;
          let nbytes = get_u8 pdu 1 in
          need pdu 2 nbytes;
          let regs = ref [] in
          for i = (nbytes / 2) - 1 downto 0 do
            regs := get_u16 pdu (2 + (2 * i)) :: !regs
          done;
          Registers !regs
      | 0x06 ->
          need pdu 1 4;
          Register_written { addr = get_u16 pdu 1; value = get_u16 pdu 3 }
      | code -> raise (Decode_error (Printf.sprintf "unsupported function 0x%02x" code))
  in
  { transaction; unit_id; body }

(* Note: a Coils response rounds the bit count up to a whole byte; callers
   truncate to the count they asked for. *)
let truncate_coils bits count =
  List.filteri (fun i _ -> i < count) bits

let describe_request = function
  | Read_coils { addr; count } -> Printf.sprintf "read-coils %d+%d" addr count
  | Write_single_coil { addr; value } -> Printf.sprintf "write-coil %d=%b" addr value
  | Read_holding_registers { addr; count } -> Printf.sprintf "read-regs %d+%d" addr count
  | Write_single_register { addr; value } -> Printf.sprintf "write-reg %d=%d" addr value
