(* Prime protocol messages with canonical encodings for signing.

   Every protocol message is signed by its sender and verified on receipt;
   client updates carry their own client signature end-to-end (a replica
   cannot fabricate supervisory commands on behalf of an HMI). Encodings
   are explicit, stable strings — the property signatures need — rather
   than a full wire codec, since the simulator passes typed values. *)

module Update = struct
  type t = {
    client : string; (* signing identity of the submitting client *)
    client_seq : int;
    op : string; (* application-opaque serialized operation *)
    signature : Crypto.Signature.t;
  }

  let encode_body ~client ~client_seq ~op =
    Printf.sprintf "update:%s:%d:%d:%s" client client_seq (String.length op) op

  let create ~keypair ~client_seq ~op =
    let client = Crypto.Signature.identity keypair in
    {
      client;
      client_seq;
      op;
      signature = Crypto.Signature.sign keypair (encode_body ~client ~client_seq ~op);
    }

  let encode u = encode_body ~client:u.client ~client_seq:u.client_seq ~op:u.op

  let verify ks u = Crypto.Signature.verify ks ~signer:u.client (encode u) u.signature

  let digest u = Crypto.Sha256.digest (encode u)

  let size u = 80 + String.length u.op + Crypto.Signature.size_bytes

  let key u = (u.client, u.client_seq)

  let pp ppf u = Fmt.pf ppf "%s#%d" u.client u.client_seq
end

(* A replica's cumulative preorder vector: aru.(i) is the highest
   sequence s such that all of origin i's preorder slots 1..s hold
   certified updates at this replica. *)
type summary = { sum_rep : int; aru : int array; sum_sig : Crypto.Signature.t }

let encode_summary_body ~sum_rep ~aru =
  Printf.sprintf "summary:%d:%s" sum_rep
    (String.concat "," (Array.to_list (Array.map string_of_int aru)))

let encode_summary s = encode_summary_body ~sum_rep:s.sum_rep ~aru:s.aru

let verify_summary ks s =
  Crypto.Signature.verify ks ~signer:(Printf.sprintf "replica-%d" s.sum_rep)
    (encode_summary s) s.sum_sig

(* The proof matrix carried by a pre-prepare: the freshest summary the
   leader holds from each replica (None until one is received). *)
type matrix = summary option array

let encode_matrix (m : matrix) =
  String.concat ";"
    (Array.to_list
       (Array.map (function None -> "-" | Some s -> encode_summary s) m))

let matrix_digest ~view ~pp_seq m =
  Crypto.Sha256.digest (Printf.sprintf "pp:%d:%d:%s" view pp_seq (encode_matrix m))

(* A prepared certificate carried in view-change reports, enough for the
   new leader to re-propose the same pre-prepare content. *)
type prepared_cert = { pc_seq : int; pc_view : int; pc_matrix : matrix }

type t =
  | Update_msg of Update.t
  | Po_request of { origin : int; po_seq : int; update : Update.t; po_sig : Crypto.Signature.t }
  | Po_ack of {
      acker : int;
      ack_origin : int;
      ack_po_seq : int;
      ack_digest : Crypto.Sha256.digest;
      ack_sig : Crypto.Signature.t;
    }
  | Po_summary of summary
  | Pre_prepare of { pp_view : int; pp_seq : int; pp_matrix : matrix; pp_sig : Crypto.Signature.t }
  | Prepare of {
      prep_rep : int;
      prep_view : int;
      prep_seq : int;
      prep_digest : Crypto.Sha256.digest;
      prep_sig : Crypto.Signature.t;
    }
  | Commit of {
      com_rep : int;
      com_view : int;
      com_seq : int;
      com_digest : Crypto.Sha256.digest;
      com_sig : Crypto.Signature.t;
    }
  | Suspect_leader of { sus_rep : int; sus_view : int; sus_sig : Crypto.Signature.t }
  | Vc_report of {
      vc_rep : int;
      vc_view : int; (* the view being installed *)
      vc_max_ordered : int;
      vc_prepared : prepared_cert list;
      vc_sig : Crypto.Signature.t;
    }
  | Origin_reset of { or_rep : int; or_new_start : int; or_sig : Crypto.Signature.t }
  | Recon_floor of { rf_origin : int; rf_new_start : int; rf_sig : Crypto.Signature.t }
  | Recon_request of { rr_rep : int; rr_origin : int; rr_po_seq : int }
  | Recon_reply of { rp_rep : int; rp_origin : int; rp_po_seq : int; rp_update : Update.t }
  | Catchup_request of { cu_rep : int; cu_from : int (* next exec seq wanted *) }
  | Catchup_reply of {
      cr_rep : int;
      cr_entries : (int * Update.t) list; (* exec_seq, update *)
      cr_upto : int; (* responder's max exec seq *)
      cr_behind_log : bool; (* requested range no longer in the log *)
      cr_next_exec_pp : int; (* responder's ordering cursor ... *)
      cr_cursor : int array; (* ... and per-origin execution cursor *)
    }
  | Client_reply of {
      crep_rep : int;
      crep_client : string;
      crep_client_seq : int;
      crep_exec_seq : int;
      crep_sig : Crypto.Signature.t;
    }

type Netbase.Packet.payload += Prime_msg of t

let replica_identity rep = Printf.sprintf "replica-%d" rep

(* Canonical byte strings covered by each message's signature. *)
let encode_po_request ~origin ~po_seq update =
  Printf.sprintf "po-req:%d:%d:%s" origin po_seq (Update.encode update)

let encode_po_ack ~acker ~origin ~po_seq ~digest =
  Printf.sprintf "po-ack:%d:%d:%d:%s" acker origin po_seq (Crypto.Sha256.to_hex digest)

let encode_pre_prepare ~view ~pp_seq matrix =
  Printf.sprintf "pre-prepare:%d:%d:%s" view pp_seq (encode_matrix matrix)

let encode_prepare ~rep ~view ~pp_seq ~digest =
  Printf.sprintf "prepare:%d:%d:%d:%s" rep view pp_seq (Crypto.Sha256.to_hex digest)

let encode_commit ~rep ~view ~pp_seq ~digest =
  Printf.sprintf "commit:%d:%d:%d:%s" rep view pp_seq (Crypto.Sha256.to_hex digest)

let encode_suspect ~rep ~view = Printf.sprintf "suspect:%d:%d" rep view

(* Signed by the recovering origin itself: "my preorder sequence restarts
   at new_start; everything below that I never completed is void". *)
let encode_origin_reset ~rep ~new_start = Printf.sprintf "origin-reset:%d:%d" rep new_start

let encode_prepared_cert c =
  Printf.sprintf "%d:%d:%s" c.pc_seq c.pc_view (encode_matrix c.pc_matrix)

let encode_vc_report ~rep ~view ~max_ordered ~prepared =
  Printf.sprintf "vc:%d:%d:%d:[%s]" rep view max_ordered
    (String.concat "|" (List.map encode_prepared_cert prepared))

let encode_client_reply ~rep ~client ~client_seq ~exec_seq =
  Printf.sprintf "reply:%d:%s:%d:%d" rep client client_seq exec_seq

(* Approximate wire sizes (bytes) for traffic modelling. *)
let summary_size n = 40 + (8 * n) + Crypto.Signature.size_bytes

let size config_n = function
  | Update_msg u -> Update.size u
  | Po_request { update; _ } -> Update.size update + 48 + Crypto.Signature.size_bytes
  | Po_ack _ -> 80 + Crypto.Signature.size_bytes
  | Po_summary _ -> summary_size config_n
  | Pre_prepare _ -> 48 + (config_n * summary_size config_n) + Crypto.Signature.size_bytes
  | Prepare _ | Commit _ -> 80 + Crypto.Signature.size_bytes
  | Suspect_leader _ -> 48 + Crypto.Signature.size_bytes
  | Vc_report { vc_prepared; _ } ->
      64 + Crypto.Signature.size_bytes
      + (List.length vc_prepared * (16 + (config_n * summary_size config_n)))
  | Origin_reset _ | Recon_floor _ -> 48 + Crypto.Signature.size_bytes
  | Recon_request _ -> 48
  | Recon_reply { rp_update; _ } -> 48 + Update.size rp_update
  | Catchup_request _ -> 48
  | Catchup_reply { cr_entries; _ } ->
      48 + List.fold_left (fun acc (_, u) -> acc + 16 + Update.size u) 0 cr_entries
  | Client_reply _ -> 80 + Crypto.Signature.size_bytes

let describe = function
  | Update_msg u -> Printf.sprintf "update %s#%d" u.Update.client u.Update.client_seq
  | Po_request { origin; po_seq; _ } -> Printf.sprintf "po-request (%d,%d)" origin po_seq
  | Po_ack { acker; ack_origin; ack_po_seq; _ } ->
      Printf.sprintf "po-ack by %d for (%d,%d)" acker ack_origin ack_po_seq
  | Po_summary s -> Printf.sprintf "po-summary from %d" s.sum_rep
  | Pre_prepare { pp_view; pp_seq; _ } -> Printf.sprintf "pre-prepare v%d #%d" pp_view pp_seq
  | Prepare { prep_rep; prep_seq; _ } -> Printf.sprintf "prepare by %d #%d" prep_rep prep_seq
  | Commit { com_rep; com_seq; _ } -> Printf.sprintf "commit by %d #%d" com_rep com_seq
  | Suspect_leader { sus_rep; sus_view; _ } ->
      Printf.sprintf "suspect v%d by %d" sus_view sus_rep
  | Vc_report { vc_rep; vc_view; _ } -> Printf.sprintf "vc-report v%d by %d" vc_view vc_rep
  | Origin_reset { or_rep; or_new_start; _ } ->
      Printf.sprintf "origin-reset %d -> %d" or_rep or_new_start
  | Recon_floor { rf_origin; rf_new_start; _ } ->
      Printf.sprintf "recon-floor %d -> %d" rf_origin rf_new_start
  | Recon_request { rr_rep; rr_origin; rr_po_seq } ->
      Printf.sprintf "recon-request by %d for (%d,%d)" rr_rep rr_origin rr_po_seq
  | Recon_reply { rp_origin; rp_po_seq; _ } ->
      Printf.sprintf "recon-reply for (%d,%d)" rp_origin rp_po_seq
  | Catchup_request { cu_rep; cu_from } -> Printf.sprintf "catchup-request by %d from %d" cu_rep cu_from
  | Catchup_reply { cr_upto; _ } -> Printf.sprintf "catchup-reply upto %d" cr_upto
  | Client_reply { crep_client; crep_client_seq; _ } ->
      Printf.sprintf "client-reply %s#%d" crep_client crep_client_seq
