lib/prime/replica.ml: Array Config Crypto Hashtbl List Msg Order Preorder Printf Sim String
