lib/prime/preorder.ml: Array Config Crypto Hashtbl List Msg Option String
