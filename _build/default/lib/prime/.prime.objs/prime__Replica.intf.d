lib/prime/replica.mli: Config Crypto Msg Sim
