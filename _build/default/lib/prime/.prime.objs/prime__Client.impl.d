lib/prime/client.ml: Config Crypto Hashtbl List Msg Option Sim String
