lib/prime/config.mli: Format
