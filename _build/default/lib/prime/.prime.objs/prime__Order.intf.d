lib/prime/order.mli: Config Crypto Msg
