lib/prime/client.mli: Config Crypto Msg Sim
