lib/prime/preorder.mli: Config Crypto Msg
