lib/prime/msg.mli: Crypto Format Netbase
