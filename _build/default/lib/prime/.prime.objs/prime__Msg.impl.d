lib/prime/msg.ml: Array Crypto Fmt List Netbase Printf String
