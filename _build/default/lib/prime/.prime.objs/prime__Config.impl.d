lib/prime/config.ml: Fmt List
