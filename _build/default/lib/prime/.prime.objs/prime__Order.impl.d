lib/prime/order.ml: Array Config Crypto Hashtbl List Msg Preorder String
