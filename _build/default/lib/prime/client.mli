(** Prime client session (in Spire: a PLC/RTU proxy or HMI). Submits
    signed updates and confirms execution once f + 1 replicas report the
    same result. *)

type t

val create :
  engine:Sim.Engine.t ->
  keystore:Crypto.Signature.keystore ->
  keypair:Crypto.Signature.keypair ->
  send_to_replica:(dst:int -> Msg.t -> unit) ->
  Config.t ->
  t

(** The client's signing identity (how replicas know it). *)
val identity : t -> string

val counters : t -> Sim.Stats.Counter.t

(** Callback fired once per update, when f + 1 matching replies arrive. *)
val set_on_confirmed : t -> (client_seq:int -> latency:float -> unit) -> unit

(** Submit an operation; sends to [targets] (default: all replicas).
    Returns the client sequence number for tracking. *)
val submit : ?targets:int list -> t -> op:string -> int

(** Feed a [Client_reply] received from the network. *)
val handle_reply : t -> Msg.t -> unit

(** Periodically re-send unconfirmed updates to every replica (survives
    message loss during network failover or replica recovery). *)
val enable_retransmit : t -> period:float -> unit

val disable_retransmit : t -> unit

val is_confirmed : t -> client_seq:int -> bool

(** Client sequence numbers not yet confirmed. *)
val outstanding : t -> int list
