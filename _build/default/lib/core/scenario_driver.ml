(* Breaker-cycling scenario driver.

   At the red-team exercise, PNNL required an automatic update generation
   tool "that would cycle through the breakers, flipping each
   periodically in a predetermined cycle that the red team would attempt
   to disrupt". This module is that tool: every [period] it commands the
   next breaker in the cycle to the opposite of its currently displayed
   state, through a Spire HMI. *)

type t = {
  deployment : Deployment.t;
  hmi : Scada.Hmi.t;
  order : string array;
  mutable cursor : int;
  mutable timer : Sim.Engine.timer option;
  mutable commands_issued : int;
}

let create ?(hmi_index = 0) deployment =
  let scenario = Deployment.scenario deployment in
  let hmi_bundle = (Deployment.hmis deployment).(hmi_index) in
  {
    deployment;
    hmi = hmi_bundle.Deployment.h_hmi;
    order = Array.of_list (Plc.Power.all_breakers scenario);
    cursor = 0;
    timer = None;
    commands_issued = 0;
  }

let commands_issued t = t.commands_issued

let tick t =
  if Array.length t.order > 0 then begin
    let breaker = t.order.(t.cursor) in
    t.cursor <- (t.cursor + 1) mod Array.length t.order;
    let close =
      match Scada.Hmi.displayed_closed t.hmi breaker with
      | Some currently_closed -> not currently_closed
      | None -> true
    in
    t.commands_issued <- t.commands_issued + 1;
    ignore (Scada.Hmi.command t.hmi ~breaker ~close)
  end

let start t ~period =
  if t.timer <> None then invalid_arg "Scenario_driver.start: already running";
  t.timer <-
    Some (Sim.Engine.every (Deployment.engine t.deployment) ~period (fun () -> tick t))

let stop t =
  match t.timer with
  | Some timer ->
      Sim.Engine.cancel_timer (Deployment.engine t.deployment) timer;
      t.timer <- None
  | None -> ()
