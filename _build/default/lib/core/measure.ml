(* End-to-end reaction-time measurement (Section V).

   "The device periodically flipped a breaker and used two sensors to
   detect when the HMI screens of the two systems updated to reflect the
   change." The measurement is system-agnostic: it needs a way to flip a
   physical breaker and a hook telling it when a display cell repainted.
   Both Spire and the commercial baseline provide these. *)

type sample = { flipped_at : float; reflected_at : float }

let latency s = s.reflected_at -. s.flipped_at

(* Flip [breaker] [samples] times, [gap] seconds apart, and record the
   time until [watch_display] reports the matching change. Runs inside
   the engine; call [Sim.Engine.run] afterwards and then read [results].

   [watch_display] registers a callback receiving (breaker, closed). *)
let run ?(first_target = true) ~engine ~breaker ~flip ~watch_display ~samples ~gap () =
  let results = Sim.Stats.Summary.create () in
  let outstanding : (bool * float) option ref = ref None in
  let completed = ref 0 in
  watch_display (fun ~breaker:b ~closed ->
      match !outstanding with
      | Some (expected, t0) when String.equal b breaker && closed = expected ->
          outstanding := None;
          incr completed;
          Sim.Stats.Summary.add results (Sim.Engine.now engine -. t0)
      | _ -> ());
  let next = ref first_target in
  (* Random phase per flip: the device is not synchronised to anyone's
     polling cycle, so flips must not land exactly on poll ticks. *)
  let rng = Sim.Engine.split_rng engine in
  for i = 0 to samples - 1 do
    let jitter = Sim.Rng.float rng (Float.min (gap /. 4.0) 0.45) in
    ignore
      (Sim.Engine.schedule engine
         ~delay:((gap *. float_of_int (i + 1)) +. jitter)
         (fun () ->
           let target = !next in
           next := not target;
           outstanding := Some (target, Sim.Engine.now engine);
           flip target))
  done;
  (results, completed)

(* Convenience wrapper for a Spire deployment. *)
let spire_reaction_time ?(hmi_index = 0) ~deployment ~breaker ~samples ~gap () =
  match Deployment.find_breaker deployment breaker with
  | None -> invalid_arg ("Measure.spire_reaction_time: unknown breaker " ^ breaker)
  | Some (_, b) ->
      let hmi = (Deployment.hmis deployment).(hmi_index).Deployment.h_hmi in
      run
        ~first_target:(not (Plc.Breaker.is_closed b))
        ~engine:(Deployment.engine deployment) ~breaker
        ~flip:(fun close -> Plc.Breaker.force b (if close then Plc.Breaker.Closed else Plc.Breaker.Open))
        ~watch_display:(fun f -> Scada.Hmi.on_display_change hmi f)
        ~samples ~gap ()

(* Convenience wrapper for the commercial baseline. *)
let commercial_reaction_time ~engine ~commercial ~breaker ~samples ~gap () =
  match Commercial.find_breaker commercial breaker with
  | None -> invalid_arg ("Measure.commercial_reaction_time: unknown breaker " ^ breaker)
  | Some b ->
      run
        ~first_target:(not (Plc.Breaker.is_closed b))
        ~engine ~breaker
        ~flip:(fun close -> Plc.Breaker.force b (if close then Plc.Breaker.Closed else Plc.Breaker.Open))
        ~watch_display:(fun f -> Commercial.on_display_change commercial f)
        ~samples ~gap ()
