(** Commercial SCADA baseline (NIST-best-practices testbed system):
    primary-backup master, PLCs directly on the operations network,
    plaintext unauthenticated master-to-HMI protocol. The red team's
    first victim (Section IV-B) and the latency comparator (Section V).

    The payload constructors are public on purpose: anyone on the wire
    can read and forge them — the weakness the MITM attack exploited. *)

type Netbase.Packet.payload +=
  | Hmi_plain of { breaker : string; closed : bool }
  | Hmi_command of { breaker : string; close : bool }
  | Heartbeat of { from_primary : bool }

val hmi_port : int

val heartbeat_port : int

val command_port : int

type t

val create :
  ?poll_period:float ->
  ?refresh_period:float ->
  engine:Sim.Engine.t ->
  trace:Sim.Trace.t ->
  Plc.Power.scenario ->
  t

val counters : t -> Sim.Stats.Counter.t

val ops_switch : t -> Netbase.Switch.t

val pcap : t -> Netbase.Pcap.t

val hmi_host : t -> Netbase.Host.t

val primary_host : t -> Netbase.Host.t

val active_master_host : t -> Netbase.Host.t

val plc_hosts : t -> Netbase.Host.t array

val devices : t -> Plc.Device.t array

val scenario : t -> Plc.Power.scenario

val breakers : t -> Plc.Breaker.t array

val find_breaker : t -> string -> Plc.Breaker.t option

val on_display_change : t -> (breaker:string -> closed:bool -> unit) -> unit

val displayed_closed : t -> string -> bool option

(** Operator command from the commercial HMI (plaintext, unauthenticated). *)
val hmi_command : t -> breaker:string -> close:bool -> unit

(** Kill the primary; the backup takes over on heartbeat timeout. *)
val fail_primary : t -> unit
