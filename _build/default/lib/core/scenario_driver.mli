(** The red-team exercise's required workload generator: cycle through
    the scenario's breakers, commanding each to the opposite of its
    displayed state, through a Spire HMI. *)

type t

val create : ?hmi_index:int -> Deployment.t -> t

val commands_issued : t -> int

(** Raises [Invalid_argument] if already running. *)
val start : t -> period:float -> unit

val stop : t -> unit
