(** Section V reaction-time measurement: flip a breaker physically and
    time until the HMI display reflects it. Flips carry random phase so
    they do not lock onto anyone's polling cycle. *)

type sample = { flipped_at : float; reflected_at : float }

val latency : sample -> float

(** Generic driver: schedule [samples] flips [gap] apart; read the
    returned summary and completion count after running the engine. *)
val run :
  ?first_target:bool ->
  engine:Sim.Engine.t ->
  breaker:string ->
  flip:(bool -> unit) ->
  watch_display:((breaker:string -> closed:bool -> unit) -> unit) ->
  samples:int ->
  gap:float ->
  unit ->
  Sim.Stats.Summary.t * int ref

(** Measure a Spire deployment. Raises [Invalid_argument] on an unknown
    breaker. *)
val spire_reaction_time :
  ?hmi_index:int ->
  deployment:Deployment.t ->
  breaker:string ->
  samples:int ->
  gap:float ->
  unit ->
  Sim.Stats.Summary.t * int ref

(** Measure the commercial baseline. *)
val commercial_reaction_time :
  engine:Sim.Engine.t ->
  commercial:Commercial.t ->
  breaker:string ->
  samples:int ->
  gap:float ->
  unit ->
  Sim.Stats.Summary.t * int ref
