(* Commercial SCADA baseline (the parallel system of the red-team
   experiment, configured to NIST-recommended best practices).

   Primary-backup SCADA master, PLCs directly on the operations network,
   plaintext unauthenticated master-to-HMI protocol, periodic polling.
   This is both the red team's first victim (Section IV-B) and the
   latency comparator of the plant deployment (Section V).

   The payload constructors are deliberately public: anyone on the wire
   can read and forge them, which is precisely the weakness the MITM
   attack exploited. *)

type Netbase.Packet.payload +=
  | Hmi_plain of { breaker : string; closed : bool }
  | Hmi_command of { breaker : string; close : bool }
  | Heartbeat of { from_primary : bool }

let hmi_port = 5500

let heartbeat_port = 5600

let command_port = 5510

type master_role = { m_host : Netbase.Host.t; mutable m_active : bool }

type t = {
  engine : Sim.Engine.t;
  trace : Sim.Trace.t;
  ops_switch : Netbase.Switch.t;
  primary : master_role;
  backup : master_role;
  hmi_host : Netbase.Host.t;
  plc_hosts : Netbase.Host.t array;
  devices : Plc.Device.t array;
  breakers : Plc.Breaker.t array array;
  scenario : Plc.Power.scenario;
  master_view : (string, bool) Hashtbl.t; (* primary's process image *)
  hmi_display : (string, bool) Hashtbl.t;
  mutable on_display_change : (breaker:string -> closed:bool -> unit) list;
  mutable last_heartbeat : float;
  mutable transaction : int;
  plc_ip_of_breaker : (string, Netbase.Addr.Ip.t * int) Hashtbl.t; (* -> plc ip, coil *)
  counters : Sim.Stats.Counter.t;
  poll_period : float;
  refresh_period : float;
  pcap : Netbase.Pcap.t;
}

let counters t = t.counters

let ops_switch t = t.ops_switch

let pcap t = t.pcap

let hmi_host t = t.hmi_host

let primary_host t = t.primary.m_host

let plc_hosts t = t.plc_hosts

let devices t = t.devices

let scenario t = t.scenario

let breakers t = Array.concat (Array.to_list t.breakers)

let find_breaker t name =
  let all = breakers t in
  let rec scan i =
    if i >= Array.length all then None
    else if String.equal (Plc.Breaker.name all.(i)) name then Some all.(i)
    else scan (i + 1)
  in
  scan 0

let on_display_change t f = t.on_display_change <- f :: t.on_display_change

let displayed_closed t breaker = Hashtbl.find_opt t.hmi_display breaker

(* --- master logic ----------------------------------------------------------- *)

let active_master t = if t.primary.m_active then t.primary else t.backup

let send_modbus t role ~dst_ip body =
  t.transaction <- t.transaction + 1;
  let bytes =
    Plc.Modbus.encode_request { Plc.Modbus.transaction = t.transaction; unit_id = 1; body }
  in
  Netbase.Host.udp_send role.m_host ~dst_ip ~dst_port:Plc.Modbus.tcp_port
    ~src_port:Scada.Proxy.modbus_local_port ~size:(String.length bytes) (Plc.Modbus.Frame bytes)

let push_hmi t role ~breaker ~closed =
  Sim.Stats.Counter.incr t.counters "master.hmi_push";
  Netbase.Host.udp_send role.m_host ~dst_ip:Addressing.commercial_hmi ~dst_port:hmi_port
    ~src_port:hmi_port ~size:64 (Hmi_plain { breaker; closed })

let poll_all t role =
  Array.iteri
    (fun k device ->
      send_modbus t role ~dst_ip:(Addressing.commercial_plc k)
        (Plc.Modbus.Read_holding_registers { addr = 0; count = Plc.Device.n_coils device }))
    t.devices

(* Registers come back without saying which PLC they belong to; match by
   source address. *)
let plc_index_of_ip t ip =
  let found = ref None in
  Array.iteri
    (fun k _ -> if Netbase.Addr.Ip.equal (Addressing.commercial_plc k) ip then found := Some k)
    t.plc_hosts;
  !found

let handle_master_modbus t role ~src_ip bytes =
  match Plc.Modbus.decode_response bytes with
  | { Plc.Modbus.body = Plc.Modbus.Registers regs; _ } -> (
      match plc_index_of_ip t src_ip with
      | None -> ()
      | Some k ->
          List.iteri
            (fun i value ->
              if i < Array.length t.breakers.(k) then begin
                let name = Plc.Breaker.name t.breakers.(k).(i) in
                let closed = value = 1 in
                let changed =
                  match Hashtbl.find_opt t.master_view name with
                  | Some previous -> previous <> closed
                  | None -> true
                in
                if changed then begin
                  Hashtbl.replace t.master_view name closed;
                  Sim.Stats.Counter.incr t.counters "master.state_change";
                  push_hmi t role ~breaker:name ~closed
                end
              end)
            regs)
  | { Plc.Modbus.body = _; _ } -> ()
  | exception Plc.Modbus.Decode_error _ -> Sim.Stats.Counter.incr t.counters "master.garbage"

let handle_command t role ~breaker ~close =
  Sim.Stats.Counter.incr t.counters "master.command";
  match Hashtbl.find_opt t.plc_ip_of_breaker breaker with
  | Some (ip, coil) ->
      send_modbus t role ~dst_ip:ip (Plc.Modbus.Write_single_coil { addr = coil; value = close })
  | None -> Sim.Stats.Counter.incr t.counters "master.unknown_breaker"

let setup_master t role ~is_primary =
  Netbase.Host.add_service role.m_host ~port:hmi_port
    { Netbase.Host.name = "scada-master"; remote_vuln = None };
  Netbase.Host.udp_bind role.m_host ~port:Scada.Proxy.modbus_local_port
    (fun ~src ~dst_port:_ ~size:_ payload ->
      match payload with
      | Plc.Modbus.Frame bytes ->
          if role.m_active then handle_master_modbus t role ~src_ip:src.Netbase.Addr.ip bytes
      | _ -> ());
  Netbase.Host.udp_bind role.m_host ~port:command_port (fun ~src:_ ~dst_port:_ ~size:_ payload ->
      match payload with
      | Hmi_command { breaker; close } -> if role.m_active then handle_command t role ~breaker ~close
      | _ -> ());
  ignore
    (Sim.Engine.every t.engine ~period:t.poll_period (fun () ->
         if role.m_active then poll_all t role));
  (* Periodic full refresh toward the HMI, as commercial masters do. *)
  ignore
    (Sim.Engine.every t.engine ~period:t.refresh_period (fun () ->
         if role.m_active then
           Hashtbl.iter (fun breaker closed -> push_hmi t role ~breaker ~closed) t.master_view));
  if is_primary then
    ignore
      (Sim.Engine.every t.engine ~period:0.5 (fun () ->
           if role.m_active then
             Netbase.Host.udp_send role.m_host ~dst_ip:Addressing.commercial_backup
               ~dst_port:heartbeat_port ~src_port:heartbeat_port ~size:32
               (Heartbeat { from_primary = true })))
  else begin
    Netbase.Host.udp_bind role.m_host ~port:heartbeat_port
      (fun ~src:_ ~dst_port:_ ~size:_ payload ->
        match payload with
        | Heartbeat _ -> t.last_heartbeat <- Sim.Engine.now t.engine
        | _ -> ());
    (* Failover: backup activates when the primary goes quiet. *)
    ignore
      (Sim.Engine.every t.engine ~period:1.0 (fun () ->
           if
             (not role.m_active)
             && Sim.Engine.now t.engine -. t.last_heartbeat > 2.0
             && Sim.Engine.now t.engine > 3.0
           then begin
             role.m_active <- true;
             Sim.Stats.Counter.incr t.counters "failover";
             Sim.Trace.record t.trace ~time:(Sim.Engine.now t.engine) ~category:"commercial"
               "backup master took over"
           end))
  end

(* --- HMI --------------------------------------------------------------------- *)

let setup_hmi t =
  Netbase.Host.add_service t.hmi_host ~port:hmi_port
    { Netbase.Host.name = "hmi"; remote_vuln = None };
  Netbase.Host.udp_bind t.hmi_host ~port:hmi_port (fun ~src:_ ~dst_port:_ ~size:_ payload ->
      match payload with
      | Hmi_plain { breaker; closed } ->
          (* No authentication: whatever arrives is displayed. *)
          let changed =
            match Hashtbl.find_opt t.hmi_display breaker with
            | Some previous -> previous <> closed
            | None -> true
          in
          if changed then begin
            Hashtbl.replace t.hmi_display breaker closed;
            Sim.Stats.Counter.incr t.counters "hmi.display_change";
            List.iter (fun f -> f ~breaker ~closed) t.on_display_change
          end
      | _ -> ())

(* Operator command from the commercial HMI. *)
let hmi_command t ~breaker ~close =
  Netbase.Host.udp_send t.hmi_host ~dst_ip:Addressing.commercial_master ~dst_port:command_port
    ~src_port:command_port ~size:64 (Hmi_command { breaker; close })

(* --- construction ------------------------------------------------------------- *)

let create ?(poll_period = 0.5) ?(refresh_period = 0.5) ~engine ~trace scenario =
  (* Best practice did not include port security on the testbed's
     operations switch; learning mode reflects that. *)
  let ops_switch = Netbase.Switch.create ~mode:Netbase.Switch.Learning ~engine ~trace "commercial-ops" in
  let pcap = Netbase.Pcap.create () in
  Netbase.Switch.add_tap ops_switch (fun frame ->
      Netbase.Pcap.capture pcap ~time:(Sim.Engine.now engine) frame);
  let mk_host name ip =
    (* Commercial components keep vendor defaults: permissive firewall,
       stock desktop OS. *)
    let host = Netbase.Host.create ~os:Netbase.Host.ubuntu_desktop ~engine ~trace name in
    let nic = Netbase.Host.add_nic host ~ip in
    let (_ : int) = Netbase.Host.plug_into_switch host nic ops_switch in
    Netbase.Host.set_default_gateway host Addressing.commercial_gateway;
    host
  in
  let primary_host = mk_host "comm-master" Addressing.commercial_master in
  let backup_host = mk_host "comm-backup" Addressing.commercial_backup in
  let hmi_host = mk_host "comm-hmi" Addressing.commercial_hmi in
  let plc_specs = Array.of_list scenario.Plc.Power.plcs in
  let plc_hosts =
    Array.mapi
      (fun k (spec : Plc.Power.plc_spec) ->
        mk_host ("comm-plc-" ^ spec.Plc.Power.plc_name) (Addressing.commercial_plc k))
      plc_specs
  in
  let devices =
    Array.mapi
      (fun k (spec : Plc.Power.plc_spec) ->
        let device =
          Plc.Device.create ~engine ~trace ~name:("COMM-" ^ spec.Plc.Power.plc_name)
            ~n_coils:(List.length spec.Plc.Power.breaker_names)
        in
        Plc.Device.serve_on device plc_hosts.(k);
        device)
      plc_specs
  in
  let breakers =
    Array.mapi
      (fun k (spec : Plc.Power.plc_spec) ->
        Array.of_list
          (List.mapi
             (fun coil breaker_name ->
               let b = Plc.Breaker.create ~engine breaker_name in
               Plc.Device.wire_breaker devices.(k) ~coil b;
               b)
             spec.Plc.Power.breaker_names))
      plc_specs
  in
  let plc_ip_of_breaker = Hashtbl.create 64 in
  Array.iteri
    (fun k (spec : Plc.Power.plc_spec) ->
      List.iteri
        (fun coil breaker_name ->
          Hashtbl.replace plc_ip_of_breaker breaker_name (Addressing.commercial_plc k, coil))
        spec.Plc.Power.breaker_names)
    plc_specs;
  let t =
    {
      engine;
      trace;
      ops_switch;
      primary = { m_host = primary_host; m_active = true };
      backup = { m_host = backup_host; m_active = false };
      hmi_host;
      plc_hosts;
      devices;
      breakers;
      scenario;
      master_view = Hashtbl.create 64;
      hmi_display = Hashtbl.create 64;
      on_display_change = [];
      last_heartbeat = 0.0;
      transaction = 0;
      plc_ip_of_breaker;
      counters = Sim.Stats.Counter.create ();
      poll_period;
      refresh_period;
      pcap;
    }
  in
  setup_master t t.primary ~is_primary:true;
  setup_master t t.backup ~is_primary:false;
  setup_hmi t;
  t

let fail_primary t =
  t.primary.m_active <- false;
  Sim.Trace.record t.trace ~time:(Sim.Engine.now t.engine) ~category:"commercial"
    "primary master failed"

let active_master_host t = (active_master t).m_host
