lib/core/measure.ml: Array Commercial Deployment Float Plc Scada Sim String
