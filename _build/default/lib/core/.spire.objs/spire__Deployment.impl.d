lib/core/deployment.ml: Addressing Array Crypto Hashtbl List Netbase Plc Prime Printf Scada Sim Spines String
