lib/core/scenario_driver.ml: Array Deployment Plc Scada Sim
