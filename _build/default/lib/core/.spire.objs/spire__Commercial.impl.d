lib/core/commercial.ml: Addressing Array Hashtbl List Netbase Plc Scada Sim String
