lib/core/measure.mli: Commercial Deployment Sim
