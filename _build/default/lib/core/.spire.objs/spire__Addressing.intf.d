lib/core/addressing.mli: Netbase
