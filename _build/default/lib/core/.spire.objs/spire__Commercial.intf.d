lib/core/commercial.mli: Netbase Plc Sim
