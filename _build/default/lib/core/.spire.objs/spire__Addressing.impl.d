lib/core/addressing.ml: Netbase
