lib/core/scenario_driver.mli: Deployment
