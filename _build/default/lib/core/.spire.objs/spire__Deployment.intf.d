lib/core/deployment.mli: Crypto Netbase Plc Prime Scada Sim Spines
