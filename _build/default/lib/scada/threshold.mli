(** f + 1 agreement gate for proxy actuation and HMI display: an action
    fires exactly once, when [needed] distinct replicas have voted for
    the same key. *)

type t

val create : needed:int -> t

(** [vote t ~key ~voter] returns [true] exactly once per key — when this
    vote completes the threshold. *)
val vote : t -> key:string -> voter:int -> bool

val decided : t -> string -> bool
