(** Human-Machine Interface: renders the power topology from display
    updates (accepted only with f + 1 agreeing replicas) and issues
    supervisory commands. [on_display_change] is the Section V
    measurement point. *)

type t

val create :
  engine:Sim.Engine.t ->
  trace:Sim.Trace.t ->
  keystore:Crypto.Signature.keystore ->
  config:Prime.Config.t ->
  scenario:Plc.Power.scenario ->
  client:Prime.Client.t ->
  string ->
  t

val name : t -> string

val counters : t -> Sim.Stats.Counter.t

(** Hook fired whenever a display cell repaints. *)
val on_display_change : t -> (breaker:string -> closed:bool -> unit) -> unit

val displayed_closed : t -> string -> bool option

val energized_loads : t -> (string * bool) list

(** Operator action; returns the Prime client sequence. *)
val command : t -> breaker:string -> close:bool -> int

(** Handle a payload from the replicated system. *)
val handle_payload : t -> Netbase.Packet.payload -> unit

(** Text rendering of the topology screen. *)
val render : t -> string
