lib/scada/hmi.mli: Crypto Netbase Plc Prime Sim
