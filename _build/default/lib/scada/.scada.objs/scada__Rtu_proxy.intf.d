lib/scada/rtu_proxy.mli: Crypto Netbase Prime Sim
