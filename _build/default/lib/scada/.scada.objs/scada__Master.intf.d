lib/scada/master.mli: Crypto Netbase Op Plc Prime Sim State
