lib/scada/historian.mli:
