lib/scada/historian.ml: List String
