lib/scada/proxy.ml: Array Crypto List Messages Netbase Op Plc Prime Printf Sim String Threshold
