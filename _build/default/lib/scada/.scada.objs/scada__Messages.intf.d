lib/scada/messages.mli: Crypto Netbase
