lib/scada/op.ml: Fmt Printf String
