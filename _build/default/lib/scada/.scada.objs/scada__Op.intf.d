lib/scada/op.mli: Format
