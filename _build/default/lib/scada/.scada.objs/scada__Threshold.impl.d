lib/scada/threshold.ml: Hashtbl
