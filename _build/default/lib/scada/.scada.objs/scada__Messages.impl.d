lib/scada/messages.ml: Array Crypto List Netbase Printf String
