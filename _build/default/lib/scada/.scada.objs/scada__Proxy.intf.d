lib/scada/proxy.mli: Crypto Netbase Prime Sim
