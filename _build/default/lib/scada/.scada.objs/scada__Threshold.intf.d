lib/scada/threshold.mli:
