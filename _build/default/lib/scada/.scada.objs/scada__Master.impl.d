lib/scada/master.ml: Crypto Hashtbl List Messages Netbase Op Plc Prime Sim State String
