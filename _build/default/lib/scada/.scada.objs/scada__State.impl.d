lib/scada/state.ml: Crypto Hashtbl List Op Plc Printf String
