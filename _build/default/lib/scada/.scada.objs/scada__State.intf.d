lib/scada/state.mli: Op Plc
