lib/scada/hmi.ml: Buffer Crypto Hashtbl List Messages Op Plc Prime Printf Sim Threshold
