(* SCADA operations: the application-level payload of replicated updates.

   Two kinds exist in the deployment: field status reports introduced by
   the PLC/RTU proxies, and supervisory commands issued from the HMI. The
   string encoding is what gets signed inside a Prime update, so it must
   be canonical and injective. *)

type t =
  | Status of { breaker : string; closed : bool }
  | Command of { breaker : string; close : bool }

let encode = function
  | Status { breaker; closed } -> Printf.sprintf "status:%s:%d" breaker (if closed then 1 else 0)
  | Command { breaker; close } -> Printf.sprintf "cmd:%s:%d" breaker (if close then 1 else 0)

let decode s =
  match String.split_on_char ':' s with
  | [ "status"; breaker; flag ] when flag = "0" || flag = "1" ->
      Some (Status { breaker; closed = flag = "1" })
  | [ "cmd"; breaker; flag ] when flag = "0" || flag = "1" ->
      Some (Command { breaker; close = flag = "1" })
  | _ -> None

let breaker = function Status { breaker; _ } -> breaker | Command { breaker; _ } -> breaker

let pp ppf op = Fmt.string ppf (encode op)
