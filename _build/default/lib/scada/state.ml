(* Replicated SCADA application state.

   Tracks, per breaker: the last reported field position and the last
   supervisory command. Deterministic application of ordered operations
   keeps every replica's copy identical; the canonical serialization and
   digest support the application-level state transfer of Section III-A. *)

type breaker_state = {
  mutable reported_closed : bool;
  mutable commanded_close : bool;
  mutable last_change_exec : int; (* exec_seq of last status change *)
}

type t = {
  scenario : Plc.Power.scenario;
  breakers : (string, breaker_state) Hashtbl.t;
  mutable ops_applied : int;
}

let create scenario =
  let t = { scenario; breakers = Hashtbl.create 64; ops_applied = 0 } in
  List.iter
    (fun name ->
      Hashtbl.replace t.breakers name
        { reported_closed = true; commanded_close = true; last_change_exec = 0 })
    (Plc.Power.all_breakers scenario);
  t

let scenario t = t.scenario

let ops_applied t = t.ops_applied

let breaker t name = Hashtbl.find_opt t.breakers name

let reported_closed t name =
  match breaker t name with Some b -> b.reported_closed | None -> false

(* Applying an unknown breaker's op is a no-op rather than an error: a
   faulty client may inject names outside the topology, and replicas must
   stay deterministic rather than crash. *)
let apply t ~exec_seq op =
  t.ops_applied <- t.ops_applied + 1;
  match op with
  | Op.Status { breaker = name; closed } -> (
      match Hashtbl.find_opt t.breakers name with
      | Some b ->
          let changed = b.reported_closed <> closed in
          b.reported_closed <- closed;
          if changed then b.last_change_exec <- exec_seq;
          changed
      | None -> false)
  | Op.Command { breaker = name; close } -> (
      match Hashtbl.find_opt t.breakers name with
      | Some b ->
          b.commanded_close <- close;
          false
      | None -> false)

let energized t =
  Plc.Power.energized t.scenario ~is_closed:(fun name -> reported_closed t name)

(* Canonical serialization: breakers sorted by name. *)
let serialize t =
  Hashtbl.fold (fun name b acc -> (name, b) :: acc) t.breakers []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.map (fun (name, b) ->
         Printf.sprintf "%s=%d/%d/%d" name
           (if b.reported_closed then 1 else 0)
           (if b.commanded_close then 1 else 0)
           b.last_change_exec)
  |> String.concat ";"

let digest t = Crypto.Sha256.to_hex (Crypto.Sha256.digest (serialize t))

let load t blob =
  let parse_entry entry =
    match String.index_opt entry '=' with
    | None -> None
    | Some i -> (
        let name = String.sub entry 0 i in
        let rest = String.sub entry (i + 1) (String.length entry - i - 1) in
        match String.split_on_char '/' rest with
        | [ r; c; e ] -> (
            try Some (name, r = "1", c = "1", int_of_string e) with Failure _ -> None)
        | _ -> None)
  in
  let entries = String.split_on_char ';' blob in
  let parsed = List.filter_map parse_entry entries in
  if List.length parsed <> List.length entries then Error "malformed state blob"
  else begin
    List.iter
      (fun (name, reported, commanded, exec) ->
        match Hashtbl.find_opt t.breakers name with
        | Some b ->
            b.reported_closed <- reported;
            b.commanded_close <- commanded;
            b.last_change_exec <- exec
        | None ->
            Hashtbl.replace t.breakers name
              { reported_closed = reported; commanded_close = commanded; last_change_exec = exec })
      parsed;
    Ok ()
  end

(* Ground-truth reset (Section III-A): wipe to defaults; the proxies'
   next polling round repopulates from the field devices. *)
let reset t =
  Hashtbl.iter
    (fun _ b ->
      b.reported_closed <- true;
      b.commanded_close <- true;
      b.last_change_exec <- 0)
    t.breakers;
  t.ops_applied <- 0
