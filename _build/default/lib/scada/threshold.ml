(* f + 1 agreement gate.

   Proxies and HMIs act on a message only once f + 1 distinct replicas
   have sent an identical one: at least one of them is correct, and a
   correct replica only speaks for ordered state. Each decided key is
   remembered so replays cannot trigger the action twice. *)

type t = {
  needed : int;
  votes : (string, (int, unit) Hashtbl.t) Hashtbl.t; (* key -> voting replicas *)
  decided : (string, unit) Hashtbl.t;
}

let create ~needed = { needed; votes = Hashtbl.create 64; decided = Hashtbl.create 256 }

(* Returns [true] exactly once per key: when [voter]'s vote completes the
   threshold. *)
let vote t ~key ~voter =
  if Hashtbl.mem t.decided key then false
  else begin
    let voters =
      match Hashtbl.find_opt t.votes key with
      | Some v -> v
      | None ->
          let v = Hashtbl.create 8 in
          Hashtbl.replace t.votes key v;
          v
    in
    Hashtbl.replace voters voter ();
    if Hashtbl.length voters >= t.needed then begin
      Hashtbl.replace t.decided key ();
      Hashtbl.remove t.votes key;
      true
    end
    else false
  end

let decided t key = Hashtbl.mem t.decided key
