(** SCADA historian (the testbed's PI server): an append-only archive.
    Unlike the masters' active state, lost history is unrecoverable —
    the Section III-A asymmetry. *)

type event = { time : float; source : string; kind : string; detail : string }

type t

val create : unit -> t

val record : t -> time:float -> source:string -> kind:string -> detail:string -> unit

val events : t -> event list

val length : t -> int

val since : t -> float -> event list

val by_kind : t -> string -> event list

(** Assumption breach: everything archived is gone. *)
val wipe : t -> unit

val lost_events : t -> int
