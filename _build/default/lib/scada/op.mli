(** SCADA operations: the application payload of replicated updates.
    Encodings are canonical (they are what clients sign). *)

type t =
  | Status of { breaker : string; closed : bool } (* field report from a proxy *)
  | Command of { breaker : string; close : bool } (* supervisory command from an HMI *)

val encode : t -> string

(** [None] on malformed input (faulty clients must not crash replicas). *)
val decode : string -> t option

val breaker : t -> string

val pp : Format.formatter -> t -> unit
