(** Replicated SCADA application state: per-breaker reported position and
    last supervisory command, with canonical serialization and digest for
    the application-level state transfer (Section III-A). *)

type t

val create : Plc.Power.scenario -> t

val scenario : t -> Plc.Power.scenario

val ops_applied : t -> int

(** Last reported field position ([false] for unknown breakers). *)
val reported_closed : t -> string -> bool

(** Apply an ordered operation; returns [true] if a Status changed the
    reported position. Unknown breakers are deterministic no-ops. *)
val apply : t -> exec_seq:int -> Op.t -> bool

(** Energized loads given the reported breaker positions. *)
val energized : t -> (string * bool) list

(** Canonical blob (breakers sorted by name). *)
val serialize : t -> string

(** Hex digest of {!serialize}. *)
val digest : t -> string

(** Install a serialized state. [Error] on malformed blobs. *)
val load : t -> string -> (unit, string) result

(** Ground-truth reset: wipe to defaults; the proxies' next polling round
    repopulates from the field devices. *)
val reset : t -> unit
