(* SCADA historian (the PI server of the testbed's enterprise network).

   Append-only archive of system events. The paper's Section III-A points
   out the asymmetry this module documents: unlike the masters' view of
   the *active* system state, which can be rebuilt from the field devices
   after an assumption breach, historical records cannot be recovered —
   whatever was lost is lost ([wipe] models exactly that). *)

type event = { time : float; source : string; kind : string; detail : string }

type t = { mutable events : event list; mutable count : int; mutable lost : int }

let create () = { events = []; count = 0; lost = 0 }

let record t ~time ~source ~kind ~detail =
  t.events <- { time; source; kind; detail } :: t.events;
  t.count <- t.count + 1

let events t = List.rev t.events

let length t = t.count

(* Events recorded since a given time, chronological. *)
let since t time = List.filter (fun e -> e.time >= time) (events t)

let by_kind t kind = List.filter (fun e -> String.equal e.kind kind) (events t)

(* Assumption breach: archived history is unrecoverable, in contrast to
   the masters' ground-truth-rebuildable state. *)
let wipe t =
  t.lost <- t.lost + t.count;
  t.events <- [];
  t.count <- 0

let lost_events t = t.lost
