(** Proactive recovery scheduler: round-robin, one replica at a time,
    each restart installing a freshly compiled diverse variant. The
    exposure window of any compromised variant is bounded by
    n * rotation_period. *)

type t

(** Raises [Invalid_argument] unless rotation_period > downtime. *)
val create :
  engine:Sim.Engine.t ->
  trace:Sim.Trace.t ->
  rng:Sim.Rng.t ->
  n:int ->
  rotation_period:float ->
  downtime:float ->
  take_down:(int -> unit) ->
  bring_up:(int -> Variant.t -> unit) ->
  t

val current_variant : t -> int -> Variant.t

val recoveries : t -> int

(** The replica currently down for recovery, if any. *)
val recovering : t -> int option

(** Upper bound on one compromised variant's lifetime. *)
val max_exposure : t -> float

val start : t -> unit

val stop : t -> unit
