(** MultiCompiler diversity model: an exploit crafted against one
    variant's layout fails against any other variant; compiling without
    diversification yields the shared monoculture build. *)

type t

val monoculture : t

val compile : ?diversify:bool -> Sim.Rng.t -> t

val build_id : t -> string

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

module Exploit : sig
  type exploit

  (** Craft against a concrete variant (requires its binary). *)
  val craft : name:string -> t -> exploit

  val name : exploit -> string

  val works_against : exploit -> t -> bool
end
