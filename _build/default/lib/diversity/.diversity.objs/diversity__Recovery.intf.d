lib/diversity/recovery.mli: Sim Variant
