lib/diversity/recovery.ml: Array Sim Variant
