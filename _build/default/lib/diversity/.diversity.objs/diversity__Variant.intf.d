lib/diversity/variant.mli: Format Sim
