lib/diversity/variant.ml: Crypto Fmt Printf Sim String
