(* MultiCompiler diversity model.

   The MultiCompiler introduces random layout changes at compile time:
   behaviourally identical binaries whose memory layouts differ enough
   that a memory-corruption exploit crafted against one variant fails
   against any other. The model captures exactly that property: an
   exploit records the build id it was crafted against and only works on
   a variant with the same build id. Compiling without diversification
   yields the shared "monoculture" build — one exploit fits all. *)

type t = { seed : int64; build_id : string }

let monoculture = { seed = 0L; build_id = "monoculture-build" }

let compile ?(diversify = true) rng =
  if not diversify then monoculture
  else
    let seed = Sim.Rng.int64 rng in
    { seed; build_id = Crypto.Sha256.hex_of_string (Printf.sprintf "layout:%Ld" seed) }

let build_id t = t.build_id

let equal a b = String.equal a.build_id b.build_id

let pp ppf t = Fmt.pf ppf "variant[%s]" (String.sub t.build_id 0 (min 8 (String.length t.build_id)))

module Exploit = struct
  type exploit = { target_build : string; exploit_name : string }

  (* Crafting requires knowledge of a concrete variant (e.g. from a
     captured binary) and, in the real system, substantial effort. *)
  let craft ~name variant = { target_build = variant.build_id; exploit_name = name }

  let name e = e.exploit_name

  let works_against e variant = String.equal e.target_build variant.build_id
end
