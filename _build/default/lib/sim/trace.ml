(* Structured simulation trace.

   Subsystems record (time, category, message) entries. Experiments read
   the trace back to build narrative output (e.g. the red-team attack log)
   and tests assert on it. Echoing to stderr is off by default so that
   property tests running thousands of simulations stay quiet. *)

type entry = { time : float; category : string; message : string }

type t = { mutable entries : entry list; mutable echo : bool; mutable count : int }

let create ?(echo = false) () = { entries = []; echo; count = 0 }

let set_echo t echo = t.echo <- echo

let record t ~time ~category fmt =
  Format.kasprintf
    (fun message ->
      t.entries <- { time; category; message } :: t.entries;
      t.count <- t.count + 1;
      if t.echo then Printf.eprintf "[%10.4f] %-12s %s\n%!" time category message)
    fmt

let entries t = List.rev t.entries

let length t = t.count

let by_category t category =
  List.filter (fun entry -> String.equal entry.category category) (entries t)

let find t ~category ~contains =
  let matches entry =
    String.equal entry.category category
    &&
    let len_sub = String.length contains and len = String.length entry.message in
    let rec scan i =
      if i + len_sub > len then false
      else if String.sub entry.message i len_sub = contains then true
      else scan (i + 1)
    in
    scan 0
  in
  List.find_opt matches (entries t)

let pp_entry ppf entry =
  Fmt.pf ppf "[%10.4f] %-12s %s" entry.time entry.category entry.message
