lib/sim/trace.ml: Fmt Format List Printf String
