lib/sim/stats.ml: Array Fmt Hashtbl List Option Stdlib String
