lib/sim/heap.mli:
