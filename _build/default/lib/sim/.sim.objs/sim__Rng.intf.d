lib/sim/rng.mli:
