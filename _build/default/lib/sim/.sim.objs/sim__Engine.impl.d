lib/sim/engine.ml: Hashtbl Heap Printf Rng
