(** Array-backed binary min-heap keyed by float, with stable (insertion
    order) tie-breaking so that the simulation's event delivery order is
    deterministic. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

(** [push t ~key v] inserts [v] with priority [key]. *)
val push : 'a t -> key:float -> 'a -> unit

(** [peek t] returns the minimum entry without removing it. *)
val peek : 'a t -> (float * 'a) option

(** [pop t] removes and returns the minimum entry. *)
val pop : 'a t -> (float * 'a) option
