(* Deterministic splittable pseudo-random generator (splitmix64 core).

   Every run of the simulator is reproducible from a single seed; [split]
   derives an independent stream so that adding randomness consumers in one
   subsystem does not perturb the draws seen by another. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = next_int64 t in
  { state = mix64 seed }

let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 34) (* 30 bits *)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound = 1 then 0
  else
    (* Rejection sampling over 30-bit draws keeps the distribution uniform. *)
    let rec draw () =
      let r = bits t in
      let v = r mod bound in
      if r - v + (bound - 1) < 0 then draw () else v
    in
    draw ()

let int64 t = next_int64 t

let float t bound =
  if bound < 0.0 then invalid_arg "Rng.float: bound must be non-negative";
  let mantissa = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (mantissa /. 9007199254740992.0) (* 2^53 *)

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Box-Muller without caching the second value: simplicity over speed. *)
let gaussian t ~mu ~sigma =
  let rec non_zero () =
    let u = float t 1.0 in
    if u > 0.0 then u else non_zero ()
  in
  let u1 = non_zero () in
  let u2 = float t 1.0 in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mu +. (sigma *. z)

let exponential t ~mean =
  if mean <= 0.0 then invalid_arg "Rng.exponential: mean must be positive";
  let rec non_zero () =
    let u = float t 1.0 in
    if u > 0.0 then u else non_zero ()
  in
  -.mean *. log (non_zero ())

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (Char.chr (int t 256))
  done;
  Bytes.unsafe_to_string b
