(** Structured simulation trace: timestamped, categorised log entries that
    experiments turn into narrative output and tests assert on. *)

type entry = { time : float; category : string; message : string }

type t

val create : ?echo:bool -> unit -> t

(** Toggle live echoing of entries to stderr. *)
val set_echo : t -> bool -> unit

(** [record t ~time ~category fmt ...] appends a formatted entry. *)
val record : t -> time:float -> category:string -> ('a, Format.formatter, unit, unit) format4 -> 'a

(** All entries in chronological order. *)
val entries : t -> entry list

val length : t -> int

(** Entries in one category, chronological. *)
val by_category : t -> string -> entry list

(** First entry in [category] whose message contains [contains]. *)
val find : t -> category:string -> contains:string -> entry option

val pp_entry : Format.formatter -> entry -> unit
