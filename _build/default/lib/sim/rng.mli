(** Deterministic splittable pseudo-random generator.

    Built on splitmix64 so that simulation runs are exactly reproducible
    from a seed, and independent subsystems can draw from [split] streams
    without interfering with one another. *)

type t

(** [create seed] returns a generator whose stream is a pure function of
    [seed]. *)
val create : int64 -> t

(** [split t] derives a new generator statistically independent of future
    draws from [t]. *)
val split : t -> t

(** [int t bound] draws uniformly from [0, bound). Raises
    [Invalid_argument] if [bound <= 0]. *)
val int : t -> int -> int

(** [int64 t] draws a uniform 64-bit value. *)
val int64 : t -> int64

(** [float t bound] draws uniformly from [0, bound). *)
val float : t -> float -> float

(** [bool t] draws a fair coin. *)
val bool : t -> bool

(** [gaussian t ~mu ~sigma] draws from a normal distribution. *)
val gaussian : t -> mu:float -> sigma:float -> float

(** [exponential t ~mean] draws from an exponential distribution with the
    given mean. Raises [Invalid_argument] if [mean <= 0]. *)
val exponential : t -> mean:float -> float

(** [pick t arr] draws a uniformly random element. Raises
    [Invalid_argument] on an empty array. *)
val pick : t -> 'a array -> 'a

(** [shuffle t arr] permutes [arr] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

(** [bytes t n] draws [n] uniformly random bytes as a string. *)
val bytes : t -> int -> string
