(** Wire formats: Ethernet-like frames carrying ARP or IPv4/UDP.

    Upper layers extend {!payload} with typed messages; the network
    accounts for volume through the explicit [size] field rather than by
    serialising payloads. *)

type payload = ..

type payload += Raw of string

(** Connection-probe abstraction standing in for TCP SYN/SYN-ACK/RST:
    open reachable service → [Scan_ack]; closed reachable port →
    [Icmp_port_unreachable]; filtered → silence. *)
type payload += Scan_probe | Scan_ack of { service : string } | Icmp_port_unreachable

type udp = { src_port : int; dst_port : int; size : int; payload : payload }

type l3 =
  | Arp_request of { sender_ip : Addr.Ip.t; sender_mac : Addr.Mac.t; target_ip : Addr.Ip.t }
  | Arp_reply of {
      sender_ip : Addr.Ip.t;
      sender_mac : Addr.Mac.t;
      target_ip : Addr.Ip.t;
      target_mac : Addr.Mac.t;
    }
  | Ipv4 of { src : Addr.Ip.t; dst : Addr.Ip.t; ttl : int; udp : udp }

type frame = { src_mac : Addr.Mac.t; dst_mac : Addr.Mac.t; l3 : l3 }

(** Total on-wire size in bytes including layer overheads. *)
val frame_size : frame -> int

(** Convenience constructor for a UDP-in-IPv4 Ethernet frame. *)
val udp_frame :
  src_mac:Addr.Mac.t ->
  dst_mac:Addr.Mac.t ->
  src_ip:Addr.Ip.t ->
  dst_ip:Addr.Ip.t ->
  src_port:int ->
  dst_port:int ->
  size:int ->
  payload ->
  frame

(** One-line human description, used in traces and packet captures. *)
val describe_l3 : l3 -> string

val pp_frame : Format.formatter -> frame -> unit
