(* Direct physical cable between two NICs.

   The paper connects each PLC to its proxy with a dedicated wire rather
   than through a switch, "to ensure that it is not subject to any outside
   interference": a cable has exactly two endpoints and no tap or
   injection point, so network attackers simply cannot reach it. *)

let connect ~engine ~latency host_a nic_a host_b nic_b =
  let deliver_b = ref (fun _ -> ()) in
  let deliver_a =
    Host.plug host_a nic_a ~transmit:(fun frame ->
        ignore
          (Sim.Engine.schedule engine ~delay:latency (fun () -> !deliver_b frame)))
  in
  deliver_b :=
    Host.plug host_b nic_b ~transmit:(fun frame ->
        ignore (Sim.Engine.schedule engine ~delay:latency (fun () -> deliver_a frame)))
