(** Simulated host: NICs, ARP cache, UDP sockets, firewall and OS model.

    Carries the Section III-B hardening knobs (static ARP, [arp_ignore],
    default-deny firewall, minimal-server OS profile) and the compromise
    model used by the red-team experiment (remote service exploitation,
    local privilege escalation). *)

type t

type nic

type compromise = Clean | User_level | Root_level

type service = { name : string; remote_vuln : string option }

type os_profile = {
  os_name : string;
  privilege_vulns : string list;
  preinstalled : (int * service) list;
  arp_ignore : bool;
}

(** Hardened profile used by the deployed Spire components: no known
    escalation vulnerabilities, one patched service, [arp_ignore] on. *)
val centos_minimal : os_profile

(** The permissive desktop profile the components originally ran on:
    dirtycow-vulnerable kernel, several preinstalled services. *)
val ubuntu_desktop : os_profile

type udp_handler = src:Addr.endpoint -> dst_port:int -> size:int -> Packet.payload -> unit

val create :
  ?os:os_profile ->
  ?firewall:Firewall.t ->
  ?ingress_rate:float ->
  engine:Sim.Engine.t ->
  trace:Sim.Trace.t ->
  string ->
  t

val name : t -> string

val os : t -> os_profile

val firewall : t -> Firewall.t

val counters : t -> Sim.Stats.Counter.t

(** Add a NIC with the given address. Wire it with {!plug} or
    {!plug_into_switch}. *)
val add_nic : t -> ip:Addr.Ip.t -> nic

val nic_mac : nic -> Addr.Mac.t

val nic_ip : nic -> Addr.Ip.t

val nics : t -> nic list

(** IP of the first NIC. Raises [Invalid_argument] when there is none. *)
val primary_ip : t -> Addr.Ip.t

val set_default_gateway : t -> Addr.Ip.t -> unit

(** Pin an ARP entry that dynamic (poisoned) updates cannot displace. *)
val set_static_arp : t -> ip:Addr.Ip.t -> mac:Addr.Mac.t -> unit

val arp_lookup : t -> Addr.Ip.t -> Addr.Mac.t option

(** Sniff every frame the NIC sees (attack tooling, IDS taps). *)
val set_promiscuous : nic -> (Packet.frame -> unit) option -> unit

(** Intercept frames before normal processing; return [true] to swallow.
    Used for MITM forwarding and router implementations. *)
val set_raw_handler : t -> (nic -> Packet.frame -> bool) option -> unit

val add_service : t -> port:int -> service -> unit

val remove_service : t -> port:int -> unit

val service_at : t -> port:int -> service option

(** Bind a UDP socket. Raises [Invalid_argument] if the port is taken. *)
val udp_bind : t -> port:int -> udp_handler -> unit

val udp_unbind : t -> port:int -> unit

(** Send a UDP datagram. [spoof_src] forges the source IP (attack use).
    Resolution, firewalling and ARP happen as on a real host. *)
val udp_send :
  ?spoof_src:Addr.Ip.t ->
  t ->
  dst_ip:Addr.Ip.t ->
  dst_port:int ->
  src_port:int ->
  size:int ->
  Packet.payload ->
  unit

(** Emit an arbitrary frame from a NIC (layer-2 attack injection). *)
val inject_frame : t -> nic -> Packet.frame -> unit

(** Wire a NIC to an arbitrary medium: set its transmit function and get
    back the deliver callback the medium should invoke. *)
val plug : t -> nic -> transmit:(Packet.frame -> unit) -> Packet.frame -> unit

(** Wire a NIC to a switch port; returns the port id. *)
val plug_into_switch : t -> nic -> Switch.t -> Switch.port_id

val compromise_level : t -> compromise

val set_compromise : t -> compromise -> unit

(** Remote exploitation of a listening service: requires firewall
    reachability and a matching vulnerability. On success the host is
    [User_level] compromised. *)
val attempt_remote_exploit :
  t -> from_ip:Addr.Ip.t -> port:int -> exploit:string -> (unit, string) result

(** Local escalation from [User_level] to [Root_level]; succeeds only when
    the OS profile lists [exploit]. *)
val attempt_privilege_escalation : t -> exploit:string -> (unit, string) result
