(* Corporate firewall / router between network segments.

   The red-team testbed (Fig. 3) separates the enterprise network from the
   operations networks with a firewall. This device forwards UDP between
   its interfaces according to an ACL; in the commercial configuration the
   ACL admits the historian-to-SCADA-master flows that the red team then
   rode into the operations network. *)

type acl_entry = {
  src_subnet : Addr.Ip.t; (* matched on /24 *)
  dst_subnet : Addr.Ip.t;
  dst_port : int option; (* None = any port *)
  description : string;
}

type t = {
  host : Host.t; (* reuse the host stack for NICs/ARP *)
  mutable acl : acl_entry list;
  trace : Sim.Trace.t;
  engine : Sim.Engine.t;
  counters : Sim.Stats.Counter.t;
}

let allowed t ~src ~dst ~dst_port =
  List.exists
    (fun e ->
      Addr.Ip.same_subnet24 e.src_subnet src
      && Addr.Ip.same_subnet24 e.dst_subnet dst
      && match e.dst_port with None -> true | Some p -> p = dst_port)
    t.acl

(* Forward an admitted packet out of the interface on the destination's
   subnet, re-resolving the next hop with the router's own ARP. *)
let forward t (frame : Packet.frame) =
  match frame.l3 with
  | Packet.Ipv4 { src; dst; ttl; udp } ->
      if ttl <= 1 then Sim.Stats.Counter.incr t.counters "drop.ttl"
      else if allowed t ~src ~dst ~dst_port:udp.dst_port then begin
        Sim.Stats.Counter.incr t.counters "forwarded";
        Host.udp_send ~spoof_src:src t.host ~dst_ip:dst ~dst_port:udp.dst_port
          ~src_port:udp.src_port ~size:udp.size udp.payload
      end
      else begin
        Sim.Stats.Counter.incr t.counters "drop.acl";
        Sim.Trace.record t.trace ~time:(Sim.Engine.now t.engine) ~category:"router"
          "%s: ACL drop %s" (Host.name t.host) (Packet.describe_l3 frame.l3)
      end
  | Packet.Arp_request _ | Packet.Arp_reply _ -> ()

let create ~engine ~trace name =
  let host = Host.create ~os:Host.centos_minimal ~engine ~trace name in
  let t =
    { host; acl = []; trace; engine; counters = Sim.Stats.Counter.create () }
  in
  (* Swallow IP packets addressed to other hosts and route them; let ARP
     and router-addressed traffic take the normal host path. *)
  Host.set_raw_handler host
    (Some
       (fun nic frame ->
         match frame.Packet.l3 with
         | Packet.Ipv4 { dst; _ }
           when (not (Addr.Ip.equal dst (Host.nic_ip nic)))
                && Addr.Mac.equal frame.dst_mac (Host.nic_mac nic) ->
             forward t frame;
             true
         | Packet.Ipv4 _ | Packet.Arp_request _ | Packet.Arp_reply _ -> false));
  t

let host t = t.host

let counters t = t.counters

let add_interface t ~ip switch =
  let nic = Host.add_nic t.host ~ip in
  let port = Host.plug_into_switch t.host nic switch in
  (* The router is provisioned infrastructure: its MAC is registered in
     the switch's static table so port security admits it. *)
  Switch.bind_mac switch (Host.nic_mac nic) port;
  nic

let permit t ~src_subnet ~dst_subnet ?dst_port ~description () =
  t.acl <- t.acl @ [ { src_subnet; dst_subnet; dst_port; description } ]

let acl t = t.acl
