(** Ethernet switch with learning or static (port-security) forwarding,
    per-port serialisation with bounded backlog, and mirror taps for
    passive capture. The static mode reproduces the paper's "static
    mapping of MAC addresses to switch ports" hardening. *)

type t

type port_id = int

type mode = Learning | Static

val create :
  ?mode:mode ->
  ?latency:float ->
  ?bandwidth:float ->
  ?max_backlog:float ->
  engine:Sim.Engine.t ->
  trace:Sim.Trace.t ->
  string ->
  t

val name : t -> string

val counters : t -> Sim.Stats.Counter.t

val set_mode : t -> mode -> unit

(** [attach t deliver] adds a port whose egress calls [deliver]. *)
val attach : t -> (Packet.frame -> unit) -> port_id

(** [bind_mac t mac port] installs a static MAC-port binding (used by
    [Static] mode for both admission and forwarding). Raises
    [Invalid_argument] on an unknown port. *)
val bind_mac : t -> Addr.Mac.t -> port_id -> unit

(** Add a mirror tap receiving a copy of every admitted frame. *)
val add_tap : t -> (Packet.frame -> unit) -> unit

(** [inject t port frame] is called by the attached device to transmit. *)
val inject : t -> port_id -> Packet.frame -> unit
