(** Dedicated point-to-point cable (the paper's PLC-to-proxy wire): two
    endpoints, fixed latency, no possible tap or injection point. *)

val connect :
  engine:Sim.Engine.t -> latency:float -> Host.t -> Host.nic -> Host.t -> Host.nic -> unit
