(* Wire formats for the simulated network.

   Upper layers (Spines, Modbus, SCADA protocols) extend [payload] with
   their own message types; the network layers treat payloads opaquely and
   account for size via the explicit [size] field carried in each UDP
   datagram, so traffic volume modelling (DoS, IDS features) works without
   serialising every message. *)

type payload = ..

type payload += Raw of string

(* Connection-probe abstraction (stands in for TCP SYN / SYN-ACK / RST
   semantics, which the UDP-only stack does not model): a probe to an open,
   reachable service yields [Scan_ack]; to a closed but reachable port,
   [Icmp_port_unreachable]; a filtered port stays silent. *)
type payload += Scan_probe | Scan_ack of { service : string } | Icmp_port_unreachable

type udp = { src_port : int; dst_port : int; size : int; payload : payload }

type l3 =
  | Arp_request of { sender_ip : Addr.Ip.t; sender_mac : Addr.Mac.t; target_ip : Addr.Ip.t }
  | Arp_reply of { sender_ip : Addr.Ip.t; sender_mac : Addr.Mac.t; target_ip : Addr.Ip.t; target_mac : Addr.Mac.t }
  | Ipv4 of { src : Addr.Ip.t; dst : Addr.Ip.t; ttl : int; udp : udp }

type frame = { src_mac : Addr.Mac.t; dst_mac : Addr.Mac.t; l3 : l3 }

let ethernet_overhead = 18 (* header + FCS *)

let ipv4_udp_overhead = 20 + 8

let arp_size = 28

(* Total on-wire bytes, used for serialisation-delay and volume stats. *)
let frame_size frame =
  ethernet_overhead
  +
  match frame.l3 with
  | Arp_request _ | Arp_reply _ -> arp_size
  | Ipv4 { udp; _ } -> ipv4_udp_overhead + udp.size

let udp_frame ~src_mac ~dst_mac ~src_ip ~dst_ip ~src_port ~dst_port ~size payload =
  {
    src_mac;
    dst_mac;
    l3 = Ipv4 { src = src_ip; dst = dst_ip; ttl = 64; udp = { src_port; dst_port; size; payload } };
  }

let describe_l3 = function
  | Arp_request { sender_ip; target_ip; _ } ->
      Printf.sprintf "ARP who-has %s tell %s" (Addr.Ip.to_string target_ip)
        (Addr.Ip.to_string sender_ip)
  | Arp_reply { sender_ip; sender_mac; _ } ->
      Printf.sprintf "ARP %s is-at %s" (Addr.Ip.to_string sender_ip)
        (Addr.Mac.to_string sender_mac)
  | Ipv4 { src; dst; udp; _ } ->
      Printf.sprintf "UDP %s:%d > %s:%d len %d" (Addr.Ip.to_string src) udp.src_port
        (Addr.Ip.to_string dst) udp.dst_port udp.size

let pp_frame ppf frame =
  Fmt.pf ppf "%s > %s %s" (Addr.Mac.to_string frame.src_mac)
    (Addr.Mac.to_string frame.dst_mac) (describe_l3 frame.l3)
