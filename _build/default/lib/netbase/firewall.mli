(** Per-host packet filter modelling the paper's Section III-B hardening
    ("block all incoming and outgoing traffic other than the specific IP
    address and port combinations used by our protocols"). *)

type direction = Ingress | Egress

type action = Allow | Deny

type rule

type t

(** A permissive firewall (typical desktop default). *)
val create : ?default_ingress:action -> ?default_egress:action -> unit -> t

(** The paper's profile: default-deny in both directions. *)
val locked_down : unit -> t

(** Build a rule. [None] fields match anything. *)
val rule :
  ?action:action ->
  ?remote_ip:Addr.Ip.t ->
  ?local_port:int ->
  ?remote_port:int ->
  description:string ->
  direction ->
  rule

(** Append a rule (first match wins, in insertion order). *)
val add : t -> rule -> unit

(** Allow bidirectional traffic with [remote_ip] on [local_port] — the
    "specific IP address and port combination" idiom. *)
val allow_peer : t -> remote_ip:Addr.Ip.t -> local_port:int -> description:string -> unit

val set_default : t -> direction -> action -> unit

type verdict = { action : action; matched : string option }

(** Evaluate a UDP packet against the rule set. *)
val evaluate :
  t -> direction:direction -> remote_ip:Addr.Ip.t -> local_port:int -> remote_port:int -> verdict

val rules : t -> rule list

val pp_action : Format.formatter -> action -> unit
