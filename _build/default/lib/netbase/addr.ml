(* Network addressing: MAC and IPv4-style addresses.

   Addresses are integers internally; the pretty forms ("10.0.1.3",
   "02:00:00:00:00:07") appear in traces and attack logs. *)

module Mac = struct
  type t = int

  let broadcast = 0xFFFFFFFFFFFF

  let counter = ref 0

  (* Locally-administered unicast prefix 02:00:... *)
  let fresh () =
    incr counter;
    0x020000000000 + !counter

  let is_broadcast mac = mac = broadcast

  let equal = Int.equal

  let compare = Int.compare

  let to_string mac =
    Printf.sprintf "%02x:%02x:%02x:%02x:%02x:%02x" ((mac lsr 40) land 0xFF)
      ((mac lsr 32) land 0xFF) ((mac lsr 24) land 0xFF) ((mac lsr 16) land 0xFF)
      ((mac lsr 8) land 0xFF) (mac land 0xFF)

  let pp ppf mac = Fmt.string ppf (to_string mac)
end

module Ip = struct
  type t = int

  let v a b c d =
    if a < 0 || a > 255 || b < 0 || b > 255 || c < 0 || c > 255 || d < 0 || d > 255 then
      invalid_arg "Ip.v: octet out of range";
    (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

  let broadcast = v 255 255 255 255

  let equal = Int.equal

  let compare = Int.compare

  let hash = Hashtbl.hash

  let to_string ip =
    Printf.sprintf "%d.%d.%d.%d" ((ip lsr 24) land 0xFF) ((ip lsr 16) land 0xFF)
      ((ip lsr 8) land 0xFF) (ip land 0xFF)

  let of_string s =
    match String.split_on_char '.' s with
    | [ a; b; c; d ] -> (
        try v (int_of_string a) (int_of_string b) (int_of_string c) (int_of_string d)
        with Failure _ | Invalid_argument _ -> invalid_arg ("Ip.of_string: " ^ s))
    | _ -> invalid_arg ("Ip.of_string: " ^ s)

  (* /24 convenience used throughout the testbed topologies. *)
  let same_subnet24 a b = a lsr 8 = b lsr 8

  let pp ppf ip = Fmt.string ppf (to_string ip)
end

type endpoint = { ip : Ip.t; port : int }

let endpoint ip port = { ip; port }

let pp_endpoint ppf e = Fmt.pf ppf "%a:%d" Ip.pp e.ip e.port
