lib/netbase/pcap.ml: Addr List Packet
