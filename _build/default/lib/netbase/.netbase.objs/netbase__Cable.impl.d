lib/netbase/cable.ml: Host Sim
