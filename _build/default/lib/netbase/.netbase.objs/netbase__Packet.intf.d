lib/netbase/packet.mli: Addr Format
