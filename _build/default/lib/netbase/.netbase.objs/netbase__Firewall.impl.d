lib/netbase/firewall.ml: Addr Fmt
