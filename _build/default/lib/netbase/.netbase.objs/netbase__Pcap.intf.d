lib/netbase/pcap.mli: Addr Packet
