lib/netbase/router.mli: Addr Host Sim Switch
