lib/netbase/host.ml: Addr Firewall Float Hashtbl List Packet Printf Sim String Switch
