lib/netbase/packet.ml: Addr Fmt Printf
