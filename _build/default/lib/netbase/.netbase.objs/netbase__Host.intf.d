lib/netbase/host.mli: Addr Firewall Packet Sim Switch
