lib/netbase/switch.mli: Addr Packet Sim
