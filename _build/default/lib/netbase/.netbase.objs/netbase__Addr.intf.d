lib/netbase/addr.mli: Format
