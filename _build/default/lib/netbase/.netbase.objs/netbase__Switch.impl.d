lib/netbase/switch.ml: Addr Array Float Hashtbl List Packet Sim
