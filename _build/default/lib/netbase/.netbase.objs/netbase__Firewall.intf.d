lib/netbase/firewall.mli: Addr Format
