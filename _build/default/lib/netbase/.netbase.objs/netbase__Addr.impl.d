lib/netbase/addr.ml: Fmt Hashtbl Int Printf String
