lib/netbase/router.ml: Addr Host List Packet Sim Switch
