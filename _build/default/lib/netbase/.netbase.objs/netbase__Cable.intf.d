lib/netbase/cable.mli: Host Sim
