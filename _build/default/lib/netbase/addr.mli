(** MAC and IPv4-style addressing for the simulated network. *)

module Mac : sig
  type t

  val broadcast : t

  (** A globally fresh locally-administered unicast MAC. *)
  val fresh : unit -> t

  val is_broadcast : t -> bool

  val equal : t -> t -> bool

  val compare : t -> t -> int

  val to_string : t -> string

  val pp : Format.formatter -> t -> unit
end

module Ip : sig
  type t

  (** [v a b c d] builds the address [a.b.c.d]. Raises [Invalid_argument]
      if any octet is outside 0-255. *)
  val v : int -> int -> int -> int -> t

  val broadcast : t

  val equal : t -> t -> bool

  val compare : t -> t -> int

  val hash : t -> int

  val to_string : t -> string

  (** Raises [Invalid_argument] on malformed input. *)
  val of_string : string -> t

  (** True when both addresses share the same /24 prefix. *)
  val same_subnet24 : t -> t -> bool

  val pp : Format.formatter -> t -> unit
end

type endpoint = { ip : Ip.t; port : int }

val endpoint : Ip.t -> int -> endpoint

val pp_endpoint : Format.formatter -> endpoint -> unit
