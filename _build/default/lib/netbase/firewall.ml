(* Per-host packet filter.

   Models the hardening step from Section III-B of the paper: "configured
   the firewall of each machine to block all incoming and outgoing traffic
   other than the specific IP address and port combinations used by our
   protocols". Rules are evaluated first-match-wins against UDP traffic;
   ARP is below the filter, as on a real host. *)

type direction = Ingress | Egress

type action = Allow | Deny

type rule = {
  direction : direction;
  action : action;
  remote_ip : Addr.Ip.t option; (* None = any *)
  local_port : int option;
  remote_port : int option;
  description : string;
}

type t = {
  mutable rules : rule list; (* kept in evaluation order *)
  mutable default_ingress : action;
  mutable default_egress : action;
}

let create ?(default_ingress = Allow) ?(default_egress = Allow) () =
  { rules = []; default_ingress; default_egress }

(* The paper's locked-down profile: default deny both ways. *)
let locked_down () = create ~default_ingress:Deny ~default_egress:Deny ()

let rule ?(action = Allow) ?remote_ip ?local_port ?remote_port ~description direction =
  { direction; action; remote_ip; local_port; remote_port; description }

let add t r = t.rules <- t.rules @ [ r ]

let allow_peer t ~remote_ip ~local_port ~description =
  add t (rule ~remote_ip ~local_port ~description Ingress);
  add t (rule ~remote_ip ~remote_port:local_port ~description Egress)

let set_default t direction action =
  match direction with
  | Ingress -> t.default_ingress <- action
  | Egress -> t.default_egress <- action

let matches r ~direction ~remote_ip ~local_port ~remote_port =
  r.direction = direction
  && (match r.remote_ip with None -> true | Some ip -> Addr.Ip.equal ip remote_ip)
  && (match r.local_port with None -> true | Some p -> p = local_port)
  && match r.remote_port with None -> true | Some p -> p = remote_port

type verdict = { action : action; matched : string option }

let evaluate t ~direction ~remote_ip ~local_port ~remote_port =
  let rec scan = function
    | [] ->
        let default =
          match direction with Ingress -> t.default_ingress | Egress -> t.default_egress
        in
        { action = default; matched = None }
    | r :: rest ->
        if matches r ~direction ~remote_ip ~local_port ~remote_port then
          { action = r.action; matched = Some r.description }
        else scan rest
  in
  scan t.rules

let rules t = t.rules

let pp_action ppf = function Allow -> Fmt.string ppf "allow" | Deny -> Fmt.string ppf "deny"
