(** Firewall/router between network segments (the corporate firewall of
    the paper's Fig. 3 testbed). Forwards UDP between its interfaces
    according to an ACL matched on /24 subnets and destination port. *)

type t

type acl_entry = {
  src_subnet : Addr.Ip.t;
  dst_subnet : Addr.Ip.t;
  dst_port : int option;
  description : string;
}

val create : engine:Sim.Engine.t -> trace:Sim.Trace.t -> string -> t

(** The underlying host (for addressing/ARP inspection in tests). *)
val host : t -> Host.t

val counters : t -> Sim.Stats.Counter.t

(** Attach an interface with address [ip] to [switch]. Hosts on that
    segment should use this address as their default gateway. *)
val add_interface : t -> ip:Addr.Ip.t -> Switch.t -> Host.nic

(** Admit traffic from [src_subnet] to [dst_subnet] (optionally to one
    [dst_port]); everything not permitted is dropped. *)
val permit :
  t ->
  src_subnet:Addr.Ip.t ->
  dst_subnet:Addr.Ip.t ->
  ?dst_port:int ->
  description:string ->
  unit ->
  unit

val acl : t -> acl_entry list
