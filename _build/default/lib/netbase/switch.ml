(* Ethernet switch with optional static MAC-to-port bindings.

   The paper (Section III-B): "On the switch, we configured a static
   mapping of MAC addresses to switch ports" — the step that blocked the
   red team's MAC/ARP spoofing. In [Static] mode a frame whose source MAC
   is bound to a different port is dropped (port security), and unknown
   destinations are dropped rather than flooded.

   Each egress port models serialisation at [bandwidth] with a bounded
   backlog, so volumetric floods can saturate a port and shed traffic. *)

type port_id = int

type mode = Learning | Static

type port = {
  deliver : Packet.frame -> unit;
  mutable next_free : float; (* virtual time when the port finishes its backlog *)
}

type t = {
  engine : Sim.Engine.t;
  trace : Sim.Trace.t;
  name : string;
  mutable mode : mode;
  mutable ports : port array;
  mutable port_count : int;
  mac_table : (Addr.Mac.t, port_id) Hashtbl.t; (* learned or static *)
  mutable taps : (Packet.frame -> unit) list;
  counters : Sim.Stats.Counter.t;
  latency : float;
  bandwidth : float; (* bytes per second per port *)
  max_backlog : float; (* seconds of queued serialisation before tail drop *)
}

let create ?(mode = Learning) ?(latency = 5e-6) ?(bandwidth = 125_000_000.0)
    ?(max_backlog = 0.05) ~engine ~trace name =
  {
    engine;
    trace;
    name;
    mode;
    ports = [||];
    port_count = 0;
    mac_table = Hashtbl.create 32;
    taps = [];
    counters = Sim.Stats.Counter.create ();
    latency;
    bandwidth;
    max_backlog;
  }

let name t = t.name

let counters t = t.counters

let set_mode t mode = t.mode <- mode

let attach t deliver =
  let port = { deliver; next_free = 0.0 } in
  if t.port_count = Array.length t.ports then begin
    let grown = Array.make (max 8 (2 * t.port_count)) port in
    Array.blit t.ports 0 grown 0 t.port_count;
    t.ports <- grown
  end;
  t.ports.(t.port_count) <- port;
  t.port_count <- t.port_count + 1;
  t.port_count - 1

let bind_mac t mac port_id =
  if port_id < 0 || port_id >= t.port_count then invalid_arg "Switch.bind_mac: bad port";
  Hashtbl.replace t.mac_table mac port_id

let add_tap t tap = t.taps <- tap :: t.taps

(* Egress with per-port serialisation and bounded backlog. *)
let send_out t port_id frame =
  let port = t.ports.(port_id) in
  let now = Sim.Engine.now t.engine in
  let start = Float.max now port.next_free in
  if start -. now > t.max_backlog then begin
    Sim.Stats.Counter.incr t.counters "drop.backlog";
    Sim.Trace.record t.trace ~time:now ~category:"switch"
      "%s: port %d backlog full, dropping %s" t.name port_id (Packet.describe_l3 frame.Packet.l3)
  end
  else begin
    let serialization = float_of_int (Packet.frame_size frame) /. t.bandwidth in
    port.next_free <- start +. serialization;
    let arrival = start +. serialization +. t.latency in
    ignore (Sim.Engine.schedule_at t.engine ~time:arrival (fun () -> port.deliver frame));
    Sim.Stats.Counter.incr t.counters "tx"
  end

let flood t ~ingress frame =
  for p = 0 to t.port_count - 1 do
    if p <> ingress then send_out t p frame
  done

let inject t ingress (frame : Packet.frame) =
  let now = Sim.Engine.now t.engine in
  Sim.Stats.Counter.incr t.counters "rx";
  (* Port security: in static mode, a source MAC bound elsewhere is spoofed. *)
  let src_ok =
    match (t.mode, Hashtbl.find_opt t.mac_table frame.src_mac) with
    | Static, Some bound when bound <> ingress -> false
    | Static, None -> false (* unknown MACs are not admitted in static mode *)
    | _ -> true
  in
  if not src_ok then begin
    Sim.Stats.Counter.incr t.counters "drop.port_security";
    Sim.Trace.record t.trace ~time:now ~category:"switch"
      "%s: port-security drop on port %d: %a" t.name ingress Packet.pp_frame frame
  end
  else begin
    if t.mode = Learning then Hashtbl.replace t.mac_table frame.src_mac ingress;
    List.iter (fun tap -> tap frame) t.taps;
    if Addr.Mac.is_broadcast frame.dst_mac then flood t ~ingress frame
    else
      match Hashtbl.find_opt t.mac_table frame.dst_mac with
      | Some p when p = ingress -> Sim.Stats.Counter.incr t.counters "drop.hairpin"
      | Some p -> send_out t p frame
      | None -> (
          match t.mode with
          | Learning -> flood t ~ingress frame
          | Static ->
              Sim.Stats.Counter.incr t.counters "drop.unknown_dst";
              Sim.Trace.record t.trace ~time:now ~category:"switch"
                "%s: unknown destination in static mode: %a" t.name Packet.pp_frame frame)
  end
