(** Passive packet capture: frame metadata only (no payload inspection),
    as delivered to MANA via a mirror port. *)

type record = {
  time : float;
  size : int;
  src_mac : Addr.Mac.t;
  dst_mac : Addr.Mac.t;
  info : info;
}

and info =
  | Arp of { sender_ip : Addr.Ip.t; target_ip : Addr.Ip.t; is_reply : bool }
  | Udp of { src : Addr.Ip.t; dst : Addr.Ip.t; src_port : int; dst_port : int }

type t

val create : unit -> t

(** Convert a frame to a capture record. *)
val of_frame : time:float -> Packet.frame -> record

(** Append a frame to the capture. *)
val capture : t -> time:float -> Packet.frame -> unit

(** All records, chronological. *)
val records : t -> record list

val length : t -> int

(** Records with [t0 <= time < t1], chronological. *)
val window : t -> t0:float -> t1:float -> record list

val clear : t -> unit
