(* Passive packet capture.

   MANA receives an out-of-band copy of network traffic (the paper's SPAN
   port); a capture is a chronological record of frame metadata. Payloads
   are not inspected — mirroring the paper's observation that proprietary
   or encrypted protocols defeat deep inspection, so the IDS must work
   from flow statistics alone. *)

type record = {
  time : float;
  size : int;
  src_mac : Addr.Mac.t;
  dst_mac : Addr.Mac.t;
  info : info;
}

and info =
  | Arp of { sender_ip : Addr.Ip.t; target_ip : Addr.Ip.t; is_reply : bool }
  | Udp of { src : Addr.Ip.t; dst : Addr.Ip.t; src_port : int; dst_port : int }

type t = { mutable records : record list; mutable count : int }

let create () = { records = []; count = 0 }

let of_frame ~time (frame : Packet.frame) =
  let info =
    match frame.l3 with
    | Packet.Arp_request { sender_ip; target_ip; _ } -> Arp { sender_ip; target_ip; is_reply = false }
    | Packet.Arp_reply { sender_ip; target_ip; _ } -> Arp { sender_ip; target_ip; is_reply = true }
    | Packet.Ipv4 { src; dst; udp; _ } ->
        Udp { src; dst; src_port = udp.src_port; dst_port = udp.dst_port }
  in
  { time; size = Packet.frame_size frame; src_mac = frame.src_mac; dst_mac = frame.dst_mac; info }

let capture t ~time frame =
  t.records <- of_frame ~time frame :: t.records;
  t.count <- t.count + 1

let records t = List.rev t.records

let length t = t.count

(* Records within [t0, t1), chronological. *)
let window t ~t0 ~t1 =
  List.filter (fun r -> r.time >= t0 && r.time < t1) (records t)

let clear t =
  t.records <- [];
  t.count <- 0
