(* Simulated host: NICs, ARP, UDP sockets, firewall, OS profile.

   This module carries most of the Section III-B hardening model:
   - per-host firewall (default-deny on hardened hosts);
   - static ARP entries that poisoning cannot displace;
   - the [arp_ignore] sysctl (a NIC answers ARP only for its own
     addresses when set, preventing cross-network address disclosure
     on multi-homed replicas);
   - an OS profile carrying privilege-escalation vulnerabilities and
     preinstalled services (minimal CentOS server vs Ubuntu desktop).

   Attack code interacts with hosts through the same primitives as
   protocol code: raw frame handlers for sniffing/MITM, [udp_send] for
   injection, and the compromise level that gates what an attacker with a
   foothold may do. *)

type compromise = Clean | User_level | Root_level

type service = { name : string; remote_vuln : string option }

type os_profile = {
  os_name : string;
  privilege_vulns : string list; (* local escalation, e.g. "dirtycow" *)
  preinstalled : (int * service) list; (* default listening services *)
  arp_ignore : bool; (* answer ARP only for the receiving NIC's own IPs *)
}

let centos_minimal =
  {
    os_name = "CentOS-minimal-server";
    privilege_vulns = [];
    preinstalled = [ (22, { name = "sshd-patched"; remote_vuln = None }) ];
    arp_ignore = true;
  }

let ubuntu_desktop =
  {
    os_name = "Ubuntu-desktop";
    privilege_vulns = [ "dirtycow" ];
    preinstalled =
      [
        (22, { name = "sshd-old"; remote_vuln = Some "ssh-exploit" });
        (111, { name = "rpcbind"; remote_vuln = None });
        (631, { name = "cups"; remote_vuln = Some "cups-exploit" });
        (5353, { name = "avahi"; remote_vuln = None });
      ];
    arp_ignore = false;
  }

type udp_handler = src:Addr.endpoint -> dst_port:int -> size:int -> Packet.payload -> unit

type arp_entry = { mac : Addr.Mac.t; static : bool }

type nic = {
  nic_mac : Addr.Mac.t;
  nic_ip : Addr.Ip.t;
  mutable transmit : Packet.frame -> unit; (* wired at plug time *)
  mutable promiscuous : (Packet.frame -> unit) option;
}

type pending = { dst_ip : Addr.Ip.t; frame_of_mac : Addr.Mac.t -> Packet.frame; expires : float }

type t = {
  engine : Sim.Engine.t;
  trace : Sim.Trace.t;
  host_name : string;
  os : os_profile;
  mutable nics : nic list;
  arp_table : (Addr.Ip.t, arp_entry) Hashtbl.t;
  firewall : Firewall.t;
  sockets : (int, udp_handler) Hashtbl.t;
  services : (int, service) Hashtbl.t;
  mutable default_gateway : Addr.Ip.t option;
  mutable compromise : compromise;
  mutable pending_arp : pending list;
  mutable raw_handler : (nic -> Packet.frame -> bool) option;
      (* return true to swallow the frame before normal processing *)
  counters : Sim.Stats.Counter.t;
  mutable ingress_tokens : float; (* packets; models host processing capacity *)
  mutable tokens_updated : float;
  ingress_rate : float; (* packets per second *)
}

let arp_timeout = 1.0

let create ?(os = ubuntu_desktop) ?(firewall = Firewall.create ()) ?(ingress_rate = 200_000.0)
    ~engine ~trace host_name =
  let t =
    {
      engine;
      trace;
      host_name;
      os;
      nics = [];
      arp_table = Hashtbl.create 16;
      firewall;
      sockets = Hashtbl.create 16;
      services = Hashtbl.create 16;
      default_gateway = None;
      compromise = Clean;
      pending_arp = [];
      raw_handler = None;
      counters = Sim.Stats.Counter.create ();
      ingress_tokens = ingress_rate /. 10.0;
      tokens_updated = 0.0;
      ingress_rate;
    }
  in
  List.iter (fun (port, svc) -> Hashtbl.replace t.services port svc) os.preinstalled;
  t

let name t = t.host_name

let os t = t.os

let firewall t = t.firewall

let counters t = t.counters

let compromise_level t = t.compromise

let set_compromise t level = t.compromise <- level

let add_nic t ~ip =
  let nic = { nic_mac = Addr.Mac.fresh (); nic_ip = ip; transmit = (fun _ -> ()); promiscuous = None } in
  t.nics <- t.nics @ [ nic ];
  nic

let nic_mac nic = nic.nic_mac

let nic_ip nic = nic.nic_ip

let nics t = t.nics

let primary_ip t =
  match t.nics with [] -> invalid_arg "Host.primary_ip: no NIC" | nic :: _ -> nic.nic_ip

let set_default_gateway t ip = t.default_gateway <- Some ip

let set_static_arp t ~ip ~mac = Hashtbl.replace t.arp_table ip { mac; static = true }

let arp_lookup t ip =
  match Hashtbl.find_opt t.arp_table ip with Some e -> Some e.mac | None -> None

let set_promiscuous nic handler = nic.promiscuous <- handler

let set_raw_handler t handler = t.raw_handler <- handler

let add_service t ~port service = Hashtbl.replace t.services port service

let remove_service t ~port = Hashtbl.remove t.services port

let service_at t ~port = Hashtbl.find_opt t.services port

let udp_bind t ~port handler =
  if Hashtbl.mem t.sockets port then
    invalid_arg (Printf.sprintf "Host.udp_bind: %s port %d already bound" t.host_name port);
  Hashtbl.replace t.sockets port handler

let udp_unbind t ~port = Hashtbl.remove t.sockets port

(* --- transmit path --------------------------------------------------- *)

let nic_for_dst t dst_ip =
  let local = List.find_opt (fun nic -> Addr.Ip.same_subnet24 nic.nic_ip dst_ip) t.nics in
  match (local, t.default_gateway) with
  | Some nic, _ -> Some (nic, dst_ip) (* next hop is the destination itself *)
  | None, Some gw -> (
      match List.find_opt (fun nic -> Addr.Ip.same_subnet24 nic.nic_ip gw) t.nics with
      | Some nic -> Some (nic, gw)
      | None -> None)
  | None, None -> None

let send_arp_request t nic target_ip =
  let frame =
    {
      Packet.src_mac = nic.nic_mac;
      dst_mac = Addr.Mac.broadcast;
      l3 = Packet.Arp_request { sender_ip = nic.nic_ip; sender_mac = nic.nic_mac; target_ip };
    }
  in
  Sim.Stats.Counter.incr t.counters "arp.request_sent";
  nic.transmit frame

let transmit_ip t nic ~next_hop frame_of_mac =
  match arp_lookup t next_hop with
  | Some mac -> nic.transmit (frame_of_mac mac)
  | None ->
      let now = Sim.Engine.now t.engine in
      let already_resolving =
        List.exists (fun p -> Addr.Ip.equal p.dst_ip next_hop) t.pending_arp
      in
      t.pending_arp <-
        { dst_ip = next_hop; frame_of_mac; expires = now +. arp_timeout } :: t.pending_arp;
      if not already_resolving then send_arp_request t nic next_hop;
      (* Expire unresolved entries so the queue cannot grow without bound. *)
      ignore
        (Sim.Engine.schedule t.engine ~delay:(arp_timeout +. 0.01) (fun () ->
             let fresh_cutoff = Sim.Engine.now t.engine in
             let before = List.length t.pending_arp in
             t.pending_arp <- List.filter (fun p -> p.expires > fresh_cutoff) t.pending_arp;
             let dropped = before - List.length t.pending_arp in
             if dropped > 0 then Sim.Stats.Counter.incr ~by:dropped t.counters "arp.unresolved_drop"))

(* [spoof_src] lets attack code forge the source address (IP spoofing);
   honest senders leave it unset. *)
let udp_send ?spoof_src t ~dst_ip ~dst_port ~src_port ~size payload =
  match nic_for_dst t dst_ip with
  | None ->
      Sim.Stats.Counter.incr t.counters "tx.no_route";
      Sim.Trace.record t.trace ~time:(Sim.Engine.now t.engine) ~category:"host"
        "%s: no route to %s" t.host_name (Addr.Ip.to_string dst_ip)
  | Some (nic, next_hop) -> (
      let src_ip = match spoof_src with Some ip -> ip | None -> nic.nic_ip in
      let verdict =
        Firewall.evaluate t.firewall ~direction:Firewall.Egress ~remote_ip:dst_ip
          ~local_port:src_port ~remote_port:dst_port
      in
      match verdict.Firewall.action with
      | Firewall.Deny -> Sim.Stats.Counter.incr t.counters "tx.firewall_drop"
      | Firewall.Allow ->
          Sim.Stats.Counter.incr t.counters "tx.udp";
          let frame_of_mac mac =
            Packet.udp_frame ~src_mac:nic.nic_mac ~dst_mac:mac ~src_ip ~dst_ip ~src_port
              ~dst_port ~size payload
          in
          transmit_ip t nic ~next_hop frame_of_mac)

(* Raw frame injection for attack tooling (requires only network position,
   not a compromise: any device on the wire can emit arbitrary frames). *)
let inject_frame t nic frame =
  Sim.Stats.Counter.incr t.counters "tx.raw_frame";
  nic.transmit frame

(* --- receive path ----------------------------------------------------- *)

let refill_tokens t =
  let now = Sim.Engine.now t.engine in
  let elapsed = now -. t.tokens_updated in
  if elapsed > 0.0 then begin
    let cap = t.ingress_rate /. 10.0 in
    t.ingress_tokens <- Float.min cap (t.ingress_tokens +. (elapsed *. t.ingress_rate));
    t.tokens_updated <- now
  end

let owns_ip t ip = List.exists (fun nic -> Addr.Ip.equal nic.nic_ip ip) t.nics

let learn_arp t ~ip ~mac ~reason =
  match Hashtbl.find_opt t.arp_table ip with
  | Some { static = true; mac = bound } ->
      if not (Addr.Mac.equal bound mac) then begin
        Sim.Stats.Counter.incr t.counters "arp.static_protected";
        Sim.Trace.record t.trace ~time:(Sim.Engine.now t.engine) ~category:"host"
          "%s: ignored ARP (%s) for %s: static entry pins %s" t.host_name reason
          (Addr.Ip.to_string ip) (Addr.Mac.to_string bound)
      end
  | Some { static = false; mac = old } when not (Addr.Mac.equal old mac) ->
      Sim.Stats.Counter.incr t.counters "arp.cache_updated";
      Hashtbl.replace t.arp_table ip { mac; static = false }
  | Some _ -> ()
  | None -> Hashtbl.replace t.arp_table ip { mac; static = false }

let flush_pending t ip mac =
  let ready, waiting = List.partition (fun p -> Addr.Ip.equal p.dst_ip ip) t.pending_arp in
  t.pending_arp <- waiting;
  List.iter
    (fun p ->
      match List.find_opt (fun nic -> Addr.Ip.same_subnet24 nic.nic_ip ip) t.nics with
      | Some nic -> nic.transmit (p.frame_of_mac mac)
      | None -> ())
    ready

let handle_arp t nic = function
  | Packet.Arp_request { sender_ip; sender_mac; target_ip } ->
      (* Opportunistic learning from requests, as real stacks do; the same
         dynamic-cache weakness ARP poisoning abuses. *)
      learn_arp t ~ip:sender_ip ~mac:sender_mac ~reason:"request";
      let answer =
        if t.os.arp_ignore then Addr.Ip.equal nic.nic_ip target_ip else owns_ip t target_ip
      in
      if answer then begin
        Sim.Stats.Counter.incr t.counters "arp.reply_sent";
        nic.transmit
          {
            Packet.src_mac = nic.nic_mac;
            dst_mac = sender_mac;
            l3 =
              Packet.Arp_reply
                { sender_ip = target_ip; sender_mac = nic.nic_mac; target_ip = sender_ip;
                  target_mac = sender_mac };
          }
      end
  | Packet.Arp_reply { sender_ip; sender_mac; _ } ->
      learn_arp t ~ip:sender_ip ~mac:sender_mac ~reason:"reply";
      (match Hashtbl.find_opt t.arp_table sender_ip with
      | Some { mac; _ } -> flush_pending t sender_ip mac
      | None -> ())
  | Packet.Ipv4 _ -> assert false

let respond_to_probe t ~src ~dst_port =
  (* Scan semantics: open service answers, closed port answers unreachable
     (both only when the firewall admitted the probe). *)
  match Hashtbl.find_opt t.services dst_port with
  | Some svc ->
      udp_send t ~dst_ip:src.Addr.ip ~dst_port:src.Addr.port ~src_port:dst_port ~size:40
        (Packet.Scan_ack { service = svc.name })
  | None ->
      udp_send t ~dst_ip:src.Addr.ip ~dst_port:src.Addr.port ~src_port:dst_port ~size:40
        Packet.Icmp_port_unreachable

let deliver_udp t ~src_ip ~(udp : Packet.udp) =
  let verdict =
    Firewall.evaluate t.firewall ~direction:Firewall.Ingress ~remote_ip:src_ip
      ~local_port:udp.dst_port ~remote_port:udp.src_port
  in
  match verdict.Firewall.action with
  | Firewall.Deny -> Sim.Stats.Counter.incr t.counters "rx.firewall_drop"
  | Firewall.Allow -> (
      Sim.Stats.Counter.incr t.counters "rx.udp";
      let src = Addr.endpoint src_ip udp.src_port in
      match udp.payload with
      | Packet.Scan_probe -> respond_to_probe t ~src ~dst_port:udp.dst_port
      | _ -> (
          match Hashtbl.find_opt t.sockets udp.dst_port with
          | Some handler -> handler ~src ~dst_port:udp.dst_port ~size:udp.size udp.payload
          | None -> Sim.Stats.Counter.incr t.counters "rx.port_closed"))

let nic_receive t nic (frame : Packet.frame) =
  refill_tokens t;
  if t.ingress_tokens < 1.0 then begin
    Sim.Stats.Counter.incr t.counters "rx.overload_drop"
  end
  else begin
    t.ingress_tokens <- t.ingress_tokens -. 1.0;
    Sim.Stats.Counter.incr t.counters "rx.frames";
    (match nic.promiscuous with Some tap -> tap frame | None -> ());
    let swallowed =
      match t.raw_handler with Some handler -> handler nic frame | None -> false
    in
    if not swallowed then
      let for_us =
        Addr.Mac.is_broadcast frame.dst_mac || Addr.Mac.equal frame.dst_mac nic.nic_mac
      in
      if not for_us then Sim.Stats.Counter.incr t.counters "rx.wrong_mac"
      else
        match frame.l3 with
        | Packet.Arp_request _ | Packet.Arp_reply _ -> handle_arp t nic frame.l3
        | Packet.Ipv4 { src; dst; udp; _ } ->
            if owns_ip t dst then deliver_udp t ~src_ip:src ~udp
            else Sim.Stats.Counter.incr t.counters "rx.not_our_ip"
  end

(* Wire a NIC to a medium: the medium calls the returned deliver function;
   host transmissions go through [transmit]. *)
let plug t nic ~transmit =
  nic.transmit <- transmit;
  fun frame -> nic_receive t nic frame

let plug_into_switch t nic switch =
  let port = ref (-1) in
  let deliver frame = nic_receive t nic frame in
  port := Switch.attach switch deliver;
  nic.transmit <- (fun frame -> Switch.inject switch !port frame);
  !port

(* --- OS compromise model ---------------------------------------------- *)

(* Remote exploitation: succeeds only against a service that is reachable
   (firewall) and carries the named vulnerability. *)
let attempt_remote_exploit t ~from_ip ~port ~exploit =
  let verdict =
    Firewall.evaluate t.firewall ~direction:Firewall.Ingress ~remote_ip:from_ip
      ~local_port:port ~remote_port:40000
  in
  match verdict.Firewall.action with
  | Firewall.Deny -> Error "filtered"
  | Firewall.Allow -> (
      match Hashtbl.find_opt t.services port with
      | None -> Error "no service"
      | Some svc -> (
          match svc.remote_vuln with
          | Some v when String.equal v exploit ->
              t.compromise <- User_level;
              Ok ()
          | Some _ | None -> Error "service not vulnerable"))

(* Local privilege escalation: succeeds only when the kernel/OS carries the
   named vulnerability (e.g. dirtycow on the unpatched profile). *)
let attempt_privilege_escalation t ~exploit =
  match t.compromise with
  | Clean -> Error "no foothold"
  | Root_level -> Ok ()
  | User_level ->
      if List.exists (String.equal exploit) t.os.privilege_vulns then begin
        t.compromise <- Root_level;
        Ok ()
      end
      else Error (Printf.sprintf "%s not vulnerable to %s" t.os.os_name exploit)
