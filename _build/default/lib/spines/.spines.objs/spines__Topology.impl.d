lib/spines/topology.ml: Hashtbl List Option Printf Sim
