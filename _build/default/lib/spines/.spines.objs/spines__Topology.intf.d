lib/spines/topology.mli: Hashtbl
