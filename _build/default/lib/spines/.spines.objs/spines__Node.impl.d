lib/spines/node.ml: Array Crypto Float Hashtbl List Netbase Printf Sim String Topology
