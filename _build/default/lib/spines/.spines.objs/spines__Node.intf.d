lib/spines/node.mli: Netbase Sim Topology
