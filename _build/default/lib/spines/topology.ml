(* Overlay topology and shortest-path routing.

   A topology is the static set of overlay nodes and undirected links,
   known to every daemon (as in Spines, where the overlay graph is
   configuration). Liveness is dynamic: each daemon maintains its own view
   of which links are currently up (driven by hellos and link-state
   announcements) and computes next hops with Dijkstra over that view. *)

type node_id = int

type link = { a : node_id; b : node_id; weight : float }

type t = { nodes : node_id list; links : link list }

let create ~nodes ~links =
  let known id = List.mem id nodes in
  List.iter
    (fun l ->
      if not (known l.a && known l.b) then
        invalid_arg (Printf.sprintf "Topology.create: link %d-%d references unknown node" l.a l.b);
      if l.a = l.b then invalid_arg "Topology.create: self-link";
      if l.weight <= 0.0 then invalid_arg "Topology.create: non-positive weight")
    links;
  { nodes; links }

let nodes t = t.nodes

let links t = t.links

let link ?(weight = 1.0) a b = { a; b; weight }

(* Full mesh, as used for the replicas' internal network. *)
let full_mesh nodes =
  let rec pairs = function
    | [] -> []
    | x :: rest -> List.map (fun y -> link x y) rest @ pairs rest
  in
  create ~nodes ~links:(pairs nodes)

let neighbors t id =
  List.filter_map
    (fun l -> if l.a = id then Some l.b else if l.b = id then Some l.a else None)
    t.links

(* A link view says which links are currently believed up. Keys are
   normalised (min, max) pairs. *)
module View = struct
  type view = { up : (node_id * node_id, unit) Hashtbl.t }

  let key a b = (min a b, max a b)

  let all_up t =
    let up = Hashtbl.create 32 in
    List.iter (fun l -> Hashtbl.replace up (key l.a l.b) ()) t.links;
    { up }

  let set_link v a b ~up:is_up =
    if is_up then Hashtbl.replace v.up (key a b) () else Hashtbl.remove v.up (key a b)

  let is_up v a b = Hashtbl.mem v.up (key a b)
end

(* Dijkstra over the live links; returns next-hop map from [src]. *)
let next_hops t view ~src =
  let dist = Hashtbl.create 16 in
  let first_hop : (node_id, node_id) Hashtbl.t = Hashtbl.create 16 in
  let heap = Sim.Heap.create () in
  Hashtbl.replace dist src 0.0;
  Sim.Heap.push heap ~key:0.0 (src, None);
  let rec loop () =
    match Sim.Heap.pop heap with
    | None -> ()
    | Some (d, (node, via)) ->
        let best = Option.value ~default:infinity (Hashtbl.find_opt dist node) in
        if d <= best then begin
          (match via with
          | Some hop when not (Hashtbl.mem first_hop node) -> Hashtbl.replace first_hop node hop
          | _ -> ());
          List.iter
            (fun l ->
              let other =
                if l.a = node then Some l.b else if l.b = node then Some l.a else None
              in
              match other with
              | Some next when View.is_up view l.a l.b ->
                  let nd = d +. l.weight in
                  let known = Option.value ~default:infinity (Hashtbl.find_opt dist next) in
                  if nd < known then begin
                    Hashtbl.replace dist next nd;
                    (* The first hop out of [src] is either [next] itself
                       (for direct neighbors) or inherited from [node]. *)
                    let hop =
                      if node = src then next
                      else Option.value ~default:next (Hashtbl.find_opt first_hop node)
                    in
                    Sim.Heap.push heap ~key:nd (next, Some hop)
                  end
              | _ -> ())
            t.links;
          loop ()
        end
        else loop ()
  in
  loop ();
  first_hop

let route t view ~src ~dst =
  if src = dst then None else Hashtbl.find_opt (next_hops t view ~src) dst
