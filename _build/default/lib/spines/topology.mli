(** Static overlay topology plus per-daemon dynamic link views and
    shortest-path (Dijkstra) next-hop computation. *)

type node_id = int

type link = { a : node_id; b : node_id; weight : float }

type t

(** Raises [Invalid_argument] on self-links, unknown endpoints or
    non-positive weights. *)
val create : nodes:node_id list -> links:link list -> t

val nodes : t -> node_id list

val links : t -> link list

val link : ?weight:float -> node_id -> node_id -> link

(** Complete graph over the nodes (the replicas' internal network). *)
val full_mesh : node_id list -> t

val neighbors : t -> node_id -> node_id list

module View : sig
  type view

  (** View with every configured link up. *)
  val all_up : t -> view

  val set_link : view -> node_id -> node_id -> up:bool -> unit

  val is_up : view -> node_id -> node_id -> bool
end

(** Next-hop table from [src] over the live links. *)
val next_hops : t -> View.view -> src:node_id -> (node_id, node_id) Hashtbl.t

(** First hop from [src] toward [dst], if reachable. *)
val route : t -> View.view -> src:node_id -> dst:node_id -> node_id option
