(** Flow-feature extraction from passive packet capture (metadata only —
    the paper's requirement for IDS in operational SCADA networks). *)

type t

(** Feature vector component names, aligned with {!extract}'s output. *)
val feature_names : string array

val dimensions : int

(** Per-feature minimum standard deviation, matched to each feature's
    natural scale (counts vs ratios). *)
val std_floors : float array

val create : unit -> t

(** Stop learning new flows: traffic to unknown flows becomes an anomaly
    signal from here on. *)
val freeze : t -> unit

val known_flow_count : t -> int

(** Condense one capture window into a feature vector. While learning,
    flows seen are added to the known-baseline set. *)
val extract : t -> Netbase.Pcap.record list -> float array
