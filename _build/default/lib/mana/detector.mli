(** MANA: train per-feature Gaussian statistics and a k-means model on a
    baseline capture, then score subsequent windows passively and alert
    on persistent anomalies, tagged with the dominant feature's attack
    family. *)

type alert = {
  alert_time : float;
  score : float;
  dominant_feature : string;
  category : string; (* "arp-anomaly", "scan-or-probe", "volume-flood", ... *)
}

type t

val create :
  ?window:float ->
  ?threshold:float ->
  ?consecutive_required:int ->
  engine:Sim.Engine.t ->
  trace:Sim.Trace.t ->
  unit ->
  t

val alerts : t -> alert list

val alert_categories : t -> string list

val windows_scored : t -> int

val is_trained : t -> bool

(** Train on the capture between [t0] and [t1]. Raises [Invalid_argument]
    on an empty baseline. *)
val train : t -> rng:Sim.Rng.t -> Netbase.Pcap.t -> t0:float -> t1:float -> unit

(** Score the next window (manual driving; normally use {!start}).
    Raises [Invalid_argument] if not trained. *)
val evaluate : t -> Netbase.Pcap.t -> unit

(** Score one window per period against a live capture. *)
val start : t -> Netbase.Pcap.t -> Sim.Engine.timer
