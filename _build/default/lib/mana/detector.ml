(* MANA: Machine-learning Assisted Network Analyzer.

   Operation mirrors the paper's deployments:
   1. a training phase over a baseline capture (24 h at the red-team
      exercise, 12 h at the plant) builds per-feature Gaussian statistics
      and a k-means model of normal windows;
   2. detection scores each subsequent window by z-score and
      cluster distance, entirely passively;
   3. persistent anomalies raise alerts tagged with the dominant feature,
      giving the operator the situational awareness Section III-C argues
      for. *)

type alert = {
  alert_time : float;
  score : float;
  dominant_feature : string;
  category : string;
}

type model = {
  means : float array;
  stds : float array;
  clusters : Kmeans.t;
  baseline_distance : float; (* typical nearest-centroid distance in training *)
}

type t = {
  engine : Sim.Engine.t;
  trace : Sim.Trace.t;
  features : Features.t;
  window : float;
  threshold : float;
  consecutive_required : int;
  mutable model : model option;
  mutable alerts : alert list;
  mutable consecutive : int;
  mutable windows_scored : int;
  mutable last_window_end : float;
  counters : Sim.Stats.Counter.t;
}

let create ?(window = 1.0) ?(threshold = 6.0) ?(consecutive_required = 2) ~engine ~trace () =
  {
    engine;
    trace;
    features = Features.create ();
    window;
    threshold;
    consecutive_required;
    model = None;
    alerts = [];
    consecutive = 0;
    windows_scored = 0;
    last_window_end = 0.0;
    counters = Sim.Stats.Counter.create ();
  }

let alerts t = List.rev t.alerts

let windows_scored t = t.windows_scored

let is_trained t = t.model <> None

(* Slice a capture into fixed windows and extract features from each. *)
let windows_of_capture t pcap ~t0 ~t1 =
  let rec slice start acc =
    if start >= t1 then List.rev acc
    else
      let records = Netbase.Pcap.window pcap ~t0:start ~t1:(start +. t.window) in
      slice (start +. t.window) (Features.extract t.features records :: acc)
  in
  slice t0 []

let train t ~rng pcap ~t0 ~t1 =
  (* Learning mode: flows seen here become the known-baseline set. *)
  let vectors = windows_of_capture t pcap ~t0 ~t1 in
  if vectors = [] then invalid_arg "Detector.train: empty baseline capture";
  Features.freeze t.features;
  let dim = Features.dimensions in
  let n = float_of_int (List.length vectors) in
  let means = Array.make dim 0.0 in
  List.iter (fun v -> Array.iteri (fun i x -> means.(i) <- means.(i) +. x) v) vectors;
  Array.iteri (fun i s -> means.(i) <- s /. n) means;
  let stds = Array.make dim 0.0 in
  List.iter
    (fun v -> Array.iteri (fun i x -> stds.(i) <- stds.(i) +. ((x -. means.(i)) ** 2.0)) v)
    vectors;
  (* Std floor: at least 5% of the feature's mean (constant SCADA traffic
     has near-zero variance) and at least the feature's scale-appropriate
     absolute floor, so z-scores stay comparable across features of very
     different magnitudes. *)
  Array.iteri
    (fun i s ->
      stds.(i) <-
        Float.max
          (Float.max Features.std_floors.(i) (0.05 *. Float.abs means.(i)))
          (sqrt (s /. n)))
    stds;
  let normalize v = Array.mapi (fun i x -> (x -. means.(i)) /. stds.(i)) v in
  let normalized = List.map normalize vectors in
  let clusters = Kmeans.train ~rng ~k:4 ~iterations:10 normalized in
  let baseline_distance =
    let total = List.fold_left (fun acc v -> acc +. Kmeans.distance clusters v) 0.0 normalized in
    Float.max 0.5 (total /. n)
  in
  t.model <- Some { means; stds; clusters; baseline_distance };
  t.last_window_end <- t1;
  Sim.Trace.record t.trace ~time:(Sim.Engine.now t.engine) ~category:"mana"
    "trained on %d windows (%d baseline flows)" (List.length vectors)
    (Features.known_flow_count t.features)

(* Category heuristics: name the attack family from the dominant feature,
   as the situational awareness board does for the plant engineers. *)
let categorize feature =
  match feature with
  | "arp_requests" | "arp_replies" | "unsolicited_arp_ratio" -> "arp-anomaly"
  | "max_fanout" | "new_flow_count" -> "scan-or-probe"
  | "total_packets" | "total_bytes" | "max_flow_packets" -> "volume-flood"
  | "flow_count" -> "new-communication-pattern"
  | _ -> "anomaly"

(* Several features spike together under most attacks (a port scan also
   raises packet counts); among the comparably-dominant features, prefer
   the most *specific* signal so the alert names the attack family. *)
let specificity feature =
  match feature with
  | "unsolicited_arp_ratio" -> 6
  | "arp_requests" | "arp_replies" -> 5
  | "max_fanout" -> 4
  | "new_flow_count" -> 3
  | "max_flow_packets" -> 2
  | "flow_count" -> 1
  | _ -> 0 (* total_packets, total_bytes, mean_packet_size *)

let score_window model v =
  let z = Array.mapi (fun i x -> Float.abs ((x -. model.means.(i)) /. model.stds.(i))) v in
  let max_z = Array.fold_left Float.max 0.0 z in
  let dominant = ref 0 in
  Array.iteri
    (fun i x ->
      if
        x >= 0.5 *. max_z
        && (z.(!dominant) < 0.5 *. max_z
           || specificity Features.feature_names.(i) > specificity Features.feature_names.(!dominant)
           )
      then dominant := i)
    z;
  let normalized = Array.mapi (fun i x -> (x -. model.means.(i)) /. model.stds.(i)) v in
  let cluster_distance = Kmeans.distance model.clusters normalized /. model.baseline_distance in
  let score = Float.max max_z cluster_distance in
  (score, Features.feature_names.(!dominant))

(* Score the next capture window; raises alerts on persistent anomalies. *)
let evaluate t pcap =
  match t.model with
  | None -> invalid_arg "Detector.evaluate: not trained"
  | Some model ->
      let t0 = t.last_window_end in
      let t1 = t0 +. t.window in
      t.last_window_end <- t1;
      let records = Netbase.Pcap.window pcap ~t0 ~t1 in
      let v = Features.extract t.features records in
      let score, dominant = score_window model v in
      t.windows_scored <- t.windows_scored + 1;
      Sim.Stats.Counter.incr t.counters "windows";
      if score > t.threshold then begin
        t.consecutive <- t.consecutive + 1;
        if t.consecutive >= t.consecutive_required then begin
          let category = categorize dominant in
          let alert =
            { alert_time = Sim.Engine.now t.engine; score; dominant_feature = dominant; category }
          in
          t.alerts <- alert :: t.alerts;
          Sim.Stats.Counter.incr t.counters "alerts";
          Sim.Stats.Counter.incr t.counters ("alert." ^ category);
          Sim.Trace.record t.trace ~time:alert.alert_time ~category:"mana"
            "ALERT %s (score %.1f, feature %s)" category score dominant
        end
      end
      else t.consecutive <- 0

(* Run detection continuously against a live capture. *)
let start t pcap =
  t.last_window_end <- Sim.Engine.now t.engine;
  Sim.Engine.every t.engine ~period:t.window (fun () -> evaluate t pcap)

let alert_categories t =
  List.sort_uniq String.compare (List.map (fun a -> a.category) (alerts t))
