(* Flow-feature extraction for MANA.

   MANA receives passive packet capture and must work without protocol
   knowledge or plaintext (Section III-C): everything here derives from
   frame metadata only. A capture window is condensed into a fixed
   feature vector describing volume, flow structure, ARP behaviour and
   scan-like fan-out — the signals that distinguish the red team's
   attacks from baseline SCADA traffic, which is famously regular
   ("short constant system updates"). *)

type flow_key = {
  fk_src : Netbase.Addr.Ip.t;
  fk_dst : Netbase.Addr.Ip.t;
  fk_dst_port : int;
}

let feature_names =
  [|
    "total_packets";
    "total_bytes";
    "mean_packet_size";
    "flow_count";
    "new_flow_count";
    "arp_requests";
    "arp_replies";
    "unsolicited_arp_ratio";
    "max_fanout"; (* distinct (dst, port) touched by one source: scan signal *)
    "max_flow_packets"; (* heaviest single flow: flood signal *)
  |]

let dimensions = Array.length feature_names

(* Minimum standard deviation per feature, matched to its natural scale:
   count-like features get 0.5, the [0,1] ratio feature 0.1. Without this
   a ratio can never reach a high z-score over constant baselines. *)
let std_floors =
  [| 0.5; 0.5; 0.5; 0.5; 0.5; 0.5; 0.5; 0.1; 0.5; 0.5 |]

type t = {
  (* Flows seen during training become the "known" set; traffic to new
     flows afterwards is a strong anomaly signal in operational networks. *)
  known_flows : (flow_key, unit) Hashtbl.t;
  mutable learning : bool;
}

let create () = { known_flows = Hashtbl.create 256; learning = true }

let freeze t = t.learning <- false

let known_flow_count t = Hashtbl.length t.known_flows

let flow_of_record (r : Netbase.Pcap.record) =
  match r.Netbase.Pcap.info with
  | Netbase.Pcap.Udp { src; dst; dst_port; _ } ->
      Some { fk_src = src; fk_dst = dst; fk_dst_port = dst_port }
  | Netbase.Pcap.Arp _ -> None

(* Condense one capture window into a feature vector. *)
let extract t (records : Netbase.Pcap.record list) =
  let v = Array.make dimensions 0.0 in
  let flows : (flow_key, int) Hashtbl.t = Hashtbl.create 64 in
  let fanout : (Netbase.Addr.Ip.t, (Netbase.Addr.Ip.t * int, unit) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 16
  in
  let arp_requests = ref 0 and arp_replies = ref 0 and pending_requests = ref 0 in
  let unsolicited = ref 0 in
  let new_flows = ref 0 in
  List.iter
    (fun r ->
      v.(0) <- v.(0) +. 1.0;
      v.(1) <- v.(1) +. float_of_int r.Netbase.Pcap.size;
      (match flow_of_record r with
      | Some key ->
          let count = 1 + Option.value ~default:0 (Hashtbl.find_opt flows key) in
          Hashtbl.replace flows key count;
          if not (Hashtbl.mem t.known_flows key) then begin
            if t.learning then Hashtbl.replace t.known_flows key ()
            else if count = 1 then incr new_flows
          end;
          let touched =
            match Hashtbl.find_opt fanout key.fk_src with
            | Some tbl -> tbl
            | None ->
                let tbl = Hashtbl.create 16 in
                Hashtbl.replace fanout key.fk_src tbl;
                tbl
          in
          Hashtbl.replace touched (key.fk_dst, key.fk_dst_port) ()
      | None -> ());
      match r.Netbase.Pcap.info with
      | Netbase.Pcap.Arp { is_reply = false; _ } ->
          incr arp_requests;
          incr pending_requests
      | Netbase.Pcap.Arp { is_reply = true; _ } ->
          incr arp_replies;
          if !pending_requests > 0 then decr pending_requests else incr unsolicited
      | Netbase.Pcap.Udp _ -> ())
    records;
  if v.(0) > 0.0 then v.(2) <- v.(1) /. v.(0);
  v.(3) <- float_of_int (Hashtbl.length flows);
  v.(4) <- float_of_int !new_flows;
  v.(5) <- float_of_int !arp_requests;
  v.(6) <- float_of_int !arp_replies;
  v.(7) <-
    (if !arp_replies > 0 then float_of_int !unsolicited /. float_of_int !arp_replies else 0.0);
  v.(8) <-
    float_of_int
      (Hashtbl.fold (fun _ touched acc -> max acc (Hashtbl.length touched)) fanout 0);
  v.(9) <- float_of_int (Hashtbl.fold (fun _ c acc -> max acc c) flows 0);
  v
