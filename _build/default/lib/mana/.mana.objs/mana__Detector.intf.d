lib/mana/detector.mli: Netbase Sim
