lib/mana/features.ml: Array Hashtbl List Netbase Option
