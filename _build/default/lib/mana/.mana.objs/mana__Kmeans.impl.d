lib/mana/kmeans.ml: Array Sim
