lib/mana/detector.ml: Array Features Float Kmeans List Netbase Sim String
