lib/mana/board.mli: Detector Sim
