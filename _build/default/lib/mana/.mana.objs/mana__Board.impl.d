lib/mana/board.ml: Buffer Detector Hashtbl List Option Printf Sim
