lib/mana/features.mli: Netbase
