lib/mana/kmeans.mli: Sim
