(** Situational awareness board (Section II): aggregates the detectors of
    the monitored networks into per-network and overall conditions with a
    text rendering for the engineers' display. *)

type t

type condition = Normal | Elevated | Critical

val create : ?elevated_window:float -> engine:Sim.Engine.t -> unit -> t

val add_network : t -> name:string -> Detector.t -> unit

(** Worst condition across the monitored networks, based on alert
    recency. *)
val overall : t -> condition

val condition_to_string : condition -> string

val render : t -> string
