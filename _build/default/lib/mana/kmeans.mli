(** k-means clustering for the anomaly model: distance to the nearest
    baseline centroid measures how far a traffic window strays from any
    behaviour seen in training. Deterministic given the RNG stream. *)

type t

(** Raises [Invalid_argument] on empty data. [k] is capped at the number
    of points. *)
val train : rng:Sim.Rng.t -> k:int -> iterations:int -> float array list -> t

(** Index and distance of the nearest centroid. *)
val nearest : t -> float array -> int * float

val distance : t -> float array -> float

val centroids : t -> float array array
