(* Situational awareness board.

   "Network activity is monitored from a situational awareness board
   tailored for power plant engineers and can be viewed as part of the
   HMI" (Section II). The board aggregates each monitored network's
   detector into an at-a-glance status: per-category alert counts, the
   most recent alerts, and a green/amber/red condition derived from alert
   recency. *)

type network = { net_name : string; detector : Detector.t }

type condition = Normal | Elevated | Critical

type t = {
  engine : Sim.Engine.t;
  mutable networks : network list;
  elevated_window : float; (* alerts within this window raise the condition *)
}

let create ?(elevated_window = 60.0) ~engine () =
  { engine; networks = []; elevated_window }

let add_network t ~name detector =
  t.networks <- t.networks @ [ { net_name = name; detector } ]

let recent_alerts t detector =
  let now = Sim.Engine.now t.engine in
  List.filter
    (fun a -> now -. a.Detector.alert_time <= t.elevated_window)
    (Detector.alerts detector)

let condition_of t detector =
  match recent_alerts t detector with
  | [] -> Normal
  | recent when List.length recent < 3 -> Elevated
  | _ -> Critical

let condition_to_string = function
  | Normal -> "NORMAL"
  | Elevated -> "ELEVATED"
  | Critical -> "CRITICAL"

(* Overall plant condition: the worst of the networks. *)
let overall t =
  List.fold_left
    (fun acc n ->
      match (acc, condition_of t n.detector) with
      | Critical, _ | _, Critical -> Critical
      | Elevated, _ | _, Elevated -> Elevated
      | Normal, Normal -> Normal)
    Normal t.networks

let category_counts detector =
  let counts = Hashtbl.create 8 in
  List.iter
    (fun a ->
      Hashtbl.replace counts a.Detector.category
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts a.Detector.category)))
    (Detector.alerts detector);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts [] |> List.sort compare

(* Text rendering for the engineers' display. *)
let render t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "==== MANA situational awareness ==== t=%.1f s  condition: %s\n"
       (Sim.Engine.now t.engine)
       (condition_to_string (overall t)));
  List.iter
    (fun n ->
      let det = n.detector in
      Buffer.add_string buf
        (Printf.sprintf "  %-16s %-9s windows=%d alerts=%d\n" n.net_name
           (condition_to_string (condition_of t det))
           (Detector.windows_scored det)
           (List.length (Detector.alerts det)));
      List.iter
        (fun (category, count) ->
          Buffer.add_string buf (Printf.sprintf "      %-28s %d\n" category count))
        (category_counts det);
      match recent_alerts t det with
      | [] -> ()
      | recent ->
          let latest = List.nth recent (List.length recent - 1) in
          Buffer.add_string buf
            (Printf.sprintf "      latest: %s (score %.1f) at t=%.1f s\n"
               latest.Detector.category latest.Detector.score latest.Detector.alert_time))
    t.networks;
  Buffer.contents buf
