(* k-means clustering over feature vectors.

   MANA's anomaly model clusters the baseline traffic's feature vectors;
   at detection time, distance to the nearest centroid measures how far a
   window strays from any behaviour seen in training. Deterministic:
   initial centroids are drawn from the provided RNG stream. *)

type t = { centroids : float array array }

let sq_distance a b =
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := !acc +. ((x -. b.(i)) *. (x -. b.(i)))) a;
  !acc

let nearest t v =
  let best = ref 0 and best_d = ref infinity in
  Array.iteri
    (fun i c ->
      let d = sq_distance v c in
      if d < !best_d then begin
        best_d := d;
        best := i
      end)
    t.centroids;
  (!best, sqrt !best_d)

let distance t v = snd (nearest t v)

let train ~rng ~k ~iterations data =
  match data with
  | [] -> invalid_arg "Kmeans.train: no data"
  | first :: _ ->
      let dim = Array.length first in
      let points = Array.of_list data in
      let k = min k (Array.length points) in
      (* Initialise from distinct random points. *)
      let indices = Array.init (Array.length points) (fun i -> i) in
      Sim.Rng.shuffle rng indices;
      let centroids = Array.init k (fun i -> Array.copy points.(indices.(i))) in
      let model = ref { centroids } in
      for _ = 1 to iterations do
        let sums = Array.init k (fun _ -> Array.make dim 0.0) in
        let counts = Array.make k 0 in
        Array.iter
          (fun p ->
            let c, _ = nearest !model p in
            counts.(c) <- counts.(c) + 1;
            Array.iteri (fun i x -> sums.(c).(i) <- sums.(c).(i) +. x) p)
          points;
        let centroids =
          Array.init k (fun c ->
              if counts.(c) = 0 then !model.centroids.(c)
              else Array.map (fun s -> s /. float_of_int counts.(c)) sums.(c))
        in
        model := { centroids }
      done;
      !model

let centroids t = t.centroids
