(* The Section IV red-team experiment, end to end: the full Fig. 3
   testbed with both the commercial SCADA system and Spire, attacked by
   the scripted nation-state-level campaign.

     dune exec examples/red_team.exe *)

let hr () = print_endline (String.make 100 '-')

let print_steps title steps =
  hr ();
  Printf.printf "%s\n" title;
  hr ();
  List.iter (fun s -> Format.printf "%a@." Attack.Campaign.pp_step s) steps;
  let breaches = List.length (List.filter (fun s -> s.Attack.Campaign.succeeded) steps) in
  Printf.printf "  => %d/%d attack steps succeeded\n\n" breaches (List.length steps)

let () =
  print_endline "=== Red-team experiment (PNNL, April 2017) ===";
  print_endline "Testbed: enterprise network + corporate firewall + two parallel";
  print_endline "operations networks (commercial SCADA and Spire), per Fig. 3.\n";
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create () in
  let tb = Attack.Testbed.create ~engine ~trace () in

  (* MANA instances: train on the baseline capture of each network before
     the attacks begin (the setup-week packet capture). *)
  let commercial_det = Mana.Detector.create ~engine ~trace () in
  let spire_det = Mana.Detector.create ~engine ~trace () in
  Sim.Engine.run ~until:30.0 engine;
  let rng = Sim.Engine.split_rng engine in
  Mana.Detector.train commercial_det ~rng (Spire.Commercial.pcap (Attack.Testbed.commercial tb))
    ~t0:5.0 ~t1:30.0;
  Mana.Detector.train spire_det ~rng
    (Spire.Deployment.external_pcap (Attack.Testbed.spire tb))
    ~t0:5.0 ~t1:30.0;
  let (_ : Sim.Engine.timer) =
    Mana.Detector.start commercial_det (Spire.Commercial.pcap (Attack.Testbed.commercial tb))
  in
  let (_ : Sim.Engine.timer) =
    Mana.Detector.start spire_det (Spire.Deployment.external_pcap (Attack.Testbed.spire tb))
  in

  (* Phase 1: the commercial system. *)
  let commercial_steps = Attack.Campaign.run_commercial tb in
  print_steps "PHASE 1 — commercial SCADA system (NIST best practices)" commercial_steps;

  (* Phase 2: Spire, network attacks. *)
  let spire_steps = Attack.Campaign.run_spire_network tb in
  print_steps "PHASE 2 — Spire, network attacks" spire_steps;

  (* Phase 3: the replica excursion. *)
  let excursion_steps = Attack.Campaign.run_excursion tb in
  print_steps "PHASE 3 — Spire, compromised-replica excursion" excursion_steps;

  (* What the defenders saw: MANA's situational awareness board (the
     display "tailored for power plant engineers"). *)
  hr ();
  let board = Mana.Board.create ~elevated_window:120.0 ~engine () in
  Mana.Board.add_network board ~name:"commercial-ops" commercial_det;
  Mana.Board.add_network board ~name:"spire-ops" spire_det;
  print_string (Mana.Board.render board);
  print_newline ();
  print_endline "Conclusion: the commercial system fell within hours from the enterprise";
  print_endline "network; Spire withstood every attack at every level of access."
