examples/red_team.mli:
