examples/power_plant.mli:
