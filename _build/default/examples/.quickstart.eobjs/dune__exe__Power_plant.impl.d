examples/power_plant.ml: Array Diversity Format List Plc Prime Printf Scada Sim Spire String
