examples/red_team.ml: Attack Format List Mana Printf Sim Spire String
