examples/mana_ids.mli:
