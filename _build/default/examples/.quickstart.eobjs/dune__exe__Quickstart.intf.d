examples/quickstart.mli:
