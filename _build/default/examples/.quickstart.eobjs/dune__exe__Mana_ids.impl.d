examples/mana_ids.ml: Array Attack List Mana Netbase Plc Prime Printf Sim Spire String
