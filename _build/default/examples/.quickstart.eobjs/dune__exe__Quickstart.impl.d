examples/quickstart.ml: Array Plc Prime Printf Scada Sim Spire String
