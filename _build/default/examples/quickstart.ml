(* Quickstart: bring up a minimal Spire deployment, watch a field event
   reach the HMI, and issue a supervisory command back to the breaker.

     dune exec examples/quickstart.exe *)

let () =
  print_endline "=== Spire quickstart ===";
  print_endline "Building a 4-replica deployment (f = 1) with one PLC...";
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create () in
  let scenario =
    {
      Plc.Power.scenario_name = "quickstart";
      plcs =
        [ { Plc.Power.plc_name = "MAIN"; breaker_names = [ "B10-1"; "B57"; "B56" ]; physical = true } ];
      feeds =
        [
          { Plc.Power.load_name = "Building-A"; path = [ "B10-1"; "B57" ] };
          { Plc.Power.load_name = "Building-B"; path = [ "B10-1"; "B56" ] };
        ];
    }
  in
  let config = Prime.Config.red_team () in
  let deployment = Spire.Deployment.create ~engine ~trace ~config scenario in
  let hmi = (Spire.Deployment.hmis deployment).(0).Spire.Deployment.h_hmi in
  Scada.Hmi.on_display_change hmi (fun ~breaker ~closed ->
      Printf.printf "[%8.3f s] HMI repainted: %s is now %s\n" (Sim.Engine.now engine) breaker
        (if closed then "CLOSED" else "OPEN"));

  (* Let the system settle: proxies poll their PLCs, the replicas agree on
     the initial field state, the HMI populates. *)
  Sim.Engine.run ~until:3.0 engine;
  print_newline ();
  print_string (Scada.Hmi.render hmi);

  (* A field event: breaker B57 trips physically. *)
  print_endline "\n--- Field event: B57 trips open ---";
  (match Spire.Deployment.find_breaker deployment "B57" with
  | Some (_, b) -> Plc.Breaker.force b Plc.Breaker.Open
  | None -> assert false);
  Sim.Engine.run ~until:6.0 engine;
  print_newline ();
  print_string (Scada.Hmi.render hmi);

  (* The operator closes it again from the HMI. The command is ordered by
     Prime across the replicas, and the proxy only actuates once f + 1
     replicas agree. *)
  print_endline "\n--- Operator command: close B57 ---";
  ignore (Scada.Hmi.command hmi ~breaker:"B57" ~close:true);
  Sim.Engine.run ~until:10.0 engine;
  print_newline ();
  print_string (Scada.Hmi.render hmi);

  (* Show that the replicated masters agree exactly. *)
  print_endline "\n--- Replica agreement ---";
  Array.iter
    (fun r ->
      Printf.printf "  replica %d: state digest %s (exec seq %d)\n"
        (Prime.Replica.id r.Spire.Deployment.r_replica)
        (String.sub (Scada.State.digest (Scada.Master.state r.Spire.Deployment.r_master)) 0 16)
        (Prime.Replica.exec_seq r.Spire.Deployment.r_replica))
    (Spire.Deployment.replicas deployment);
  print_endline "\nDone."
