(* MANA in isolation: train on a baseline capture of Spire's operations
   network, then replay the red team's network attacks and show the alert
   stream the plant engineers would see.

     dune exec examples/mana_ids.exe *)

let () =
  print_endline "=== MANA: Machine-learning Assisted Network Analyzer ===\n";
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create () in
  let scenario =
    {
      Plc.Power.scenario_name = "mana-demo";
      plcs =
        [ { Plc.Power.plc_name = "MAIN"; breaker_names = [ "B10-1"; "B57"; "B56" ]; physical = true } ];
      feeds = [];
    }
  in
  let config = Prime.Config.red_team () in
  let deployment = Spire.Deployment.create ~engine ~trace ~config scenario in
  let pcap = Spire.Deployment.external_pcap deployment in
  let detector = Mana.Detector.create ~window:1.0 ~engine ~trace () in
  Mana.Detector.alerts detector |> ignore;

  (* Phase 1: baseline traffic collection (the deployment's 12-hour
     capture, compressed to 60 s of the same regular SCADA chatter). *)
  print_endline "Phase 1: collecting baseline traffic (60 s of normal operation)...";
  let driver = Spire.Scenario_driver.create deployment in
  Spire.Scenario_driver.start driver ~period:2.0;
  Sim.Engine.run ~until:60.0 engine;
  let rng = Sim.Engine.split_rng engine in
  Mana.Detector.train detector ~rng pcap ~t0:5.0 ~t1:60.0;
  Printf.printf "  trained. (windows of 1 s; %d-dimensional feature vectors)\n\n"
    Mana.Features.dimensions;

  (* Phase 2: live detection while the red team works. *)
  print_endline "Phase 2: live detection during the red-team attacks...";
  let (_ : Sim.Engine.timer) = Mana.Detector.start detector pcap in
  let attacker = Attack.Attacker.create ~engine ~trace in
  let pos =
    Attack.Attacker.attach attacker ~name:"redteam" ~ip:(Netbase.Addr.Ip.v 10 0 2 66)
      (Spire.Deployment.external_switch deployment)
  in
  (* quiet period *)
  Sim.Engine.run ~until:75.0 engine;
  (* port scan *)
  let targets = List.init 4 (fun i -> Spire.Addressing.replica_external i) in
  let (_ : Netbase.Addr.Ip.t -> int -> string) =
    Attack.Actions.port_scan attacker pos ~targets
      ~ports:(List.init 30 (fun i -> 8100 + i))
  in
  Sim.Engine.run ~until:85.0 engine;
  (* ARP poisoning *)
  let r0 = (Spire.Deployment.replicas deployment).(0) in
  let (_ : Sim.Engine.timer) =
    Attack.Actions.arp_poison attacker pos
      ~victim_ip:(Spire.Addressing.replica_external 0)
      ~victim_mac:(Netbase.Host.nic_mac r0.Spire.Deployment.r_external_nic)
      ~impersonate:(Spire.Addressing.proxy_external 0)
  in
  Sim.Engine.run ~until:95.0 engine;
  (* DoS burst *)
  let (_ : int ref) =
    Attack.Actions.dos_flood attacker pos
      ~target_ip:(Spire.Addressing.replica_external 0)
      ~target_port:Spire.Addressing.spines_external_port ~rate:10_000.0 ~duration:5.0
  in
  Sim.Engine.run ~until:110.0 engine;
  Spire.Scenario_driver.stop driver;

  print_newline ();
  print_endline "Alert stream (the situational awareness board):";
  List.iter
    (fun a ->
      Printf.printf "  [%8.1f s] %-28s score %7.1f  (dominant feature: %s)\n"
        a.Mana.Detector.alert_time a.Mana.Detector.category a.Mana.Detector.score
        a.Mana.Detector.dominant_feature)
    (Mana.Detector.alerts detector);
  Printf.printf "\n%d windows scored, %d alerts, categories: %s\n"
    (Mana.Detector.windows_scored detector)
    (List.length (Mana.Detector.alerts detector))
    (String.concat ", " (Mana.Detector.alert_categories detector));
  print_newline ();
  let board = Mana.Board.create ~engine () in
  Mana.Board.add_network board ~name:"operations" detector;
  print_string (Mana.Board.render board);
  print_endline "\nNote: detection is fully passive (metadata only) — the paper's";
  print_endline "requirement for IDS in operational SCADA networks."
