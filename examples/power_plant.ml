(* The Section V power-plant test deployment: six diverse replicas
   (f = 1 intrusion + k = 1 proactive recovery), the real three-breaker
   topology plus the emulated distribution and generation scenarios,
   continuous operation with proactive recovery, and the final
   reaction-time measurement against the commercial system.

   The real deployment ran six days; we simulate a compressed window
   (one hour of virtual time with a 10-minute recovery rotation) and
   scale the recovery cadence accordingly — the paper's rotation is the
   same mechanism at a longer period.

     dune exec examples/power_plant.exe *)

let () =
  print_endline "=== Power plant test deployment (January 2018) ===\n";
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create () in
  let config = Prime.Config.power_plant () in
  let scenario = Plc.Power.power_plant in
  Printf.printf "Configuration: %s — %d PLCs, %d breakers, 3 HMIs\n"
    (Format.asprintf "%a" Prime.Config.pp config)
    (List.length scenario.Plc.Power.plcs)
    (Plc.Power.total_breakers scenario);
  let deployment =
    Spire.Deployment.create ~n_hmis:3 ~proxy_poll_period:0.25 ~engine ~trace ~config scenario
  in
  Sim.Engine.run ~until:5.0 engine;

  (* Proactive recovery: each replica periodically restarts from a clean
     image with a fresh MultiCompiler variant. *)
  let rng = Sim.Engine.split_rng engine in
  let recovery =
    Diversity.Recovery.create ~engine ~trace ~rng ~n:config.Prime.Config.n
      ~rotation_period:600.0 ~downtime:30.0
      ~take_down:(fun i -> Spire.Deployment.take_down_replica deployment i)
      ~bring_up:(fun i _ ~disk ->
        match disk with
        | Diversity.Recovery.Disk_wiped -> Spire.Deployment.bring_up_replica_clean deployment i
        | Diversity.Recovery.Disk_intact -> Spire.Deployment.bring_up_replica_intact deployment i)
      ()
  in
  Diversity.Recovery.start recovery;

  (* Plant operations: a slow breaker cycle through the emulated
     scenarios, as the deployment's workload generator did. *)
  let driver = Spire.Scenario_driver.create deployment in
  Spire.Scenario_driver.start driver ~period:5.0;

  print_endline "Running 1 hour of continuous operation with proactive recovery...";
  let hour = 3600.0 in
  Sim.Engine.run ~until:hour engine;
  Spire.Scenario_driver.stop driver;
  Printf.printf "  proactive recoveries completed: %d\n"
    (Diversity.Recovery.recoveries recovery);
  Printf.printf "  supervisory commands issued:    %d\n"
    (Spire.Scenario_driver.commands_issued driver);
  let r0 = (Spire.Deployment.replicas deployment).(0) in
  Printf.printf "  updates executed (replica 0):   %d\n"
    (Prime.Replica.exec_seq r0.Spire.Deployment.r_replica);
  let digests =
    Array.map
      (fun r -> Scada.State.digest (Scada.Master.state r.Spire.Deployment.r_master))
      (Spire.Deployment.replicas deployment)
  in
  Sim.Engine.run ~until:(hour +. 30.0) engine;
  let agree = Array.for_all (fun d -> String.equal d digests.(0)) digests in
  Printf.printf "  all six masters agree on state: %b\n\n" agree;
  Diversity.Recovery.stop recovery;

  (* The plant engineers' measurement device: flip a real breaker, time
     the HMI update, on both systems. *)
  print_endline "--- Final-day measurement: end-to-end reaction time ---";
  let samples = 40 in
  let spire_stats, spire_done =
    Spire.Measure.spire_reaction_time ~deployment ~breaker:"B57" ~samples ~gap:3.0 ()
  in
  Sim.Engine.run ~until:(hour +. 200.0) engine;
  let engine2 = Sim.Engine.create () in
  let trace2 = Sim.Trace.create () in
  let commercial = Spire.Commercial.create ~engine:engine2 ~trace:trace2 scenario in
  Sim.Engine.run ~until:5.0 engine2;
  let comm_stats, comm_done =
    Spire.Measure.commercial_reaction_time ~engine:engine2 ~commercial ~breaker:"B57" ~samples
      ~gap:3.0 ()
  in
  Sim.Engine.run ~until:200.0 engine2;
  let show name stats completed =
    Printf.printf "  %-22s %2d/%d samples  mean %6.1f ms   p50 %6.1f ms   max %6.1f ms\n" name
      completed samples
      (1000.0 *. Sim.Stats.Summary.mean stats)
      (1000.0 *. Sim.Stats.Summary.median stats)
      (1000.0 *. Sim.Stats.Summary.max stats)
  in
  show "Spire (6 replicas):" spire_stats !spire_done;
  show "Commercial SCADA:" comm_stats !comm_done;
  Printf.printf "\n  Spire reflected changes %.1fx faster than the commercial system.\n"
    (Sim.Stats.Summary.mean comm_stats /. Sim.Stats.Summary.mean spire_stats);
  print_endline "  (Paper: \"Spire ... was even able to reflect changes more quickly than";
  print_endline "   the commercial system.\")"
