(* Tests for the Spines overlay: routing, flooding, authentication,
   replay rejection, failure detection/rerouting, source fairness, and
   the patched-binary exploit model. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ip = Netbase.Addr.Ip.v

(* Build an overlay of n daemons, one per host, all on one switch.
   [keyed i] gives daemon i's group key (None = unkeyed build). *)
type overlay = {
  engine : Sim.Engine.t;
  trace : Sim.Trace.t;
  switch : Netbase.Switch.t;
  hosts : Netbase.Host.t array;
  nodes : Spines.Node.t array;
}

let make_overlay ?(it_mode = true) ?(keyed = fun _ -> Some "group-key") ?(rate = 2000.0)
    ?(dedup_window = 4096) ?(egress_capacity = 256) topology =
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create () in
  let switch = Netbase.Switch.create ~engine ~trace "overlay-lan" in
  let ids = Array.of_list (Spines.Topology.nodes topology) in
  let n = Array.length ids in
  let hosts =
    Array.init n (fun i ->
        let h = Netbase.Host.create ~engine ~trace (Printf.sprintf "node%d" ids.(i)) in
        let nic = Netbase.Host.add_nic h ~ip:(ip 10 0 0 (ids.(i) + 1)) in
        let (_ : int) = Netbase.Host.plug_into_switch h nic switch in
        h)
  in
  let nodes =
    Array.init n (fun i ->
        let config =
          {
            (Spines.Node.default_config ~it_mode ~dedup_window ~egress_capacity topology) with
            Spines.Node.group_key = keyed ids.(i);
            source_rate_limit = rate;
          }
        in
        Spines.Node.create ~engine ~trace ~host:hosts.(i) ~id:ids.(i) config)
  in
  Array.iteri
    (fun i node ->
      Array.iteri
        (fun j _ -> if i <> j then Spines.Node.set_peer_address node ids.(j) (ip 10 0 0 (ids.(j) + 1)))
        nodes;
      Spines.Node.start node)
    nodes;
  { engine; trace; switch; hosts; nodes }

(* --- Topology / routing -------------------------------------------------- *)

let test_full_mesh () =
  let t = Spines.Topology.full_mesh [ 0; 1; 2; 3 ] in
  check_int "links" 6 (List.length (Spines.Topology.links t));
  check_int "neighbors" 3 (List.length (Spines.Topology.neighbors t 0))

let test_topology_validation () =
  Alcotest.check_raises "self link" (Invalid_argument "Topology.create: self-link") (fun () ->
      ignore (Spines.Topology.create ~nodes:[ 0; 1 ] ~links:[ Spines.Topology.link 0 0 ]));
  Alcotest.check_raises "unknown node"
    (Invalid_argument "Topology.create: link 0-7 references unknown node") (fun () ->
      ignore (Spines.Topology.create ~nodes:[ 0; 1 ] ~links:[ Spines.Topology.link 0 7 ]))

let line n =
  Spines.Topology.create
    ~nodes:(List.init n (fun i -> i))
    ~links:(List.init (n - 1) (fun i -> Spines.Topology.link i (i + 1)))

let ring n =
  Spines.Topology.create
    ~nodes:(List.init n (fun i -> i))
    ~links:(List.init n (fun i -> Spines.Topology.link i ((i + 1) mod n)))

let test_route_line () =
  let t = line 4 in
  let view = Spines.Topology.View.all_up t in
  Alcotest.(check (option int)) "0->3 via 1" (Some 1) (Spines.Topology.route t view ~src:0 ~dst:3);
  Alcotest.(check (option int)) "3->0 via 2" (Some 2) (Spines.Topology.route t view ~src:3 ~dst:0);
  Alcotest.(check (option int)) "self" None (Spines.Topology.route t view ~src:2 ~dst:2)

let test_route_avoids_down_link () =
  let t = ring 4 in
  let view = Spines.Topology.View.all_up t in
  (* 0->2 has two equal 2-hop paths; kill one side and the other is used. *)
  Spines.Topology.View.set_link view 0 1 ~up:false;
  Alcotest.(check (option int)) "0->2 via 3" (Some 3) (Spines.Topology.route t view ~src:0 ~dst:2);
  Spines.Topology.View.set_link view 3 0 ~up:false;
  Alcotest.(check (option int)) "0 isolated" None (Spines.Topology.route t view ~src:0 ~dst:2)

let test_route_prefers_weight () =
  let t =
    Spines.Topology.create ~nodes:[ 0; 1; 2 ]
      ~links:
        [
          Spines.Topology.link ~weight:10.0 0 2;
          Spines.Topology.link 0 1;
          Spines.Topology.link 1 2;
        ]
  in
  let view = Spines.Topology.View.all_up t in
  Alcotest.(check (option int)) "0->2 via cheap path" (Some 1)
    (Spines.Topology.route t view ~src:0 ~dst:2)

let prop_route_reaches_destination =
  QCheck.Test.make ~count:100 ~name:"hop-by-hop forwarding reaches destination on a ring"
    QCheck.(pair (int_range 3 12) (pair (int_range 0 11) (int_range 0 11)))
    (fun (n, (a, b)) ->
      let a = a mod n and b = b mod n in
      let t = ring n in
      let view = Spines.Topology.View.all_up t in
      if a = b then true
      else
        (* Walk next hops; must reach b within n hops. *)
        let rec walk cur hops =
          if cur = b then true
          else if hops > n then false
          else
            match Spines.Topology.route t view ~src:cur ~dst:b with
            | Some next -> walk next (hops + 1)
            | None -> false
        in
        walk a 0)

(* --- Overlay data delivery ------------------------------------------------ *)

let collect_client node ~client ?groups () =
  let received = ref [] in
  Spines.Node.register_client node ~client ?groups (fun ~src ~size:_ payload ->
      received := (src, payload) :: !received);
  received

let test_unicast_multi_hop_routed () =
  let o = make_overlay ~it_mode:false (line 3) in
  let received = collect_client o.nodes.(2) ~client:7 () in
  Spines.Node.send o.nodes.(0) ~client:1 ~size:100
    (Spines.Node.To_client { node = 2; client = 7 })
    (Netbase.Packet.Raw "across");
  Sim.Engine.run ~until:1.0 o.engine;
  (match !received with
  | [ ((0, 1), Netbase.Packet.Raw "across") ] -> ()
  | _ -> Alcotest.fail "expected exactly one delivery from (0,1)");
  (* The middle daemon relayed it. *)
  check "middle forwarded" true
    (Sim.Stats.Counter.get (Spines.Node.counters o.nodes.(1)) "link.tx" > 0)

let test_unicast_it_mode_flooding () =
  let o = make_overlay ~it_mode:true (line 3) in
  let received = collect_client o.nodes.(2) ~client:7 () in
  let other = collect_client o.nodes.(1) ~client:7 () in
  Spines.Node.send o.nodes.(0) ~client:1 ~size:100
    (Spines.Node.To_client { node = 2; client = 7 })
    (Netbase.Packet.Raw "flooded");
  Sim.Engine.run ~until:1.0 o.engine;
  check_int "delivered once at destination" 1 (List.length !received);
  check_int "not delivered to other node's client" 0 (List.length !other)

let test_group_delivery_exactly_once () =
  let o = make_overlay (Spines.Topology.full_mesh [ 0; 1; 2; 3 ]) in
  let sinks =
    Array.mapi
      (fun i node -> if i = 0 then ref [] else collect_client node ~client:9 ~groups:[ "replicas" ] ())
      o.nodes
  in
  Spines.Node.send o.nodes.(0) ~client:1 ~size:50 (Spines.Node.To_group "replicas")
    (Netbase.Packet.Raw "to-all");
  Sim.Engine.run ~until:1.0 o.engine;
  (* Full mesh + flooding would duplicate without dedup. *)
  Array.iteri
    (fun i sink -> if i > 0 then check_int (Printf.sprintf "node %d exactly once" i) 1 (List.length !sink))
    sinks

let test_sender_in_group_gets_local_copy () =
  let o = make_overlay (Spines.Topology.full_mesh [ 0; 1 ]) in
  let self_sink = collect_client o.nodes.(0) ~client:9 ~groups:[ "g" ] () in
  Spines.Node.send o.nodes.(0) ~client:1 ~size:10 (Spines.Node.To_group "g")
    (Netbase.Packet.Raw "loop");
  Sim.Engine.run ~until:0.5 o.engine;
  check_int "local subscriber got it" 1 (List.length !self_sink)

(* --- Authentication -------------------------------------------------------- *)

let test_unkeyed_daemon_rejected () =
  (* Node 1 models the red team's daemon rebuilt from the open-source tree
     without the deployment's new encryption keys. *)
  let keyed i = if i = 1 then None else Some "group-key" in
  let o = make_overlay ~keyed (Spines.Topology.full_mesh [ 0; 1; 2 ]) in
  let sink = collect_client o.nodes.(2) ~client:9 ~groups:[ "g" ] () in
  Spines.Node.send o.nodes.(1) ~client:1 ~size:50 (Spines.Node.To_group "g")
    (Netbase.Packet.Raw "from-unkeyed");
  Sim.Engine.run ~until:1.0 o.engine;
  check_int "nothing delivered" 0 (List.length !sink);
  check "peers rejected traffic" true
    (Sim.Stats.Counter.get (Spines.Node.counters o.nodes.(0)) "auth.reject" > 0
     || Sim.Stats.Counter.get (Spines.Node.counters o.nodes.(2)) "auth.reject" > 0)

let test_wrong_key_daemon_rejected () =
  let keyed i = if i = 1 then Some "stale-key" else Some "group-key" in
  let o = make_overlay ~keyed (Spines.Topology.full_mesh [ 0; 1; 2 ]) in
  let sink = collect_client o.nodes.(2) ~client:9 ~groups:[ "g" ] () in
  Spines.Node.send o.nodes.(1) ~client:1 ~size:50 (Spines.Node.To_group "g")
    (Netbase.Packet.Raw "stale");
  Sim.Engine.run ~until:1.0 o.engine;
  check_int "nothing delivered" 0 (List.length !sink)

let test_keyed_member_accepted () =
  (* Control for the two tests above: with the right key, traffic flows.
     This is also the red team's patched-but-keyed binary being accepted
     as a valid member of the network. *)
  let o = make_overlay (Spines.Topology.full_mesh [ 0; 1; 2 ]) in
  let sink = collect_client o.nodes.(2) ~client:9 ~groups:[ "g" ] () in
  Spines.Node.send o.nodes.(1) ~client:1 ~size:50 (Spines.Node.To_group "g")
    (Netbase.Packet.Raw "member");
  Sim.Engine.run ~until:1.0 o.engine;
  check_int "delivered" 1 (List.length !sink)

let test_replayed_frame_deduplicated () =
  let o = make_overlay (Spines.Topology.full_mesh [ 0; 1 ]) in
  (* Attacker on the same switch records everything. *)
  let attacker = Netbase.Host.create ~engine:o.engine ~trace:o.trace "mallory" in
  let a_nic = Netbase.Host.add_nic attacker ~ip:(ip 10 0 0 99) in
  let (_ : int) = Netbase.Host.plug_into_switch attacker a_nic o.switch in
  let captured = ref [] in
  Netbase.Switch.add_tap o.switch (fun frame -> captured := frame :: !captured);
  let sink = collect_client o.nodes.(1) ~client:9 ~groups:[ "g" ] () in
  Spines.Node.send o.nodes.(0) ~client:1 ~size:50 (Spines.Node.To_group "g")
    (Netbase.Packet.Raw "once");
  Sim.Engine.run ~until:0.5 o.engine;
  check_int "delivered once" 1 (List.length !sink);
  (* Replay every captured frame verbatim. *)
  let frames = !captured in
  List.iter (fun f -> Netbase.Host.inject_frame attacker a_nic f) frames;
  Sim.Engine.run ~until:1.0 o.engine;
  check_int "replay did not duplicate delivery" 1 (List.length !sink)

(* --- Failure detection and rerouting ----------------------------------------- *)

let test_stopped_daemon_detected_and_rerouted () =
  let o = make_overlay ~it_mode:false (ring 4) in
  let sink = collect_client o.nodes.(2) ~client:9 () in
  (* Warm path 0->2 (goes via 1 or 3). *)
  Spines.Node.send o.nodes.(0) ~client:1 ~size:10
    (Spines.Node.To_client { node = 2; client = 9 })
    (Netbase.Packet.Raw "warm");
  Sim.Engine.run ~until:1.0 o.engine;
  check_int "warm delivered" 1 (List.length !sink);
  (* Stop node 1 (the red team's first move in the excursion). *)
  Spines.Node.stop o.nodes.(1);
  Sim.Engine.run ~until:4.0 o.engine;
  Spines.Node.send o.nodes.(0) ~client:1 ~size:10
    (Spines.Node.To_client { node = 2; client = 9 })
    (Netbase.Packet.Raw "after-failure");
  Sim.Engine.run ~until:6.0 o.engine;
  check_int "delivered around the failure" 2 (List.length !sink)

let test_flooding_tolerates_daemon_stop () =
  let o = make_overlay ~it_mode:true (Spines.Topology.full_mesh [ 0; 1; 2; 3 ]) in
  let sink = collect_client o.nodes.(3) ~client:9 ~groups:[ "g" ] () in
  Spines.Node.stop o.nodes.(1);
  Spines.Node.send o.nodes.(0) ~client:1 ~size:10 (Spines.Node.To_group "g")
    (Netbase.Packet.Raw "x");
  Sim.Engine.run ~until:1.0 o.engine;
  check_int "delivered despite stopped daemon" 1 (List.length !sink)

let test_recovered_daemon_rejoins () =
  let o = make_overlay ~it_mode:false (line 3) in
  let sink = collect_client o.nodes.(2) ~client:9 () in
  Spines.Node.stop o.nodes.(1);
  Sim.Engine.run ~until:3.0 o.engine;
  (* 0 and 2 are partitioned in a line without the middle daemon. *)
  Spines.Node.send o.nodes.(0) ~client:1 ~size:10
    (Spines.Node.To_client { node = 2; client = 9 })
    (Netbase.Packet.Raw "lost");
  Sim.Engine.run ~until:5.0 o.engine;
  check_int "partitioned" 0 (List.length !sink);
  Spines.Node.start o.nodes.(1);
  Sim.Engine.run ~until:8.0 o.engine;
  Spines.Node.send o.nodes.(0) ~client:1 ~size:10
    (Spines.Node.To_client { node = 2; client = 9 })
    (Netbase.Packet.Raw "healed");
  Sim.Engine.run ~until:10.0 o.engine;
  check_int "healed" 1 (List.length !sink)

(* --- Source fairness ----------------------------------------------------------- *)

let test_insider_flood_is_clipped () =
  (* A compromised daemon floods the overlay; honest hops clip its rate,
     and the honest source's traffic still arrives. *)
  let o = make_overlay ~it_mode:true ~rate:100.0 (Spines.Topology.full_mesh [ 0; 1; 2 ]) in
  let sink = collect_client o.nodes.(2) ~client:9 ~groups:[ "g" ] () in
  (* Insider on node 1 bursts 2000 messages. *)
  for _ = 1 to 2000 do
    Spines.Node.send o.nodes.(1) ~client:1 ~size:100 (Spines.Node.To_group "g")
      (Netbase.Packet.Raw "flood")
  done;
  (* Honest traffic from node 0 interleaves. *)
  for i = 1 to 10 do
    ignore
      (Sim.Engine.schedule o.engine ~delay:(0.01 *. float_of_int i) (fun () ->
           Spines.Node.send o.nodes.(0) ~client:1 ~size:100 (Spines.Node.To_group "g")
             (Netbase.Packet.Raw "honest")))
  done;
  Sim.Engine.run ~until:2.0 o.engine;
  let honest, flood =
    List.partition (fun (_, p) -> p = Netbase.Packet.Raw "honest") !sink
  in
  check_int "all honest messages delivered" 10 (List.length honest);
  check "flood clipped well below burst" true (List.length flood < 400);
  check "clipping recorded" true
    (Sim.Stats.Counter.get (Spines.Node.counters o.nodes.(2)) "fairness.clipped" > 0)

(* --- Patched-binary exploit ------------------------------------------------------ *)

let test_exploit_disabled_in_it_mode () =
  let o = make_overlay ~it_mode:true (Spines.Topology.full_mesh [ 0; 1; 2 ]) in
  Spines.Node.inject_exploit o.nodes.(1) "drop-foreign-traffic";
  let sink = collect_client o.nodes.(2) ~client:9 ~groups:[ "g" ] () in
  Spines.Node.send o.nodes.(0) ~client:1 ~size:50 (Spines.Node.To_group "g")
    (Netbase.Packet.Raw "x");
  Sim.Engine.run ~until:1.0 o.engine;
  check_int "delivery unaffected" 1 (List.length !sink);
  check_int "exploit had no effect" 0
    (Sim.Stats.Counter.get (Spines.Node.counters o.nodes.(1)) "exploit.dropped")

let test_exploit_bites_outside_it_mode () =
  (* Same exploit in a plain-routed deployment on a line, where the
     malicious daemon sits on the only path: traffic is silently dropped. *)
  let o = make_overlay ~it_mode:false (line 3) in
  Spines.Node.inject_exploit o.nodes.(1) "drop-foreign-traffic";
  let sink = collect_client o.nodes.(2) ~client:9 () in
  Spines.Node.send o.nodes.(0) ~client:1 ~size:50
    (Spines.Node.To_client { node = 2; client = 9 })
    (Netbase.Packet.Raw "x");
  Sim.Engine.run ~until:1.0 o.engine;
  check_int "dropped by exploited relay" 0 (List.length !sink);
  check "exploit recorded" true
    (Sim.Stats.Counter.get (Spines.Node.counters o.nodes.(1)) "exploit.dropped" > 0)

let prop_routing_survives_random_link_failures =
  QCheck.Test.make ~count:100
    ~name:"routing finds a next hop iff the live graph still connects src and dst"
    QCheck.(triple (int_range 4 10) (int_bound 1000) (int_range 0 3))
    (fun (n, seed, kills) ->
      (* Ring plus a chord: redundant enough that some link failures are
         survivable and some partition the graph. *)
      let chord = Spines.Topology.link 0 (n / 2) in
      let t =
        Spines.Topology.create
          ~nodes:(List.init n (fun i -> i))
          ~links:(chord :: List.init n (fun i -> Spines.Topology.link i ((i + 1) mod n)))
      in
      let view = Spines.Topology.View.all_up t in
      let rng = Sim.Rng.create (Int64.of_int (seed + 7)) in
      let links = Array.of_list (Spines.Topology.links t) in
      for _ = 1 to kills do
        let l = links.(Sim.Rng.int rng (Array.length links)) in
        Spines.Topology.View.set_link view l.Spines.Topology.a l.Spines.Topology.b ~up:false
      done;
      (* Reachability over the live graph by BFS. *)
      let reachable src =
        let seen = Array.make n false in
        seen.(src) <- true;
        let queue = Queue.create () in
        Queue.push src queue;
        while not (Queue.is_empty queue) do
          let cur = Queue.pop queue in
          List.iter
            (fun nb ->
              if Spines.Topology.View.is_up view cur nb && not seen.(nb) then begin
                seen.(nb) <- true;
                Queue.push nb queue
              end)
            (Spines.Topology.neighbors t cur)
        done;
        seen
      in
      let seen = reachable 0 in
      List.for_all
        (fun dst ->
          if dst = 0 then true
          else
            let route = Spines.Topology.route t view ~src:0 ~dst in
            if seen.(dst) then
              (* Next hops must walk all the way there. *)
              let rec walk cur hops =
                cur = dst
                || hops <= 2 * n
                   &&
                   match Spines.Topology.route t view ~src:cur ~dst with
                   | Some next -> walk next (hops + 1)
                   | None -> false
              in
              route <> None && walk 0 0
            else route = None)
        (List.init n (fun i -> i)))

(* --- dedup sliding window --------------------------------------------------- *)

let test_window_dedup_and_eviction () =
  let w = Spines.Window.create ~span:4 () in
  check "fresh seq accepted" true (Spines.Window.mark w ~origin:1 ~seq:1);
  check "duplicate rejected" false (Spines.Window.mark w ~origin:1 ~seq:1);
  check "other origin independent" true (Spines.Window.mark w ~origin:2 ~seq:1);
  for seq = 2 to 20 do
    check "advancing seqs accepted" true (Spines.Window.mark w ~origin:1 ~seq)
  done;
  (* seq 20 with span 4 puts the floor at 16: old seqs are gone... *)
  check_int "evicted below horizon" 16 (Spines.Window.evictions w);
  check "stale seq treated as duplicate" false (Spines.Window.mark w ~origin:1 ~seq:3);
  (* ...and memory stays bounded by span per origin. *)
  check "retained bounded" true (Spines.Window.retained w <= 5);
  check "seen in-window seq rejected" false (Spines.Window.mark w ~origin:1 ~seq:18)

let test_window_bounds_node_dedup () =
  (* Regression: the node's dedup table grew without bound. With a small
     configured window, sustained traffic must keep it clipped. *)
  let o = make_overlay ~it_mode:true ~dedup_window:8 (Spines.Topology.full_mesh [ 0; 1; 2 ]) in
  let received = ref 0 in
  Spines.Node.register_client o.nodes.(1) ~client:7 (fun ~src:_ ~size:_ _ -> incr received);
  Sim.Engine.run ~until:1.0 o.engine;
  for _ = 1 to 50 do
    Spines.Node.send o.nodes.(0) ~client:7 ~size:64
      (Spines.Node.To_client { node = 1; client = 7 })
      (Netbase.Packet.Raw "chaff")
  done;
  Sim.Engine.run ~until:3.0 o.engine;
  check_int "all delivered" 50 !received;
  check "dedup memory clipped to window" true (Spines.Node.dedup_retained o.nodes.(1) <= 16);
  check "evictions counted" true (Spines.Node.dedup_evictions o.nodes.(1) > 0)

(* --- data plane: route cache, egress, frames ---------------------------------- *)

let test_duplicate_link_rejected () =
  Alcotest.check_raises "same orientation"
    (Invalid_argument "Topology.create: duplicate link 0-1") (fun () ->
      ignore
        (Spines.Topology.create ~nodes:[ 0; 1 ]
           ~links:[ Spines.Topology.link 0 1; Spines.Topology.link 0 1 ]));
  Alcotest.check_raises "reversed orientation"
    (Invalid_argument "Topology.create: duplicate link 1-0") (fun () ->
      ignore
        (Spines.Topology.create ~nodes:[ 0; 1 ]
           ~links:[ Spines.Topology.link 0 1; Spines.Topology.link 1 0 ]))

let test_view_epoch_counts_transitions () =
  let t = ring 4 in
  let view = Spines.Topology.View.all_up t in
  check_int "starts at 0" 0 (Spines.Topology.View.epoch view);
  Spines.Topology.View.set_link view 0 1 ~up:true;
  check_int "re-asserting up is a no-op" 0 (Spines.Topology.View.epoch view);
  Spines.Topology.View.set_link view 0 1 ~up:false;
  check_int "down transition bumps" 1 (Spines.Topology.View.epoch view);
  Spines.Topology.View.set_link view 0 1 ~up:false;
  check_int "re-asserting down is a no-op" 1 (Spines.Topology.View.epoch view);
  Spines.Topology.View.set_link view 1 0 ~up:true;
  check_int "up transition bumps (either orientation)" 2 (Spines.Topology.View.epoch view)

let test_equal_cost_tie_break_canonical () =
  (* Ring 4: both directions from 0 to 2 cost two hops; the canonical
     table must pick the smaller first hop, and keep doing so however
     often it is recomputed. *)
  let t = ring 4 in
  let view = Spines.Topology.View.all_up t in
  for _ = 1 to 5 do
    Alcotest.(check (option int)) "0->2 ties toward hop 1" (Some 1)
      (Spines.Topology.route t view ~src:0 ~dst:2)
  done;
  let t6 = ring 6 in
  let v6 = Spines.Topology.View.all_up t6 in
  Alcotest.(check (option int)) "0->3 ties toward hop 1 on ring 6" (Some 1)
    (Spines.Topology.route t6 v6 ~src:0 ~dst:3)

let test_route_cache_hits_and_rebuilds () =
  let o = make_overlay ~it_mode:false (ring 4) in
  let sink = collect_client o.nodes.(2) ~client:9 () in
  let c name = Sim.Stats.Counter.get (Spines.Node.counters o.nodes.(0)) name in
  Sim.Engine.run ~until:0.5 o.engine;
  Spines.Node.send o.nodes.(0) ~client:1 ~size:10
    (Spines.Node.To_client { node = 2; client = 9 })
    (Netbase.Packet.Raw "first");
  Sim.Engine.run ~until:1.0 o.engine;
  check_int "first unicast built the table once" 1 (c "route.rebuild");
  let hits_before = c "route.cache_hit" in
  Spines.Node.send o.nodes.(0) ~client:1 ~size:10
    (Spines.Node.To_client { node = 2; client = 9 })
    (Netbase.Packet.Raw "second");
  Sim.Engine.run ~until:1.5 o.engine;
  check_int "stable topology: no second Dijkstra" 1 (c "route.rebuild");
  check "second unicast hit the cache" true (c "route.cache_hit" > hits_before);
  (* A real link transition must invalidate the cache. *)
  Spines.Node.stop o.nodes.(1);
  Sim.Engine.run ~until:4.0 o.engine;
  Spines.Node.send o.nodes.(0) ~client:1 ~size:10
    (Spines.Node.To_client { node = 2; client = 9 })
    (Netbase.Packet.Raw "rerouted");
  Sim.Engine.run ~until:6.0 o.engine;
  check "rebuild after view change" true (c "route.rebuild" >= 2);
  check_int "all three delivered" 3 (List.length !sink)

let test_next_hop_tables_deterministic () =
  (* Two identical runs, including a failure-driven view change, must end
     with byte-identical next-hop tables on every daemon. *)
  let run () =
    let o = make_overlay ~it_mode:false (ring 6) in
    Sim.Engine.run ~until:1.0 o.engine;
    Spines.Node.stop o.nodes.(3);
    Sim.Engine.run ~until:5.0 o.engine;
    Array.to_list
      (Array.map
         (fun n -> if Spines.Node.is_running n then Spines.Node.next_hop_snapshot n else [])
         o.nodes)
  in
  let a = run () and b = run () in
  check "same-seed runs produce identical tables" true (a = b)

let test_egress_overflow_drops_lowest_priority () =
  let q = Spines.Egress.create ~capacity:4 () in
  ignore (Spines.Egress.enqueue q ~prio:1 ~origin:1 "a1");
  ignore (Spines.Egress.enqueue q ~prio:1 ~origin:1 "a2");
  ignore (Spines.Egress.enqueue q ~prio:2 ~origin:2 "b1");
  ignore (Spines.Egress.enqueue q ~prio:2 ~origin:2 "b2");
  (* Full. A higher-priority arrival evicts from the lowest band... *)
  (match Spines.Egress.enqueue q ~prio:3 ~origin:3 "c1" with
  | Spines.Egress.Evicted "a1" -> ()
  | _ -> Alcotest.fail "expected eviction of the oldest lowest-priority message");
  (* ...while a lowest-priority arrival is itself refused. *)
  (match Spines.Egress.enqueue q ~prio:0 ~origin:4 "d1" with
  | Spines.Egress.Rejected -> ()
  | _ -> Alcotest.fail "expected lowest-priority arrival to be rejected");
  check_int "both drops counted" 2 (Spines.Egress.drops q);
  check_int "length stays at capacity" 4 (Spines.Egress.length q);
  let order = List.map (fun (_, _, m) -> m) (Spines.Egress.drain q) in
  check "highest priority first, survivors in order" true
    (order = [ "c1"; "b1"; "b2"; "a2" ])

let test_egress_round_robin_across_origins () =
  let q = Spines.Egress.create ~capacity:16 () in
  List.iter
    (fun (origin, m) -> ignore (Spines.Egress.enqueue q ~prio:1 ~origin m))
    [ (5, "x1"); (5, "x2"); (5, "x3"); (7, "y1"); (7, "y2"); (7, "y3") ];
  let order = List.map (fun (_, o, m) -> (o, m)) (Spines.Egress.drain q) in
  check "origins alternate within a band" true
    (order = [ (5, "x1"); (7, "y1"); (5, "x2"); (7, "y2"); (5, "x3"); (7, "y3") ]);
  (* The fairness cursor persists: after serving origin 7 last, a fresh
     round starts above 7 (wrapping to the smallest origin). *)
  ignore (Spines.Egress.enqueue q ~prio:1 ~origin:5 "x4");
  ignore (Spines.Egress.enqueue q ~prio:1 ~origin:7 "y4");
  let order2 = List.map (fun (_, o, _) -> o) (Spines.Egress.drain q) in
  check "cursor wraps past the last origin served" true (order2 = [ 5; 7 ])

let test_egress_fairness_many_origins () =
  (* Source fairness at deployment scale: 120 origins with unequal
     backlogs (origin o holds 1 + o mod 3 messages). Each drain round
     must serve at most one message per origin, in sorted origin order,
     before any origin is served twice. *)
  let n_origins = 120 in
  let q = Spines.Egress.create ~capacity:1024 () in
  for o = 0 to n_origins - 1 do
    for k = 0 to o mod 3 do
      ignore (Spines.Egress.enqueue q ~prio:1 ~origin:o (Printf.sprintf "m%d.%d" o k))
    done
  done;
  let served = Spines.Egress.drain q in
  check_int "nothing dropped" 0 (Spines.Egress.drops q);
  (* Walk the serve order and split it into rounds: a round ends when the
     origin id stops increasing. Within a round origins are strictly
     increasing (sorted order, one message each). *)
  let rounds = ref 1 and last = ref (-1) and seen_in_round = Hashtbl.create 256 in
  List.iter
    (fun (_, o, _) ->
      if o <= !last then begin
        incr rounds;
        Hashtbl.reset seen_in_round;
        last := -1
      end;
      check "origin not served twice in a round" false (Hashtbl.mem seen_in_round o);
      Hashtbl.replace seen_in_round o ();
      last := o)
    served;
  (* Max backlog is 3, so fairness must finish in exactly 3 rounds. *)
  check_int "three rounds for backlog depth three" 3 !rounds;
  (* Per-origin FIFO: origin o's messages appear in enqueue order. *)
  let per_origin = Hashtbl.create 256 in
  List.iter
    (fun (_, o, m) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt per_origin o) in
      Hashtbl.replace per_origin o (m :: prev))
    served;
  for o = 0 to n_origins - 1 do
    let got = List.rev (Option.value ~default:[] (Hashtbl.find_opt per_origin o)) in
    let expect = List.init ((o mod 3) + 1) (Printf.sprintf "m%d.%d" o) in
    if got <> expect then
      Alcotest.failf "origin %d served out of order: %s" o (String.concat "," got)
  done

let test_egress_overflow_eviction_many_origins () =
  (* Overflow at scale: 100 origins fill a 100-slot queue with one
     low-priority message each, then origin 100 sends 50 high-priority
     arrivals. Every arrival must displace the oldest message of the
     most-backlogged lowest-band origin (ties toward the higher origin
     id) — with equal backlogs that walks victims from origin 99 down. *)
  let q = Spines.Egress.create ~capacity:100 () in
  for o = 0 to 99 do
    ignore (Spines.Egress.enqueue q ~prio:1 ~origin:o (Printf.sprintf "low%d" o))
  done;
  check_int "full" 100 (Spines.Egress.length q);
  for k = 0 to 49 do
    match Spines.Egress.enqueue q ~prio:5 ~origin:100 (Printf.sprintf "hi%d" k) with
    | Spines.Egress.Evicted victim ->
        let expect = Printf.sprintf "low%d" (99 - k) in
        if victim <> expect then
          Alcotest.failf "arrival %d evicted %s, expected %s" k victim expect
    | Spines.Egress.Enqueued -> Alcotest.failf "arrival %d admitted without eviction" k
    | Spines.Egress.Rejected -> Alcotest.failf "high-priority arrival %d rejected" k
  done;
  check_int "still at capacity" 100 (Spines.Egress.length q);
  check_int "fifty evictions counted" 50 (Spines.Egress.drops q);
  (* A same-priority arrival against an all-lowest-band queue is itself
     refused once nothing queued is strictly lower-priority. *)
  (match Spines.Egress.enqueue q ~prio:1 ~origin:7 "late" with
  | Spines.Egress.Rejected -> ()
  | _ -> Alcotest.fail "expected same-priority arrival to be rejected");
  (* Drain order: the 50 high-priority messages first (single origin, in
     FIFO order), then the surviving low band fairly across origins. *)
  let order = Spines.Egress.drain q in
  let his = List.filteri (fun i _ -> i < 50) order in
  check "high band drains first, in order" true
    (List.mapi (fun i (p, o, m) -> (p, o, m) = (5, 100, Printf.sprintf "hi%d" i)) his
    |> List.for_all Fun.id);
  let lows = List.filteri (fun i _ -> i >= 50) order in
  check "survivors are origins 0..49 in origin order" true
    (List.mapi (fun i (p, o, m) -> (p, o, m) = (1, i, Printf.sprintf "low%d" i)) lows
    |> List.for_all Fun.id)

let test_egress_drain_order_deterministic () =
  let fill () =
    let q = Spines.Egress.create ~capacity:5 () in
    List.iter
      (fun (prio, origin, m) -> ignore (Spines.Egress.enqueue q ~prio ~origin m))
      [
        (1, 9, "a"); (2, 3, "b"); (1, 4, "c"); (3, 9, "d"); (2, 3, "e");
        (2, 8, "f"); (1, 4, "g"); (3, 1, "h");
      ];
    Spines.Egress.drain q
  in
  check "two identical fills drain identically" true (fill () = fill ())

let test_frame_header_roundtrip () =
  let metas =
    [
      Spines.Frame.M_data
        {
          origin = 3; origin_client = 7; data_seq = 42;
          dst = Spines.Frame.M_client { node = 1; client = 2 };
          priority = 5; app_size = 128;
        };
      Spines.Frame.M_data
        {
          origin = 1; origin_client = 0; data_seq = 7;
          dst = Spines.Frame.M_group "replicas"; priority = 1; app_size = 64;
        };
      Spines.Frame.M_lsa { origin = 2; seq = 9; up_neighbors = [ 0; 1; 3 ] };
      Spines.Frame.M_data
        {
          origin = 0; origin_client = 1; data_seq = 1;
          dst = Spines.Frame.M_session "hmi-1"; priority = 2; app_size = 32;
        };
    ]
  in
  match Spines.Frame.decode_header (Spines.Frame.encode_header metas) with
  | Some decoded -> check "round-trips" true (decoded = metas)
  | None -> Alcotest.fail "well-formed header failed to decode"

let test_frame_decode_total_on_garbage () =
  let metas =
    [ Spines.Frame.M_lsa { origin = 2; seq = 9; up_neighbors = [ 0; 1 ] } ]
  in
  let good = Spines.Frame.encode_header metas in
  (* Every truncation of a valid header must decode to None, not raise. *)
  for len = 0 to String.length good - 1 do
    match Spines.Frame.decode_header (String.sub good 0 len) with
    | None -> ()
    | Some _ -> Alcotest.failf "truncated header of length %d decoded" len
  done;
  check "wrong magic rejected" true
    (Spines.Frame.decode_header ("\x00" ^ String.sub good 1 (String.length good - 1)) = None);
  check "garbage rejected" true
    (Spines.Frame.decode_header (String.make 64 '\xff') = None);
  (* A header whose count exceeds its entries must also be rejected. *)
  let doctored = good ^ "trailing-junk" in
  check "trailing bytes rejected" true (Spines.Frame.decode_header doctored = None)

let test_corrupt_frames_dropped_not_crashing () =
  (* A keyed-but-patched daemon ships frames whose HMAC covers a corrupted
     manifest: receivers must drop them, count them, and keep serving
     honest peers. *)
  let o = make_overlay ~it_mode:true (Spines.Topology.full_mesh [ 0; 1; 2 ]) in
  Spines.Node.inject_exploit o.nodes.(0) "corrupt-frames";
  let sink = collect_client o.nodes.(1) ~client:9 ~groups:[ "g" ] () in
  Spines.Node.send o.nodes.(0) ~client:1 ~size:50 (Spines.Node.To_group "g")
    (Netbase.Packet.Raw "corrupted");
  Sim.Engine.run ~until:1.0 o.engine;
  check_int "corrupted frame not delivered" 0 (List.length !sink);
  check "malformed frames counted" true
    (Sim.Stats.Counter.get (Spines.Node.counters o.nodes.(1)) "frame.malformed" > 0);
  (* The overlay survives: honest traffic still flows to the same sink. *)
  Spines.Node.send o.nodes.(2) ~client:1 ~size:50 (Spines.Node.To_group "g")
    (Netbase.Packet.Raw "honest");
  Sim.Engine.run ~until:2.0 o.engine;
  check_int "honest traffic unaffected" 1 (List.length !sink)

let test_node_egress_overflow_counted () =
  (* A burst far beyond a tiny egress bound inside one coalesce window
     must shed load and count it instead of growing without bound. *)
  let o = make_overlay ~it_mode:true ~egress_capacity:8 (Spines.Topology.full_mesh [ 0; 1 ]) in
  let received = ref 0 in
  Spines.Node.register_client o.nodes.(1) ~client:7 (fun ~src:_ ~size:_ _ -> incr received);
  Sim.Engine.run ~until:0.5 o.engine;
  for _ = 1 to 100 do
    Spines.Node.send o.nodes.(0) ~client:7 ~size:16
      (Spines.Node.To_client { node = 1; client = 7 })
      (Netbase.Packet.Raw "burst")
  done;
  Sim.Engine.run ~until:2.0 o.engine;
  check "overflow dropped" true
    (Sim.Stats.Counter.get (Spines.Node.counters o.nodes.(0)) "egress.drop" > 0);
  check "capacity's worth got through" true (!received >= 8);
  check "shed load never arrived" true (!received < 100)

let suite =
  [
    ("full mesh", `Quick, test_full_mesh);
    QCheck_alcotest.to_alcotest prop_routing_survives_random_link_failures;
    ("topology validation", `Quick, test_topology_validation);
    ("route line", `Quick, test_route_line);
    ("route avoids down link", `Quick, test_route_avoids_down_link);
    ("route prefers weight", `Quick, test_route_prefers_weight);
    ("unicast multi-hop routed", `Quick, test_unicast_multi_hop_routed);
    ("unicast it-mode flooding", `Quick, test_unicast_it_mode_flooding);
    ("group delivery exactly once", `Quick, test_group_delivery_exactly_once);
    ("sender in group gets local copy", `Quick, test_sender_in_group_gets_local_copy);
    ("unkeyed daemon rejected", `Quick, test_unkeyed_daemon_rejected);
    ("wrong-key daemon rejected", `Quick, test_wrong_key_daemon_rejected);
    ("keyed member accepted", `Quick, test_keyed_member_accepted);
    ("replayed frames deduplicated", `Quick, test_replayed_frame_deduplicated);
    ("window dedup and eviction", `Quick, test_window_dedup_and_eviction);
    ("window bounds node dedup", `Quick, test_window_bounds_node_dedup);
    ("stopped daemon detected and rerouted", `Quick, test_stopped_daemon_detected_and_rerouted);
    ("flooding tolerates daemon stop", `Quick, test_flooding_tolerates_daemon_stop);
    ("recovered daemon rejoins", `Quick, test_recovered_daemon_rejoins);
    ("insider flood clipped", `Quick, test_insider_flood_is_clipped);
    ("exploit disabled in IT mode", `Quick, test_exploit_disabled_in_it_mode);
    ("exploit bites outside IT mode", `Quick, test_exploit_bites_outside_it_mode);
    QCheck_alcotest.to_alcotest prop_route_reaches_destination;
    ("duplicate link rejected", `Quick, test_duplicate_link_rejected);
    ("view epoch counts transitions", `Quick, test_view_epoch_counts_transitions);
    ("equal-cost tie-break canonical", `Quick, test_equal_cost_tie_break_canonical);
    ("route cache hits and rebuilds", `Quick, test_route_cache_hits_and_rebuilds);
    ("next-hop tables deterministic", `Quick, test_next_hop_tables_deterministic);
    ("egress overflow drops lowest priority", `Quick, test_egress_overflow_drops_lowest_priority);
    ("egress round-robin across origins", `Quick, test_egress_round_robin_across_origins);
    ("egress fairness at 120 origins", `Quick, test_egress_fairness_many_origins);
    ("egress overflow eviction at 100 origins", `Quick, test_egress_overflow_eviction_many_origins);
    ("egress drain order deterministic", `Quick, test_egress_drain_order_deterministic);
    ("frame header roundtrip", `Quick, test_frame_header_roundtrip);
    ("frame decode total on garbage", `Quick, test_frame_decode_total_on_garbage);
    ("corrupt frames dropped not crashing", `Quick, test_corrupt_frames_dropped_not_crashing);
    ("node egress overflow counted", `Quick, test_node_egress_overflow_counted);
  ]

let () = Alcotest.run "spines" [ ("spines", suite) ]
