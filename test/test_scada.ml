(* Tests for the SCADA application layer: operation encoding, replicated
   state, and the historian. Master/proxy/HMI behaviour is exercised end
   to end in test_core. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let mini =
  {
    Plc.Power.scenario_name = "mini";
    plcs = [ { Plc.Power.plc_name = "M"; breaker_names = [ "A"; "B" ]; physical = false } ];
    feeds = [ { Plc.Power.load_name = "L"; path = [ "A"; "B" ] } ];
  }

(* --- Shard map ---------------------------------------------------------- *)

let test_shard_round_robin_partition () =
  let scenario = Plc.Power.synthetic ~devices:100 () in
  let map = Scada.Shard.create ~shards:4 scenario in
  check_int "four shards" 4 (Scada.Shard.shards map);
  (* Every site and breaker lands in exactly one shard, and the union of
     the sub-scenarios is the whole scenario. *)
  let total =
    List.init 4 (fun s -> Plc.Power.total_breakers (Scada.Shard.sub_scenario map s))
    |> List.fold_left ( + ) 0
  in
  check_int "breakers partitioned exactly" (Plc.Power.total_breakers scenario) total;
  List.iteri
    (fun i (p : Plc.Power.plc_spec) ->
      check "site shard is round-robin" true
        (Scada.Shard.shard_of_site map p.Plc.Power.plc_name = Some (i mod 4));
      List.iter
        (fun b ->
          check "breaker follows its site" true
            (Scada.Shard.shard_of_breaker map b = Some (i mod 4)))
        p.Plc.Power.breaker_names)
    scenario.Plc.Power.plcs;
  check "unknown breaker unmapped" true (Scada.Shard.shard_of_breaker map "nope" = None);
  (* Deterministic: two maps from the same inputs agree slice by slice. *)
  let map2 = Scada.Shard.create ~shards:4 scenario in
  for s = 0 to 3 do
    check "same sub-scenario" true
      (Scada.Shard.sub_scenario map s = Scada.Shard.sub_scenario map2 s)
  done

let test_shard_feeds_follow_sites () =
  let map = Scada.Shard.create ~shards:3 Plc.Power.red_team in
  (* Every feed lands in the shard of its first path breaker, and no
     feed is duplicated or lost. *)
  let total_feeds =
    List.init 3 (fun s ->
        List.length (Scada.Shard.sub_scenario map s).Plc.Power.feeds)
    |> List.fold_left ( + ) 0
  in
  check_int "feeds partitioned exactly"
    (List.length Plc.Power.red_team.Plc.Power.feeds)
    total_feeds;
  List.iter
    (fun (f : Plc.Power.feed) ->
      match f.Plc.Power.path with
      | [] -> ()
      | first :: _ ->
          let s = Option.get (Scada.Shard.shard_of_breaker map first) in
          check "feed in its breaker's shard" true
            (List.exists
               (fun (g : Plc.Power.feed) -> g.Plc.Power.load_name = f.Plc.Power.load_name)
               (Scada.Shard.sub_scenario map s).Plc.Power.feeds))
    Plc.Power.red_team.Plc.Power.feeds;
  check "degenerate single shard is identity" true
    ((Scada.Shard.sub_scenario (Scada.Shard.create ~shards:1 mini) 0).Plc.Power.plcs
    = mini.Plc.Power.plcs)

(* --- Op ---------------------------------------------------------------- *)

let test_op_roundtrip () =
  let cases =
    [
      Scada.Op.Status { breaker = "B10-1"; closed = true };
      Scada.Op.Status { breaker = "DIST-01/B2"; closed = false };
      Scada.Op.Command { breaker = "B57"; close = false };
    ]
  in
  List.iter
    (fun op ->
      match Scada.Op.decode (Scada.Op.encode op) with
      | Some decoded -> check (Scada.Op.encode op) true (decoded = op)
      | None -> Alcotest.fail "decode failed")
    cases

let test_op_rejects_garbage () =
  check "empty" true (Scada.Op.decode "" = None);
  check "unknown kind" true (Scada.Op.decode "weird:B1:1" = None);
  check "bad flag" true (Scada.Op.decode "status:B1:2" = None);
  check "missing fields" true (Scada.Op.decode "cmd:B1" = None)

let test_op_batch_roundtrip () =
  let cases =
    [
      Scada.Op.Batch { origin = "proxy-SUB-001"; cursor = 1; reports = [] };
      Scada.Op.Batch { origin = "proxy-M"; cursor = 42; reports = [ ("A", true) ] };
      Scada.Op.Batch
        {
          origin = "proxy-DIST-01";
          cursor = 7;
          reports = [ ("DIST-01/B1", false); ("DIST-01/B2", true); ("DIST-01/B3", false) ];
        };
    ]
  in
  List.iter
    (fun op ->
      match Scada.Op.decode (Scada.Op.encode op) with
      | Some decoded -> check (Scada.Op.encode op) true (decoded = op)
      | None -> Alcotest.fail "batch decode failed")
    cases;
  check_int "updates counts reports" 3
    (Scada.Op.updates
       (Scada.Op.Batch
          { origin = "o"; cursor = 1; reports = [ ("a", true); ("b", false); ("c", true) ] }));
  check "negative cursor rejected" true (Scada.Op.decode "batch:o:-1:a=1" = None);
  check "bad report flag rejected" true (Scada.Op.decode "batch:o:1:a=2" = None);
  check "bad report shape rejected" true (Scada.Op.decode "batch:o:1:a" = None)

let prop_op_roundtrip =
  QCheck.Test.make ~count:200 ~name:"op encode/decode roundtrips"
    QCheck.(pair (pair bool bool) (string_of_size Gen.(int_range 1 20)))
    (fun ((is_status, flag), name) ->
      QCheck.assume (not (String.contains name ':'));
      let op =
        if is_status then Scada.Op.Status { breaker = name; closed = flag }
        else Scada.Op.Command { breaker = name; close = flag }
      in
      Scada.Op.decode (Scada.Op.encode op) = Some op)

(* --- State -------------------------------------------------------------- *)

let test_state_apply_and_energized () =
  let s = Scada.State.create mini in
  check "A starts closed" true (Scada.State.reported_closed s "A");
  let changed =
    Scada.State.apply s ~exec_seq:1 (Scada.Op.Status { breaker = "A"; closed = false })
  in
  check "change detected" true changed;
  check "A now open" false (Scada.State.reported_closed s "A");
  let unchanged =
    Scada.State.apply s ~exec_seq:2 (Scada.Op.Status { breaker = "A"; closed = false })
  in
  check "idempotent status" false unchanged;
  Alcotest.(check (list (pair string bool))) "load dark" [ ("L", false) ] (Scada.State.energized s)

let test_state_unknown_breaker_is_noop () =
  let s = Scada.State.create mini in
  let changed =
    Scada.State.apply s ~exec_seq:1 (Scada.Op.Status { breaker = "GHOST"; closed = false })
  in
  check "no change" false changed;
  check_int "op still counted" 1 (Scada.State.ops_applied s)

let test_state_serialize_load_digest () =
  let s1 = Scada.State.create mini in
  ignore (Scada.State.apply s1 ~exec_seq:5 (Scada.Op.Status { breaker = "A"; closed = false }));
  ignore (Scada.State.apply s1 ~exec_seq:6 (Scada.Op.Command { breaker = "B"; close = false }));
  let blob = Scada.State.serialize s1 in
  let s2 = Scada.State.create mini in
  check "digests differ before load" true (Scada.State.digest s1 <> Scada.State.digest s2);
  (match Scada.State.load s2 blob with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check_str "digests equal after load" (Scada.State.digest s1) (Scada.State.digest s2);
  check "loaded value" false (Scada.State.reported_closed s2 "A")

let test_state_load_rejects_malformed () =
  let s = Scada.State.create mini in
  ignore (Scada.State.apply s ~exec_seq:1 (Scada.Op.Status { breaker = "A"; closed = false }));
  let before = Scada.State.digest s in
  check "garbage rejected" true (Scada.State.load s "not-a-state" |> Result.is_error);
  check "old text format rejected" true (Scada.State.load s "A=1/1/0;junk" |> Result.is_error);
  let blob = Scada.State.serialize s in
  check "truncated blob rejected" true
    (Scada.State.load s (String.sub blob 0 (String.length blob - 3)) |> Result.is_error);
  let unknown_breaker =
    Wire.encode (fun b ->
        Wire.w_u8 b 2;
        Wire.w_u32 b 1;
        Wire.w_str b "GHOST";
        Wire.w_u8 b 3;
        Wire.w_int b 0;
        Wire.w_u32 b 0)
  in
  check "unknown breaker rejected" true (Scada.State.load s unknown_breaker |> Result.is_error);
  let zero_cursor =
    Wire.encode (fun b ->
        Wire.w_u8 b 2;
        Wire.w_u32 b 0;
        Wire.w_u32 b 1;
        Wire.w_str b "proxy-M";
        Wire.w_int b 0)
  in
  check "cursor below 1 rejected" true (Scada.State.load s zero_cursor |> Result.is_error);
  (* A rejected load leaves the live state untouched. *)
  check_str "state untouched by rejected loads" before (Scada.State.digest s)

let test_state_batch_cursor_gate () =
  let s = Scada.State.create mini in
  let batch cursor reports = Scada.Op.Batch { origin = "proxy-M"; cursor; reports } in
  let changes =
    Scada.State.apply_changes s ~exec_seq:1 (batch 1 [ ("A", false); ("B", false) ])
  in
  check "both applied in order" true (changes = [ ("A", false); ("B", false) ]);
  check_int "cursor advanced" 1 (Scada.State.batch_cursor s "proxy-M");
  (* Replay of an old aggregate — even with different contents — must be
     a deterministic no-op. *)
  let replay = Scada.State.apply_changes s ~exec_seq:2 (batch 1 [ ("A", true) ]) in
  check "replayed batch ignored" true (replay = []);
  check "A still open" false (Scada.State.reported_closed s "A");
  (* A later cursor applies; unchanged reports produce no change rows. *)
  let next = Scada.State.apply_changes s ~exec_seq:3 (batch 2 [ ("A", false); ("B", true) ]) in
  check "only the real change reported" true (next = [ ("B", true) ]);
  check_int "cursor tracks" 2 (Scada.State.batch_cursor s "proxy-M")

let test_state_cursors_ride_serialization () =
  let s1 = Scada.State.create mini in
  let s2 = Scada.State.create mini in
  (* The cursor table is replicated state: it changes the canonical blob
     and the digest. *)
  let blob_free = Scada.State.serialize s1 in
  let digest_free = Scada.State.digest s1 in
  ignore
    (Scada.State.apply_changes s1 ~exec_seq:5
       (Scada.Op.Batch { origin = "proxy-M"; cursor = 9; reports = [ ("A", false) ] }));
  check "cursor changes the canonical blob" false
    (String.equal blob_free (Scada.State.serialize s1));
  check "cursor changes the digest" false (String.equal digest_free (Scada.State.digest s1));
  (* Load installs the cursor table, so a restored replica rejects the
     same replay the originals did. *)
  (match Scada.State.load s2 (Scada.State.serialize s1) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "load failed: %s" e);
  check_str "digest matches after load" (Scada.State.digest s1) (Scada.State.digest s2);
  check_int "cursor restored" 9 (Scada.State.batch_cursor s2 "proxy-M");
  let replay =
    Scada.State.apply_changes s2 ~exec_seq:6
      (Scada.Op.Batch { origin = "proxy-M"; cursor = 9; reports = [ ("A", true) ] })
  in
  check "restored replica rejects replay" true (replay = []);
  (* Trailing bytes are rejected like any other malformed blob. *)
  let s3 = Scada.State.create mini in
  check "trailing bytes rejected" true
    (Scada.State.load s3 (Scada.State.serialize s1 ^ "junk") |> Result.is_error)

(* Origins outside the scenario topology (an adversarial client can use
   any origin string) still ride the digest and the serialization
   deterministically through the cursor tree's spill leaf. *)
let test_state_unknown_origin_batch_rides_digest () =
  let s1 = Scada.State.create mini in
  let d0 = Scada.State.digest s1 in
  ignore
    (Scada.State.apply_changes s1 ~exec_seq:3
       (Scada.Op.Batch { origin = "rogue-origin"; cursor = 4; reports = [] }));
  check "unknown origin changes the digest" false (String.equal d0 (Scada.State.digest s1));
  check_str "incremental matches recompute" (Scada.State.recompute_digest s1)
    (Scada.State.digest s1);
  let s2 = Scada.State.create mini in
  (match Scada.State.load s2 (Scada.State.serialize s1) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "load failed: %s" e);
  check_str "digest matches after load" (Scada.State.digest s1) (Scada.State.digest s2);
  check_int "unknown-origin cursor restored" 4 (Scada.State.batch_cursor s2 "rogue-origin")

(* Regression for the old text loader's merge semantics: a blob that
   mentions fewer breakers/cursors than the live state must fully
   replace it — unmentioned entries revert to defaults instead of
   surviving with stale values. *)
let test_state_load_full_replacement () =
  let s = Scada.State.create mini in
  ignore (Scada.State.apply s ~exec_seq:2 (Scada.Op.Status { breaker = "B"; closed = false }));
  ignore
    (Scada.State.apply_changes s ~exec_seq:3
       (Scada.Op.Batch { origin = "proxy-M"; cursor = 5; reports = [] }));
  (* Hand-built smaller blob: version, one breaker entry (A open at exec
     7), no cursors, no reported telemetry. *)
  let small =
    Wire.encode (fun b ->
        Wire.w_u8 b 3;
        Wire.w_u32 b 1;
        Wire.w_str b "A";
        Wire.w_u8 b 2 (* reported open, commanded closed *);
        Wire.w_int b 7;
        Wire.w_u32 b 0;
        Wire.w_u32 b 0)
  in
  (match Scada.State.load s small with
  | Ok () -> ()
  | Error e -> Alcotest.failf "load failed: %s" e);
  check "A installed open" false (Scada.State.reported_closed s "A");
  check "B reverted to default" true (Scada.State.reported_closed s "B");
  check_int "cursor table replaced" 0 (Scada.State.batch_cursor s "proxy-M");
  (* Digests converge with a reference state holding only the A change. *)
  let reference = Scada.State.create mini in
  ignore
    (Scada.State.apply reference ~exec_seq:7 (Scada.Op.Status { breaker = "A"; closed = false }));
  check_str "digest converges with reference" (Scada.State.digest reference)
    (Scada.State.digest s);
  check_str "incremental matches recompute" (Scada.State.recompute_digest s)
    (Scada.State.digest s)

let test_state_serialize_memoized () =
  let s = Scada.State.create mini in
  let b1 = Scada.State.serialize s in
  let b2 = Scada.State.serialize s in
  check "memoized blob is the same string" true (b1 == b2);
  ignore (Scada.State.apply s ~exec_seq:1 (Scada.Op.Status { breaker = "A"; closed = false }));
  let b3 = Scada.State.serialize s in
  check "mutation invalidates the memo" false (String.equal b1 b3);
  let _, _, serializations = Scada.State.stats s in
  check_int "two encodes for three calls" 2 serializations

let test_state_reset () =
  let s = Scada.State.create mini in
  ignore (Scada.State.apply s ~exec_seq:1 (Scada.Op.Status { breaker = "A"; closed = false }));
  Scada.State.reset s;
  check "back to default" true (Scada.State.reported_closed s "A");
  check_int "ops cleared" 0 (Scada.State.ops_applied s)

(* Differential property for the incremental digest: any interleaving of
   status/command/batch applies, snapshot loads, and resets leaves the
   O(1) cached digest equal to a from-scratch recompute at every step. *)
let prop_state_incremental_matches_recompute =
  QCheck.Test.make ~count:200 ~name:"incremental digest equals from-scratch recompute"
    QCheck.(list_of_size Gen.(int_range 0 40) (pair small_nat bool))
    (fun ops ->
      let s = Scada.State.create mini in
      let saved = ref (Scada.State.serialize s) in
      let ok = ref true in
      List.iteri
        (fun i (sel, flag) ->
          let exec_seq = i + 1 in
          (match sel mod 8 with
          | 0 | 1 ->
              ignore
                (Scada.State.apply s ~exec_seq
                   (Scada.Op.Status { breaker = (if sel mod 2 = 0 then "A" else "B"); closed = flag }))
          | 2 ->
              ignore
                (Scada.State.apply s ~exec_seq
                   (Scada.Op.Command { breaker = (if flag then "A" else "B"); close = flag }))
          | 3 | 4 ->
              ignore
                (Scada.State.apply_changes s ~exec_seq
                   (Scada.Op.Batch
                      {
                        origin = (if sel mod 8 = 3 then "proxy-M" else "ghost-origin");
                        cursor = exec_seq;
                        reports = [ ("A", flag); ("B", not flag) ];
                      }))
          | 5 -> saved := Scada.State.serialize s
          | 6 -> (
              match Scada.State.load s !saved with
              | Ok () -> ()
              | Error e -> failwith ("snapshot load failed: " ^ e))
          | _ -> Scada.State.reset s);
          if not (String.equal (Scada.State.digest s) (Scada.State.recompute_digest s)) then
            ok := false)
        ops;
      !ok && String.equal (Scada.State.digest s) (Scada.State.recompute_digest s))

let prop_state_digest_deterministic =
  QCheck.Test.make ~count:100 ~name:"state digest is a pure function of applied ops"
    QCheck.(list_of_size Gen.(int_range 0 20) (pair bool bool))
    (fun ops ->
      let build () =
        let s = Scada.State.create mini in
        List.iteri
          (fun i (which, flag) ->
            let breaker = if which then "A" else "B" in
            ignore (Scada.State.apply s ~exec_seq:(i + 1) (Scada.Op.Status { breaker; closed = flag })))
          ops;
        Scada.State.digest s
      in
      String.equal (build ()) (build ()))

(* --- Historian ---------------------------------------------------------------- *)

let test_historian_record_and_query () =
  let h = Scada.Historian.create () in
  Scada.Historian.record h ~time:1.0 ~source:"master" ~kind:"status" ~detail:"B57 open";
  Scada.Historian.record h ~time:2.0 ~source:"master" ~kind:"command" ~detail:"close B57";
  Scada.Historian.record h ~time:3.0 ~source:"master" ~kind:"status" ~detail:"B57 closed";
  check_int "three events" 3 (Scada.Historian.length h);
  check_int "since 1.5" 2 (List.length (Scada.Historian.since h 1.5));
  check_int "by kind" 2 (List.length (Scada.Historian.by_kind h "status"))

let test_historian_wipe_is_permanent () =
  (* The Section III-A asymmetry: archived history cannot be rebuilt from
     field devices. *)
  let h = Scada.Historian.create () in
  for i = 1 to 10 do
    Scada.Historian.record h ~time:(float_of_int i) ~source:"m" ~kind:"sample" ~detail:"x"
  done;
  Scada.Historian.wipe h;
  check_int "empty" 0 (Scada.Historian.length h);
  check_int "loss accounted" 10 (Scada.Historian.lost_events h)

let test_historian_matches_list_semantics () =
  (* Regression for the growable-array rewrite: queries must agree with
     the old list-based historian, including on out-of-order times (where
     [since] degrades from binary search to the old linear filter). *)
  let input =
    [
      (1.0, "m", "status", "a");
      (4.0, "m", "command", "b");
      (2.0, "p", "status", "c"); (* non-monotone *)
      (4.0, "m", "status", "d"); (* duplicate time *)
      (9.0, "p", "alarm", "e");
    ]
  in
  let h = Scada.Historian.create () in
  List.iter (fun (time, source, kind, detail) -> Scada.Historian.record h ~time ~source ~kind ~detail) input;
  let reference = List.map (fun (time, source, kind, detail) -> { Scada.Historian.time; source; kind; detail }) input in
  Alcotest.(check int) "recording order" (List.length reference) (Scada.Historian.length h);
  check "events in recording order" true (Scada.Historian.events h = reference);
  check "since filters like the old scan" true
    (Scada.Historian.since h 4.0 = List.filter (fun e -> e.Scada.Historian.time >= 4.0) reference);
  check "by_kind preserves order" true
    (Scada.Historian.by_kind h "status"
    = List.filter (fun e -> e.Scada.Historian.kind = "status") reference);
  (* And on a monotone history the binary-search path gives the same
     answers as the filter. *)
  let hm = Scada.Historian.create () in
  for i = 1 to 100 do
    Scada.Historian.record hm ~time:(float_of_int i) ~source:"m" ~kind:"s" ~detail:""
  done;
  check_int "since mid" 51 (List.length (Scada.Historian.since hm 50.0));
  check_int "since before start" 100 (List.length (Scada.Historian.since hm 0.0));
  check_int "since past end" 0 (List.length (Scada.Historian.since hm 101.0))

let test_historian_store_backed_wipe_keeps_synced_prefix () =
  let media = Store.Media.create ~rng:(Sim.Rng.create 5L) "hist-disk" in
  let h = Scada.Historian.create () in
  Scada.Historian.attach_store h media;
  for i = 1 to 10 do
    Scada.Historian.record h ~time:(float_of_int i) ~source:"m" ~kind:"sample" ~detail:"x"
  done;
  (* Default WAL batching syncs in groups; whatever is past the last
     durability point is the only thing a breach may take. *)
  Scada.Historian.wipe h;
  let survived = Scada.Historian.length h in
  check "synced prefix survives" true (survived > 0);
  check_int "only the unsynced tail is lost" (10 - survived) (Scada.Historian.lost_events h);
  check_int "recovered accounted" survived (Scada.Historian.recovered_events h);
  (* The survivors are the exact prefix, still queryable. *)
  List.iteri
    (fun i e -> check "prefix order" true (e.Scada.Historian.time = float_of_int (i + 1)))
    (Scada.Historian.events h);
  (* A second incarnation of the process re-attaching the same device
     sees the same durable history. *)
  let h2 = Scada.Historian.create () in
  Scada.Historian.attach_store h2 media;
  check_int "reattach replays prefix" survived (Scada.Historian.length h2)

(* --- threshold gate ------------------------------------------------------- *)

let test_threshold_fires_once () =
  let g = Scada.Threshold.create ~needed:2 () in
  check "first vote below threshold" false (Scada.Threshold.vote g ~key:"k" ~voter:0);
  check "same voter does not stack" false (Scada.Threshold.vote g ~key:"k" ~voter:0);
  check "second voter completes" true (Scada.Threshold.vote g ~key:"k" ~voter:1);
  check "replay suppressed" false (Scada.Threshold.vote g ~key:"k" ~voter:2);
  check "decided" true (Scada.Threshold.decided g "k")

let test_threshold_retention_bounds_decided () =
  (* Regression: decided keys were retained forever. *)
  let g = Scada.Threshold.create ~retention:4 ~needed:1 () in
  for i = 1 to 10 do
    check "each key fires" true (Scada.Threshold.vote g ~key:(string_of_int i) ~voter:0)
  done;
  check_int "decided bounded by retention" 4 (Scada.Threshold.decided_count g);
  check_int "evictions counted" 6 (Scada.Threshold.evictions g);
  (* Replay suppression holds within the retention horizon... *)
  check "recent key still suppressed" false (Scada.Threshold.vote g ~key:"10" ~voter:3);
  check "recent key still decided" true (Scada.Threshold.decided g "10");
  (* ...while keys beyond it have been forgotten. *)
  check "ancient key forgotten" false (Scada.Threshold.decided g "1")

let test_threshold_prunes_stale_votes () =
  (* Regression: vote sets that never reach threshold (equivocation,
     partial delivery) were retained forever. *)
  let g = Scada.Threshold.create ~retention:4 ~needed:2 () in
  check "lone vote pends" false (Scada.Threshold.vote g ~key:"orphan" ~voter:0);
  check_int "one open vote set" 1 (Scada.Threshold.open_votes g);
  for i = 1 to 8 do
    let key = Printf.sprintf "done-%d" i in
    ignore (Scada.Threshold.vote g ~key ~voter:0);
    check "decision completes" true (Scada.Threshold.vote g ~key ~voter:1)
  done;
  check_int "stale vote set pruned" 0 (Scada.Threshold.open_votes g)

let suite =
  [
    ("op roundtrip", `Quick, test_op_roundtrip);
    ("op rejects garbage", `Quick, test_op_rejects_garbage);
    ("op batch roundtrip", `Quick, test_op_batch_roundtrip);
    ("shard round-robin partition", `Quick, test_shard_round_robin_partition);
    ("shard feeds follow sites", `Quick, test_shard_feeds_follow_sites);
    ("state batch cursor gate", `Quick, test_state_batch_cursor_gate);
    ("state cursors ride serialization", `Quick, test_state_cursors_ride_serialization);
    ("state apply and energized", `Quick, test_state_apply_and_energized);
    ("state unknown breaker noop", `Quick, test_state_unknown_breaker_is_noop);
    ("state serialize/load/digest", `Quick, test_state_serialize_load_digest);
    ("state load rejects malformed", `Quick, test_state_load_rejects_malformed);
    ("state load fully replaces", `Quick, test_state_load_full_replacement);
    ("state unknown-origin batch rides digest", `Quick, test_state_unknown_origin_batch_rides_digest);
    ("state serialize memoized", `Quick, test_state_serialize_memoized);
    ("state reset", `Quick, test_state_reset);
    ("threshold fires once", `Quick, test_threshold_fires_once);
    ("threshold retention bounds decided", `Quick, test_threshold_retention_bounds_decided);
    ("threshold prunes stale votes", `Quick, test_threshold_prunes_stale_votes);
    ("historian record and query", `Quick, test_historian_record_and_query);
    ("historian wipe permanent", `Quick, test_historian_wipe_is_permanent);
    ("historian matches list semantics", `Quick, test_historian_matches_list_semantics);
    ("historian store-backed wipe", `Quick, test_historian_store_backed_wipe_keeps_synced_prefix);
    QCheck_alcotest.to_alcotest prop_op_roundtrip;
    QCheck_alcotest.to_alcotest prop_state_digest_deterministic;
    QCheck_alcotest.to_alcotest prop_state_incremental_matches_recompute;
  ]

let () = Alcotest.run "scada" [ ("scada", suite) ]
