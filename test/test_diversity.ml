(* Tests for the MultiCompiler diversity model and the proactive-recovery
   scheduler. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_variants_distinct () =
  let rng = Sim.Rng.create 1L in
  let a = Diversity.Variant.compile rng in
  let b = Diversity.Variant.compile rng in
  check "distinct builds" false (Diversity.Variant.equal a b)

let test_exploit_matches_only_target () =
  let rng = Sim.Rng.create 2L in
  let victim = Diversity.Variant.compile rng in
  let other = Diversity.Variant.compile rng in
  let exploit = Diversity.Variant.Exploit.craft ~name:"rop-chain" victim in
  check "works on target" true (Diversity.Variant.Exploit.works_against exploit victim);
  check "fails on other variant" false (Diversity.Variant.Exploit.works_against exploit other)

let test_monoculture_shares_exploit () =
  let rng = Sim.Rng.create 3L in
  let a = Diversity.Variant.compile ~diversify:false rng in
  let b = Diversity.Variant.compile ~diversify:false rng in
  let exploit = Diversity.Variant.Exploit.craft ~name:"rop-chain" a in
  check "one exploit fits all" true (Diversity.Variant.Exploit.works_against exploit b)

let prop_diverse_exploit_reuse_rate =
  QCheck.Test.make ~count:20 ~name:"an exploit against one diverse variant never reuses"
    QCheck.(int_bound 1000)
    (fun seed ->
      let rng = Sim.Rng.create (Int64.of_int (seed + 9)) in
      let victim = Diversity.Variant.compile rng in
      let exploit = Diversity.Variant.Exploit.craft ~name:"x" victim in
      let others = List.init 20 (fun _ -> Diversity.Variant.compile rng) in
      not (List.exists (Diversity.Variant.Exploit.works_against exploit) others))

(* --- recovery scheduler -------------------------------------------------- *)

let test_recovery_rotates_round_robin () =
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create () in
  let rng = Sim.Rng.create 7L in
  let downs = ref [] and ups = ref [] in
  let sched =
    Diversity.Recovery.create ~engine ~trace ~rng ~n:6 ~rotation_period:10.0 ~downtime:2.0
      ~take_down:(fun i -> downs := i :: !downs)
      ~bring_up:(fun i _ ~disk:_ -> ups := i :: !ups)
      ()
  in
  Diversity.Recovery.start sched;
  Sim.Engine.run ~until:65.0 engine;
  Diversity.Recovery.stop sched;
  Alcotest.(check (list int)) "round robin order" [ 0; 1; 2; 3; 4; 5 ] (List.rev !downs);
  Alcotest.(check (list int)) "all came back" [ 0; 1; 2; 3; 4; 5 ] (List.rev !ups);
  check_int "six recoveries" 6 (Diversity.Recovery.recoveries sched)

let test_recovery_replaces_variant () =
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create () in
  let rng = Sim.Rng.create 8L in
  let sched =
    Diversity.Recovery.create ~engine ~trace ~rng ~n:4 ~rotation_period:5.0 ~downtime:1.0
      ~take_down:(fun _ -> ())
      ~bring_up:(fun _ _ ~disk:_ -> ())
      ()
  in
  let before = Diversity.Recovery.current_variant sched 0 in
  Diversity.Recovery.start sched;
  Sim.Engine.run ~until:7.0 engine;
  Diversity.Recovery.stop sched;
  let after = Diversity.Recovery.current_variant sched 0 in
  check "variant replaced" false (Diversity.Variant.equal before after)

let test_recovery_at_most_one_down () =
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create () in
  let rng = Sim.Rng.create 9L in
  let down_now = ref 0 and max_down = ref 0 in
  let sched =
    Diversity.Recovery.create ~engine ~trace ~rng ~n:6 ~rotation_period:4.0 ~downtime:3.0
      ~take_down:(fun _ ->
        incr down_now;
        if !down_now > !max_down then max_down := !down_now)
      ~bring_up:(fun _ _ ~disk:_ -> decr down_now)
      ()
  in
  Diversity.Recovery.start sched;
  Sim.Engine.run ~until:50.0 engine;
  Diversity.Recovery.stop sched;
  check_int "k = 1: never more than one recovering" 1 !max_down

let test_recovery_exposure_bound () =
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create () in
  let rng = Sim.Rng.create 10L in
  let sched =
    Diversity.Recovery.create ~engine ~trace ~rng ~n:6 ~rotation_period:10.0 ~downtime:2.0
      ~take_down:(fun _ -> ())
      ~bring_up:(fun _ _ ~disk:_ -> ())
      ()
  in
  Alcotest.(check (float 1e-9)) "exposure bound" 60.0 (Diversity.Recovery.max_exposure sched)

let test_recovery_validates_period () =
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create () in
  let rng = Sim.Rng.create 11L in
  Alcotest.check_raises "period must exceed downtime"
    (Invalid_argument "Recovery.create: rotation_period must exceed downtime") (fun () ->
      ignore
        (Diversity.Recovery.create ~engine ~trace ~rng ~n:6 ~rotation_period:1.0 ~downtime:2.0
           ~take_down:(fun _ -> ())
           ~bring_up:(fun _ _ ~disk:_ -> ())
      ()))

let test_recovery_stop_during_downtime () =
  (* [stop] cancels the rotation timer, but a bring-up already scheduled
     for a machine mid-recovery still fires: a half-recovered replica is
     not left down forever. *)
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create () in
  let rng = Sim.Rng.create 21L in
  let downs = ref [] and ups = ref [] in
  let sched =
    Diversity.Recovery.create ~engine ~trace ~rng ~n:6 ~rotation_period:10.0 ~downtime:2.0
      ~take_down:(fun i -> downs := i :: !downs)
      ~bring_up:(fun i _ ~disk:_ -> ups := i :: !ups)
      ()
  in
  Diversity.Recovery.start sched;
  (* First take-down at t=10; stop inside its downtime window. *)
  Sim.Engine.run ~until:11.0 engine;
  check_int "one down" 1 (List.length !downs);
  check_int "not yet up" 0 (List.length !ups);
  check "mid-recovery" true (Diversity.Recovery.recovering sched = Some 0);
  Diversity.Recovery.stop sched;
  Sim.Engine.run ~until:30.0 engine;
  Alcotest.(check (list int)) "pending bring-up still fired" [ 0 ] (List.rev !ups);
  check_int "no further take-downs after stop" 1 (List.length !downs)

let test_recovery_restart_after_stop () =
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create () in
  let rng = Sim.Rng.create 22L in
  let downs = ref [] in
  let sched =
    Diversity.Recovery.create ~engine ~trace ~rng ~n:4 ~rotation_period:10.0 ~downtime:1.0
      ~take_down:(fun i -> downs := i :: !downs)
      ~bring_up:(fun _ _ ~disk:_ -> ())
      ()
  in
  Diversity.Recovery.start sched;
  Sim.Engine.run ~until:15.0 engine;
  Diversity.Recovery.stop sched;
  Sim.Engine.run ~until:40.0 engine;
  check_int "one rotation before stop" 1 (List.length !downs);
  (* The timer restarts cleanly after a stop and resumes the round robin. *)
  Diversity.Recovery.start sched;
  Sim.Engine.run ~until:70.0 engine;
  Diversity.Recovery.stop sched;
  check "rotation resumed" true (List.length !downs >= 3);
  Alcotest.(check (list int))
    "round robin continues where it left off" [ 0; 1; 2 ]
    (List.filteri (fun i _ -> i < 3) (List.rev !downs))

let suite =
  [
    ("variants distinct", `Quick, test_variants_distinct);
    ("exploit matches only target", `Quick, test_exploit_matches_only_target);
    ("monoculture shares exploit", `Quick, test_monoculture_shares_exploit);
    ("recovery rotates round robin", `Quick, test_recovery_rotates_round_robin);
    ("recovery replaces variant", `Quick, test_recovery_replaces_variant);
    ("recovery at most one down", `Quick, test_recovery_at_most_one_down);
    ("recovery exposure bound", `Quick, test_recovery_exposure_bound);
    ("recovery validates period", `Quick, test_recovery_validates_period);
    ("recovery stop during downtime", `Quick, test_recovery_stop_during_downtime);
    ("recovery restart after stop", `Quick, test_recovery_restart_after_stop);
    QCheck_alcotest.to_alcotest prop_diverse_exploit_reuse_rate;
  ]

let () = Alcotest.run "diversity" [ ("diversity", suite) ]
