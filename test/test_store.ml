(* Tests for the durable state subsystem: the simulated device, the
   CRC-framed write-ahead log, authenticated checkpoints, and the
   end-to-end recovery paths (local WAL replay and f+1-verified
   checkpoint transfer) over a full Spire deployment. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let media ?(seed = 11L) name = Store.Media.create ~rng:(Sim.Rng.create seed) name

(* --- Media ------------------------------------------------------------------- *)

let test_media_written_vs_synced () =
  let m = media "disk" in
  Store.Media.append m ~file:"a" "hello ";
  Store.Media.append m ~file:"a" "world";
  Alcotest.(check (option string)) "reads written" (Some "hello world")
    (Store.Media.read m ~file:"a");
  check_int "nothing synced yet" 0 (Store.Media.synced_length m ~file:"a");
  Store.Media.fsync m ~file:"a";
  check_int "all synced" 11 (Store.Media.synced_length m ~file:"a");
  check "io stall accounted" true (Store.Media.io_stall m > 0.0)

let test_media_crash_drops_unsynced_tail () =
  let m = media "disk" in
  Store.Media.append m ~file:"a" "durable";
  Store.Media.fsync m ~file:"a";
  Store.Media.append m ~file:"a" " volatile";
  Store.Media.crash m;
  Alcotest.(check (option string)) "tail gone" (Some "durable") (Store.Media.read m ~file:"a")

let test_media_tear_shortens_tail () =
  let m = media "disk" in
  Store.Media.append m ~file:"a" "durable";
  Store.Media.fsync m ~file:"a";
  Store.Media.append m ~file:"a" "0123456789";
  Store.Media.tear m ~file:"a";
  let len = Store.Media.length m ~file:"a" in
  check "tear kept a prefix of the tail" true (len >= 7 && len < 17);
  check "synced prefix intact" true
    (String.length "durable" = Store.Media.synced_length m ~file:"a")

let test_media_corrupt_flips_synced_bit () =
  let m = media "disk" in
  Store.Media.append m ~file:"a" "payload-payload-payload";
  check "no synced data, no corruption" false (Store.Media.corrupt m ~file:"a");
  Store.Media.fsync m ~file:"a";
  check "corrupted" true (Store.Media.corrupt m ~file:"a");
  check "contents changed" true
    (Store.Media.read m ~file:"a" <> Some "payload-payload-payload")

let test_media_wipe_and_write () =
  let m = media "disk" in
  Store.Media.write m ~file:"slot" "v1";
  Store.Media.fsync m ~file:"slot";
  Store.Media.write m ~file:"slot" "version-2";
  Alcotest.(check (option string)) "write replaces" (Some "version-2")
    (Store.Media.read m ~file:"slot");
  (* The rewrite is unsynced: a crash before fsync loses the slot, which
     is why checkpoint writers alternate between two slot files. *)
  Store.Media.crash m;
  Alcotest.(check (option string)) "unsynced rewrite lost" None
    (Store.Media.read m ~file:"slot");
  Store.Media.write m ~file:"slot" "v3";
  Store.Media.wipe m;
  check "wiped" false (Store.Media.exists m ~file:"slot");
  check_int "no files" 0 (List.length (Store.Media.files m))

(* --- Wal --------------------------------------------------------------------- *)

let records wal =
  let acc = ref [] in
  let n = Store.Wal.replay wal ~f:(fun r -> acc := r :: !acc) in
  (n, List.rev !acc)

let test_wal_append_replay_roundtrip () =
  let m = media "disk" in
  let wal = Store.Wal.create ~fsync_every:1 m in
  let payloads = List.init 20 (Printf.sprintf "record-%04d") in
  List.iter (Store.Wal.append wal) payloads;
  let n, rs = records wal in
  check_int "all replayed" 20 n;
  Alcotest.(check (list string)) "in order, byte-exact" payloads rs

let test_wal_rotation_and_gc () =
  let m = media "disk" in
  let wal = Store.Wal.create ~segment_size:128 ~fsync_every:1 m in
  let payloads = List.init 30 (Printf.sprintf "record-%04d") in
  List.iter (Store.Wal.append wal) payloads;
  check "rotated" true (Store.Wal.segment_count wal > 1);
  let n, rs = records wal in
  check_int "replay crosses segments" 30 n;
  Alcotest.(check (list string)) "order preserved across segments" payloads rs;
  let dropped = Store.Wal.gc_before wal ~segment:(Store.Wal.current_segment wal) in
  check "gc dropped sealed segments" true (dropped > 0);
  let n2, rs2 = records wal in
  check "suffix survives gc" true (n2 < 30 && n2 > 0);
  Alcotest.(check (list string)) "gc kept the newest records"
    (List.filteri (fun i _ -> i >= 30 - n2) payloads)
    rs2

let test_wal_corrupt_record_truncates_replay () =
  let m = media "disk" in
  let wal = Store.Wal.create ~fsync_every:1 m in
  let payloads = List.init 12 (Printf.sprintf "record-%04d") in
  List.iter (Store.Wal.append wal) payloads;
  check "a synced byte was flipped" true (Store.Media.corrupt_any m);
  let n, rs = records wal in
  check "replay stopped short, no crash" true (n < 12);
  Alcotest.(check (list string)) "surviving records are the valid prefix"
    (List.filteri (fun i _ -> i < n) payloads)
    rs;
  check "corruption counted" true
    (Sim.Stats.Counter.get (Store.Wal.counters wal) "wal.corrupt_record" >= 1);
  (* The log was physically cut back: appending works and replays cleanly. *)
  Store.Wal.append wal "after-the-cut";
  let n2, rs2 = records wal in
  check_int "append after truncation" (n + 1) n2;
  check_str "new record present" "after-the-cut" (List.nth rs2 n)

let test_wal_crash_loses_only_unsynced_tail () =
  let m = media "disk" in
  let wal = Store.Wal.create ~fsync_every:4 m in
  List.iter (Store.Wal.append wal) (List.init 10 (Printf.sprintf "r%d"));
  (* 8 records are covered by durability points; 2 ride in the tail. *)
  Store.Media.crash m;
  let n, _ = records wal in
  check_int "synced prefix survives" 8 n

let test_wal_tear_mid_record () =
  let m = media "disk" in
  let wal = Store.Wal.create ~fsync_every:4 m in
  List.iter (Store.Wal.append wal) (List.init 9 (Printf.sprintf "record-%04d"));
  (* Tear the unsynced tail mid-record; replay must stop cleanly at a
     frame boundary inside the synced prefix or the torn point. *)
  check "tore a tail" true (Store.Media.tear_any m);
  let n, rs = records wal in
  check "no crash, prefix only" true (n <= 9);
  List.iteri (fun i r -> check_str "prefix intact" (Printf.sprintf "record-%04d" i) r) rs

let test_wal_reopen_continues () =
  let m = media "disk" in
  let wal = Store.Wal.create ~fsync_every:1 m in
  List.iter (Store.Wal.append wal) [ "a"; "b"; "c" ];
  (* A process restart: a fresh Wal.t over the same device. *)
  let wal2 = Store.Wal.create ~fsync_every:1 m in
  let n, rs = records wal2 in
  check_int "previous records visible" 3 n;
  Alcotest.(check (list string)) "byte-exact" [ "a"; "b"; "c" ] rs;
  Store.Wal.append wal2 "d";
  let n2, _ = records wal2 in
  check_int "continues after reopen" 4 n2

(* --- Checkpoint -------------------------------------------------------------- *)

let make_keys () =
  let ks = Crypto.Signature.create_keystore () in
  let kp0 = Crypto.Signature.generate ks "replica-0" in
  let kp1 = Crypto.Signature.generate ks "replica-1" in
  (ks, kp0, kp1)

let sample_ck ~keypair ~replica =
  Store.Checkpoint.make ~keypair ~replica ~next_exec_pp:7 ~exec_seq:42
    ~cursor:[| 5; 9; 2; 0 |]
    ~client_seqs:[ ("hmi-1", 3); ("hmi-0", 5) ]
    ~app_state:"opaque-state-blob"
    ~app_root:(Crypto.Sha256.digest "sample-app-root")

let test_checkpoint_roundtrip_and_verify () =
  let ks, kp0, _ = make_keys () in
  let ck = sample_ck ~keypair:kp0 ~replica:0 in
  check "verifies" true (Store.Checkpoint.verify ~keystore:ks ~signer:"replica-0" ck);
  check "wrong signer rejected" false
    (Store.Checkpoint.verify ~keystore:ks ~signer:"replica-1" ck);
  match Store.Checkpoint.decode (Store.Checkpoint.encode ck) with
  | None -> Alcotest.fail "decode failed"
  | Some ck' ->
      check "decoded verifies" true
        (Store.Checkpoint.verify ~keystore:ks ~signer:"replica-0" ck');
      check "round equal" true (ck = ck')

let test_checkpoint_root_is_replica_independent () =
  let _, kp0, kp1 = make_keys () in
  let a = sample_ck ~keypair:kp0 ~replica:0 in
  let b = sample_ck ~keypair:kp1 ~replica:1 in
  (* Same logical state, different snapshotting replica: same root (so
     f+1 root votes can match), different signatures. *)
  check "roots match" true (a.Store.Checkpoint.ck_root = b.Store.Checkpoint.ck_root);
  check "signers differ" true (a.Store.Checkpoint.ck_auth <> b.Store.Checkpoint.ck_auth)

let test_checkpoint_tamper_detected () =
  let ks, kp0, _ = make_keys () in
  let ck = sample_ck ~keypair:kp0 ~replica:0 in
  let tampered = { ck with Store.Checkpoint.ck_app_root = Crypto.Sha256.digest "other-root" } in
  check "app-root tampering breaks the root" false
    (Store.Checkpoint.verify ~keystore:ks ~signer:"replica-0" tampered);
  let meta_tampered = { ck with Store.Checkpoint.ck_exec_seq = 43 } in
  check "meta tampering breaks the root" false
    (Store.Checkpoint.verify ~keystore:ks ~signer:"replica-0" meta_tampered);
  let blob = Store.Checkpoint.encode ck in
  let cut = String.sub blob 0 (String.length blob - 3) in
  check "truncated blob rejected" true (Store.Checkpoint.decode cut = None)

(* --- end-to-end recovery over a full deployment ------------------------------- *)

let mini_scenario =
  {
    Plc.Power.scenario_name = "store-mini";
    plcs =
      [ { Plc.Power.plc_name = "MAIN"; breaker_names = [ "B10-1"; "B57"; "B56" ]; physical = true } ];
    feeds = [ { Plc.Power.load_name = "Building-A"; path = [ "B10-1"; "B57" ] } ];
  }

(* The checkpoint root covers the state's digest root, not the blob
   bytes; the install-time binding ([State.root_of_blob]) must catch any
   single-bit flip in the blob — either the derived root changes or the
   blob stops parsing. *)
let test_checkpoint_blob_binding_detects_flips () =
  let s = Scada.State.create mini_scenario in
  ignore (Scada.State.apply s ~exec_seq:1 (Scada.Op.Status { breaker = "B57"; closed = false }));
  ignore
    (Scada.State.apply_changes s ~exec_seq:2
       (Scada.Op.Batch { origin = "proxy-MAIN"; cursor = 3; reports = [ ("B56", false) ] }));
  let blob = Scada.State.serialize s in
  let root = Scada.State.digest_root s in
  (match Scada.State.root_of_blob s blob with
  | Ok r -> check "intact blob binds to its root" true (String.equal r root)
  | Error e -> Alcotest.fail e);
  let undetected = ref 0 in
  for i = 0 to String.length blob - 1 do
    for bit = 0 to 7 do
      let b = Bytes.of_string blob in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
      match Scada.State.root_of_blob s (Bytes.to_string b) with
      | Ok r -> if String.equal r root then incr undetected
      | Error _ -> ()
    done
  done;
  check_int "every single-bit flip detected" 0 !undetected

let make_spire ?(config = Prime.Config.create ~f:1 ~k:0 ~checkpoint_interval:8 ()) ?seed () =
  let engine =
    match seed with
    | None -> Sim.Engine.create ()
    | Some s -> Sim.Engine.create ~seed:(Int64.of_int s) ()
  in
  let trace = Sim.Trace.create () in
  let d = Spire.Deployment.create ~engine ~trace ~config mini_scenario in
  (engine, trace, d)

let run engine ~until = Sim.Engine.run ~until engine

let hmi d = (Spire.Deployment.hmis d).(0).Spire.Deployment.h_hmi

let main_breaker d name =
  match Spire.Deployment.find_breaker d name with
  | Some (_, b) -> b
  | None -> Alcotest.fail ("breaker not found: " ^ name)

let master_digests d =
  Array.to_list
    (Array.map
       (fun r -> Scada.State.digest (Scada.Master.state r.Spire.Deployment.r_master))
       (Spire.Deployment.replicas d))

let check_converged d =
  match master_digests d with
  | first :: rest -> List.iter (fun s -> check_str "digests agree" first s) rest
  | [] -> Alcotest.fail "no masters"

let durable_counter d i key =
  match Spire.Deployment.durable d i with
  | None -> Alcotest.fail "durable store missing"
  | Some dur -> Sim.Stats.Counter.get (Scada.Durable.counters dur) key

let test_replicas_checkpoint_at_same_points () =
  let engine, _, d = make_spire () in
  run engine ~until:3.0;
  for i = 1 to 8 do
    ignore
      (Sim.Engine.schedule engine ~delay:(3.0 +. (0.6 *. float_of_int i)) (fun () ->
           Plc.Breaker.toggle_force (main_breaker d "B57")))
  done;
  run engine ~until:15.0;
  (* The schedule is a pure function of the agreed history: every replica
     holds a latest checkpoint with the same root at the same exec point. *)
  let latest =
    Array.to_list
      (Array.mapi
         (fun i _ ->
           match Spire.Deployment.durable d i with
           | None -> Alcotest.fail "durable store missing"
           | Some dur -> (
               match Scada.Durable.latest_checkpoint dur with
               | None -> Alcotest.fail "no checkpoint taken"
               | Some ck -> ck))
         (Spire.Deployment.replicas d))
  in
  match latest with
  | first :: rest ->
      List.iter
        (fun ck ->
          check_int "same exec point" first.Store.Checkpoint.ck_exec_seq
            ck.Store.Checkpoint.ck_exec_seq;
          check "same root" true (first.Store.Checkpoint.ck_root = ck.Store.Checkpoint.ck_root))
        rest
  | [] -> Alcotest.fail "no replicas"

let test_local_recovery_replays_wal () =
  let engine, _, d = make_spire () in
  run engine ~until:3.0;
  for i = 1 to 6 do
    ignore
      (Sim.Engine.schedule engine ~delay:(3.0 +. (0.6 *. float_of_int i)) (fun () ->
           Plc.Breaker.toggle_force (main_breaker d "B57")))
  done;
  run engine ~until:8.0;
  Spire.Deployment.take_down_replica d 3;
  run engine ~until:10.0;
  Spire.Deployment.bring_up_replica_intact d 3;
  check_int "local recovery path taken" 1 (durable_counter d 3 "durable.local_recover");
  check "wal records replayed" true (durable_counter d 3 "durable.recovered_records" > 0);
  ignore (Scada.Hmi.command (hmi d) ~breaker:"B56" ~close:false);
  run engine ~until:25.0;
  check "follows new commands" false (Plc.Breaker.is_closed (main_breaker d "B56"));
  check_converged d

let gap_recovery_scenario ?seed ?(prepare = fun _engine _d -> ()) () =
  (* Tiny replication log: a replica that misses more updates than the
     log retains cannot catch up at the ordering level and must adopt an
     f+1-verified checkpoint. [prepare] runs right after the lagging
     replica rejoins, before the final run — attack-injection tests hook
     in there. *)
  let config = Prime.Config.create ~f:1 ~k:0 ~log_retention:8 ~checkpoint_interval:8 () in
  let engine, trace, d = make_spire ~config ?seed () in
  run engine ~until:3.0;
  Spire.Deployment.take_down_replica d 3;
  for i = 1 to 12 do
    ignore
      (Sim.Engine.schedule engine ~delay:(3.0 +. (0.6 *. float_of_int i)) (fun () ->
           Plc.Breaker.toggle_force (main_breaker d "B57")))
  done;
  run engine ~until:12.0;
  Spire.Deployment.bring_up_replica_clean d 3;
  prepare engine d;
  for i = 1 to 6 do
    ignore
      (Sim.Engine.schedule engine ~delay:(12.5 +. (2.0 *. float_of_int i)) (fun () ->
           Plc.Breaker.toggle_force (main_breaker d "B56")))
  done;
  run engine ~until:40.0;
  (engine, trace, d)

let test_gap_recovery_via_checkpoint_transfer () =
  let _, _, d = gap_recovery_scenario () in
  let r3 = (Spire.Deployment.replicas d).(3) in
  (* Ordered-certificate GC passed the lagging cursor, so replication-level
     catchup gave up and the [state_transfer_needed] hook fired... *)
  check "state_transfer_needed fired" true
    (Sim.Stats.Counter.get (Scada.Master.counters r3.Spire.Deployment.r_master)
       "transfer.requested"
     >= 1);
  (* ...and the application-level transfer closed the gap. *)
  check "transfer completed" true
    (Sim.Stats.Counter.get (Scada.Master.counters r3.Spire.Deployment.r_master)
       "transfer.completed"
     >= 1);
  check "peer checkpoint adopted" true (durable_counter d 3 "durable.peer_install" >= 1);
  check "checkpoint bytes accounted" true
    (match Spire.Deployment.durable d 3 with
    | None -> false
    | Some dur -> Scada.Durable.transfer_bytes dur > 0);
  check_converged d

let test_gap_recovery_transfer_is_deterministic () =
  let observe () =
    let _, _, d = gap_recovery_scenario ~seed:99 () in
    let r3 = (Spire.Deployment.replicas d).(3) in
    let received =
      Sim.Stats.Counter.get (Scada.Master.counters r3.Spire.Deployment.r_master)
        "transfer.bytes_received"
    in
    let sent =
      Array.fold_left
        (fun acc r ->
          acc
          + Sim.Stats.Counter.get
              (Scada.Master.counters r.Spire.Deployment.r_master)
              "transfer.bytes_sent")
        0 (Spire.Deployment.replicas d)
    in
    let adopted =
      match Spire.Deployment.durable d 3 with
      | None -> 0
      | Some dur -> Scada.Durable.transfer_bytes dur
    in
    (received, sent, adopted, master_digests d)
  in
  let a = observe () in
  let b = observe () in
  check "two same-seed runs move byte-identical transfer traffic" true (a = b)

let test_single_replica_cannot_force_fabricated_checkpoint () =
  (* One compromised replica serves a fabricated, self-signed checkpoint
     and replays it over and over during the rejoiner's transfer window.
     Votes are counted per distinct authenticated replica, so a single
     voter never reaches f + 1 and the fabricated state is never
     installed.

     Two same-seed passes: the first finds the (deterministic) moment
     the transfer starts from the trace; the second replays the run and
     fires the flood right inside that window, before any honest reply
     can arrive. *)
  let seed = 7 in
  let _, trace, _ = gap_recovery_scenario ~seed () in
  let t_start =
    match
      Sim.Trace.find trace ~category:"scada"
        ~contains:"master 3: starting application-level state transfer"
    with
    | Some e -> e.Sim.Trace.time
    | None -> Alcotest.fail "transfer never started"
  in
  let inject engine d =
    let r0 = (Spire.Deployment.replicas d).(0) in
    let r3 = (Spire.Deployment.replicas d).(3) in
    ignore
      (Sim.Engine.schedule_at engine ~time:(t_start +. 1e-6) (fun () ->
           let fake =
             Store.Checkpoint.make ~keypair:r0.Spire.Deployment.r_keypair ~replica:0
               ~next_exec_pp:999 ~exec_seq:9000
               ~cursor:[| 0; 0; 0; 0 |]
               ~client_seqs:[]
               ~app_state:
                 (Scada.State.serialize (Scada.Master.state r0.Spire.Deployment.r_master))
               ~app_root:
                 (Scada.State.digest_root (Scada.Master.state r0.Spire.Deployment.r_master))
           in
           let vote =
             Scada.Messages.encode_checkpoint_reply ~rep:0
               ~root:fake.Store.Checkpoint.ck_root
           in
           let msg =
             Scada.Messages.Checkpoint_reply
               {
                 ckr_rep = 0;
                 ckr_ck = fake;
                 ckr_sig = Crypto.Signature.sign r0.Spire.Deployment.r_keypair vote;
               }
           in
           (* The compromised replica answers the request three times
              over — once per 1s retry round and then some. *)
           for _ = 1 to 3 do
             Scada.Master.handle_payload r3.Spire.Deployment.r_master
               (Scada.Messages.Scada_msg msg)
           done))
  in
  let _, _, d = gap_recovery_scenario ~seed ~prepare:inject () in
  let r0 = (Spire.Deployment.replicas d).(0) in
  let r3 = (Spire.Deployment.replicas d).(3) in
  check "fabricated exec point never installed" true
    (Prime.Replica.exec_seq r3.Spire.Deployment.r_replica < 9000);
  check_int "rejoiner agrees with the honest quorum"
    (Prime.Replica.exec_seq r0.Spire.Deployment.r_replica)
    (Prime.Replica.exec_seq r3.Spire.Deployment.r_replica);
  check "transfer completed via honest replicas" true
    (Sim.Stats.Counter.get (Scada.Master.counters r3.Spire.Deployment.r_master)
       "transfer.completed"
     >= 1);
  check_converged d

let slot_exec d i slot =
  match Spire.Deployment.durable d i with
  | None -> Alcotest.fail "durable store missing"
  | Some dur -> (
      match
        Store.Media.read (Scada.Durable.media dur) ~file:(Printf.sprintf "ck%d" slot)
      with
      | None -> None
      | Some blob ->
          Option.map
            (fun ck -> ck.Store.Checkpoint.ck_exec_seq)
            (Store.Checkpoint.decode blob))

(* Toggle the breaker until replica [i]'s checkpoint count reaches
   [target], returning the reached simulated time. *)
let drive_until_checkpoints engine d i ~target ~from_t =
  let t = ref from_t in
  while durable_counter d i "durable.checkpoint" < target && !t < from_t +. 120.0 do
    Plc.Breaker.toggle_force (main_breaker d "B57");
    t := !t +. 1.0;
    run engine ~until:!t
  done;
  if durable_counter d i "durable.checkpoint" < target then
    Alcotest.fail "checkpoints did not accumulate";
  !t

let test_recovery_resumes_slot_alternation () =
  let engine, _, d = make_spire () in
  run engine ~until:3.0;
  (* Accumulate checkpoints until the *newest* lives in slot 0 — the
     slot a recovery that forgot the alternation would overwrite next. *)
  let ck_count = ref 0 in
  let t = ref (drive_until_checkpoints engine d 3 ~target:2 ~from_t:3.0) in
  ck_count := durable_counter d 3 "durable.checkpoint";
  if !ck_count land 1 = 0 then begin
    t := drive_until_checkpoints engine d 3 ~target:(!ck_count + 1) ~from_t:!t;
    ck_count := durable_counter d 3 "durable.checkpoint"
  end;
  let newest =
    match (slot_exec d 3 0, slot_exec d 3 1) with
    | Some a, Some b -> max a b
    | _ -> Alcotest.fail "both slots should hold checkpoints"
  in
  Spire.Deployment.take_down_replica d 3;
  run engine ~until:(!t +. 2.0);
  Spire.Deployment.bring_up_replica_intact d 3;
  check_int "recovered locally" 1 (durable_counter d 3 "durable.local_recover");
  (* Exactly one more checkpoint: it must land in the *older* slot, so
     both slots now hold checkpoints at least as new as the pre-crash
     best — a crash between its write and fsync can only lose the older
     one. *)
  ignore (drive_until_checkpoints engine d 3 ~target:(!ck_count + 1) ~from_t:(!t +. 2.0));
  (match (slot_exec d 3 0, slot_exec d 3 1) with
  | Some a, Some b ->
      check "newest checkpoint was not overwritten" true (min a b >= newest)
  | _ -> Alcotest.fail "a checkpoint slot went missing");
  check_converged d

let test_corrupt_newest_slot_past_gcd_wal_fails_over () =
  (* Chaos corrupts the newest checkpoint slot; the older slot still
     verifies, but the WAL prefix covering the span between the two was
     collected at the newer checkpoint. Local recovery must detect that
     the surviving suffix does not reach back to the older checkpoint
     and fail over to peer transfer instead of installing a gapped —
     silently divergent — state. *)
  let config =
    Prime.Config.create ~f:1 ~k:0 ~checkpoint_interval:8 ~wal_segment_size:64 ~fsync_every:1
      ()
  in
  let engine, _, d = make_spire ~config () in
  run engine ~until:3.0;
  let t = drive_until_checkpoints engine d 3 ~target:3 ~from_t:3.0 in
  Spire.Deployment.take_down_replica d 3;
  let dur =
    match Spire.Deployment.durable d 3 with
    | Some dur -> dur
    | None -> Alcotest.fail "durable store missing"
  in
  let newest_slot =
    match (slot_exec d 3 0, slot_exec d 3 1) with
    | Some a, Some b -> if a > b then 0 else 1
    | _ -> Alcotest.fail "both slots should hold checkpoints"
  in
  check "newest slot corrupted" true
    (Store.Media.corrupt (Scada.Durable.media dur)
       ~file:(Printf.sprintf "ck%d" newest_slot));
  run engine ~until:(t +. 2.0);
  Spire.Deployment.bring_up_replica_intact d 3;
  (* The older slot alone cannot anchor the surviving WAL suffix. *)
  check_int "no gapped local recovery" 0 (durable_counter d 3 "durable.local_recover");
  check "replay gap detected" true (durable_counter d 3 "durable.replay_gap" >= 1);
  check "corrupt checkpoint counted" true
    (durable_counter d 3 "durable.bad_checkpoint" >= 1);
  run engine ~until:(t +. 25.0);
  check_converged d

let test_wiped_disk_means_fresh_store () =
  let engine, _, d = make_spire () in
  run engine ~until:3.0;
  for i = 1 to 6 do
    ignore
      (Sim.Engine.schedule engine ~delay:(3.0 +. (0.6 *. float_of_int i)) (fun () ->
           Plc.Breaker.toggle_force (main_breaker d "B57")))
  done;
  run engine ~until:8.0;
  Spire.Deployment.take_down_replica d 3;
  run engine ~until:10.0;
  Spire.Deployment.bring_up_replica_clean d 3;
  (* Clean image: the device was wiped, so nothing was locally recovered. *)
  check_int "no local recovery from a wiped disk" 0
    (durable_counter d 3 "durable.local_recover");
  run engine ~until:25.0;
  check_converged d

let () =
  Alcotest.run "store"
    [
      ( "media",
        [
          ("written vs synced", `Quick, test_media_written_vs_synced);
          ("crash drops unsynced tail", `Quick, test_media_crash_drops_unsynced_tail);
          ("tear shortens tail", `Quick, test_media_tear_shortens_tail);
          ("corrupt flips a synced bit", `Quick, test_media_corrupt_flips_synced_bit);
          ("wipe and write", `Quick, test_media_wipe_and_write);
        ] );
      ( "wal",
        [
          ("append/replay roundtrip", `Quick, test_wal_append_replay_roundtrip);
          ("rotation and gc", `Quick, test_wal_rotation_and_gc);
          ("corrupt record truncates replay", `Quick, test_wal_corrupt_record_truncates_replay);
          ("crash loses only unsynced tail", `Quick, test_wal_crash_loses_only_unsynced_tail);
          ("tear mid-record", `Quick, test_wal_tear_mid_record);
          ("reopen continues", `Quick, test_wal_reopen_continues);
        ] );
      ( "checkpoint",
        [
          ("roundtrip and verify", `Quick, test_checkpoint_roundtrip_and_verify);
          ("root is replica independent", `Quick, test_checkpoint_root_is_replica_independent);
          ("tampering detected", `Quick, test_checkpoint_tamper_detected);
          ("blob binding detects flips", `Quick, test_checkpoint_blob_binding_detects_flips);
        ] );
      ( "recovery",
        [
          ("replicas checkpoint at the same points", `Slow,
            test_replicas_checkpoint_at_same_points);
          ("local recovery replays the wal", `Slow, test_local_recovery_replays_wal);
          ("gap recovery via checkpoint transfer", `Slow,
            test_gap_recovery_via_checkpoint_transfer);
          ("transfer traffic is deterministic", `Slow,
            test_gap_recovery_transfer_is_deterministic);
          ("one replica cannot force a fabricated checkpoint", `Slow,
            test_single_replica_cannot_force_fabricated_checkpoint);
          ("recovery resumes slot alternation", `Slow,
            test_recovery_resumes_slot_alternation);
          ("corrupt newest slot past gc'd wal fails over", `Slow,
            test_corrupt_newest_slot_past_gcd_wal_fails_over);
          ("wiped disk starts a fresh store", `Slow, test_wiped_disk_means_fresh_store);
        ] );
    ]
