(* Tests for the Prime replication engine: ordering safety and liveness,
   leader misbehaviour (crash / delay / censorship) and view changes,
   reconciliation, catchup, and application state-transfer signalling. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* In-memory transport mesh with per-message latency and a drop hook. *)
type cluster = {
  engine : Sim.Engine.t;
  trace : Sim.Trace.t;
  keystore : Crypto.Signature.keystore;
  config : Prime.Config.t;
  replicas : Prime.Replica.t array;
  clients : (string, Prime.Client.t) Hashtbl.t;
  mutable drop : src:int -> dst:int -> Prime.Msg.t -> bool;
  applied : (int * Prime.Msg.Update.t) list ref array; (* per-replica exec log *)
}

let make_cluster ?(config = Prime.Config.create ~f:1 ~k:0 ()) ?(latency = 0.001) ?seed () =
  let engine = Sim.Engine.create ?seed () in
  let trace = Sim.Trace.create () in
  let keystore = Crypto.Signature.create_keystore () in
  let n = config.Prime.Config.n in
  let replicas = Array.make n (Obj.magic 0) in
  let clients : (string, Prime.Client.t) Hashtbl.t = Hashtbl.create 8 in
  let cluster_ref = ref None in
  let deliver ~src ~dst msg =
    let c = Option.get !cluster_ref in
    if not (c.drop ~src ~dst msg) then
      ignore
        (Sim.Engine.schedule engine ~delay:latency (fun () ->
             Prime.Replica.handle_message c.replicas.(dst) msg))
  in
  let transport_for id =
    {
      Prime.Replica.send = (fun ~dst msg -> deliver ~src:id ~dst msg);
      broadcast =
        (fun msg ->
          for dst = 0 to n - 1 do
            if dst <> id then deliver ~src:id ~dst msg
          done);
      reply_to_client =
        (fun ~client msg ->
          ignore
            (Sim.Engine.schedule engine ~delay:latency (fun () ->
                 match Hashtbl.find_opt clients client with
                 | Some session -> Prime.Client.handle_reply session msg
                 | None -> ())));
    }
  in
  let applied = Array.init n (fun _ -> ref []) in
  for id = 0 to n - 1 do
    let keypair = Crypto.Signature.generate keystore (Prime.Msg.replica_identity id) in
    let r =
      Prime.Replica.create ~engine ~trace ~keystore ~keypair ~transport:(transport_for id)
        ~id config
    in
    Prime.Replica.set_on_execute r (fun ~exec_seq u ->
        applied.(id) := (exec_seq, u) :: !(applied.(id)));
    replicas.(id) <- r
  done;
  let c =
    {
      engine;
      trace;
      keystore;
      config;
      replicas;
      clients;
      drop = (fun ~src:_ ~dst:_ _ -> false);
      applied;
    }
  in
  cluster_ref := Some c;
  Array.iter Prime.Replica.start replicas;
  c

let add_client c name =
  let keypair = Crypto.Signature.generate c.keystore name in
  let send_to_replica ~dst msg =
    ignore
      (Sim.Engine.schedule c.engine ~delay:0.001 (fun () ->
           Prime.Replica.handle_message c.replicas.(dst) msg))
  in
  let session =
    Prime.Client.create ~engine:c.engine ~keystore:c.keystore ~keypair ~send_to_replica
      c.config
  in
  Hashtbl.replace c.clients name session;
  session

let exec_history c id =
  List.rev !(c.applied.(id)) |> List.map (fun (s, u) -> (s, Prime.Msg.Update.key u))

let run c ~until = Sim.Engine.run ~until c.engine

(* --- basic ordering ---------------------------------------------------- *)

let test_single_update_executes_everywhere () =
  let c = make_cluster () in
  let client = add_client c "hmi" in
  let confirmed_latency = ref None in
  Prime.Client.set_on_confirmed client (fun ~client_seq:_ ~latency ->
      confirmed_latency := Some latency);
  let seq = Prime.Client.submit ~targets:[ 0 ] client ~op:"open breaker B57" in
  run c ~until:2.0;
  Array.iteri
    (fun id _ ->
      check_int (Printf.sprintf "replica %d executed one" id) 1
        (List.length (exec_history c id)))
    c.replicas;
  check "client confirmed" true (Prime.Client.is_confirmed client ~client_seq:seq);
  match !confirmed_latency with
  | Some l -> check "latency under a second" true (l < 1.0)
  | None -> Alcotest.fail "no confirmation callback"

let test_updates_execute_in_identical_order () =
  let c = make_cluster () in
  let hmi = add_client c "hmi" in
  let proxy = add_client c "plc-proxy" in
  for i = 1 to 20 do
    ignore
      (Sim.Engine.schedule c.engine ~delay:(0.01 *. float_of_int i) (fun () ->
           ignore (Prime.Client.submit ~targets:[ i mod 4 ] hmi ~op:(Printf.sprintf "cmd-%d" i));
           ignore
             (Prime.Client.submit ~targets:[ (i + 1) mod 4 ] proxy
                ~op:(Printf.sprintf "status-%d" i))))
  done;
  run c ~until:5.0;
  let reference = exec_history c 0 in
  check_int "all 40 executed" 40 (List.length reference);
  for id = 1 to 3 do
    Alcotest.(check (list (pair int (pair string int))))
      (Printf.sprintf "replica %d matches replica 0" id)
      reference (exec_history c id)
  done

let test_duplicate_submission_executes_once () =
  (* The client submits to every replica (each becomes an origin for the
     same update); client-seq dedup must yield exactly one execution. *)
  let c = make_cluster () in
  let client = add_client c "hmi" in
  ignore (Prime.Client.submit client ~op:"flip");
  run c ~until:2.0;
  Array.iteri
    (fun id _ ->
      check_int (Printf.sprintf "replica %d applied once" id) 1
        (List.length (exec_history c id)))
    c.replicas

let test_bad_client_signature_rejected () =
  let c = make_cluster () in
  (* A client whose key is not in the deployment keystore. *)
  let rogue_store = Crypto.Signature.create_keystore () in
  let rogue_kp = Crypto.Signature.generate rogue_store "rogue" in
  let u = Prime.Msg.Update.create ~keypair:rogue_kp ~client_seq:1 ~op:"open all breakers" in
  Prime.Replica.handle_message c.replicas.(0) (Prime.Msg.Update_msg u);
  run c ~until:2.0;
  check_int "nothing executed" 0 (List.length (exec_history c 0));
  check_int "bad signature counted" 1
    (Sim.Stats.Counter.get (Prime.Replica.counters c.replicas.(0)) "update.bad_sig")

(* --- leader failures ----------------------------------------------------- *)

let test_leader_crash_triggers_view_change () =
  let c = make_cluster () in
  let client = add_client c "hmi" in
  Prime.Replica.set_misbehavior c.replicas.(0) Prime.Replica.Crash_silent;
  let seq = Prime.Client.submit ~targets:[ 1 ] client ~op:"cmd-under-crash" in
  run c ~until:10.0;
  check "view advanced" true (Prime.Replica.view c.replicas.(1) > 0);
  check "update executed despite crashed leader" true
    (Prime.Client.is_confirmed client ~client_seq:seq);
  check_int "correct replicas executed it" 1 (List.length (exec_history c 1))

let test_slow_leader_within_bound_no_view_change () =
  let config = Prime.Config.create ~f:1 ~k:0 ~tat_allowance:0.4 () in
  let c = make_cluster ~config () in
  let client = add_client c "hmi" in
  Prime.Replica.set_misbehavior c.replicas.(0) (Prime.Replica.Slow_leader 0.15);
  let latencies = ref [] in
  Prime.Client.set_on_confirmed client (fun ~client_seq:_ ~latency ->
      latencies := latency :: !latencies);
  for i = 1 to 5 do
    ignore
      (Sim.Engine.schedule c.engine ~delay:(0.5 *. float_of_int i) (fun () ->
           ignore (Prime.Client.submit ~targets:[ 1 ] client ~op:(Printf.sprintf "c%d" i))))
  done;
  run c ~until:8.0;
  check_int "all confirmed" 5 (List.length !latencies);
  check_int "no view change" 0 (Prime.Replica.view c.replicas.(1));
  (* Latency is inflated by the leader's delay but still bounded. *)
  List.iter (fun l -> check "bounded" true (l < 1.0)) !latencies

let test_slow_leader_beyond_bound_replaced () =
  let config = Prime.Config.create ~f:1 ~k:0 ~tat_allowance:0.2 () in
  let c = make_cluster ~config () in
  let client = add_client c "hmi" in
  Prime.Replica.set_misbehavior c.replicas.(0) (Prime.Replica.Slow_leader 1.5);
  let seq = Prime.Client.submit ~targets:[ 1 ] client ~op:"c1" in
  run c ~until:15.0;
  check "view changed" true (Prime.Replica.view c.replicas.(1) > 0);
  check "update executed under new leader" true (Prime.Client.is_confirmed client ~client_seq:seq)

let test_censoring_leader_replaced () =
  let config = Prime.Config.create ~f:1 ~k:0 ~tat_allowance:0.2 () in
  let c = make_cluster ~config () in
  let client = add_client c "hmi" in
  (* Leader suppresses origin 2's summaries from its matrices. *)
  Prime.Replica.set_misbehavior c.replicas.(0) (Prime.Replica.Censor_origin 2);
  let seq = Prime.Client.submit ~targets:[ 2 ] client ~op:"censored-cmd" in
  run c ~until:15.0;
  check "view changed to evict censor" true (Prime.Replica.view c.replicas.(2) > 0);
  check "censored client's update executed" true
    (Prime.Client.is_confirmed client ~client_seq:seq)

(* --- replica failures ------------------------------------------------------ *)

let test_non_leader_crash_tolerated () =
  let c = make_cluster () in
  let client = add_client c "hmi" in
  Prime.Replica.shutdown c.replicas.(3);
  let seq = Prime.Client.submit ~targets:[ 0 ] client ~op:"with-one-down" in
  run c ~until:3.0;
  check "confirmed with 3 of 4" true (Prime.Client.is_confirmed client ~client_seq:seq);
  check_int "view stable" 0 (Prime.Replica.view c.replicas.(0))

let test_too_many_failures_block_progress_safely () =
  let c = make_cluster () in
  let client = add_client c "hmi" in
  Prime.Replica.shutdown c.replicas.(2);
  Prime.Replica.shutdown c.replicas.(3);
  let seq = Prime.Client.submit ~targets:[ 0 ] client ~op:"blocked" in
  run c ~until:10.0;
  (* Safety over liveness: nothing executes below quorum. *)
  check "not confirmed" false (Prime.Client.is_confirmed client ~client_seq:seq);
  check_int "replica 0 executed nothing" 0 (List.length (exec_history c 0));
  (* Progress resumes when a replica returns. *)
  Prime.Replica.start c.replicas.(2);
  run c ~until:20.0;
  check "confirmed after recovery" true (Prime.Client.is_confirmed client ~client_seq:seq)

let test_six_replica_power_plant_config () =
  (* f=1, k=1: six replicas keep working with one crashed (recovering)
     and one byzantine-silent replica at the same time. *)
  let config = Prime.Config.power_plant () in
  let c = make_cluster ~config () in
  let client = add_client c "hmi" in
  Prime.Replica.shutdown c.replicas.(5) (* proactive recovery in progress *);
  Prime.Replica.set_misbehavior c.replicas.(4) Prime.Replica.Crash_silent (* intruded *);
  let seq = Prime.Client.submit ~targets:[ 1 ] client ~op:"plant-cmd" in
  run c ~until:5.0;
  check "confirmed with one recovery + one intrusion" true
    (Prime.Client.is_confirmed client ~client_seq:seq)

(* --- reconciliation ---------------------------------------------------------- *)

let test_reconciliation_fetches_missing_bodies () =
  let c = make_cluster () in
  let client = add_client c "hmi" in
  (* Replica 3 never receives PO-Requests from replica 0: it will learn of
     the updates through summaries/pre-prepares and must reconcile. *)
  c.drop <-
    (fun ~src ~dst msg ->
      match msg with Prime.Msg.Po_request _ -> src = 0 && dst = 3 | _ -> false);
  let seq = Prime.Client.submit ~targets:[ 0 ] client ~op:"needs-recon" in
  run c ~until:5.0;
  check "confirmed" true (Prime.Client.is_confirmed client ~client_seq:seq);
  check_int "replica 3 executed via reconciliation" 1 (List.length (exec_history c 3));
  check "replica 3 requested missing bodies" true
    (Sim.Stats.Counter.get (Prime.Replica.counters c.replicas.(3)) "recon.requested" > 0)

(* --- catchup / state transfer -------------------------------------------------- *)

let test_catchup_after_downtime () =
  let c = make_cluster () in
  let client = add_client c "hmi" in
  Prime.Replica.shutdown c.replicas.(3);
  for i = 1 to 10 do
    ignore
      (Sim.Engine.schedule c.engine ~delay:(0.2 *. float_of_int i) (fun () ->
           ignore (Prime.Client.submit ~targets:[ 0 ] client ~op:(Printf.sprintf "cmd%d" i))))
  done;
  run c ~until:5.0;
  check_int "replica 3 missed everything" 0 (List.length (exec_history c 3));
  Prime.Replica.start c.replicas.(3);
  (* New traffic makes the gap visible and catchup closes it. *)
  for i = 11 to 14 do
    ignore
      (Sim.Engine.schedule c.engine ~delay:(6.0 +. (0.2 *. float_of_int (i - 10))) (fun () ->
           ignore (Prime.Client.submit ~targets:[ 0 ] client ~op:(Printf.sprintf "cmd%d" i))))
  done;
  run c ~until:20.0;
  check "replica 3 caught up" true (Prime.Replica.exec_seq c.replicas.(3) >= 14);
  check "catchup applied entries" true
    (Sim.Stats.Counter.get (Prime.Replica.counters c.replicas.(3)) "catchup.applied" > 0)

let test_app_state_transfer_signal_when_behind_log () =
  (* Tiny retention forces the replication level to give up and signal the
     application — the paper's Section III-A interaction. *)
  let config = Prime.Config.create ~f:1 ~k:0 ~log_retention:5 () in
  let c = make_cluster ~config () in
  let client = add_client c "hmi" in
  let signalled = ref false in
  Prime.Replica.set_app c.replicas.(3)
    {
      Prime.Replica.apply = (fun ~exec_seq:_ _ -> ());
      state_transfer_needed =
        (fun () ->
          signalled := true;
          (* The application performs its own transfer out-of-band and
             reports completion with a checkpoint from a correct peer. *)
          let next_exec_pp, exec_seq, cursor, client_seqs =
            Prime.Replica.order_state c.replicas.(0)
          in
          Prime.Replica.install_app_checkpoint c.replicas.(3) ~next_exec_pp ~exec_seq
            ~cursor ~client_seqs);
    };
  Prime.Replica.shutdown c.replicas.(3);
  for i = 1 to 30 do
    ignore
      (Sim.Engine.schedule c.engine ~delay:(0.2 *. float_of_int i) (fun () ->
           ignore (Prime.Client.submit ~targets:[ 0 ] client ~op:(Printf.sprintf "cmd%d" i))))
  done;
  run c ~until:10.0;
  (* Proactive recovery brings the replica back with wiped state; by now
     the others' logs no longer retain the missed range. *)
  Prime.Replica.restart_clean c.replicas.(3);
  for i = 31 to 36 do
    ignore
      (Sim.Engine.schedule c.engine ~delay:(11.0 +. (0.2 *. float_of_int (i - 30))) (fun () ->
           ignore (Prime.Client.submit ~targets:[ 0 ] client ~op:(Printf.sprintf "cmd%d" i))))
  done;
  run c ~until:30.0;
  check "application-level transfer was signalled" true !signalled;
  (* After the checkpoint, the replica follows new traffic again. *)
  let before = Prime.Replica.exec_seq c.replicas.(3) in
  ignore
    (Sim.Engine.schedule c.engine ~delay:0.1 (fun () ->
         ignore (Prime.Client.submit ~targets:[ 0 ] client ~op:"after-transfer")));
  run c ~until:35.0;
  check "executes after transfer" true (Prime.Replica.exec_seq c.replicas.(3) > before)

(* --- config ---------------------------------------------------------------------- *)

let test_config_sizing () =
  let c4 = Prime.Config.red_team () in
  check_int "red team n" 4 c4.Prime.Config.n;
  check_int "red team quorum" 3 c4.Prime.Config.quorum;
  let c6 = Prime.Config.power_plant () in
  check_int "plant n" 6 c6.Prime.Config.n;
  check_int "plant quorum" 4 c6.Prime.Config.quorum;
  let big = Prime.Config.create ~f:2 ~k:2 () in
  check_int "f=2 k=2 n" 11 big.Prime.Config.n;
  Alcotest.check_raises "f=0 rejected" (Invalid_argument "Config.create: f must be >= 1")
    (fun () -> ignore (Prime.Config.create ~f:0 ()))

(* --- safety property --------------------------------------------------------------- *)

let prop_replicas_agree_on_execution_order =
  QCheck.Test.make ~count:15 ~name:"replicas execute identical sequences under random load"
    QCheck.(pair (int_bound 1000) (int_range 5 25))
    (fun (seed, n_updates) ->
      let c = make_cluster ~seed:(Int64.of_int (seed + 1)) () in
      let client = add_client c "gen" in
      let rng = Sim.Rng.create (Int64.of_int (seed + 77)) in
      for _ = 1 to n_updates do
        let delay = Sim.Rng.float rng 2.0 in
        let target = Sim.Rng.int rng 4 in
        ignore
          (Sim.Engine.schedule c.engine ~delay (fun () ->
               ignore
                 (Prime.Client.submit ~targets:[ target ] client
                    ~op:(Printf.sprintf "op-%f" delay))))
      done;
      run c ~until:10.0;
      let reference = exec_history c 0 in
      List.length reference = n_updates
      && List.for_all (fun id -> exec_history c id = reference) [ 1; 2; 3 ])


let test_equivocating_leader_safety () =
  (* A fully Byzantine leader (with its key) sends conflicting
     pre-prepares to different halves of the cluster. Safety must hold:
     no two replicas execute different updates at the same position; the
     suspect-leader protocol eventually evicts it and liveness returns. *)
  let config = Prime.Config.create ~f:1 ~k:0 ~tat_allowance:0.3 () in
  let c = make_cluster ~config () in
  let client = add_client c "hmi" in
  Prime.Replica.set_misbehavior c.replicas.(0) Prime.Replica.Equivocate;
  for i = 1 to 10 do
    ignore
      (Sim.Engine.schedule c.engine ~delay:(0.3 *. float_of_int i) (fun () ->
           ignore (Prime.Client.submit ~targets:[ 1 ] client ~op:(Printf.sprintf "eq-%d" i))))
  done;
  run c ~until:20.0;
  (* Liveness restored under the new leader. *)
  check "view changed to evict equivocator" true (Prime.Replica.view c.replicas.(1) > 0);
  check_int "all updates executed" 10 (List.length (exec_history c 1));
  (* Safety: correct replicas hold identical execution prefixes. *)
  let reference = exec_history c 1 in
  List.iter
    (fun id ->
      let h = exec_history c id in
      let rec prefix_consistent a b =
        match (a, b) with
        | [], _ | _, [] -> true
        | x :: a, y :: b -> x = y && prefix_consistent a b
      in
      check (Printf.sprintf "replica %d prefix-consistent" id) true
        (prefix_consistent reference h))
    [ 2; 3 ]


(* Shared body of the lossy-network property and its named regression
   replays: drop [loss_pct]% of protocol messages until t=10, heal, and
   require full convergence by t=90. *)
let lossy_run_converges (seed, loss_pct) =
  let c = make_cluster ~seed:(Int64.of_int (seed + 31)) () in
  let drop_rng = Sim.Rng.create (Int64.of_int (seed + 131)) in
  (* Drop [loss_pct]% of every protocol message, uniformly. *)
  c.drop <- (fun ~src:_ ~dst:_ _ -> Sim.Rng.int drop_rng 100 < loss_pct);
  let client = add_client c "gen" in
  Prime.Client.enable_retransmit client ~period:0.5;
  for i = 1 to 10 do
    ignore
      (Sim.Engine.schedule c.engine ~delay:(0.2 *. float_of_int i) (fun () ->
           ignore (Prime.Client.submit ~targets:[ i mod 4 ] client ~op:(Printf.sprintf "l-%d" i))))
  done;
  (* Heal the network, then leave a generous convergence window: a
     bad drop pattern can trigger view changes whose recovery takes
     well past the heal point (e.g. seed 152 at 18% loss needed more
     than the 20s this test originally allowed). The property is
     that drops heal with no divergence, not that they heal fast. *)
  ignore
    (Sim.Engine.schedule c.engine ~delay:10.0 (fun () ->
         c.drop <- (fun ~src:_ ~dst:_ _ -> false)));
  run c ~until:90.0;
  (* Safety: identical execution logs; liveness: everything landed. *)
  let reference = exec_history c 0 in
  List.length reference = 10
  && List.for_all (fun id -> exec_history c id = reference) [ 1; 2; 3 ]

let prop_safety_under_lossy_network =
  QCheck.Test.make ~count:10
    ~name:"replicas stay consistent over a lossy network (drops heal, no divergence)"
    QCheck.(pair (int_bound 1000) (int_range 5 20))
    lossy_run_converges

(* Named replays of inputs that stalled before the healed-network
   retransmission fix (commit certificates + view-change gap filling +
   vc-report retransmission): 35/10 wedged with every replica counting
   the client's retransmissions as duplicates while laggards could never
   complete their commit quorums; 870/17 wedged on a post-view-change
   pp-sequence gap that no one could ever order. Each case was validated
   to fail against the pre-fix code. *)
let test_lossy_regression_35_10 () =
  check "seed 35 at 10% loss converges after heal" true (lossy_run_converges (35, 10))

let test_lossy_regression_870_17 () =
  check "seed 870 at 17% loss converges after heal" true (lossy_run_converges (870, 17))

(* --- verified-signature cache and batch signing ------------------------ *)

let test_sigcache_bound_and_hits () =
  let ks = Crypto.Signature.create_keystore () in
  let kp = Crypto.Signature.generate ks "replica-0" in
  let cache = Prime.Sigcache.create ~capacity:4 in
  let auth body = Crypto.Auth.sign kp body in
  let a0 = auth "m0" in
  check "first check verifies" true
    (Prime.Sigcache.check cache ks ~signer:"replica-0" "m0" a0 = `Valid);
  check "second check hits" true
    (Prime.Sigcache.check cache ks ~signer:"replica-0" "m0" a0 = `Hit);
  (* Push five more distinct triples through a capacity-4 cache: the
     size must never exceed the bound, and the oldest entry is evicted. *)
  for i = 1 to 5 do
    let body = Printf.sprintf "m%d" i in
    ignore (Prime.Sigcache.check cache ks ~signer:"replica-0" body (auth body));
    check (Printf.sprintf "bound holds after %d" i) true (Prime.Sigcache.size cache <= 4)
  done;
  check "oldest evicted, re-verifies" true
    (Prime.Sigcache.check cache ks ~signer:"replica-0" "m0" a0 = `Valid);
  (* Capacity 0 disables caching entirely. *)
  let off = Prime.Sigcache.create ~capacity:0 in
  ignore (Prime.Sigcache.check off ks ~signer:"replica-0" "m0" a0);
  check "disabled cache stays empty" true (Prime.Sigcache.size off = 0);
  check "disabled cache never hits" true
    (Prime.Sigcache.check off ks ~signer:"replica-0" "m0" a0 = `Valid)

let test_sigcache_never_accepts_forgery () =
  let ks = Crypto.Signature.create_keystore () in
  let kp = Crypto.Signature.generate ks "replica-0" in
  let cache = Prime.Sigcache.create ~capacity:16 in
  let forged = Crypto.Auth.forge ~signer:"replica-0" "open breaker" in
  check "forged auth invalid" true
    (Prime.Sigcache.check cache ks ~signer:"replica-0" "open breaker" forged = `Invalid);
  check "forgery does not populate" true (Prime.Sigcache.size cache = 0);
  (* A valid signature over the same body must not be confused with the
     forged tag, and vice versa after caching the valid one. *)
  let good = Crypto.Auth.sign kp "open breaker" in
  check "valid after forgery" true
    (Prime.Sigcache.check cache ks ~signer:"replica-0" "open breaker" good = `Valid);
  check "forged still invalid after valid cached" true
    (Prime.Sigcache.check cache ks ~signer:"replica-0" "open breaker" forged = `Invalid);
  let forged_sig = Crypto.Signature.forge ~signer:"replica-0" "x" in
  check "forged bare signature invalid" true
    (Prime.Sigcache.check_signature cache ks ~signer:"replica-0" "x" forged_sig = `Invalid)

let crypto_counter c name =
  Array.fold_left
    (fun acc r -> acc + Sim.Stats.Counter.get (Prime.Replica.counters r) name)
    0 c.replicas

let test_batch_signing_orders_and_amortizes () =
  (* Under batch signing the protocol must stay correct AND actually
     amortize: multi-message flushes and cache hits both observed. *)
  let config = Prime.Config.create ~f:1 ~k:0 ~batch_window:0.005 () in
  let c = make_cluster ~config () in
  let client = add_client c "hmi" in
  for i = 1 to 30 do
    ignore
      (Sim.Engine.schedule c.engine ~delay:(0.005 *. float_of_int i) (fun () ->
           ignore (Prime.Client.submit ~targets:[ i mod 4 ] client ~op:(Printf.sprintf "b-%d" i))))
  done;
  run c ~until:5.0;
  let reference = exec_history c 0 in
  check_int "all executed" 30 (List.length reference);
  for id = 1 to 3 do
    Alcotest.(check (list (pair int (pair string int))))
      (Printf.sprintf "replica %d matches replica 0" id)
      reference (exec_history c id)
  done;
  check "multi-message batches occurred" true
    (crypto_counter c "crypto.batch_msgs" > crypto_counter c "crypto.batch_flush");
  check "cache hits occurred" true (crypto_counter c "crypto.cache_hit" > 0);
  (* Each multi-message flush costs one signature, so signatures saved
     relative to sign-per-message is exactly batch_msgs - batch_flush. *)
  let saved = crypto_counter c "crypto.batch_msgs" - crypto_counter c "crypto.batch_flush" in
  check "batching saved signatures" true (saved > 0)

let test_batching_disabled_still_orders () =
  let config = Prime.Config.create ~f:1 ~k:0 ~batch_signing:false ~sig_cache_capacity:0 () in
  let c = make_cluster ~config () in
  let client = add_client c "hmi" in
  for i = 1 to 10 do
    ignore
      (Sim.Engine.schedule c.engine ~delay:(0.01 *. float_of_int i) (fun () ->
           ignore (Prime.Client.submit ~targets:[ i mod 4 ] client ~op:(Printf.sprintf "d-%d" i))))
  done;
  run c ~until:5.0;
  check_int "all executed" 10 (List.length (exec_history c 0));
  check_int "no cache hits when disabled" 0 (crypto_counter c "crypto.cache_hit");
  check_int "no batch flushes when disabled" 0 (crypto_counter c "crypto.batch_flush")

let suite =
  [
    ("single update executes everywhere", `Quick, test_single_update_executes_everywhere);
    ("equivocating leader: safety holds", `Quick, test_equivocating_leader_safety);
    ("identical execution order", `Quick, test_updates_execute_in_identical_order);
    ("duplicate submission executes once", `Quick, test_duplicate_submission_executes_once);
    ("bad client signature rejected", `Quick, test_bad_client_signature_rejected);
    ("leader crash triggers view change", `Quick, test_leader_crash_triggers_view_change);
    ("slow leader within bound", `Quick, test_slow_leader_within_bound_no_view_change);
    ("slow leader beyond bound replaced", `Quick, test_slow_leader_beyond_bound_replaced);
    ("censoring leader replaced", `Quick, test_censoring_leader_replaced);
    ("non-leader crash tolerated", `Quick, test_non_leader_crash_tolerated);
    ("too many failures block safely", `Quick, test_too_many_failures_block_progress_safely);
    ("six replica power plant config", `Quick, test_six_replica_power_plant_config);
    ("reconciliation fetches missing bodies", `Quick, test_reconciliation_fetches_missing_bodies);
    ("catchup after downtime", `Quick, test_catchup_after_downtime);
    ("app state transfer when behind log", `Quick, test_app_state_transfer_signal_when_behind_log);
    ("config sizing", `Quick, test_config_sizing);
    ("sigcache bound and hits", `Quick, test_sigcache_bound_and_hits);
    ("sigcache never accepts forgery", `Quick, test_sigcache_never_accepts_forgery);
    ("batch signing orders and amortizes", `Quick, test_batch_signing_orders_and_amortizes);
    ("batching disabled still orders", `Quick, test_batching_disabled_still_orders);
    ("lossy regression 35/10", `Slow, test_lossy_regression_35_10);
    ("lossy regression 870/17", `Slow, test_lossy_regression_870_17);
    QCheck_alcotest.to_alcotest prop_replicas_agree_on_execution_order;
    QCheck_alcotest.to_alcotest prop_safety_under_lossy_network;
  ]

let () = Alcotest.run "prime" [ ("prime", suite) ]
