(* Grid-physics co-simulation tests: DC-flow conservation, backend
   determinism, islanding, inverse-time protection, and the chi-square
   bad-data loop (false-positive control plus FDIA detection). *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* Hex-float rendering: byte-identical iff the solutions are. *)
let render_solution (s : Power.Model.solution) =
  let b = Buffer.create 256 in
  Array.iter (fun f -> Buffer.add_string b (Printf.sprintf "%h," f)) s.Power.Model.flows_mw;
  Array.iter (fun l -> Buffer.add_string b (if l then "1" else "0")) s.Power.Model.line_live;
  Array.iter (fun l -> Buffer.add_string b (if l then "1" else "0")) s.Power.Model.served;
  Buffer.add_string b
    (Printf.sprintf "|%h|%h|%h|%h|%d" s.Power.Model.served_mw s.Power.Model.shed_mw
       s.Power.Model.gen_mw s.Power.Model.frequency_hz s.Power.Model.n_islands);
  List.iter
    (fun (li, r) -> Buffer.add_string b (Printf.sprintf ";%d:%h" li r))
    s.Power.Model.overloads;
  Buffer.contents b

let solve_masked model ~open_mask ~tie_mask =
  Power.Model.solve model
    ~breaker_closed:(fun name ->
      (* Feeder gates are the sites' B00 breakers; bit i of [open_mask]
         opens site i's feeder. *)
      match String.index_opt name '/' with
      | Some i when String.length name - i = 4 && String.sub name (i + 1) 3 = "B00" ->
          let site = int_of_string (String.sub name 4 3) in
          open_mask land (1 lsl site) = 0
      | _ -> true)
    ~line_in_service:(fun li ->
      let line = model.Power.Model.lines.(li) in
      match line.Power.Model.gate with
      | Some _ -> true
      | None -> tie_mask land (1 lsl (li mod 60)) = 0)

let prop_conservation =
  QCheck.Test.make ~count:60 ~name:"solutions conserve injections"
    QCheck.(triple (int_range 1 8) (int_range 0 0xFF) (int_range 0 0xFFFF))
    (fun (sites, open_mask, tie_mask) ->
      let scenario = Plc.Power.synthetic ~devices:(20 * sites) () in
      let model = Power.Model.of_scenario scenario in
      let s = solve_masked model ~open_mask ~tie_mask in
      let total = Power.Model.total_demand_mw model in
      (* Lossless DC flow: generation matches served load exactly, and
         every megawatt is either served or accounted as shed. *)
      abs_float (s.Power.Model.gen_mw -. s.Power.Model.served_mw) <= 1e-6
      && abs_float (s.Power.Model.served_mw +. s.Power.Model.shed_mw -. total) <= 1e-6
      && Array.for_all2
           (fun live f -> live || abs_float f <= 1e-9)
           s.Power.Model.line_live s.Power.Model.flows_mw)

let prop_solution_deterministic =
  QCheck.Test.make ~count:40 ~name:"solutions are byte-identical across rebuilds"
    QCheck.(triple (int_range 1 6) (int_range 0 0xFF) (int_range 0 0xFFFF))
    (fun (sites, open_mask, tie_mask) ->
      let run () =
        let model = Power.Model.of_scenario (Plc.Power.synthetic ~devices:(20 * sites) ()) in
        render_solution (solve_masked model ~open_mask ~tie_mask)
      in
      String.equal (run ()) (run ()))

(* Co-simulate the two-corridor cascade on one engine backend and render
   every observable byte: trip log, shed log, analog image, end state. *)
let cascade_run backend =
  let engine = Sim.Engine.create ~seed:4242L ~backend () in
  let model = Power.Model.of_scenario (Plc.Power.synthetic ~devices:1000 ()) in
  let net = Power.Net.create ~engine model in
  let open_site s =
    Power.Net.set_breaker net (Printf.sprintf "SUB-%03d/B00" s) ~closed:false
  in
  ignore
    (Sim.Engine.schedule_at engine ~time:1.0 (fun () -> List.iter open_site [ 10; 11; 12 ]));
  ignore
    (Sim.Engine.schedule_at engine ~time:2.0 (fun () -> List.iter open_site [ 30; 31; 32 ]));
  Sim.Engine.run ~until:60.0 engine;
  let b = Buffer.create 1024 in
  List.iter
    (fun (t, line) -> Buffer.add_string b (Printf.sprintf "trip %h %s\n" t line))
    (Power.Net.trip_log net);
  List.iter
    (fun (t, load, mw) -> Buffer.add_string b (Printf.sprintf "shed %h %s %h\n" t load mw))
    (Power.Net.shed_log net);
  List.iter
    (fun (name, v) -> Buffer.add_string b (Printf.sprintf "%s=%d\n" name v))
    (Power.Net.all_analogs net);
  Buffer.add_string b
    (Printf.sprintf "end %h %h %h %d\n" (Power.Net.served_mw net) (Power.Net.shed_mw net)
       (Power.Net.frequency_hz net) (Power.Net.tripped_lines net));
  Buffer.contents b

let test_cascade_deterministic_across_backends () =
  let heap = cascade_run `Heap in
  let wheel = cascade_run `Wheel in
  check "heap run is non-trivial" true (String.length heap > 100);
  check "at least four trips" true
    (List.length (String.split_on_char '\n' heap |> List.filter (fun l ->
         String.length l > 4 && String.sub l 0 4 = "trip")) >= 4);
  check_str "heap and wheel runs byte-identical" heap wheel;
  check_str "same-seed rerun byte-identical" heap (cascade_run `Heap)

let test_islanding_sheds_load () =
  let model = Power.Model.of_scenario (Plc.Power.synthetic ~devices:60 ()) in
  (* Open site 1's feeder and take both its ring ties out of service:
     the island is dark, its load shed, everyone else untouched. *)
  let s =
    Power.Model.solve model
      ~breaker_closed:(fun name -> not (String.equal name "SUB-001/B00"))
      ~line_in_service:(fun li ->
        let line = model.Power.Model.lines.(li) in
        match line.Power.Model.gate with
        | Some _ -> true
        | None ->
            let b1 = model.Power.Model.buses.(line.Power.Model.from_bus).Power.Model.bus_name in
            let b2 = model.Power.Model.buses.(line.Power.Model.to_bus).Power.Model.bus_name in
            (not (String.equal b1 "SUB-001/B00")) && not (String.equal b2 "SUB-001/B00"))
  in
  let shed_load =
    Array.to_list model.Power.Model.loads
    |> List.filter (fun (l : Power.Model.load) -> not s.Power.Model.served.(l.Power.Model.load_index))
  in
  check_int "exactly site 1's load is dark" 1 (List.length shed_load);
  (match shed_load with
  | [ l ] ->
      check_str "the dark load is site 1's" "SUB-001-substation" l.Power.Model.load_name;
      check "shed accounting matches the dark demand" true
        (abs_float (s.Power.Model.shed_mw -. l.Power.Model.demand_mw) <= 1e-9)
  | _ -> Alcotest.fail "expected one dark load");
  check "balance holds with the island dark" true
    (abs_float (s.Power.Model.gen_mw -. s.Power.Model.served_mw) <= 1e-6)

let test_inverse_time_trip_delay () =
  let scenario = Plc.Power.synthetic ~devices:1000 () in
  let model = Power.Model.of_scenario scenario in
  (* Expected first trip straight from the inverse-time formula applied
     to the post-contingency solution. *)
  let opened = [ "SUB-010/B00"; "SUB-011/B00"; "SUB-012/B00" ] in
  let s0 =
    Power.Model.solve model
      ~breaker_closed:(fun n -> not (List.mem n opened))
      ~line_in_service:(fun _ -> true)
  in
  check "the contingency overloads at least one tie" true (s0.Power.Model.overloads <> []);
  let expected_line, expected_time =
    List.fold_left
      (fun (bl, bt) (li, ratio) ->
        let delay = Float.min 30.0 (Float.max 1.0 (5.0 /. (ratio -. 1.0))) in
        let t = 1.0 +. delay in
        if t < bt then (model.Power.Model.lines.(li).Power.Model.line_name, t) else (bl, bt))
      ("", infinity) s0.Power.Model.overloads
  in
  let engine = Sim.Engine.create ~seed:1L () in
  let net = Power.Net.create ~engine model in
  ignore
    (Sim.Engine.schedule_at engine ~time:1.0 (fun () ->
         List.iter (fun b -> Power.Net.set_breaker net b ~closed:false) opened));
  Sim.Engine.run ~until:40.0 engine;
  (match Power.Net.trip_log net with
  | (t, line) :: _ ->
      check_str "first trip is the worst overload" expected_line line;
      check "first trip follows the inverse-time formula" true (abs_float (t -. expected_time) <= 1e-9)
  | [] -> Alcotest.fail "no trip recorded");
  check "the initial trip cascades" true (List.length (Power.Net.trip_log net) >= 2);
  check "the cascade sheds the islanded load" true (Power.Net.shed_mw net > 0.0)

let test_trip_cancelled_on_recovery () =
  let model = Power.Model.of_scenario (Plc.Power.synthetic ~devices:1000 ()) in
  let engine = Sim.Engine.create ~seed:1L () in
  let net = Power.Net.create ~engine model in
  let set c = List.iter (fun s ->
      Power.Net.set_breaker net (Printf.sprintf "SUB-%03d/B00" s) ~closed:c) [ 10; 11; 12 ]
  in
  ignore (Sim.Engine.schedule_at engine ~time:1.0 (fun () -> set false));
  (* Reclose well before the shortest pending trip delay expires. *)
  ignore (Sim.Engine.schedule_at engine ~time:2.0 (fun () -> set true));
  Sim.Engine.run ~until:60.0 engine;
  check_int "no trips after the overload cleared" 0 (List.length (Power.Net.trip_log net));
  check "nothing shed" true (Power.Net.shed_mw net = 0.0)

(* --- closed loop: deployment, telemetry, chi-square ---------------------- *)

let dnp3_everything scenario =
  List.map (fun (p : Plc.Power.plc_spec) -> p.Plc.Power.plc_name) scenario.Plc.Power.plcs

let test_chi2_false_positive_control () =
  let engine = Sim.Engine.create ~seed:11L () in
  let trace = Sim.Trace.create () in
  let config = Prime.Config.power_plant () in
  let scenario = Plc.Power.synthetic ~devices:100 () in
  let d =
    Spire.Deployment.create ~proxy_poll_period:0.1 ~dnp3_plcs:(dnp3_everything scenario)
      ~engine ~trace ~config scenario
  in
  let inv = Chaos.Invariant.create ~engine ~is_healthy:(fun () -> true) () in
  Chaos.Invariant.attach_power inv d;
  (* An honest breaker operation mid-run: position and analogs both
     re-report, so the estimator must stay quiet through the change. *)
  ignore
    (Sim.Engine.schedule_at engine ~time:3.0 (fun () ->
         match Spire.Deployment.find_breaker d "SUB-002/B00" with
         | Some (_, b) -> Plc.Breaker.force b Plc.Breaker.Open
         | None -> ()));
  Sim.Engine.run ~until:8.0 engine;
  check "estimator swept" true (Chaos.Invariant.estimator_sweeps inv > 0);
  (match Chaos.Invariant.estimator_last inv with
  | Some r ->
      check "honest telemetry is not flagged" false r.Chaos.Estimator.est_flagged;
      check "dof positive" true (r.Chaos.Estimator.est_dof > 0)
  | None -> Alcotest.fail "estimator produced no report");
  check_int "no violations on the honest run" 0 (List.length (Chaos.Invariant.violations inv));
  check "no fdia verdict" true (Chaos.Invariant.fdia_detected_at inv = None)

let test_fdia_detected_by_chi2_only () =
  let engine = Sim.Engine.create ~seed:11L () in
  let trace = Sim.Trace.create () in
  let config = Prime.Config.power_plant () in
  let scenario = Plc.Power.synthetic ~devices:100 () in
  let d =
    Spire.Deployment.create ~proxy_poll_period:0.1 ~dnp3_plcs:(dnp3_everything scenario)
      ~engine ~trace ~config scenario
  in
  let inv = Chaos.Invariant.create ~engine ~is_healthy:(fun () -> true) () in
  Chaos.Invariant.attach inv d;
  Chaos.Invariant.attach_power inv d;
  Sim.Engine.run ~until:5.0 engine;
  let fdia =
    match Attack.Fdia.launch d ~site:"SUB-002" with
    | Ok f -> f
    | Error e -> Alcotest.failf "launch: %s" e
  in
  Sim.Engine.run ~until:6.0 engine;
  check "analog image frozen after a poll" true (Attack.Fdia.frozen fdia);
  (match Attack.Fdia.force_open fdia d ~breaker:"SUB-002/B00" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "force_open: %s" e);
  Sim.Engine.run ~until:12.0 engine;
  (match Chaos.Invariant.fdia_detected_at inv with
  | Some t ->
      check "detected after the physical flip" true (t > 6.0);
      check "detected promptly" true (t < 8.0)
  | None -> Alcotest.fail "chi-square did not fire");
  (* The whole point: every breaker-state and physical invariant stays
     silent; only the bad-data detector sees the lie. *)
  List.iter
    (fun (v : Chaos.Invariant.violation) ->
      check_str "only bad-data violations" "bad-data" v.Chaos.Invariant.v_invariant)
    (Chaos.Invariant.violations inv);
  check "exactly one bad-data verdict" true
    (List.length (Chaos.Invariant.violations inv) = 1);
  (* The worst residual points at the attacked site's feeder. *)
  (match Chaos.Invariant.estimator_last inv with
  | Some r ->
      check_str "worst residual names the attacked feeder" "mw.SUB-002/B00"
        r.Chaos.Estimator.est_worst_point
  | None -> Alcotest.fail "no estimator report")

let test_cross_shard_feeds_read_unknown () =
  let scenario =
    {
      Plc.Power.scenario_name = "cross";
      plcs =
        [
          { Plc.Power.plc_name = "P0"; breaker_names = [ "X0"; "X1" ]; physical = false };
          { Plc.Power.plc_name = "P1"; breaker_names = [ "Y0" ]; physical = false };
        ];
      feeds =
        [
          { Plc.Power.load_name = "L-local"; path = [ "X0" ] };
          (* First path breaker on P0, second on P1: with 2 shards the
             feed lands in P0's shard but crosses into P1's. *)
          { Plc.Power.load_name = "L-cross"; path = [ "X1"; "Y0" ] };
        ];
    }
  in
  let map = Scada.Shard.create ~shards:2 scenario in
  let sub = Scada.Shard.sub_scenario map 0 in
  check "cross-shard feed owned by shard 0" true
    (List.exists
       (fun (f : Plc.Power.feed) -> String.equal f.Plc.Power.load_name "L-cross")
       sub.Plc.Power.feeds);
  let s = Scada.State.create sub in
  let tri name = List.assoc name (Scada.State.energized_tri s) in
  check "local feed energized" true (tri "L-local" = `Energized);
  (* The old boolean view read the foreign breaker conservatively open
     and reported the cross-shard load dark; the overview must say it
     cannot see that segment instead. *)
  check "cross-shard feed is unknown, not dark" true (tri "L-cross" = `Unknown);
  check "boolean view still conservative" true
    (List.assoc "L-cross" (Scada.State.energized s) = false);
  (* A known-open local breaker still proves dark. *)
  ignore
    (Scada.State.apply s ~exec_seq:1 (Scada.Op.Status { breaker = "X1"; closed = false }));
  check "known-open prefix proves de-energized" true (tri "L-cross" = `De_energized)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_conservation;
    QCheck_alcotest.to_alcotest prop_solution_deterministic;
    ("cascade deterministic across backends", `Quick, test_cascade_deterministic_across_backends);
    ("islanding sheds exactly the dark load", `Quick, test_islanding_sheds_load);
    ("inverse-time trip delay follows formula", `Quick, test_inverse_time_trip_delay);
    ("pending trip cancelled on recovery", `Quick, test_trip_cancelled_on_recovery);
    ("chi-square false-positive control", `Quick, test_chi2_false_positive_control);
    ("fdia detected by chi-square only", `Quick, test_fdia_detected_by_chi2_only);
    ("cross-shard feeds read unknown", `Quick, test_cross_shard_feeds_read_unknown);
  ]

let () = Alcotest.run "power" [ ("power", suite) ]
