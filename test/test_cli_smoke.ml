(* Smoke tests for the pieces the CLI builds on, checked at the library
   level (the CLI itself is exercised manually / in CI shell). These
   guard the configurations the CLI exposes: custom polling periods,
   custom recovery rotations, and the breach simulation's edge cases. *)

let check = Alcotest.(check bool)

let mini =
  {
    Plc.Power.scenario_name = "cli-mini";
    plcs = [ { Plc.Power.plc_name = "MAIN"; breaker_names = [ "B57" ]; physical = true } ];
    feeds = [];
  }

let test_custom_poll_period_configs () =
  (* The latency subcommand sweeps polling periods; very fast and very
     slow polls must both converge. *)
  List.iter
    (fun poll ->
      let engine = Sim.Engine.create () in
      let trace = Sim.Trace.create () in
      let config = Prime.Config.red_team () in
      let d =
        Spire.Deployment.create ~proxy_poll_period:poll ~engine ~trace ~config mini
      in
      Sim.Engine.run ~until:3.0 engine;
      let hmi = (Spire.Deployment.hmis d).(0).Spire.Deployment.h_hmi in
      check
        (Printf.sprintf "populated at poll=%.2f" poll)
        true
        (Scada.Hmi.displayed_closed hmi "B57" = Some true))
    [ 0.02; 1.0 ]

let test_zero_recovery_days_means_none () =
  (* The breach subcommand with --recovery-days 0 must never rotate. *)
  let engine = Sim.Engine.create () in
  let rng = Sim.Engine.split_rng engine in
  let v = Diversity.Variant.compile rng in
  let e = Diversity.Variant.Exploit.craft ~name:"x" v in
  check "exploit stable without recovery" true
    (Diversity.Variant.Exploit.works_against e v)

let test_short_rotation_rejected_when_invalid () =
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create () in
  let rng = Sim.Engine.split_rng engine in
  Alcotest.check_raises "downtime >= period rejected"
    (Invalid_argument "Recovery.create: rotation_period must exceed downtime") (fun () ->
      ignore
        (Diversity.Recovery.create ~engine ~trace ~rng ~n:6 ~rotation_period:10.0
           ~downtime:10.0
           ~take_down:(fun _ -> ())
           ~bring_up:(fun _ _ ~disk:_ -> ())
           ()))

let suite =
  [
    ("custom poll period configs", `Quick, test_custom_poll_period_configs);
    ("zero recovery days means none", `Quick, test_zero_recovery_days_means_none);
    ("invalid rotation rejected", `Quick, test_short_rotation_rejected_when_invalid);
  ]

let () = Alcotest.run "cli-smoke" [ ("cli-smoke", suite) ]
