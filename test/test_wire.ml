(* Tests for the binary wire codec: scalar round-trips, malformed-input
   rejection, and byte stability of every signed Prime body across two
   independent same-seed deployments (signature compatibility). *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* --- scalar round-trips ------------------------------------------------- *)

let test_scalar_roundtrips () =
  let enc = Wire.encode in
  let r =
    Wire.reader
      (enc (fun b ->
           Wire.w_u8 b 0;
           Wire.w_u8 b 255;
           Wire.w_u16 b 0xBEEF;
           Wire.w_u32 b 0xDEADBEEF;
           Wire.w_int b 0;
           Wire.w_int b (-1);
           Wire.w_int b max_int;
           Wire.w_int b min_int;
           Wire.w_bool b true;
           Wire.w_bool b false;
           Wire.w_str b "";
           Wire.w_str b "hello\x00world";
           Wire.w_int_array b [| 3; -4; 5 |]))
  in
  check_int "u8 lo" 0 (Wire.r_u8 r);
  check_int "u8 hi" 255 (Wire.r_u8 r);
  check_int "u16" 0xBEEF (Wire.r_u16 r);
  check_int "u32" 0xDEADBEEF (Wire.r_u32 r);
  check_int "int 0" 0 (Wire.r_int r);
  check_int "int -1" (-1) (Wire.r_int r);
  check_int "int max" max_int (Wire.r_int r);
  check_int "int min" min_int (Wire.r_int r);
  check "bool t" true (Wire.r_bool r);
  check "bool f" false (Wire.r_bool r);
  check_str "str empty" "" (Wire.r_str r);
  check_str "str nul" "hello\x00world" (Wire.r_str r);
  Alcotest.(check (array int)) "int array" [| 3; -4; 5 |] (Wire.r_int_array r);
  check "consumed" true (Wire.at_end r)

let test_digest_and_opt () =
  let d = Crypto.Sha256.digest "x" in
  let r =
    Wire.reader
      (Wire.encode (fun b ->
           Wire.w_digest b d;
           Wire.w_opt b Wire.w_str (Some "present");
           Wire.w_opt b Wire.w_str None))
  in
  check_str "digest raw 32 bytes" d (Wire.r_digest r);
  check "opt some" true (Wire.r_opt Wire.r_str r = Some "present");
  check "opt none" true (Wire.r_opt Wire.r_str r = None);
  check "consumed" true (Wire.at_end r)

let test_sub_reader_bounded_views () =
  (* Two length-prefixed records back to back; read each through a
     zero-copy sub-view. *)
  let rec_a = Wire.encode (fun e -> Wire.w_u16 e 7; Wire.w_str e "payload-a") in
  let rec_b = Wire.encode (fun e -> Wire.w_u16 e 8) in
  let blob =
    Wire.encode (fun b ->
        Wire.w_str b rec_a;
        Wire.w_str b rec_b;
        Wire.w_u8 b 0xAA)
  in
  let r = Wire.reader blob in
  let ra = Wire.r_str_reader r in
  check_int "sub-view sized to the field" (String.length rec_a) (Wire.remaining ra);
  check_int "first field" 7 (Wire.r_u16 ra);
  check_str "nested string" "payload-a" (Wire.r_str ra);
  check "sub-view consumed exactly" true (Wire.at_end ra);
  (* The sub-view is bounded: reading past its window raises even though
     the backing string has more bytes. *)
  Alcotest.check_raises "bounded past the window" Wire.Truncated (fun () ->
      ignore (Wire.r_u8 ra));
  (* The parent resumes after the window, independent of sub-view reads. *)
  let rb = Wire.r_str_reader r in
  check_int "second record" 8 (Wire.r_u16 rb);
  check_int "parent continues past both" 0xAA (Wire.r_u8 r);
  check "parent consumed" true (Wire.at_end r);
  (* A sub-view larger than what remains is refused up front. *)
  let short = Wire.reader (Wire.encode (fun b -> Wire.w_u32 b 1000)) in
  Alcotest.check_raises "oversized window refused" Wire.Truncated (fun () ->
      ignore (Wire.r_str_reader short));
  (* Equivalence: for any record, parsing through a sub-view reads the
     same bytes as parsing the copied-out string. *)
  let r1 = Wire.reader blob and r2 = Wire.reader blob in
  let via_view = Wire.r_str_reader r1 in
  let via_copy = Wire.reader (Wire.r_str r2) in
  check_int "same u16 either way" (Wire.r_u16 via_copy) (Wire.r_u16 via_view);
  check_str "same nested string" (Wire.r_str via_copy) (Wire.r_str via_view)

let test_malformed_rejected () =
  Alcotest.check_raises "u8 range" (Invalid_argument "Wire.w_u8: out of range") (fun () ->
      ignore (Wire.encode (fun b -> Wire.w_u8 b 256)));
  check "digest wrong length raises" true
    (match Wire.encode (fun b -> Wire.w_digest b "short") with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let truncated reads =
    match reads (Wire.reader "\x01") with exception Wire.Truncated -> true | _ -> false
  in
  check "r_u16 truncated" true (truncated Wire.r_u16);
  check "r_int truncated" true (truncated Wire.r_int);
  check "r_digest truncated" true (truncated Wire.r_digest);
  (* A length prefix pointing past the end must not read garbage. *)
  let huge_len = Wire.encode (fun b -> Wire.w_u32 b 1000) in
  check "r_str truncated" true
    (match Wire.r_str (Wire.reader (huge_len ^ "abc")) with
    | exception Wire.Truncated -> true
    | _ -> false)

let prop_int_roundtrip =
  QCheck.Test.make ~count:500 ~name:"w_int/r_int round-trips any int"
    QCheck.(oneof [ int; oneofl [ max_int; min_int; 0; -1; 1 ] ])
    (fun i -> Wire.r_int (Wire.reader (Wire.encode (fun b -> Wire.w_int b i))) = i)

let prop_composite_roundtrip =
  QCheck.Test.make ~count:300 ~name:"composite record round-trips"
    QCheck.(triple small_string (list small_int) bool)
    (fun (s, l, flag) ->
      let a = Array.of_list l in
      let bytes =
        Wire.encode (fun b ->
            Wire.w_str b s;
            Wire.w_int_array b a;
            Wire.w_bool b flag;
            Wire.w_opt b Wire.w_int (if flag then Some (List.length l) else None))
      in
      let r = Wire.reader bytes in
      let s' = Wire.r_str r in
      let a' = Wire.r_int_array r in
      let flag' = Wire.r_bool r in
      let o' = Wire.r_opt Wire.r_int r in
      Wire.at_end r && s' = s && a' = a && flag' = flag
      && o' = (if flag then Some (List.length l) else None))

(* --- byte stability across deployments ---------------------------------- *)

(* Two fully independent deployments (separate engines, keystores,
   replicas) driven by the same seed and workload must produce
   byte-identical canonical bodies for every signed message, in the same
   order: signatures made in one deployment verify in a rebuilt one. *)

let canonical_body = function
  | Prime.Msg.Update_msg u -> Some (Prime.Msg.Update.encode u)
  | Prime.Msg.Po_request { origin; po_seq; update; _ } ->
      Some (Prime.Msg.encode_po_request ~origin ~po_seq update)
  | Prime.Msg.Po_ack { acker; ack_origin; ack_po_seq; ack_digest; _ } ->
      Some
        (Prime.Msg.encode_po_ack ~acker ~origin:ack_origin ~po_seq:ack_po_seq
           ~digest:ack_digest)
  | Prime.Msg.Po_summary s -> Some (Prime.Msg.encode_summary s)
  | Prime.Msg.Pre_prepare { pp_view; pp_seq; pp_matrix; _ } ->
      Some (Prime.Msg.encode_pre_prepare ~view:pp_view ~pp_seq pp_matrix)
  | Prime.Msg.Prepare { prep_rep; prep_view; prep_seq; prep_digest; _ } ->
      Some
        (Prime.Msg.encode_prepare ~rep:prep_rep ~view:prep_view ~pp_seq:prep_seq
           ~digest:prep_digest)
  | Prime.Msg.Commit { com_rep; com_view; com_seq; com_digest; _ } ->
      Some
        (Prime.Msg.encode_commit ~rep:com_rep ~view:com_view ~pp_seq:com_seq
           ~digest:com_digest)
  | Prime.Msg.Suspect_leader { sus_rep; sus_view; _ } ->
      Some (Prime.Msg.encode_suspect ~rep:sus_rep ~view:sus_view)
  | Prime.Msg.Vc_report { vc_rep; vc_view; vc_max_ordered; vc_prepared; _ } ->
      Some
        (Prime.Msg.encode_vc_report ~rep:vc_rep ~view:vc_view ~max_ordered:vc_max_ordered
           ~prepared:vc_prepared)
  | Prime.Msg.Origin_reset { or_rep; or_new_start; _ } ->
      Some (Prime.Msg.encode_origin_reset ~rep:or_rep ~new_start:or_new_start)
  | Prime.Msg.Client_reply { crep_rep; crep_client; crep_client_seq; crep_exec_seq; _ } ->
      Some
        (Prime.Msg.encode_client_reply ~rep:crep_rep ~client:crep_client
           ~client_seq:crep_client_seq ~exec_seq:crep_exec_seq)
  | Prime.Msg.Recon_floor _ | Prime.Msg.Recon_request _ | Prime.Msg.Recon_reply _
  | Prime.Msg.Order_cert _ | Prime.Msg.Catchup_request _ | Prime.Msg.Catchup_reply _ ->
      None

let run_deployment ~seed =
  let engine = Sim.Engine.create ~seed () in
  (* Seed-derived delivery jitter: the schedule (and hence retransmits,
     summaries, and message interleaving) depends on the seed, which is
     what gives the divergence control below its teeth. *)
  let rng = Sim.Rng.create seed in
  let jitter () = 0.001 +. Sim.Rng.float rng 0.002 in
  let trace = Sim.Trace.create () in
  let keystore = Crypto.Signature.create_keystore () in
  let config = Prime.Config.create ~f:1 ~k:0 () in
  let n = config.Prime.Config.n in
  let replicas = Array.make n (Obj.magic 0) in
  let clients : (string, Prime.Client.t) Hashtbl.t = Hashtbl.create 8 in
  let log = Buffer.create 65536 in
  let record msg =
    match canonical_body msg with
    | Some body ->
        Wire.w_str log body (* length-prefixed, so the log is unambiguous *)
    | None -> ()
  in
  let deliver ~dst msg =
    record msg;
    ignore
      (Sim.Engine.schedule engine ~delay:(jitter ()) (fun () ->
           Prime.Replica.handle_message replicas.(dst) msg))
  in
  let transport_for id =
    {
      Prime.Replica.send = (fun ~dst msg -> deliver ~dst msg);
      broadcast =
        (fun msg ->
          for dst = 0 to n - 1 do
            if dst <> id then deliver ~dst msg
          done);
      reply_to_client =
        (fun ~client msg ->
          record msg;
          ignore
            (Sim.Engine.schedule engine ~delay:(jitter ()) (fun () ->
                 match Hashtbl.find_opt clients client with
                 | Some session -> Prime.Client.handle_reply session msg
                 | None -> ())));
    }
  in
  for id = 0 to n - 1 do
    let keypair = Crypto.Signature.generate keystore (Prime.Msg.replica_identity id) in
    replicas.(id) <-
      Prime.Replica.create ~engine ~trace ~keystore ~keypair ~transport:(transport_for id)
        ~id config
  done;
  Array.iter Prime.Replica.start replicas;
  let keypair = Crypto.Signature.generate keystore "hmi" in
  let send_to_replica ~dst msg =
    ignore
      (Sim.Engine.schedule engine ~delay:(jitter ()) (fun () ->
           Prime.Replica.handle_message replicas.(dst) msg))
  in
  let client =
    Prime.Client.create ~engine ~keystore ~keypair ~send_to_replica config
  in
  Hashtbl.replace clients "hmi" client;
  for i = 0 to 19 do
    ignore
      (Sim.Engine.schedule engine
         ~delay:(0.1 +. (0.05 *. float_of_int i))
         (fun () ->
           ignore (Prime.Client.submit client ~op:(Printf.sprintf "cmd-%d" i))))
  done;
  Sim.Engine.run ~until:5.0 engine;
  Buffer.contents log

let test_bodies_stable_across_deployments () =
  let a = run_deployment ~seed:424242L in
  let b = run_deployment ~seed:424242L in
  check "log nonempty" true (String.length a > 1000);
  check_int "same length" (String.length a) (String.length b);
  check "byte-identical signed bodies" true (String.equal a b)

let test_bodies_diverge_across_seeds () =
  (* Sanity check that the stability test has teeth: a different seed
     perturbs timing and therefore the message stream. *)
  let a = run_deployment ~seed:424242L in
  let b = run_deployment ~seed:424243L in
  check "different schedule, different stream" true (not (String.equal a b))

let suite =
  [
    ("scalar round-trips", `Quick, test_scalar_roundtrips);
    ("digest and option round-trips", `Quick, test_digest_and_opt);
    ("sub-reader bounded views", `Quick, test_sub_reader_bounded_views);
    ("malformed input rejected", `Quick, test_malformed_rejected);
    ("signed bodies byte-stable across deployments", `Quick, test_bodies_stable_across_deployments);
    ("streams diverge across seeds", `Quick, test_bodies_diverge_across_seeds);
    QCheck_alcotest.to_alcotest prop_int_roundtrip;
    QCheck_alcotest.to_alcotest prop_composite_roundtrip;
  ]

let () = Alcotest.run "wire" [ ("wire", suite) ]
