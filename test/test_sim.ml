(* Unit and property tests for the simulation substrate. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* --- Rng ------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Sim.Rng.create 42L and b = Sim.Rng.create 42L in
  for _ = 1 to 100 do
    check_int "same stream" (Sim.Rng.int a 1000) (Sim.Rng.int b 1000)
  done

let test_rng_split_independent () =
  let root = Sim.Rng.create 7L in
  let child = Sim.Rng.split root in
  (* Drawing from the child must not change the parent's stream relative to
     a parent that split but never used the child. *)
  let root' = Sim.Rng.create 7L in
  let _child' = Sim.Rng.split root' in
  for _ = 1 to 10 do
    ignore (Sim.Rng.int child 100)
  done;
  for _ = 1 to 50 do
    check_int "parent unaffected" (Sim.Rng.int root 1000) (Sim.Rng.int root' 1000)
  done

let test_rng_bounds () =
  let rng = Sim.Rng.create 3L in
  for _ = 1 to 10_000 do
    let v = Sim.Rng.int rng 7 in
    check "int in range" true (v >= 0 && v < 7);
    let f = Sim.Rng.float rng 2.5 in
    check "float in range" true (f >= 0.0 && f < 2.5)
  done

let test_rng_gaussian_moments () =
  let rng = Sim.Rng.create 11L in
  let s = Sim.Stats.Summary.create () in
  for _ = 1 to 20_000 do
    Sim.Stats.Summary.add s (Sim.Rng.gaussian rng ~mu:5.0 ~sigma:2.0)
  done;
  check "mean near mu" true (abs_float (Sim.Stats.Summary.mean s -. 5.0) < 0.1);
  check "sd near sigma" true (abs_float (Sim.Stats.Summary.stddev s -. 2.0) < 0.1)

let test_rng_exponential_mean () =
  let rng = Sim.Rng.create 13L in
  let s = Sim.Stats.Summary.create () in
  for _ = 1 to 20_000 do
    Sim.Stats.Summary.add s (Sim.Rng.exponential rng ~mean:0.5)
  done;
  check "mean near 0.5" true (abs_float (Sim.Stats.Summary.mean s -. 0.5) < 0.05)

let test_rng_shuffle_permutation () =
  let rng = Sim.Rng.create 17L in
  let arr = Array.init 20 (fun i -> i) in
  Sim.Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 20 (fun i -> i)) sorted

(* --- Heap ------------------------------------------------------------ *)

let test_heap_ordering () =
  let h = Sim.Heap.create () in
  let keys = [ 5.0; 1.0; 3.0; 2.0; 4.0; 0.5; 6.0 ] in
  List.iter (fun k -> Sim.Heap.push h ~key:k (int_of_float (k *. 10.0))) keys;
  let rec drain acc =
    match Sim.Heap.pop h with None -> List.rev acc | Some (k, _) -> drain (k :: acc)
  in
  Alcotest.(check (list (float 0.0)))
    "sorted" [ 0.5; 1.0; 2.0; 3.0; 4.0; 5.0; 6.0 ] (drain [])

let test_heap_fifo_ties () =
  let h = Sim.Heap.create () in
  List.iter (fun v -> Sim.Heap.push h ~key:1.0 v) [ "a"; "b"; "c" ];
  let next () = match Sim.Heap.pop h with Some (_, v) -> v | None -> "?" in
  Alcotest.(check string) "first" "a" (next ());
  Alcotest.(check string) "second" "b" (next ());
  Alcotest.(check string) "third" "c" (next ())

let test_heap_capacity () =
  let h = Sim.Heap.create ~capacity:100 () in
  check_int "lazy: no allocation before first push" 0 (Sim.Heap.capacity h);
  Sim.Heap.push h ~key:1.0 "x";
  check "first push allocates at least the hint" true (Sim.Heap.capacity h >= 100);
  let cap = Sim.Heap.capacity h in
  for i = 0 to 98 do
    Sim.Heap.push h ~key:(float_of_int i) "y"
  done;
  check_int "no growth within pre-sized capacity" cap (Sim.Heap.capacity h);
  Sim.Heap.push h ~key:0.5 "z";
  check "grows past the hint" true (Sim.Heap.capacity h > cap);
  check_int "all entries retained" 101 (Sim.Heap.length h);
  check "invalid capacity rejected" true
    (match Sim.Heap.create ~capacity:0 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_engine_hint () =
  let e = Sim.Engine.create ~hint:512 () in
  check_int "queue unallocated before use" 0 (Sim.Engine.queue_capacity e);
  ignore (Sim.Engine.schedule e ~delay:1.0 (fun () -> ()));
  check "queue pre-sized to hint" true (Sim.Engine.queue_capacity e >= 512);
  let cap = Sim.Engine.queue_capacity e in
  let fired = ref 0 in
  for i = 1 to 511 do
    ignore (Sim.Engine.schedule e ~delay:(float_of_int i) (fun () -> incr fired))
  done;
  check_int "no reallocation within hint" cap (Sim.Engine.queue_capacity e);
  Sim.Engine.run e;
  check_int "all events fired" 511 !fired;
  (* Tiny hints are clamped rather than rejected. *)
  let tiny = Sim.Engine.create ~hint:1 () in
  ignore (Sim.Engine.schedule tiny ~delay:1.0 (fun () -> ()));
  check "hint clamped to a sane floor" true (Sim.Engine.queue_capacity tiny >= 16)

let prop_heap_sorts =
  QCheck.Test.make ~count:200 ~name:"heap drains in sorted order"
    QCheck.(list (float_bound_exclusive 1000.0))
    (fun keys ->
      let h = Sim.Heap.create () in
      List.iter (fun k -> Sim.Heap.push h ~key:k ()) keys;
      let rec drain acc =
        match Sim.Heap.pop h with None -> List.rev acc | Some (k, ()) -> drain (k :: acc)
      in
      let drained = drain [] in
      drained = List.sort compare keys)

(* --- Engine ----------------------------------------------------------- *)

let test_engine_runs_in_time_order () =
  let e = Sim.Engine.create () in
  let order = ref [] in
  let note tag () = order := tag :: !order in
  ignore (Sim.Engine.schedule e ~delay:3.0 (note "c"));
  ignore (Sim.Engine.schedule e ~delay:1.0 (note "a"));
  ignore (Sim.Engine.schedule e ~delay:2.0 (note "b"));
  Sim.Engine.run e;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !order);
  check_float "clock at last event" 3.0 (Sim.Engine.now e)

let test_engine_cancel () =
  let e = Sim.Engine.create () in
  let fired = ref false in
  let id = Sim.Engine.schedule e ~delay:1.0 (fun () -> fired := true) in
  Sim.Engine.cancel e id;
  Sim.Engine.run e;
  check "cancelled event does not fire" false !fired

let test_engine_cancel_after_execution_no_leak () =
  (* Regression: cancelling an id whose event already ran used to leave a
     permanent entry in the cancellation table. *)
  let e = Sim.Engine.create () in
  let id = Sim.Engine.schedule e ~delay:1.0 (fun () -> ()) in
  Sim.Engine.run e;
  Sim.Engine.cancel e id;
  check_int "no backlog after cancelling executed event" 0 (Sim.Engine.cancelled_backlog e)

let test_engine_double_cancel_no_leak () =
  let e = Sim.Engine.create () in
  let fired = ref false in
  let id = Sim.Engine.schedule e ~delay:1.0 (fun () -> fired := true) in
  Sim.Engine.cancel e id;
  Sim.Engine.cancel e id;
  check_int "one pending cancellation" 1 (Sim.Engine.cancelled_backlog e);
  Sim.Engine.run e;
  check "still cancelled" false !fired;
  check_int "backlog drained when popped" 0 (Sim.Engine.cancelled_backlog e);
  (* A third cancel, after the slot was consumed, must not re-insert. *)
  Sim.Engine.cancel e id;
  check_int "no backlog after late cancel" 0 (Sim.Engine.cancelled_backlog e)

let test_engine_cancel_timer_no_leak () =
  (* cancel_timer targets the next pending occurrence, so the entry is
     consumed when that occurrence pops. *)
  let e = Sim.Engine.create () in
  let timer = Sim.Engine.every e ~period:1.0 (fun () -> ()) in
  Sim.Engine.run ~until:5.5 e;
  Sim.Engine.cancel_timer e timer;
  Sim.Engine.cancel_timer e timer;
  Sim.Engine.run ~until:10.0 e;
  check_int "timer cancellation fully drained" 0 (Sim.Engine.cancelled_backlog e)

let test_engine_nested_schedule () =
  let e = Sim.Engine.create () in
  let times = ref [] in
  ignore
    (Sim.Engine.schedule e ~delay:1.0 (fun () ->
         times := Sim.Engine.now e :: !times;
         ignore
           (Sim.Engine.schedule e ~delay:0.5 (fun () ->
                times := Sim.Engine.now e :: !times))));
  Sim.Engine.run e;
  Alcotest.(check (list (float 1e-9))) "nested times" [ 1.0; 1.5 ] (List.rev !times)

let test_engine_until_horizon () =
  let e = Sim.Engine.create () in
  let fired = ref 0 in
  ignore (Sim.Engine.schedule e ~delay:1.0 (fun () -> incr fired));
  ignore (Sim.Engine.schedule e ~delay:10.0 (fun () -> incr fired));
  Sim.Engine.run ~until:5.0 e;
  check_int "only events before horizon" 1 !fired;
  check_float "clock advanced to horizon" 5.0 (Sim.Engine.now e);
  Sim.Engine.run e;
  check_int "remaining event runs" 2 !fired

let test_engine_periodic_timer () =
  let e = Sim.Engine.create () in
  let count = ref 0 in
  let timer = Sim.Engine.every e ~period:1.0 (fun () -> incr count) in
  Sim.Engine.run ~until:5.5 e;
  check_int "five periods" 5 !count;
  Sim.Engine.cancel_timer e timer;
  Sim.Engine.run ~until:10.0 e;
  check_int "no more after cancel" 5 !count

let test_engine_stop () =
  let e = Sim.Engine.create () in
  let count = ref 0 in
  ignore
    (Sim.Engine.schedule e ~delay:1.0 (fun () ->
         incr count;
         Sim.Engine.stop e));
  ignore (Sim.Engine.schedule e ~delay:2.0 (fun () -> incr count));
  Sim.Engine.run e;
  check_int "stopped after first" 1 !count

let test_engine_past_rejected () =
  let e = Sim.Engine.create () in
  ignore (Sim.Engine.schedule e ~delay:1.0 (fun () -> ()));
  Sim.Engine.run e;
  Alcotest.check_raises "past time rejected"
    (Invalid_argument "Engine.schedule_at: time 0.500000000 is in the past (now 1.000000000)")
    (fun () -> ignore (Sim.Engine.schedule_at e ~time:0.5 (fun () -> ())))

(* --- Wheel vs Heap backend equivalence -------------------------------- *)

(* The timer wheel must pop in exactly (time, schedule-order) order — the
   heap backend's (key, insertion-seq) — so same-seed runs are
   byte-identical across backends. These tests drive both backends
   through identical schedules and compare the full observable firing
   sequence. Cancels are expressed by schedule-order index because raw
   event ids differ between backends. *)

let run_backend_script ~backend ~seed ~events ~horizon () =
  let e = Sim.Engine.create ~backend () in
  let rng = Sim.Rng.create (Int64.of_int seed) in
  let log = Buffer.create 4096 in
  let ids = ref [] in
  let n_scheduled = ref 0 in
  let remember id =
    ids := id :: !ids;
    incr n_scheduled
  in
  let nth_id i = List.nth !ids (!n_scheduled - 1 - i) in
  let rec spawn tag depth =
    let delay =
      (* Mix of sub-tick ties, short-horizon, L1-range, and far-future
         delays so every wheel layer (active/L0/L1/overflow) is hit. *)
      match Sim.Rng.int rng 10 with
      | 0 -> 0.0 (* same-time tie: pure insertion-order test *)
      | 1 | 2 | 3 -> Sim.Rng.float rng 0.01
      | 4 | 5 | 6 -> Sim.Rng.float rng 1.0
      | 7 | 8 -> 1.0 +. Sim.Rng.float rng 60.0
      | _ -> 65.0 +. Sim.Rng.float rng 300.0
    in
    remember
      (Sim.Engine.schedule e ~delay (fun () ->
           Buffer.add_string log
             (Printf.sprintf "%s@%.9f;" tag (Sim.Engine.now e));
           if depth < 3 && Sim.Rng.int rng 3 = 0 then
             spawn (tag ^ "+") (depth + 1);
           (* Occasionally cancel a random earlier schedule (may already
              have fired or been cancelled — both must be no-op-equal
              across backends). *)
           if Sim.Rng.int rng 4 = 0 then
             Sim.Engine.cancel e (nth_id (Sim.Rng.int rng !n_scheduled))))
  in
  for i = 1 to events do
    spawn (string_of_int i) 0
  done;
  Sim.Engine.run ~until:horizon e;
  Buffer.add_string log
    (Printf.sprintf "|pending=%d backlog=%d executed=%d now=%.9f"
       (Sim.Engine.pending e)
       (Sim.Engine.cancelled_backlog e)
       (Sim.Engine.executed_events e)
       (Sim.Engine.now e));
  Buffer.contents log

let test_wheel_heap_identical_schedules () =
  List.iter
    (fun seed ->
      let w = run_backend_script ~backend:`Wheel ~seed ~events:60 ~horizon:500.0 () in
      let h = run_backend_script ~backend:`Heap ~seed ~events:60 ~horizon:500.0 () in
      check "script produced events" true (String.length w > 100);
      Alcotest.(check string) (Printf.sprintf "seed %d identical" seed) h w)
    [ 1; 2; 3; 42; 1337 ]

let test_wheel_tie_break_insertion_order () =
  (* Many events at the same instant interleaved with other instants:
     ties must fire in schedule order on both backends. *)
  List.iter
    (fun backend ->
      let e = Sim.Engine.create ~backend () in
      let order = ref [] in
      for i = 0 to 99 do
        let delay = if i mod 3 = 0 then 1.0 else if i mod 3 = 1 then 2.0 else 1.0 in
        ignore (Sim.Engine.schedule e ~delay (fun () -> order := i :: !order))
      done;
      Sim.Engine.run e;
      let fired = List.rev !order in
      let at_1 = List.filter (fun i -> i mod 3 <> 1) fired
      and at_2 = List.filter (fun i -> i mod 3 = 1) fired in
      check "ties in insertion order (t=1)" true (List.sort compare at_1 = at_1);
      check "ties in insertion order (t=2)" true (List.sort compare at_2 = at_2);
      (* All t=1 events precede all t=2 events. *)
      let rec split_ok = function
        | a :: (b :: _ as rest) ->
            ((a mod 3 <> 1) || b mod 3 = 1) && split_ok rest
        | _ -> true
      in
      check "time order across ties" true (split_ok fired))
    [ `Wheel; `Heap ]

let test_wheel_overflow_migration () =
  (* Far-future events park in the overflow heap and must migrate inward
     as the cursor approaches — including events that become due while
     the clock advances through intermediate wheel levels, and new near
     events scheduled from thunks after the far ones were parked. *)
  let e = Sim.Engine.create ~backend:`Wheel ~hint:16 () in
  let log = ref [] in
  let note tag () = log := (tag, Sim.Engine.now e) :: !log in
  ignore (Sim.Engine.schedule e ~delay:3600.0 (note "far2"));
  ignore (Sim.Engine.schedule e ~delay:100.0 (note "far1"));
  ignore (Sim.Engine.schedule e ~delay:70.0 (note "mid"));
  (* A near event that schedules another event landing *between* the
     parked overflow events. *)
  ignore
    (Sim.Engine.schedule e ~delay:0.5 (fun () ->
         note "near" ();
         ignore (Sim.Engine.schedule e ~delay:99.0 (note "between"))));
  Sim.Engine.run e;
  Alcotest.(check (list string))
    "overflow events fire in global time order"
    [ "near"; "mid"; "between"; "far1"; "far2" ]
    (List.rev_map fst !log);
  check_float "clock at last event" 3600.0 (Sim.Engine.now e);
  check_int "queue drained" 0 (Sim.Engine.pending e)

let test_wheel_cancel_parity_both_backends () =
  (* The cancel-bookkeeping contract (no leak on cancel-after-execute,
     double cancel counted once, backlog drained on pop, late cancel of
     a consumed slot ignored) must hold identically on both backends. *)
  List.iter
    (fun backend ->
      let e = Sim.Engine.create ~backend () in
      let fired = ref false in
      let id = Sim.Engine.schedule e ~delay:1.0 (fun () -> fired := true) in
      Sim.Engine.cancel e id;
      Sim.Engine.cancel e id;
      check_int "double cancel counted once" 1 (Sim.Engine.cancelled_backlog e);
      Sim.Engine.run e;
      check "cancelled event did not fire" false !fired;
      check_int "backlog drained when popped" 0 (Sim.Engine.cancelled_backlog e);
      Sim.Engine.cancel e id;
      check_int "late cancel is a no-op" 0 (Sim.Engine.cancelled_backlog e);
      let id2 = Sim.Engine.schedule e ~delay:1.0 (fun () -> ()) in
      Sim.Engine.run e;
      Sim.Engine.cancel e id2;
      check_int "cancel after execution no leak" 0 (Sim.Engine.cancelled_backlog e))
    [ `Wheel; `Heap ]

let prop_wheel_matches_heap =
  QCheck.Test.make ~count:100 ~name:"wheel and heap backends fire identically"
    QCheck.(
      list_of_size Gen.(int_range 1 40)
        (pair (float_bound_exclusive 200.0) (option (int_bound 39))))
    (fun script ->
      (* Each entry schedules an event at the given delay; the optional
         int cancels the schedule with that index (if it exists) right
         after all schedules are placed. *)
      let run backend =
        let e = Sim.Engine.create ~backend () in
        let log = Buffer.create 256 in
        let ids =
          List.mapi
            (fun i (d, _) ->
              Sim.Engine.schedule e ~delay:d (fun () ->
                  Buffer.add_string log
                    (Printf.sprintf "%d@%.9f;" i (Sim.Engine.now e))))
            script
        in
        let ids = Array.of_list ids in
        List.iter
          (fun (_, cancel) ->
            match cancel with
            | Some j when j < Array.length ids -> Sim.Engine.cancel e ids.(j)
            | _ -> ())
          script;
        Sim.Engine.run e;
        Printf.sprintf "%s|%d|%d" (Buffer.contents log)
          (Sim.Engine.executed_events e)
          (Sim.Engine.cancelled_backlog e)
      in
      String.equal (run `Wheel) (run `Heap))

let prop_engine_event_times_monotone =
  QCheck.Test.make ~count:100 ~name:"engine executes events in non-decreasing time order"
    QCheck.(list_of_size Gen.(int_range 1 50) (float_bound_exclusive 100.0))
    (fun delays ->
      let e = Sim.Engine.create () in
      let times = ref [] in
      List.iter
        (fun d ->
          ignore (Sim.Engine.schedule e ~delay:d (fun () -> times := Sim.Engine.now e :: !times)))
        delays;
      Sim.Engine.run e;
      let observed = List.rev !times in
      let rec monotone = function
        | a :: (b :: _ as rest) -> a <= b && monotone rest
        | _ -> true
      in
      monotone observed && List.length observed = List.length delays)

(* --- Stats ------------------------------------------------------------ *)

let test_stats_summary () =
  let s = Sim.Stats.Summary.create () in
  List.iter (Sim.Stats.Summary.add s) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  check_float "mean" 3.0 (Sim.Stats.Summary.mean s);
  check_float "variance" 2.5 (Sim.Stats.Summary.variance s);
  check_float "min" 1.0 (Sim.Stats.Summary.min s);
  check_float "max" 5.0 (Sim.Stats.Summary.max s);
  check_float "median" 3.0 (Sim.Stats.Summary.median s);
  check_float "p100" 5.0 (Sim.Stats.Summary.percentile s 100.0)

let test_stats_percentile_small () =
  let s = Sim.Stats.Summary.create () in
  Sim.Stats.Summary.add s 10.0;
  check_float "single sample p50" 10.0 (Sim.Stats.Summary.median s);
  check_float "single sample p99" 10.0 (Sim.Stats.Summary.percentile s 99.0)

let test_stats_counter () =
  let c = Sim.Stats.Counter.create () in
  Sim.Stats.Counter.incr c "a";
  Sim.Stats.Counter.incr c "a";
  Sim.Stats.Counter.incr ~by:3 c "b";
  check_int "a" 2 (Sim.Stats.Counter.get c "a");
  check_int "b" 3 (Sim.Stats.Counter.get c "b");
  check_int "missing" 0 (Sim.Stats.Counter.get c "zzz")

let test_stats_percentile_edges () =
  let empty = Sim.Stats.Summary.create () in
  check "empty mean is nan" true (Float.is_nan (Sim.Stats.Summary.mean empty));
  check "empty percentile is nan" true (Float.is_nan (Sim.Stats.Summary.percentile empty 50.0));
  let one = Sim.Stats.Summary.create () in
  Sim.Stats.Summary.add one 7.0;
  check_float "n=1 p0" 7.0 (Sim.Stats.Summary.percentile one 0.0);
  check_float "n=1 p100" 7.0 (Sim.Stats.Summary.percentile one 100.0);
  let s = Sim.Stats.Summary.create () in
  List.iter (Sim.Stats.Summary.add s) [ 4.0; 1.0; 3.0; 2.0 ];
  check_float "p0 is min" 1.0 (Sim.Stats.Summary.percentile s 0.0);
  check_float "p100 is max" 4.0 (Sim.Stats.Summary.percentile s 100.0);
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Stats.percentile: p out of [0,100]") (fun () ->
      ignore (Sim.Stats.Summary.percentile s 101.0));
  let dup = Sim.Stats.Summary.create () in
  List.iter (Sim.Stats.Summary.add dup) [ 5.0; 5.0; 5.0; 5.0 ];
  check_float "duplicates p50" 5.0 (Sim.Stats.Summary.median dup);
  check_float "duplicates p99" 5.0 (Sim.Stats.Summary.percentile dup 99.0);
  check_float "duplicates stddev" 0.0 (Sim.Stats.Summary.stddev dup)

let test_stats_timeseries_length () =
  let ts = Sim.Stats.Timeseries.create () in
  check_int "empty" 0 (Sim.Stats.Timeseries.length ts);
  for i = 1 to 5 do
    Sim.Stats.Timeseries.add ts ~time:(float_of_int i) 1.0
  done;
  check_int "five points" 5 (Sim.Stats.Timeseries.length ts);
  check_int "to_list agrees" 5 (List.length (Sim.Stats.Timeseries.to_list ts))

let prop_stats_mean_matches_naive =
  QCheck.Test.make ~count:200 ~name:"Welford mean matches naive mean"
    QCheck.(list_of_size Gen.(int_range 1 100) (float_bound_exclusive 1000.0))
    (fun xs ->
      let s = Sim.Stats.Summary.create () in
      List.iter (Sim.Stats.Summary.add s) xs;
      let naive = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
      abs_float (Sim.Stats.Summary.mean s -. naive) < 1e-6)

(* --- Trace ------------------------------------------------------------ *)

let test_trace_roundtrip () =
  let t = Sim.Trace.create () in
  Sim.Trace.record t ~time:1.0 ~category:"net" "packet %d dropped" 7;
  Sim.Trace.record t ~time:2.0 ~category:"attack" "arp poison from %s" "10.0.0.9";
  check_int "two entries" 2 (Sim.Trace.length t);
  (match Sim.Trace.find t ~category:"attack" ~contains:"arp poison" with
  | Some entry -> check_float "time" 2.0 entry.Sim.Trace.time
  | None -> Alcotest.fail "attack entry not found");
  check "absent entry" true
    (Sim.Trace.find t ~category:"net" ~contains:"nonexistent" = None);
  check_int "category filter" 1 (List.length (Sim.Trace.by_category t "net"))

let test_trace_find_edges () =
  let t = Sim.Trace.create () in
  Sim.Trace.record t ~time:1.0 ~category:"net" "%s" "tail-match-xyz";
  Sim.Trace.record t ~time:2.0 ~category:"net" "%s" "ab";
  (* Needle at the very end of the message (the old scan missed nothing,
     but the boundary is where an off-by-one would hide). *)
  check "match at end" true (Sim.Trace.find t ~category:"net" ~contains:"xyz" <> None);
  check "needle longer than message" true
    (Sim.Trace.find t ~category:"net" ~contains:"abc" = None);
  check "empty needle matches" true (Sim.Trace.find t ~category:"net" ~contains:"" <> None);
  check "category must match too" true
    (Sim.Trace.find t ~category:"attack" ~contains:"xyz" = None);
  (* find returns the FIRST retained match in chronological order. *)
  Sim.Trace.record t ~time:3.0 ~category:"net" "%s" "xyz again";
  (match Sim.Trace.find t ~category:"net" ~contains:"xyz" with
  | Some e -> check_float "first match wins" 1.0 e.Sim.Trace.time
  | None -> Alcotest.fail "match expected")

let test_trace_ring_buffer () =
  let t = Sim.Trace.create ~capacity:3 () in
  for i = 1 to 5 do
    Sim.Trace.record t ~time:(float_of_int i) ~category:"c" "entry %d" i
  done;
  check_int "length counts everything ever recorded" 5 (Sim.Trace.length t);
  check_int "retained is bounded" 3 (Sim.Trace.retained t);
  (match Sim.Trace.entries t with
  | [ a; b; c ] ->
      check_float "oldest evicted" 3.0 a.Sim.Trace.time;
      check_float "middle" 4.0 b.Sim.Trace.time;
      check_float "newest kept" 5.0 c.Sim.Trace.time
  | l -> Alcotest.failf "expected 3 entries, got %d" (List.length l));
  check "evicted entries are not findable" true
    (Sim.Trace.find t ~category:"c" ~contains:"entry 1" = None);
  check "retained entries are findable" true
    (Sim.Trace.find t ~category:"c" ~contains:"entry 4" <> None);
  check_int "by_category sees retained only" 3 (List.length (Sim.Trace.by_category t "c"));
  (match Sim.Trace.create ~capacity:0 () with
  | (_ : Sim.Trace.t) -> Alcotest.fail "capacity 0 accepted"
  | exception Invalid_argument _ -> ())

let prop_strx_contains_matches_naive =
  (* Reference implementation: check every alignment with String.sub. *)
  let naive ~needle hay =
    let n = String.length needle and h = String.length hay in
    if n > h then false
    else
      let rec at i = i <= h - n && (String.equal (String.sub hay i n) needle || at (i + 1)) in
      at 0
  in
  QCheck.Test.make ~count:500 ~name:"Strx.contains agrees with naive substring search"
    QCheck.(pair (string_of_size Gen.(int_range 0 30)) (string_of_size Gen.(int_range 0 4)))
    (fun (hay, needle) ->
      Sim.Strx.contains ~needle hay = naive ~needle hay)

let test_strx_basics () =
  check "empty needle" true (Sim.Strx.contains ~needle:"" "abc");
  check "empty haystack" false (Sim.Strx.contains ~needle:"a" "");
  check "both empty" true (Sim.Strx.contains ~needle:"" "");
  check "full match" true (Sim.Strx.contains ~needle:"abc" "abc");
  check "repeated prefix" true (Sim.Strx.contains ~needle:"aab" "aaab");
  check "starts_with" true (Sim.Strx.starts_with ~prefix:"sta" "status:B57:1");
  check "starts_with miss" false (Sim.Strx.starts_with ~prefix:"cmd" "status:B57:1")

let suite =
  [
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng split independent", `Quick, test_rng_split_independent);
    ("rng bounds", `Quick, test_rng_bounds);
    ("rng gaussian moments", `Quick, test_rng_gaussian_moments);
    ("rng exponential mean", `Quick, test_rng_exponential_mean);
    ("rng shuffle permutation", `Quick, test_rng_shuffle_permutation);
    ("heap ordering", `Quick, test_heap_ordering);
    ("heap fifo ties", `Quick, test_heap_fifo_ties);
    ("heap capacity pre-sizing", `Quick, test_heap_capacity);
    ("engine hint pre-sizes queue", `Quick, test_engine_hint);
    ("engine time order", `Quick, test_engine_runs_in_time_order);
    ("engine cancel", `Quick, test_engine_cancel);
    ("engine cancel after execution no leak", `Quick, test_engine_cancel_after_execution_no_leak);
    ("engine double cancel no leak", `Quick, test_engine_double_cancel_no_leak);
    ("engine cancel timer no leak", `Quick, test_engine_cancel_timer_no_leak);
    ("engine nested schedule", `Quick, test_engine_nested_schedule);
    ("engine until horizon", `Quick, test_engine_until_horizon);
    ("engine periodic timer", `Quick, test_engine_periodic_timer);
    ("engine stop", `Quick, test_engine_stop);
    ("engine rejects past", `Quick, test_engine_past_rejected);
    ("wheel/heap identical schedules", `Quick, test_wheel_heap_identical_schedules);
    ("wheel tie-break insertion order", `Quick, test_wheel_tie_break_insertion_order);
    ("wheel overflow migration", `Quick, test_wheel_overflow_migration);
    ("wheel/heap cancel parity", `Quick, test_wheel_cancel_parity_both_backends);
    ("stats summary", `Quick, test_stats_summary);
    ("stats percentile small", `Quick, test_stats_percentile_small);
    ("stats percentile edges", `Quick, test_stats_percentile_edges);
    ("stats timeseries length", `Quick, test_stats_timeseries_length);
    ("stats counter", `Quick, test_stats_counter);
    ("trace roundtrip", `Quick, test_trace_roundtrip);
    ("trace find edges", `Quick, test_trace_find_edges);
    ("trace ring buffer", `Quick, test_trace_ring_buffer);
    ("strx basics", `Quick, test_strx_basics);
    QCheck_alcotest.to_alcotest prop_heap_sorts;
    QCheck_alcotest.to_alcotest prop_wheel_matches_heap;
    QCheck_alcotest.to_alcotest prop_engine_event_times_monotone;
    QCheck_alcotest.to_alcotest prop_stats_mean_matches_naive;
    QCheck_alcotest.to_alcotest prop_strx_contains_matches_naive;
  ]

let () = Alcotest.run "sim" [ ("sim", suite) ]
