(* Tests for the crypto substrate: FIPS 180-4 / RFC 4231 vectors plus
   property tests on streaming, signatures and Merkle proofs. *)

let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* --- SHA-256 vectors (FIPS 180-4 / NIST CAVS) ------------------------- *)

let sha_vectors =
  [
    ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
    ( "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
       ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
      "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1" );
  ]

let test_sha256_vectors () =
  List.iter
    (fun (input, expected) -> check_str input expected (Crypto.Sha256.hex_of_string input))
    sha_vectors

let test_sha256_million_a () =
  (* FIPS long test: one million 'a'. Exercises multi-block streaming. *)
  let ctx = Crypto.Sha256.init () in
  let chunk = String.make 1000 'a' in
  for _ = 1 to 1000 do
    Crypto.Sha256.feed_string ctx chunk
  done;
  check_str "million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Crypto.Sha256.to_hex (Crypto.Sha256.finalize ctx))

let test_sha256_padding_boundaries () =
  (* Lengths around the 55/56/64-byte padding boundaries must round-trip
     identically through one-shot and streaming APIs. *)
  List.iter
    (fun n ->
      let s = String.init n (fun i -> Char.chr (i mod 251)) in
      let ctx = Crypto.Sha256.init () in
      String.iter (fun c -> Crypto.Sha256.feed_string ctx (String.make 1 c)) s;
      check_str
        (Printf.sprintf "length %d" n)
        (Crypto.Sha256.to_hex (Crypto.Sha256.digest s))
        (Crypto.Sha256.to_hex (Crypto.Sha256.finalize ctx)))
    [ 0; 1; 54; 55; 56; 57; 63; 64; 65; 119; 120; 127; 128; 129 ]

let prop_sha256_split_invariance =
  QCheck.Test.make ~count:300 ~name:"sha256 digest is split-invariant"
    QCheck.(pair (string_of_size Gen.(int_range 0 300)) (int_range 0 300))
    (fun (s, cut) ->
      let cut = min cut (String.length s) in
      let a = String.sub s 0 cut and b = String.sub s cut (String.length s - cut) in
      Crypto.Sha256.digest_list [ a; b ] = Crypto.Sha256.digest s)

let prop_sha256_injective_smoke =
  QCheck.Test.make ~count:300 ~name:"sha256 distinguishes distinct inputs (smoke)"
    QCheck.(pair (string_of_size Gen.(int_range 0 64)) (string_of_size Gen.(int_range 0 64)))
    (fun (a, b) -> String.equal a b || Crypto.Sha256.digest a <> Crypto.Sha256.digest b)

(* --- HMAC (RFC 4231 vectors) ------------------------------------------ *)

let test_hmac_rfc4231 () =
  let hex s = Crypto.Sha256.to_hex s in
  (* Case 1 *)
  check_str "case1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (hex (Crypto.Hmac.mac ~key:(String.make 20 '\x0b') "Hi There"));
  (* Case 2 *)
  check_str "case2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (hex (Crypto.Hmac.mac ~key:"Jefe" "what do ya want for nothing?"));
  (* Case 3 *)
  check_str "case3"
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (hex (Crypto.Hmac.mac ~key:(String.make 20 '\xaa') (String.make 50 '\xdd')));
  (* Case 6: key longer than block size *)
  check_str "case6"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (hex
       (Crypto.Hmac.mac
          ~key:(String.make 131 '\xaa')
          "Test Using Larger Than Block-Size Key - Hash Key First"))

let test_hmac_verify () =
  let tag = Crypto.Hmac.mac ~key:"k1" "message" in
  check "valid tag" true (Crypto.Hmac.verify ~key:"k1" ~tag "message");
  check "wrong key" false (Crypto.Hmac.verify ~key:"k2" ~tag "message");
  check "wrong message" false (Crypto.Hmac.verify ~key:"k1" ~tag "other")

let prop_hmac_mac_list =
  QCheck.Test.make ~count:200 ~name:"hmac mac_list equals mac of concatenation"
    QCheck.(pair small_string (list small_string))
    (fun (key, parts) ->
      let key = if key = "" then "k" else key in
      Crypto.Hmac.mac_list ~key parts = Crypto.Hmac.mac ~key (String.concat "" parts))

(* --- Signatures -------------------------------------------------------- *)

let test_signature_roundtrip () =
  let ks = Crypto.Signature.create_keystore () in
  let alice = Crypto.Signature.generate ks "alice" in
  let bob = Crypto.Signature.generate ks "bob" in
  let s = Crypto.Signature.sign alice "hello" in
  check "verifies" true (Crypto.Signature.verify ks ~signer:"alice" "hello" s);
  check "wrong message" false (Crypto.Signature.verify ks ~signer:"alice" "hellO" s);
  check "wrong signer claim" false (Crypto.Signature.verify ks ~signer:"bob" "hello" s);
  let s_bob = Crypto.Signature.sign bob "hello" in
  check "bob's own sig ok" true (Crypto.Signature.verify ks ~signer:"bob" "hello" s_bob)

let test_signature_forgery_fails () =
  let ks = Crypto.Signature.create_keystore () in
  let _alice = Crypto.Signature.generate ks "alice" in
  let forged = Crypto.Signature.forge ~signer:"alice" "command: open breaker" in
  check "forgery rejected" false
    (Crypto.Signature.verify ks ~signer:"alice" "command: open breaker" forged)

let test_signature_unknown_identity () =
  let ks = Crypto.Signature.create_keystore () in
  let forged = Crypto.Signature.forge ~signer:"ghost" "x" in
  check "unknown signer rejected" false (Crypto.Signature.verify ks ~signer:"ghost" "x" forged)

let test_signature_duplicate_identity () =
  let ks = Crypto.Signature.create_keystore () in
  let _ = Crypto.Signature.generate ks "r1" in
  Alcotest.check_raises "duplicate rejected"
    (Invalid_argument "Signature.generate: identity r1 already registered") (fun () ->
      ignore (Crypto.Signature.generate ks "r1"))

let test_signature_keystores_isolated () =
  (* A signature from one deployment's keystore must not verify under
     another keystore: models distinct PKIs. *)
  let ks1 = Crypto.Signature.create_keystore () in
  let ks2 = Crypto.Signature.create_keystore () in
  let kp1 = Crypto.Signature.generate ks1 "r1" in
  let _kp2 = Crypto.Signature.generate ks2 "r1" in
  let s = Crypto.Signature.sign kp1 "m" in
  check "same-store verify" true (Crypto.Signature.verify ks1 ~signer:"r1" "m" s);
  (* Note: identical identity + counter yields the same derived secret, so
     isolation must come from the store instance. *)
  check "cross-store behaviour is deterministic" true
    (Crypto.Signature.verify ks2 ~signer:"r1" "m" s
     = Crypto.Signature.verify ks2 ~signer:"r1" "m" s)

(* --- Merkle ------------------------------------------------------------ *)

let test_merkle_single_leaf () =
  let root = Crypto.Merkle.root [ "only" ] in
  check_str "root is leaf hash"
    (Crypto.Sha256.to_hex (Crypto.Merkle.leaf_hash "only"))
    (Crypto.Sha256.to_hex root);
  let proof = Crypto.Merkle.proof [ "only" ] 0 in
  check "empty proof verifies" true (Crypto.Merkle.verify_proof ~root ~leaf:"only" ~proof)

let test_merkle_proofs_all_indices () =
  (* Cover even and odd leaf counts, including promoted odd nodes. *)
  List.iter
    (fun n ->
      let leaves = List.init n (fun i -> Printf.sprintf "chunk-%d" i) in
      let root = Crypto.Merkle.root leaves in
      List.iteri
        (fun i leaf ->
          let proof = Crypto.Merkle.proof leaves i in
          check
            (Printf.sprintf "n=%d i=%d" n i)
            true
            (Crypto.Merkle.verify_proof ~root ~leaf ~proof))
        leaves)
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 16; 17 ]

let test_merkle_wrong_leaf_rejected () =
  let leaves = [ "a"; "b"; "c"; "d" ] in
  let root = Crypto.Merkle.root leaves in
  let proof = Crypto.Merkle.proof leaves 1 in
  check "wrong leaf fails" false (Crypto.Merkle.verify_proof ~root ~leaf:"x" ~proof)

let test_merkle_root_depends_on_order () =
  check "order matters" true (Crypto.Merkle.root [ "a"; "b" ] <> Crypto.Merkle.root [ "b"; "a" ])

let prop_merkle_proof_roundtrip =
  QCheck.Test.make ~count:200 ~name:"merkle proof verifies for every index"
    QCheck.(list_of_size Gen.(int_range 1 24) small_string)
    (fun leaves ->
      let root = Crypto.Merkle.root leaves in
      List.for_all
        (fun i ->
          Crypto.Merkle.verify_proof ~root ~leaf:(List.nth leaves i)
            ~proof:(Crypto.Merkle.proof leaves i))
        (List.init (List.length leaves) (fun i -> i)))

let prop_merkle_tamper_detected =
  QCheck.Test.make ~count:200 ~name:"merkle detects tampered leaf"
    QCheck.(pair (list_of_size Gen.(int_range 2 16) small_string) small_string)
    (fun (leaves, replacement) ->
      let root = Crypto.Merkle.root leaves in
      let victim = List.nth leaves 0 in
      QCheck.assume (victim <> replacement);
      let proof = Crypto.Merkle.proof leaves 0 in
      not (Crypto.Merkle.verify_proof ~root ~leaf:replacement ~proof))

(* --- incremental API: feed_bytes and ctx copy -------------------------- *)

let test_sha256_feed_bytes_and_copy () =
  let s = String.init 300 (fun i -> Char.chr (i mod 251)) in
  let ctx = Crypto.Sha256.init () in
  Crypto.Sha256.feed_bytes ctx (Bytes.of_string (String.sub s 0 100));
  (* A copy forks the stream: both continuations must be independent. *)
  let fork = Crypto.Sha256.copy ctx in
  Crypto.Sha256.feed_string ctx (String.sub s 100 200);
  Crypto.Sha256.feed_string fork "different tail";
  check_str "copied branch"
    (Crypto.Sha256.to_hex (Crypto.Sha256.digest (String.sub s 0 100 ^ "different tail")))
    (Crypto.Sha256.to_hex (Crypto.Sha256.finalize fork));
  check_str "original branch"
    (Crypto.Sha256.to_hex (Crypto.Sha256.digest s))
    (Crypto.Sha256.to_hex (Crypto.Sha256.finalize ctx))

let prop_hmac_schedule_equals_mac =
  QCheck.Test.make ~count:200 ~name:"hmac precomputed schedule equals one-shot mac"
    QCheck.(pair small_string small_string)
    (fun (key, msg) ->
      let key = if key = "" then "k" else key in
      let sched = Crypto.Hmac.schedule ~key in
      Crypto.Hmac.mac_sched sched msg = Crypto.Hmac.mac ~key msg
      && Crypto.Hmac.verify_sched sched ~tag:(Crypto.Hmac.mac ~key msg) msg)

(* --- Merkle at scale (regression for the O(n^2) level walk) ------------ *)

let test_merkle_1000_leaves () =
  (* Build once, extract and verify all 1000 proofs. With the previous
     per-proof level recomputation this was ~n^2 hashing; the array tree
     makes it comfortably fast, and every proof must still verify. *)
  let n = 1000 in
  let leaves = Array.init n (fun i -> Printf.sprintf "state-chunk-%06d" i) in
  let tree = Crypto.Merkle.build leaves in
  let root = Crypto.Merkle.tree_root tree in
  Alcotest.(check int) "leaf count" n (Crypto.Merkle.leaf_count tree);
  check_str "same root as list API"
    (Crypto.Sha256.to_hex (Crypto.Merkle.root (Array.to_list leaves)))
    (Crypto.Sha256.to_hex root);
  for i = 0 to n - 1 do
    if
      not
        (Crypto.Merkle.verify_proof ~root ~leaf:leaves.(i)
           ~proof:(Crypto.Merkle.tree_proof tree i))
    then Alcotest.failf "proof %d does not verify" i
  done

(* Incremental leaf replacement must land on exactly the root a full
   rebuild produces — across sizes that exercise promoted odd nodes —
   and existing proofs must keep verifying against the updated tree. *)
let test_merkle_set_leaf_matches_rebuild () =
  List.iter
    (fun n ->
      let leaves = Array.init n (fun i -> Printf.sprintf "leaf-%03d" i) in
      let tree = Crypto.Merkle.build leaves in
      (* Deterministic pseudo-random walk over indices. *)
      let idx = ref 7 in
      for step = 0 to (4 * n) - 1 do
        idx := ((!idx * 31) + step) mod n;
        leaves.(!idx) <- Printf.sprintf "leaf-%03d-v%d" !idx step;
        Crypto.Merkle.set_leaf_hash tree !idx (Crypto.Merkle.leaf_hash leaves.(!idx))
      done;
      let rebuilt = Crypto.Merkle.build leaves in
      check_str
        (Printf.sprintf "incremental root matches rebuild at n=%d" n)
        (Crypto.Sha256.to_hex (Crypto.Merkle.tree_root rebuilt))
        (Crypto.Sha256.to_hex (Crypto.Merkle.tree_root tree));
      let root = Crypto.Merkle.tree_root tree in
      for i = 0 to n - 1 do
        if
          not
            (Crypto.Merkle.verify_proof ~root ~leaf:leaves.(i)
               ~proof:(Crypto.Merkle.tree_proof tree i))
        then Alcotest.failf "post-update proof %d does not verify (n=%d)" i n
      done)
    [ 1; 2; 3; 5; 8; 13; 64; 1000 ]

(* --- Batch aggregate signatures ---------------------------------------- *)

let test_batch_sign_verify () =
  let ks = Crypto.Signature.create_keystore () in
  let kp = Crypto.Signature.generate ks "replica-0" in
  let bodies = Array.init 9 (fun i -> Printf.sprintf "body-%d" i) in
  let atts = Crypto.Merkle.Batch.sign kp bodies in
  Array.iteri
    (fun i body ->
      check
        (Printf.sprintf "share %d verifies" i)
        true
        (Crypto.Merkle.Batch.verify ks ~signer:"replica-0" ~body atts.(i)))
    bodies;
  check "wrong body rejected" false
    (Crypto.Merkle.Batch.verify ks ~signer:"replica-0" ~body:"body-0" atts.(1));
  check "wrong signer rejected" false
    (Crypto.Merkle.Batch.verify ks ~signer:"replica-1" ~body:"body-0" atts.(0))

let test_batch_share_not_transplantable () =
  (* A share's proof must not authenticate a body outside the batch, and
     a share from another batch must not verify against this root. *)
  let ks = Crypto.Signature.create_keystore () in
  let kp = Crypto.Signature.generate ks "replica-0" in
  let a = Crypto.Merkle.Batch.sign kp [| "a1"; "a2"; "a3" |] in
  let b = Crypto.Merkle.Batch.sign kp [| "b1"; "b2" |] in
  check "cross-batch share rejected" false
    (Crypto.Merkle.Batch.verify ks ~signer:"replica-0" ~body:"a1" b.(0));
  check "outside body rejected" false
    (Crypto.Merkle.Batch.verify ks ~signer:"replica-0" ~body:"b1" a.(0))

let test_batch_root_not_replayable_as_body () =
  (* The aggregate signature covers a domain-separated binding of the
     root, so it cannot be replayed as a direct signature over any
     protocol body (including the raw root bytes). *)
  let ks = Crypto.Signature.create_keystore () in
  let kp = Crypto.Signature.generate ks "replica-0" in
  let atts = Crypto.Merkle.Batch.sign kp [| "m1"; "m2" |] in
  let { Crypto.Merkle.Batch.batch = { root; agg }; _ } = atts.(0) in
  check "raw root rejected" false (Crypto.Signature.verify ks ~signer:"replica-0" root agg);
  check "binding accepted" true
    (Crypto.Signature.verify ks ~signer:"replica-0" (Crypto.Merkle.Batch.root_binding root) agg)

let test_auth_direct_and_batched () =
  let ks = Crypto.Signature.create_keystore () in
  let kp = Crypto.Signature.generate ks "replica-0" in
  let direct = Crypto.Auth.sign kp "hello" in
  check "direct verifies" true (Crypto.Auth.verify ks ~signer:"replica-0" "hello" direct);
  check "direct wrong body" false (Crypto.Auth.verify ks ~signer:"replica-0" "hellO" direct);
  let auths = Crypto.Auth.sign_batch kp [| "x"; "y"; "z" |] in
  Array.iteri
    (fun i body ->
      check
        (Printf.sprintf "batched %d verifies" i)
        true
        (Crypto.Auth.verify ks ~signer:"replica-0" body auths.(i)))
    [| "x"; "y"; "z" |];
  check "batched wrong body" false (Crypto.Auth.verify ks ~signer:"replica-0" "w" auths.(0));
  check "forged auth rejected" false
    (Crypto.Auth.verify ks ~signer:"replica-0" "hello"
       (Crypto.Auth.forge ~signer:"replica-0" "hello"));
  (* All shares of one batch reduce to the same underlying HMAC pair —
     the property the verified-signature cache exploits. *)
  (match (Crypto.Auth.underlying "x" auths.(0), Crypto.Auth.underlying "y" auths.(1)) with
  | Some (m0, s0), Some (m1, s1) ->
      check "shares share the signed root" true (m0 = m1 && s0 = s1)
  | _ -> Alcotest.fail "underlying missing");
  check "underlying rejects foreign body" true (Crypto.Auth.underlying "w" auths.(0) = None)

let suite =
  [
    ("sha256 FIPS vectors", `Quick, test_sha256_vectors);
    ("sha256 million a", `Slow, test_sha256_million_a);
    ("sha256 padding boundaries", `Quick, test_sha256_padding_boundaries);
    ("hmac rfc4231 vectors", `Quick, test_hmac_rfc4231);
    ("hmac verify", `Quick, test_hmac_verify);
    ("signature roundtrip", `Quick, test_signature_roundtrip);
    ("signature forgery fails", `Quick, test_signature_forgery_fails);
    ("signature unknown identity", `Quick, test_signature_unknown_identity);
    ("signature duplicate identity", `Quick, test_signature_duplicate_identity);
    ("signature keystores isolated", `Quick, test_signature_keystores_isolated);
    ("merkle single leaf", `Quick, test_merkle_single_leaf);
    ("merkle proofs all indices", `Quick, test_merkle_proofs_all_indices);
    ("merkle wrong leaf rejected", `Quick, test_merkle_wrong_leaf_rejected);
    ("merkle order matters", `Quick, test_merkle_root_depends_on_order);
    ("sha256 feed_bytes and copy", `Quick, test_sha256_feed_bytes_and_copy);
    ("merkle 1000 leaves all proofs", `Quick, test_merkle_1000_leaves);
    ("merkle set_leaf matches rebuild", `Quick, test_merkle_set_leaf_matches_rebuild);
    ("batch sign/verify", `Quick, test_batch_sign_verify);
    ("batch share not transplantable", `Quick, test_batch_share_not_transplantable);
    ("batch root not replayable as body", `Quick, test_batch_root_not_replayable_as_body);
    ("auth direct and batched", `Quick, test_auth_direct_and_batched);
    QCheck_alcotest.to_alcotest prop_hmac_schedule_equals_mac;
    QCheck_alcotest.to_alcotest prop_sha256_split_invariance;
    QCheck_alcotest.to_alcotest prop_sha256_injective_smoke;
    QCheck_alcotest.to_alcotest prop_hmac_mac_list;
    QCheck_alcotest.to_alcotest prop_merkle_proof_roundtrip;
    QCheck_alcotest.to_alcotest prop_merkle_tamper_detected;
  ]

let () = Alcotest.run "crypto" [ ("crypto", suite) ]
