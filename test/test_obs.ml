(* Tests for the telemetry subsystem: registry semantics, histogram
   bucket edges, span tracing, and the JSONL export round-trip. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))
let check_string = Alcotest.(check string)

(* --- Json -------------------------------------------------------------- *)

let test_json_roundtrip () =
  let open Obs.Json in
  let doc =
    Obj
      [
        ("null", Null);
        ("yes", Bool true);
        ("int", Num 42.0);
        ("frac", Num 1.5);
        ("text", Str "a \"quoted\"\nline");
        ("list", List [ Num 1.0; Str "two"; Bool false ]);
        ("nested", Obj [ ("k", Null) ]);
      ]
  in
  let reparsed = parse (to_string doc) in
  check "compact round-trips" true (reparsed = doc);
  let reparsed_pretty = parse (to_string_pretty doc) in
  check "pretty round-trips" true (reparsed_pretty = doc);
  check_string "integral floats print as ints" "42" (to_string (Num 42.0));
  check "member" true (member "int" doc = Some (Num 42.0));
  check "member missing" true (member "absent" doc = None)

let test_json_parse_errors () =
  let bad s = Obs.Json.parse_opt s = None in
  check "trailing garbage" true (bad "{} x");
  check "unterminated string" true (bad "\"abc");
  check "bare word" true (bad "flase");
  check "unterminated object" true (bad "{\"a\": 1");
  check "valid stays valid" true (not (bad "{\"a\": [1, 2, {\"b\": null}]}"))

(* --- Histogram --------------------------------------------------------- *)

let test_histogram_bucket_edges () =
  let h = Obs.Histogram.create ~edges:[| 1.0; 2.0; 5.0 |] () in
  (* x lands in the first bucket with x <= edge; beyond the last edge is
     the overflow bucket. *)
  List.iter (Obs.Histogram.observe h) [ 0.5; 1.0; 1.0001; 2.0; 5.0; 7.0 ];
  (match Obs.Histogram.buckets h with
  | [ (e1, c1); (e2, c2); (e3, c3); (einf, cinf) ] ->
      check_float "edge 1" 1.0 e1;
      check_int "<=1" 2 c1;
      check_float "edge 2" 2.0 e2;
      check_int "<=2" 2 c2;
      check_float "edge 5" 5.0 e3;
      check_int "<=5" 1 c3;
      check "overflow edge" true (einf = infinity);
      check_int "overflow" 1 cinf
  | _ -> Alcotest.fail "expected 4 buckets");
  check_int "count" 6 (Obs.Histogram.count h);
  check_float "sum" 16.5001 (Obs.Histogram.sum h);
  check_float "min" 0.5 (Obs.Histogram.min h);
  check_float "max" 7.0 (Obs.Histogram.max h)

let test_histogram_percentile () =
  let h = Obs.Histogram.create ~edges:[| 1.0; 2.0; 5.0 |] () in
  check "empty percentile is nan" true (Float.is_nan (Obs.Histogram.percentile h 50.0));
  List.iter (Obs.Histogram.observe h) [ 0.5; 0.6; 0.7; 3.0 ];
  (* Percentiles resolve to the upper edge of the rank's bucket. *)
  check_float "p50 upper edge" 1.0 (Obs.Histogram.percentile h 50.0);
  check_float "p100 upper edge" 5.0 (Obs.Histogram.percentile h 100.0);
  Obs.Histogram.observe h 99.0;
  (* Overflow bucket reports the observed max instead of infinity. *)
  check_float "overflow percentile" 99.0 (Obs.Histogram.percentile h 100.0);
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Histogram.percentile: p out of [0,100]") (fun () ->
      ignore (Obs.Histogram.percentile h 101.0))

let test_histogram_bad_edges () =
  let bad edges =
    match Obs.Histogram.create ~edges () with
    | (_ : Obs.Histogram.t) -> false
    | exception Invalid_argument _ -> true
  in
  check "empty edges rejected" true (bad [||]);
  check "non-increasing rejected" true (bad [| 1.0; 1.0 |]);
  check "decreasing rejected" true (bad [| 2.0; 1.0 |])

(* --- Spans ------------------------------------------------------------- *)

let test_span_parent_child () =
  let store = Obs.Span.create_store () in
  let root = Obs.Span.start store ~name:"request" ~time:1.0 () in
  let child_a = Obs.Span.start store ~name:"order" ~parent:root ~time:1.2 () in
  let child_b = Obs.Span.start store ~name:"execute" ~parent:root ~time:1.5 () in
  Obs.Span.finish store child_a ~time:1.4;
  Obs.Span.finish store child_b ~time:1.9;
  Obs.Span.finish store root ~time:2.0;
  (match Obs.Span.span store root with
  | Some s ->
      check_float "root start" 1.0 s.Obs.Span.start_time;
      check "root duration" true (Obs.Span.duration s = Some 1.0)
  | None -> Alcotest.fail "root span missing");
  (match Obs.Span.children store root with
  | [ a; b ] ->
      check_string "first child by start time" "order" a.Obs.Span.name;
      check_string "second child" "execute" b.Obs.Span.name;
      check "child duration" true
        (match Obs.Span.duration a with
        | Some d -> abs_float (d -. 0.2) < 1e-9
        | None -> false)
  | _ -> Alcotest.fail "expected two children");
  check_int "all spans" 3 (List.length (Obs.Span.all_spans store))

let test_pipeline_marks () =
  let store = Obs.Span.create_store ~opens:[ "flip" ] ~closes:[ "repaint" ] () in
  let mark stage time = Obs.Span.mark store ~trace:"status:B57:0" ~stage ~time in
  (* A mark with no open instance is an orphan. *)
  Obs.Span.mark store ~trace:"status:B57:0" ~stage:"report" ~time:0.5;
  check_int "orphan counted" 1 (Obs.Span.orphan_count store);
  mark "flip" 1.0;
  mark "report" 1.05;
  (* Only the first occurrence of a stage is kept. *)
  mark "report" 1.06;
  mark "repaint" 1.08;
  check_int "completed" 1 (Obs.Span.completed_count store);
  (match Obs.Span.completed store with
  | [ inst ] ->
      check "marks in causal order" true
        (Obs.Span.marks inst = [ ("flip", 1.0); ("report", 1.05); ("repaint", 1.08) ]);
      check "mark_time" true (Obs.Span.mark_time inst "report" = Some 1.05)
  | _ -> Alcotest.fail "expected one completed instance");
  (* Re-opening before closing abandons the open instance. *)
  mark "flip" 2.0;
  mark "flip" 3.0;
  check_int "abandoned" 1 (Obs.Span.abandoned_count store);
  check_int "still one active" 1 (Obs.Span.active_count store);
  mark "repaint" 3.1;
  check_int "second completion" 2 (Obs.Span.completed_count store)

let test_stage_breakdown () =
  let store = Obs.Span.create_store ~opens:[ "a" ] ~closes:[ "c" ] () in
  let run trace t0 =
    Obs.Span.mark store ~trace ~stage:"a" ~time:t0;
    Obs.Span.mark store ~trace ~stage:"b" ~time:(t0 +. 0.1);
    Obs.Span.mark store ~trace ~stage:"c" ~time:(t0 +. 0.3)
  in
  run "k1" 1.0;
  run "k2" 2.0;
  let breakdown =
    Obs.Span.stage_breakdown store
      ~stages:[ ("first", "a", "b"); ("second", "b", "c"); ("whole", "a", "c") ]
  in
  List.iter
    (fun (label, expected) ->
      match List.assoc_opt label breakdown with
      | Some s ->
          check_int (label ^ " count") 2 (Sim.Stats.Summary.count s);
          check (label ^ " mean") true
            (abs_float (Sim.Stats.Summary.mean s -. expected) < 1e-9)
      | None -> Alcotest.fail (label ^ " missing"))
    [ ("first", 0.1); ("second", 0.2); ("whole", 0.3) ]

let test_trace_keys () =
  check_string "status key" "status:B57:1" (Obs.Span.status_key ~breaker:"B57" ~closed:true);
  check_string "status key open" "status:B57:0"
    (Obs.Span.status_key ~breaker:"B57" ~closed:false);
  check_string "command key" "cmd:B10-1:0" (Obs.Span.command_key ~breaker:"B10-1" ~close:false);
  (* Must match the canonical Scada.Op encoding exactly — the whole
     correlation scheme rests on it. *)
  check_string "matches Scada.Op status"
    (Scada.Op.encode (Scada.Op.Status { breaker = "B57"; closed = true }))
    (Obs.Span.status_key ~breaker:"B57" ~closed:true);
  check_string "matches Scada.Op command"
    (Scada.Op.encode (Scada.Op.Command { breaker = "B57"; close = false }))
    (Obs.Span.command_key ~breaker:"B57" ~close:false)

(* --- Registry ----------------------------------------------------------- *)

let test_registry_disabled_noop () =
  let r = Obs.Registry.create () in
  check "fresh registry disabled" false (Obs.Registry.enabled r);
  Obs.Registry.incr r "a";
  Obs.Registry.set_gauge r "g" 1.0;
  Obs.Registry.observe r "h" 0.5;
  Obs.Registry.mark r ~trace:"k" ~stage:Obs.Registry.stage_flip ~time:1.0;
  let id = Obs.Registry.span_start r ~name:"s" ~time:1.0 () in
  check_int "disabled span id" 0 id;
  check_int "counter untouched" 0 (Obs.Registry.counter r "a");
  check "gauge untouched" true (Obs.Registry.gauge r "g" = None);
  check "histogram untouched" true (Obs.Registry.histogram r "h" = None);
  check_int "no pipeline activity" 0 (Obs.Span.active_count (Obs.Registry.spans r));
  check_int "not even orphans" 0 (Obs.Span.orphan_count (Obs.Registry.spans r))

let test_registry_enabled_records () =
  let r = Obs.Registry.create () in
  Obs.Registry.set_enabled r true;
  Obs.Registry.incr r "b";
  Obs.Registry.incr r "a";
  Obs.Registry.incr ~by:3 r "a";
  Obs.Registry.set_gauge r "g" 2.5;
  Obs.Registry.observe r "h" 0.5;
  Obs.Registry.observe r "h" 1.5;
  check_int "counter a" 4 (Obs.Registry.counter r "a");
  check_int "counter b" 1 (Obs.Registry.counter r "b");
  check "counters sorted by name" true
    (List.map fst (Obs.Registry.counters r) = [ "a"; "b" ]);
  check "gauge" true (Obs.Registry.gauge r "g" = Some 2.5);
  (match Obs.Registry.histogram r "h" with
  | Some h -> check_int "histogram count" 2 (Obs.Histogram.count h)
  | None -> Alcotest.fail "histogram missing");
  Obs.Registry.reset r;
  check "reset keeps enabled" true (Obs.Registry.enabled r);
  check_int "reset clears counters" 0 (Obs.Registry.counter r "a");
  check "reset clears histograms" true (Obs.Registry.histogram r "h" = None)

let test_registry_with_enabled () =
  let r = Obs.Registry.create () in
  Obs.Registry.set_enabled r true;
  Obs.Registry.incr r "stale";
  Obs.Registry.set_enabled r false;
  let result =
    Obs.Registry.with_enabled r (fun () ->
        check "enabled inside" true (Obs.Registry.enabled r);
        check_int "previous data cleared" 0 (Obs.Registry.counter r "stale");
        Obs.Registry.incr r "fresh";
        "done")
  in
  check_string "returns body result" "done" result;
  check "restored to disabled" false (Obs.Registry.enabled r);
  check_int "data survives exit" 1 (Obs.Registry.counter r "fresh");
  (* The previous state is restored even when the body raises. *)
  (try
     Obs.Registry.with_enabled r (fun () -> failwith "boom")
   with Failure _ -> ());
  check "restored after exception" false (Obs.Registry.enabled r)

let test_registry_pipeline_stages () =
  let r = Obs.Registry.create () in
  Obs.Registry.set_enabled r true;
  let trace = Obs.Span.status_key ~breaker:"B57" ~closed:false in
  List.iter
    (fun (stage, time) -> Obs.Registry.mark r ~trace ~stage ~time)
    [
      (Obs.Registry.stage_flip, 1.0);
      (Obs.Registry.stage_report, 1.05);
      (Obs.Registry.stage_accept, 1.06);
      (Obs.Registry.stage_preorder, 1.08);
      (Obs.Registry.stage_execute, 1.09);
      (Obs.Registry.stage_repaint, 1.1);
    ];
  check_int "one completed instance" 1 (Obs.Span.completed_count (Obs.Registry.spans r));
  let breakdown = Obs.Export.reaction_breakdown r in
  let total =
    List.fold_left
      (fun acc (label, s) ->
        if String.equal label "end-to-end" then acc else acc +. Sim.Stats.Summary.mean s)
      0.0 breakdown
  in
  (match List.assoc_opt "end-to-end" breakdown with
  | Some s ->
      check "stage sums telescope to end-to-end" true
        (abs_float (total -. Sim.Stats.Summary.mean s) < 1e-9)
  | None -> Alcotest.fail "end-to-end row missing")

(* --- Export ------------------------------------------------------------- *)

let test_summary_to_json () =
  let s = Sim.Stats.Summary.create () in
  let empty = Obs.Export.summary_to_json s in
  check "empty summary has count 0" true (Obs.Json.member "count" empty = Some (Obs.Json.Num 0.0));
  check "empty summary has no mean" true (Obs.Json.member "mean" empty = None);
  List.iter (Sim.Stats.Summary.add s) [ 1.0; 2.0; 3.0 ];
  let j = Obs.Export.summary_to_json s in
  let field k = Option.bind (Obs.Json.member k j) Obs.Json.num in
  check "count" true (field "count" = Some 3.0);
  check "mean" true (match field "mean" with Some m -> abs_float (m -. 2.0) < 1e-6 | None -> false);
  check "p50" true (match field "p50" with Some m -> abs_float (m -. 2.0) < 1e-6 | None -> false);
  check "p99 present" true (field "p99" <> None)

let test_jsonl_roundtrip () =
  let r = Obs.Registry.create () in
  Obs.Registry.with_enabled r (fun () ->
      Obs.Registry.incr ~by:2 r "events";
      Obs.Registry.set_gauge r "depth" 3.5;
      Obs.Registry.observe r "lat" 0.02;
      let id = Obs.Registry.span_start r ~name:"op" ~time:1.0 () in
      Obs.Registry.span_finish r id ~time:1.5;
      let trace = Obs.Span.status_key ~breaker:"B1" ~closed:true in
      Obs.Registry.mark r ~trace ~stage:Obs.Registry.stage_flip ~time:2.0;
      Obs.Registry.mark r ~trace ~stage:Obs.Registry.stage_repaint ~time:2.1);
  let dump = Obs.Export.jsonl_to_string r in
  let rows = Obs.Export.parse_jsonl dump in
  let of_type ty = List.filter (fun (t, _) -> String.equal t ty) rows in
  check_int "one counter row" 1 (List.length (of_type "counter"));
  check_int "one gauge row" 1 (List.length (of_type "gauge"));
  check_int "one histogram row" 1 (List.length (of_type "histogram"));
  check_int "one span row" 1 (List.length (of_type "span"));
  check_int "one pipeline row" 1 (List.length (of_type "pipeline"));
  (match of_type "counter" with
  | [ (_, j) ] ->
      check "counter name" true (Obs.Json.member "name" j = Some (Obs.Json.Str "events"));
      check "counter value" true (Obs.Json.member "value" j = Some (Obs.Json.Num 2.0))
  | _ -> Alcotest.fail "counter row shape");
  (match of_type "pipeline" with
  | [ (_, j) ] ->
      check "pipeline trace" true
        (Obs.Json.member "trace" j = Some (Obs.Json.Str "status:B1:1"))
  | _ -> Alcotest.fail "pipeline row shape")

(* --- Json: non-finite numbers ------------------------------------------- *)

let test_json_nonfinite () =
  let open Obs.Json in
  (* JSON has no NaN/Infinity literals; the printer must emit null, not a
     token no parser accepts. *)
  check_string "nan prints as null" "null" (to_string (Num Float.nan));
  check_string "inf prints as null" "null" (to_string (Num Float.infinity));
  check_string "-inf prints as null" "null" (to_string (Num Float.neg_infinity));
  let doc = Obj [ ("p50", Num Float.nan); ("count", Num 0.0) ] in
  check "round-trips with non-finite leaves as null" true
    (parse (to_string doc) = Obj [ ("p50", Null); ("count", Num 0.0) ]);
  check "pretty form parses too" true (parse_opt (to_string_pretty doc) <> None);
  (* The empty histogram was the original offender: its min/max and
     percentiles are NaN before any observation. *)
  let h = Obs.Histogram.create ~edges:[| 1.0 |] () in
  check "empty histogram export parses" true
    (parse_opt (to_string (Obs.Histogram.to_json h)) <> None)

(* --- Span: bounded completed store -------------------------------------- *)

let test_span_completed_capacity () =
  let store = Obs.Span.create_store ~capacity:3 ~opens:[ "a" ] ~closes:[ "b" ] () in
  for i = 1 to 5 do
    let trace = Printf.sprintf "k%d" i in
    Obs.Span.mark store ~trace ~stage:"a" ~time:(float_of_int i);
    Obs.Span.mark store ~trace ~stage:"b" ~time:(float_of_int i +. 0.5)
  done;
  (* The count of ever-completed instances stays exact even once the
     ring starts evicting. *)
  check_int "completed_count exact" 5 (Obs.Span.completed_count store);
  check_int "ring retains capacity" 3 (Obs.Span.completed_retained store);
  (match Obs.Span.completed store with
  | [ i3; i4; i5 ] ->
      check "oldest survivor is k3" true (Obs.Span.mark_time i3 "a" = Some 3.0);
      check "then k4" true (Obs.Span.mark_time i4 "a" = Some 4.0);
      check "newest is k5" true (Obs.Span.mark_time i5 "a" = Some 5.0)
  | l -> Alcotest.fail (Printf.sprintf "expected 3 retained, got %d" (List.length l)));
  check "capacity 0 rejected" true
    (match Obs.Span.create_store ~capacity:0 () with
    | exception Invalid_argument _ -> true
    | (_ : Obs.Span.store) -> false);
  (* Unbounded stores keep everything, as before. *)
  let u = Obs.Span.create_store ~opens:[ "a" ] ~closes:[ "b" ] () in
  for i = 1 to 5 do
    let trace = Printf.sprintf "k%d" i in
    Obs.Span.mark u ~trace ~stage:"a" ~time:(float_of_int i);
    Obs.Span.mark u ~trace ~stage:"b" ~time:(float_of_int i +. 0.5)
  done;
  check_int "unbounded retains all" 5 (List.length (Obs.Span.completed u))

(* --- Flight recorder ----------------------------------------------------- *)

let test_flight_recorder () =
  let fl = Obs.Flight.create ~capacity:2 () in
  Obs.Flight.record fl ~time:0.5 ~severity:Obs.Flight.Info ~subsystem:"x" ~kind:"k" "off";
  check_int "disabled records nothing" 0 (Obs.Flight.total fl);
  Obs.Flight.set_enabled fl true;
  Obs.Flight.record fl ~time:1.0 ~severity:Obs.Flight.Info ~subsystem:"x" ~kind:"one" "first";
  Obs.Flight.record fl ~time:2.0 ~severity:Obs.Flight.Warn ~subsystem:"x" ~kind:"two" "second";
  Obs.Flight.record fl ~time:3.0 ~severity:Obs.Flight.Alarm ~subsystem:"y" ~kind:"three" "third";
  check_int "total counts evicted events too" 3 (Obs.Flight.total fl);
  check_int "ring retains capacity" 2 (Obs.Flight.retained fl);
  check_int "warn count" 1 (Obs.Flight.warn_count fl);
  check_int "alarm count" 1 (Obs.Flight.alarm_count fl);
  (match Obs.Flight.events fl with
  | [ e2; e3 ] ->
      check_string "oldest retained" "two" e2.Obs.Flight.ev_kind;
      check_string "newest retained" "three" e3.Obs.Flight.ev_kind;
      check_int "seq numbers stay global" 3 e3.Obs.Flight.ev_seq
  | _ -> Alcotest.fail "expected two retained events");
  let lines = String.split_on_char '\n' (String.trim (Obs.Flight.to_jsonl fl)) in
  check_int "one jsonl line per retained event" 2 (List.length lines);
  List.iter (fun l -> check "jsonl line parses" true (Obs.Json.parse_opt l <> None)) lines;
  check "capacity 0 rejected" true
    (match Obs.Flight.create ~capacity:0 () with
    | exception Invalid_argument _ -> true
    | (_ : Obs.Flight.t) -> false)

let test_flight_clock_and_subscribers () =
  let fl = Obs.Flight.create () in
  Obs.Flight.set_enabled fl true;
  let clock = ref 7.5 in
  Obs.Flight.set_clock fl (fun () -> !clock);
  let seen = ref [] in
  Obs.Flight.on_event fl (fun e -> seen := e.Obs.Flight.ev_kind :: !seen);
  Obs.Flight.record fl ~severity:Obs.Flight.Info ~subsystem:"x" ~kind:"a" "";
  (match Obs.Flight.events fl with
  | [ e ] -> check_float "installed clock consulted" 7.5 e.Obs.Flight.ev_time
  | _ -> Alcotest.fail "expected one event");
  check "subscriber saw the event" true (!seen = [ "a" ]);
  Obs.Flight.reset fl;
  check_int "reset clears the buffer" 0 (Obs.Flight.total fl);
  Obs.Flight.record fl ~time:1.0 ~severity:Obs.Flight.Info ~subsystem:"x" ~kind:"b" "";
  check "reset dropped the subscriber" true (!seen = [ "a" ])

(* --- Health probes -------------------------------------------------------- *)

let test_probe_gating_and_sampling () =
  let p = Obs.Probe.create () in
  Obs.Probe.register p ~name:"b" (fun () -> [ ("m", 1.0) ]);
  check_int "disabled register is a no-op" 0 (Obs.Probe.count p);
  Obs.Probe.set_enabled p true;
  Obs.Probe.register p ~name:"b" (fun () -> [ ("z", 2.0); ("a", 1.0) ]);
  Obs.Probe.register p ~name:"a" (fun () -> [ ("m", 0.0) ]);
  check_int "two probes registered" 2 (Obs.Probe.count p);
  (match Obs.Probe.sample p with
  | [ ("a", [ ("m", 0.0) ]); ("b", [ ("a", 1.0); ("z", 2.0) ]) ] -> ()
  | _ -> Alcotest.fail "sample must sort probes and metrics by name");
  (* Restarted subsystems re-register under the same name: newest wins. *)
  Obs.Probe.register p ~name:"a" (fun () -> [ ("m", 9.0) ]);
  check_int "re-register replaces" 2 (Obs.Probe.count p);
  (match List.assoc_opt "a" (Obs.Probe.sample p) with
  | Some [ ("m", 9.0) ] -> ()
  | _ -> Alcotest.fail "newest registration must win");
  check "sample_json parses" true
    (Obs.Json.parse_opt (Obs.Json.to_string (Obs.Probe.sample_json (Obs.Probe.sample p)))
    <> None);
  Obs.Probe.reset p;
  check_int "reset drops probes" 0 (Obs.Probe.count p)

let test_probe_label_suffix () =
  let p = Obs.Probe.create () in
  Obs.Probe.set_enabled p true;
  Obs.Probe.set_label p (Some "s03");
  Obs.Probe.register p ~name:"prime.replica.2" (fun () -> [ ("view", 0.0) ]);
  Obs.Probe.set_label p None;
  Obs.Probe.register p ~name:"prime.replica.2" (fun () -> [ ("view", 1.0) ]);
  (* Labelled and unlabelled instances coexist; the label is a suffix so
     the "prime." prefix the alert rules match stays intact. *)
  check_int "two distinct probes" 2 (Obs.Probe.count p);
  (match Obs.Probe.sample p with
  | [ ("prime.replica.2", _); ("prime.replica.2@s03", _) ] -> ()
  | _ -> Alcotest.fail "labelled probe must register under name@label");
  (* with_label scopes and restores; unregister honours the label. *)
  Obs.Probe.with_label p "s07" (fun () ->
      Obs.Probe.register p ~name:"spines.node.1" (fun () -> []));
  check_int "scoped registration landed" 3 (Obs.Probe.count p);
  Obs.Probe.register p ~name:"plain" (fun () -> []);
  check "label restored after with_label" true
    (List.mem_assoc "plain" (Obs.Probe.sample p));
  Obs.Probe.set_label p (Some "s03");
  Obs.Probe.unregister p "prime.replica.2";
  Obs.Probe.set_label p None;
  check "unregister removed the labelled instance" false
    (List.mem_assoc "prime.replica.2@s03" (Obs.Probe.sample p));
  check "unlabelled instance survives" true
    (List.mem_assoc "prime.replica.2" (Obs.Probe.sample p))

let test_probe_sorted_cache_invalidation () =
  let p = Obs.Probe.create () in
  Obs.Probe.set_enabled p true;
  (* Values are read through the closure at sample time, never cached. *)
  let v = ref 1.0 in
  Obs.Probe.register p ~name:"m" (fun () -> [ ("x", !v) ]);
  check "first sample" true (Obs.Probe.sample p = [ ("m", [ ("x", 1.0) ]) ]);
  v := 2.0;
  check "second sample sees fresh value" true (Obs.Probe.sample p = [ ("m", [ ("x", 2.0) ]) ]);
  (* Registrations after a sample must appear (the sorted cache is
     invalidated, not stale). *)
  Obs.Probe.register p ~name:"a" (fun () -> [ ("y", 0.0) ]);
  check "new probe visible and sorted first" true
    (List.map fst (Obs.Probe.sample p) = [ "a"; "m" ]);
  Obs.Probe.register p ~name:"m" (fun () -> [ ("x", 9.0) ]);
  check "replacement visible after cache" true
    (Obs.Probe.sample p = [ ("a", [ ("y", 0.0) ]); ("m", [ ("x", 9.0) ]) ]);
  Obs.Probe.unregister p "a";
  check "unregister invalidates" true (List.map fst (Obs.Probe.sample p) = [ "m" ]);
  Obs.Probe.reset p;
  check "reset invalidates" true (Obs.Probe.sample p = [])

(* --- Alert engine --------------------------------------------------------- *)

let test_alert_edge_trigger () =
  let active = ref false in
  let rule =
    Obs.Alert.sample_rule ~name:"stuck" (fun _ -> if !active then Some "held" else None)
  in
  let a = Obs.Alert.create ~sample_rules:[ rule ] ~event_rules:[] () in
  Obs.Alert.evaluate a ~time:1.0 [];
  check_int "quiet start" 0 (Obs.Alert.alarm_count a);
  active := true;
  Obs.Alert.evaluate a ~time:2.0 [];
  Obs.Alert.evaluate a ~time:3.0 [];
  check_int "edge fires once, not per tick" 1 (Obs.Alert.alarm_count a);
  active := false;
  Obs.Alert.evaluate a ~time:4.0 [];
  active := true;
  Obs.Alert.evaluate a ~time:5.0 [];
  check_int "re-arms after the condition clears" 2 (Obs.Alert.alarm_count a);
  (match Obs.Alert.first_alarm_after a 4.5 with
  | Some al ->
      check_float "second alarm time" 5.0 al.Obs.Alert.al_time;
      check_string "rule name" "stuck" al.Obs.Alert.al_rule
  | None -> Alcotest.fail "expected an alarm after t=4.5")

let test_alert_event_window () =
  let fl = Obs.Flight.create () in
  Obs.Flight.set_enabled fl true;
  let rule =
    Obs.Alert.event_rule ~name:"burst" ~kinds:[ "boom" ] ~threshold:2 ~window:1.0
      ~cooldown:5.0 ()
  in
  let a = Obs.Alert.create ~sample_rules:[] ~event_rules:[ rule ] ~flight:fl () in
  let boom t =
    Obs.Flight.record fl ~time:t ~severity:Obs.Flight.Warn ~subsystem:"x" ~kind:"boom" ""
  in
  boom 1.0;
  check_int "below threshold" 0 (Obs.Alert.alarm_count a);
  boom 2.5;
  check_int "stale events aged out of the window" 0 (Obs.Alert.alarm_count a);
  boom 3.0;
  check_int "two inside the window fire" 1 (Obs.Alert.alarm_count a);
  boom 3.1;
  boom 3.2;
  check_int "cooldown suppresses a refire" 1 (Obs.Alert.alarm_count a);
  boom 9.0;
  boom 9.1;
  check_int "fires again after the cooldown" 2 (Obs.Alert.alarm_count a);
  (* Alarms are echoed into the recorder (and must not feed back into
     the event rules). *)
  check_int "alarms echoed to flight" 2 (Obs.Flight.alarm_count fl);
  (match Obs.Alert.alarms a with
  | first :: _ -> check_float "oldest first" 3.0 first.Obs.Alert.al_time
  | [] -> Alcotest.fail "expected alarms")

let suite =
  [
    ("json roundtrip", `Quick, test_json_roundtrip);
    ("json parse errors", `Quick, test_json_parse_errors);
    ("histogram bucket edges", `Quick, test_histogram_bucket_edges);
    ("histogram percentile", `Quick, test_histogram_percentile);
    ("histogram bad edges", `Quick, test_histogram_bad_edges);
    ("span parent child", `Quick, test_span_parent_child);
    ("pipeline marks", `Quick, test_pipeline_marks);
    ("stage breakdown", `Quick, test_stage_breakdown);
    ("trace keys", `Quick, test_trace_keys);
    ("registry disabled noop", `Quick, test_registry_disabled_noop);
    ("registry enabled records", `Quick, test_registry_enabled_records);
    ("registry with_enabled", `Quick, test_registry_with_enabled);
    ("registry pipeline stages", `Quick, test_registry_pipeline_stages);
    ("summary to_json", `Quick, test_summary_to_json);
    ("jsonl roundtrip", `Quick, test_jsonl_roundtrip);
    ("json non-finite", `Quick, test_json_nonfinite);
    ("span completed capacity", `Quick, test_span_completed_capacity);
    ("flight recorder", `Quick, test_flight_recorder);
    ("flight clock and subscribers", `Quick, test_flight_clock_and_subscribers);
    ("probe gating and sampling", `Quick, test_probe_gating_and_sampling);
    ("probe label suffix", `Quick, test_probe_label_suffix);
    ("probe sorted cache invalidation", `Quick, test_probe_sorted_cache_invalidation);
    ("alert edge trigger", `Quick, test_alert_edge_trigger);
    ("alert event window", `Quick, test_alert_event_window);
  ]

let () = Alcotest.run "obs" [ ("obs", suite) ]
