(* Integration tests: the full Spire deployment (replicas, dual Spines
   networks, proxies, PLCs, HMIs) and the commercial baseline, end to
   end inside the simulator. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A compact scenario keeps integration tests fast: one physical PLC with
   three breakers and one two-breaker feed. *)
let mini_scenario =
  {
    Plc.Power.scenario_name = "mini";
    plcs = [ { Plc.Power.plc_name = "MAIN"; breaker_names = [ "B10-1"; "B57"; "B56" ]; physical = true } ];
    feeds = [ { Plc.Power.load_name = "Building-A"; path = [ "B10-1"; "B57" ] } ];
  }

let make_spire ?(config = Prime.Config.create ~f:1 ~k:0 ()) ?(hardened = true)
    ?(scenario = mini_scenario) () =
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create () in
  let d = Spire.Deployment.create ~hardened ~engine ~trace ~config scenario in
  (engine, d)

let run engine ~until = Sim.Engine.run ~until engine

let hmi d = (Spire.Deployment.hmis d).(0).Spire.Deployment.h_hmi

let main_breaker d name =
  match Spire.Deployment.find_breaker d name with
  | Some (_, b) -> b
  | None -> Alcotest.fail ("breaker not found: " ^ name)

let master_states d =
  Array.to_list
    (Array.map
       (fun r -> Scada.State.digest (Scada.Master.state r.Spire.Deployment.r_master))
       (Spire.Deployment.replicas d))

(* --- Spire end-to-end -------------------------------------------------------- *)

let test_status_propagates_to_hmi () =
  let engine, d = make_spire () in
  run engine ~until:3.0;
  (* Everything starts closed; the HMI should know that. *)
  Alcotest.(check (option bool)) "initially closed" (Some true)
    (Scada.Hmi.displayed_closed (hmi d) "B57");
  (* A field event: the breaker opens physically. *)
  Plc.Breaker.force (main_breaker d "B57") Plc.Breaker.Open;
  run engine ~until:6.0;
  Alcotest.(check (option bool)) "hmi sees it open" (Some false)
    (Scada.Hmi.displayed_closed (hmi d) "B57");
  (* All masters hold identical state. *)
  (match master_states d with
  | first :: rest -> List.iter (fun s -> Alcotest.(check string) "states agree" first s) rest
  | [] -> Alcotest.fail "no masters")

let test_command_actuates_breaker () =
  let engine, d = make_spire () in
  run engine ~until:3.0;
  check "starts closed" true (Plc.Breaker.is_closed (main_breaker d "B10-1"));
  ignore (Scada.Hmi.command (hmi d) ~breaker:"B10-1" ~close:false);
  run engine ~until:8.0;
  check "breaker opened by supervisory command" false
    (Plc.Breaker.is_closed (main_breaker d "B10-1"));
  Alcotest.(check (option bool)) "hmi reflects it" (Some false)
    (Scada.Hmi.displayed_closed (hmi d) "B10-1");
  (* The energized computation follows. *)
  let loads = Scada.Hmi.energized_loads (hmi d) in
  Alcotest.(check (list (pair string bool))) "building dark" [ ("Building-A", false) ] loads

let test_single_master_cannot_actuate () =
  (* A compromised master alone sends a forged command directly to the
     proxy; the f + 1 threshold must hold the line. *)
  let engine, d = make_spire () in
  run engine ~until:3.0;
  let r0 = (Spire.Deployment.replicas d).(0) in
  let proxy_bundle = (Spire.Deployment.proxies d).(0) in
  let body =
    Scada.Messages.encode_breaker_command ~rep:0 ~exec_seq:9999 ~breaker:"B57" ~close:false
  in
  let forged =
    Scada.Messages.Breaker_command
      {
        bc_rep = 0;
        bc_exec_seq = 9999;
        bc_breaker = "B57";
        bc_close = false;
        bc_sig = Crypto.Signature.sign r0.Spire.Deployment.r_keypair body;
      }
  in
  (* Deliver it straight to the proxy several times (replay included). *)
  for _ = 1 to 5 do
    Spire.Deployment.proxy_handle_payload proxy_bundle (Scada.Messages.Scada_msg forged)
  done;
  run engine ~until:6.0;
  check "breaker still closed" true (Plc.Breaker.is_closed (main_breaker d "B57"))

let test_replica_crash_transparent () =
  let engine, d = make_spire () in
  run engine ~until:3.0;
  Spire.Deployment.take_down_replica d 2;
  ignore (Scada.Hmi.command (hmi d) ~breaker:"B56" ~close:false);
  run engine ~until:10.0;
  check "command executed with one replica down" false
    (Plc.Breaker.is_closed (main_breaker d "B56"))

let test_proactive_recovery_cycle () =
  let config = Prime.Config.power_plant () in
  let engine, d = make_spire ~config () in
  run engine ~until:3.0;
  (* Take replica 3 through a full recovery while traffic flows. *)
  Spire.Deployment.take_down_replica d 3;
  ignore (Scada.Hmi.command (hmi d) ~breaker:"B57" ~close:false);
  run engine ~until:8.0;
  check "command executed during recovery" false
    (Plc.Breaker.is_closed (main_breaker d "B57"));
  Spire.Deployment.bring_up_replica_clean d 3;
  ignore (Scada.Hmi.command (hmi d) ~breaker:"B57" ~close:true);
  run engine ~until:25.0;
  check "command executed after recovery" true (Plc.Breaker.is_closed (main_breaker d "B57"));
  (* The recovered master converged to the same state as the others. *)
  match master_states d with
  | first :: rest -> List.iter (fun s -> Alcotest.(check string) "converged" first s) rest
  | [] -> Alcotest.fail "no masters"

let test_application_state_transfer_between_masters () =
  (* Tiny replication log: a replica that misses more updates than the
     log retains must recover through the masters' application-level
     state transfer protocol (Section III-A), end to end over the real
     Spines networks. *)
  let config = Prime.Config.create ~f:1 ~k:0 ~log_retention:8 () in
  let engine, d = make_spire ~config () in
  run engine ~until:3.0;
  Spire.Deployment.take_down_replica d 3;
  (* More field changes than the log retains. *)
  for i = 1 to 12 do
    ignore
      (Sim.Engine.schedule engine ~delay:(3.0 +. (0.6 *. float_of_int i)) (fun () ->
           Plc.Breaker.toggle_force (main_breaker d "B57")))
  done;
  run engine ~until:12.0;
  Spire.Deployment.bring_up_replica_clean d 3;
  (* Keep some traffic flowing so the gap is visible. *)
  for i = 1 to 6 do
    ignore
      (Sim.Engine.schedule engine ~delay:(12.5 +. (2.0 *. float_of_int i)) (fun () ->
           Plc.Breaker.toggle_force (main_breaker d "B56")))
  done;
  run engine ~until:40.0;
  let r3 = (Spire.Deployment.replicas d).(3) in
  check "application transfer completed" true
    (Sim.Stats.Counter.get (Scada.Master.counters r3.Spire.Deployment.r_master)
       "transfer.completed"
     >= 1);
  (* The recovered master converged on the same state as the others. *)
  (match master_states d with
  | first :: rest -> List.iter (fun st -> Alcotest.(check string) "states agree" first st) rest
  | [] -> Alcotest.fail "no masters");
  (* And it follows new changes normally afterwards. *)
  Plc.Breaker.force (main_breaker d "B10-1") Plc.Breaker.Open;
  run engine ~until:45.0;
  check "recovered master tracks new changes" false
    (Scada.State.reported_closed (Scada.Master.state r3.Spire.Deployment.r_master) "B10-1")

let test_ground_truth_rebuild () =
  let engine, d = make_spire () in
  run engine ~until:3.0;
  (* Field reality diverges while the system is reset: breakers move. *)
  Plc.Breaker.force (main_breaker d "B10-1") Plc.Breaker.Open;
  Plc.Breaker.force (main_breaker d "B56") Plc.Breaker.Open;
  (* Assumption breach: all replicas lose their state simultaneously. *)
  Spire.Deployment.ground_truth_reset d;
  run engine ~until:10.0;
  (* The masters rebuilt their view from the field devices. *)
  let r0 = (Spire.Deployment.replicas d).(0) in
  let state = Scada.Master.state r0.Spire.Deployment.r_master in
  check "B10-1 rebuilt as open" false (Scada.State.reported_closed state "B10-1");
  check "B56 rebuilt as open" false (Scada.State.reported_closed state "B56");
  check "B57 rebuilt as closed" true (Scada.State.reported_closed state "B57");
  Alcotest.(check (option bool)) "hmi rebuilt too" (Some false)
    (Scada.Hmi.displayed_closed (hmi d) "B10-1")

let test_breaker_cycle_driver () =
  let engine, d = make_spire () in
  let driver = Spire.Scenario_driver.create d in
  run engine ~until:2.0;
  Spire.Scenario_driver.start driver ~period:1.0;
  run engine ~until:12.0;
  Spire.Scenario_driver.stop driver;
  check "commands were issued" true (Spire.Scenario_driver.commands_issued driver >= 9);
  run engine ~until:15.0;
  (* Display and field agree for every breaker at quiescence. *)
  List.iter
    (fun name ->
      let field = Plc.Breaker.is_closed (main_breaker d name) in
      Alcotest.(check (option bool)) ("agree on " ^ name) (Some field)
        (Scada.Hmi.displayed_closed (hmi d) name))
    [ "B10-1"; "B57"; "B56" ]

(* --- reaction-time measurement (Section V) ------------------------------------ *)

let test_reaction_time_spire_vs_commercial () =
  let engine, d = make_spire () in
  run engine ~until:3.0;
  let spire_stats, spire_done =
    Spire.Measure.spire_reaction_time ~deployment:d ~breaker:"B57" ~samples:10 ~gap:2.0 ()
  in
  run engine ~until:30.0;
  check_int "all spire samples measured" 10 !spire_done;
  (* Commercial system in its own simulation. *)
  let engine2 = Sim.Engine.create () in
  let trace2 = Sim.Trace.create () in
  let c = Spire.Commercial.create ~engine:engine2 ~trace:trace2 mini_scenario in
  Sim.Engine.run ~until:3.0 engine2;
  let comm_stats, comm_done =
    Spire.Measure.commercial_reaction_time ~engine:engine2 ~commercial:c ~breaker:"B57"
      ~samples:10 ~gap:2.0 ()
  in
  Sim.Engine.run ~until:30.0 engine2;
  check_int "all commercial samples measured" 10 !comm_done;
  let spire_mean = Sim.Stats.Summary.mean spire_stats in
  let comm_mean = Sim.Stats.Summary.mean comm_stats in
  check "spire latency positive" true (spire_mean > 0.0);
  check "spire meets sub-second requirement" true (spire_mean < 1.0);
  (* The paper's result: Spire reflected changes faster than the
     commercial system. *)
  check "spire faster than commercial" true (spire_mean < comm_mean)

(* --- commercial baseline ------------------------------------------------------- *)

let test_commercial_basics () =
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create () in
  let c = Spire.Commercial.create ~engine ~trace mini_scenario in
  Sim.Engine.run ~until:3.0 engine;
  Alcotest.(check (option bool)) "display populated" (Some true)
    (Spire.Commercial.displayed_closed c "B57");
  (* Field change propagates. *)
  (match Spire.Commercial.find_breaker c "B57" with
  | Some b -> Plc.Breaker.force b Plc.Breaker.Open
  | None -> Alcotest.fail "breaker missing");
  Sim.Engine.run ~until:6.0 engine;
  Alcotest.(check (option bool)) "field change displayed" (Some false)
    (Spire.Commercial.displayed_closed c "B57");
  (* Operator command actuates. *)
  Spire.Commercial.hmi_command c ~breaker:"B57" ~close:true;
  Sim.Engine.run ~until:9.0 engine;
  match Spire.Commercial.find_breaker c "B57" with
  | Some b -> check "closed again" true (Plc.Breaker.is_closed b)
  | None -> Alcotest.fail "breaker missing"

let test_commercial_failover () =
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create () in
  let c = Spire.Commercial.create ~engine ~trace mini_scenario in
  Sim.Engine.run ~until:3.0 engine;
  Spire.Commercial.fail_primary c;
  Sim.Engine.run ~until:10.0 engine;
  check "backup took over" true
    (Sim.Stats.Counter.get (Spire.Commercial.counters c) "failover" = 1);
  (* The backup keeps the HMI updated. *)
  (match Spire.Commercial.find_breaker c "B56" with
  | Some b -> Plc.Breaker.force b Plc.Breaker.Open
  | None -> Alcotest.fail "breaker missing");
  Sim.Engine.run ~until:15.0 engine;
  Alcotest.(check (option bool)) "display updated by backup" (Some false)
    (Spire.Commercial.displayed_closed c "B56")

(* --- power-plant scenario sanity ------------------------------------------------ *)

let test_power_plant_scenario_shape () =
  let s = Plc.Power.power_plant in
  check_int "17 plcs (1 physical + 10 dist + 6 gen)" 17 (List.length s.Plc.Power.plcs);
  check_int "total breakers" (3 + 30 + 12) (Plc.Power.total_breakers s);
  let r = Plc.Power.red_team in
  check_int "red team plcs" 11 (List.length r.Plc.Power.plcs);
  check_int "red team breakers" 37 (Plc.Power.total_breakers r);
  (* Energization logic. *)
  let closed = fun _ -> true in
  let all_on = Plc.Power.energized r ~is_closed:closed in
  check "all loads energized when everything closed" true (List.for_all snd all_on);
  let b57_open = fun name -> not (String.equal name "B57") in
  let with_open = Plc.Power.energized r ~is_closed:b57_open in
  check "Building-A dark without B57" true
    (List.assoc "Building-A" with_open = false);
  check "Building-B unaffected" true (List.assoc "Building-B" with_open = true)

(* --- sharded grid ------------------------------------------------------------- *)

let test_grid_sharded_end_to_end () =
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create () in
  let config = Prime.Config.create ~f:1 ~k:0 () in
  let scenario = Plc.Power.synthetic ~per_site:2 ~devices:8 () in
  let g = Spire.Grid.create ~engine ~trace ~config ~shards:2 scenario in
  run engine ~until:3.0;
  check_int "two shards" 2 (Spire.Grid.shard_count g);
  (* Grid-wide overview: one aggregated query per shard, each accepted
     only with f + 1 replica agreement on the state digest. *)
  let ov = Spire.Grid.overview g in
  check_int "overview rows" 2 (List.length ov);
  List.iter
    (fun row -> check ("agreed " ^ row.Spire.Grid.o_label) true row.Spire.Grid.o_agreed)
    ov;
  let closed_of i = (List.nth ov i).Spire.Grid.o_closed in
  check_int "all breakers closed initially" 8 (closed_of 0 + closed_of 1);
  (* A field event is visible through the owning shard only. *)
  (match Spire.Grid.find_breaker g "SUB-001/B00" with
  | Some (_, b) -> Plc.Breaker.force b Plc.Breaker.Open
  | None -> Alcotest.fail "breaker not found");
  run engine ~until:6.0;
  let ov = Spire.Grid.overview g in
  let closed_of i = (List.nth ov i).Spire.Grid.o_closed in
  check_int "shard 0 untouched" 4 (closed_of 0);
  check_int "shard 1 sees the open breaker" 3 (closed_of 1);
  let d1 = Spire.Grid.deployment g 1 in
  Alcotest.(check (option bool)) "shard hmi sees it open" (Some false)
    (Scada.Hmi.displayed_closed
       (Spire.Deployment.hmis d1).(0).Spire.Deployment.h_hmi
       "SUB-001/B00");
  (* Supervisory commands route by the shard map and actuate end to end. *)
  (match Spire.Grid.route_command g ~breaker:"SUB-002/B01" ~close:false with
  | Ok s ->
      check_int "routed to owning shard"
        (Option.get (Scada.Shard.shard_of_breaker (Spire.Grid.map g) "SUB-002/B01"))
        s
  | Error e -> Alcotest.fail e);
  run engine ~until:12.0;
  (match Spire.Grid.find_breaker g "SUB-002/B01" with
  | Some (_, b) -> check "routed command actuated" false (Plc.Breaker.is_closed b)
  | None -> Alcotest.fail "breaker not found");
  check "unknown breaker rejected" true
    (match Spire.Grid.route_command g ~breaker:"NOPE" ~close:true with
    | Error _ -> true
    | Ok _ -> false);
  (* Both shards made independent ordering progress. *)
  check "frontiers advanced" true
    (Spire.Grid.exec_frontier g 0 > 0 && Spire.Grid.exec_frontier g 1 > 0)

let test_grid_shard_crash_isolated () =
  (* A replica crash inside one shard must not disturb the other shard's
     agreement or its ability to execute commands. *)
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create () in
  let config = Prime.Config.create ~f:1 ~k:0 () in
  let scenario = Plc.Power.synthetic ~per_site:2 ~devices:8 () in
  let g = Spire.Grid.create ~engine ~trace ~config ~shards:2 scenario in
  run engine ~until:3.0;
  Spire.Deployment.take_down_replica (Spire.Grid.deployment g 0) 1;
  (match Spire.Grid.route_command g ~breaker:"SUB-000/B00" ~close:false with
  | Ok 0 -> ()
  | Ok s -> Alcotest.failf "routed to shard %d" s
  | Error e -> Alcotest.fail e);
  (match Spire.Grid.route_command g ~breaker:"SUB-001/B01" ~close:false with
  | Ok 1 -> ()
  | Ok s -> Alcotest.failf "routed to shard %d" s
  | Error e -> Alcotest.fail e);
  run engine ~until:12.0;
  (match Spire.Grid.find_breaker g "SUB-000/B00" with
  | Some (_, b) ->
      check "degraded shard still actuates" false (Plc.Breaker.is_closed b)
  | None -> Alcotest.fail "breaker not found");
  (match Spire.Grid.find_breaker g "SUB-001/B01" with
  | Some (_, b) -> check "healthy shard actuates" false (Plc.Breaker.is_closed b)
  | None -> Alcotest.fail "breaker not found");
  List.iter
    (fun row -> check ("agreed " ^ row.Spire.Grid.o_label) true row.Spire.Grid.o_agreed)
    (Spire.Grid.overview g)

let test_full_red_team_scenario_boots () =
  (* The complete red-team topology: 11 proxies, 37 breakers, 4 replicas. *)
  let engine, d = make_spire ~scenario:Plc.Power.red_team () in
  run engine ~until:5.0;
  (* Every master converged on the full field state. *)
  (match master_states d with
  | first :: rest -> List.iter (fun s -> Alcotest.(check string) "states agree" first s) rest
  | [] -> Alcotest.fail "no masters");
  (* A distribution-substation breaker command works end to end. *)
  ignore (Scada.Hmi.command (hmi d) ~breaker:"DIST-03/B1" ~close:false);
  run engine ~until:12.0;
  check "remote substation breaker opened" false
    (Plc.Breaker.is_closed (main_breaker d "DIST-03/B1"))

let suite =
  [
    ("status propagates to hmi", `Quick, test_status_propagates_to_hmi);
    ("command actuates breaker", `Quick, test_command_actuates_breaker);
    ("single master cannot actuate", `Quick, test_single_master_cannot_actuate);
    ("replica crash transparent", `Quick, test_replica_crash_transparent);
    ("proactive recovery cycle", `Quick, test_proactive_recovery_cycle);
    ("application state transfer between masters", `Slow,
      test_application_state_transfer_between_masters);
    ("ground truth rebuild", `Quick, test_ground_truth_rebuild);
    ("breaker cycle driver", `Quick, test_breaker_cycle_driver);
    ("reaction time spire vs commercial", `Slow, test_reaction_time_spire_vs_commercial);
    ("commercial basics", `Quick, test_commercial_basics);
    ("commercial failover", `Quick, test_commercial_failover);
    ("power plant scenario shape", `Quick, test_power_plant_scenario_shape);
    ("full red team scenario boots", `Slow, test_full_red_team_scenario_boots);
    ("grid sharded end to end", `Quick, test_grid_sharded_end_to_end);
    ("grid shard crash isolated", `Quick, test_grid_shard_crash_isolated);
  ]

let () = Alcotest.run "core" [ ("core", suite) ]
