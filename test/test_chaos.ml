(* Tests for the chaos subsystem: fault DSL, invariant checker, and the
   seeded scenario runner (zero violations under the acceptance schedule,
   byte-identical replay from the same seed). *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* --- fault DSL -------------------------------------------------------------- *)

let test_isolate_links () =
  Alcotest.(check (list (pair int int)))
    "all links from the victim"
    [ (2, 0); (2, 1); (2, 3) ]
    (Chaos.Fault.isolate_links ~n:4 2)

let test_schedule_generation_deterministic () =
  let gen () =
    let rng = Sim.Rng.create 99L in
    Chaos.Fault.mixed ~rng ~n:6 ~duration:100.0 ()
  in
  let describe s =
    String.concat ";"
      (List.map (fun { Chaos.Fault.at; action } ->
           Printf.sprintf "%.3f=%s" at (Chaos.Fault.describe action))
          s)
  in
  check_str "same seed, same schedule" (describe (gen ())) (describe (gen ()));
  check "events sorted" true
    (let s = gen () in
     List.for_all2
       (fun a b -> a.Chaos.Fault.at <= b.Chaos.Fault.at)
       (List.filteri (fun i _ -> i < List.length s - 1) s)
       (List.tl s))

(* --- invariant checker (synthetic observations) ------------------------------ *)

let test_agreement_violation_detected () =
  let engine = Sim.Engine.create () in
  let inv = Chaos.Invariant.create ~engine ~is_healthy:(fun () -> true) () in
  Chaos.Invariant.note_execution inv ~replica:0 ~exec_seq:7 ~identity:"hmi#1:open B57";
  Chaos.Invariant.note_execution inv ~replica:1 ~exec_seq:7 ~identity:"hmi#1:open B57";
  check_int "matching executions pass" 0 (List.length (Chaos.Invariant.violations inv));
  Chaos.Invariant.note_execution inv ~replica:2 ~exec_seq:7 ~identity:"hmi#2:close B56";
  match Chaos.Invariant.violations inv with
  | [ v ] -> check_str "agreement violation" "agreement" v.Chaos.Invariant.v_invariant
  | vs -> Alcotest.failf "expected exactly one violation, got %d" (List.length vs)

let test_at_most_once_violation_detected () =
  let engine = Sim.Engine.create () in
  let inv = Chaos.Invariant.create ~engine ~is_healthy:(fun () -> true) () in
  Chaos.Invariant.note_actuation inv ~proxy:"MAIN" ~key:"12:B57:true";
  Chaos.Invariant.note_actuation inv ~proxy:"OTHER" ~key:"12:B57:true";
  check_int "distinct proxies may share keys" 0 (List.length (Chaos.Invariant.violations inv));
  Chaos.Invariant.note_actuation inv ~proxy:"MAIN" ~key:"12:B57:true";
  match Chaos.Invariant.violations inv with
  | [ v ] -> check_str "at-most-once violation" "at-most-once" v.Chaos.Invariant.v_invariant
  | vs -> Alcotest.failf "expected exactly one violation, got %d" (List.length vs)

(* --- scenario runner ---------------------------------------------------------- *)

let run_mixed seed = Chaos.Runner.run ~duration:60.0 ~seed ()

let test_mixed_scenario_zero_violations () =
  (* The acceptance scenario: crash + partition + lossy link + leader
     fault in sequence, under continuous SCADA load, with the invariant
     checker attached throughout. *)
  let r = run_mixed 42 in
  check_int "no invariant violations" 0 (List.length r.Chaos.Runner.violations);
  check "faults actually injected" true (List.length r.Chaos.Runner.schedule >= 8);
  check "load ordered through the system" true (r.Chaos.Runner.final_exec_seq > 50);
  check "agreement checked against real executions" true
    (r.Chaos.Runner.executions_checked > 100);
  check "lossy window dropped traffic" true (r.Chaos.Runner.link_dropped > 0);
  check "crash recovery measured" true (List.length r.Chaos.Runner.recovery_latencies = 1);
  check "leader fault forced a view change" true
    (List.length r.Chaos.Runner.view_change_latencies >= 1)

let test_replay_byte_identical () =
  let json r = Obs.Json.to_string (Chaos.Runner.result_to_json r) in
  check_str "same seed replays byte-identically" (json (run_mixed 42)) (json (run_mixed 42))

let test_recovery_overlapping_leader_crash () =
  (* A proactive-recovery downtime window (replica 2 down, clean restart)
     overlapping a leader crash: two simultaneous faults, n=6 keeps a
     quorum of 4, and both safety and recovery liveness must hold. *)
  let schedule =
    [
      { Chaos.Fault.at = 5.0; action = Chaos.Fault.Crash_replica 2 };
      { Chaos.Fault.at = 8.0; action = Chaos.Fault.Leader_silent };
      { Chaos.Fault.at = 25.0; action = Chaos.Fault.Restart_replica 2 };
      { Chaos.Fault.at = 32.0; action = Chaos.Fault.Leader_restore };
    ]
  in
  let r = Chaos.Runner.run ~duration:60.0 ~schedule ~seed:7 () in
  check_int "no violations despite overlap" 0 (List.length r.Chaos.Runner.violations);
  check_int "replica 2 rejoined and re-based" 1
    (List.length r.Chaos.Runner.recovery_latencies);
  check "system kept executing" true (r.Chaos.Runner.final_exec_seq > 50)

(* --- observability ------------------------------------------------------------ *)

let test_flight_replay_byte_identical () =
  (* The flight recorder is fed only by deterministic protocol events, so
     two same-seed observed campaigns must dump byte-identical JSONL. *)
  let dump seed = Chaos.Runner.run ~duration:30.0 ~seed () in
  let a = dump 42 and b = dump 42 in
  (match (a.Chaos.Runner.flight_jsonl, b.Chaos.Runner.flight_jsonl) with
  | Some ja, Some jb ->
      check "flight log non-empty" true (a.Chaos.Runner.flight_events > 0);
      check_str "same seed, same flight JSONL" ja jb;
      List.iter
        (fun line -> check "every line is valid JSON" true (Obs.Json.parse_opt line <> None))
        (String.split_on_char '\n' (String.trim ja))
  | _ -> Alcotest.fail "observing runs must return a flight dump")

let test_flight_identical_across_queue_backends () =
  (* The timer wheel preserves the heap's (time, schedule-order) pop
     order exactly, so a same-seed campaign must produce a byte-identical
     flight dump — and identical core results — on either backend. *)
  let w = Chaos.Runner.run ~duration:30.0 ~seed:42 ~backend:`Wheel () in
  let h = Chaos.Runner.run ~duration:30.0 ~seed:42 ~backend:`Heap () in
  (match (w.Chaos.Runner.flight_jsonl, h.Chaos.Runner.flight_jsonl) with
  | Some jw, Some jh ->
      check "flight log non-empty" true (w.Chaos.Runner.flight_events > 0);
      check_str "wheel and heap backends byte-identical flight JSONL" jh jw
  | _ -> Alcotest.fail "observing runs must return a flight dump");
  check_int "same final exec seq" h.Chaos.Runner.final_exec_seq
    w.Chaos.Runner.final_exec_seq;
  check "same view transitions" true
    (h.Chaos.Runner.view_transitions = w.Chaos.Runner.view_transitions);
  check_str "same result JSON"
    (Obs.Json.to_string (Chaos.Runner.result_to_json h))
    (Obs.Json.to_string (Chaos.Runner.result_to_json w))

let test_observation_is_passive () =
  (* Flipping the recorder/probes/alerts on must not move one protocol
     event: the observed run and the dark run agree on every core result. *)
  let on = Chaos.Runner.run ~duration:30.0 ~seed:42 ~observe:true () in
  let off = Chaos.Runner.run ~duration:30.0 ~seed:42 ~observe:false () in
  check_int "same final exec seq" off.Chaos.Runner.final_exec_seq
    on.Chaos.Runner.final_exec_seq;
  check_int "same commands issued" off.Chaos.Runner.commands_issued
    on.Chaos.Runner.commands_issued;
  check "same view transitions" true
    (off.Chaos.Runner.view_transitions = on.Chaos.Runner.view_transitions);
  check "same fault schedule" true (off.Chaos.Runner.schedule = on.Chaos.Runner.schedule);
  check_int "same link drops" off.Chaos.Runner.link_dropped on.Chaos.Runner.link_dropped;
  check_int "dark run records nothing" 0 off.Chaos.Runner.flight_events;
  check "dark run returns no dump" true (off.Chaos.Runner.flight_jsonl = None);
  check "observed run records events" true (on.Chaos.Runner.flight_events > 0)

let test_violation_dumps_flight_log () =
  (* An impossible liveness bound trips the invariant checker; the first
     violation must flush the flight log to the requested path. *)
  let path = Filename.temp_file "spire-flight-test" ".jsonl" in
  let r =
    Chaos.Runner.run ~duration:20.0 ~schedule:[] ~liveness_bound:0.01 ~seed:3
      ~flight_dump:path ()
  in
  check "bound actually tripped" true (List.length r.Chaos.Runner.violations > 0);
  check "result reports the dump path" true
    (r.Chaos.Runner.flight_dump_path = Some path);
  check "dump file written" true (Sys.file_exists path);
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  check "dump is non-empty" true (!lines <> []);
  List.iter
    (fun line -> check "dump lines parse as JSON" true (Obs.Json.parse_opt line <> None))
    !lines;
  Sys.remove path

let suite =
  [
    ("isolate links", `Quick, test_isolate_links);
    ("schedule generation deterministic", `Quick, test_schedule_generation_deterministic);
    ("agreement violation detected", `Quick, test_agreement_violation_detected);
    ("at-most-once violation detected", `Quick, test_at_most_once_violation_detected);
    ("mixed scenario zero violations", `Slow, test_mixed_scenario_zero_violations);
    ("replay byte-identical", `Slow, test_replay_byte_identical);
    ("recovery overlapping leader crash", `Slow, test_recovery_overlapping_leader_crash);
    ("flight replay byte-identical", `Slow, test_flight_replay_byte_identical);
    ("flight identical across queue backends", `Slow, test_flight_identical_across_queue_backends);
    ("observation is passive", `Slow, test_observation_is_passive);
    ("violation dumps flight log", `Slow, test_violation_dumps_flight_log);
  ]

let () = Alcotest.run "chaos" [ ("chaos", suite) ]
