(** False data injection attack: a compromised RTU proxy replays a
    stale-consistent analog snapshot while the attacker physically
    changes the grid. The binary breaker path stays honest — every
    breaker-state invariant remains silent; only chi-square bad-data
    detection over the telemetry ensemble can notice. *)

type t

(** Compromise [site]'s proxy: from its next poll on, the analog image
    submitted to the replicated system is frozen at the first
    post-compromise snapshot. [Error] for unknown or Modbus sites. *)
val launch : Spire.Deployment.t -> site:string -> (t, string) result

(** Physically force a breaker open (insider action, bypassing the
    supervisory path). The RTU reports the position change honestly. *)
val force_open : t -> Spire.Deployment.t -> breaker:string -> (unit, string) result

(** Drop the foothold: the proxy polls honestly again. *)
val release : t -> unit

val site : t -> string

val launched_at : t -> float option

(** Has the replayed snapshot been captured yet (first poll ran)? *)
val frozen : t -> bool

(** Breakers forced so far with times, oldest first. *)
val forced : t -> (string * float) list
