(* False data injection: a compromised RTU proxy replays a
   stale-consistent analog image while the physical grid changes
   underneath it.

   The proxy is the trust boundary the FDIA literature targets: it
   signs whatever it polls, so a foothold on the proxy machine lets the
   attacker rewrite the analog image BEFORE it enters the replicated
   system — no protocol message is malformed, no signature invalid, no
   ordered update lost. The replay is internally consistent (it was a
   real snapshot of a real power flow), which keeps every per-point
   plausibility check quiet. What the attacker cannot fake is
   consistency with the honest neighbours' telemetry and the reported
   breaker topology — exactly the ensemble test the chi-square bad-data
   detector runs.

   The binary (breaker status) path is deliberately left honest: the
   attack's point is that breaker-state invariants stay silent while
   only state estimation notices the lie. *)

type t = {
  fdia_site : string;
  fdia_proxy : Scada.Rtu_proxy.t;
  mutable fdia_frozen : (string * int) list option; (* snapshot replayed *)
  mutable fdia_launched_at : float option;
  mutable fdia_forced : (string * float) list; (* breaker, time; newest first *)
}

let find_site deployment site =
  Array.fold_left
    (fun acc (p : Spire.Deployment.proxy_bundle) ->
      if acc = None && String.equal p.Spire.Deployment.p_spec.Plc.Power.plc_name site then
        Some p
      else acc)
    None
    (Spire.Deployment.proxies deployment)

(* Compromise the site's proxy: from the next poll on, the analog image
   it submits is frozen at the first post-compromise snapshot. *)
let launch deployment ~site =
  match find_site deployment site with
  | None -> Error (Printf.sprintf "unknown site %s" site)
  | Some bundle -> (
      match bundle.Spire.Deployment.p_frontend with
      | Spire.Deployment.Modbus_plc _ ->
          Error (Printf.sprintf "site %s is Modbus: no analog image to rewrite" site)
      | Spire.Deployment.Dnp3_rtu { fe_proxy; _ } ->
          let t =
            {
              fdia_site = site;
              fdia_proxy = fe_proxy;
              fdia_frozen = None;
              fdia_launched_at =
                Some (Sim.Engine.now (Spire.Deployment.engine deployment));
              fdia_forced = [];
            }
          in
          Scada.Rtu_proxy.set_analog_rewrite fe_proxy
            (Some
               (fun readings ->
                 match t.fdia_frozen with
                 | Some snapshot -> snapshot
                 | None ->
                     t.fdia_frozen <- Some readings;
                     readings));
          Ok t)

(* The physical half: flip a breaker at the substation, bypassing the
   supervisory path (an insider or a maintenance-channel actuation).
   The RTU reports the new position honestly — only the analogs lie. *)
let force_open t deployment ~breaker =
  match Spire.Deployment.find_breaker deployment breaker with
  | None -> Error (Printf.sprintf "unknown breaker %s" breaker)
  | Some (_, b) ->
      Plc.Breaker.force b Plc.Breaker.Open;
      t.fdia_forced <-
        (breaker, Sim.Engine.now (Spire.Deployment.engine deployment)) :: t.fdia_forced;
      Ok ()

(* Lose the foothold: the proxy polls honestly again. *)
let release t = Scada.Rtu_proxy.set_analog_rewrite t.fdia_proxy None

let site t = t.fdia_site

let launched_at t = t.fdia_launched_at

let frozen t = t.fdia_frozen <> None

(* Oldest first. *)
let forced t = List.rev t.fdia_forced
