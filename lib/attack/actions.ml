(* Red-team attack actions, as observed in Section IV:
   port scanning, ARP poisoning / man-in-the-middle, IP spoofing,
   denial-of-service bursts, service exploitation and privilege
   escalation, and the PLC maintenance-channel attacks that broke the
   commercial system. *)

let scan_src_port = 40001

(* --- reconnaissance ---------------------------------------------------------- *)

type scan_result = { scanned_ip : Netbase.Addr.Ip.t; port : int; status : string }

(* Probe [ports] on each target; results are available after [timeout]
   (read the returned table then). Silence means filtered. *)
let port_scan (a : Attacker.t) (pos : Attacker.position) ~targets ~ports =
  let results : (string * int, string) Hashtbl.t = Hashtbl.create 64 in
  (try
     Netbase.Host.udp_bind pos.Attacker.pos_host ~port:scan_src_port
       (fun ~src ~dst_port:_ ~size:_ payload ->
         match payload with
         | Netbase.Packet.Scan_ack { service } ->
             Hashtbl.replace results
               (Netbase.Addr.Ip.to_string src.Netbase.Addr.ip, src.Netbase.Addr.port)
               ("open:" ^ service)
         | Netbase.Packet.Icmp_port_unreachable ->
             Hashtbl.replace results
               (Netbase.Addr.Ip.to_string src.Netbase.Addr.ip, src.Netbase.Addr.port)
               "closed"
         | _ -> ())
   with Invalid_argument _ -> () (* scanner port already bound by a prior scan *));
  (* Probes are paced (as real scanners are): [rate] probes per second,
     so a sweep spans several capture windows rather than one burst. *)
  let rate = 50.0 in
  let all = List.concat_map (fun ip -> List.map (fun p -> (ip, p)) ports) targets in
  List.iteri
    (fun i (ip, port) ->
      ignore
        (Sim.Engine.schedule a.Attacker.engine
           ~delay:(float_of_int i /. rate)
           (fun () ->
             Sim.Stats.Counter.incr a.Attacker.counters "scan.probe";
             Netbase.Host.udp_send pos.Attacker.pos_host ~dst_ip:ip ~dst_port:port
               ~src_port:scan_src_port ~size:40 Netbase.Packet.Scan_probe)))
    all;
  fun ip port ->
    match Hashtbl.find_opt results (Netbase.Addr.Ip.to_string ip, port) with
    | Some s -> s
    | None -> "filtered"

(* --- ARP poisoning and man-in-the-middle -------------------------------------- *)

let gratuitous_reply pos ~impersonate ~victim_ip ~victim_mac =
  {
    Netbase.Packet.src_mac = Netbase.Host.nic_mac pos.Attacker.pos_nic;
    dst_mac = victim_mac;
    l3 =
      Netbase.Packet.Arp_reply
        {
          sender_ip = impersonate;
          sender_mac = Netbase.Host.nic_mac pos.Attacker.pos_nic;
          target_ip = victim_ip;
          target_mac = victim_mac;
        };
  }

(* Learn a host's MAC by asking for it (works on any LAN). Replies are
   collected passively by the attacker's sniffer; query
   [Attacker.known_mac] after letting the simulation run. *)
let resolve_mac (a : Attacker.t) (pos : Attacker.position) ~ip =
  Netbase.Host.inject_frame pos.Attacker.pos_host pos.Attacker.pos_nic
    {
      Netbase.Packet.src_mac = Netbase.Host.nic_mac pos.Attacker.pos_nic;
      dst_mac = Netbase.Addr.Mac.broadcast;
      l3 =
        Netbase.Packet.Arp_request
          {
            sender_ip = Netbase.Host.nic_ip pos.Attacker.pos_nic;
            sender_mac = Netbase.Host.nic_mac pos.Attacker.pos_nic;
            target_ip = ip;
          };
    };
  fun () -> Attacker.known_mac a ip

(* Poison [victim]'s ARP cache so that [impersonate] maps to the
   attacker's MAC. Repeats periodically to stay poisoned. *)
let arp_poison (a : Attacker.t) (pos : Attacker.position) ~victim_ip ~victim_mac ~impersonate =
  Sim.Stats.Counter.incr a.Attacker.counters "arp.poison";
  let send () =
    Netbase.Host.inject_frame pos.Attacker.pos_host pos.Attacker.pos_nic
      (gratuitous_reply pos ~impersonate ~victim_ip ~victim_mac)
  in
  send ();
  Sim.Engine.every a.Attacker.engine ~period:1.0 (fun () -> send ())

(* Full MITM: poison both directions and install an interception handler.
   [rewrite] may return a replacement payload (tampering), the original
   (passive relay), or None (drop). Non-intercepted traffic is ignored. *)
type intercept = {
  mutable intercepted : int;
  mutable forwarded : int;
  mutable tampered : int;
  mutable dropped : int;
}

let man_in_the_middle (a : Attacker.t) (pos : Attacker.position) ~ip_a ~mac_a ~ip_b ~mac_b
    ~rewrite =
  let stats = { intercepted = 0; forwarded = 0; tampered = 0; dropped = 0 } in
  let (_ : Sim.Engine.timer) =
    arp_poison a pos ~victim_ip:ip_a ~victim_mac:mac_a ~impersonate:ip_b
  in
  let (_ : Sim.Engine.timer) =
    arp_poison a pos ~victim_ip:ip_b ~victim_mac:mac_b ~impersonate:ip_a
  in
  Netbase.Host.set_raw_handler pos.Attacker.pos_host
    (Some
       (fun nic frame ->
         match frame.Netbase.Packet.l3 with
         | Netbase.Packet.Ipv4 { src; dst; ttl; udp }
           when Netbase.Addr.Mac.equal frame.Netbase.Packet.dst_mac
                  (Netbase.Host.nic_mac nic)
                && ((Netbase.Addr.Ip.equal dst ip_a && Netbase.Addr.Ip.equal src ip_b)
                   || (Netbase.Addr.Ip.equal dst ip_b && Netbase.Addr.Ip.equal src ip_a)) ->
             stats.intercepted <- stats.intercepted + 1;
             let out_mac = if Netbase.Addr.Ip.equal dst ip_a then mac_a else mac_b in
             (match rewrite udp.Netbase.Packet.payload with
             | Some payload ->
                 if payload != udp.Netbase.Packet.payload then
                   stats.tampered <- stats.tampered + 1
                 else stats.forwarded <- stats.forwarded + 1;
                 Netbase.Host.inject_frame pos.Attacker.pos_host nic
                   {
                     Netbase.Packet.src_mac = Netbase.Host.nic_mac nic;
                     dst_mac = out_mac;
                     l3 =
                       Netbase.Packet.Ipv4
                         { src; dst; ttl = ttl - 1; udp = { udp with Netbase.Packet.payload } };
                   }
             | None -> stats.dropped <- stats.dropped + 1);
             true
         | _ -> false));
  stats

(* --- IP spoofing ----------------------------------------------------------------- *)

let spoofed_send (a : Attacker.t) (pos : Attacker.position) ~pretend_ip ~dst_ip ~dst_port
    ~src_port ~size payload =
  Sim.Stats.Counter.incr a.Attacker.counters "spoof.sent";
  Netbase.Host.udp_send ~spoof_src:pretend_ip pos.Attacker.pos_host ~dst_ip ~dst_port
    ~src_port ~size payload

(* --- denial of service -------------------------------------------------------------- *)

(* Burst [rate] packets/s toward the target for [duration] seconds. *)
let dos_flood (a : Attacker.t) (pos : Attacker.position) ~target_ip ~target_port ~rate
    ~duration =
  let sent = ref 0 in
  let batch = max 1 (int_of_float (rate /. 100.0)) in
  let timer =
    Sim.Engine.every a.Attacker.engine ~period:0.01 (fun () ->
        for _ = 1 to batch do
          incr sent;
          Netbase.Host.udp_send pos.Attacker.pos_host ~dst_ip:target_ip ~dst_port:target_port
            ~src_port:44444 ~size:1400 (Netbase.Packet.Raw "flood")
        done)
  in
  ignore
    (Sim.Engine.schedule a.Attacker.engine ~delay:duration (fun () ->
         Sim.Engine.cancel_timer a.Attacker.engine timer));
  sent

(* --- host compromise ------------------------------------------------------------------ *)

let exploit_service (a : Attacker.t) (pos : Attacker.position) target ~port ~exploit =
  let from_ip = Netbase.Host.nic_ip pos.Attacker.pos_nic in
  let result = Netbase.Host.attempt_remote_exploit target ~from_ip ~port ~exploit in
  (match result with
  | Ok () -> Sim.Stats.Counter.incr a.Attacker.counters "exploit.remote_success"
  | Error _ -> Sim.Stats.Counter.incr a.Attacker.counters "exploit.remote_failed");
  result

let escalate (a : Attacker.t) target ~exploit =
  let result = Netbase.Host.attempt_privilege_escalation target ~exploit in
  (match result with
  | Ok () -> Sim.Stats.Counter.incr a.Attacker.counters "exploit.escalation_success"
  | Error _ -> Sim.Stats.Counter.incr a.Attacker.counters "exploit.escalation_failed");
  result

(* --- PLC maintenance channel ------------------------------------------------------------ *)

let maint_reply_port = 41962

(* Dump the PLC's configuration over its maintenance service; the result
   ref fills in when (if) the PLC answers. *)
let dump_plc_config (a : Attacker.t) (pos : Attacker.position) ~plc_ip =
  let dump = ref None in
  (try
     Netbase.Host.udp_bind pos.Attacker.pos_host ~port:maint_reply_port
       (fun ~src:_ ~dst_port:_ ~size:_ payload ->
         match payload with
         | Plc.Device.Maint_dump_reply config -> dump := Some config
         | _ -> ())
   with Invalid_argument _ -> ());
  Sim.Stats.Counter.incr a.Attacker.counters "plc.dump_attempt";
  Netbase.Host.udp_send pos.Attacker.pos_host ~dst_ip:plc_ip ~dst_port:Plc.Device.maintenance_port
    ~src_port:maint_reply_port ~size:32 Plc.Device.Maint_dump_request;
  dump

let upload_plc_config (a : Attacker.t) (pos : Attacker.position) ~plc_ip ~config =
  Sim.Stats.Counter.incr a.Attacker.counters "plc.upload_attempt";
  Netbase.Host.udp_send pos.Attacker.pos_host ~dst_ip:plc_ip ~dst_port:Plc.Device.maintenance_port
    ~src_port:maint_reply_port ~size:(String.length config + 32) (Plc.Device.Maint_upload config)

let actuate_plc (a : Attacker.t) (pos : Attacker.position) ~plc_ip ~coil ~close =
  Sim.Stats.Counter.incr a.Attacker.counters "plc.actuate_attempt";
  Netbase.Host.udp_send pos.Attacker.pos_host ~dst_ip:plc_ip ~dst_port:Plc.Device.maintenance_port
    ~src_port:maint_reply_port ~size:32 (Plc.Device.Maint_actuate { coil; close })
