(* Coalesced link-frame header codec.

   When the egress queue flushes several payloads to the same neighbor
   inside one coalesce window, they cross the link as a single frame: one
   HMAC, one header, N sub-messages. The header is a Wire-encoded
   manifest of the sub-messages — each entry length-prefixed so the
   reader can never run past a corrupted sub-entry into the next one —
   and the receiver checks the decoded manifest against the carried
   payloads before handling any of them. A frame that fails to decode is
   dropped whole and counted; it must never crash the daemon (the red
   team gets to put arbitrary bytes on the wire). *)

type dst_meta =
  | M_client of { node : int; client : int }
  | M_group of string
  | M_session of string

type meta =
  | M_data of {
      origin : int;
      origin_client : int;
      data_seq : int;
      dst : dst_meta;
      priority : int;
      app_size : int;
    }
  | M_lsa of { origin : int; seq : int; up_neighbors : int list }

let magic = 0xF5

let version = 1

(* u16 count field; far above any realistic flush. *)
let max_msgs = 0xFFFF

let encode_meta m =
  Wire.encode ~size_hint:64 (fun b ->
      match m with
      | M_data d ->
          Wire.w_u8 b 0;
          Wire.w_int b d.origin;
          Wire.w_int b d.origin_client;
          Wire.w_int b d.data_seq;
          Wire.w_int b d.priority;
          Wire.w_int b d.app_size;
          (match d.dst with
          | M_client { node; client } ->
              Wire.w_u8 b 0;
              Wire.w_int b node;
              Wire.w_int b client
          | M_group g ->
              Wire.w_u8 b 1;
              Wire.w_str b g
          | M_session s ->
              Wire.w_u8 b 2;
              Wire.w_str b s)
      | M_lsa l ->
          Wire.w_u8 b 1;
          Wire.w_int b l.origin;
          Wire.w_int b l.seq;
          Wire.w_int_array b (Array.of_list l.up_neighbors))

let encode_header metas =
  let n = List.length metas in
  if n = 0 || n > max_msgs then
    invalid_arg "Frame.encode_header: sub-message count out of range";
  Wire.encode ~size_hint:(16 + (n * 64)) (fun b ->
      Wire.w_u8 b magic;
      Wire.w_u8 b version;
      Wire.w_u16 b n;
      List.iter (fun m -> Wire.w_str b (encode_meta m)) metas)

(* Parses one length-delimited manifest entry from a bounded sub-view of
   the header — no per-entry [String.sub] copy — and must consume the
   view exactly. *)
let decode_meta r =
  let m =
    match Wire.r_u8 r with
    | 0 ->
        let origin = Wire.r_int r in
        let origin_client = Wire.r_int r in
        let data_seq = Wire.r_int r in
        let priority = Wire.r_int r in
        let app_size = Wire.r_int r in
        let dst =
          match Wire.r_u8 r with
          | 0 ->
              let node = Wire.r_int r in
              let client = Wire.r_int r in
              M_client { node; client }
          | 1 -> M_group (Wire.r_str r)
          | 2 -> M_session (Wire.r_str r)
          | _ -> raise Wire.Truncated
        in
        M_data { origin; origin_client; data_seq; dst; priority; app_size }
    | 1 ->
        let origin = Wire.r_int r in
        let seq = Wire.r_int r in
        let up = Wire.r_int_array r in
        M_lsa { origin; seq; up_neighbors = Array.to_list up }
    | _ -> raise Wire.Truncated
  in
  if Wire.at_end r then m else raise Wire.Truncated

let decode_header s =
  try
    let r = Wire.reader s in
    if Wire.r_u8 r <> magic then None
    else if Wire.r_u8 r <> version then None
    else begin
      let n = Wire.r_u16 r in
      if n = 0 then None
      else begin
        let metas = ref [] in
        for _ = 1 to n do
          metas := decode_meta (Wire.r_str_reader r) :: !metas
        done;
        if Wire.at_end r then Some (List.rev !metas) else None
      end
    end
  with Wire.Truncated | Invalid_argument _ -> None
