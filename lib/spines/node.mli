(** Spines overlay daemon: authenticated/encrypted links, intrusion-
    tolerant priority flooding with source fairness, link-state routing,
    and client sessions.

    The link-message payload constructor is private to the implementation:
    attack code cannot inspect overlay traffic contents (modelling link
    encryption) or forge well-formed link messages without a daemon whose
    key material it controls. *)

type node_id = Topology.node_id

(** Destination of a client message: a specific client on a specific
    overlay node, every client subscribed to a group, or a named remote
    session client attached to some daemon. *)
type dst =
  | To_client of { node : node_id; client : int }
  | To_group of string
  | To_session of string

type config = {
  topology : Topology.t;
  port : int;
  session_port : int; (* client-facing port for remote session clients *)
  it_mode : bool; (* intrusion-tolerant dissemination (flooding + fairness) *)
  group_key : string option; (* None models a daemon built without keys *)
  hello_period : float;
  hello_timeout : float;
  source_rate_limit : float;
  session_timeout : float;
  dedup_window : int; (* per-origin sequence horizon for dedup eviction *)
  route_cache : bool; (* cache next-hop tables per view epoch *)
  coalescing : bool; (* pack same-neighbor payloads into one link frame *)
  egress_capacity : int; (* per-neighbor egress queue bound, messages *)
  coalesce_window : float; (* egress flush window, seconds *)
}

(** Raises [Invalid_argument] on [egress_capacity < 1] or negative
    [coalesce_window]. *)
val default_config :
  ?port:int ->
  ?session_port:int ->
  ?it_mode:bool ->
  ?group_key:string ->
  ?dedup_window:int ->
  ?route_cache:bool ->
  ?coalescing:bool ->
  ?egress_capacity:int ->
  ?coalesce_window:float ->
  Topology.t ->
  config

(** Overlay message overhead added to every client payload, bytes. *)
val overhead_bytes : int

type t

val create :
  engine:Sim.Engine.t -> trace:Sim.Trace.t -> host:Netbase.Host.t -> id:node_id -> config -> t

val id : t -> node_id

val counters : t -> Sim.Stats.Counter.t

val is_running : t -> bool

(** Tell the daemon the IP address of an overlay peer. *)
val set_peer_address : t -> node_id -> Netbase.Addr.Ip.t -> unit

(** Bind the daemon's port and start hello timers. Raises
    [Invalid_argument] if already running. *)
val start : t -> unit

(** Unbind and go silent (the red team's "stopped the Spines daemon"). *)
val stop : t -> unit

(** Arm a named exploit in this daemon (the red team's patched binary).
    The ["drop-foreign-traffic"] exploit only has an effect when the
    daemon runs outside intrusion-tolerant mode. *)
val inject_exploit : t -> string -> unit

(** Fault-injection verdict for one outgoing link message, drawn by a
    chaos injector: drop it, send a duplicate copy, and/or delay it (a
    delayed message can overtake later traffic, modelling reordering). *)
type fault_decision = { fd_drop : bool; fd_duplicate : bool; fd_delay : float }

(** Install (or clear, with [None]) a per-message fault injector consulted
    on every outgoing link transmission. The injector owns its randomness,
    so schedules replay deterministically from the chaos seed. *)
val set_fault_injector : t -> (peer:node_id -> fault_decision) option -> unit

(** Dedup-window entries evicted / currently retained, for bounded-memory
    assertions. *)
val dedup_evictions : t -> int

val dedup_retained : t -> int

(** The daemon's current next-hop table as a sorted
    [(destination, first hop)] list, forcing a cache rebuild if the view
    epoch moved. Canonical (see {!Topology.next_hops}); the determinism
    regression compares it across same-seed runs. *)
val next_hop_snapshot : t -> (node_id * node_id) list

(** Attach a local client session. Raises [Invalid_argument] on duplicate
    client ids. *)
val register_client :
  t ->
  client:int ->
  ?groups:string list ->
  (src:node_id * int -> size:int -> Netbase.Packet.payload -> unit) ->
  unit

(** Send from a local client. Local destinations are delivered directly;
    remote ones disseminated per the configured mode. *)
val send :
  t -> client:int -> ?priority:int -> size:int -> dst -> Netbase.Packet.payload -> unit

(** Remote session client: how proxies and HMIs reach the overlay. A
    session attaches by name to one daemon at a time (heartbeat
    re-attachment, automatic failover to the next daemon on silence) and
    exchanges authenticated messages with it; overlay traffic addressed
    [To_session name] reaches the daemon currently hosting the session
    and is relayed to the client machine. *)
module Session : sig
  type session

  val create :
    ?attach_period:float ->
    ?failover_timeout:float ->
    ?local_port:int ->
    ?dedup_window:int ->
    engine:Sim.Engine.t ->
    trace:Sim.Trace.t ->
    host:Netbase.Host.t ->
    key:string ->
    daemons:(node_id * Netbase.Addr.Ip.t) list ->
    daemon_session_port:int ->
    name:string ->
    unit ->
    session

  val name : session -> string

  val counters : session -> Sim.Stats.Counter.t

  (** The daemon the session currently attaches to. *)
  val current_daemon : session -> node_id

  (** Receive overlay payloads delivered to this session. *)
  val set_handler : session -> (size:int -> Netbase.Packet.payload -> unit) -> unit

  (** Bind the local port, attach, and start heartbeats. *)
  val start : session -> unit

  val stop : session -> unit

  (** Send into the overlay through the current daemon. *)
  val send : session -> ?priority:int -> size:int -> dst -> Netbase.Packet.payload -> unit
end
