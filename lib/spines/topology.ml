(* Overlay topology and shortest-path routing.

   A topology is the static set of overlay nodes and undirected links,
   known to every daemon (as in Spines, where the overlay graph is
   configuration). Liveness is dynamic: each daemon maintains its own view
   of which links are currently up (driven by hellos and link-state
   announcements) and computes next hops with Dijkstra over that view.

   The constructor precomputes a per-node adjacency index so Dijkstra
   relaxes a node's own neighbor array instead of scanning every link in
   the graph, and views carry a monotone epoch (bumped only on real
   up/down transitions) so forwarding planes can cache next-hop tables
   and rebuild them exactly when the live-link view changes. *)

type node_id = int

type link = { a : node_id; b : node_id; weight : float }

type t = {
  nodes : node_id list;
  links : link list;
  (* node -> (neighbor, weight) array, sorted by neighbor id: the
     canonical relaxation order that makes routing tables reproducible. *)
  adjacency : (node_id, (node_id * float) array) Hashtbl.t;
}

let create ~nodes ~links =
  let known id = List.mem id nodes in
  let seen = Hashtbl.create (List.length links) in
  List.iter
    (fun l ->
      if not (known l.a && known l.b) then
        invalid_arg (Printf.sprintf "Topology.create: link %d-%d references unknown node" l.a l.b);
      if l.a = l.b then invalid_arg "Topology.create: self-link";
      if l.weight <= 0.0 then invalid_arg "Topology.create: non-positive weight";
      (* A duplicate (a,b) pair would put the same edge in the adjacency
         index twice and let Dijkstra double-relax it. *)
      let key = (min l.a l.b, max l.a l.b) in
      if Hashtbl.mem seen key then
        invalid_arg (Printf.sprintf "Topology.create: duplicate link %d-%d" l.a l.b);
      Hashtbl.replace seen key ())
    links;
  let adjacency = Hashtbl.create (List.length nodes) in
  let add n entry =
    Hashtbl.replace adjacency n
      (entry :: (match Hashtbl.find_opt adjacency n with Some l -> l | None -> []))
  in
  List.iter
    (fun l ->
      add l.a (l.b, l.weight);
      add l.b (l.a, l.weight))
    links;
  let adjacency_arrays = Hashtbl.create (List.length nodes) in
  List.iter
    (fun n ->
      let entries =
        match Hashtbl.find_opt adjacency n with Some l -> l | None -> []
      in
      let arr = Array.of_list entries in
      Array.sort (fun (a, _) (b, _) -> compare a b) arr;
      Hashtbl.replace adjacency_arrays n arr)
    nodes;
  { nodes; links; adjacency = adjacency_arrays }

let nodes t = t.nodes

let links t = t.links

let link ?(weight = 1.0) a b = { a; b; weight }

(* Full mesh, as used for the replicas' internal network. *)
let full_mesh nodes =
  let rec pairs = function
    | [] -> []
    | x :: rest -> List.map (fun y -> link x y) rest @ pairs rest
  in
  create ~nodes ~links:(pairs nodes)

let adjacency t id =
  match Hashtbl.find_opt t.adjacency id with Some a -> a | None -> [||]

let neighbors t id = Array.to_list (Array.map fst (adjacency t id))

(* A link view says which links are currently believed up. Keys are
   normalised (min, max) pairs. The epoch counts real transitions only:
   re-asserting the current state leaves it untouched, so a cache keyed
   on the epoch is rebuilt exactly when routing could change. *)
module View = struct
  type view = { up : (node_id * node_id, unit) Hashtbl.t; mutable epoch : int }

  let key a b = (min a b, max a b)

  let all_up t =
    let up = Hashtbl.create 32 in
    List.iter (fun l -> Hashtbl.replace up (key l.a l.b) ()) t.links;
    { up; epoch = 0 }

  let set_link v a b ~up:is_up =
    let k = key a b in
    let was_up = Hashtbl.mem v.up k in
    if is_up && not was_up then begin
      Hashtbl.replace v.up k ();
      v.epoch <- v.epoch + 1
    end
    else if (not is_up) && was_up then begin
      Hashtbl.remove v.up k;
      v.epoch <- v.epoch + 1
    end

  let is_up v a b = Hashtbl.mem v.up (key a b)

  let epoch v = v.epoch
end

(* Dijkstra over the live links; returns next-hop map from [src].

   Relaxation walks the precomputed adjacency arrays (sorted by neighbor
   id), and equal-cost paths are tie-broken toward the smallest first-hop
   id, so the resulting table is canonical: it depends only on the
   topology and the set of live links, never on insertion or iteration
   order. Deterministic chaos replay relies on this. *)
let next_hops t view ~src =
  (* best: node -> (distance, first hop out of src on the best path). *)
  let best : (node_id, float * node_id option) Hashtbl.t = Hashtbl.create 16 in
  let heap = Sim.Heap.create () in
  Hashtbl.replace best src (0.0, None);
  Sim.Heap.push heap ~key:0.0 (src, None);
  let consider next nd hop =
    let improves =
      match Hashtbl.find_opt best next with
      | None -> true
      | Some (kd, kh) -> (
          nd < kd
          || nd = kd
             &&
             match (kh, hop) with
             | Some cur, Some cand -> cand < cur
             | _ -> false)
    in
    if improves then begin
      Hashtbl.replace best next (nd, hop);
      Sim.Heap.push heap ~key:nd (next, hop)
    end
  in
  let rec loop () =
    match Sim.Heap.pop heap with
    | None -> ()
    | Some (d, (node, via)) ->
        (* Only expand entries that still are the node's best; stale heap
           entries from superseded relaxations are skipped. *)
        (match Hashtbl.find_opt best node with
        | Some (bd, bh) when bd = d && bh = via ->
            Array.iter
              (fun (next, weight) ->
                if View.is_up view node next then
                  let hop = match via with None -> Some next | some -> some in
                  consider next (d +. weight) hop)
              (adjacency t node)
        | _ -> ());
        loop ()
  in
  loop ();
  let first_hop : (node_id, node_id) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun node (_, hop) -> match hop with Some h -> Hashtbl.replace first_hop node h | None -> ())
    best;
  first_hop

let route t view ~src ~dst =
  if src = dst then None else Hashtbl.find_opt (next_hops t view ~src) dst
