(** Static overlay topology plus per-daemon dynamic link views and
    shortest-path (Dijkstra) next-hop computation.

    The constructor builds a per-node adjacency index (so Dijkstra never
    scans the full link list), and link views carry a monotone epoch so
    forwarding planes can cache next-hop tables per view generation. *)

type node_id = int

type link = { a : node_id; b : node_id; weight : float }

type t

(** Raises [Invalid_argument] on self-links, unknown endpoints,
    non-positive weights, or duplicate links for the same (a, b) pair
    (in either orientation). *)
val create : nodes:node_id list -> links:link list -> t

val nodes : t -> node_id list

val links : t -> link list

val link : ?weight:float -> node_id -> node_id -> link

(** Complete graph over the nodes (the replicas' internal network). *)
val full_mesh : node_id list -> t

(** Precomputed [(neighbor, weight)] array for a node, sorted by
    neighbor id ([| |] for unknown nodes). *)
val adjacency : t -> node_id -> (node_id * float) array

val neighbors : t -> node_id -> node_id list

module View : sig
  type view

  (** View with every configured link up, at epoch 0. *)
  val all_up : t -> view

  (** Changes the liveness of one link. Bumps {!epoch} only on a real
      transition; re-asserting the current state is a no-op. *)
  val set_link : view -> node_id -> node_id -> up:bool -> unit

  val is_up : view -> node_id -> node_id -> bool

  (** Monotone count of link transitions: equal epochs guarantee an
      unchanged live-link set, so cached routing tables remain valid. *)
  val epoch : view -> int
end

(** Next-hop table from [src] over the live links. Canonical: equal-cost
    paths tie-break toward the smallest first-hop id, so the table
    depends only on the topology and the live-link set. *)
val next_hops : t -> View.view -> src:node_id -> (node_id, node_id) Hashtbl.t

(** First hop from [src] toward [dst], if reachable. Recomputes Dijkstra
    per call — forwarding planes should cache {!next_hops} per
    {!View.epoch} instead. *)
val route : t -> View.view -> src:node_id -> dst:node_id -> node_id option
