(** Sliding-window (origin, seq) deduplication with bounded memory.

    Remembers at most [span] recent sequence numbers per origin; older
    ones are evicted and treated as stale duplicates if replayed. *)

type t

val create : ?span:int -> unit -> t

(** [mark t ~origin ~seq] returns [true] iff this (origin, seq) pair is a
    fresh sighting; duplicates and sequences below the eviction horizon
    return [false]. *)
val mark : t -> origin:int -> seq:int -> bool

(** Total entries evicted so far across all origins. *)
val evictions : t -> int

(** Entries currently remembered across all origins. *)
val retained : t -> int
