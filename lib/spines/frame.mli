(** Coalesced link-frame header codec: a Wire-encoded manifest of the
    sub-messages packed into one link frame.

    Each manifest entry is length-prefixed, so a corrupted entry can
    never desynchronise the reader into its neighbors, and {!decode_header}
    is total — malformed or truncated input yields [None], never an
    exception. The daemon drops (and counts) any frame whose manifest
    fails to decode or disagrees with the carried payloads. *)

type dst_meta =
  | M_client of { node : int; client : int }
  | M_group of string
  | M_session of string

(** Wire-relevant fields of one coalesced sub-message (the payload
    itself travels alongside; hellos are never coalesced). *)
type meta =
  | M_data of {
      origin : int;
      origin_client : int;
      data_seq : int;
      dst : dst_meta;
      priority : int;
      app_size : int;
    }
  | M_lsa of { origin : int; seq : int; up_neighbors : int list }

(** Raises [Invalid_argument] on an empty list or more than 65535
    entries. *)
val encode_header : meta list -> string

(** Total decoder: [None] on any malformed, truncated, or
    wrong-magic/version input. *)
val decode_header : string -> meta list option
