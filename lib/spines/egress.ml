(* Bounded per-neighbor egress queue with priority scheduling and source
   fairness.

   The data plane enqueues every outbound payload here instead of
   transmitting immediately; a flush (driven by the sim clock) drains the
   queue in send order:

   - higher priority bands drain first;
   - within a band, origins are served round-robin (the paper's source
     fairness: a flooding origin cannot monopolise a link even after it
     has been admitted upstream), with the cursor persisting across
     flushes;
   - on overflow the lowest-priority traffic is dropped first: an
     arrival that is itself lowest-priority is rejected, otherwise the
     oldest message of the most-backlogged origin in the lowest band is
     evicted to make room.

   Everything is deterministic: origins are served in sorted circular
   order and eviction victims are chosen by (queue length, origin id),
   never by hash-table iteration order — chaos replay depends on the
   drain order being byte-identical across same-seed runs. *)

type 'a band = {
  queues : (int, 'a Queue.t) Hashtbl.t; (* origin -> FIFO *)
  mutable b_len : int;
  mutable cursor : int; (* origin served last; next round starts above it *)
}

type 'a t = {
  capacity : int;
  bands : (int, 'a band) Hashtbl.t; (* priority -> band *)
  mutable length : int;
  mutable drops : int;
}

type 'a outcome =
  | Enqueued
  | Rejected (* the arrival itself was lowest-priority and the queue is full *)
  | Evicted of 'a (* room was made by dropping this lower-priority message *)

let create ~capacity () =
  if capacity < 1 then invalid_arg "Egress.create: capacity must be >= 1";
  { capacity; bands = Hashtbl.create 4; length = 0; drops = 0 }

let length t = t.length

let is_empty t = t.length = 0

let drops t = t.drops

let band_for t prio =
  match Hashtbl.find_opt t.bands prio with
  | Some b -> b
  | None ->
      let b = { queues = Hashtbl.create 8; b_len = 0; cursor = min_int } in
      Hashtbl.replace t.bands prio b;
      b

let lowest_band t =
  Hashtbl.fold
    (fun prio band acc ->
      if band.b_len = 0 then acc
      else
        match acc with
        | Some (p, _) when p <= prio -> acc
        | _ -> Some (prio, band))
    t.bands None

(* The most-backlogged origin of a band (ties toward the higher id). *)
let victim_origin band =
  Hashtbl.fold
    (fun origin q acc ->
      let len = Queue.length q in
      if len = 0 then acc
      else
        match acc with
        | Some (o, l) when l > len || (l = len && o > origin) -> acc
        | _ -> Some (origin, len))
    band.queues None

let push_into t prio origin msg =
  let band = band_for t prio in
  let q =
    match Hashtbl.find_opt band.queues origin with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.replace band.queues origin q;
        q
  in
  Queue.push msg q;
  band.b_len <- band.b_len + 1;
  t.length <- t.length + 1

let enqueue t ~prio ~origin msg =
  if t.length < t.capacity then begin
    push_into t prio origin msg;
    Enqueued
  end
  else
    match lowest_band t with
    | Some (low_prio, _) when prio <= low_prio ->
        t.drops <- t.drops + 1;
        Rejected
    | Some (_, band) ->
        let victim =
          match victim_origin band with
          | Some (o, _) ->
              let q = Hashtbl.find band.queues o in
              let v = Queue.pop q in
              if Queue.is_empty q then Hashtbl.remove band.queues o;
              band.b_len <- band.b_len - 1;
              t.length <- t.length - 1;
              t.drops <- t.drops + 1;
              v
          | None -> assert false (* lowest_band returned a non-empty band *)
        in
        push_into t prio origin msg;
        Evicted victim
    | None ->
        (* capacity >= 1 and length >= capacity imply a non-empty band *)
        assert false

(* Non-empty origins of a band in circular order starting just above the
   fairness cursor. *)
let serve_order band =
  let origins =
    Hashtbl.fold
      (fun o q acc -> if Queue.is_empty q then acc else o :: acc)
      band.queues []
  in
  let origins = List.sort compare origins in
  let after, upto = List.partition (fun o -> o > band.cursor) origins in
  after @ upto

let drain ?(max = max_int) t =
  let out = ref [] in
  let taken = ref 0 in
  let prios =
    Hashtbl.fold (fun p band acc -> if band.b_len > 0 then p :: acc else acc) t.bands []
    |> List.sort (fun a b -> compare b a)
  in
  List.iter
    (fun prio ->
      let band = Hashtbl.find t.bands prio in
      let rec round () =
        if !taken < max && band.b_len > 0 then begin
          List.iter
            (fun origin ->
              if !taken < max then begin
                match Hashtbl.find_opt band.queues origin with
                | Some q when not (Queue.is_empty q) ->
                    let msg = Queue.pop q in
                    if Queue.is_empty q then Hashtbl.remove band.queues origin;
                    band.cursor <- origin;
                    band.b_len <- band.b_len - 1;
                    t.length <- t.length - 1;
                    incr taken;
                    out := (prio, origin, msg) :: !out
                | _ -> ()
              end)
            (serve_order band);
          round ()
        end
      in
      round ())
    prios;
  List.rev !out

let clear t =
  Hashtbl.reset t.bands;
  t.length <- 0
