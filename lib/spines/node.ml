(* Spines overlay daemon.

   Reimplements the Spines behaviours the paper's deployment relies on:

   - authenticated, encrypted links: every daemon-to-daemon message carries
     an HMAC under the deployment's group key. A daemon built without the
     key (the red team's recompiled open-source version) cannot produce
     valid traffic and is ignored by keyed peers.
   - intrusion-tolerant mode: data is disseminated by priority flooding
     with per-source rate limiting (source fairness), so a compromised
     insider daemon cannot starve other sources; and the code paths the
     red team's patched-binary exploit targeted are disabled.
   - link-state routing for non-IT mode: hellos detect neighbor failures,
     LSAs propagate them, unicast follows Dijkstra next hops.

   The [Link_msg] payload constructor is deliberately not exported:
   attack code cannot destructure overlay traffic (encryption) nor
   construct well-formed link messages without going through a daemon it
   controls (key capture). Replayed frames are rejected by (origin, seq)
   deduplication. *)

type node_id = Topology.node_id

type dst =
  | To_client of { node : node_id; client : int }
  | To_group of string
  | To_session of string (* a named session client attached to some daemon *)

type data = {
  origin : node_id;
  origin_client : int;
  data_seq : int;
  dst : dst;
  priority : int;
  app_size : int;
  app_payload : Netbase.Packet.payload;
}

type inner =
  | Data of data
  | Hello of { hfrom : node_id; hseq : int }
  | Hello_ack of { afrom : node_id; hseq : int }
  | Lsa of { lsa_origin : node_id; lsa_seq : int; up_neighbors : node_id list }

type Netbase.Packet.payload += Link_msg of { auth : string; encrypted : bool; inner : inner }

(* A coalesced frame: several payloads for the same neighbor under one
   HMAC. [fr_header] is the Wire-encoded manifest ({!Frame}); the
   receiver authenticates the frame, decodes the manifest, and checks it
   against [fr_inners] before handling anything. *)
type Netbase.Packet.payload +=
  | Link_frame of { fr_auth : string; fr_header : string; fr_inners : inner list }

(* Client-to-daemon session protocol (the real Spines' remote client
   sessions): attach with a name, send into the overlay, receive
   deliveries. Authenticated with the same group key as links, so a
   machine without key material cannot attach or inject. Constructors are
   private to this module. *)
type session_inner =
  | Sess_attach of { sa_name : string }
  | Sess_attach_ack of { sk_name : string }
  | Sess_send of {
      ss_name : string;
      ss_dst : dst;
      ss_priority : int;
      ss_size : int;
      ss_payload : Netbase.Packet.payload;
    }
  | Sess_deliver of {
      sd_origin : node_id;
      sd_seq : int;
      sd_size : int;
      sd_payload : Netbase.Packet.payload;
    }

type Netbase.Packet.payload += Session_wire of { s_auth : string; s_inner : session_inner }

let overhead_bytes = 80 (* overlay header + HMAC *)

type config = {
  topology : Topology.t;
  port : int;
  session_port : int; (* client-facing port for remote session clients *)
  it_mode : bool;
  group_key : string option; (* None models a build without the new encryption *)
  hello_period : float;
  hello_timeout : float;
  source_rate_limit : float; (* data msgs/s accepted per origin in IT mode *)
  session_timeout : float; (* attachment freshness bound *)
  dedup_window : int; (* per-origin sequence horizon for dedup eviction *)
  route_cache : bool; (* cache next-hop tables per view epoch *)
  coalescing : bool; (* pack same-neighbor payloads into one link frame *)
  egress_capacity : int; (* per-neighbor egress queue bound, messages *)
  coalesce_window : float; (* egress flush window, seconds *)
}

let default_config ?(port = 8100) ?session_port ?(it_mode = true) ?group_key
    ?(dedup_window = 4096) ?(route_cache = true) ?(coalescing = true)
    ?(egress_capacity = 256) ?(coalesce_window = 0.0005) topology =
  if egress_capacity < 1 then invalid_arg "Node.default_config: egress_capacity must be >= 1";
  if coalesce_window < 0.0 then
    invalid_arg "Node.default_config: coalesce_window must be >= 0";
  {
    topology;
    port;
    session_port = (match session_port with Some p -> p | None -> port + 1);
    it_mode;
    group_key;
    hello_period = 0.2;
    hello_timeout = 1.0;
    source_rate_limit = 2000.0;
    session_timeout = 5.0;
    dedup_window;
    route_cache;
    coalescing;
    egress_capacity;
    coalesce_window;
  }

type client = {
  handler : src:node_id * int -> size:int -> Netbase.Packet.payload -> unit;
  groups : string list;
}

type neighbor_state = { mutable last_ack : float; mutable up : bool }

type bucket = { mutable tokens : float; mutable updated : float }

(* Fault-injection verdict for one outgoing link message. Consulted by
   [send_link] when a chaos injector is installed; the injector owns its
   own RNG so link faults replay deterministically from a chaos seed. *)
type fault_decision = { fd_drop : bool; fd_duplicate : bool; fd_delay : float }

let no_fault = { fd_drop = false; fd_duplicate = false; fd_delay = 0.0 }

(* Per-neighbor egress: the bounded priority queue plus the pending
   flush event for the current coalesce window, if any. *)
type egress_state = { eq : inner Egress.t; mutable flush_event : Sim.Engine.event_id option }

type t = {
  id : node_id;
  config : config;
  host : Netbase.Host.t;
  engine : Sim.Engine.t;
  trace : Sim.Trace.t;
  peer_addrs : (node_id, Netbase.Addr.Ip.t) Hashtbl.t;
  clients : (int, client) Hashtbl.t;
  mutable seq : int;
  mutable hello_seq : int;
  mutable lsa_seq : int;
  dedup : Window.t;
  lsa_seen : (node_id * int, unit) Hashtbl.t;
  view : Topology.View.view;
  neighbor_states : (node_id, neighbor_state) Hashtbl.t;
  buckets : (node_id, bucket) Hashtbl.t;
  counters : Sim.Stats.Counter.t;
  sessions : (string, session_entry) Hashtbl.t; (* attached remote clients *)
  (* next-hop table cached per view epoch; -1 means never built *)
  mutable route_table : (node_id, node_id) Hashtbl.t;
  mutable route_table_epoch : int;
  egress : (node_id, egress_state) Hashtbl.t;
  mutable running : bool;
  mutable timers : Sim.Engine.timer list;
  mutable exploit : string option;
  mutable fault_injector : (peer:node_id -> fault_decision) option;
}

and session_entry = {
  mutable sess_ip : Netbase.Addr.Ip.t;
  mutable sess_port : int;
  mutable sess_last_seen : float;
}

let create ~engine ~trace ~host ~id config =
  let t =
    {
      id;
      config;
      host;
      engine;
      trace;
      peer_addrs = Hashtbl.create 16;
      clients = Hashtbl.create 8;
      seq = 0;
      hello_seq = 0;
      lsa_seq = 0;
      dedup = Window.create ~span:config.dedup_window ();
      lsa_seen = Hashtbl.create 64;
      view = Topology.View.all_up config.topology;
      neighbor_states = Hashtbl.create 16;
      buckets = Hashtbl.create 16;
      counters = Sim.Stats.Counter.create ();
      sessions = Hashtbl.create 16;
      route_table = Hashtbl.create 16;
      route_table_epoch = -1;
      egress = Hashtbl.create 16;
      running = false;
      timers = [];
      exploit = None;
      fault_injector = None;
    }
  in
  List.iter
    (fun n -> Hashtbl.replace t.neighbor_states n { last_ack = 0.0; up = true })
    (Topology.neighbors config.topology id);
  (* Health probe; the port disambiguates internal/external daemons that
     share node ids. No-op unless a harness enabled the registry. *)
  Obs.Probe.register Obs.Probe.default
    ~name:(Printf.sprintf "spines.node.%d.%d" id config.port)
    (fun () ->
      let c name = Sim.Stats.Counter.get t.counters name in
      let hits = float_of_int (c "route.cache_hit") in
      let misses = float_of_int (c "route.cache_miss") in
      [
        ("chaos_dropped", float_of_int (c "chaos.dropped"));
        ("drops_total", float_of_int (c "egress.drop" + c "chaos.dropped"));
        ( "egress_len",
          float_of_int
            (Hashtbl.fold (fun _ es acc -> acc + Egress.length es.eq) t.egress 0) );
        ("epoch", float_of_int (Topology.View.epoch t.view));
        ( "route_hit_rate",
          if hits +. misses > 0.0 then hits /. (hits +. misses) else 0.0 );
        ("running", if t.running then 1.0 else 0.0);
      ]);
  t

let id t = t.id

let counters t = t.counters

let is_running t = t.running

let set_peer_address t peer ip = Hashtbl.replace t.peer_addrs peer ip

let inject_exploit t name = t.exploit <- Some name

let set_fault_injector t f = t.fault_injector <- f

let dedup_evictions t = Window.evictions t.dedup

let dedup_retained t = Window.retained t.dedup

(* --- canonical encoding for authentication ----------------------------- *)

let encode_dst = function
  | To_client { node; client } -> Printf.sprintf "c:%d:%d" node client
  | To_group g -> Printf.sprintf "g:%s" g
  | To_session name -> Printf.sprintf "s:%s" name

let encode_inner = function
  | Data d ->
      Printf.sprintf "data:%d:%d:%d:%s:%d:%d" d.origin d.origin_client d.data_seq
        (encode_dst d.dst) d.priority d.app_size
  | Hello { hfrom; hseq } -> Printf.sprintf "hello:%d:%d" hfrom hseq
  | Hello_ack { afrom; hseq } -> Printf.sprintf "ack:%d:%d" afrom hseq
  | Lsa { lsa_origin; lsa_seq; up_neighbors } ->
      Printf.sprintf "lsa:%d:%d:%s" lsa_origin lsa_seq
        (String.concat "," (List.map string_of_int up_neighbors))

let compute_auth t inner =
  match t.config.group_key with
  | Some key -> Crypto.Hmac.mac ~key (encode_inner inner)
  | None -> ""

let auth_valid t ~auth inner =
  match t.config.group_key with
  | None -> true (* an unkeyed daemon cannot check anything *)
  | Some key -> Crypto.Hmac.verify ~key ~tag:auth (encode_inner inner)

let encode_session_inner = function
  | Sess_attach { sa_name } -> Printf.sprintf "sess-attach:%s" sa_name
  | Sess_attach_ack { sk_name } -> Printf.sprintf "sess-ack:%s" sk_name
  | Sess_send { ss_name; ss_dst; ss_priority; ss_size; _ } ->
      Printf.sprintf "sess-send:%s:%s:%d:%d" ss_name (encode_dst ss_dst) ss_priority ss_size
  | Sess_deliver { sd_origin; sd_seq; sd_size; _ } ->
      Printf.sprintf "sess-deliver:%d:%d:%d" sd_origin sd_seq sd_size

let session_auth ~key inner = Crypto.Hmac.mac ~key (encode_session_inner inner)

let session_auth_valid ~key ~auth inner =
  Crypto.Hmac.verify ~key ~tag:auth (encode_session_inner inner)

(* --- link transmission -------------------------------------------------- *)

let inner_size = function
  | Data d -> d.app_size + overhead_bytes
  | Hello _ | Hello_ack _ -> overhead_bytes
  | Lsa _ -> overhead_bytes + 32

(* Named rather than a local closure: the no-fault fast path below calls
   it directly, so a steady-state link send allocates no thunk. *)
let transmit_link t ~ip inner =
  let msg =
    Link_msg { auth = compute_auth t inner; encrypted = t.config.group_key <> None; inner }
  in
  Sim.Stats.Counter.incr t.counters "link.tx";
  Obs.Registry.incr Obs.Registry.default "spines.link.tx";
  Netbase.Host.udp_send t.host ~dst_ip:ip ~dst_port:t.config.port ~src_port:t.config.port
    ~size:(inner_size inner) msg

let send_link t ~to_ inner =
  match Hashtbl.find_opt t.peer_addrs to_ with
  | None -> Sim.Stats.Counter.incr t.counters "link.no_address"
  | Some ip ->
      let d =
        match t.fault_injector with None -> no_fault | Some inject -> inject ~peer:to_
      in
      if d.fd_drop then Sim.Stats.Counter.incr t.counters "chaos.dropped"
      else begin
        (* A delayed copy overtakes later undelayed traffic, so delay also
           models reordering. *)
        if d.fd_delay > 0.0 then begin
          Sim.Stats.Counter.incr t.counters "chaos.delayed";
          ignore
            (Sim.Engine.schedule t.engine ~delay:d.fd_delay (fun () ->
                 transmit_link t ~ip inner))
        end
        else transmit_link t ~ip inner;
        if d.fd_duplicate then begin
          Sim.Stats.Counter.incr t.counters "chaos.duplicated";
          transmit_link t ~ip inner
        end
      end

(* --- coalesced frames ---------------------------------------------------- *)

(* Per-sub-message framing cost replacing a full overlay header + HMAC. *)
let frame_sub_overhead = 12

(* LSAs ride the egress queue above any data priority so routing
   convergence is never queued behind application traffic. *)
let lsa_priority = 1000

let frame_auth t header =
  match t.config.group_key with
  | Some key -> Crypto.Hmac.mac ~key ("frame:" ^ header)
  | None -> ""

let frame_auth_valid t ~auth header =
  match t.config.group_key with
  | None -> true
  | Some key -> Crypto.Hmac.verify ~key ~tag:auth ("frame:" ^ header)

let meta_of_dst = function
  | To_client { node; client } -> Frame.M_client { node; client }
  | To_group g -> Frame.M_group g
  | To_session s -> Frame.M_session s

(* Hellos never enter the egress queue, so every coalesced sub-message
   has a manifest entry. *)
let meta_of_inner = function
  | Data d ->
      Some
        (Frame.M_data
           {
             origin = d.origin;
             origin_client = d.origin_client;
             data_seq = d.data_seq;
             dst = meta_of_dst d.dst;
             priority = d.priority;
             app_size = d.app_size;
           })
  | Lsa { lsa_origin; lsa_seq; up_neighbors } ->
      Some (Frame.M_lsa { origin = lsa_origin; seq = lsa_seq; up_neighbors })
  | Hello _ | Hello_ack _ -> None

let rec metas_match metas inners =
  match (metas, inners) with
  | [], [] -> true
  | m :: ms, i :: is -> (
      match meta_of_inner i with
      | Some mi -> mi = m && metas_match ms is
      | None -> false)
  | _, _ -> false

(* Named for the same reason as [transmit_link]: the no-fault fast path
   transmits without allocating a thunk. *)
let transmit_frame t ~ip ~size ~header inners =
  Sim.Stats.Counter.incr t.counters "link.tx";
  Obs.Registry.incr Obs.Registry.default "spines.link.tx";
  Obs.Registry.observe Obs.Registry.default "spines.frame.msgs"
    (float_of_int (List.length inners));
  Netbase.Host.udp_send t.host ~dst_ip:ip ~dst_port:t.config.port ~src_port:t.config.port
    ~size
    (Link_frame { fr_auth = frame_auth t header; fr_header = header; fr_inners = inners })

let send_frame t ~to_ inners =
  match Hashtbl.find_opt t.peer_addrs to_ with
  | None -> Sim.Stats.Counter.incr t.counters "link.no_address"
  | Some ip ->
      let header = Frame.encode_header (List.filter_map meta_of_inner inners) in
      (* The red team's corrupt-frames exploit: ship a frame whose HMAC
         covers a truncated manifest, so it passes authentication and
         must be caught by the decode path. *)
      let header =
        match t.exploit with
        | Some "corrupt-frames" -> String.sub header 0 (String.length header - 1)
        | _ -> header
      in
      let size =
        List.fold_left
          (fun acc i -> acc + (inner_size i - overhead_bytes) + frame_sub_overhead)
          overhead_bytes inners
      in
      (* Fault injection moves to the queue boundary: one verdict per
         frame, so a lossy link drops/delays coalesced payloads together
         (as a real lossy wire would). *)
      let d =
        match t.fault_injector with None -> no_fault | Some inject -> inject ~peer:to_
      in
      if d.fd_drop then Sim.Stats.Counter.incr t.counters "chaos.dropped"
      else begin
        if d.fd_delay > 0.0 then begin
          Sim.Stats.Counter.incr t.counters "chaos.delayed";
          ignore
            (Sim.Engine.schedule t.engine ~delay:d.fd_delay (fun () ->
                 transmit_frame t ~ip ~size ~header inners))
        end
        else transmit_frame t ~ip ~size ~header inners;
        if d.fd_duplicate then begin
          Sim.Stats.Counter.incr t.counters "chaos.duplicated";
          transmit_frame t ~ip ~size ~header inners
        end
      end

(* --- egress scheduling ----------------------------------------------------- *)

let egress_for t peer =
  match Hashtbl.find_opt t.egress peer with
  | Some es -> es
  | None ->
      let es = { eq = Egress.create ~capacity:t.config.egress_capacity (); flush_event = None } in
      Hashtbl.replace t.egress peer es;
      es

let flush_egress t to_ es =
  es.flush_event <- None;
  match Egress.drain es.eq with
  | [] -> ()
  | batch -> send_frame t ~to_ (List.map (fun (_, _, i) -> i) batch)

let schedule_flush t to_ es =
  match es.flush_event with
  | Some _ -> () (* a flush for the current window is already pending *)
  | None ->
      es.flush_event <-
        Some
          (Sim.Engine.schedule t.engine ~delay:t.config.coalesce_window (fun () ->
               flush_egress t to_ es))

let enqueue_link t ~to_ ~prio ~origin inner =
  if not t.config.coalescing then send_link t ~to_ inner
  else begin
    let es = egress_for t to_ in
    let before = Egress.drops es.eq in
    ignore (Egress.enqueue es.eq ~prio ~origin inner);
    let dropped = Egress.drops es.eq - before in
    if dropped > 0 then begin
      Sim.Stats.Counter.incr ~by:dropped t.counters "egress.drop";
      Obs.Registry.incr ~by:dropped Obs.Registry.default "spines.egress.drop";
      if Obs.Flight.recording Obs.Flight.default then
        Obs.Flight.record Obs.Flight.default ~time:(Sim.Engine.now t.engine)
          ~severity:Obs.Flight.Warn ~subsystem:"spines" ~kind:"egress.drop"
          (Printf.sprintf "node %d dropped %d toward %d (queue full)" t.id dropped to_)
    end;
    schedule_flush t to_ es
  end

(* --- route cache ------------------------------------------------------------ *)

let ensure_route_table t =
  let ep = Topology.View.epoch t.view in
  if t.route_table_epoch = ep then begin
    Sim.Stats.Counter.incr t.counters "route.cache_hit";
    Obs.Registry.incr Obs.Registry.default "spines.route.cache_hit"
  end
  else begin
    Sim.Stats.Counter.incr t.counters "route.cache_miss";
    Sim.Stats.Counter.incr t.counters "route.rebuild";
    Sim.Stats.Counter.incr t.counters "route.dijkstra";
    Obs.Registry.incr Obs.Registry.default "spines.route.cache_miss";
    Obs.Registry.incr Obs.Registry.default "spines.route.rebuild";
    if Obs.Flight.recording Obs.Flight.default then
      Obs.Flight.record Obs.Flight.default ~time:(Sim.Engine.now t.engine)
        ~severity:Obs.Flight.Info ~subsystem:"spines" ~kind:"route.rebuild"
        (Printf.sprintf "node %d rebuilt routes for epoch %d" t.id ep);
    t.route_table <- Topology.next_hops t.config.topology t.view ~src:t.id;
    t.route_table_epoch <- ep
  end

let route_next_hop t ~dst =
  if dst = t.id then None
  else if t.config.route_cache then begin
    ensure_route_table t;
    Hashtbl.find_opt t.route_table dst
  end
  else begin
    Sim.Stats.Counter.incr t.counters "route.dijkstra";
    Topology.route t.config.topology t.view ~src:t.id ~dst
  end

let next_hop_snapshot t =
  let tbl =
    if t.config.route_cache then begin
      ensure_route_table t;
      t.route_table
    end
    else Topology.next_hops t.config.topology t.view ~src:t.id
  in
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let live_neighbors t =
  List.filter
    (fun n ->
      match Hashtbl.find_opt t.neighbor_states n with Some s -> s.up | None -> false)
    (Topology.neighbors t.config.topology t.id)

(* --- local delivery ------------------------------------------------------ *)

let deliver_local t (d : data) =
  let deliver_to client_id client =
    Sim.Stats.Counter.incr t.counters "deliver";
    Obs.Registry.incr Obs.Registry.default "spines.deliver";
    ignore client_id;
    client.handler ~src:(d.origin, d.origin_client) ~size:d.app_size d.app_payload
  in
  match d.dst with
  | To_client { node; client } ->
      if node = t.id then begin
        match Hashtbl.find_opt t.clients client with
        | Some c -> deliver_to client c
        | None -> Sim.Stats.Counter.incr t.counters "deliver.no_client"
      end
  | To_group g ->
      Hashtbl.iter
        (fun client_id c -> if List.mem g c.groups then deliver_to client_id c)
        t.clients
  | To_session name -> (
      match (Hashtbl.find_opt t.sessions name, t.config.group_key) with
      | Some entry, Some key
        when Sim.Engine.now t.engine -. entry.sess_last_seen <= t.config.session_timeout ->
          Sim.Stats.Counter.incr t.counters "session.delivered";
          let inner =
            Sess_deliver
              { sd_origin = d.origin; sd_seq = d.data_seq; sd_size = d.app_size;
                sd_payload = d.app_payload }
          in
          Netbase.Host.udp_send t.host ~dst_ip:entry.sess_ip ~dst_port:entry.sess_port
            ~src_port:t.config.session_port ~size:(d.app_size + overhead_bytes)
            (Session_wire { s_auth = session_auth ~key inner; s_inner = inner })
      | _ -> ())

(* --- fairness (per-source rate limiting, IT mode) ------------------------ *)

let bucket_for t origin =
  match Hashtbl.find_opt t.buckets origin with
  | Some b -> b
  | None ->
      let b = { tokens = t.config.source_rate_limit /. 10.0; updated = 0.0 } in
      Hashtbl.replace t.buckets origin b;
      b

let within_rate t origin =
  let b = bucket_for t origin in
  let now = Sim.Engine.now t.engine in
  let cap = t.config.source_rate_limit /. 10.0 in
  b.tokens <- Float.min cap (b.tokens +. ((now -. b.updated) *. t.config.source_rate_limit));
  b.updated <- now;
  if b.tokens >= 1.0 then begin
    b.tokens <- b.tokens -. 1.0;
    true
  end
  else false

(* --- dissemination -------------------------------------------------------- *)

let flood t ?except inner =
  let prio, origin =
    match inner with
    | Data d -> (d.priority, d.origin)
    | Lsa { lsa_origin; _ } -> (lsa_priority, lsa_origin)
    | Hello _ | Hello_ack _ -> (lsa_priority, t.id)
  in
  List.iter
    (fun n -> if Some n <> except then enqueue_link t ~to_:n ~prio ~origin inner)
    (live_neighbors t)

let forward_data t ~from (d : data) =
  let before = Window.evictions t.dedup in
  let fresh = Window.mark t.dedup ~origin:d.origin ~seq:d.data_seq in
  let evicted = Window.evictions t.dedup - before in
  if evicted > 0 then Sim.Stats.Counter.incr ~by:evicted t.counters "dedup.evicted";
  if not fresh then Sim.Stats.Counter.incr t.counters "dedup.drop"
  else begin
    Obs.Registry.incr Obs.Registry.default "spines.data.forwarded";
    (* Source fairness: a flooding origin is clipped at every honest hop. *)
    let admitted = (not t.config.it_mode) || d.origin = t.id || within_rate t d.origin in
    if not admitted then Sim.Stats.Counter.incr t.counters "fairness.clipped"
    else begin
      (* The red team's patched-binary exploit lives in a code path that is
         disabled in intrusion-tolerant mode; outside IT mode it lets the
         daemon silently discard other sources' traffic. *)
      (match (t.exploit, t.config.it_mode) with
      | Some "drop-foreign-traffic", false when d.origin <> t.id ->
          Sim.Stats.Counter.incr t.counters "exploit.dropped";
          Sim.Trace.record t.trace ~time:(Sim.Engine.now t.engine) ~category:"spines"
            "node %d exploit dropped data from %d" t.id d.origin
      | _ ->
          deliver_local t d;
          (match d.dst with
          | To_group _ | To_session _ -> flood t ?except:from (Data d)
          | To_client { node; _ } when node = t.id -> ()
          | To_client { node; _ } ->
              if t.config.it_mode then flood t ?except:from (Data d)
              else begin
                match route_next_hop t ~dst:node with
                | Some hop ->
                    enqueue_link t ~to_:hop ~prio:d.priority ~origin:d.origin (Data d)
                | None -> Sim.Stats.Counter.incr t.counters "route.unreachable"
              end))
    end
  end

(* --- link-state protocol --------------------------------------------------- *)

let originate_lsa t =
  t.lsa_seq <- t.lsa_seq + 1;
  let lsa =
    Lsa { lsa_origin = t.id; lsa_seq = t.lsa_seq; up_neighbors = live_neighbors t }
  in
  Hashtbl.replace t.lsa_seen (t.id, t.lsa_seq) ();
  flood t lsa

let apply_lsa t ~lsa_origin ~up_neighbors =
  List.iter
    (fun n ->
      Topology.View.set_link t.view lsa_origin n ~up:(List.mem n up_neighbors))
    (Topology.neighbors t.config.topology lsa_origin)

let handle_lsa t ~from ~lsa_origin ~lsa_seq ~up_neighbors =
  if not (Hashtbl.mem t.lsa_seen (lsa_origin, lsa_seq)) then begin
    Hashtbl.replace t.lsa_seen (lsa_origin, lsa_seq) ();
    if lsa_origin <> t.id then begin
      apply_lsa t ~lsa_origin ~up_neighbors;
      flood t ?except:from (Lsa { lsa_origin; lsa_seq; up_neighbors })
    end
  end

let mark_neighbor t n ~up =
  match Hashtbl.find_opt t.neighbor_states n with
  | None -> ()
  | Some s ->
      if s.up <> up then begin
        s.up <- up;
        Topology.View.set_link t.view t.id n ~up;
        if Obs.Flight.recording Obs.Flight.default then
          Obs.Flight.record Obs.Flight.default ~time:(Sim.Engine.now t.engine)
            ~severity:(if up then Obs.Flight.Info else Obs.Flight.Warn)
            ~subsystem:"spines"
            ~kind:(if up then "link.up" else "link.down")
            (Printf.sprintf "node %d: link to %d %s" t.id n (if up then "up" else "down"));
        Sim.Trace.record t.trace ~time:(Sim.Engine.now t.engine) ~category:"spines"
          "node %d: link to %d %s" t.id n (if up then "up" else "down");
        originate_lsa t
      end

let hello_tick t =
  let now = Sim.Engine.now t.engine in
  Hashtbl.iter
    (fun n state ->
      if state.up && now -. state.last_ack > t.config.hello_timeout then
        mark_neighbor t n ~up:false)
    t.neighbor_states;
  t.hello_seq <- t.hello_seq + 1;
  List.iter
    (fun n -> send_link t ~to_:n (Hello { hfrom = t.id; hseq = t.hello_seq }))
    (Topology.neighbors t.config.topology t.id)

let handle_hello_ack t ~afrom =
  (match Hashtbl.find_opt t.neighbor_states afrom with
  | Some s -> s.last_ack <- Sim.Engine.now t.engine
  | None -> ());
  match Hashtbl.find_opt t.neighbor_states afrom with
  | Some s when not s.up -> mark_neighbor t afrom ~up:true
  | _ -> ()

(* --- receive ---------------------------------------------------------------- *)

let handle_inner t ~from inner =
  match inner with
  | Data d -> forward_data t ~from:(Some from) d
  | Hello { hfrom; hseq } -> send_link t ~to_:hfrom (Hello_ack { afrom = t.id; hseq })
  | Hello_ack { afrom; _ } -> handle_hello_ack t ~afrom
  | Lsa { lsa_origin; lsa_seq; up_neighbors } ->
      handle_lsa t ~from:(Some from) ~lsa_origin ~lsa_seq ~up_neighbors

let peer_of_ip t ip =
  Hashtbl.fold
    (fun peer addr acc -> if Netbase.Addr.Ip.equal addr ip then Some peer else acc)
    t.peer_addrs None

let receive t ~src ~dst_port:_ ~size:_ payload =
  if t.running then
    match payload with
    | Link_msg { auth; encrypted = _; inner } -> (
        if not (auth_valid t ~auth inner) then begin
          Sim.Stats.Counter.incr t.counters "auth.reject";
          Sim.Trace.record t.trace ~time:(Sim.Engine.now t.engine) ~category:"spines"
            "node %d rejected unauthenticated link message from %s" t.id
            (Netbase.Addr.Ip.to_string src.Netbase.Addr.ip)
        end
        else
          match peer_of_ip t src.Netbase.Addr.ip with
          | Some from -> handle_inner t ~from inner
          | None -> Sim.Stats.Counter.incr t.counters "link.unknown_peer")
    | Link_frame { fr_auth; fr_header; fr_inners } -> (
        if not (frame_auth_valid t ~auth:fr_auth fr_header) then begin
          Sim.Stats.Counter.incr t.counters "auth.reject";
          Sim.Trace.record t.trace ~time:(Sim.Engine.now t.engine) ~category:"spines"
            "node %d rejected unauthenticated link frame from %s" t.id
            (Netbase.Addr.Ip.to_string src.Netbase.Addr.ip)
        end
        else
          match peer_of_ip t src.Netbase.Addr.ip with
          | None -> Sim.Stats.Counter.incr t.counters "link.unknown_peer"
          | Some from -> (
              (* The manifest must decode and agree with the carried
                 payloads; otherwise the whole frame is dropped — a
                 corrupted frame must never crash the daemon or deliver a
                 payload its manifest does not vouch for. *)
              match Frame.decode_header fr_header with
              | Some metas when metas_match metas fr_inners ->
                  List.iter (fun i -> handle_inner t ~from i) fr_inners
              | Some _ | None ->
                  Sim.Stats.Counter.incr t.counters "frame.malformed";
                  Obs.Registry.incr Obs.Registry.default "spines.frame.malformed";
                  if Obs.Flight.recording Obs.Flight.default then
                    Obs.Flight.record Obs.Flight.default ~time:(Sim.Engine.now t.engine)
                      ~severity:Obs.Flight.Warn ~subsystem:"spines" ~kind:"frame.malformed"
                      (Printf.sprintf "node %d dropped malformed frame from %d" t.id from);
                  Sim.Trace.record t.trace ~time:(Sim.Engine.now t.engine)
                    ~category:"spines" "node %d dropped malformed coalesced frame from %d"
                    t.id from))
    | _ -> Sim.Stats.Counter.incr t.counters "link.garbage"

(* --- lifecycle ---------------------------------------------------------------- *)

(* Remote session clients: attach / send, over the session port. *)
let receive_session t ~src payload =
  match (payload, t.config.group_key) with
  | Session_wire { s_auth; s_inner }, Some key ->
      if not (session_auth_valid ~key ~auth:s_auth s_inner) then
        Sim.Stats.Counter.incr t.counters "session.auth_reject"
      else begin
        match s_inner with
        | Sess_attach { sa_name } ->
            let entry =
              match Hashtbl.find_opt t.sessions sa_name with
              | Some e -> e
              | None ->
                  let e =
                    { sess_ip = src.Netbase.Addr.ip; sess_port = src.Netbase.Addr.port;
                      sess_last_seen = 0.0 }
                  in
                  Hashtbl.replace t.sessions sa_name e;
                  e
            in
            entry.sess_ip <- src.Netbase.Addr.ip;
            entry.sess_port <- src.Netbase.Addr.port;
            entry.sess_last_seen <- Sim.Engine.now t.engine;
            let ack = Sess_attach_ack { sk_name = sa_name } in
            Netbase.Host.udp_send t.host ~dst_ip:src.Netbase.Addr.ip
              ~dst_port:src.Netbase.Addr.port ~src_port:t.config.session_port
              ~size:overhead_bytes
              (Session_wire { s_auth = session_auth ~key ack; s_inner = ack })
        | Sess_send { ss_name; ss_dst; ss_priority; ss_size; ss_payload } -> (
            match Hashtbl.find_opt t.sessions ss_name with
            | Some entry
              when Sim.Engine.now t.engine -. entry.sess_last_seen
                   <= t.config.session_timeout ->
                t.seq <- t.seq + 1;
                Sim.Stats.Counter.incr t.counters "session.send";
                forward_data t ~from:None
                  {
                    origin = t.id;
                    origin_client = 0;
                    data_seq = t.seq;
                    dst = ss_dst;
                    priority = ss_priority;
                    app_size = ss_size;
                    app_payload = ss_payload;
                  }
            | Some _ | None -> Sim.Stats.Counter.incr t.counters "session.not_attached")
        | Sess_attach_ack _ | Sess_deliver _ -> ()
      end
  | Session_wire _, None -> Sim.Stats.Counter.incr t.counters "session.no_key"
  | _, _ -> Sim.Stats.Counter.incr t.counters "session.garbage"

let start t =
  if t.running then invalid_arg "Node.start: already running";
  t.running <- true;
  Netbase.Host.udp_bind t.host ~port:t.config.port (fun ~src ~dst_port ~size payload ->
      receive t ~src ~dst_port ~size payload);
  Netbase.Host.udp_bind t.host ~port:t.config.session_port
    (fun ~src ~dst_port:_ ~size:_ payload -> if t.running then receive_session t ~src payload);
  let now = Sim.Engine.now t.engine in
  Hashtbl.iter (fun _ s -> s.last_ack <- now) t.neighbor_states;
  let hello = Sim.Engine.every t.engine ~period:t.config.hello_period (fun () -> hello_tick t) in
  t.timers <- [ hello ]

let stop t =
  if t.running then begin
    t.running <- false;
    Netbase.Host.udp_unbind t.host ~port:t.config.port;
    Netbase.Host.udp_unbind t.host ~port:t.config.session_port;
    Hashtbl.reset t.sessions;
    (* Queued egress dies with the daemon: cancel pending flushes and
       drop whatever was waiting for a coalesce window. *)
    Hashtbl.iter
      (fun _ es ->
        match es.flush_event with
        | Some ev -> Sim.Engine.cancel t.engine ev
        | None -> ())
      t.egress;
    Hashtbl.reset t.egress;
    List.iter (Sim.Engine.cancel_timer t.engine) t.timers;
    t.timers <- []
  end

(* --- client API ----------------------------------------------------------------- *)

let register_client t ~client ?(groups = []) handler =
  if Hashtbl.mem t.clients client then
    invalid_arg (Printf.sprintf "Node.register_client: client %d exists on node %d" client t.id);
  Hashtbl.replace t.clients client { handler; groups }

let send t ~client ?(priority = 1) ~size dst payload =
  if not t.running then Sim.Stats.Counter.incr t.counters "send.not_running"
  else begin
    t.seq <- t.seq + 1;
    let d =
      {
        origin = t.id;
        origin_client = client;
        data_seq = t.seq;
        dst;
        priority;
        app_size = size;
        app_payload = payload;
      }
    in
    Sim.Stats.Counter.incr t.counters "send";
    forward_data t ~from:None d
  end

(* --- remote session client -------------------------------------------------- *)

module Session = struct
  (* A named client on a separate machine, attached to one overlay daemon
     at a time with heartbeat re-attachment and automatic failover to the
     next daemon when the current one goes silent — how proxies and HMIs
     reach the overlay in Spire. *)

  type session = {
    sess_name : string;
    engine : Sim.Engine.t;
    trace : Sim.Trace.t;
    host : Netbase.Host.t;
    key : string;
    daemons : (node_id * Netbase.Addr.Ip.t) array;
    daemon_session_port : int;
    local_port : int;
    mutable current : int; (* index into daemons *)
    mutable last_ack : float;
    mutable handler : (size:int -> Netbase.Packet.payload -> unit) option;
    sess_dedup : Window.t;
    sess_counters : Sim.Stats.Counter.t;
    mutable sess_timers : Sim.Engine.timer list;
    mutable sess_running : bool;
    attach_period : float;
    failover_timeout : float;
  }

  let create ?(attach_period = 1.0) ?(failover_timeout = 3.0) ?(local_port = 9001)
      ?(dedup_window = 4096) ~engine ~trace ~host ~key ~daemons ~daemon_session_port ~name
      () =
    if daemons = [] then invalid_arg "Session.create: no daemons";
    {
      sess_name = name;
      engine;
      trace;
      host;
      key;
      daemons = Array.of_list daemons;
      daemon_session_port;
      local_port;
      current = 0;
      last_ack = 0.0;
      handler = None;
      sess_dedup = Window.create ~span:dedup_window ();
      sess_counters = Sim.Stats.Counter.create ();
      sess_timers = [];
      sess_running = false;
      attach_period;
      failover_timeout;
    }

  let name s = s.sess_name

  let counters s = s.sess_counters

  let current_daemon s = fst s.daemons.(s.current)

  let set_handler s h = s.handler <- Some h

  let send_wire s inner =
    let _, ip = s.daemons.(s.current) in
    Netbase.Host.udp_send s.host ~dst_ip:ip ~dst_port:s.daemon_session_port
      ~src_port:s.local_port
      ~size:
        (match inner with
        | Sess_send { ss_size; _ } -> ss_size + overhead_bytes
        | _ -> overhead_bytes)
      (Session_wire { s_auth = session_auth ~key:s.key inner; s_inner = inner })

  let attach_tick s =
    let now = Sim.Engine.now s.engine in
    if now -. s.last_ack > s.failover_timeout then begin
      (* Current daemon is silent (stopped, recovering, unreachable):
         rotate to the next one. *)
      let previous = s.current in
      s.current <- (s.current + 1) mod Array.length s.daemons;
      if s.current <> previous then begin
        Sim.Stats.Counter.incr s.sess_counters "failover";
        Sim.Trace.record s.trace ~time:now ~category:"session"
          "%s: daemon %d silent, failing over to daemon %d" s.sess_name
          (fst s.daemons.(previous))
          (fst s.daemons.(s.current))
      end
    end;
    send_wire s (Sess_attach { sa_name = s.sess_name })

  let receive s payload =
    match payload with
    | Session_wire { s_auth; s_inner } ->
        if not (session_auth_valid ~key:s.key ~auth:s_auth s_inner) then
          Sim.Stats.Counter.incr s.sess_counters "auth_reject"
        else begin
          match s_inner with
          | Sess_attach_ack _ -> s.last_ack <- Sim.Engine.now s.engine
          | Sess_deliver { sd_origin; sd_seq; sd_size; sd_payload } ->
              (* Stale double-attachments during failover may duplicate. *)
              let before = Window.evictions s.sess_dedup in
              let fresh = Window.mark s.sess_dedup ~origin:sd_origin ~seq:sd_seq in
              let evicted = Window.evictions s.sess_dedup - before in
              if evicted > 0 then
                Sim.Stats.Counter.incr ~by:evicted s.sess_counters "dedup.evicted";
              if fresh then begin
                Sim.Stats.Counter.incr s.sess_counters "delivered";
                match s.handler with
                | Some h -> h ~size:sd_size sd_payload
                | None -> ()
              end
          | Sess_attach _ | Sess_send _ -> ()
        end
    | _ -> Sim.Stats.Counter.incr s.sess_counters "garbage"

  let start s =
    if s.sess_running then invalid_arg "Session.start: already running";
    s.sess_running <- true;
    Netbase.Host.udp_bind s.host ~port:s.local_port (fun ~src:_ ~dst_port:_ ~size:_ payload ->
        receive s payload);
    s.last_ack <- Sim.Engine.now s.engine;
    send_wire s (Sess_attach { sa_name = s.sess_name });
    s.sess_timers <-
      [ Sim.Engine.every s.engine ~period:s.attach_period (fun () -> attach_tick s) ]

  let stop s =
    if s.sess_running then begin
      s.sess_running <- false;
      Netbase.Host.udp_unbind s.host ~port:s.local_port;
      List.iter (Sim.Engine.cancel_timer s.engine) s.sess_timers;
      s.sess_timers <- []
    end

  let send s ?(priority = 1) ~size dst payload =
    Sim.Stats.Counter.incr s.sess_counters "sent";
    send_wire s
      (Sess_send
         { ss_name = s.sess_name; ss_dst = dst; ss_priority = priority; ss_size = size;
           ss_payload = payload })
end
