(* Sliding-window (origin, seq) deduplication.

   A flat (origin, seq) table never forgets, so a long-running daemon's
   dedup state grows linearly with traffic. Sequence numbers from one
   origin are monotone, so only a bounded horizon below the highest seen
   sequence can still produce legitimate late duplicates: everything
   below [highest - span] is evicted and treated as a stale duplicate if
   it ever reappears (a replay, by definition of the horizon). *)

type origin_state = {
  mutable floor : int; (* seqs <= floor are forgotten: stale by definition *)
  mutable highest : int;
  seen : (int, unit) Hashtbl.t;
}

type t = {
  span : int;
  origins : (int, origin_state) Hashtbl.t;
  mutable evictions : int;
}

let create ?(span = 4096) () =
  if span < 1 then invalid_arg "Window.create: span must be >= 1";
  { span; origins = Hashtbl.create 64; evictions = 0 }

let state_for t origin =
  match Hashtbl.find_opt t.origins origin with
  | Some s -> s
  | None ->
      let s = { floor = 0; highest = 0; seen = Hashtbl.create 64 } in
      Hashtbl.replace t.origins origin s;
      s

(* [mark t ~origin ~seq] returns [true] iff this is a fresh sighting.
   Stale sequences (at or below the eviction floor) count as duplicates. *)
let mark t ~origin ~seq =
  let s = state_for t origin in
  if seq <= s.floor || Hashtbl.mem s.seen seq then false
  else begin
    Hashtbl.replace s.seen seq ();
    if seq > s.highest then s.highest <- seq;
    let target_floor = s.highest - t.span in
    (* The floor only ever advances, so total eviction work is bounded by
       the sequence range: amortised O(1) per message. *)
    while s.floor < target_floor do
      s.floor <- s.floor + 1;
      if Hashtbl.mem s.seen s.floor then begin
        Hashtbl.remove s.seen s.floor;
        t.evictions <- t.evictions + 1
      end
    done;
    true
  end

let evictions t = t.evictions

let retained t =
  Hashtbl.fold (fun _ s acc -> acc + Hashtbl.length s.seen) t.origins 0
