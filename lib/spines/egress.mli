(** Bounded per-neighbor egress queue: priority bands drained
    highest-first, round-robin across origins within a band (source
    fairness), overflow dropping lowest-priority traffic first.

    Pure data structure — the node drives flushes off the sim clock and
    applies fault injection at drain time. All ordering (serve order,
    eviction victims) is canonical so same-seed chaos runs replay
    byte-identically. *)

type 'a t

type 'a outcome =
  | Enqueued
  | Rejected  (** queue full and the arrival itself was lowest-priority *)
  | Evicted of 'a
      (** queue full; this lower-priority message was dropped to make room *)

(** Raises [Invalid_argument] if [capacity < 1]. *)
val create : capacity:int -> unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

(** Total messages dropped by the overflow policy ([Rejected] arrivals
    plus [Evicted] victims). *)
val drops : 'a t -> int

(** [enqueue t ~prio ~origin msg] admits [msg] unless the queue is at
    capacity; then the lowest-priority message in the queue goes — the
    arrival itself if nothing queued is strictly lower-priority,
    otherwise the oldest message of the most-backlogged origin in the
    lowest band (ties toward the higher origin id). *)
val enqueue : 'a t -> prio:int -> origin:int -> 'a -> 'a outcome

(** Dequeues up to [max] messages (default: everything) in send order:
    priority bands highest-first; within a band one message per origin,
    round-robin in sorted origin order, with the fairness cursor
    persisting across drains. Returns [(prio, origin, msg)] triples. *)
val drain : ?max:int -> 'a t -> (int * int * 'a) list

val clear : 'a t -> unit
