(** DNP3 (IEEE 1815) subset with binary link framing: class-based event
    polling, static reads, and CROB-style operate commands. Plaintext and
    unauthenticated like the real protocol — confined to the dedicated
    proxy-to-RTU wire in Spire. *)

val tcp_port : int

type request =
  | Read_class of { classes : int list (* 0 = static, 1..3 = event classes *) }
  | Read_analogs (* group-30 style static analog input read *)
  | Operate of { index : int; close : bool }
  | Clear_events

type event = { ev_index : int; ev_closed : bool; ev_time : float }

type response =
  | Static_data of bool list
  | Analog_data of int list (* signed 32-bit analog values by index *)
  | Events of event list
  | Operate_ack of { op_index : int; op_close : bool; success : bool }
  | Events_cleared

type 'a framed = { sequence : int; body : 'a }

(** Raw DNP3 bytes on the wire. *)
type Netbase.Packet.payload += Frame of string

exception Decode_error of string

val encode_request : request framed -> string

val encode_response : response framed -> string

(** Raise [Decode_error] on malformed frames or checksum mismatch. *)
val decode_request : string -> request framed

val decode_response : string -> response framed

val describe_request : request -> string
