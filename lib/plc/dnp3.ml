(* DNP3 (IEEE 1815) subset, binary-framed.

   The deployment's field devices speak "typical, insecure industrial
   communication protocols, such as Modbus or DNP3" (Section II). This
   module implements the DNP3 application-layer subset an RTU front-end
   needs: class-based event polling (the protocol's defining feature —
   devices buffer change events and report them on demand), static reads,
   and CROB-style operate commands for breaker control.

   Framing: a compact link-layer header (start bytes, length, a 16-bit
   additive checksum standing in for DNP3's CRC-16/DNP per block) around
   an application PDU. Like Modbus, everything is plaintext and
   unauthenticated — which is why it only ever runs on the dedicated
   proxy-to-RTU wire in Spire. *)

let tcp_port = 20000

type request =
  | Read_class of { classes : int list (* 0 = static, 1..3 = event classes *) }
  | Read_analogs (* group-30 style static analog input read *)
  | Operate of { index : int; close : bool (* CROB latch on/off *) }
  | Clear_events

type event = { ev_index : int; ev_closed : bool; ev_time : float }

type response =
  | Static_data of bool list (* binary input states by index *)
  | Analog_data of int list (* signed 32-bit analog values by index *)
  | Events of event list
  | Operate_ack of { op_index : int; op_close : bool; success : bool }
  | Events_cleared

type 'a framed = { sequence : int; body : 'a }

type Netbase.Packet.payload += Frame of string

exception Decode_error of string

(* --- binary helpers ------------------------------------------------------ *)

let u8 buf v = Buffer.add_char buf (Char.chr (v land 0xFF))

let u16 buf v =
  u8 buf (v land 0xFF);
  u8 buf ((v lsr 8) land 0xFF)

let u32 buf v =
  u16 buf (v land 0xFFFF);
  u16 buf ((v lsr 16) land 0xFFFF)

let get_u8 s off = Char.code s.[off]

let get_u16 s off = get_u8 s off lor (get_u8 s (off + 1) lsl 8)

let get_u32 s off = get_u16 s off lor (get_u16 s (off + 2) lsl 16)

let need s off n = if String.length s < off + n then raise (Decode_error "short frame")

let checksum s =
  let acc = ref 0 in
  String.iter (fun c -> acc := (!acc + Char.code c) land 0xFFFF) s;
  !acc

(* Link layer: 0x05 0x64, length, checksum, payload. *)
let frame payload =
  let buf = Buffer.create (String.length payload + 6) in
  u8 buf 0x05;
  u8 buf 0x64;
  u16 buf (String.length payload);
  u16 buf (checksum payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

let unframe s =
  need s 0 6;
  if get_u8 s 0 <> 0x05 || get_u8 s 1 <> 0x64 then raise (Decode_error "bad start bytes");
  let len = get_u16 s 2 in
  let sum = get_u16 s 4 in
  need s 6 len;
  let payload = String.sub s 6 len in
  if checksum payload <> sum then raise (Decode_error "checksum mismatch");
  payload

(* --- application layer ---------------------------------------------------- *)

(* Function codes (loosely matching DNP3's READ=1, OPERATE=4 and a private
   code for event clearing; responses use 0x81 "response"). *)

let encode_request { sequence; body } =
  let buf = Buffer.create 16 in
  u8 buf (sequence land 0xFF);
  (match body with
  | Read_class { classes } ->
      u8 buf 0x01;
      u8 buf (List.length classes);
      List.iter (fun c -> u8 buf c) classes
  | Read_analogs -> u8 buf 0x02
  | Operate { index; close } ->
      u8 buf 0x04;
      u16 buf index;
      u8 buf (if close then 0x03 (* latch on *) else 0x04 (* latch off *))
  | Clear_events -> u8 buf 0x7E);
  frame (Buffer.contents buf)

let decode_request s =
  let p = unframe s in
  need p 0 2;
  let sequence = get_u8 p 0 in
  let body =
    match get_u8 p 1 with
    | 0x01 ->
        need p 2 1;
        let n = get_u8 p 2 in
        need p 3 n;
        Read_class { classes = List.init n (fun i -> get_u8 p (3 + i)) }
    | 0x02 -> Read_analogs
    | 0x04 ->
        need p 2 3;
        let index = get_u16 p 2 in
        (match get_u8 p 4 with
        | 0x03 -> Operate { index; close = true }
        | 0x04 -> Operate { index; close = false }
        | code -> raise (Decode_error (Printf.sprintf "bad CROB code 0x%02x" code)))
    | 0x7E -> Clear_events
    | code -> raise (Decode_error (Printf.sprintf "unsupported function 0x%02x" code))
  in
  { sequence; body }

(* Event timestamps ride as milliseconds in a 32-bit field: ample for
   simulated deployments. *)
let encode_response { sequence; body } =
  let buf = Buffer.create 32 in
  u8 buf (sequence land 0xFF);
  u8 buf 0x81;
  (match body with
  | Static_data bits ->
      u8 buf 0x01;
      u16 buf (List.length bits);
      let bytes = Array.make ((List.length bits + 7) / 8) 0 in
      List.iteri (fun i b -> if b then bytes.(i / 8) <- bytes.(i / 8) lor (1 lsl (i mod 8))) bits;
      Array.iter (fun b -> u8 buf b) bytes
  | Analog_data values ->
      u8 buf 0x05;
      u16 buf (List.length values);
      List.iter (fun v -> u32 buf (v land 0xFFFFFFFF)) values
  | Events events ->
      u8 buf 0x02;
      u16 buf (List.length events);
      List.iter
        (fun e ->
          u16 buf e.ev_index;
          u8 buf (if e.ev_closed then 1 else 0);
          u32 buf (int_of_float (e.ev_time *. 1000.0)))
        events
  | Operate_ack { op_index; op_close; success } ->
      u8 buf 0x03;
      u16 buf op_index;
      u8 buf (if op_close then 1 else 0);
      u8 buf (if success then 0 else 1 (* DNP3 status: 0 = success *))
  | Events_cleared -> u8 buf 0x04);
  frame (Buffer.contents buf)

let decode_response s =
  let p = unframe s in
  need p 0 3;
  let sequence = get_u8 p 0 in
  if get_u8 p 1 <> 0x81 then raise (Decode_error "not a response");
  let body =
    match get_u8 p 2 with
    | 0x01 ->
        need p 3 2;
        let n = get_u16 p 3 in
        let nbytes = (n + 7) / 8 in
        need p 5 nbytes;
        Static_data
          (List.init n (fun i -> get_u8 p (5 + (i / 8)) land (1 lsl (i mod 8)) <> 0))
    | 0x05 ->
        need p 3 2;
        let n = get_u16 p 3 in
        need p 5 (n * 4);
        Analog_data
          (List.init n (fun i ->
               let v = get_u32 p (5 + (i * 4)) in
               (* sign-extend from 32 bits *)
               if v land 0x80000000 <> 0 then v - 0x100000000 else v))
    | 0x02 ->
        need p 3 2;
        let n = get_u16 p 3 in
        need p 5 (n * 7);
        Events
          (List.init n (fun i ->
               let off = 5 + (i * 7) in
               {
                 ev_index = get_u16 p off;
                 ev_closed = get_u8 p (off + 2) = 1;
                 ev_time = float_of_int (get_u32 p (off + 3)) /. 1000.0;
               }))
    | 0x03 ->
        need p 3 4;
        Operate_ack
          { op_index = get_u16 p 3; op_close = get_u8 p 5 = 1; success = get_u8 p 6 = 0 }
    | 0x04 -> Events_cleared
    | code -> raise (Decode_error (Printf.sprintf "unsupported response 0x%02x" code))
  in
  { sequence; body }

let describe_request = function
  | Read_class { classes } ->
      Printf.sprintf "read-class [%s]" (String.concat ";" (List.map string_of_int classes))
  | Read_analogs -> "read-analogs"
  | Operate { index; close } -> Printf.sprintf "operate %d=%b" index close
  | Clear_events -> "clear-events"
