(** Power topology scenarios: the red-team experiment's Fig. 4 topology
    (one physical PLC, seven breakers, four buildings, plus ten emulated
    distribution PLCs) and the power-plant deployment (three real
    breakers plus the distribution and generation scenarios). *)

type plc_spec = {
  plc_name : string;
  breaker_names : string list;
  physical : bool; (* real device behind a proxy wire vs emulated *)
}

type feed = { load_name : string; path : string list (* breakers that must all be closed *) }

type scenario = { scenario_name : string; plcs : plc_spec list; feeds : feed list }

(** The 2017 red-team topology: MAIN (7 breakers) + 10 distribution PLCs. *)
val red_team : scenario

(** The 2018 plant topology: PLANT (B10-1, B57, B56) + 10 distribution +
    6 generation PLCs. *)
val power_plant : scenario

(** Synthetic scale-out topology: [devices] breakers over emulated
    substation PLCs of [per_site] (default 20) breakers each, one feed
    per site. Deterministic in its parameters. *)
val synthetic : ?per_site:int -> devices:int -> unit -> scenario

val all_breakers : scenario -> string list

val total_breakers : scenario -> int

(** Which loads are energized given the closed-breaker predicate. *)
val energized : scenario -> is_closed:(string -> bool) -> (string * bool) list

val find_plc : scenario -> string -> plc_spec option
