(* Circuit breaker device model.

   A breaker distinguishes the *commanded* position (what the PLC coil
   asks for) from the *actual* position (reached after mechanical
   actuation). The Section V measurement device flips breakers physically
   — bypassing any command path — which is modelled by [force]. *)

type position = Open | Closed

type t = {
  name : string;
  engine : Sim.Engine.t;
  mutable commanded : position;
  mutable actual : position;
  actuation_delay : float;
  mutable listeners : (t -> unit) list;
  mutable actuations : int;
}

let create ?(initial = Closed) ?(actuation_delay = 0.08) ~engine name =
  {
    name;
    engine;
    commanded = initial;
    actual = initial;
    actuation_delay;
    listeners = [];
    actuations = 0;
  }

let name t = t.name

let actual t = t.actual

let commanded t = t.commanded

let actuations t = t.actuations

let is_closed t = t.actual = Closed

let on_change t f = t.listeners <- f :: t.listeners

let notify t = List.iter (fun f -> f t) t.listeners

(* Every physical position change opens a pipeline trace: the status
   update it will cause carries the same key all the way to the HMI. *)
let mark_flip t =
  Obs.Registry.mark Obs.Registry.default
    ~trace:(Obs.Span.status_key ~breaker:t.name ~closed:(t.actual = Closed))
    ~stage:Obs.Registry.stage_flip
    ~time:(Sim.Engine.now t.engine)

(* Drive the breaker toward the commanded position after the mechanical
   delay. A newer command supersedes an in-flight one: the check against
   [commanded] at fire time makes stale actuations harmless. *)
let command t position =
  t.commanded <- position;
  if t.actual <> position then
    ignore
      (Sim.Engine.schedule t.engine ~delay:t.actuation_delay (fun () ->
           if t.commanded = position && t.actual <> position then begin
             t.actual <- position;
             t.actuations <- t.actuations + 1;
             mark_flip t;
             notify t
           end))

(* Physical flip (maintenance lever, or the measurement device of
   Section V): takes effect immediately and also updates the commanded
   position, as the mechanical linkage does. *)
let force t position =
  t.commanded <- position;
  if t.actual <> position then begin
    t.actual <- position;
    t.actuations <- t.actuations + 1;
    mark_flip t;
    notify t
  end

let toggle_force t = force t (match t.actual with Open -> Closed | Closed -> Open)

let position_to_string = function Open -> "open" | Closed -> "closed"

let pp ppf t = Fmt.pf ppf "%s=%s" t.name (position_to_string t.actual)
