(* Remote Terminal Unit speaking DNP3.

   Where the PLC exposes a raw register image that must be polled, the
   RTU buffers *change events* (the DNP3 model): a breaker position
   change becomes a class-1 event the master collects on its next event
   poll, with the original change timestamp. Spire's proxies use this to
   report field changes with the device's own event time rather than the
   poll time.

   Like the PLC, the RTU is unauthenticated by design; Spire keeps it on
   a dedicated wire behind its proxy. *)

type t = {
  name : string;
  engine : Sim.Engine.t;
  trace : Sim.Trace.t;
  breakers : Breaker.t option array;
  mutable events : Dnp3.event list; (* newest first *)
  mutable events_overflowed : bool;
  event_buffer_limit : int;
  mutable analog_source : (unit -> int list) option; (* group-30 analog image *)
  counters : Sim.Stats.Counter.t;
}

let create ?(event_buffer_limit = 256) ~engine ~trace ~name ~n_points () =
  {
    name;
    engine;
    trace;
    breakers = Array.make n_points None;
    events = [];
    events_overflowed = false;
    event_buffer_limit;
    analog_source = None;
    counters = Sim.Stats.Counter.create ();
  }

let name t = t.name

let counters t = t.counters

let n_points t = Array.length t.breakers

let pending_events t = List.length t.events

let events_overflowed t = t.events_overflowed

let record_event t ~index ~closed =
  if List.length t.events >= t.event_buffer_limit then begin
    (* Oldest events are shed; the master must fall back to a static read
       (integrity poll) to resynchronise — as real DNP3 masters do. *)
    t.events_overflowed <- true;
    t.events <- { Dnp3.ev_index = index; ev_closed = closed; ev_time = Sim.Engine.now t.engine }
                :: (List.filteri (fun i _ -> i < t.event_buffer_limit - 1) t.events)
  end
  else
    t.events <-
      { Dnp3.ev_index = index; ev_closed = closed; ev_time = Sim.Engine.now t.engine }
      :: t.events

(* The measurement image is pulled on demand — the physical model owns
   the values; the RTU only samples them at poll time. *)
let set_analog_source t f = t.analog_source <- Some f

let wire_breaker t ~index breaker =
  if index < 0 || index >= Array.length t.breakers then
    invalid_arg "Rtu.wire_breaker: bad point index";
  t.breakers.(index) <- Some breaker;
  (* Every position change becomes a buffered class-1 event. *)
  Breaker.on_change breaker (fun b ->
      Sim.Stats.Counter.incr t.counters "event.recorded";
      record_event t ~index ~closed:(Breaker.is_closed b))

let static_data t =
  List.init (Array.length t.breakers) (fun i ->
      match t.breakers.(i) with Some b -> Breaker.is_closed b | None -> false)

let handle_request t (req : Dnp3.request Dnp3.framed) : Dnp3.response Dnp3.framed =
  Sim.Stats.Counter.incr t.counters "dnp3.request";
  let body =
    match req.Dnp3.body with
    | Dnp3.Read_class { classes } ->
        if List.mem 0 classes then Dnp3.Static_data (static_data t)
        else Dnp3.Events (List.rev t.events)
    | Dnp3.Read_analogs ->
        Dnp3.Analog_data (match t.analog_source with Some f -> f () | None -> [])
    | Dnp3.Operate { index; close } ->
        if index >= 0 && index < Array.length t.breakers then begin
          (match t.breakers.(index) with
          | Some b -> Breaker.command b (if close then Breaker.Closed else Breaker.Open)
          | None -> ());
          Dnp3.Operate_ack { op_index = index; op_close = close; success = t.breakers.(index) <> None }
        end
        else Dnp3.Operate_ack { op_index = index; op_close = close; success = false }
    | Dnp3.Clear_events ->
        t.events <- [];
        t.events_overflowed <- false;
        Dnp3.Events_cleared
  in
  { Dnp3.sequence = req.Dnp3.sequence; body }

(* Serve DNP3 on a host (the RTU's network face, normally a cable). *)
let serve_on t host =
  Netbase.Host.add_service host ~port:Dnp3.tcp_port
    { Netbase.Host.name = "dnp3-outstation"; remote_vuln = None };
  Netbase.Host.udp_bind host ~port:Dnp3.tcp_port (fun ~src ~dst_port:_ ~size:_ payload ->
      match payload with
      | Dnp3.Frame bytes -> (
          match Dnp3.decode_request bytes with
          | req ->
              let resp = Dnp3.encode_response (handle_request t req) in
              Netbase.Host.udp_send host ~dst_ip:src.Netbase.Addr.ip
                ~dst_port:src.Netbase.Addr.port ~src_port:Dnp3.tcp_port
                ~size:(String.length resp) (Dnp3.Frame resp)
          | exception Dnp3.Decode_error _ ->
              Sim.Stats.Counter.incr t.counters "dnp3.garbage")
      | _ -> Sim.Stats.Counter.incr t.counters "dnp3.garbage")
