(** Remote Terminal Unit speaking DNP3: buffers breaker position changes
    as class-1 events with device timestamps (the DNP3 model), serves
    static integrity reads, and executes CROB operate commands. *)

type t

val create :
  ?event_buffer_limit:int ->
  engine:Sim.Engine.t ->
  trace:Sim.Trace.t ->
  name:string ->
  n_points:int ->
  unit ->
  t

val name : t -> string

val counters : t -> Sim.Stats.Counter.t

val n_points : t -> int

val pending_events : t -> int

(** Did the event buffer shed events? (Masters must integrity-poll.) *)
val events_overflowed : t -> bool

(** Wire a breaker to a binary point; its changes become events. Raises
    [Invalid_argument] on a bad index. *)
val wire_breaker : t -> index:int -> Breaker.t -> unit

(** Install the analog measurement image served on [Read_analogs]
    (pulled at poll time; signed 32-bit values by point index). *)
val set_analog_source : t -> (unit -> int list) -> unit

(** Process one request (exposed for unit tests). *)
val handle_request : t -> Dnp3.request Dnp3.framed -> Dnp3.response Dnp3.framed

(** Bind the DNP3 outstation service on [host]. *)
val serve_on : t -> Netbase.Host.t -> unit
