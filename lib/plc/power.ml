(* Power topology scenarios from the paper.

   - The red-team experiment (Fig. 4): one physical PLC with seven
     breakers managing power to four buildings, plus ten emulated PLCs
     modelling distribution to substations and remote sites.
   - The power-plant deployment: the subset with the three left-side
     breakers of Fig. 4 (B10-1, B57, B56) on a real PLC, the same ten
     distribution PLCs, and six new generation PLCs.

   A building is energized when every breaker on its feed path is
   closed; the HMI renders this and the SCADA master keeps it as part of
   its application state. *)

type plc_spec = {
  plc_name : string;
  breaker_names : string list;
  physical : bool; (* a real device behind a proxy wire vs emulated *)
}

type feed = { load_name : string; path : string list (* breakers that must be closed *) }

type scenario = { scenario_name : string; plcs : plc_spec list; feeds : feed list }

let fig4_breakers = [ "B10-1"; "B57"; "B56"; "B21"; "B33"; "B44"; "B62" ]

let fig4_feeds =
  [
    { load_name = "Building-A"; path = [ "B10-1"; "B57" ] };
    { load_name = "Building-B"; path = [ "B10-1"; "B56" ] };
    { load_name = "Building-C"; path = [ "B21"; "B33" ] };
    { load_name = "Building-D"; path = [ "B44"; "B62" ] };
  ]

let distribution_plcs =
  List.init 10 (fun i ->
      let name = Printf.sprintf "DIST-%02d" (i + 1) in
      {
        plc_name = name;
        breaker_names = List.init 3 (fun j -> Printf.sprintf "%s/B%d" name (j + 1));
        physical = false;
      })

let distribution_feeds =
  List.concat_map
    (fun spec ->
      match spec.breaker_names with
      | first :: _ ->
          [ { load_name = spec.plc_name ^ "-substation"; path = [ first ] } ]
      | [] -> [])
    distribution_plcs

let generation_plcs =
  List.init 6 (fun i ->
      let name = Printf.sprintf "GEN-%d" (i + 1) in
      {
        plc_name = name;
        breaker_names = [ name ^ "/intake"; name ^ "/output" ];
        physical = false;
      })

let generation_feeds =
  List.map
    (fun spec -> { load_name = spec.plc_name ^ "-unit"; path = spec.breaker_names })
    generation_plcs

let red_team =
  {
    scenario_name = "red-team-2017";
    plcs =
      { plc_name = "MAIN"; breaker_names = fig4_breakers; physical = true }
      :: distribution_plcs;
    feeds = fig4_feeds @ distribution_feeds;
  }

let power_plant =
  {
    scenario_name = "power-plant-2018";
    plcs =
      { plc_name = "PLANT"; breaker_names = [ "B10-1"; "B57"; "B56" ]; physical = true }
      :: (distribution_plcs @ generation_plcs);
    feeds =
      [
        { load_name = "Building-A"; path = [ "B10-1"; "B57" ] };
        { load_name = "Building-B"; path = [ "B10-1"; "B56" ] };
      ]
      @ distribution_feeds @ generation_feeds;
  }

(* Synthetic scale-out topology: [devices] breakers spread over emulated
   substation PLCs of [per_site] breakers each (SUB-000/B00, ...). Each
   site gets one feed through its first breaker, mirroring the
   distribution-substation pattern above. Purely deterministic in
   [devices], so same-parameter runs build identical scenarios. *)
let synthetic ?(per_site = 20) ~devices () =
  let sites = (devices + per_site - 1) / per_site in
  let plcs =
    List.init sites (fun s ->
        let name = Printf.sprintf "SUB-%03d" s in
        let here = min per_site (devices - (s * per_site)) in
        {
          plc_name = name;
          breaker_names = List.init here (fun j -> Printf.sprintf "%s/B%02d" name j);
          physical = false;
        })
  in
  let feeds =
    List.concat_map
      (fun spec ->
        match spec.breaker_names with
        | first :: _ -> [ { load_name = spec.plc_name ^ "-substation"; path = [ first ] } ]
        | [] -> [])
      plcs
  in
  { scenario_name = Printf.sprintf "synthetic-%d" devices; plcs; feeds }

let all_breakers scenario = List.concat_map (fun p -> p.breaker_names) scenario.plcs

let total_breakers scenario = List.length (all_breakers scenario)

(* Which loads are energized given the closed-breaker predicate. *)
let energized scenario ~is_closed =
  List.map
    (fun feed -> (feed.load_name, List.for_all is_closed feed.path))
    scenario.feeds

let find_plc scenario name = List.find_opt (fun p -> String.equal p.plc_name name) scenario.plcs
