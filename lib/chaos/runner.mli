(** Seeded chaos scenario runner: full deployment + SCADA load + fault
    schedule + continuously-attached invariant checker. Runs replay
    byte-identically from their seed ([result_to_json] is stable). *)

type result = {
  seed : int;
  duration : float;
  n_replicas : int;
  schedule : (float * string) list;
  commands_issued : int;
  final_exec_seq : int;
  view_transitions : (float * int) list; (* (offset into chaos window, new view) *)
  view_change_latencies : float list; (* leader fault -> first view transition *)
  recovery_latencies : float list; (* clean restart -> rejoined and re-based *)
  executions_checked : int;
  actuations_checked : int;
  link_dropped : int;
  link_duplicated : int;
  link_delayed : int;
  dedup_evictions : int;
  violations : Invariant.violation list;
  alarms : Obs.Alert.alarm list; (* raised by the alert engine, oldest first *)
  first_fault_at : float option; (* absolute sim time of the first injection *)
  detection_latency : float option; (* first fault -> first alarm; None = never *)
  flight_events : int; (* flight events recorded over the run *)
  flight_jsonl : string option; (* full flight dump (observing runs only) *)
  flight_dump_path : string option; (* written on the first violation *)
}

val default_scenario : Plc.Power.scenario

(** [run ~seed ()] executes a chaos scenario. Without [schedule], a
    mixed crash+partition+lossy+leader schedule is generated from the
    seed. [liveness_bound] / [recovery_bound] parameterise the invariant
    checker; [heal_grace] is the settle time granted after the fault
    burden drops back to at most f replicas.

    [observe] (default true) turns on the flight recorder, health-probe
    sampler and alert engine for the run (process-global enablement is
    saved and restored); observation is purely passive, so [observe:
    false] leaves the schedule bit-identical. [flight_dump] overrides
    the path the flight JSONL is written to when an invariant trips
    (default: [spire-flight-seed<seed>.jsonl] in the temp directory).

    [backend] selects the engine's event-queue implementation (default
    [`Wheel]); same-seed runs are byte-identical across backends, which
    the sim bench gates on.

    [fault_class] restricts the generated schedule (no explicit
    [schedule] given) to repeated windows of one fault class — the soak
    campaigns run hundreds of seeds of [Fault.Lossy] this way. *)
val run :
  ?config:Prime.Config.t ->
  ?scenario:Plc.Power.scenario ->
  ?duration:float ->
  ?load_period:float ->
  ?liveness_bound:float ->
  ?recovery_bound:float ->
  ?heal_grace:float ->
  ?schedule:Fault.schedule ->
  ?observe:bool ->
  ?flight_dump:string ->
  ?backend:[ `Wheel | `Heap ] ->
  ?fault_class:Fault.fault_class ->
  seed:int ->
  unit ->
  result

val result_to_json : result -> Obs.Json.t
