(** Seeded chaos scenario runner: full deployment + SCADA load + fault
    schedule + continuously-attached invariant checker. Runs replay
    byte-identically from their seed ([result_to_json] is stable). *)

type result = {
  seed : int;
  duration : float;
  n_replicas : int;
  schedule : (float * string) list;
  commands_issued : int;
  final_exec_seq : int;
  view_transitions : (float * int) list; (* (offset into chaos window, new view) *)
  view_change_latencies : float list; (* leader fault -> first view transition *)
  recovery_latencies : float list; (* clean restart -> rejoined and re-based *)
  executions_checked : int;
  actuations_checked : int;
  link_dropped : int;
  link_duplicated : int;
  link_delayed : int;
  dedup_evictions : int;
  violations : Invariant.violation list;
}

val default_scenario : Plc.Power.scenario

(** [run ~seed ()] executes a chaos scenario. Without [schedule], a
    mixed crash+partition+lossy+leader schedule is generated from the
    seed. [liveness_bound] / [recovery_bound] parameterise the invariant
    checker; [heal_grace] is the settle time granted after the fault
    burden drops back to at most f replicas. *)
val run :
  ?config:Prime.Config.t ->
  ?scenario:Plc.Power.scenario ->
  ?duration:float ->
  ?load_period:float ->
  ?liveness_bound:float ->
  ?recovery_bound:float ->
  ?heal_grace:float ->
  ?schedule:Fault.schedule ->
  seed:int ->
  unit ->
  result

val result_to_json : result -> Obs.Json.t
