(* Fault-schedule DSL.

   A schedule is a time-ordered list of fault events against a running
   deployment: replica crash/restart, Spines link partition/heal, lossy
   links (probabilistic drop/duplicate/delay, which also reorders),
   leader misbehaviour (silence or equivocation), and durable-device
   faults (torn writes, bit corruption, wipe) paired with disk-intact
   restarts. Schedules are plain data: generated from a seeded RNG, they
   replay byte-identically. *)

type link = int * int

type action =
  | Crash_replica of int
  | Restart_replica of int
  | Partition of link list
  | Heal of link list
  | Lossy_link of { link : link; drop : float; duplicate : float; delay_max : float }
  | Clear_link of link
  | Leader_silent
  | Leader_equivocate
  | Leader_restore
  | Restart_replica_intact of int (* restart keeping the durable device *)
  | Disk_tear of int (* tear an unsynced tail on replica's device *)
  | Disk_corrupt of int (* flip a bit in replica's durable region *)
  | Disk_wipe of int (* destroy replica's device contents *)

type event = { at : float; action : action }

type schedule = event list

type fault_class = Crash | Net_partition | Lossy | Leader_fault | Disk

let describe_link (a, b) = Printf.sprintf "%d-%d" a b

let describe = function
  | Crash_replica i -> Printf.sprintf "crash replica %d" i
  | Restart_replica i -> Printf.sprintf "restart replica %d" i
  | Partition links ->
      Printf.sprintf "partition [%s]" (String.concat "," (List.map describe_link links))
  | Heal links ->
      Printf.sprintf "heal [%s]" (String.concat "," (List.map describe_link links))
  | Lossy_link { link; drop; duplicate; delay_max } ->
      Printf.sprintf "lossy %s drop=%.2f dup=%.2f delay<=%.3f" (describe_link link) drop
        duplicate delay_max
  | Clear_link link -> Printf.sprintf "clear %s" (describe_link link)
  | Leader_silent -> "leader silent"
  | Leader_equivocate -> "leader equivocate"
  | Leader_restore -> "leader restore"
  | Restart_replica_intact i -> Printf.sprintf "restart replica %d (disk intact)" i
  | Disk_tear i -> Printf.sprintf "tear disk of replica %d" i
  | Disk_corrupt i -> Printf.sprintf "corrupt disk of replica %d" i
  | Disk_wipe i -> Printf.sprintf "wipe disk of replica %d" i

let sort schedule = List.stable_sort (fun a b -> Float.compare a.at b.at) schedule

(* Links that cut one replica off from every other replica. *)
let isolate_links ~n victim =
  let rec build peer acc =
    if peer < 0 then acc
    else build (peer - 1) (if peer = victim then acc else (victim, peer) :: acc)
  in
  build (n - 1) []

(* A crash+partition+lossy acceptance schedule: one fault window per
   class in sequence, each healed before the next begins, with victims
   and loss parameters drawn from [rng]. Fits in [duration] seconds,
   leaving a clean tail for the system to settle. *)
let mixed ~rng ~n ~duration () =
  let window = duration /. 5.0 in
  let lossy_victim = (Sim.Rng.int rng (n - 1), n - 1) in
  let crash_victim = 1 + Sim.Rng.int rng (n - 1) in
  let partition_victim = Sim.Rng.int rng n in
  sort
    [
      {
        at = 0.2 *. window;
        action =
          Lossy_link
            {
              link = lossy_victim;
              drop = 0.05 +. Sim.Rng.float rng 0.15;
              duplicate = Sim.Rng.float rng 0.2;
              delay_max = 0.01 +. Sim.Rng.float rng 0.04;
            };
      };
      { at = 1.0 *. window; action = Clear_link lossy_victim };
      { at = 1.2 *. window; action = Crash_replica crash_victim };
      { at = 2.0 *. window; action = Restart_replica crash_victim };
      { at = 2.7 *. window; action = Partition (isolate_links ~n partition_victim) };
      { at = 3.4 *. window; action = Heal (isolate_links ~n partition_victim) };
      { at = 3.8 *. window; action = Leader_silent };
      { at = 4.4 *. window; action = Leader_restore };
    ]

(* A single-class schedule: repeated fault windows of one class, for the
   per-class latency experiments. *)
let of_class ~rng ~n ~duration fault_class =
  let window = duration /. 3.0 in
  let events_for base =
    match fault_class with
    | Crash ->
        let victim = 1 + Sim.Rng.int rng (n - 1) in
        [
          { at = base +. (0.1 *. window); action = Crash_replica victim };
          { at = base +. (0.6 *. window); action = Restart_replica victim };
        ]
    | Net_partition ->
        let victim = Sim.Rng.int rng n in
        [
          { at = base +. (0.1 *. window); action = Partition (isolate_links ~n victim) };
          { at = base +. (0.6 *. window); action = Heal (isolate_links ~n victim) };
        ]
    | Lossy ->
        let link = (Sim.Rng.int rng (n - 1), n - 1) in
        [
          {
            at = base +. (0.1 *. window);
            action =
              Lossy_link
                {
                  link;
                  drop = 0.05 +. Sim.Rng.float rng 0.2;
                  duplicate = Sim.Rng.float rng 0.15;
                  delay_max = 0.01 +. Sim.Rng.float rng 0.03;
                };
          };
          { at = base +. (0.6 *. window); action = Clear_link link };
        ]
    | Leader_fault ->
        let silent = Sim.Rng.bool rng in
        [
          {
            at = base +. (0.1 *. window);
            action = (if silent then Leader_silent else Leader_equivocate);
          };
          { at = base +. (0.6 *. window); action = Leader_restore };
        ]
    | Disk ->
        (* Crash the replica, damage its device while it is down, bring
           it back disk-intact: recovery must survive the damage (torn
           tail or flipped bit truncates the WAL; a wiped device falls
           back to peer state transfer). *)
        let victim = 1 + Sim.Rng.int rng (n - 1) in
        let damage =
          Sim.Rng.pick rng [| Disk_tear victim; Disk_corrupt victim; Disk_wipe victim |]
        in
        [
          { at = base +. (0.1 *. window); action = Crash_replica victim };
          { at = base +. (0.2 *. window); action = damage };
          { at = base +. (0.6 *. window); action = Restart_replica_intact victim };
        ]
  in
  sort (List.concat_map (fun i -> events_for (float_of_int i *. window)) [ 0; 1 ])
