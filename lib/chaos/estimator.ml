(* Weighted-least-squares state estimation with chi-square bad-data
   detection, the classical EMS defence the FDIA literature attacks.

   The estimator sees exactly what a correct SCADA master sees: the
   reported breaker topology plus the replicated telemetry image
   (line flows, bus injections, tie in-service statuses). From the
   breaker/tie picture it derives the network it BELIEVES is live,
   solves WLS for the bus angles, and sums the squared normalized
   residuals into the objective J(x). Honest telemetry is a consistent
   snapshot of one physical solution, so J stays near its chi-square
   expectation; a compromised proxy replaying stale measurements keeps
   every per-point value individually plausible but cannot keep the
   ensemble consistent with the honest neighbours — J blows through the
   detection threshold even though every breaker-state invariant is
   silent. *)

type report = {
  est_measurements : int; (* real telemetry rows (flows + injections) *)
  est_pseudo : int; (* zero-injection + reference pseudo rows *)
  est_unknowns : int; (* free bus angles after per-island reference *)
  est_dof : int;
  est_j : float; (* sum of squared normalized residuals *)
  est_threshold : float; (* chi-square critical value at [confidence] *)
  est_flagged : bool;
  est_worst_point : string; (* largest normalized residual *)
  est_worst_residual : float; (* in sigmas *)
}

(* Measurement weights: analog telemetry is trusted to ~0.05 MW (the
   dead band is 0.02 MW); structural pseudo-measurements (reference
   angles, zero injections at pure junction buses) are near-exact. *)
let sigma_analog = 0.05
let sigma_pseudo = 0.01

(* Tikhonov ridge keeping the normal equations invertible when a
   measurement pattern leaves a direction unobserved. *)
let ridge = 1e-9

(* False-positive control: per-sweep confidence of the chi-square test.
   Wilson-Hilferty gives the critical value without tables. *)
let z_confidence = 3.090232 (* z at p = 0.999 *)

let chi2_threshold ~dof =
  if dof <= 0 then infinity
  else
    let k = float_of_int dof in
    let t = 1.0 -. (2.0 /. (9.0 *. k)) +. (z_confidence *. sqrt (2.0 /. (9.0 *. k))) in
    k *. t *. t

(* Dense symmetric solve via Gaussian elimination with partial pivoting;
   n is the active bus count, tens not thousands. *)
let solve_dense a b n =
  let x = Array.copy b in
  for col = 0 to n - 1 do
    let pivot = ref col in
    for r = col + 1 to n - 1 do
      if abs_float a.(r).(col) > abs_float a.(!pivot).(col) then pivot := r
    done;
    if !pivot <> col then begin
      let tmp = a.(col) in
      a.(col) <- a.(!pivot);
      a.(!pivot) <- tmp;
      let t = x.(col) in
      x.(col) <- x.(!pivot);
      x.(!pivot) <- t
    end;
    let p = a.(col).(col) in
    if abs_float p > 1e-12 then
      for r = col + 1 to n - 1 do
        let factor = a.(r).(col) /. p in
        if factor <> 0.0 then begin
          for c = col to n - 1 do
            a.(r).(c) <- a.(r).(c) -. (factor *. a.(col).(c))
          done;
          x.(r) <- x.(r) -. (factor *. x.(col))
        end
      done
  done;
  for col = n - 1 downto 0 do
    let s = ref x.(col) in
    for c = col + 1 to n - 1 do
      s := !s -. (a.(col).(c) *. x.(c))
    done;
    x.(col) <- (if abs_float a.(col).(col) > 1e-12 then !s /. a.(col).(col) else 0.0)
  done;
  x

type row = {
  coeffs : (int * float) list; (* (variable index, coefficient) *)
  z : float;
  sigma : float;
  label : string;
}

let evaluate (model : Power.Model.t) (state : Scada.State.t) =
  let n_buses = Array.length model.Power.Model.buses in
  let telem name = Scada.State.telemetry_value state name in
  (* The topology the estimator believes: feeders follow the reported
     breaker path, ties follow their reported in-service status (an
     unreported tie is presumed live). *)
  let believed_live li =
    let line = model.Power.Model.lines.(li) in
    match line.Power.Model.gate with
    | Some breaker -> Scada.State.reported_closed state breaker
    | None -> (
        match telem ("st." ^ line.Power.Model.line_name) with
        | Some 0 -> false
        | Some _ | None -> true)
  in
  let live = Array.init (Array.length model.Power.Model.lines) believed_live in
  (* Active buses and islands over the believed-live lines. *)
  let adjacency = Array.make n_buses [] in
  Array.iteri
    (fun li (line : Power.Model.line) ->
      if live.(li) then begin
        adjacency.(line.Power.Model.from_bus) <-
          (li, line.Power.Model.to_bus) :: adjacency.(line.Power.Model.from_bus);
        adjacency.(line.Power.Model.to_bus) <-
          (li, line.Power.Model.from_bus) :: adjacency.(line.Power.Model.to_bus)
      end)
    model.Power.Model.lines;
  let island = Array.make n_buses (-1) in
  let n_islands = ref 0 in
  for b = 0 to n_buses - 1 do
    if island.(b) < 0 && adjacency.(b) <> [] then begin
      let id = !n_islands in
      incr n_islands;
      let queue = Queue.create () in
      Queue.push b queue;
      island.(b) <- id;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        List.iter
          (fun (_, v) ->
            if island.(v) < 0 then begin
              island.(v) <- id;
              Queue.push v queue
            end)
          adjacency.(u)
      done
    end
  done;
  (* Variable numbering: every active bus except the per-island
     reference (lowest index) gets a free angle; references are fixed
     at zero by eliminating their column. *)
  let reference = Array.make !n_islands max_int in
  for b = 0 to n_buses - 1 do
    if island.(b) >= 0 && b < reference.(island.(b)) then reference.(island.(b)) <- b
  done;
  let var_of_bus = Array.make n_buses (-1) in
  let n_vars = ref 0 in
  for b = 0 to n_buses - 1 do
    if island.(b) >= 0 && reference.(island.(b)) <> b then begin
      var_of_bus.(b) <- !n_vars;
      incr n_vars
    end
  done;
  let n_vars = !n_vars in
  let bus_coeff b w = if var_of_bus.(b) >= 0 then [ (var_of_bus.(b), w) ] else [] in
  let rows = ref [] in
  let n_real = ref 0 in
  let n_pseudo = ref 0 in
  (* Flow measurements. A line believed open gets an all-zero row: its
     expected flow is exactly zero, so stale nonzero telemetry on it is
     pure residual. *)
  Array.iteri
    (fun li (line : Power.Model.line) ->
      match telem ("mw." ^ line.Power.Model.line_name) with
      | None -> ()
      | Some v ->
          let z = float_of_int v /. 100.0 in
          let coeffs =
            if live.(li) then
              let w = 1.0 /. line.Power.Model.reactance in
              bus_coeff line.Power.Model.from_bus w @ bus_coeff line.Power.Model.to_bus (-.w)
            else []
          in
          incr n_real;
          rows :=
            { coeffs; z; sigma = sigma_analog; label = "mw." ^ line.Power.Model.line_name }
            :: !rows)
    model.Power.Model.lines;
  (* Injection measurements, aggregated per bus (every load at the bus
     must have reported). Model injection at bus b is the sum of flows
     leaving b over believed-live lines. *)
  let injection_coeffs b =
    List.fold_left
      (fun acc (li, other) ->
        let w = 1.0 /. model.Power.Model.lines.(li).Power.Model.reactance in
        bus_coeff b w @ bus_coeff other (-.w) @ acc)
      [] adjacency.(b)
  in
  let loads_at = Array.make n_buses [] in
  Array.iter
    (fun (l : Power.Model.load) ->
      loads_at.(l.Power.Model.load_bus) <- l :: loads_at.(l.Power.Model.load_bus))
    model.Power.Model.loads;
  for b = 1 to n_buses - 1 do
    match loads_at.(b) with
    | [] -> ()
    | loads ->
        let readings = List.map (fun (l : Power.Model.load) -> telem ("inj." ^ l.Power.Model.load_name)) loads in
        if List.for_all Option.is_some readings then begin
          let z =
            List.fold_left (fun acc r -> acc +. (float_of_int (Option.get r) /. 100.0)) 0.0 readings
          in
          incr n_real;
          rows :=
            {
              coeffs = injection_coeffs b;
              z;
              sigma = sigma_analog;
              label = "inj@" ^ model.Power.Model.buses.(b).Power.Model.bus_name;
            }
            :: !rows
        end
  done;
  (* Zero-injection pseudo-measurements: active junction buses carrying
     neither load nor generation inject exactly nothing. *)
  let gen_buses = Hashtbl.create 8 in
  Array.iter
    (fun (g : Power.Model.unit_gen) -> Hashtbl.replace gen_buses g.Power.Model.gen_bus ())
    model.Power.Model.gens;
  for b = 1 to n_buses - 1 do
    if island.(b) >= 0 && loads_at.(b) = [] && not (Hashtbl.mem gen_buses b) then begin
      incr n_pseudo;
      rows :=
        {
          coeffs = injection_coeffs b;
          z = 0.0;
          sigma = sigma_pseudo;
          label = "zero-inj@" ^ model.Power.Model.buses.(b).Power.Model.bus_name;
        }
        :: !rows
    end
  done;
  let rows = Array.of_list (List.rev !rows) in
  let m = Array.length rows in
  if !n_real = 0 || m < n_vars then None
  else begin
    (* Normal equations: (H' W H + ridge I) x = H' W z. *)
    let a = Array.make_matrix n_vars n_vars 0.0 in
    let b = Array.make n_vars 0.0 in
    for i = 0 to n_vars - 1 do
      a.(i).(i) <- ridge
    done;
    Array.iter
      (fun row ->
        let w = 1.0 /. (row.sigma *. row.sigma) in
        List.iter
          (fun (i, ci) ->
            b.(i) <- b.(i) +. (w *. ci *. row.z);
            List.iter (fun (j, cj) -> a.(i).(j) <- a.(i).(j) +. (w *. ci *. cj)) row.coeffs)
          row.coeffs)
      rows;
    let x = solve_dense a b n_vars in
    let j = ref 0.0 in
    let worst = ref ("", 0.0) in
    Array.iter
      (fun row ->
        let predicted = List.fold_left (fun acc (i, c) -> acc +. (c *. x.(i))) 0.0 row.coeffs in
        let r = (row.z -. predicted) /. row.sigma in
        j := !j +. (r *. r);
        if abs_float r > snd !worst then worst := (row.label, abs_float r))
      rows;
    let dof = m - n_vars in
    let threshold = chi2_threshold ~dof in
    Some
      {
        est_measurements = !n_real;
        est_pseudo = !n_pseudo;
        est_unknowns = n_vars;
        est_dof = dof;
        est_j = !j;
        est_threshold = threshold;
        est_flagged = !j > threshold;
        est_worst_point = fst !worst;
        est_worst_residual = snd !worst;
      }
  end
