(** Weighted-least-squares state estimation over the replicated
    telemetry image, with chi-square bad-data detection.

    The estimator trusts exactly what a correct master holds — reported
    breaker positions, tie in-service statuses, line-flow and injection
    telemetry — derives the believed network, solves for bus angles and
    tests the residual objective J(x) against a chi-square critical
    value. Stale-consistent FDIA telemetry keeps every individual point
    plausible but cannot stay consistent with honest neighbours, so J
    fires while breaker-state invariants remain silent. *)

type report = {
  est_measurements : int;  (** real telemetry rows (flows + injections) *)
  est_pseudo : int;  (** zero-injection pseudo rows *)
  est_unknowns : int;  (** free bus angles after per-island references *)
  est_dof : int;
  est_j : float;  (** sum of squared normalized residuals *)
  est_threshold : float;  (** chi-square critical value (p = 0.999) *)
  est_flagged : bool;
  est_worst_point : string;  (** measurement with the largest residual *)
  est_worst_residual : float;  (** in sigmas *)
}

(** Chi-square critical value at p = 0.999 (Wilson-Hilferty); [infinity]
    for dof <= 0, so an unobservable system never flags. *)
val chi2_threshold : dof:int -> float

(** One estimation sweep. [None] until the telemetry image holds enough
    measurements to determine the believed network's angles. *)
val evaluate : Power.Model.t -> Scada.State.t -> report option
