(* Seeded chaos scenario runner.

   Builds a full Spire deployment, drives SCADA load through an HMI via
   [Spire.Scenario_driver], applies a fault schedule through [Injector],
   and keeps [Invariant] attached the whole time. Everything — network
   jitter, fault parameters, loss decisions — derives from one integer
   seed, so a run (and any violation it finds) replays byte-identically:
   [result_to_json] of two runs with the same seed is the same string. *)

type result = {
  seed : int;
  duration : float;
  n_replicas : int;
  schedule : (float * string) list; (* offsets within the chaos window *)
  commands_issued : int;
  final_exec_seq : int;
  view_transitions : (float * int) list;
  view_change_latencies : float list;
  recovery_latencies : float list;
  executions_checked : int;
  actuations_checked : int;
  link_dropped : int;
  link_duplicated : int;
  link_delayed : int;
  dedup_evictions : int;
  violations : Invariant.violation list;
  (* Observability: alarms raised by the alert engine, detection latency
     from the first injected fault to the first alarm at or after it, and
     the flight-recorder narrative of the run. *)
  alarms : Obs.Alert.alarm list;
  first_fault_at : float option; (* absolute sim time of the first injection *)
  detection_latency : float option; (* seconds; None = never alarmed *)
  flight_events : int;
  flight_jsonl : string option; (* full JSONL dump (observing runs only) *)
  flight_dump_path : string option; (* written on the first violation *)
}

let default_scenario =
  {
    Plc.Power.scenario_name = "chaos-mini";
    plcs =
      [
        {
          Plc.Power.plc_name = "MAIN";
          breaker_names = [ "B10-1"; "B57"; "B56" ];
          physical = true;
        };
      ];
    feeds = [ { Plc.Power.load_name = "Building-A"; path = [ "B10-1"; "B57" ] } ];
  }

let warmup = 5.0

let max_exec deployment =
  Array.fold_left
    (fun acc r -> max acc (Prime.Replica.exec_seq r.Spire.Deployment.r_replica))
    0
    (Spire.Deployment.replicas deployment)

let sum_node_counter deployment key =
  Array.fold_left
    (fun acc r ->
      acc
      + Sim.Stats.Counter.get (Spines.Node.counters r.Spire.Deployment.r_internal_node) key
      + Sim.Stats.Counter.get (Spines.Node.counters r.Spire.Deployment.r_external_node) key)
    0
    (Spire.Deployment.replicas deployment)

let sum_dedup_evictions deployment =
  Array.fold_left
    (fun acc r ->
      acc
      + Spines.Node.dedup_evictions r.Spire.Deployment.r_internal_node
      + Spines.Node.dedup_evictions r.Spire.Deployment.r_external_node)
    0
    (Spire.Deployment.replicas deployment)

let run ?config ?(scenario = default_scenario) ?(duration = 120.0) ?(load_period = 1.0)
    ?(liveness_bound = 20.0) ?(recovery_bound = 30.0) ?(heal_grace = 10.0) ?schedule
    ?(observe = true) ?flight_dump ?(backend = `Wheel) ?fault_class ~seed () =
  let config = match config with Some c -> c | None -> Prime.Config.power_plant () in
  (* Observation is opt-in per run and restored afterwards: the default
     recorder and probe registry are process globals shared with whatever
     else the process does. Enabling happens BEFORE the deployment is
     built so subsystem constructors register their probes; everything
     recorded is a deterministic function of the simulation, and a
     disabled run draws no RNG and schedules nothing extra, so observe:
     false leaves the schedule bit-identical to a build without obs. *)
  let prev_flight = Obs.Flight.enabled Obs.Flight.default in
  let prev_probe = Obs.Probe.enabled Obs.Probe.default in
  Fun.protect
    ~finally:(fun () ->
      Obs.Flight.set_enabled Obs.Flight.default prev_flight;
      Obs.Probe.set_enabled Obs.Probe.default prev_probe)
  @@ fun () ->
  if observe then begin
    Obs.Flight.reset Obs.Flight.default;
    Obs.Flight.set_enabled Obs.Flight.default true;
    Obs.Probe.reset Obs.Probe.default;
    Obs.Probe.set_enabled Obs.Probe.default true
  end;
  let engine = Sim.Engine.create ~seed:(Int64.of_int seed) ~backend () in
  if observe then
    Obs.Flight.set_clock Obs.Flight.default (fun () -> Sim.Engine.now engine);
  let alert =
    if observe then Some (Obs.Alert.create ~flight:Obs.Flight.default ()) else None
  in
  let trace = Sim.Trace.create () in
  let deployment = Spire.Deployment.create ~engine ~trace ~config scenario in
  Sim.Engine.run ~until:warmup engine;
  let chaos_rng = Sim.Rng.create (Int64.of_int (seed * 2 + 1)) in
  let schedule =
    match (schedule, fault_class) with
    | Some s, _ -> Fault.sort s
    | None, Some cls ->
        Fault.of_class ~rng:(Sim.Rng.split chaos_rng) ~n:config.Prime.Config.n ~duration cls
    | None, None ->
        Fault.mixed ~rng:(Sim.Rng.split chaos_rng) ~n:config.Prime.Config.n ~duration ()
  in
  let injector = Injector.create ~rng:(Sim.Rng.split chaos_rng) deployment in
  (* Health policy: liveness is only enforced while at most f replicas
     are faulty (crashed, isolated by partition, or a misbehaving
     leader), no heavy lossy link is active, and a grace period has
     passed since the system last healed from a degraded state. *)
  let degraded () =
    Injector.crashed_count injector
    + Injector.isolated_count injector
    + (if Injector.leader_fault_active injector then 1 else 0)
    > config.Prime.Config.f
    || Injector.max_active_drop injector >= 0.5
  in
  let was_degraded = ref false in
  let calm_since = ref (-.heal_grace) in
  let update_health () =
    let d = degraded () in
    if !was_degraded && not d then calm_since := Sim.Engine.now engine;
    was_degraded := d
  in
  let is_healthy () =
    (not !was_degraded) && Sim.Engine.now engine -. !calm_since >= heal_grace
  in
  let invariant =
    Invariant.create ~liveness_bound ~recovery_bound ~engine ~is_healthy ()
  in
  Invariant.attach invariant deployment;
  (* First violation → dump the flight narrative immediately, so the
     JSONL holds exactly the events leading up to the verdict. *)
  let dump_path = ref None in
  if observe then
    Invariant.set_on_violation invariant (fun _v ->
        if !dump_path = None then begin
          let path =
            match flight_dump with
            | Some p -> p
            | None ->
                Filename.concat
                  (Filename.get_temp_dir_name ())
                  (Printf.sprintf "spire-flight-seed%d.jsonl" seed)
          in
          Obs.Flight.dump_file Obs.Flight.default ~path;
          dump_path := Some path
        end);
  (* Apply the schedule; leader-disabling events arm a view-change
     latency measurement consumed by the view poller below. *)
  let pending_leader_fault = ref None in
  let view_transitions = ref [] in
  let view_change_latencies = ref [] in
  List.iter
    (fun { Fault.at; action } ->
      ignore
        (Sim.Engine.schedule_at engine ~time:(warmup +. at) (fun () ->
             let now = Sim.Engine.now engine in
             Sim.Trace.record trace ~time:now ~category:"chaos" "inject: %s"
               (Fault.describe action);
             (match action with
             | Fault.Leader_silent | Fault.Leader_equivocate -> pending_leader_fault := Some now
             | Fault.Crash_replica i when i = Spire.Deployment.current_leader deployment ->
                 pending_leader_fault := Some now
             | _ -> ());
             Injector.apply injector action;
             (match action with
             | Fault.Restart_replica i | Fault.Restart_replica_intact i ->
                 Invariant.expect_recovery invariant ~replica:i
             | _ -> ());
             update_health ())))
    schedule;
  let last_view = ref (Spire.Deployment.max_view deployment) in
  let view_poll =
    Sim.Engine.every engine ~period:0.05 (fun () ->
        let v = Spire.Deployment.max_view deployment in
        if v > !last_view then begin
          last_view := v;
          let now = Sim.Engine.now engine in
          view_transitions := (now -. warmup, v) :: !view_transitions;
          match !pending_leader_fault with
          | Some t0 ->
              view_change_latencies := (now -. t0) :: !view_change_latencies;
              pending_leader_fault := None
          | None -> ()
        end)
  in
  (* Health sampler: polls the probe registry and runs the alert rules.
     Purely passive — [Sim.Engine.every] without jitter draws no RNG and
     the heap breaks same-time ties by insertion order, so protocol
     events are never reordered by observation. *)
  let sampler =
    match alert with
    | Some a ->
        Some
          (Sim.Engine.every engine ~period:0.05 (fun () ->
               Obs.Alert.evaluate a ~time:(Sim.Engine.now engine)
                 (Obs.Probe.sample Obs.Probe.default)))
    | None -> None
  in
  let driver = Spire.Scenario_driver.create deployment in
  Spire.Scenario_driver.start driver ~period:load_period;
  Sim.Engine.run ~until:(warmup +. duration) engine;
  Spire.Scenario_driver.stop driver;
  Sim.Engine.cancel_timer engine view_poll;
  (match sampler with Some s -> Sim.Engine.cancel_timer engine s | None -> ());
  Invariant.stop invariant;
  let first_fault_at =
    match schedule with [] -> None | { Fault.at; _ } :: _ -> Some (warmup +. at)
  in
  let alarms = match alert with Some a -> Obs.Alert.alarms a | None -> [] in
  let detection_latency =
    match (alert, first_fault_at) with
    | Some a, Some t0 ->
        Option.map
          (fun al -> al.Obs.Alert.al_time -. t0)
          (Obs.Alert.first_alarm_after a t0)
    | _ -> None
  in
  let flight_events = if observe then Obs.Flight.total Obs.Flight.default else 0 in
  let flight_jsonl = if observe then Some (Obs.Flight.to_jsonl Obs.Flight.default) else None in
  (* Leave the process globals clean for whoever runs next. *)
  if observe then begin
    Obs.Flight.reset Obs.Flight.default;
    Obs.Probe.reset Obs.Probe.default
  end;
  {
    seed;
    duration;
    n_replicas = config.Prime.Config.n;
    schedule = List.map (fun { Fault.at; action } -> (at, Fault.describe action)) schedule;
    commands_issued = Spire.Scenario_driver.commands_issued driver;
    final_exec_seq = max_exec deployment;
    view_transitions = List.rev !view_transitions;
    view_change_latencies = List.rev !view_change_latencies;
    recovery_latencies = Invariant.recovery_latencies invariant;
    executions_checked = Invariant.executions_checked invariant;
    actuations_checked = Invariant.actuations_checked invariant;
    link_dropped = sum_node_counter deployment "chaos.dropped";
    link_duplicated = sum_node_counter deployment "chaos.duplicated";
    link_delayed = sum_node_counter deployment "chaos.delayed";
    dedup_evictions = sum_dedup_evictions deployment;
    violations = Invariant.violations invariant;
    alarms;
    first_fault_at;
    detection_latency;
    flight_events;
    flight_jsonl;
    flight_dump_path = !dump_path;
  }

let summary_of latencies =
  let s = Sim.Stats.Summary.create () in
  List.iter (Sim.Stats.Summary.add s) latencies;
  s

let result_to_json r =
  let num n = Obs.Json.Num n in
  let latencies l = Obs.Json.List (List.map num l) in
  Obs.Json.Obj
    [
      ("seed", num (float_of_int r.seed));
      ("duration", num r.duration);
      ("n_replicas", num (float_of_int r.n_replicas));
      ( "schedule",
        Obs.Json.List
          (List.map
             (fun (at, desc) -> Obs.Json.Obj [ ("at", num at); ("action", Obs.Json.Str desc) ])
             r.schedule) );
      ("commands_issued", num (float_of_int r.commands_issued));
      ("final_exec_seq", num (float_of_int r.final_exec_seq));
      ( "view_transitions",
        Obs.Json.List
          (List.map
             (fun (at, v) -> Obs.Json.Obj [ ("at", num at); ("view", num (float_of_int v)) ])
             r.view_transitions) );
      ("view_change_latency", Obs.Export.summary_to_json (summary_of r.view_change_latencies));
      ("view_change_latencies", latencies r.view_change_latencies);
      ("recovery_latency", Obs.Export.summary_to_json (summary_of r.recovery_latencies));
      ("recovery_latencies", latencies r.recovery_latencies);
      ("executions_checked", num (float_of_int r.executions_checked));
      ("actuations_checked", num (float_of_int r.actuations_checked));
      ("link_dropped", num (float_of_int r.link_dropped));
      ("link_duplicated", num (float_of_int r.link_duplicated));
      ("link_delayed", num (float_of_int r.link_delayed));
      ("dedup_evictions", num (float_of_int r.dedup_evictions));
      ( "violations",
        Obs.Json.List
          (List.map
             (fun v ->
               Obs.Json.Obj
                 [
                   ("time", num v.Invariant.v_time);
                   ("invariant", Obs.Json.Str v.Invariant.v_invariant);
                   ("detail", Obs.Json.Str v.Invariant.v_detail);
                 ])
             r.violations) );
      ("alarms", Obs.Json.List (List.map Obs.Alert.alarm_to_json r.alarms));
      ( "first_fault_at",
        match r.first_fault_at with Some t -> num t | None -> Obs.Json.Null );
      ( "detection_latency_ms",
        match r.detection_latency with
        | Some d -> num (d *. 1000.0)
        | None -> Obs.Json.Str "never" );
      ("flight_events", num (float_of_int r.flight_events));
      ( "flight_dump",
        match r.flight_dump_path with Some p -> Obs.Json.Str p | None -> Obs.Json.Null );
    ]
