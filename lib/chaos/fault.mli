(** Fault-schedule DSL: time-ordered fault events against a running
    deployment. Schedules are plain data generated from a seeded RNG, so
    every run replays byte-identically from its seed. *)

type link = int * int

type action =
  | Crash_replica of int
  | Restart_replica of int
  | Partition of link list
  | Heal of link list
  | Lossy_link of { link : link; drop : float; duplicate : float; delay_max : float }
  | Clear_link of link
  | Leader_silent
  | Leader_equivocate
  | Leader_restore
  | Restart_replica_intact of int  (** restart keeping the durable device *)
  | Disk_tear of int  (** tear an unsynced tail on the replica's device *)
  | Disk_corrupt of int  (** flip a bit in the replica's durable region *)
  | Disk_wipe of int  (** destroy the replica's device contents *)

type event = { at : float; action : action }

type schedule = event list

type fault_class = Crash | Net_partition | Lossy | Leader_fault | Disk

val describe : action -> string

(** Stable sort by event time. *)
val sort : schedule -> schedule

(** All links from [victim] to every other replica in [0..n-1]. *)
val isolate_links : n:int -> int -> link list

(** Crash + partition + lossy-link + leader-fault windows in sequence,
    parameters drawn from [rng]. *)
val mixed : rng:Sim.Rng.t -> n:int -> duration:float -> unit -> schedule

(** Repeated fault windows of a single class. *)
val of_class : rng:Sim.Rng.t -> n:int -> duration:float -> fault_class -> schedule
