(** Continuously-running safety/liveness invariant checker for chaos
    scenarios: agreement safety, at-most-once breaker actuation,
    bounded-delay liveness while healthy, and recovery liveness. *)

type violation = { v_time : float; v_invariant : string; v_detail : string }

type t

(** [is_healthy] is the runner's fault-burden policy: liveness is only
    enforced while it returns [true]. *)
val create :
  ?liveness_bound:float ->
  ?recovery_bound:float ->
  engine:Sim.Engine.t ->
  is_healthy:(unit -> bool) ->
  unit ->
  t

(** Install execution/actuation hooks on every replica and proxy of the
    deployment and start the periodic progress/recovery poll. *)
val attach : t -> Spire.Deployment.t -> unit

(** Observer called synchronously on every recorded violation (the chaos
    runner dumps the flight recorder on the first one). *)
val set_on_violation : t -> (violation -> unit) -> unit

val stop : t -> unit

(** Direct observation entry points (used by the hooks; exposed so tests
    can feed synthetic observations). *)
val note_execution : t -> replica:int -> exec_seq:int -> identity:string -> unit

val note_actuation : t -> proxy:string -> key:string -> unit

(** Announce that a replica was restarted from a clean image; it must
    rejoin (running, origin re-based) within the recovery bound. *)
val expect_recovery : t -> replica:int -> unit

(** Chronological. *)
val violations : t -> violation list

(** Restart-to-rejoin latencies, completion order. *)
val recovery_latencies : t -> float list

val executions_checked : t -> int

val actuations_checked : t -> int
