(** Continuously-running safety/liveness invariant checker for chaos
    scenarios: agreement safety, at-most-once breaker actuation,
    bounded-delay liveness while healthy, and recovery liveness. *)

type violation = { v_time : float; v_invariant : string; v_detail : string }

type t

(** [is_healthy] is the runner's fault-burden policy: liveness is only
    enforced while it returns [true]. *)
val create :
  ?liveness_bound:float ->
  ?recovery_bound:float ->
  engine:Sim.Engine.t ->
  is_healthy:(unit -> bool) ->
  unit ->
  t

(** Install execution/actuation hooks on every replica and proxy of the
    deployment and start the periodic progress/recovery poll. *)
val attach : t -> Spire.Deployment.t -> unit

(** Start the power-physics sweep against the deployment's electrical
    overlay every [period] (default 0.1 s): no flow through dead lines,
    generation/served balance, frequency bounds, cascade containment —
    plus (unless [bad_data:false]) the chi-square bad-data sweep over
    the replicated telemetry image, which records a ["bad-data"]
    violation and an [fdia.flagged] flight alarm once the flag persists
    across consecutive sweeps. Usable with or without {!attach}. *)
val attach_power : ?period:float -> ?bad_data:bool -> t -> Spire.Deployment.t -> unit

(** Time the chi-square verdict landed, if it has. *)
val fdia_detected_at : t -> float option

val estimator_sweeps : t -> int

(** Most recent estimator report. *)
val estimator_last : t -> Estimator.report option

(** Observer called synchronously on every recorded violation (the chaos
    runner dumps the flight recorder on the first one). *)
val set_on_violation : t -> (violation -> unit) -> unit

val stop : t -> unit

(** Direct observation entry points (used by the hooks; exposed so tests
    can feed synthetic observations). *)
val note_execution : t -> replica:int -> exec_seq:int -> identity:string -> unit

val note_actuation : t -> proxy:string -> key:string -> unit

(** Announce that a replica was restarted from a clean image; it must
    rejoin (running, origin re-based) within the recovery bound. *)
val expect_recovery : t -> replica:int -> unit

(** Chronological. *)
val violations : t -> violation list

(** Restart-to-rejoin latencies, completion order. *)
val recovery_latencies : t -> float list

val executions_checked : t -> int

val actuations_checked : t -> int
