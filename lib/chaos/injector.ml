(* Applies fault actions to a running deployment.

   Link faults are realised through [Spines.Node.set_fault_injector]
   closures installed on every replica's internal and external daemons:
   each outgoing link transmission consults this module's shared fault
   state (partitioned links, lossy-link parameters) and draws from the
   chaos RNG, so the whole fault pattern replays from the chaos seed.
   With frame coalescing enabled the daemon consults the injector at the
   egress-queue boundary — one verdict per link frame — so a lossy link
   drops or delays the coalesced payloads together, the way a real lossy
   wire loses a datagram; with coalescing off the verdict stays
   per-message. Replica faults use the deployment's proactive-recovery
   entry points; leader faults re-use Prime's misbehaviour knobs on the
   current leader. *)

type lossy = { lp_drop : float; lp_duplicate : float; lp_delay_max : float }

type t = {
  deployment : Spire.Deployment.t;
  rng : Sim.Rng.t;
  n : int;
  partitioned : (Fault.link, unit) Hashtbl.t; (* normalised (lo, hi) *)
  lossy : (Fault.link, lossy) Hashtbl.t;
  crashed : bool array;
  mutable leader_fault : int option; (* replica currently faulted as leader *)
  mutable applied : int;
}

let norm ((a, b) : Fault.link) : Fault.link = if a <= b then (a, b) else (b, a)

let no_fault =
  { Spines.Node.fd_drop = false; fd_duplicate = false; fd_delay = 0.0 }

let decide t ~me ~peer =
  let key = norm (me, peer) in
  if Hashtbl.mem t.partitioned key then
    { Spines.Node.fd_drop = true; fd_duplicate = false; fd_delay = 0.0 }
  else
    match Hashtbl.find_opt t.lossy key with
    | None -> no_fault
    | Some p ->
        let drop = Sim.Rng.float t.rng 1.0 < p.lp_drop in
        if drop then { Spines.Node.fd_drop = true; fd_duplicate = false; fd_delay = 0.0 }
        else
          {
            Spines.Node.fd_drop = false;
            fd_duplicate = Sim.Rng.float t.rng 1.0 < p.lp_duplicate;
            fd_delay =
              (if p.lp_delay_max > 0.0 && Sim.Rng.bool t.rng then
                 Sim.Rng.float t.rng p.lp_delay_max
               else 0.0);
          }

let create ~rng deployment =
  let replicas = Spire.Deployment.replicas deployment in
  let t =
    {
      deployment;
      rng;
      n = Array.length replicas;
      partitioned = Hashtbl.create 16;
      lossy = Hashtbl.create 16;
      crashed = Array.make (Array.length replicas) false;
      leader_fault = None;
      applied = 0;
    }
  in
  Array.iteri
    (fun i r ->
      let injector = Some (fun ~peer -> decide t ~me:i ~peer) in
      Spines.Node.set_fault_injector r.Spire.Deployment.r_internal_node injector;
      Spines.Node.set_fault_injector r.Spire.Deployment.r_external_node injector)
    replicas;
  t

let fault_leader t misbehavior =
  let leader = Spire.Deployment.current_leader t.deployment in
  let replicas = Spire.Deployment.replicas t.deployment in
  Prime.Replica.set_misbehavior replicas.(leader).Spire.Deployment.r_replica misbehavior;
  t.leader_fault <- Some leader

let apply t (action : Fault.action) =
  t.applied <- t.applied + 1;
  match action with
  | Crash_replica i ->
      if not t.crashed.(i) then begin
        Spire.Deployment.take_down_replica t.deployment i;
        t.crashed.(i) <- true;
        if t.leader_fault = Some i then t.leader_fault <- None
      end
  | Restart_replica i ->
      if t.crashed.(i) then begin
        Spire.Deployment.bring_up_replica_clean t.deployment i;
        (* A clean image boots honest, whatever was armed before. *)
        Prime.Replica.set_misbehavior
          (Spire.Deployment.replicas t.deployment).(i).Spire.Deployment.r_replica
          Prime.Replica.Honest;
        t.crashed.(i) <- false
      end
  | Restart_replica_intact i ->
      if t.crashed.(i) then begin
        Spire.Deployment.bring_up_replica_intact t.deployment i;
        Prime.Replica.set_misbehavior
          (Spire.Deployment.replicas t.deployment).(i).Spire.Deployment.r_replica
          Prime.Replica.Honest;
        t.crashed.(i) <- false
      end
  | Disk_tear i ->
      Option.iter
        (fun d -> ignore (Store.Media.tear_any (Scada.Durable.media d)))
        (Spire.Deployment.durable t.deployment i)
  | Disk_corrupt i ->
      Option.iter
        (fun d -> ignore (Store.Media.corrupt_any (Scada.Durable.media d)))
        (Spire.Deployment.durable t.deployment i)
  | Disk_wipe i ->
      Option.iter
        (fun d -> Scada.Durable.wipe_disk d)
        (Spire.Deployment.durable t.deployment i)
  | Partition links -> List.iter (fun l -> Hashtbl.replace t.partitioned (norm l) ()) links
  | Heal links -> List.iter (fun l -> Hashtbl.remove t.partitioned (norm l)) links
  | Lossy_link { link; drop; duplicate; delay_max } ->
      Hashtbl.replace t.lossy (norm link)
        { lp_drop = drop; lp_duplicate = duplicate; lp_delay_max = delay_max }
  | Clear_link link -> Hashtbl.remove t.lossy (norm link)
  | Leader_silent -> fault_leader t Prime.Replica.Crash_silent
  | Leader_equivocate -> fault_leader t Prime.Replica.Equivocate
  | Leader_restore -> (
      match t.leader_fault with
      | None -> ()
      | Some i ->
          Prime.Replica.set_misbehavior
            (Spire.Deployment.replicas t.deployment).(i).Spire.Deployment.r_replica
            Prime.Replica.Honest;
          t.leader_fault <- None)

let crashed_count t = Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 t.crashed

let leader_fault_active t = t.leader_fault <> None

(* Replicas cut off from every peer by the active partitions. *)
let isolated_count t =
  let isolated = ref 0 in
  for r = 0 to t.n - 1 do
    let cut = ref 0 in
    for peer = 0 to t.n - 1 do
      if peer <> r && Hashtbl.mem t.partitioned (norm (r, peer)) then incr cut
    done;
    if !cut = t.n - 1 then incr isolated
  done;
  !isolated

let max_active_drop t =
  Hashtbl.fold (fun _ p acc -> Float.max acc p.lp_drop) t.lossy 0.0

let faults_applied t = t.applied
