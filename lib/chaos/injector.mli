(** Applies fault actions to a running deployment: link faults through
    [Spines.Node.set_fault_injector] hooks on every replica daemon,
    replica crashes through the proactive-recovery entry points, leader
    faults through Prime misbehaviour knobs. All randomness comes from
    the supplied RNG, so fault patterns replay from the chaos seed. *)

type t

(** Installs per-message fault hooks on every replica's internal and
    external Spines daemons. *)
val create : rng:Sim.Rng.t -> Spire.Deployment.t -> t

val apply : t -> Fault.action -> unit

(** Fault-burden observers, for the runner's health policy. *)
val crashed_count : t -> int

val leader_fault_active : t -> bool

(** Replicas cut off from every peer by active partitions. *)
val isolated_count : t -> int

(** Highest drop probability among active lossy links (0 if none). *)
val max_active_drop : t -> float

val faults_applied : t -> int
