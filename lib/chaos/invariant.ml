(* Continuously-running invariant checker.

   Attached to a live deployment, it observes every replica execution,
   every gated breaker actuation, and global execution progress, and
   records a violation whenever:

   - agreement safety: two replicas execute different updates at the same
     global sequence number;
   - at-most-once actuation: a proxy actuates the same decided command
     key twice (the f+1 threshold gate must fire exactly once per key);
   - bounded-delay liveness: while the runner reports the system healthy
     (at most f faulty replicas, no quorum-isolating partition), the
     global execution frontier fails to advance for [liveness_bound]
     seconds;
   - recovery liveness: a replica brought back from a clean image fails
     to rejoin — running with its preorder origin re-based — within
     [recovery_bound] seconds;
   - state-digest agreement: two running replicas at the same execution
     frontier hold different application state digests (a recovered
     replica must converge to the quorum's state byte-for-byte).

   All observations come through deterministic simulation hooks, so a
   violation found under some seed reproduces under that seed. *)

type violation = { v_time : float; v_invariant : string; v_detail : string }

type pending_recovery = { pr_replica : int; pr_started : float; pr_deadline : float }

type t = {
  engine : Sim.Engine.t;
  liveness_bound : float;
  recovery_bound : float;
  is_healthy : unit -> bool;
  executed : (int, string) Hashtbl.t; (* exec_seq -> update identity *)
  actuated : (string, int) Hashtbl.t; (* proxy ^ key -> actuation count *)
  mutable violations : violation list; (* newest first *)
  mutable recoveries : pending_recovery list;
  mutable recovery_latencies : float list; (* newest first *)
  mutable deployment : Spire.Deployment.t option;
  mutable last_exec : int;
  mutable last_progress : float;
  mutable executions : int;
  mutable actuations : int;
  digest_seen : (int, int * string) Hashtbl.t;
      (* scratch for the digest sweep: exec_seq -> (first replica index,
         its raw digest root). Reset per sweep instead of reallocated —
         the sweep runs every 0.1 s for the whole chaos run. *)
  mutable poll : Sim.Engine.timer option;
  mutable power_poll : Sim.Engine.timer option;
  mutable fdia_streak : int; (* consecutive flagged estimator sweeps *)
  mutable fdia_detected_at : float option;
  mutable estimator_sweeps : int;
  mutable estimator_last : Estimator.report option;
  mutable on_violation : (violation -> unit) option;
}

let create ?(liveness_bound = 20.0) ?(recovery_bound = 30.0) ~engine ~is_healthy () =
  {
    engine;
    liveness_bound;
    recovery_bound;
    is_healthy;
    executed = Hashtbl.create 4096;
    actuated = Hashtbl.create 1024;
    violations = [];
    recoveries = [];
    recovery_latencies = [];
    deployment = None;
    last_exec = 0;
    last_progress = 0.0;
    executions = 0;
    actuations = 0;
    digest_seen = Hashtbl.create 8;
    poll = None;
    power_poll = None;
    fdia_streak = 0;
    fdia_detected_at = None;
    estimator_sweeps = 0;
    estimator_last = None;
    on_violation = None;
  }

(* Observer hook: the chaos runner uses this to dump the flight recorder
   the moment the first violation lands, so the JSONL carries exactly the
   events leading up to the verdict. *)
let set_on_violation t f = t.on_violation <- Some f

let violate t ~invariant detail =
  let v = { v_time = Sim.Engine.now t.engine; v_invariant = invariant; v_detail = detail } in
  t.violations <- v :: t.violations;
  match t.on_violation with Some f -> f v | None -> ()

let note_execution t ~replica ~exec_seq ~identity =
  t.executions <- t.executions + 1;
  match Hashtbl.find_opt t.executed exec_seq with
  | None -> Hashtbl.replace t.executed exec_seq identity
  | Some first when String.equal first identity -> ()
  | Some first ->
      violate t ~invariant:"agreement"
        (Printf.sprintf "replica %d executed %s at seq %d, but %s was executed there first"
           replica identity exec_seq first)

let note_actuation t ~proxy ~key =
  t.actuations <- t.actuations + 1;
  let k = proxy ^ "|" ^ key in
  let count = 1 + (Hashtbl.find_opt t.actuated k |> Option.value ~default:0) in
  Hashtbl.replace t.actuated k count;
  if count > 1 then
    violate t ~invariant:"at-most-once"
      (Printf.sprintf "proxy %s actuated key %s %d times" proxy key count)

let expect_recovery t ~replica =
  let now = Sim.Engine.now t.engine in
  t.recoveries <-
    { pr_replica = replica; pr_started = now; pr_deadline = now +. t.recovery_bound }
    :: t.recoveries

let check_progress t =
  let now = Sim.Engine.now t.engine in
  match t.deployment with
  | None -> ()
  | Some deployment ->
      let frontier =
        Array.fold_left
          (fun acc r -> max acc (Prime.Replica.exec_seq r.Spire.Deployment.r_replica))
          0
          (Spire.Deployment.replicas deployment)
      in
      if frontier > t.last_exec then begin
        t.last_exec <- frontier;
        t.last_progress <- now
      end
      else if not (t.is_healthy ()) then
        (* Degraded intervals (> f faulty, quorum-isolating partition,
           post-heal grace) do not count against the bound. *)
        t.last_progress <- now
      else if now -. t.last_progress > t.liveness_bound then begin
        violate t ~invariant:"liveness"
          (Printf.sprintf "no execution progress past seq %d for %.1f s while healthy"
             frontier (now -. t.last_progress));
        t.last_progress <- now
      end

(* [Scada.State.digest] is a pure function of the executed prefix
   (ops_applied and other incarnation-local bookkeeping are excluded
   from the serialization), so any two running replicas standing at the
   same execution frontier must hold byte-identical state — including a
   replica that just rejoined through local WAL replay or an f+1-voted
   checkpoint transfer. *)
let check_state_digests t =
  match t.deployment with
  | None -> ()
  | Some deployment ->
      (* Raw 32-byte roots, O(1) cached reads — no hex rendering and no
         per-sweep table allocation on this every-tick path; hex appears
         only in a violation message. *)
      Hashtbl.reset t.digest_seen;
      Array.iteri
        (fun i r ->
          let rep = r.Spire.Deployment.r_replica in
          if Prime.Replica.is_running rep then begin
            let e = Prime.Replica.exec_seq rep in
            let d = Scada.State.digest_root (Scada.Master.state r.Spire.Deployment.r_master) in
            match Hashtbl.find_opt t.digest_seen e with
            | None -> Hashtbl.replace t.digest_seen e (i, d)
            | Some (first, d0) ->
                if not (String.equal d0 d) then
                  violate t ~invariant:"state-digest"
                    (Printf.sprintf
                       "replicas %d and %d disagree on the state digest at exec %d (%s vs %s)"
                       first i e
                       (String.sub (Crypto.Sha256.to_hex d0) 0 12)
                       (String.sub (Crypto.Sha256.to_hex d) 0 12))
          end)
        (Spire.Deployment.replicas deployment)

let check_recoveries t =
  let now = Sim.Engine.now t.engine in
  match t.deployment with
  | None -> ()
  | Some deployment ->
      let replicas = Spire.Deployment.replicas deployment in
      t.recoveries <-
        List.filter
          (fun pr ->
            let r = replicas.(pr.pr_replica).Spire.Deployment.r_replica in
            if Prime.Replica.is_running r && Prime.Replica.origin_synced r then begin
              t.recovery_latencies <- (now -. pr.pr_started) :: t.recovery_latencies;
              false
            end
            else if now > pr.pr_deadline then begin
              violate t ~invariant:"recovery"
                (Printf.sprintf
                   "replica %d not rejoined %.1f s after clean restart (running=%b synced=%b)"
                   pr.pr_replica t.recovery_bound (Prime.Replica.is_running r)
                   (Prime.Replica.origin_synced r));
              false
            end
            else true)
          t.recoveries

(* --- power-physics invariants ------------------------------------------------ *)

(* Consecutive flagged estimator sweeps required before the chi-square
   verdict counts: a single sweep can straddle a poll in which breaker
   status and analog image update in different packets. *)
let fdia_persistence = 3

(* Ground-truth physical invariants against the live electrical overlay
   (not the telemetry image): these hold in every honest run, faulted or
   not, because the solver itself guarantees them — a violation means
   the co-simulation, not the grid, is broken. *)
let check_power_physics t (net : Power.Net.t) =
  let model = Power.Net.model net in
  let solution = Power.Net.solution net in
  (* No flow through an open path: a line whose gate breaker is open or
     whose protection tripped carries exactly nothing. *)
  Array.iteri
    (fun li (line : Power.Model.line) ->
      if not solution.Power.Model.line_live.(li) then begin
        let f = solution.Power.Model.flows_mw.(li) in
        if abs_float f > 1e-9 then
          violate t ~invariant:"power.open-flow"
            (Printf.sprintf "line %s carries %.3f MW while dead" line.Power.Model.line_name f)
      end)
    model.Power.Model.lines;
  (* Balance: DC flow is lossless, so generation matches served load. *)
  let imbalance =
    abs_float (solution.Power.Model.gen_mw -. solution.Power.Model.served_mw)
  in
  if imbalance > 1e-6 then
    violate t ~invariant:"power.balance"
      (Printf.sprintf "generation %.6f MW vs served %.6f MW" solution.Power.Model.gen_mw
         solution.Power.Model.served_mw);
  (* Frequency: droop never raises it above nominal, UFLS restores the
     balance, and the floor clamp bounds the excursion. *)
  let f = solution.Power.Model.frequency_hz in
  let nominal = model.Power.Model.nominal_hz in
  if f > nominal +. 1e-9 || f < 50.0 -. 1e-9 then
    violate t ~invariant:"power.frequency"
      (Printf.sprintf "frequency %.3f Hz outside [50, %.0f]" f nominal);
  if solution.Power.Model.shed_mw = 0.0 && abs_float (f -. nominal) > 1e-9 then
    violate t ~invariant:"power.frequency"
      (Printf.sprintf "frequency %.3f Hz depressed with nothing shed" f);
  (* Cascade containment: protection must clear any overload within the
     worst-case inverse-time delay. *)
  List.iter
    (fun (line, since) ->
      violate t ~invariant:"power.cascade"
        (Printf.sprintf "line %s overloaded since t=%.3f without tripping" line since))
    (Power.Net.stuck_overloads net ~grace:1.0)

(* Chi-square bad-data sweep over what the master group actually holds:
   the first running replica's replicated state. Flags must persist for
   [fdia_persistence] consecutive sweeps before the verdict lands, at
   which point an [fdia.flagged] alarm event hits the flight recorder
   (and through it the alert engine). *)
let check_bad_data t deployment (net : Power.Net.t) =
  let replicas = Spire.Deployment.replicas deployment in
  let state = ref None in
  Array.iter
    (fun (r : Spire.Deployment.replica_bundle) ->
      if !state = None && Prime.Replica.is_running r.Spire.Deployment.r_replica then
        state := Some (Scada.Master.state r.Spire.Deployment.r_master))
    replicas;
  match !state with
  | None -> ()
  | Some state -> (
      t.estimator_sweeps <- t.estimator_sweeps + 1;
      match Estimator.evaluate (Power.Net.model net) state with
      | None -> t.fdia_streak <- 0
      | Some report ->
          t.estimator_last <- Some report;
          if not report.Estimator.est_flagged then t.fdia_streak <- 0
          else begin
            t.fdia_streak <- t.fdia_streak + 1;
            if t.fdia_streak = fdia_persistence && t.fdia_detected_at = None then begin
              let now = Sim.Engine.now t.engine in
              t.fdia_detected_at <- Some now;
              violate t ~invariant:"bad-data"
                (Printf.sprintf "chi-square J=%.1f > %.1f (dof %d), worst %s at %.1f sigma"
                   report.Estimator.est_j report.Estimator.est_threshold
                   report.Estimator.est_dof report.Estimator.est_worst_point
                   report.Estimator.est_worst_residual);
              if Obs.Flight.recording Obs.Flight.default then
                Obs.Flight.record Obs.Flight.default ~time:now ~severity:Obs.Flight.Alarm
                  ~subsystem:"chaos" ~kind:"fdia.flagged"
                  (Printf.sprintf "state estimation rejects telemetry: J=%.1f > %.1f, worst %s"
                     report.Estimator.est_j report.Estimator.est_threshold
                     report.Estimator.est_worst_point)
            end
          end)

let attach_power ?(period = 0.1) ?(bad_data = true) t deployment =
  let net = Spire.Deployment.power_net deployment in
  t.power_poll <-
    Some
      (Sim.Engine.every t.engine ~period (fun () ->
           check_power_physics t net;
           if bad_data then check_bad_data t deployment net))

let fdia_detected_at t = t.fdia_detected_at

let estimator_sweeps t = t.estimator_sweeps

let estimator_last t = t.estimator_last

let attach t deployment =
  t.deployment <- Some deployment;
  t.last_progress <- Sim.Engine.now t.engine;
  Array.iteri
    (fun i r ->
      Prime.Replica.set_on_execute r.Spire.Deployment.r_replica (fun ~exec_seq u ->
          let client, client_seq = Prime.Msg.Update.key u in
          note_execution t ~replica:i ~exec_seq
            ~identity:(Printf.sprintf "%s#%d:%s" client client_seq u.Prime.Msg.Update.op)))
    (Spire.Deployment.replicas deployment);
  Array.iter
    (fun p ->
      match p.Spire.Deployment.p_frontend with
      | Spire.Deployment.Modbus_plc { fe_proxy; _ } ->
          let name = Scada.Proxy.name fe_proxy in
          Scada.Proxy.set_on_actuate fe_proxy (fun ~key ~breaker:_ ~close:_ ->
              note_actuation t ~proxy:name ~key)
      | Spire.Deployment.Dnp3_rtu { fe_proxy; _ } ->
          let name = Scada.Rtu_proxy.name fe_proxy in
          Scada.Rtu_proxy.set_on_actuate fe_proxy (fun ~key ~breaker:_ ~close:_ ->
              note_actuation t ~proxy:name ~key))
    (Spire.Deployment.proxies deployment);
  t.poll <-
    Some
      (Sim.Engine.every t.engine ~period:0.1 (fun () ->
           check_progress t;
           check_recoveries t;
           check_state_digests t))

let stop t =
  (match t.poll with Some timer -> Sim.Engine.cancel_timer t.engine timer | None -> ());
  t.poll <- None;
  (match t.power_poll with Some timer -> Sim.Engine.cancel_timer t.engine timer | None -> ());
  t.power_poll <- None

let violations t = List.rev t.violations

let recovery_latencies t = List.rev t.recovery_latencies

let executions_checked t = t.executions

let actuations_checked t = t.actuations
