(** Spire deployment builder: the full Fig. 2/3 architecture in the
    simulator — hardened dual-homed replica machines running internal and
    external Spines daemons, a Prime replica and a SCADA master each;
    PLC/RTU sites behind proxies on dedicated cables; HMIs as Spines
    session clients.

    [hardened] applies the Section III-B measures (minimal-server OS,
    default-deny firewalls with explicit peer allows, static ARP, switch
    port security); building with [hardened:false] reproduces the
    configuration the red team would have faced without them. *)

(** Spines client-session id used for the Prime stream. *)
val prime_client : int

(** Spines client-session id used for master-to-master SCADA traffic. *)
val scada_client : int

(** A field site speaks either Modbus (PLC) or DNP3 (RTU). *)
type field_frontend =
  | Modbus_plc of { fe_device : Plc.Device.t; fe_proxy : Scada.Proxy.t }
  | Dnp3_rtu of { fe_rtu : Plc.Rtu.t; fe_proxy : Scada.Rtu_proxy.t }

type replica_bundle = {
  r_host : Netbase.Host.t;
  r_internal_nic : Netbase.Host.nic;
  r_external_nic : Netbase.Host.nic;
  r_internal_node : Spines.Node.t;
  r_external_node : Spines.Node.t;
  r_replica : Prime.Replica.t;
  r_master : Scada.Master.t;
  r_keypair : Crypto.Signature.keypair;
  r_durable : Scada.Durable.t option;  (** [None] when [durable_store] is off *)
}

type proxy_bundle = {
  p_index : int;
  p_spec : Plc.Power.plc_spec;
  p_host : Netbase.Host.t;
  p_session : Spines.Node.Session.session;
  p_frontend : field_frontend;
  p_client : Prime.Client.t;
  p_plc_host : Netbase.Host.t;
  p_breakers : Plc.Breaker.t array;
}

type hmi_bundle = {
  h_index : int;
  h_host : Netbase.Host.t;
  h_session : Spines.Node.Session.session;
  h_hmi : Scada.Hmi.t;
  h_client : Prime.Client.t;
}

type t

(** Build and start a deployment. [dnp3_plcs] names the scenario sites to
    deploy as DNP3 RTUs instead of Modbus PLCs. [switch_bandwidth]
    overrides both switches' per-port serialization rate (bytes/s) to
    model constrained substation networking. [probe_label] suffixes
    every probe this build registers ("@s03") so multiple deployments —
    one per shard — share one probe registry without colliding. *)
val create :
  ?hardened:bool ->
  ?n_hmis:int ->
  ?proxy_poll_period:float ->
  ?dnp3_plcs:string list ->
  ?switch_bandwidth:float ->
  ?probe_label:string ->
  engine:Sim.Engine.t ->
  trace:Sim.Trace.t ->
  config:Prime.Config.t ->
  Plc.Power.scenario ->
  t

val engine : t -> Sim.Engine.t

val trace : t -> Sim.Trace.t

val keystore : t -> Crypto.Signature.keystore

val config : t -> Prime.Config.t

val scenario : t -> Plc.Power.scenario

(** The electrical model derived from the scenario topology. *)
val power_model : t -> Power.Model.t

(** The live electrical overlay co-simulating on the deployment's engine.
    Breaker positions drive it; it never commands breakers. RTU analog
    images sample its measurement points. *)
val power_net : t -> Power.Net.t

val replicas : t -> replica_bundle array

(** The durable store of replica [i] ([None] when [durable_store] is
    off). *)
val durable : t -> int -> Scada.Durable.t option

(** The most advanced view any running replica has reached (a cleanly
    restarted replica re-enters at view 0, so this is the authoritative
    view). *)
val max_view : t -> int

(** Leader of {!max_view} under this deployment's Prime configuration. *)
val current_leader : t -> int

val proxies : t -> proxy_bundle array

val hmis : t -> hmi_bundle array

val internal_switch : t -> Netbase.Switch.t

val external_switch : t -> Netbase.Switch.t

(** Mirror-port captures of the two networks (MANA's inputs). *)
val internal_pcap : t -> Netbase.Pcap.t

val external_pcap : t -> Netbase.Pcap.t

(** Dispatch a SCADA payload to a site's proxy, whatever its protocol. *)
val proxy_handle_payload : proxy_bundle -> Netbase.Packet.payload -> unit

val proxy_reset_reporting : proxy_bundle -> unit

(** The Modbus device behind a bundle, when it is one. *)
val modbus_device : proxy_bundle -> Plc.Device.t option

(** Locate a breaker by name across all sites. *)
val find_breaker : t -> string -> (proxy_bundle * Plc.Breaker.t) option

(** Proactive recovery: stop everything on replica [i]'s machine. *)
val take_down_replica : t -> int -> unit

(** Bring replica [i] back from a clean image (protocol and application
    state wiped; catchup or state transfer rebuilds). *)
val bring_up_replica_clean : t -> int -> unit

(** Restart that keeps the machine's disk: recover the durable state
    locally (checkpoint + WAL replay) and rely on Prime catchup only for
    the suffix. Falls back to the clean path when the store is disabled
    or the device holds nothing installable. *)
val bring_up_replica_intact : t -> int -> unit

(** Section III-A assumption-breach recovery: every master resets,
    replication restarts, proxies re-report the field ground truth. *)
val ground_truth_reset : t -> unit
