(* IP plan for the testbed networks (mirrors the Fig. 3 architecture). *)

let ip = Netbase.Addr.Ip.v

(* Spines Internal: replicas only, physically isolated. *)
let internal_subnet = ip 10 0 1 0

let replica_internal i = ip 10 0 1 (11 + i)

(* Spines External: replicas, proxies, HMIs. *)
let external_subnet = ip 10 0 2 0

let replica_external i = ip 10 0 2 (11 + i)

let proxy_external k = ip 10 0 2 (101 + k)

(* HMIs fill 201..253, then spill into the unused 30..100 block of the
   same /24 (below the proxy range at 101+, above the replica range) so
   a scale-out run can attach 100+ HMI clients to one master group. *)
let hmi_external j =
  if j < 53 then ip 10 0 2 (201 + j)
  else if j < 124 then ip 10 0 2 (30 + j - 53)
  else invalid_arg "Addressing.hmi_external: HMI space exhausted (max 124)"

(* Dedicated proxy-to-PLC wires: one /24 per pair. *)
let cable_proxy k = ip 192 168 (50 + k) 1

let cable_plc k = ip 192 168 (50 + k) 2

(* Enterprise network (historian, workstations, red-team start position). *)
let enterprise_subnet = ip 10 0 10 0

let historian_ip = ip 10 0 10 5

let workstation_ip = ip 10 0 10 6

let enterprise_gateway = ip 10 0 10 254

(* Commercial operations network (the parallel testbed system). *)
let commercial_subnet = ip 10 0 20 0

let commercial_master = ip 10 0 20 11

let commercial_backup = ip 10 0 20 12

let commercial_hmi = ip 10 0 20 21

let commercial_plc k = ip 10 0 20 (31 + k)

let commercial_gateway = ip 10 0 20 254

(* Spire operations network gateway (for enterprise connectivity tests). *)
let spire_ops_gateway = ip 10 0 2 254

let spines_internal_port = 8100

let spines_external_port = 8120

(* Client-facing session port on the replicas' external daemons, and the
   local port session clients (proxies/HMIs) answer on. *)
let spines_session_port = 8121

let session_client_port = 9001
