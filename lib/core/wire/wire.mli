(** Binary wire codec for canonical (signed) message encodings.

    Writers append fixed-width big-endian fields to a [Buffer.t]; the
    reader walks the same layout back. Encodings are canonical by
    construction — the same logical message always produces the same
    bytes, the property signatures need (signature compatibility across
    deployments). *)

(** Raised by readers on truncated or malformed input. *)
exception Truncated

val w_u8 : Buffer.t -> int -> unit

val w_u16 : Buffer.t -> int -> unit

val w_u32 : Buffer.t -> int -> unit

(** Full native int as 8 bytes big-endian (sign-extended). *)
val w_int : Buffer.t -> int -> unit

val w_bool : Buffer.t -> bool -> unit

(** IEEE-754 double as its 8-byte big-endian bit pattern (bit-exact
    round trip). *)
val w_f64 : Buffer.t -> float -> unit

(** Length-prefixed (u32) byte string. *)
val w_str : Buffer.t -> string -> unit

(** Exactly 32 raw bytes, no length prefix. Raises [Invalid_argument] on
    any other length. *)
val w_digest : Buffer.t -> string -> unit

val w_int_array : Buffer.t -> int array -> unit

(** Presence flag byte, then the value if present. *)
val w_opt : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a option -> unit

type reader

val reader : string -> reader

val remaining : reader -> int

val at_end : reader -> bool

(** Zero-copy sub-view over the next [len] bytes (shares the backing
    string; consumes the window from the parent). Raises [Truncated]
    when fewer than [len] bytes remain. *)
val sub_reader : reader -> int -> reader

(** The next length-prefixed string field as a {!sub_reader} instead of
    a copied-out string. *)
val r_str_reader : reader -> reader

val r_u8 : reader -> int

val r_u16 : reader -> int

val r_u32 : reader -> int

(** Rejects (raises {!Truncated}) non-canonical sign-extension patterns
    no {!w_int} produces, so a decoded blob re-encodes byte-identically. *)
val r_int : reader -> int

val r_bool : reader -> bool

val r_f64 : reader -> float

val r_str : reader -> string

val r_digest : reader -> string

val r_int_array : reader -> int array

val r_opt : (reader -> 'a) -> reader -> 'a option

(** [encode ?size_hint f] runs [f] against a fresh buffer and returns its
    contents. *)
val encode : ?size_hint:int -> (Buffer.t -> unit) -> string
