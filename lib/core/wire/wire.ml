(* Binary wire codec for canonical (signed) message encodings.

   Writers append fixed-width big-endian fields to a [Buffer.t]; the
   reader walks the same layout back. The codec replaces the
   sprintf/hex-string encodings that used to dominate the crypto hot
   path: a 32-byte digest is written as 32 raw bytes instead of 64 hex
   characters inside a formatted string, and integers cost no decimal
   rendering.

   Byte stability is a signature-compatibility property: two deployments
   encoding the same logical message must produce identical bytes, or
   signatures made by one would not verify at the other. Everything here
   is therefore canonical — no varints, no optional padding. *)

exception Truncated

let w_u8 b v =
  if v < 0 || v > 0xFF then invalid_arg "Wire.w_u8: out of range";
  Buffer.add_char b (Char.unsafe_chr v)

let w_u16 b v =
  if v < 0 || v > 0xFFFF then invalid_arg "Wire.w_u16: out of range";
  Buffer.add_char b (Char.unsafe_chr (v lsr 8));
  Buffer.add_char b (Char.unsafe_chr (v land 0xFF))

let w_u32 b v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg "Wire.w_u32: out of range";
  Buffer.add_char b (Char.unsafe_chr ((v lsr 24) land 0xFF));
  Buffer.add_char b (Char.unsafe_chr ((v lsr 16) land 0xFF));
  Buffer.add_char b (Char.unsafe_chr ((v lsr 8) land 0xFF));
  Buffer.add_char b (Char.unsafe_chr (v land 0xFF))

(* Full OCaml int (63-bit, sign included) as 8 bytes big-endian. *)
let w_int b v =
  for i = 7 downto 0 do
    Buffer.add_char b (Char.unsafe_chr ((v asr (i * 8)) land 0xFF))
  done

let w_bool b v = Buffer.add_char b (if v then '\001' else '\000')

(* IEEE-754 double as its 8-byte big-endian bit pattern: bit-exact round
   trips, which keeps float-carrying records canonical. *)
let w_f64 b v =
  let bits = Int64.bits_of_float v in
  for i = 7 downto 0 do
    Buffer.add_char b
      (Char.unsafe_chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (i * 8)) 0xFFL)))
  done

let w_str b s =
  w_u32 b (String.length s);
  Buffer.add_string b s

(* Digests are fixed-width: 32 raw bytes, no length prefix. *)
let w_digest b d =
  if String.length d <> 32 then invalid_arg "Wire.w_digest: digest must be 32 bytes";
  Buffer.add_string b d

let w_int_array b a =
  w_u32 b (Array.length a);
  Array.iter (w_int b) a

let w_opt b w = function
  | None -> w_bool b false
  | Some v ->
      w_bool b true;
      w b v

(* --- reader ------------------------------------------------------------- *)

(* [limit] bounds the view: a plain reader covers the whole string, a
   [sub_reader] a window of its parent's bytes. Sharing [data] instead
   of [String.sub]-ing it is what makes nested decodes (frame manifests)
   copy-free. *)
type reader = { data : string; mutable pos : int; limit : int }

let reader data = { data; pos = 0; limit = String.length data }

let remaining r = r.limit - r.pos

let at_end r = remaining r = 0

let need r n = if remaining r < n then raise Truncated

(* Zero-copy sub-view: a reader over the next [len] bytes, sharing the
   backing string. Consumes the window from the parent. *)
let sub_reader r len =
  if len < 0 then raise Truncated;
  need r len;
  let sub = { data = r.data; pos = r.pos; limit = r.pos + len } in
  r.pos <- r.pos + len;
  sub


let r_u8 r =
  need r 1;
  let v = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r_u16 r =
  let hi = r_u8 r in
  let lo = r_u8 r in
  (hi lsl 8) lor lo

let r_u32 r =
  need r 4;
  let v =
    (Char.code r.data.[r.pos] lsl 24)
    lor (Char.code r.data.[r.pos + 1] lsl 16)
    lor (Char.code r.data.[r.pos + 2] lsl 8)
    lor Char.code r.data.[r.pos + 3]
  in
  r.pos <- r.pos + 4;
  v

let r_int r =
  need r 8;
  (* The wire carries a sign-extended 64-bit pattern of a native (63-bit)
     int, so the top two bits of the first byte are always equal ([w_int]
     writes [v asr 56]: 0x00-0x3F for v >= 0, 0xC0-0xFF for v < 0). An
     unequal pair is a pattern no writer produces — accumulating with
     [lsl] would silently drop the 64th bit and decode it to the same
     value as its canonical sibling, giving two byte strings one
     meaning. Canonicality is what lets digest/signature checks stand in
     for byte equality, so reject it as malformed. *)
  let b0 = Char.code r.data.[r.pos] in
  if (b0 lsr 7) lxor ((b0 lsr 6) land 1) <> 0 then raise Truncated;
  let v = ref 0 in
  for i = 0 to 7 do
    v := (!v lsl 8) lor Char.code r.data.[r.pos + i]
  done;
  r.pos <- r.pos + 8;
  !v

let r_f64 r =
  need r 8;
  let bits = ref 0L in
  for i = 0 to 7 do
    bits := Int64.logor (Int64.shift_left !bits 8) (Int64.of_int (Char.code r.data.[r.pos + i]))
  done;
  r.pos <- r.pos + 8;
  Int64.float_of_bits !bits

let r_bool r =
  match r_u8 r with
  | 0 -> false
  | 1 -> true
  | _ -> raise Truncated

let r_str r =
  let len = r_u32 r in
  need r len;
  let s = String.sub r.data r.pos len in
  r.pos <- r.pos + len;
  s

(* The length-prefixed string field as a zero-copy sub-view instead of a
   copied-out string. *)
let r_str_reader r =
  let len = r_u32 r in
  sub_reader r len

let r_digest r =
  need r 32;
  let s = String.sub r.data r.pos 32 in
  r.pos <- r.pos + 32;
  s

let r_int_array r =
  let len = r_u32 r in
  Array.init len (fun _ -> r_int r)

let r_opt rd r = if r_bool r then Some (rd r) else None

(* Convenience: run writers against a buffer and return the bytes.

   Encoding happens on the packet path (every signed body), so the
   top-level call reuses one scratch buffer — [Buffer.clear] keeps the
   backing bytes, leaving only the unavoidable result string allocated.
   Encoders may themselves call [encode] (e.g. a digest over nested
   update encodings); nested calls see the scratch busy and fall back to
   a fresh buffer, preserving reentrancy. *)
let scratch = Buffer.create 256

let scratch_busy = ref false

(* Don't let one huge encode (a checkpoint, say) pin megabytes forever. *)
let scratch_retain_max = 1 lsl 16

let encode ?(size_hint = 64) f =
  if !scratch_busy then begin
    let b = Buffer.create size_hint in
    f b;
    Buffer.contents b
  end
  else begin
    scratch_busy := true;
    Buffer.clear scratch;
    match f scratch with
    | () ->
        let s = Buffer.contents scratch in
        if Buffer.length scratch > scratch_retain_max then Buffer.reset scratch;
        scratch_busy := false;
        s
    | exception e ->
        scratch_busy := false;
        raise e
  end
