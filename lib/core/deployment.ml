(* Spire deployment builder: assembles the full Fig. 2/3 architecture
   inside the simulator.

   Per replica machine: a hardened host with two NICs (isolated Spines
   Internal network for replication, Spines External for field traffic),
   an internal and an external Spines daemon, a Prime replica and a SCADA
   master. Per PLC: a proxy machine on the external network wired to its
   PLC over a dedicated cable, plus the emulated PLC device itself. HMIs
   are external-network machines with Prime client sessions.

   [hardened] applies the Section III-B measures: minimal-server OS
   profile, default-deny host firewalls with explicit peer allows, static
   ARP entries, and static MAC-to-port switch bindings. Building with
   [hardened:false] yields the configuration the red team would have
   faced without those steps — the ablation measured in the benchmarks.

   Proxies and HMIs attach to the replicas' external daemons as remote
   Spines session clients (with heartbeat failover across daemons), as in
   the real system. *)

let prime_client = 1

let scada_client = 2

type replica_bundle = {
  r_host : Netbase.Host.t;
  r_internal_nic : Netbase.Host.nic;
  r_external_nic : Netbase.Host.nic;
  r_internal_node : Spines.Node.t;
  r_external_node : Spines.Node.t;
  r_replica : Prime.Replica.t;
  r_master : Scada.Master.t;
  r_keypair : Crypto.Signature.keypair;
  r_durable : Scada.Durable.t option;
}

(* A field site speaks either Modbus (PLC) or DNP3 (RTU); the proxy
   facing it differs accordingly. *)
type field_frontend =
  | Modbus_plc of { fe_device : Plc.Device.t; fe_proxy : Scada.Proxy.t }
  | Dnp3_rtu of { fe_rtu : Plc.Rtu.t; fe_proxy : Scada.Rtu_proxy.t }

type proxy_bundle = {
  p_index : int;
  p_spec : Plc.Power.plc_spec;
  p_host : Netbase.Host.t;
  p_session : Spines.Node.Session.session;
  p_frontend : field_frontend;
  p_client : Prime.Client.t;
  p_plc_host : Netbase.Host.t;
  p_breakers : Plc.Breaker.t array;
}

let proxy_handle_payload bundle payload =
  match bundle.p_frontend with
  | Modbus_plc { fe_proxy; _ } -> Scada.Proxy.handle_payload fe_proxy payload
  | Dnp3_rtu { fe_proxy; _ } -> Scada.Rtu_proxy.handle_payload fe_proxy payload

let proxy_reset_reporting bundle =
  match bundle.p_frontend with
  | Modbus_plc { fe_proxy; _ } -> Scada.Proxy.reset_reporting fe_proxy
  | Dnp3_rtu { fe_proxy; _ } -> Scada.Rtu_proxy.reset_reporting fe_proxy

(* The Modbus device behind a bundle, when it is one (unit-test access). *)
let modbus_device bundle =
  match bundle.p_frontend with
  | Modbus_plc { fe_device; _ } -> Some fe_device
  | Dnp3_rtu _ -> None

type hmi_bundle = {
  h_index : int;
  h_host : Netbase.Host.t;
  h_session : Spines.Node.Session.session;
  h_hmi : Scada.Hmi.t;
  h_client : Prime.Client.t;
}

type t = {
  engine : Sim.Engine.t;
  trace : Sim.Trace.t;
  keystore : Crypto.Signature.keystore;
  config : Prime.Config.t;
  scenario : Plc.Power.scenario;
  power_model : Power.Model.t;
  power_net : Power.Net.t;
  hardened : bool;
  internal_switch : Netbase.Switch.t;
  external_switch : Netbase.Switch.t;
  replicas : replica_bundle array;
  proxies : proxy_bundle array;
  hmis : hmi_bundle array;
  endpoints : (string, int) Hashtbl.t; (* endpoint name -> external overlay node id *)
  internal_pcap : Netbase.Pcap.t;
  external_pcap : Netbase.Pcap.t;
}

let engine t = t.engine

let trace t = t.trace

let keystore t = t.keystore

let config t = t.config

let scenario t = t.scenario

let power_model t = t.power_model

let power_net t = t.power_net

let replicas t = t.replicas

(* The durable store of replica [i] ([None] when [durable_store] is off). *)
let durable t i = t.replicas.(i).r_durable

(* The most advanced view any running replica has reached. A cleanly
   restarted replica re-enters at view 0 and a crashed one's view is
   frozen, so the maximum over running replicas is the deployment's
   authoritative view. *)
let max_view t =
  Array.fold_left
    (fun acc r ->
      if Prime.Replica.is_running r.r_replica then max acc (Prime.Replica.view r.r_replica)
      else acc)
    0 t.replicas

let current_leader t = Prime.Config.leader_of_view t.config (max_view t)

let proxies t = t.proxies

let hmis t = t.hmis

let external_pcap t = t.external_pcap

let internal_pcap t = t.internal_pcap

let external_switch t = t.external_switch

let internal_switch t = t.internal_switch

let group_key = "spire-deployment-group-key"

(* --- construction -------------------------------------------------------- *)

let harden_static_arp hosts_nics =
  (* Every host pins every other host's MAC: the Section III-B "static
     mapping of MAC addresses to IP addresses". *)
  List.iter
    (fun (host, _) ->
      List.iter
        (fun (_, nic) ->
          Netbase.Host.set_static_arp host ~ip:(Netbase.Host.nic_ip nic)
            ~mac:(Netbase.Host.nic_mac nic))
        hosts_nics)
    hosts_nics

let create ?(hardened = true) ?(n_hmis = 1) ?(proxy_poll_period = 0.1) ?(dnp3_plcs = [])
    ?switch_bandwidth ?probe_label ~engine ~trace ~config scenario =
  (* Shard builds label their probes ("@s03") so per-shard instances stay
     distinct in one registry; the label is scoped to construction. *)
  (match probe_label with
  | Some l -> Obs.Probe.set_label Obs.Probe.default (Some l)
  | None -> ());
  let keystore = Crypto.Signature.create_keystore () in
  (* Electrical overlay: the grid physics the breaker topology actuates.
     Purely observational from the SCADA stack's point of view — the net
     mirrors breaker positions and never commands them. *)
  let power_model = Power.Model.of_scenario scenario in
  let power_net = Power.Net.create ~flight:Obs.Flight.default ~engine power_model in
  let n = config.Prime.Config.n in
  let switch_mode = if hardened then Netbase.Switch.Static else Netbase.Switch.Learning in
  let internal_switch =
    Netbase.Switch.create ~mode:switch_mode ?bandwidth:switch_bandwidth ~engine ~trace
      "spines-internal"
  in
  let external_switch =
    Netbase.Switch.create ~mode:switch_mode ?bandwidth:switch_bandwidth ~engine ~trace
      "spines-external"
  in
  let internal_pcap = Netbase.Pcap.create () in
  let external_pcap = Netbase.Pcap.create () in
  Netbase.Switch.add_tap internal_switch (fun frame ->
      Netbase.Pcap.capture internal_pcap ~time:(Sim.Engine.now engine) frame);
  Netbase.Switch.add_tap external_switch (fun frame ->
      Netbase.Pcap.capture external_pcap ~time:(Sim.Engine.now engine) frame);
  let os = if hardened then Netbase.Host.centos_minimal else Netbase.Host.ubuntu_desktop in
  let make_firewall () =
    if hardened then Netbase.Firewall.locked_down () else Netbase.Firewall.create ()
  in
  let plc_specs = Array.of_list scenario.Plc.Power.plcs in
  let n_proxies = Array.length plc_specs in
  (* External overlay daemons run on the replica machines only; proxies
     and HMIs attach as remote session clients. *)
  let internal_topology = Spines.Topology.full_mesh (List.init n (fun i -> i)) in
  let external_topology = Spines.Topology.full_mesh (List.init n (fun i -> i)) in
  (* Data-plane knobs (route cache, coalescing, egress bounds) follow the
     Prime config so one escape hatch governs both overlays. *)
  let internal_config node_key =
    {
      (Spines.Node.default_config ~port:Addressing.spines_internal_port ~it_mode:true
         ~group_key:node_key ~route_cache:config.Prime.Config.route_cache
         ~coalescing:config.Prime.Config.coalescing
         ~egress_capacity:config.Prime.Config.egress_capacity
         ~coalesce_window:config.Prime.Config.coalesce_window internal_topology)
      with
      Spines.Node.hello_period = 1.0;
      hello_timeout = 3.5;
    }
  in
  let external_config node_key =
    {
      (Spines.Node.default_config ~port:Addressing.spines_external_port
         ~session_port:Addressing.spines_session_port ~it_mode:true ~group_key:node_key
         ~route_cache:config.Prime.Config.route_cache
         ~coalescing:config.Prime.Config.coalescing
         ~egress_capacity:config.Prime.Config.egress_capacity
         ~coalesce_window:config.Prime.Config.coalesce_window external_topology)
      with
      Spines.Node.hello_period = 1.0;
      hello_timeout = 3.5;
    }
  in
  let endpoints = Hashtbl.create 16 in
  (* --- replica machines --- *)
  let replica_keypairs =
    Array.init n (fun i -> Crypto.Signature.generate keystore (Prime.Msg.replica_identity i))
  in
  let replica_hosts =
    Array.init n (fun i ->
        let host =
          Netbase.Host.create ~os ~firewall:(make_firewall ()) ~engine ~trace
            (Printf.sprintf "replica-%d" i)
        in
        let internal_nic = Netbase.Host.add_nic host ~ip:(Addressing.replica_internal i) in
        let external_nic = Netbase.Host.add_nic host ~ip:(Addressing.replica_external i) in
        let int_port = Netbase.Host.plug_into_switch host internal_nic internal_switch in
        let ext_port = Netbase.Host.plug_into_switch host external_nic external_switch in
        if hardened then begin
          Netbase.Switch.bind_mac internal_switch (Netbase.Host.nic_mac internal_nic) int_port;
          Netbase.Switch.bind_mac external_switch (Netbase.Host.nic_mac external_nic) ext_port
        end;
        (host, internal_nic, external_nic))
  in
  let internal_nodes =
    Array.init n (fun i ->
        let host, _, _ = replica_hosts.(i) in
        Spines.Node.create ~engine ~trace ~host ~id:i (internal_config group_key))
  in
  (* --- proxy + PLC machines --- *)
  let proxy_hosts =
    Array.init n_proxies (fun k ->
        let spec = plc_specs.(k) in
        let host =
          Netbase.Host.create ~os ~firewall:(make_firewall ()) ~engine ~trace
            ("proxy-" ^ spec.Plc.Power.plc_name)
        in
        let ext_nic = Netbase.Host.add_nic host ~ip:(Addressing.proxy_external k) in
        let port = Netbase.Host.plug_into_switch host ext_nic external_switch in
        if hardened then
          Netbase.Switch.bind_mac external_switch (Netbase.Host.nic_mac ext_nic) port;
        let cable_nic = Netbase.Host.add_nic host ~ip:(Addressing.cable_proxy k) in
        let plc_host =
          Netbase.Host.create ~os:Netbase.Host.centos_minimal
            ~firewall:(Netbase.Firewall.create ()) ~engine ~trace
            ("plc-" ^ spec.Plc.Power.plc_name)
        in
        let plc_nic = Netbase.Host.add_nic plc_host ~ip:(Addressing.cable_plc k) in
        Netbase.Cable.connect ~engine ~latency:2e-5 host cable_nic plc_host plc_nic;
        (host, ext_nic, plc_host))
  in
  let hmi_hosts =
    Array.init n_hmis (fun j ->
        let host =
          Netbase.Host.create ~os ~firewall:(make_firewall ()) ~engine ~trace
            (Printf.sprintf "hmi-%d" j)
        in
        let nic = Netbase.Host.add_nic host ~ip:(Addressing.hmi_external j) in
        let port = Netbase.Host.plug_into_switch host nic external_switch in
        if hardened then Netbase.Switch.bind_mac external_switch (Netbase.Host.nic_mac nic) port;
        (host, nic))
  in
  let external_nodes =
    Array.init n (fun id ->
        let host, _, _ = replica_hosts.(id) in
        Spines.Node.create ~engine ~trace ~host ~id (external_config group_key))
  in
  (* Peer addresses. *)
  Array.iteri
    (fun i node ->
      for j = 0 to n - 1 do
        if i <> j then Spines.Node.set_peer_address node j (Addressing.replica_internal j)
      done)
    internal_nodes;
  Array.iteri
    (fun i node ->
      for j = 0 to n - 1 do
        if i <> j then Spines.Node.set_peer_address node j (Addressing.replica_external j)
      done)
    external_nodes;
  (* Firewall allows for the overlay peers and the proxy cable. *)
  if hardened then begin
    for i = 0 to n - 1 do
      let host, _, _ = replica_hosts.(i) in
      let fw = Netbase.Host.firewall host in
      for j = 0 to n - 1 do
        if i <> j then begin
          Netbase.Firewall.allow_peer fw ~remote_ip:(Addressing.replica_internal j)
            ~local_port:Addressing.spines_internal_port ~description:"spines internal peer";
          Netbase.Firewall.allow_peer fw ~remote_ip:(Addressing.replica_external j)
            ~local_port:Addressing.spines_external_port ~description:"spines external peer"
        end
      done;
      (* Session clients (proxies, HMIs): their IP on the session port. *)
      let allow_session_client ip =
        Netbase.Firewall.allow_peer fw ~remote_ip:ip
          ~local_port:Addressing.spines_session_port ~description:"spines session client";
        Netbase.Firewall.add fw
          (Netbase.Firewall.rule ~remote_ip:ip ~remote_port:Addressing.session_client_port
             ~description:"session deliveries" Netbase.Firewall.Egress)
      in
      for k = 0 to n_proxies - 1 do
        allow_session_client (Addressing.proxy_external k)
      done;
      for j = 0 to n_hmis - 1 do
        allow_session_client (Addressing.hmi_external j)
      done
    done;
    Array.iteri
      (fun k (host, _, plc_host) ->
        let fw = Netbase.Host.firewall host in
        for j = 0 to n - 1 do
          Netbase.Firewall.allow_peer fw ~remote_ip:(Addressing.replica_external j)
            ~local_port:Addressing.session_client_port ~description:"spines session daemon";
          Netbase.Firewall.add fw
            (Netbase.Firewall.rule ~remote_ip:(Addressing.replica_external j)
               ~remote_port:Addressing.spines_session_port ~description:"session uplink"
               Netbase.Firewall.Egress)
        done;
        (* Field protocols over the dedicated cable: asymmetric
           client/server ports, for both Modbus and DNP3. *)
        Netbase.Firewall.add fw
          (Netbase.Firewall.rule ~remote_ip:(Addressing.cable_plc k) ~remote_port:Plc.Modbus.tcp_port
             ~description:"modbus to plc" Netbase.Firewall.Egress);
        Netbase.Firewall.add fw
          (Netbase.Firewall.rule ~remote_ip:(Addressing.cable_plc k)
             ~local_port:Scada.Proxy.modbus_local_port ~description:"modbus replies"
             Netbase.Firewall.Ingress);
        Netbase.Firewall.add fw
          (Netbase.Firewall.rule ~remote_ip:(Addressing.cable_plc k) ~remote_port:Plc.Dnp3.tcp_port
             ~description:"dnp3 to rtu" Netbase.Firewall.Egress);
        Netbase.Firewall.add fw
          (Netbase.Firewall.rule ~remote_ip:(Addressing.cable_plc k)
             ~local_port:Scada.Rtu_proxy.dnp3_local_port ~description:"dnp3 replies"
             Netbase.Firewall.Ingress);
        (* The PLC itself only ever talks to its proxy. *)
        let plc_fw = Netbase.Host.firewall plc_host in
        Netbase.Firewall.set_default plc_fw Netbase.Firewall.Ingress Netbase.Firewall.Deny;
        Netbase.Firewall.add plc_fw
          (Netbase.Firewall.rule ~remote_ip:(Addressing.cable_proxy k)
             ~description:"proxy only" Netbase.Firewall.Ingress))
      proxy_hosts;
    Array.iter
      (fun (host, _) ->
        let fw = Netbase.Host.firewall host in
        for j = 0 to n - 1 do
          Netbase.Firewall.allow_peer fw ~remote_ip:(Addressing.replica_external j)
            ~local_port:Addressing.session_client_port ~description:"spines session daemon";
          Netbase.Firewall.add fw
            (Netbase.Firewall.rule ~remote_ip:(Addressing.replica_external j)
               ~remote_port:Addressing.spines_session_port ~description:"session uplink"
               Netbase.Firewall.Egress)
        done)
      hmi_hosts;
    (* Static ARP across each network. *)
    let internal_members =
      Array.to_list (Array.map (fun (h, nic, _) -> (h, nic)) replica_hosts)
    in
    harden_static_arp internal_members;
    let external_members =
      Array.to_list (Array.map (fun (h, _, nic) -> (h, nic)) replica_hosts)
      @ Array.to_list (Array.map (fun (h, nic, _) -> (h, nic)) proxy_hosts)
      @ Array.to_list (Array.map (fun (h, nic) -> (h, nic)) hmi_hosts)
    in
    harden_static_arp external_members
  end;
  (* --- start the overlay --- *)
  Array.iter Spines.Node.start internal_nodes;
  Array.iter Spines.Node.start external_nodes;
  (* --- endpoint registry (session names reachable via the overlay) --- *)
  Array.iteri
    (fun k spec -> Hashtbl.replace endpoints ("proxy-" ^ spec.Plc.Power.plc_name) k)
    plc_specs;
  for j = 0 to n_hmis - 1 do
    Hashtbl.replace endpoints (Printf.sprintf "hmi-%d" j) j
  done;
  (* --- Prime replicas and SCADA masters --- *)
  let msg_size msg = Prime.Msg.size n msg in
  let replica_bundles =
    Array.init n (fun i ->
        let host, internal_nic, external_nic = replica_hosts.(i) in
        let internal_node = internal_nodes.(i) in
        let external_node = external_nodes.(i) in
        let transport =
          {
            Prime.Replica.send =
              (fun ~dst msg ->
                Spines.Node.send internal_node ~client:prime_client ~size:(msg_size msg)
                  (Spines.Node.To_client { node = dst; client = prime_client })
                  (Prime.Msg.Prime_msg msg));
            broadcast =
              (fun msg ->
                Spines.Node.send internal_node ~client:prime_client ~size:(msg_size msg)
                  (Spines.Node.To_group "prime") (Prime.Msg.Prime_msg msg));
            reply_to_client =
              (fun ~client msg ->
                if Hashtbl.mem endpoints client then
                  Spines.Node.send external_node ~client:prime_client ~size:(msg_size msg)
                    (Spines.Node.To_session client) (Prime.Msg.Prime_msg msg));
          }
        in
        let replica =
          Prime.Replica.create ~engine ~trace ~keystore ~keypair:replica_keypairs.(i)
            ~transport ~id:i config
        in
        let net =
          {
            Scada.Master.broadcast_masters =
              (fun payload ~size ->
                Spines.Node.send internal_node ~client:scada_client ~size
                  (Spines.Node.To_group "masters") payload);
            send_endpoint =
              (fun ~endpoint payload ~size ->
                if Hashtbl.mem endpoints endpoint then
                  Spines.Node.send external_node ~client:scada_client ~size
                    (Spines.Node.To_session endpoint) payload);
          }
        in
        let master =
          Scada.Master.create ~engine ~trace ~keystore ~keypair:replica_keypairs.(i) ~config
            ~replica ~scenario ~net
        in
        (* Simulated durable device per replica machine: its RNG is a
           split stream so disk fault draws never perturb the rest of the
           simulation. *)
        let durable =
          if config.Prime.Config.durable_store then begin
            let media =
              Store.Media.create ~rng:(Sim.Engine.split_rng engine)
                (Printf.sprintf "disk-%d" i)
            in
            let d =
              Scada.Durable.create ~keystore ~keypair:replica_keypairs.(i) ~config ~replica
                ~state:(Scada.Master.state master) ~media
            in
            Scada.Master.attach_durable master d;
            Some d
          end
          else None
        in
        for j = 0 to n_hmis - 1 do
          Scada.Master.register_hmi master (Printf.sprintf "hmi-%d" j)
        done;
        (* Internal overlay clients: Prime stream and master-to-master. *)
        Spines.Node.register_client internal_node ~client:prime_client ~groups:[ "prime" ]
          (fun ~src:_ ~size:_ payload ->
            match payload with
            | Prime.Msg.Prime_msg msg -> Prime.Replica.handle_message replica msg
            | _ -> ());
        Spines.Node.register_client internal_node ~client:scada_client ~groups:[ "masters" ]
          (fun ~src:_ ~size:_ payload -> Scada.Master.handle_payload master payload);
        (* External overlay client: field traffic in (client updates). *)
        Spines.Node.register_client external_node ~client:prime_client
          (fun ~src:_ ~size:_ payload ->
            match payload with
            | Prime.Msg.Prime_msg msg -> Prime.Replica.handle_message replica msg
            | _ -> ());
        Spines.Node.register_client external_node ~client:scada_client
          (fun ~src:_ ~size:_ payload -> Scada.Master.handle_payload master payload);
        Prime.Replica.start replica;
        {
          r_host = host;
          r_internal_nic = internal_nic;
          r_external_nic = external_nic;
          r_internal_node = internal_node;
          r_external_node = external_node;
          r_replica = replica;
          r_master = master;
          r_keypair = replica_keypairs.(i);
          r_durable = durable;
        })
  in
  (* --- proxies, PLCs, breakers --- *)
  let daemons_rotated start =
    List.init n (fun j -> let i = (start + j) mod n in (i, Addressing.replica_external i))
  in
  let proxy_bundles =
    Array.init n_proxies (fun k ->
        let spec = plc_specs.(k) in
        let host, _, plc_host = proxy_hosts.(k) in
        let use_dnp3 = List.mem spec.Plc.Power.plc_name dnp3_plcs in
        let proxy_name = "proxy-" ^ spec.Plc.Power.plc_name in
        let keypair = Crypto.Signature.generate keystore proxy_name in
        let session =
          Spines.Node.Session.create ~local_port:Addressing.session_client_port ~engine ~trace
            ~host ~key:group_key ~daemons:(daemons_rotated k)
            ~daemon_session_port:Addressing.spines_session_port ~name:proxy_name ()
        in
        let send_to_replica ~dst msg =
          Spines.Node.Session.send session ~size:(msg_size msg)
            (Spines.Node.To_client { node = dst; client = prime_client })
            (Prime.Msg.Prime_msg msg)
        in
        let client = Prime.Client.create ~engine ~keystore ~keypair ~send_to_replica config in
        Prime.Client.enable_retransmit client ~period:2.0;
        let frontend, breakers =
          if use_dnp3 then begin
            let rtu =
              Plc.Rtu.create ~engine ~trace ~name:spec.Plc.Power.plc_name
                ~n_points:(List.length spec.Plc.Power.breaker_names) ()
            in
            let breakers =
              Array.of_list
                (List.mapi
                   (fun index breaker_name ->
                     let b = Plc.Breaker.create ~engine breaker_name in
                     Plc.Rtu.wire_breaker rtu ~index b;
                     Power.Net.bind_breaker power_net b;
                     b)
                   spec.Plc.Power.breaker_names)
            in
            (* The RTU's analog image samples the site's measurement
               points (line flows, injections, frequency) from the
               electrical overlay at poll time. *)
            let analog_names = Power.Net.analog_names_for power_net ~plc:spec.Plc.Power.plc_name in
            Plc.Rtu.set_analog_source rtu (fun () ->
                List.map snd (Power.Net.analogs_for power_net ~plc:spec.Plc.Power.plc_name));
            Plc.Rtu.serve_on rtu plc_host;
            let proxy =
              Scada.Rtu_proxy.create ~analog_names ~engine ~trace ~keystore ~config ~host
                ~rtu_ip:(Addressing.cable_plc k) ~breaker_names:spec.Plc.Power.breaker_names
                ~client proxy_name
            in
            Scada.Rtu_proxy.start proxy ~poll_period:proxy_poll_period;
            (Dnp3_rtu { fe_rtu = rtu; fe_proxy = proxy }, breakers)
          end
          else begin
            let device =
              Plc.Device.create ~engine ~trace ~name:spec.Plc.Power.plc_name
                ~n_coils:(List.length spec.Plc.Power.breaker_names)
            in
            let breakers =
              Array.of_list
                (List.mapi
                   (fun coil breaker_name ->
                     let b = Plc.Breaker.create ~engine breaker_name in
                     Plc.Device.wire_breaker device ~coil b;
                     Power.Net.bind_breaker power_net b;
                     b)
                   spec.Plc.Power.breaker_names)
            in
            Plc.Device.serve_on device plc_host;
            let proxy =
              Scada.Proxy.create ~engine ~trace ~keystore ~config ~host
                ~plc_ip:(Addressing.cable_plc k) ~breaker_names:spec.Plc.Power.breaker_names
                ~client proxy_name
            in
            Scada.Proxy.start proxy ~poll_period:proxy_poll_period;
            (Modbus_plc { fe_device = device; fe_proxy = proxy }, breakers)
          end
        in
        let bundle =
          {
            p_index = k;
            p_spec = spec;
            p_host = host;
            p_session = session;
            p_frontend = frontend;
            p_client = client;
            p_plc_host = plc_host;
            p_breakers = breakers;
          }
        in
        Spines.Node.Session.set_handler session (fun ~size:_ payload ->
            proxy_handle_payload bundle payload);
        Spines.Node.Session.start session;
        bundle)
  in
  (* --- HMIs --- *)
  let hmi_bundles =
    Array.init n_hmis (fun j ->
        let host, _ = hmi_hosts.(j) in
        let hmi_name = Printf.sprintf "hmi-%d" j in
        let keypair = Crypto.Signature.generate keystore hmi_name in
        let session =
          Spines.Node.Session.create ~local_port:Addressing.session_client_port ~engine ~trace
            ~host ~key:group_key ~daemons:(daemons_rotated (j + 1))
            ~daemon_session_port:Addressing.spines_session_port ~name:hmi_name ()
        in
        let send_to_replica ~dst msg =
          Spines.Node.Session.send session ~size:(msg_size msg)
            (Spines.Node.To_client { node = dst; client = prime_client })
            (Prime.Msg.Prime_msg msg)
        in
        let client = Prime.Client.create ~engine ~keystore ~keypair ~send_to_replica config in
        Prime.Client.enable_retransmit client ~period:2.0;
        let hmi =
          Scada.Hmi.create ~engine ~trace ~keystore ~config ~scenario ~client hmi_name
        in
        Spines.Node.Session.set_handler session (fun ~size:_ payload ->
            Scada.Hmi.handle_payload hmi payload);
        Spines.Node.Session.start session;
        { h_index = j; h_host = host; h_session = session; h_hmi = hmi; h_client = client })
  in
  Power.Net.register_probe power_net Obs.Probe.default;
  (* Probes register at construction time only, so the label's scope
     ends here; restarts reuse the instances built above. *)
  (match probe_label with
  | Some _ -> Obs.Probe.set_label Obs.Probe.default None
  | None -> ());
  {
    engine;
    trace;
    keystore;
    config;
    scenario;
    power_model;
    power_net;
    hardened;
    internal_switch;
    external_switch;
    replicas = replica_bundles;
    proxies = proxy_bundles;
    hmis = hmi_bundles;
    endpoints;
    internal_pcap;
    external_pcap;
  }

(* --- operations ------------------------------------------------------------ *)

let find_breaker t name =
  let found = ref None in
  Array.iter
    (fun p ->
      Array.iter
        (fun b -> if String.equal (Plc.Breaker.name b) name then found := Some (p, b))
        p.p_breakers)
    t.proxies;
  !found

(* Proactive recovery of one replica: stop everything on the machine,
   wipe protocol and application state, come back with a fresh variant
   (the variant itself is tracked by the Diversity scheduler). *)
let take_down_replica t i =
  let r = t.replicas.(i) in
  Prime.Replica.shutdown r.r_replica;
  (* Power loss on the machine: the device drops its unsynced tails. *)
  Option.iter Scada.Durable.on_crash r.r_durable;
  Spines.Node.stop r.r_internal_node;
  Spines.Node.stop r.r_external_node

let bring_up_replica_clean t i =
  let r = t.replicas.(i) in
  Spines.Node.start r.r_internal_node;
  Spines.Node.start r.r_external_node;
  (* A clean (diverse-variant) reinstall wipes the machine's disk too:
     the replica rejoins with nothing and relies on state transfer. *)
  Option.iter Scada.Durable.wipe_disk r.r_durable;
  Scada.State.reset (Scada.Master.state r.r_master);
  Prime.Replica.restart_clean r.r_replica;
  Netbase.Host.set_compromise r.r_host Netbase.Host.Clean

(* Restart that keeps the machine's disk: replay the durable state and
   rejoin from it, leaning on Prime catchup only for the suffix past the
   last durable execution boundary. Falls back to the clean path when the
   device holds nothing installable (or the store is disabled). *)
let bring_up_replica_intact t i =
  match t.replicas.(i).r_durable with
  | None -> bring_up_replica_clean t i
  | Some d ->
      let r = t.replicas.(i) in
      Spines.Node.start r.r_internal_node;
      Spines.Node.start r.r_external_node;
      Scada.State.reset (Scada.Master.state r.r_master);
      Prime.Replica.restart_clean r.r_replica;
      if not (Scada.Durable.local_recover d) then
        (* Nothing durable: equivalent to a clean rejoin. *)
        ();
      Netbase.Host.set_compromise r.r_host Netbase.Host.Clean

(* Ground-truth rebuild after an assumption breach (Section III-A): every
   master resets; replication restarts from scratch; the proxies' polling
   repopulates state from the field devices. *)
let ground_truth_reset t =
  Array.iter
    (fun r ->
      Prime.Replica.shutdown r.r_replica;
      (* Post-breach, pre-breach durable state is untrusted by design. *)
      Option.iter Scada.Durable.wipe_disk r.r_durable;
      Scada.Master.ground_truth_reset r.r_master)
    t.replicas;
  Array.iter
    (fun r ->
      Prime.Replica.restart_clean r.r_replica)
    t.replicas;
  (* Force proxies to re-report everything on their next poll. *)
  Array.iter proxy_reset_reporting t.proxies
