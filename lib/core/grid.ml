(* Sharded grid: one full Spire deployment per substation shard, plus
   the thin coordination tier for cross-shard reads.

   Each shard is a complete Fig. 2/3 stack — its own switches, hardened
   replica machines, Prime-replicated master group, proxies, and HMIs —
   built from the shard map's scenario slice. Shards share one simulation
   engine and trace but nothing on the wire: their networks are disjoint,
   so per-shard addressing and keys never collide and a shard saturating
   its switches cannot slow its neighbours. That isolation is the whole
   point of the scale-out: aggregate switch bandwidth and HMI push
   fan-out both scale with the shard count.

   Cross-shard reads go through [overview]: one aggregated query per
   shard — not one round trip per device — each answered under the same
   f + 1 trust argument the HMIs use. A shard's answer is accepted only
   when f + 1 of its replicas agree on the application-state digest, so
   a compromised master cannot forge a grid-wide picture. *)

type shard = { s_index : int; s_label : string; s_deployment : Deployment.t }

type t = {
  engine : Sim.Engine.t;
  trace : Sim.Trace.t;
  map : Scada.Shard.t;
  shard_bundles : shard array;
}

let create ?hardened ?n_hmis ?proxy_poll_period ?dnp3_plcs ?switch_bandwidth ~engine ~trace
    ~config ~shards scenario =
  let map = Scada.Shard.create ~shards scenario in
  let shard_bundles =
    Array.init shards (fun s ->
        let label = Scada.Shard.label s in
        let deployment =
          Deployment.create ?hardened ?n_hmis ?proxy_poll_period ?dnp3_plcs ?switch_bandwidth
            ~probe_label:label ~engine ~trace ~config
            (Scada.Shard.sub_scenario map s)
        in
        { s_index = s; s_label = label; s_deployment = deployment })
  in
  { engine; trace; map; shard_bundles }

let engine t = t.engine

let map t = t.map

let shard_count t = Array.length t.shard_bundles

let shards t = t.shard_bundles

let deployment t s =
  if s < 0 || s >= Array.length t.shard_bundles then
    invalid_arg "Grid.deployment: shard out of range";
  t.shard_bundles.(s).s_deployment

(* Execution frontier of one shard: the furthest exec_seq any of its
   running replicas has reached. *)
let exec_frontier t s =
  Array.fold_left
    (fun acc (r : Deployment.replica_bundle) ->
      if Prime.Replica.is_running r.Deployment.r_replica then
        max acc (Prime.Replica.exec_seq r.Deployment.r_replica)
      else acc)
    0
    (Deployment.replicas (deployment t s))

(* --- cross-shard reads ------------------------------------------------------ *)

type shard_overview = {
  o_shard : int;
  o_label : string;
  o_agreed : bool; (* f + 1 replicas agreed on the state digest *)
  o_digest : string; (* the agreed digest ("" without agreement) *)
  o_exec_frontier : int;
  o_breakers : int;
  o_closed : int;
  o_energized : (string * [ `Energized | `De_energized | `Unknown ]) list;
      (* Tri-state: a feed whose path crosses a breaker this shard does
         not track reports [`Unknown] — the old boolean view read those
         segments conservatively open and conflated "dark" with "we
         cannot see that cable from here". *)
}

(* One aggregated query against one shard's master group. Every running
   replica votes with its application-state digest root — an O(1)
   cached read off the state's incremental Merkle trees, compared as
   raw 32-byte digests; hex is rendered once for the winner only. The
   answer is rendered from a replica inside the f + 1 majority, so it
   reflects a state at least one correct replica holds. *)
let query_shard t s =
  let b = t.shard_bundles.(s) in
  let replicas = Deployment.replicas b.s_deployment in
  let config = Deployment.config b.s_deployment in
  let votes = Hashtbl.create 8 in
  Array.iter
    (fun (r : Deployment.replica_bundle) ->
      if Prime.Replica.is_running r.Deployment.r_replica then begin
        let root = Scada.State.digest_root (Scada.Master.state r.Deployment.r_master) in
        let count, sample =
          match Hashtbl.find_opt votes root with
          | Some (c, sample) -> (c + 1, sample)
          | None -> (1, r.Deployment.r_master)
        in
        Hashtbl.replace votes root (count, sample)
      end)
    replicas;
  let winner =
    Hashtbl.fold
      (fun root (count, sample) acc ->
        match acc with
        | Some (_, best, _) when best >= count -> acc
        | _ -> Some (root, count, sample))
      votes None
  in
  match winner with
  | Some (root, count, master) when count >= config.Prime.Config.f + 1 ->
      let state = Scada.Master.state master in
      let scenario = Scada.State.scenario state in
      let breakers = Plc.Power.all_breakers scenario in
      let closed =
        List.length (List.filter (fun name -> Scada.State.reported_closed state name) breakers)
      in
      {
        o_shard = s;
        o_label = b.s_label;
        o_agreed = true;
        o_digest = Crypto.Sha256.to_hex root;
        o_exec_frontier = exec_frontier t s;
        o_breakers = List.length breakers;
        o_closed = closed;
        o_energized = Scada.State.energized_tri state;
      }
  | _ ->
      {
        o_shard = s;
        o_label = b.s_label;
        o_agreed = false;
        o_digest = "";
        o_exec_frontier = exec_frontier t s;
        o_breakers = Plc.Power.total_breakers (Scada.Shard.sub_scenario t.map s);
        o_closed = 0;
        o_energized = [];
      }

(* Grid-wide overview: one aggregated query per shard. *)
let overview t = List.init (Array.length t.shard_bundles) (fun s -> query_shard t s)

(* --- command routing -------------------------------------------------------- *)

(* Route a supervisory command to the shard owning the breaker; it is
   issued from that shard's first HMI, flowing through the normal
   ordered path and the proxies' f + 1 actuation gate. *)
let route_command t ~breaker ~close =
  match Scada.Shard.shard_of_breaker t.map breaker with
  | None -> Error (Printf.sprintf "unknown breaker %s" breaker)
  | Some s -> (
      let hmis = Deployment.hmis (deployment t s) in
      if Array.length hmis = 0 then Error (Printf.sprintf "shard %d has no HMI" s)
      else begin
        ignore (Scada.Hmi.command hmis.(0).Deployment.h_hmi ~breaker ~close);
        Ok s
      end)

let find_breaker t name =
  match Scada.Shard.shard_of_breaker t.map name with
  | None -> None
  | Some s -> Deployment.find_breaker (deployment t s) name
