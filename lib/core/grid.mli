(** Sharded grid: one full Spire deployment per substation shard on a
    shared simulation engine, with a thin coordination tier for
    cross-shard reads. Shards share nothing on the wire, so aggregate
    switch bandwidth and HMI push fan-out scale with the shard count. *)

type shard = { s_index : int; s_label : string; s_deployment : Deployment.t }

type t

(** Build one deployment per shard from the round-robin shard map of
    [scenario]. Options are passed to every {!Deployment.create};
    probes are labelled "@sNN" per shard. *)
val create :
  ?hardened:bool ->
  ?n_hmis:int ->
  ?proxy_poll_period:float ->
  ?dnp3_plcs:string list ->
  ?switch_bandwidth:float ->
  engine:Sim.Engine.t ->
  trace:Sim.Trace.t ->
  config:Prime.Config.t ->
  shards:int ->
  Plc.Power.scenario ->
  t

val engine : t -> Sim.Engine.t

val map : t -> Scada.Shard.t

val shard_count : t -> int

val shards : t -> shard array

(** Raises [Invalid_argument] out of range. *)
val deployment : t -> int -> Deployment.t

(** Furthest exec_seq any running replica of shard [s] has reached. *)
val exec_frontier : t -> int -> int

type shard_overview = {
  o_shard : int;
  o_label : string;
  o_agreed : bool;  (** f + 1 of the shard's replicas agreed on the digest *)
  o_digest : string;  (** the agreed digest ("" without agreement) *)
  o_exec_frontier : int;
  o_breakers : int;
  o_closed : int;
  o_energized : (string * [ `Energized | `De_energized | `Unknown ]) list;
      (** Tri-state per feed: paths crossing breakers this shard does not
          track report [`Unknown] rather than being conflated with
          de-energized. *)
}

(** Grid-wide overview: ONE aggregated query per shard (not one round
    trip per device), each accepted only when f + 1 of that shard's
    replicas agree on the application-state digest. *)
val overview : t -> shard_overview list

(** Route a supervisory command to the shard owning [breaker]; issued
    through that shard's first HMI and the normal ordered path. Returns
    the shard index. *)
val route_command : t -> breaker:string -> close:bool -> (int, string) result

(** Locate a breaker via the shard map. *)
val find_breaker :
  t -> string -> (Deployment.proxy_bundle * Plc.Breaker.t) option
