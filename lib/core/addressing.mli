(** IP plan for the testbed networks (the Fig. 3 architecture): the
    isolated Spines Internal network, the Spines External operations
    network, per-PLC proxy cables, the enterprise network and the
    commercial operations network. *)

val internal_subnet : Netbase.Addr.Ip.t

val replica_internal : int -> Netbase.Addr.Ip.t

val external_subnet : Netbase.Addr.Ip.t

val replica_external : int -> Netbase.Addr.Ip.t

val proxy_external : int -> Netbase.Addr.Ip.t

(** HMIs fill 10.0.2.201+, then spill into an unused block of the same
    /24; raises [Invalid_argument] past 124 clients. *)
val hmi_external : int -> Netbase.Addr.Ip.t

(** Dedicated proxy-to-PLC wires: one /24 per pair. *)
val cable_proxy : int -> Netbase.Addr.Ip.t

val cable_plc : int -> Netbase.Addr.Ip.t

val enterprise_subnet : Netbase.Addr.Ip.t

val historian_ip : Netbase.Addr.Ip.t

val workstation_ip : Netbase.Addr.Ip.t

val enterprise_gateway : Netbase.Addr.Ip.t

val commercial_subnet : Netbase.Addr.Ip.t

val commercial_master : Netbase.Addr.Ip.t

val commercial_backup : Netbase.Addr.Ip.t

val commercial_hmi : Netbase.Addr.Ip.t

val commercial_plc : int -> Netbase.Addr.Ip.t

val commercial_gateway : Netbase.Addr.Ip.t

val spire_ops_gateway : Netbase.Addr.Ip.t

val spines_internal_port : int

val spines_external_port : int

(** Client-facing session port on the external daemons, and the local
    port session clients answer on. *)
val spines_session_port : int

val session_client_port : int
