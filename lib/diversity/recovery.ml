(* Proactive recovery scheduler.

   Periodically takes each replica down, restores it to a clean state and
   brings it back with a freshly compiled diverse variant. While one
   replica is recovering the system must keep operating, which is why the
   power-plant deployment used n = 3f + 2k + 1 = 6 replicas (k = 1).

   The scheduler rotates round-robin: one replica at a time, every
   [rotation_period] seconds, down for [downtime] seconds. The exposure
   window of any single compromised variant is therefore bounded by
   n * rotation_period.

   [disk_policy] decides what happens to the machine's durable store
   across the restart: a full diverse reinstall wipes the disk (the
   replica rejoins by state transfer), while an in-place restart keeps it
   (the replica replays its checkpoint + WAL and needs only the suffix
   from its peers). [Alternate] exercises both paths deterministically. *)

type disk = Disk_wiped | Disk_intact

type disk_policy = Wipe_always | Keep_always | Alternate

type t = {
  engine : Sim.Engine.t;
  trace : Sim.Trace.t;
  rng : Sim.Rng.t;
  n : int;
  rotation_period : float;
  downtime : float;
  disk_policy : disk_policy;
  take_down : int -> unit;
  bring_up : int -> Variant.t -> disk:disk -> unit;
  variants : Variant.t array;
  mutable next_replica : int;
  mutable timer : Sim.Engine.timer option;
  mutable recoveries : int;
  mutable recovering : int option;
}

let create ?(disk_policy = Wipe_always) ~engine ~trace ~rng ~n ~rotation_period ~downtime
    ~take_down ~bring_up () =
  if rotation_period <= downtime then
    invalid_arg "Recovery.create: rotation_period must exceed downtime";
  {
    engine;
    trace;
    rng;
    n;
    disk_policy;
    rotation_period;
    downtime;
    take_down;
    bring_up;
    variants = Array.init n (fun _ -> Variant.compile rng);
    next_replica = 0;
    timer = None;
    recoveries = 0;
    recovering = None;
  }

let current_variant t replica = t.variants.(replica)

let recoveries t = t.recoveries

let recovering t = t.recovering

(* Bound on how long one compromised variant can persist. *)
let max_exposure t = float_of_int t.n *. t.rotation_period

let disk_for t =
  match t.disk_policy with
  | Wipe_always -> Disk_wiped
  | Keep_always -> Disk_intact
  | Alternate -> if t.recoveries mod 2 = 0 then Disk_wiped else Disk_intact

let rotate_once t =
  let replica = t.next_replica in
  t.next_replica <- (t.next_replica + 1) mod t.n;
  t.recovering <- Some replica;
  let disk = disk_for t in
  t.recoveries <- t.recoveries + 1;
  Sim.Trace.record t.trace ~time:(Sim.Engine.now t.engine) ~category:"recovery"
    "proactive recovery: taking replica %d down" replica;
  t.take_down replica;
  ignore
    (Sim.Engine.schedule t.engine ~delay:t.downtime (fun () ->
         let variant = Variant.compile t.rng in
         t.variants.(replica) <- variant;
         t.recovering <- None;
         Sim.Trace.record t.trace ~time:(Sim.Engine.now t.engine) ~category:"recovery"
           "proactive recovery: replica %d back with fresh variant (disk %s)" replica
           (match disk with Disk_wiped -> "wiped" | Disk_intact -> "intact");
         t.bring_up replica variant ~disk))

let start t =
  if t.timer <> None then invalid_arg "Recovery.start: already running";
  t.timer <- Some (Sim.Engine.every t.engine ~period:t.rotation_period (fun () -> rotate_once t))

let stop t =
  match t.timer with
  | Some timer ->
      Sim.Engine.cancel_timer t.engine timer;
      t.timer <- None
  | None -> ()
