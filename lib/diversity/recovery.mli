(** Proactive recovery scheduler: round-robin, one replica at a time,
    each restart installing a freshly compiled diverse variant. The
    exposure window of any compromised variant is bounded by
    n * rotation_period. *)

type t

(** What a restart does to the machine's durable store. *)
type disk = Disk_wiped | Disk_intact

(** [Wipe_always] — full diverse reinstall, replica rejoins by state
    transfer (the historical default). [Keep_always] — in-place restart,
    replica replays its local checkpoint + WAL. [Alternate] — exercise
    both paths deterministically, wiped first. *)
type disk_policy = Wipe_always | Keep_always | Alternate

(** Raises [Invalid_argument] unless rotation_period > downtime. *)
val create :
  ?disk_policy:disk_policy ->
  engine:Sim.Engine.t ->
  trace:Sim.Trace.t ->
  rng:Sim.Rng.t ->
  n:int ->
  rotation_period:float ->
  downtime:float ->
  take_down:(int -> unit) ->
  bring_up:(int -> Variant.t -> disk:disk -> unit) ->
  unit ->
  t

val current_variant : t -> int -> Variant.t

val recoveries : t -> int

(** The replica currently down for recovery, if any. *)
val recovering : t -> int option

(** Upper bound on one compromised variant's lifetime. *)
val max_exposure : t -> float

val start : t -> unit

val stop : t -> unit
