(* Minimal JSON: an AST, a printer, and a parser.

   The telemetry exporter and the bench --json path need exactly this
   much — no external dependency is warranted. Numbers are floats (JSON
   has one number type); integral values print without a fractional part
   so counters stay readable. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_num buf x =
  (* JSON has no NaN/Infinity literals; emit null rather than a token no
     parser accepts (empty-histogram percentiles are NaN, for one). *)
  if Float.is_nan x || Float.abs x = Float.infinity then Buffer.add_string buf "null"
  else if Float.is_integer x |> not || Float.abs x >= 1e15 then
    (* %.12g survives a round-trip for every float we emit. *)
    Buffer.add_string buf (Printf.sprintf "%.12g" x)
  else Buffer.add_string buf (Printf.sprintf "%.0f" x)

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num x -> add_num buf x
  | Str s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.contents buf

(* Pretty printer with two-space indentation, for human-inspected bench
   output files. *)
let rec write_pretty buf indent = function
  | (Null | Bool _ | Num _ | Str _) as v -> write buf v
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      let pad = String.make ((indent + 1) * 2) ' ' in
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          write_pretty buf (indent + 1) item)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (indent * 2) ' ');
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      let pad = String.make ((indent + 1) * 2) ' ' in
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\": ";
          write_pretty buf (indent + 1) v)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (indent * 2) ' ');
      Buffer.add_char buf '}'

let to_string_pretty t =
  let buf = Buffer.create 1024 in
  write_pretty buf 0 t;
  Buffer.contents buf

exception Parse_error of string

let parse s =
  let len = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let n = String.length word in
    if !pos + n <= len && String.sub s !pos n = word then begin
      pos := !pos + n;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> (
            if !pos >= len then fail "unterminated escape";
            let e = s.[!pos] in
            advance ();
            match e with
            | '"' | '\\' | '/' ->
                Buffer.add_char buf e;
                go ()
            | 'n' ->
                Buffer.add_char buf '\n';
                go ()
            | 'r' ->
                Buffer.add_char buf '\r';
                go ()
            | 't' ->
                Buffer.add_char buf '\t';
                go ()
            | 'b' ->
                Buffer.add_char buf '\b';
                go ()
            | 'f' ->
                Buffer.add_char buf '\012';
                go ()
            | 'u' ->
                if !pos + 4 > len then fail "short \\u escape";
                let hex = String.sub s !pos 4 in
                pos := !pos + 4;
                let code =
                  try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
                in
                (* UTF-8 encode the code point (BMP only — enough for the
                   escapes we ourselves emit, which are all < 0x20). *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end;
                go ()
            | _ -> fail "bad escape")
        | c ->
            Buffer.add_char buf c;
            go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < len && is_num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some x -> x
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing input";
  v

let parse_opt s = try Some (parse s) with Parse_error _ -> None

(* Accessors used by the exporters and tests. *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let num = function Num x -> Some x | _ -> None

let str = function Str s -> Some s | _ -> None
