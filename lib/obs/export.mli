(** Telemetry export: JSONL event/metric dump plus helpers for the
    [--json] machine-readable bench output. *)

(** A [Sim.Stats.Summary] as a JSON object with [count] and, when
    non-empty, [mean]/[stddev]/[min]/[p50]/[p99]/[max]. *)
val summary_to_json : Sim.Stats.Summary.t -> Json.t

(** One self-describing JSON line per counter, gauge, histogram, span,
    and completed pipeline instance. *)
val jsonl_of_registry : Registry.t -> string list

val write_jsonl : out_channel -> Registry.t -> unit

val jsonl_to_string : Registry.t -> string

(** Parse a JSONL dump into [(type, json)] rows; raises
    [Json.Parse_error] on malformed lines. *)
val parse_jsonl : string -> (string * Json.t) list

(** The Section-V reaction-time decomposition as
    [(label, from_stage, to_stage)]; consecutive stages telescope, so
    their sums equal flip→repaint exactly. *)
val reaction_stages : (string * string * string) list

val end_to_end_stage : string * string * string

(** [reaction_stages] plus the end-to-end pair, evaluated over a
    registry's completed pipeline instances. *)
val reaction_breakdown : Registry.t -> (string * Sim.Stats.Summary.t) list

(** Breakdown as a JSON object keyed by stage label. *)
val breakdown_json : (string * Sim.Stats.Summary.t) list -> Json.t
