(** Telemetry registry: counters, gauges, histograms, and the span store
    behind one default-off [enabled] switch. Recording functions cost a
    load and a branch when disabled, and instrumentation is purely
    passive, so telemetry off leaves the deterministic simulation
    schedule bit-identical. *)

type t

(** Standard SCADA pipeline stage names, in causal order. *)

val stage_flip : string
val stage_report : string
val stage_accept : string
val stage_preorder : string
val stage_execute : string
val stage_push : string
val stage_repaint : string
val stage_command : string
val stage_actuate : string

val pipeline_opens : string list
val pipeline_closes : string list

(** Fresh registry, disabled, with the standard pipeline stage
    configuration unless overridden. [?span_capacity] bounds the span
    store's retained completed instances (see
    {!Span.create_store}). *)
val create : ?span_capacity:int -> ?opens:string list -> ?closes:string list -> unit -> t

(** The global registry the stack's instrumentation records into. *)
val default : t

val enabled : t -> bool

val set_enabled : t -> bool -> unit

(** {2 Recording — no-ops while disabled} *)

val incr : ?by:int -> t -> string -> unit

val set_gauge : t -> string -> float -> unit

(** Observe into a named histogram, created on first use (with [edges]
    if given, default edges otherwise). *)
val observe : ?edges:float array -> t -> string -> float -> unit

(** Record a pipeline stage mark (see {!Span.mark}). *)
val mark : t -> trace:string -> stage:string -> time:float -> unit

(** Open a generic span; returns 0 when disabled. *)
val span_start : t -> name:string -> ?parent:int -> time:float -> unit -> int

val span_finish : t -> int -> time:float -> unit

(** {2 Reading} *)

val counter : t -> string -> int

val gauge : t -> string -> float option

val histogram : t -> string -> Histogram.t option

(** Sorted by name. *)
val counters : t -> (string * int) list

val gauges : t -> (string * float) list

val histograms : t -> (string * Histogram.t) list

val spans : t -> Span.store

(** Drop all recorded data (keeps the enabled flag and stage config). *)
val reset : t -> unit

(** [with_enabled t f]: reset [t], enable it, run [f], restore the
    previous enabled state (even on exceptions). *)
val with_enabled : t -> (unit -> 'a) -> 'a
