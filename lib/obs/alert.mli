(** Edge-triggered alert engine over health probes and flight events.

    Sample rules fire once on the false->true edge of a condition over a
    probe sample and re-arm when it clears; event rules fire when enough
    flight events of the watched kinds land inside a sliding window,
    subject to a cooldown. Alarms are logged and echoed into the flight
    recorder (subsystem ["alert"], severity [Alarm]); all inputs are
    deterministic, so same-seed campaigns alarm identically. *)

type alarm = { al_time : float; al_rule : string; al_detail : string }

(** A full probe sample, as returned by [Probe.sample]. *)
type sample = (string * Probe.snapshot) list

type sample_rule

type event_rule

(** [sample_rule ~name check]: [check] returns [Some detail] while the
    condition holds; an alarm fires only on the edge. *)
val sample_rule : name:string -> (sample -> string option) -> sample_rule

(** [event_rule ~name ~kinds ()] alarms when [threshold] (default 1)
    events whose kind is in [kinds] arrive within [window] seconds
    (default 1.0), at most once per [cooldown] seconds (default 5.0). *)
val event_rule :
  name:string ->
  kinds:string list ->
  ?threshold:int ->
  ?window:float ->
  ?cooldown:float ->
  unit ->
  event_rule

(** Durable store more than [max_windows] (default 2) checkpoint windows
    behind its replica's execution frontier. *)
val checkpoint_lag_rule : ?max_windows:float -> unit -> sample_rule

(** Total Spines drops grew by at least [min_drops] (default 5) within
    the last [window] (default 20) evaluations. *)
val sustained_drops_rule : ?min_drops:float -> ?window:int -> unit -> sample_rule

(** Running replicas' execution frontiers span more than [max_spread]
    (default 5) sequence numbers. *)
val divergence_rule : ?max_spread:float -> unit -> sample_rule

(** Any Prime replica reports [running = 0]. *)
val replica_down_rule : unit -> sample_rule

val default_sample_rules : unit -> sample_rule list

(** Malformed frames, leader suspicion, store faults (replay gap /
    corrupt WAL / bad checkpoint / disk wipe), and chi-square bad-data
    flags ([fdia.flagged]). *)
val default_event_rules : unit -> event_rule list

type t

(** Fresh engine; default rules unless overridden. When [flight] is
    given the engine subscribes to its event stream (driving event
    rules) and echoes alarms back into it. *)
val create :
  ?sample_rules:sample_rule list ->
  ?event_rules:event_rule list ->
  ?flight:Flight.t ->
  unit ->
  t

(** Feed one flight event through the event rules (done automatically
    for a subscribed recorder). *)
val observe_event : t -> Flight.event -> unit

(** Evaluate every sample rule against a probe sample taken at [time]. *)
val evaluate : t -> time:float -> sample -> unit

(** Alarms raised so far, oldest first. *)
val alarms : t -> alarm list

val alarm_count : t -> int

(** Earliest alarm at or after [time] — the detection-latency anchor. *)
val first_alarm_after : t -> float -> alarm option

val alarm_to_json : alarm -> Json.t
