(** Fixed-bucket latency histogram: O(log buckets), allocation-free
    [observe], approximate percentiles from bucket upper edges. *)

type t

(** Default edges cover millisecond-scale SCADA latencies (1ms – 10s). *)
val default_edges : float array

(** [create ?edges ()] with strictly-increasing upper-bound [edges]; an
    implicit overflow bucket catches anything beyond the last edge.
    Raises [Invalid_argument] on empty or non-increasing edges. *)
val create : ?edges:float array -> unit -> t

(** Record one observation (x lands in the first bucket with
    [x <= edge]). *)
val observe : t -> float -> unit

val count : t -> int

val sum : t -> float

val mean : t -> float

val min : t -> float

val max : t -> float

(** [(upper_edge, count)] pairs, overflow last with edge [infinity]. *)
val buckets : t -> (float * int) list

(** Approximate nearest-rank percentile: the upper edge of the bucket
    containing the rank (observed max for the overflow bucket). Raises
    [Invalid_argument] outside [0, 100]; NaN when empty. *)
val percentile : t -> float -> float

val reset : t -> unit

val to_json : t -> Json.t
