(** Minimal JSON AST, printer, and parser for the telemetry export path.
    JSON has a single number type, so all numbers are floats; integral
    values print without a fractional part. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Compact single-line rendering. *)
val to_string : t -> string

(** Two-space-indented rendering for files meant to be read by humans. *)
val to_string_pretty : t -> string

exception Parse_error of string

(** Parse a complete JSON document; raises [Parse_error] on malformed
    input or trailing garbage. *)
val parse : string -> t

val parse_opt : string -> t option

(** [member key json] is the field [key] of an object, [None] otherwise. *)
val member : string -> t -> t option

val num : t -> float option

val str : t -> string option
