(** Flight recorder: a bounded, allocation-conscious ring buffer of
    structured, severity-tagged protocol events, dumped as JSONL on
    demand (and automatically by the chaos runner when an invariant
    trips). Recording is gated on one [enabled] flag and purely passive,
    so a disabled recorder leaves the deterministic schedule
    bit-identical. *)

type severity = Info | Warn | Alarm

val severity_label : severity -> string

type event = {
  ev_seq : int; (* 1-based position in the run's total event order *)
  ev_time : float;
  ev_severity : severity;
  ev_subsystem : string;
  ev_kind : string;
  ev_detail : string;
}

type t

(** Fresh recorder, disabled, retaining at most [capacity] events
    (default 8192). Raises [Invalid_argument] on [capacity <= 0]. *)
val create : ?capacity:int -> unit -> t

(** The global recorder the stack's instrumentation records into. *)
val default : t

val enabled : t -> bool

val set_enabled : t -> bool -> unit

(** [recording t = enabled t]: call sites guard detail-string
    construction with this so the disabled path allocates nothing. *)
val recording : t -> bool

(** Install the timestamp source used when [record] is called without
    [?time] — the enabling harness points it at its simulation engine. *)
val set_clock : t -> (unit -> float) -> unit

(** Subscribe to every recorded event (alert engines). Subscribers run
    in registration order, synchronously, only while enabled. *)
val on_event : t -> (event -> unit) -> unit

(** Record one event; no-op while disabled. Without [?time] the
    installed clock is consulted. *)
val record :
  t -> ?time:float -> severity:severity -> subsystem:string -> kind:string -> string -> unit

(** Drop buffered events and counts (keeps subscribers and clock). *)
val clear : t -> unit

(** [clear] plus subscriber and clock teardown — a campaign's full
    pre-run reset. *)
val reset : t -> unit

(** Events ever recorded (the ring may retain fewer). *)
val total : t -> int

val retained : t -> int

val warn_count : t -> int

val alarm_count : t -> int

(** Retained events, oldest first. *)
val events : t -> event list

val event_to_json : event -> Json.t

(** One JSON object per line, oldest first — byte-identical across
    same-seed runs. *)
val to_jsonl : t -> string

val write_jsonl : out_channel -> t -> unit

val dump_file : t -> path:string -> unit
