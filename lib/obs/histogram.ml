(* Fixed-bucket latency histogram.

   Bucket edges are upper bounds: observation x lands in the first bucket
   whose edge satisfies x <= edge, or in the overflow bucket past the last
   edge. Fixed buckets keep [observe] O(log buckets) with zero allocation,
   which is what lets the registry stay near-free on hot protocol paths.
   Exact sums/min/max ride along so the exporter can cross-check against
   Sim.Stats summaries. *)

type t = {
  edges : float array; (* ascending upper bounds *)
  counts : int array; (* length = edges + 1; last is overflow *)
  mutable count : int;
  mutable sum : float;
  mutable min : float;
  mutable max : float;
}

(* Default edges suit millisecond-scale SCADA latencies: 1ms .. 10s. *)
let default_edges =
  [| 1.0; 2.0; 5.0; 10.0; 20.0; 50.0; 100.0; 200.0; 500.0; 1000.0; 2000.0; 5000.0; 10000.0 |]

let create ?(edges = default_edges) () =
  if Array.length edges = 0 then invalid_arg "Histogram.create: no edges";
  Array.iteri
    (fun i e ->
      if i > 0 && e <= edges.(i - 1) then
        invalid_arg "Histogram.create: edges must be strictly increasing")
    edges;
  {
    edges = Array.copy edges;
    counts = Array.make (Array.length edges + 1) 0;
    count = 0;
    sum = 0.0;
    min = infinity;
    max = neg_infinity;
  }

(* Index of the first edge >= x, or overflow. *)
let bucket_index t x =
  let n = Array.length t.edges in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if x <= t.edges.(mid) then hi := mid else lo := mid + 1
  done;
  !lo

let observe t x =
  t.counts.(bucket_index t x) <- t.counts.(bucket_index t x) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum +. x;
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let count t = t.count

let sum t = t.sum

let mean t = if t.count = 0 then nan else t.sum /. float_of_int t.count

let min t = if t.count = 0 then nan else t.min

let max t = if t.count = 0 then nan else t.max

let buckets t =
  Array.to_list
    (Array.mapi
       (fun i c ->
         let edge = if i < Array.length t.edges then t.edges.(i) else infinity in
         (edge, c))
       t.counts)

(* Approximate nearest-rank percentile: the upper edge of the bucket that
   contains the rank. The overflow bucket reports the observed max. *)
let percentile t p =
  if t.count = 0 then nan
  else if p < 0.0 || p > 100.0 then invalid_arg "Histogram.percentile: p out of [0,100]"
  else begin
    let rank = Stdlib.max 1 (int_of_float (ceil (p /. 100.0 *. float_of_int t.count))) in
    let n = Array.length t.counts in
    let rec go i seen =
      if i >= n - 1 then t.max
      else
        let seen = seen + t.counts.(i) in
        if seen >= rank then t.edges.(i) else go (i + 1) seen
    in
    go 0 0
  end

let reset t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.count <- 0;
  t.sum <- 0.0;
  t.min <- infinity;
  t.max <- neg_infinity

let to_json t =
  let open Json in
  let buckets_json =
    List.map
      (fun (edge, c) ->
        let le = if edge = infinity then Str "inf" else Num edge in
        Obj [ ("le", le); ("count", Num (float_of_int c)) ])
      (buckets t)
  in
  Obj
    [
      ("count", Num (float_of_int t.count));
      ("sum", Num t.sum);
      ("min", if t.count = 0 then Null else Num t.min);
      ("max", if t.count = 0 then Null else Num t.max);
      ("buckets", List buckets_json);
    ]
