(* Telemetry registry: named counters, gauges, fixed-bucket histograms,
   and the span store, behind one [enabled] switch.

   The switch is the whole design: every record function first checks
   [enabled] and returns — a single load and branch — so the instrumented
   protocol hot paths cost nothing measurable when telemetry is off.
   Instrumentation is purely passive (no engine events, no RNG draws, no
   message changes), so a disabled registry leaves the deterministic
   schedule bit-identical to an uninstrumented build.

   [default] is the global registry the stack records into; benches and
   tests can also create private registries. *)

(* The standard SCADA pipeline stages, in causal order. *)
let stage_flip = "flip"
let stage_report = "proxy.report"
let stage_accept = "prime.accept"
let stage_preorder = "prime.preorder"
let stage_execute = "prime.execute"
let stage_push = "master.push"
let stage_repaint = "hmi.repaint"
let stage_command = "hmi.command"
let stage_actuate = "proxy.actuate"

let pipeline_opens = [ stage_flip; stage_command ]

let pipeline_closes = [ stage_repaint; stage_actuate ]

type t = {
  mutable enabled : bool;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  histograms : (string, Histogram.t) Hashtbl.t;
  spans : Span.store;
}

let create ?span_capacity ?(opens = pipeline_opens) ?(closes = pipeline_closes) () =
  {
    enabled = false;
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
    spans = Span.create_store ?capacity:span_capacity ~opens ~closes ();
  }

let default = create ()

let enabled t = t.enabled

let set_enabled t on = t.enabled <- on

(* Recording — all early-return when disabled. *)

let incr ?(by = 1) t name =
  if t.enabled then
    match Hashtbl.find_opt t.counters name with
    | Some r -> r := !r + by
    | None -> Hashtbl.replace t.counters name (ref by)

let set_gauge t name value =
  if t.enabled then
    match Hashtbl.find_opt t.gauges name with
    | Some r -> r := value
    | None -> Hashtbl.replace t.gauges name (ref value)

let observe ?edges t name value =
  if t.enabled then begin
    let h =
      match Hashtbl.find_opt t.histograms name with
      | Some h -> h
      | None ->
          let h = Histogram.create ?edges () in
          Hashtbl.replace t.histograms name h;
          h
    in
    Histogram.observe h value
  end

let mark t ~trace ~stage ~time = if t.enabled then Span.mark t.spans ~trace ~stage ~time

let span_start t ~name ?parent ~time () =
  if t.enabled then Span.start t.spans ~name ?parent ~time () else 0

let span_finish t id ~time = if t.enabled then Span.finish t.spans id ~time

(* Reading *)

let counter t name = match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let gauge t name = Option.map ( ! ) (Hashtbl.find_opt t.gauges name)

let histogram t name = Hashtbl.find_opt t.histograms name

let counters t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let gauges t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.gauges []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let histograms t =
  Hashtbl.fold (fun k h acc -> (k, h) :: acc) t.histograms []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let spans t = t.spans

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.gauges;
  Hashtbl.reset t.histograms;
  Span.reset t.spans

(* Run [f] with [t] enabled, restoring the previous state and returning
   [f]'s result. The registry is reset on entry so the window observes
   only its own events. *)
let with_enabled t f =
  let previous = t.enabled in
  reset t;
  t.enabled <- true;
  Fun.protect ~finally:(fun () -> t.enabled <- previous) f
