(* Flight recorder: a bounded ring buffer of structured protocol events.

   Subsystems record severity-tagged events (view changes, suspicions,
   queue overflows, checkpoint fires, disk faults ...) into the default
   recorder; a chaos or red-team campaign dumps the buffer as JSONL when
   an invariant trips, so every verdict carries the narrative of the
   events leading up to it.

   The recorder follows the registry's discipline: recording is gated on
   one [enabled] flag (a load and a branch when off) and is purely
   passive — no engine events, no RNG draws, no message changes — so a
   disabled recorder leaves the deterministic schedule bit-identical.
   Call sites that must build a detail string guard the construction with
   [recording] so the off path allocates nothing.

   Storage mirrors [Sim.Trace]: a pre-sized ring that overwrites the
   oldest event once full. [total] counts every event ever recorded.

   Timestamps come from a [clock] closure installed by whichever harness
   enables the recorder (pointing at its simulation engine); subsystems
   with engine access may pass [?time] explicitly instead. Everything an
   event carries is a deterministic function of the simulation, so two
   same-seed runs dump byte-identical JSONL. *)

type severity = Info | Warn | Alarm

let severity_label = function Info -> "info" | Warn -> "warn" | Alarm -> "alarm"

type event = {
  ev_seq : int; (* 1-based total order over the whole run *)
  ev_time : float;
  ev_severity : severity;
  ev_subsystem : string;
  ev_kind : string;
  ev_detail : string;
}

type t = {
  mutable enabled : bool;
  mutable clock : unit -> float;
  capacity : int;
  mutable buf : event array;
  mutable len : int;
  mutable start : int; (* ring read position *)
  mutable total : int; (* events ever recorded *)
  mutable warns : int;
  mutable alarms : int;
  mutable subscribers : (event -> unit) list; (* registration order *)
}

let dummy =
  { ev_seq = 0; ev_time = 0.0; ev_severity = Info; ev_subsystem = ""; ev_kind = ""; ev_detail = "" }

let default_capacity = 8192

let create ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Flight.create: capacity must be positive";
  {
    enabled = false;
    clock = (fun () -> 0.0);
    capacity;
    buf = Array.make (Stdlib.min capacity 64) dummy;
    len = 0;
    start = 0;
    total = 0;
    warns = 0;
    alarms = 0;
    subscribers = [];
  }

let default = create ()

let enabled t = t.enabled

let set_enabled t on = t.enabled <- on

(* The hot-path guard: sites wrap detail-string construction in
   [if recording t then ...] so a disabled recorder costs one branch. *)
let recording t = t.enabled

let set_clock t clock = t.clock <- clock

let on_event t f = t.subscribers <- t.subscribers @ [ f ]

let clear t =
  t.len <- 0;
  t.start <- 0;
  t.total <- 0;
  t.warns <- 0;
  t.alarms <- 0

(* Full reset: harnesses call this before a campaign so the buffer and
   subscriber list hold only that campaign's observers. *)
let reset t =
  clear t;
  t.subscribers <- [];
  t.clock <- (fun () -> 0.0)

let grow t =
  let cap = Array.length t.buf in
  let target = Stdlib.min t.capacity (cap * 2) in
  if target > cap then begin
    let buf = Array.make target dummy in
    Array.blit t.buf 0 buf 0 t.len;
    t.buf <- buf
  end

let push t event =
  if t.len = t.capacity then begin
    t.buf.(t.start) <- event;
    t.start <- (t.start + 1) mod t.capacity
  end
  else begin
    if t.len = Array.length t.buf then grow t;
    t.buf.((t.start + t.len) mod Array.length t.buf) <- event;
    t.len <- t.len + 1
  end

let record t ?time ~severity ~subsystem ~kind detail =
  if t.enabled then begin
    let time = match time with Some x -> x | None -> t.clock () in
    t.total <- t.total + 1;
    (match severity with
    | Info -> ()
    | Warn -> t.warns <- t.warns + 1
    | Alarm -> t.alarms <- t.alarms + 1);
    let event =
      {
        ev_seq = t.total;
        ev_time = time;
        ev_severity = severity;
        ev_subsystem = subsystem;
        ev_kind = kind;
        ev_detail = detail;
      }
    in
    push t event;
    List.iter (fun f -> f event) t.subscribers
  end

(* Reading *)

let total t = t.total

let retained t = t.len

let warn_count t = t.warns

let alarm_count t = t.alarms

let fold t ~init ~f =
  let cap = Array.length t.buf in
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.buf.((t.start + i) mod cap)
  done;
  !acc

let events t = List.rev (fold t ~init:[] ~f:(fun acc e -> e :: acc))

(* JSONL *)

let event_to_json e =
  Json.Obj
    [
      ("seq", Json.Num (float_of_int e.ev_seq));
      ("time", Json.Num e.ev_time);
      ("severity", Json.Str (severity_label e.ev_severity));
      ("subsystem", Json.Str e.ev_subsystem);
      ("kind", Json.Str e.ev_kind);
      ("detail", Json.Str e.ev_detail);
    ]

let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Json.to_string (event_to_json e));
      Buffer.add_char buf '\n')
    (events t);
  Buffer.contents buf

let write_jsonl oc t = output_string oc (to_jsonl t)

let dump_file t ~path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_jsonl oc t)
