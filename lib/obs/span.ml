(* Causal span tracing.

   Two layers:

   - Generic spans: named intervals with an optional parent, opened with
     [start] and closed with [finish]. These model nested work (a view
     change containing its retransmissions, a bench experiment containing
     its runs).

   - Pipeline instances: the SCADA data path is a fixed stage sequence
     (flip -> proxy.report -> prime.accept -> prime.preorder ->
     prime.execute -> hmi.repaint) correlated by an out-of-band trace key
     — the canonical Scada.Op encoding, which already flows end to end
     unchanged. Embedding ids in messages would perturb the deterministic
     schedule (different sizes, different dedup), so instrumentation
     points instead call [mark] with the key they already have.

     An *opening* stage begins a new instance for its key (abandoning any
     still-open one — a flip that never reached the HMI); a *closing*
     stage completes it. Every stage records only its first occurrence
     per instance: replicas re-broadcast and retransmit, but causally the
     stage happened when it first happened. Marks with no open instance
     (e.g. periodic status polls that aren't part of a watched flip) are
     counted and dropped. *)

(* --- Generic parent/child spans ------------------------------------- *)

type span = {
  id : int;
  name : string;
  parent : int option;
  start_time : float;
  mutable end_time : float option;
}

(* --- Pipeline instances --------------------------------------------- *)

type instance = {
  trace : string;
  mutable marks : (string * float) list; (* newest first while building *)
  mutable complete : bool;
}

type store = {
  opens : (string, unit) Hashtbl.t;
  closes : (string, unit) Hashtbl.t;
  active : (string, instance) Hashtbl.t; (* open instance per trace key *)
  capacity : int option; (* retention cap on completed instances *)
  mutable completed_buf : instance array; (* ring, mirrors Sim.Trace *)
  mutable completed_len : int;
  mutable completed_start : int;
  mutable completed_n : int; (* instances ever completed *)
  mutable abandoned : int; (* re-opened before closing *)
  mutable orphans : int; (* marks with no open instance *)
  spans : (int, span) Hashtbl.t;
  mutable next_span : int;
}

let dummy_instance = { trace = ""; marks = []; complete = false }

let create_store ?capacity ?(opens = []) ?(closes = []) () =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Span.create_store: capacity must be positive"
  | _ -> ());
  let table keys =
    let h = Hashtbl.create 8 in
    List.iter (fun k -> Hashtbl.replace h k ()) keys;
    h
  in
  {
    opens = table opens;
    closes = table closes;
    active = Hashtbl.create 64;
    capacity;
    completed_buf = Array.make (match capacity with Some c -> Stdlib.min c 64 | None -> 64) dummy_instance;
    completed_len = 0;
    completed_start = 0;
    completed_n = 0;
    abandoned = 0;
    orphans = 0;
    spans = Hashtbl.create 64;
    next_span = 0;
  }

(* Append a completed instance, overwriting the oldest once the
   retention cap is reached; an uncapped store just keeps growing. *)
let push_completed store inst =
  let cap_reached = match store.capacity with Some c -> store.completed_len = c | None -> false in
  if cap_reached then begin
    store.completed_buf.(store.completed_start) <- inst;
    store.completed_start <- (store.completed_start + 1) mod store.completed_len
  end
  else begin
    if store.completed_len = Array.length store.completed_buf then begin
      let target =
        match store.capacity with
        | Some c -> Stdlib.min c (store.completed_len * 2)
        | None -> store.completed_len * 2
      in
      let buf = Array.make target dummy_instance in
      Array.blit store.completed_buf 0 buf 0 store.completed_len;
      store.completed_buf <- buf
    end;
    store.completed_buf.((store.completed_start + store.completed_len) mod Array.length store.completed_buf) <- inst;
    store.completed_len <- store.completed_len + 1
  end;
  store.completed_n <- store.completed_n + 1

(* Generic spans *)

let start store ~name ?parent ~time () =
  store.next_span <- store.next_span + 1;
  let id = store.next_span in
  Hashtbl.replace store.spans id { id; name; parent; start_time = time; end_time = None };
  id

let finish store id ~time =
  match Hashtbl.find_opt store.spans id with
  | Some s when s.end_time = None -> s.end_time <- Some time
  | Some _ | None -> ()

let span store id = Hashtbl.find_opt store.spans id

let duration s = Option.map (fun e -> e -. s.start_time) s.end_time

let children store id =
  Hashtbl.fold (fun _ s acc -> if s.parent = Some id then s :: acc else acc) store.spans []
  |> List.sort (fun a b -> Float.compare a.start_time b.start_time)

let all_spans store =
  Hashtbl.fold (fun _ s acc -> s :: acc) store.spans []
  |> List.sort (fun a b -> Stdlib.compare a.id b.id)

(* Pipeline instances *)

let mark store ~trace ~stage ~time =
  if Hashtbl.mem store.opens stage then begin
    (match Hashtbl.find_opt store.active trace with
    | Some _ -> store.abandoned <- store.abandoned + 1
    | None -> ());
    Hashtbl.replace store.active trace
      { trace; marks = [ (stage, time) ]; complete = false }
  end
  else
    match Hashtbl.find_opt store.active trace with
    | None -> store.orphans <- store.orphans + 1
    | Some inst ->
        if not (List.mem_assoc stage inst.marks) then begin
          inst.marks <- (stage, time) :: inst.marks;
          if Hashtbl.mem store.closes stage then begin
            inst.complete <- true;
            inst.marks <- List.rev inst.marks; (* freeze in causal order *)
            Hashtbl.remove store.active trace;
            push_completed store inst
          end
        end

let completed store =
  let cap = Array.length store.completed_buf in
  let acc = ref [] in
  for i = store.completed_len - 1 downto 0 do
    acc := store.completed_buf.((store.completed_start + i) mod cap) :: !acc
  done;
  !acc

let completed_count store = store.completed_n

let completed_retained store = store.completed_len

let active_count store = Hashtbl.length store.active

let abandoned_count store = store.abandoned

let orphan_count store = store.orphans

let mark_time inst stage = List.assoc_opt stage inst.marks

let marks inst = if inst.complete then inst.marks else List.rev inst.marks

(* Per-stage-pair latency summaries over completed instances. Instances
   missing either endpoint are skipped (a stage can legitimately be
   absent, e.g. overlay hops on a loopback harness). *)
let stage_breakdown store ~stages =
  List.map
    (fun (label, from_stage, to_stage) ->
      let summary = Sim.Stats.Summary.create () in
      List.iter
        (fun inst ->
          match (mark_time inst from_stage, mark_time inst to_stage) with
          | Some a, Some b -> Sim.Stats.Summary.add summary (b -. a)
          | _ -> ())
        (completed store);
      (label, summary))
    stages

let reset store =
  Hashtbl.reset store.active;
  Array.fill store.completed_buf 0 (Array.length store.completed_buf) dummy_instance;
  store.completed_len <- 0;
  store.completed_start <- 0;
  store.completed_n <- 0;
  store.abandoned <- 0;
  store.orphans <- 0;
  Hashtbl.reset store.spans;
  store.next_span <- 0

(* Trace keys: the canonical Scada.Op encodings. Building them here (not
   via Scada.Op) keeps obs below scada in the dependency order. *)

let status_key ~breaker ~closed = Printf.sprintf "status:%s:%d" breaker (if closed then 1 else 0)

let command_key ~breaker ~close = Printf.sprintf "cmd:%s:%d" breaker (if close then 1 else 0)
