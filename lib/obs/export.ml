(* Telemetry export.

   Two formats:

   - JSONL: one self-describing JSON object per line ("counter", "gauge",
     "histogram", "span", "pipeline"), the raw-dump format for offline
     analysis — van-der-Velde-style continuous process monitoring wants
     an append-only event stream, not a report.

   - Summary JSON: the `--json` bench output — per-experiment objects in
     which every latency summary carries {count, mean, p50, p99, ...},
     built from Sim.Stats.Summary via its own to_json. *)

let summary_to_json (s : Sim.Stats.Summary.t) : Json.t =
  (* Stats prints its own JSON (no dependency on us); parse it back into
     the AST rather than duplicating the field logic here. *)
  Json.parse (Sim.Stats.Summary.to_json s)

let jsonl_of_registry reg =
  let open Json in
  let line kind fields = to_string (Obj (("type", Str kind) :: fields)) in
  let counters =
    List.map
      (fun (name, v) -> line "counter" [ ("name", Str name); ("value", Num (float_of_int v)) ])
      (Registry.counters reg)
  in
  let gauges =
    List.map
      (fun (name, v) -> line "gauge" [ ("name", Str name); ("value", Num v) ])
      (Registry.gauges reg)
  in
  let histograms =
    List.map
      (fun (name, h) ->
        line "histogram"
          [ ("name", Str name); ("data", Histogram.to_json h) ])
      (Registry.histograms reg)
  in
  let store = Registry.spans reg in
  let spans =
    List.map
      (fun (s : Span.span) ->
        line "span"
          [
            ("id", Num (float_of_int s.Span.id));
            ("name", Str s.Span.name);
            ( "parent",
              match s.Span.parent with Some p -> Num (float_of_int p) | None -> Null );
            ("start", Num s.Span.start_time);
            ("end", match s.Span.end_time with Some e -> Num e | None -> Null);
          ])
      (Span.all_spans store)
  in
  let pipelines =
    List.map
      (fun (inst : Span.instance) ->
        line "pipeline"
          [
            ("trace", Str inst.Span.trace);
            ( "marks",
              List
                (List.map
                   (fun (stage, time) -> Obj [ ("stage", Str stage); ("time", Num time) ])
                   (Span.marks inst)) );
            ("complete", Bool inst.Span.complete);
          ])
      (Span.completed store)
  in
  counters @ gauges @ histograms @ spans @ pipelines

let write_jsonl oc reg =
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    (jsonl_of_registry reg)

let jsonl_to_string reg = String.concat "" (List.map (fun l -> l ^ "\n") (jsonl_of_registry reg))

(* Parse a JSONL dump back into (type, json) rows — the round-trip side
   used by tests and any offline reader. *)
let parse_jsonl s =
  String.split_on_char '\n' s
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map (fun l ->
         let j = Json.parse l in
         let kind =
           match Json.member "type" j with Some (Json.Str k) -> k | _ -> "unknown"
         in
         (kind, j))

(* The Section-V reaction-time decomposition: label, from-stage,
   to-stage. Sums telescope to flip -> repaint exactly (each stage ends
   where the next begins on the same virtual clock). *)
let reaction_stages =
  [
    ("proxy poll", Registry.stage_flip, Registry.stage_report);
    ("overlay + accept", Registry.stage_report, Registry.stage_accept);
    ("pre-order", Registry.stage_accept, Registry.stage_preorder);
    ("order + execute", Registry.stage_preorder, Registry.stage_execute);
    ("HMI delivery", Registry.stage_execute, Registry.stage_repaint);
  ]

let end_to_end_stage = ("end-to-end", Registry.stage_flip, Registry.stage_repaint)

let reaction_breakdown reg =
  Span.stage_breakdown (Registry.spans reg) ~stages:(reaction_stages @ [ end_to_end_stage ])

(* Per-stage summaries as a JSON object keyed by stage label. *)
let breakdown_json breakdown =
  Json.Obj (List.map (fun (label, s) -> (label, summary_to_json s)) breakdown)
