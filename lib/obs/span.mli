(** Causal span tracing: generic parent/child spans plus pipeline
    instances — fixed stage sequences correlated by an out-of-band trace
    key (the canonical [Scada.Op] encoding), so instrumentation never
    changes message contents or the deterministic schedule. *)

type span = {
  id : int;
  name : string;
  parent : int option;
  start_time : float;
  mutable end_time : float option;
}

type instance = {
  trace : string;
  mutable marks : (string * float) list;
  mutable complete : bool;
}

type store

(** [create_store ~opens ~closes ()]: stages in [opens] begin a new
    instance for their trace key; stages in [closes] complete it. With
    [?capacity] the store retains at most that many completed instances
    (oldest evicted first — [completed_count] stays exact); raises
    [Invalid_argument] on [capacity <= 0]. *)
val create_store : ?capacity:int -> ?opens:string list -> ?closes:string list -> unit -> store

(** {2 Generic spans} *)

(** Open a named span; returns its id. *)
val start : store -> name:string -> ?parent:int -> time:float -> unit -> int

(** Close a span (idempotent; unknown ids ignored). *)
val finish : store -> int -> time:float -> unit

val span : store -> int -> span option

(** [end - start] once finished. *)
val duration : span -> float option

(** Direct children, ordered by start time. *)
val children : store -> int -> span list

(** Every span, ordered by id (creation order). *)
val all_spans : store -> span list

(** {2 Pipeline instances} *)

(** Record stage [stage] for trace key [trace] at [time]. Opening stages
    begin a fresh instance (abandoning any still-open one for the key);
    only the first occurrence of each stage per instance is kept; closing
    stages complete the instance. Marks with no open instance are counted
    as orphans and dropped. *)
val mark : store -> trace:string -> stage:string -> time:float -> unit

(** Retained completed instances, oldest first, marks in causal order. *)
val completed : store -> instance list

(** Instances ever completed (a capped store may retain fewer). *)
val completed_count : store -> int

(** Completed instances currently retained. *)
val completed_retained : store -> int

val active_count : store -> int

(** Instances re-opened before closing (flip never reached the HMI). *)
val abandoned_count : store -> int

(** Marks dropped for lack of an open instance. *)
val orphan_count : store -> int

val mark_time : instance -> string -> float option

(** Marks in causal order whether or not the instance completed. *)
val marks : instance -> (string * float) list

(** [(label, summary)] of [to_stage - from_stage] latencies over
    completed instances; instances missing either endpoint are
    skipped. *)
val stage_breakdown :
  store -> stages:(string * string * string) list -> (string * Sim.Stats.Summary.t) list

val reset : store -> unit

(** {2 Trace keys} — canonical [Scada.Op] encodings, rebuilt here to keep
    [obs] below [scada] in the dependency order. *)

val status_key : breaker:string -> closed:bool -> string

val command_key : breaker:string -> close:bool -> string
