(* Edge-triggered alert engine over health probes and flight events.

   Two rule families:

   - Sample rules evaluate a probe sample (usually on a periodic
     sampler tick). A rule holds while its condition holds; an alarm is
     raised only on the false -> true edge, and the rule re-arms when
     the condition clears — a stuck condition produces one alarm, not
     one per tick.

   - Event rules watch the flight-event stream: an alarm is raised when
     at least [threshold] events of the watched kinds arrive within
     [window] seconds, with a [cooldown] before the same rule may fire
     again (retransmission storms produce one alarm per burst).

   Raised alarms are appended to the engine's log and echoed into the
   flight recorder at severity [Alarm], so the JSONL dump interleaves
   causes and detections on one timeline. Everything is driven by the
   simulation clock through deterministic inputs, so same-seed campaigns
   raise identical alarms at identical times — which is what lets
   detection latency be a stable, reportable metric (ROADMAP item 5). *)

type alarm = { al_time : float; al_rule : string; al_detail : string }

type sample = (string * Probe.snapshot) list

type sample_rule = {
  sr_name : string;
  mutable sr_active : bool; (* condition held at the previous tick *)
  sr_check : sample -> string option; (* Some detail while the condition holds *)
}

type event_rule = {
  er_name : string;
  er_kinds : string list;
  er_threshold : int;
  er_window : float;
  er_cooldown : float;
  mutable er_times : float list; (* matching-event times, newest first *)
  mutable er_last : float; (* last alarm time; negative infinity initially *)
}

type t = {
  flight : Flight.t option;
  mutable alarms : alarm list; (* newest first *)
  mutable n_alarms : int;
  sample_rules : sample_rule list;
  event_rules : event_rule list;
}

let sample_rule ~name check = { sr_name = name; sr_active = false; sr_check = check }

let event_rule ~name ~kinds ?(threshold = 1) ?(window = 1.0) ?(cooldown = 5.0) () =
  {
    er_name = name;
    er_kinds = kinds;
    er_threshold = threshold;
    er_window = window;
    er_cooldown = cooldown;
    er_times = [];
    er_last = neg_infinity;
  }

(* --- builtin rules ---------------------------------------------------- *)

let metrics_with ~probe_prefix ~metric sample =
  List.concat_map
    (fun (name, metrics) ->
      if String.length name >= String.length probe_prefix
         && String.sub name 0 (String.length probe_prefix) = probe_prefix
      then
        match List.assoc_opt metric metrics with
        | Some v -> [ (name, v) ]
        | None -> []
      else [])
    sample

(* Checkpoint lag: a durable store has fallen more than two checkpoint
   windows behind its replica's execution frontier. *)
let checkpoint_lag_rule ?(max_windows = 2.0) () =
  sample_rule ~name:"checkpoint-lag" (fun sample ->
      match
        List.filter (fun (_, lag) -> lag > max_windows)
          (metrics_with ~probe_prefix:"store." ~metric:"ck_lag_windows" sample)
      with
      | [] -> None
      | (name, lag) :: _ ->
          Some (Printf.sprintf "%s is %.0f checkpoint windows behind" name lag))

(* Sustained link-layer drops: the total dropped count across Spines
   daemons grew by at least [min_drops] within the last [window]
   evaluations. A rate condition, not a consecutive-growth streak: at a
   50ms sampling period even a heavily lossy link skips ticks. *)
let sustained_drops_rule ?(min_drops = 5.0) ?(window = 20) () =
  let history = ref [] (* newest first, at most [window] totals *) in
  sample_rule ~name:"sustained-drops" (fun sample ->
      let total =
        List.fold_left (fun acc (_, v) -> acc +. v) 0.0
          (metrics_with ~probe_prefix:"spines." ~metric:"drops_total" sample)
      in
      let keep = window - 1 in
      let trimmed = if List.length !history > keep then List.filteri (fun i _ -> i < keep) !history else !history in
      history := total :: trimmed;
      let oldest = List.nth !history (List.length !history - 1) in
      let grown = total -. oldest in
      if List.length !history >= window && grown >= min_drops then
        Some (Printf.sprintf "%.0f link drops in the last %d samples (total %.0f)" grown window total)
      else None)

(* Replica health divergence: the execution frontiers of *running*
   replicas have spread beyond [max_spread] sequence numbers — a
   partitioned or struggling replica is falling behind the quorum. *)
let divergence_rule ?(max_spread = 5.0) () =
  sample_rule ~name:"replica-divergence" (fun sample ->
      let running =
        List.filter
          (fun (name, _) ->
            match metrics_with ~probe_prefix:name ~metric:"running" sample with
            | [ (_, r) ] -> r > 0.5
            | _ -> false)
          (metrics_with ~probe_prefix:"prime." ~metric:"exec_seq" sample)
      in
      match running with
      | [] | [ _ ] -> None
      | (_, e0) :: _ ->
          let lo, hi =
            List.fold_left
              (fun (lo, hi) (_, e) -> (Float.min lo e, Float.max hi e))
              (e0, e0) running
          in
          if hi -. lo > max_spread then
            Some (Printf.sprintf "running replicas span exec %.0f..%.0f" lo hi)
          else None)

(* A replica process is down. *)
let replica_down_rule () =
  sample_rule ~name:"replica-down" (fun sample ->
      match
        List.filter (fun (_, r) -> r < 0.5)
          (metrics_with ~probe_prefix:"prime." ~metric:"running" sample)
      with
      | [] -> None
      | (name, _) :: _ -> Some (name ^ " is not running"))

let default_sample_rules () =
  [
    checkpoint_lag_rule ();
    sustained_drops_rule ();
    divergence_rule ();
    replica_down_rule ();
  ]

let default_event_rules () =
  [
    event_rule ~name:"malformed-frames" ~kinds:[ "frame.malformed" ] ~threshold:3
      ~window:1.0 ~cooldown:5.0 ();
    event_rule ~name:"leader-suspected" ~kinds:[ "leader.suspect" ] ~threshold:1
      ~window:1.0 ~cooldown:5.0 ();
    event_rule ~name:"store-fault"
      ~kinds:[ "wal.replay_gap"; "wal.corrupt"; "checkpoint.bad"; "disk.wipe" ]
      ~threshold:1 ~window:1.0 ~cooldown:5.0 ();
    event_rule ~name:"bad-data" ~kinds:[ "fdia.flagged" ] ~threshold:1 ~window:1.0
      ~cooldown:5.0 ();
  ]

(* --- engine ----------------------------------------------------------- *)

let raise_alarm t ~time ~rule ~detail =
  t.alarms <- { al_time = time; al_rule = rule; al_detail = detail } :: t.alarms;
  t.n_alarms <- t.n_alarms + 1;
  match t.flight with
  | Some fl -> Flight.record fl ~time ~severity:Flight.Alarm ~subsystem:"alert" ~kind:rule detail
  | None -> ()

let observe_event t (e : Flight.event) =
  (* Alarms the engine itself writes back must not feed rules. *)
  if not (String.equal e.Flight.ev_subsystem "alert") then
    List.iter
      (fun r ->
        if List.mem e.Flight.ev_kind r.er_kinds then begin
          let horizon = e.Flight.ev_time -. r.er_window in
          r.er_times <-
            e.Flight.ev_time :: List.filter (fun ti -> ti >= horizon) r.er_times;
          if
            List.length r.er_times >= r.er_threshold
            && e.Flight.ev_time -. r.er_last >= r.er_cooldown
          then begin
            r.er_last <- e.Flight.ev_time;
            r.er_times <- [];
            raise_alarm t ~time:e.Flight.ev_time ~rule:r.er_name
              ~detail:
                (Printf.sprintf "%d %s event(s) within %.2fs" r.er_threshold
                   e.Flight.ev_kind r.er_window)
          end
        end)
      t.event_rules

let create ?sample_rules ?event_rules ?flight () =
  let t =
    {
      flight;
      alarms = [];
      n_alarms = 0;
      sample_rules =
        (match sample_rules with Some rs -> rs | None -> default_sample_rules ());
      event_rules =
        (match event_rules with Some rs -> rs | None -> default_event_rules ());
    }
  in
  (match flight with Some fl -> Flight.on_event fl (fun e -> observe_event t e) | None -> ());
  t

let evaluate t ~time sample =
  List.iter
    (fun r ->
      match r.sr_check sample with
      | Some detail ->
          if not r.sr_active then begin
            r.sr_active <- true;
            raise_alarm t ~time ~rule:r.sr_name ~detail
          end
      | None -> r.sr_active <- false)
    t.sample_rules

let alarms t = List.rev t.alarms

let alarm_count t = t.n_alarms

(* Earliest alarm raised at or after [time] — the detection-latency
   anchor: first alarm after a fault was injected. *)
let first_alarm_after t time =
  List.find_opt (fun a -> a.al_time >= time) (alarms t)

let alarm_to_json a =
  Json.Obj
    [
      ("time", Json.Num a.al_time);
      ("rule", Json.Str a.al_rule);
      ("detail", Json.Str a.al_detail);
    ]
