(** Health probes: named closures returning live (metric, value)
    snapshots of a subsystem, registered at construction time and polled
    on demand. Registration is gated on [enabled] (default off) so the
    default registry never accumulates closures outside an observing
    harness; sampling is read-only and deterministic (probes and metrics
    sorted by name). *)

type snapshot = (string * float) list

type t

val create : unit -> t

(** The global probe registry subsystems register into. *)
val default : t

val enabled : t -> bool

val set_enabled : t -> bool -> unit

(** Instance label: while [Some l], registered probe names get an
    ["@l"] suffix ("prime.replica.2@s03"). A suffix — never a prefix —
    so the subsystem prefixes alert rules match on stay intact. *)
val set_label : t -> string option -> unit

(** Run [f] with the label set, restoring the previous label after. *)
val with_label : t -> string -> (unit -> 'a) -> 'a

(** Register (or replace — newest instance wins) a probe. No-op while
    disabled. *)
val register : t -> name:string -> (unit -> snapshot) -> unit

(** Removes under the current label, mirroring {!register}. *)
val unregister : t -> string -> unit

val count : t -> int

(** Drop every registered probe. *)
val reset : t -> unit

(** Poll every probe: [(probe name, metrics)] sorted by probe name,
    metrics sorted by metric name. *)
val sample : t -> (string * snapshot) list

(** Publish a sample as gauges named [<prefix>.<probe>.<metric>]
    (default prefix ["health"]). No-op while [registry] is disabled. *)
val publish : ?prefix:string -> registry:Registry.t -> (string * snapshot) list -> unit

val sample_json : (string * snapshot) list -> Json.t

(** Start a periodic sampler that polls the probes (and publishes into
    [registry] when given). Schedules engine events — opt-in harnesses
    only, never default instrumentation. *)
val start_sampler :
  ?registry:Registry.t -> engine:Sim.Engine.t -> period:float -> t -> Sim.Engine.timer
