(* Health probes: live subsystem snapshots on demand.

   A probe is a named closure returning (metric, value) pairs — view and
   ARU for a Prime replica, egress occupancy and route-cache hit rate
   for a Spines daemon, WAL and checkpoint-lag figures for the durable
   store, sigcache hit rate for the crypto pipeline. Subsystems register
   a probe at construction time; [sample] polls every registered probe.

   Registration is gated on [enabled] (default off) so ordinary tests
   and benches — which construct thousands of short-lived replicas —
   never accumulate dead closures in the default registry. A harness
   that wants health data (chaos runner, spire_cli monitor, E16)
   enables the registry *before* building its deployment and resets it
   afterwards.

   Sampling is read-only over subsystem state and both probes and their
   metrics are returned in sorted order, so a periodic sampler driven by
   the simulation clock is deterministic and purely passive. *)

type snapshot = (string * float) list

type t = {
  mutable enabled : bool;
  probes : (string, unit -> snapshot) Hashtbl.t;
  mutable label : string option;
      (* suffix appended to registered names ("@s03"): disambiguates
         per-shard instances without touching the name *prefixes* the
         alert rules match on *)
  mutable sorted : (string * (unit -> snapshot)) list option;
      (* cached sorted view; None = dirty. At 1 000+ device scale the
         50 ms sampler must not re-sort the registry every tick. *)
}

let create () = { enabled = false; probes = Hashtbl.create 32; label = None; sorted = None }

let default = create ()

let enabled t = t.enabled

let set_enabled t on = t.enabled <- on

let set_label t label = t.label <- label

let with_label t label f =
  let saved = t.label in
  t.label <- Some label;
  Fun.protect ~finally:(fun () -> t.label <- saved) f

let labelled t name = match t.label with None -> name | Some l -> name ^ "@" ^ l

(* Replace semantics: a restarted subsystem re-registers under its name
   and the newest instance wins. *)
let register t ~name f =
  if t.enabled then begin
    Hashtbl.replace t.probes (labelled t name) f;
    t.sorted <- None
  end

let unregister t name =
  Hashtbl.remove t.probes (labelled t name);
  t.sorted <- None

let count t = Hashtbl.length t.probes

let reset t =
  Hashtbl.reset t.probes;
  t.sorted <- None

let sorted_probes t =
  match t.sorted with
  | Some l -> l
  | None ->
      let l =
        Hashtbl.fold (fun name f acc -> (name, f) :: acc) t.probes []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      t.sorted <- Some l;
      l

let sample t =
  List.map
    (fun (name, f) ->
      (name, List.sort (fun (a, _) (b, _) -> String.compare a b) (f ())))
    (sorted_probes t)

(* Publish a sample as registry gauges named [health.<probe>.<metric>] —
   the timeseries face of the snapshots. No-op while [registry] has
   telemetry off. *)
let publish ?(prefix = "health") ~registry sample =
  List.iter
    (fun (name, metrics) ->
      List.iter
        (fun (metric, value) ->
          Registry.set_gauge registry (String.concat "." [ prefix; name; metric ]) value)
        metrics)
    sample

let sample_json sample =
  Json.Obj
    (List.map
       (fun (name, metrics) ->
         (name, Json.Obj (List.map (fun (m, v) -> (m, Json.Num v)) metrics)))
       sample)

(* Periodic sampler: polls every probe and publishes gauges. Only
   opt-in harnesses may start one — it schedules engine events, so it is
   never armed by default instrumentation. *)
let start_sampler ?registry ~engine ~period t =
  Sim.Engine.every engine ~period (fun () ->
      let s = sample t in
      match registry with Some r -> publish ~registry:r s | None -> ())
