(* Electrical overlay derived deterministically from a Plc.Power.scenario.

   The derivation rule is uniform across the red-team, power-plant and
   synthetic topologies:

   - Bus 0 ("grid") is the transmission interface and system slack; a
     reference generator sized from the total demand attaches there.
   - Every feed whose [load_name] ends in "-unit" is a generation unit:
     it injects at the grid bus and is gated by its path breakers (all
     must be closed for the unit to be on line).
   - Every other feed is a load. Its breaker path becomes a chain of
     buses (one per breaker, shared across feeds with a common prefix,
     so Building-A and Building-B share the B10-1 bus) with one gated
     line per hop; the load attaches at the final bus with a
     deterministic demand of 4 + (index mod 3) MW.
   - Consecutive load buses are joined by breaker-less tie lines (a
     ring once there are three or more), modelling the distribution
     mesh. Ties have no breaker: they can only trip electrically, on
     thermal overload, which is what lets an opened feeder re-route
     flow and push a neighbour past its limit.

   The DC solve is a per-island reduced-Laplacian linear system solved
   by dense Gaussian elimination with partial pivoting — branch-free
   and allocation-deterministic, so same-input solves are bit-identical
   on either engine backend. *)

type bus = { bus_index : int; bus_name : string }

type line = {
  line_index : int;
  line_name : string; (* breaker name for feeders, "tie.N" for ties *)
  from_bus : int;
  to_bus : int;
  reactance : float;
  limit_mw : float;
  gate : string option; (* gating breaker; None = tie (trips electrically only) *)
}

type unit_gen = {
  gen_index : int;
  gen_name : string;
  gen_bus : int;
  capacity_mw : float;
  gen_gate : string list; (* breakers that must all be closed *)
}

type load = {
  load_index : int;
  load_name : string;
  load_bus : int;
  demand_mw : float;
}

type t = {
  scenario : Plc.Power.scenario;
  buses : bus array;
  lines : line array;
  gens : unit_gen array;
  loads : load array;
  line_owner : string array; (* per line: owning PLC *)
  load_owner : string array; (* per load: owning PLC *)
  nominal_hz : float;
  relevant : (string, unit) Hashtbl.t; (* breakers that gate a line or a unit *)
}

let nominal_hz = 60.0
let feeder_reactance = 0.1
let tie_reactance = 0.2
let feeder_limit_mw = 30.0
let tie_limit_mw = 6.0
let unit_capacity_mw = 10.0

let is_unit_feed (f : Plc.Power.feed) =
  let n = f.load_name and suffix = "-unit" in
  let ln = String.length n and ls = String.length suffix in
  ln >= ls && String.sub n (ln - ls) ls = suffix

(* PLC owning a breaker name; the scenario guarantees every path breaker
   belongs to exactly one spec. *)
let owner_of_breaker (scenario : Plc.Power.scenario) breaker =
  match
    List.find_opt (fun (p : Plc.Power.plc_spec) -> List.mem breaker p.breaker_names) scenario.plcs
  with
  | Some p -> p.plc_name
  | None -> "?"

let of_scenario (scenario : Plc.Power.scenario) =
  let buses = ref [ { bus_index = 0; bus_name = "grid" } ] in
  let n_buses = ref 1 in
  let bus_of_breaker : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let intern_bus breaker =
    match Hashtbl.find_opt bus_of_breaker breaker with
    | Some b -> b
    | None ->
        let b = !n_buses in
        incr n_buses;
        buses := { bus_index = b; bus_name = breaker } :: !buses;
        Hashtbl.add bus_of_breaker breaker b;
        b
  in
  let lines = ref [] and n_lines = ref 0 in
  let line_seen : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let add_line ~name ~from_bus ~to_bus ~reactance ~limit ~gate =
    if not (Hashtbl.mem line_seen (from_bus, to_bus)) then begin
      Hashtbl.add line_seen (from_bus, to_bus) ();
      lines :=
        {
          line_index = !n_lines;
          line_name = name;
          from_bus;
          to_bus;
          reactance;
          limit_mw = limit;
          gate;
        }
        :: !lines;
      incr n_lines
    end
  in
  let gens = ref [] and n_gens = ref 0 in
  let loads = ref [] and n_loads = ref 0 in
  let load_feeds = List.filter (fun f -> not (is_unit_feed f)) scenario.feeds in
  let unit_feeds = List.filter is_unit_feed scenario.feeds in
  (* Loads first: chains of gated feeder lines ending at the load bus. *)
  List.iter
    (fun (f : Plc.Power.feed) ->
      let last_bus =
        List.fold_left
          (fun prev breaker ->
            let b = intern_bus breaker in
            add_line ~name:breaker ~from_bus:prev ~to_bus:b ~reactance:feeder_reactance
              ~limit:feeder_limit_mw ~gate:(Some breaker);
            b)
          0 f.path
      in
      let idx = !n_loads in
      incr n_loads;
      loads :=
        {
          load_index = idx;
          load_name = f.load_name;
          load_bus = last_bus;
          demand_mw = 4.0 +. float_of_int (idx mod 3);
        }
        :: !loads)
    load_feeds;
  let loads = Array.of_list (List.rev !loads) in
  (* Tie ring between consecutive load buses (single tie for two loads). *)
  let n_loads = Array.length loads in
  let tie_count = ref 0 in
  if n_loads >= 2 then
    for i = 0 to (if n_loads >= 3 then n_loads - 1 else 0) do
      let a = loads.(i).load_bus and b = loads.((i + 1) mod n_loads).load_bus in
      if a <> b then begin
        add_line
          ~name:(Printf.sprintf "tie.%d" !tie_count)
          ~from_bus:a ~to_bus:b ~reactance:tie_reactance ~limit:tie_limit_mw ~gate:None;
        incr tie_count
      end
    done;
  (* Generation units inject at the grid bus, gated by their breakers. *)
  List.iter
    (fun (f : Plc.Power.feed) ->
      let idx = !n_gens in
      incr n_gens;
      gens :=
        {
          gen_index = idx;
          gen_name = f.load_name;
          gen_bus = 0;
          capacity_mw = unit_capacity_mw;
          gen_gate = f.path;
        }
        :: !gens)
    unit_feeds;
  let total_demand = Array.fold_left (fun acc l -> acc +. l.demand_mw) 0.0 loads in
  let unit_capacity = float_of_int (List.length !gens) *. unit_capacity_mw in
  (* The slack reference covers the demand with margin when there are no
     units, and only tops units up when there are — so losing generation
     units produces a real capacity deficit. *)
  let slack_capacity = Float.max 5.0 ((1.15 *. total_demand) -. unit_capacity) in
  let gens =
    Array.of_list
      (List.rev
         ({
            gen_index = !n_gens;
            gen_name = "grid-src";
            gen_bus = 0;
            capacity_mw = slack_capacity;
            gen_gate = [];
          }
         :: !gens))
  in
  let buses = Array.of_list (List.rev !buses) in
  let lines = Array.of_list (List.rev !lines) in
  let load_owner =
    Array.map
      (fun l ->
        match List.find_opt (fun (f : Plc.Power.feed) -> f.load_name = l.load_name) load_feeds with
        | Some { path = first :: _; _ } -> owner_of_breaker scenario first
        | _ -> "?")
      loads
  in
  let line_owner =
    Array.map
      (fun line ->
        match line.gate with
        | Some breaker -> owner_of_breaker scenario breaker
        | None -> (
            (* tie from a load bus: owned by that load's PLC *)
            match Array.find_opt (fun l -> l.load_bus = line.from_bus) loads with
            | Some l -> load_owner.(l.load_index)
            | None -> "?"))
      lines
  in
  let relevant = Hashtbl.create 64 in
  Array.iter (fun line -> match line.gate with Some b -> Hashtbl.replace relevant b () | None -> ()) lines;
  Array.iter (fun g -> List.iter (fun b -> Hashtbl.replace relevant b ()) g.gen_gate) gens;
  { scenario; buses; lines; gens; loads; line_owner; load_owner; nominal_hz; relevant }

let breaker_matters t breaker = Hashtbl.mem t.relevant breaker

let total_demand_mw t = Array.fold_left (fun acc l -> acc +. l.demand_mw) 0.0 t.loads

(* ------------------------------------------------------------------ *)
(* DC solve                                                            *)
(* ------------------------------------------------------------------ *)

type solution = {
  flows_mw : float array; (* per line; 0 when out of service or dead *)
  line_live : bool array; (* effectively in service *)
  served : bool array; (* per load *)
  served_mw : float;
  shed_mw : float;
  gen_mw : float;
  frequency_hz : float;
  island_of_bus : int array;
  n_islands : int;
  overloads : (int * float) list; (* line index, |flow| / limit > 1 *)
}

let freq_droop_hz = 4.0
let overload_threshold = 1.0001

(* Dense Gaussian elimination with partial pivoting; [a] is n x n,
   [b] length n; returns the solution vector (destroys inputs). *)
let gauss_solve a b n =
  for col = 0 to n - 1 do
    let pivot = ref col in
    for r = col + 1 to n - 1 do
      if Float.abs a.(r).(col) > Float.abs a.(!pivot).(col) then pivot := r
    done;
    if !pivot <> col then begin
      let tmp = a.(col) in
      a.(col) <- a.(!pivot);
      a.(!pivot) <- tmp;
      let tb = b.(col) in
      b.(col) <- b.(!pivot);
      b.(!pivot) <- tb
    end;
    let d = a.(col).(col) in
    if Float.abs d > 1e-12 then
      for r = col + 1 to n - 1 do
        let f = a.(r).(col) /. d in
        if f <> 0.0 then begin
          for c = col to n - 1 do
            a.(r).(c) <- a.(r).(c) -. (f *. a.(col).(c))
          done;
          b.(r) <- b.(r) -. (f *. b.(col))
        end
      done
  done;
  let x = Array.make n 0.0 in
  for r = n - 1 downto 0 do
    let s = ref b.(r) in
    for c = r + 1 to n - 1 do
      s := !s -. (a.(r).(c) *. x.(c))
    done;
    x.(r) <- (if Float.abs a.(r).(r) > 1e-12 then !s /. a.(r).(r) else 0.0)
  done;
  x

let solve t ~breaker_closed ~line_in_service =
  let nb = Array.length t.buses in
  let nl = Array.length t.lines in
  let line_live =
    Array.map
      (fun line ->
        line_in_service line.line_index
        && match line.gate with Some b -> breaker_closed b | None -> true)
      t.lines
  in
  (* Islands: BFS over live lines, visiting buses in index order. *)
  let adj = Array.make nb [] in
  Array.iteri
    (fun i line ->
      if line_live.(i) then begin
        adj.(line.from_bus) <- line.to_bus :: adj.(line.from_bus);
        adj.(line.to_bus) <- line.from_bus :: adj.(line.to_bus)
      end)
    t.lines;
  let island_of_bus = Array.make nb (-1) in
  let n_islands = ref 0 in
  for b0 = 0 to nb - 1 do
    if island_of_bus.(b0) < 0 then begin
      let id = !n_islands in
      incr n_islands;
      let queue = Queue.create () in
      Queue.add b0 queue;
      island_of_bus.(b0) <- id;
      while not (Queue.is_empty queue) do
        let b = Queue.pop queue in
        List.iter
          (fun b' ->
            if island_of_bus.(b') < 0 then begin
              island_of_bus.(b') <- id;
              Queue.add b' queue
            end)
          adj.(b)
      done
    end
  done;
  let n_islands = !n_islands in
  (* Per-island capacity (gated units) and demand. *)
  let capacity = Array.make n_islands 0.0 in
  Array.iter
    (fun g ->
      if List.for_all breaker_closed g.gen_gate then
        let i = island_of_bus.(g.gen_bus) in
        capacity.(i) <- capacity.(i) +. g.capacity_mw)
    t.gens;
  let demand = Array.make n_islands 0.0 in
  Array.iter
    (fun l ->
      let i = island_of_bus.(l.load_bus) in
      demand.(i) <- demand.(i) +. l.demand_mw)
    t.loads;
  (* Under-frequency load shedding: drop loads (largest demand first,
     highest index breaking ties) until the island balances. Islands
     with no capacity are dark. *)
  let served = Array.make (Array.length t.loads) true in
  let island_served = Array.make n_islands 0.0 in
  for i = 0 to n_islands - 1 do
    if capacity.(i) <= 0.0 then
      Array.iter (fun l -> if island_of_bus.(l.load_bus) = i then served.(l.load_index) <- false) t.loads
    else if demand.(i) > capacity.(i) then begin
      let here =
        t.loads |> Array.to_list
        |> List.filter (fun l -> island_of_bus.(l.load_bus) = i)
        |> List.sort (fun a b ->
               match compare b.demand_mw a.demand_mw with
               | 0 -> compare b.load_index a.load_index
               | c -> c)
      in
      let remaining = ref demand.(i) in
      List.iter
        (fun l ->
          if !remaining > capacity.(i) then begin
            served.(l.load_index) <- false;
            remaining := !remaining -. l.demand_mw
          end)
        here
    end
  done;
  Array.iter
    (fun l ->
      if served.(l.load_index) then
        let i = island_of_bus.(l.load_bus) in
        island_served.(i) <- island_served.(i) +. l.demand_mw)
    t.loads;
  (* Frequency: droop sag proportional to each powered island's capacity
     deficit; the system value is the worst powered island. *)
  let frequency_hz = ref t.nominal_hz in
  for i = 0 to n_islands - 1 do
    if capacity.(i) > 0.0 && demand.(i) > capacity.(i) then begin
      let f =
        t.nominal_hz -. (freq_droop_hz *. (demand.(i) -. capacity.(i)) /. capacity.(i))
      in
      let f = Float.max 50.0 f in
      if f < !frequency_hz then frequency_hz := f
    end
  done;
  (* Dispatch: per island, units in index order up to the served load. *)
  let gen_out = Array.make (Array.length t.gens) 0.0 in
  let to_cover = Array.copy island_served in
  Array.iter
    (fun g ->
      if List.for_all breaker_closed g.gen_gate then begin
        let i = island_of_bus.(g.gen_bus) in
        let out = Float.min g.capacity_mw to_cover.(i) in
        if out > 0.0 then begin
          gen_out.(g.gen_index) <- out;
          to_cover.(i) <- to_cover.(i) -. out
        end
      end)
    t.gens;
  (* Net injection per bus. *)
  let inj = Array.make nb 0.0 in
  Array.iter (fun g -> inj.(g.gen_bus) <- inj.(g.gen_bus) +. gen_out.(g.gen_index)) t.gens;
  Array.iter
    (fun l -> if served.(l.load_index) then inj.(l.load_bus) <- inj.(l.load_bus) -. l.demand_mw)
    t.loads;
  (* Per-island DC flow: reduced Laplacian with the island's first
     generating bus as slack. *)
  let theta = Array.make nb 0.0 in
  let slack_of = Array.make n_islands (-1) in
  Array.iter
    (fun g ->
      if gen_out.(g.gen_index) > 0.0 || List.for_all breaker_closed g.gen_gate then begin
        let i = island_of_bus.(g.gen_bus) in
        if slack_of.(i) < 0 then slack_of.(i) <- g.gen_bus
      end)
    t.gens;
  for i = 0 to n_islands - 1 do
    if slack_of.(i) >= 0 && capacity.(i) > 0.0 then begin
      (* island buses except the slack, in index order *)
      let members = ref [] in
      for b = nb - 1 downto 0 do
        if island_of_bus.(b) = i && b <> slack_of.(i) then members := b :: !members
      done;
      let members = Array.of_list !members in
      let n = Array.length members in
      if n > 0 then begin
        let pos = Array.make nb (-1) in
        Array.iteri (fun k b -> pos.(b) <- k) members;
        let a = Array.init n (fun _ -> Array.make n 0.0) in
        let rhs = Array.make n 0.0 in
        Array.iteri
          (fun li line ->
            if line_live.(li) && island_of_bus.(line.from_bus) = i then begin
              let y = 1.0 /. line.reactance in
              let pf = pos.(line.from_bus) and pt = pos.(line.to_bus) in
              if pf >= 0 then a.(pf).(pf) <- a.(pf).(pf) +. y;
              if pt >= 0 then a.(pt).(pt) <- a.(pt).(pt) +. y;
              if pf >= 0 && pt >= 0 then begin
                a.(pf).(pt) <- a.(pf).(pt) -. y;
                a.(pt).(pf) <- a.(pt).(pf) -. y
              end
            end)
          t.lines;
        Array.iteri (fun k b -> rhs.(k) <- inj.(b)) members;
        let x = gauss_solve a rhs n in
        Array.iteri (fun k b -> theta.(b) <- x.(k)) members
      end
    end
  done;
  let flows_mw =
    Array.mapi
      (fun li line ->
        if line_live.(li) && capacity.(island_of_bus.(line.from_bus)) > 0.0 then
          (theta.(line.from_bus) -. theta.(line.to_bus)) /. line.reactance
        else 0.0)
      t.lines
  in
  let overloads = ref [] in
  for li = nl - 1 downto 0 do
    let r = Float.abs flows_mw.(li) /. t.lines.(li).limit_mw in
    if line_live.(li) && r > overload_threshold then overloads := (li, r) :: !overloads
  done;
  let served_mw = Array.fold_left ( +. ) 0.0 island_served in
  let gen_mw = Array.fold_left ( +. ) 0.0 gen_out in
  let total = total_demand_mw t in
  {
    flows_mw;
    line_live;
    served;
    served_mw;
    shed_mw = total -. served_mw;
    gen_mw;
    frequency_hz = !frequency_hz;
    island_of_bus;
    n_islands;
    overloads = !overloads;
  }

(* ------------------------------------------------------------------ *)
(* Measurement points                                                  *)
(* ------------------------------------------------------------------ *)

type point_kind =
  | Flow of int (* line index; centi-MW *)
  | Tie_status of int (* line index; 0/1 in service *)
  | Injection of int (* load index; centi-MW, negative = consumption *)
  | Frequency (* milli-Hz *)

type point = { pt_name : string; pt_plc : string; pt_kind : point_kind }

let points t =
  let acc = ref [] in
  (* frequency, owned by the first PLC *)
  let first_plc =
    match t.scenario.plcs with p :: _ -> p.plc_name | [] -> "?"
  in
  acc := { pt_name = "hz"; pt_plc = first_plc; pt_kind = Frequency } :: !acc;
  Array.iteri
    (fun li line ->
      acc :=
        { pt_name = "mw." ^ line.line_name; pt_plc = t.line_owner.(li); pt_kind = Flow li }
        :: !acc;
      if line.gate = None then
        acc :=
          { pt_name = "st." ^ line.line_name; pt_plc = t.line_owner.(li); pt_kind = Tie_status li }
          :: !acc)
    t.lines;
  Array.iteri
    (fun i l ->
      acc :=
        { pt_name = "inj." ^ l.load_name; pt_plc = t.load_owner.(i); pt_kind = Injection i }
        :: !acc)
    t.loads;
  Array.of_list (List.rev !acc)

let points_for t ~plc =
  Array.of_list (List.filter (fun p -> p.pt_plc = plc) (Array.to_list (points t)))

let point_names t = List.sort compare (Array.to_list (points t) |> List.map (fun p -> p.pt_name))

let scale_mw f = int_of_float (Float.round (f *. 100.0))
let scale_hz f = int_of_float (Float.round (f *. 1000.0))

let measure t solution point ~tripped =
  match point.pt_kind with
  | Flow li -> scale_mw solution.flows_mw.(li)
  | Tie_status li -> if tripped li then 0 else 1
  | Injection i ->
      let l = t.loads.(i) in
      if solution.served.(i) then scale_mw (-.l.demand_mw) else 0
  | Frequency -> scale_hz solution.frequency_hz
