(** Deterministic DC power-flow model derived from a
    {!Plc.Power.scenario}: buses, lines with reactance and thermal
    limits, generation units, loads, and per-island frequency from the
    generation/load balance. Pure — the co-simulation runtime lives in
    {!Net}. *)

type bus = { bus_index : int; bus_name : string }

type line = {
  line_index : int;
  line_name : string; (* breaker name for feeders, "tie.N" for ties *)
  from_bus : int;
  to_bus : int;
  reactance : float;
  limit_mw : float;
  gate : string option; (* gating breaker; None = tie (trips electrically only) *)
}

type unit_gen = {
  gen_index : int;
  gen_name : string;
  gen_bus : int;
  capacity_mw : float;
  gen_gate : string list;
}

type load = { load_index : int; load_name : string; load_bus : int; demand_mw : float }

type t = private {
  scenario : Plc.Power.scenario;
  buses : bus array;
  lines : line array;
  gens : unit_gen array;
  loads : load array;
  line_owner : string array;
  load_owner : string array;
  nominal_hz : float;
  relevant : (string, unit) Hashtbl.t;
}

val of_scenario : Plc.Power.scenario -> t

(** Does this breaker gate any line or generation unit? Changes to
    irrelevant breakers never alter the electrical solution. *)
val breaker_matters : t -> string -> bool

val total_demand_mw : t -> float

val tie_limit_mw : float

type solution = {
  flows_mw : float array;
  line_live : bool array;
  served : bool array;
  served_mw : float;
  shed_mw : float;
  gen_mw : float;
  frequency_hz : float;
  island_of_bus : int array;
  n_islands : int;
  overloads : (int * float) list; (* line index, |flow| / limit > 1 *)
}

(** Solve the DC flow. [breaker_closed] is the physical breaker state;
    [line_in_service] is the electrical (protection) state per line
    index. Deterministic: same inputs give bit-identical outputs. *)
val solve :
  t -> breaker_closed:(string -> bool) -> line_in_service:(int -> bool) -> solution

(** {2 Measurement points}

    Analog telemetry points, one namespace per owning PLC. Names avoid
    [':'], ['='] and [','] so they survive the canonical op encoding:
    ["mw.<line>"] (centi-MW flow), ["st.tie.N"] (tie in service),
    ["inj.<load>"] (centi-MW injection, negative = consumption),
    ["hz"] (milli-Hz system frequency, owned by the first PLC). *)

type point_kind = Flow of int | Tie_status of int | Injection of int | Frequency

type point = { pt_name : string; pt_plc : string; pt_kind : point_kind }

val points : t -> point array

val points_for : t -> plc:string -> point array

(** All point names, sorted — the replicated state's telemetry slots. *)
val point_names : t -> string list

val scale_mw : float -> int

val scale_hz : float -> int

(** Scaled integer reading for one point given a solution and the
    electrical trip predicate. *)
val measure : t -> solution -> point -> tripped:(int -> bool) -> int
