(* Co-simulation runtime for the electrical overlay.

   The net mirrors physical breaker positions (via Breaker.on_change
   hooks or explicit set_breaker calls), re-solves the DC flow whenever
   a relevant breaker moves, and runs inverse-time overcurrent
   protection on every line: a line loaded past its thermal limit trips
   after base_delay / (ratio - 1) seconds (clamped), which is what turns
   one forced outage into a staggered, fully deterministic cascade. The
   net never actuates breakers — trips are electrical (a protection
   relay opening the line), so binding the overlay to an existing
   deployment cannot perturb the SCADA-visible breaker state. *)

type t = {
  engine : Sim.Engine.t;
  model : Model.t;
  flight : Obs.Flight.t option;
  closed : (string, bool) Hashtbl.t;
  tripped : bool array;
  pending : (Sim.Engine.event_id * float) option array; (* scheduled trip, deadline *)
  overload_since : float option array;
  mutable solution : Model.solution;
  mutable trip_log : (float * string) list; (* newest first *)
  mutable shed_log : (float * string * float) list; (* newest first *)
  points : Model.point array;
  mutable solves : int;
}

let trip_base_delay = 5.0
let trip_min_delay = 1.0
let trip_max_delay = 30.0

let breaker_closed t name = match Hashtbl.find_opt t.closed name with Some c -> c | None -> true

let record t ~severity ~kind detail =
  match t.flight with
  | Some fl when Obs.Flight.recording fl ->
      Obs.Flight.record fl ~time:(Sim.Engine.now t.engine) ~severity ~subsystem:"power" ~kind
        (detail ())
  | _ -> ()

let trip_delay ratio =
  Float.min trip_max_delay (Float.max trip_min_delay (trip_base_delay /. (ratio -. 1.0)))

let rec recompute t =
  t.solves <- t.solves + 1;
  let prev = t.solution in
  let sol =
    Model.solve t.model ~breaker_closed:(breaker_closed t)
      ~line_in_service:(fun li -> not t.tripped.(li))
  in
  t.solution <- sol;
  let now = Sim.Engine.now t.engine in
  (* Newly shed loads. *)
  Array.iter
    (fun (l : Model.load) ->
      if prev.served.(l.load_index) && not sol.served.(l.load_index) then begin
        t.shed_log <- (now, l.load_name, l.demand_mw) :: t.shed_log;
        record t ~severity:Obs.Flight.Warn ~kind:"island.shed" (fun () ->
            Printf.sprintf "load=%s mw=%.1f" l.load_name l.demand_mw)
      end)
    t.model.loads;
  (* Protection pass: (re)schedule trips for overloaded lines, clear
     timers for lines that recovered. *)
  let overloaded = Array.make (Array.length t.model.lines) 0.0 in
  List.iter (fun (li, r) -> overloaded.(li) <- r) sol.overloads;
  Array.iteri
    (fun li (line : Model.line) ->
      let r = overloaded.(li) in
      if r > 0.0 then begin
        if t.overload_since.(li) = None then t.overload_since.(li) <- Some now;
        let deadline = now +. trip_delay r in
        let stale =
          match t.pending.(li) with
          | Some (_, d) -> Float.abs (d -. deadline) > 1e-9
          | None -> true
        in
        if stale then begin
          (match t.pending.(li) with
          | Some (ev, _) -> Sim.Engine.cancel t.engine ev
          | None -> ());
          let ev =
            Sim.Engine.schedule_at t.engine ~time:deadline (fun () -> trip t li)
          in
          t.pending.(li) <- Some (ev, deadline)
        end
      end
      else begin
        t.overload_since.(li) <- None;
        match t.pending.(li) with
        | Some (ev, _) ->
            Sim.Engine.cancel t.engine ev;
            t.pending.(li) <- None
        | None -> ()
      end;
      ignore line)
    t.model.lines

and trip t li =
  if not t.tripped.(li) then begin
    t.tripped.(li) <- true;
    t.pending.(li) <- None;
    t.overload_since.(li) <- None;
    let line = t.model.lines.(li) in
    let now = Sim.Engine.now t.engine in
    t.trip_log <- (now, line.line_name) :: t.trip_log;
    record t ~severity:Obs.Flight.Warn ~kind:"line.trip" (fun () ->
        Printf.sprintf "line=%s flow=%.2f limit=%.1f" line.line_name
          t.solution.flows_mw.(li) line.limit_mw);
    recompute t
  end

let set_breaker t name ~closed =
  let prev = breaker_closed t name in
  Hashtbl.replace t.closed name closed;
  if prev <> closed && Model.breaker_matters t.model name then recompute t

let bind_breaker t breaker =
  Hashtbl.replace t.closed (Plc.Breaker.name breaker) (Plc.Breaker.is_closed breaker);
  Plc.Breaker.on_change breaker (fun b ->
      set_breaker t (Plc.Breaker.name b) ~closed:(Plc.Breaker.is_closed b))

let create ?flight ~engine model =
  let nl = Array.length model.Model.lines in
  let t =
    {
      engine;
      model;
      flight;
      closed = Hashtbl.create 64;
      tripped = Array.make nl false;
      pending = Array.make nl None;
      overload_since = Array.make nl None;
      solution =
        Model.solve model ~breaker_closed:(fun _ -> true) ~line_in_service:(fun _ -> true);
      trip_log = [];
      shed_log = [];
      points = Model.points model;
      solves = 1;
    }
  in
  recompute t;
  t

let model t = t.model
let solution t = t.solution
let frequency_hz t = t.solution.frequency_hz
let served_mw t = t.solution.served_mw
let shed_mw t = t.solution.shed_mw
let solves t = t.solves
let total_demand_mw t = Model.total_demand_mw t.model
let tripped_lines t = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 t.tripped

let line_tripped t name =
  match Array.find_opt (fun (l : Model.line) -> l.line_name = name) t.model.lines with
  | Some l -> t.tripped.(l.line_index)
  | None -> false

let trip_log t = List.rev t.trip_log
let shed_log t = List.rev t.shed_log

let analogs_for t ~plc =
  let sol = t.solution in
  Array.to_list
    (Array.map
       (fun p -> (p.Model.pt_name, Model.measure t.model sol p ~tripped:(fun li -> t.tripped.(li))))
       (Model.points_for t.model ~plc))

let analog_names_for t ~plc =
  Array.to_list (Array.map (fun p -> p.Model.pt_name) (Model.points_for t.model ~plc))

let all_analogs t =
  let sol = t.solution in
  Array.to_list
    (Array.map
       (fun p -> (p.Model.pt_name, Model.measure t.model sol p ~tripped:(fun li -> t.tripped.(li))))
       t.points)

(* Lines overloaded continuously for longer than the worst-case trip
   delay plus [grace] — protection failures the cascade-containment
   invariant reports. *)
let stuck_overloads t ~grace =
  let now = Sim.Engine.now t.engine in
  let worst = trip_max_delay +. grace in
  let acc = ref [] in
  Array.iteri
    (fun li since ->
      match since with
      | Some s when now -. s > worst -> acc := (t.model.lines.(li).line_name, s) :: !acc
      | _ -> ())
    t.overload_since;
  List.rev !acc

let register_probe t registry =
  Obs.Probe.register registry ~name:"power.grid" (fun () ->
      [
        ("frequency_hz", frequency_hz t);
        ("served_mw", served_mw t);
        ("shed_mw", shed_mw t);
        ("tripped_lines", float_of_int (tripped_lines t));
      ])
