(** Electrical co-simulation bound to the shared {!Sim.Engine}: mirrors
    physical breaker positions, re-solves the DC flow on every relevant
    change, and trips thermally overloaded lines after a deterministic
    inverse-time delay — producing genuine, staggered cascading
    failures. Never actuates breakers: trips are electrical. *)

type t

(** The initial solution assumes every breaker closed; bind or set
    breakers to diverge. Flight events ([line.trip], [island.shed])
    are recorded into [flight] when given and recording. *)
val create : ?flight:Obs.Flight.t -> engine:Sim.Engine.t -> Model.t -> t

val model : t -> Model.t

(** Mirror a live breaker: seeds the current position and hooks
    [on_change]. *)
val bind_breaker : t -> Plc.Breaker.t -> unit

(** Standalone co-simulation: set a breaker position directly. *)
val set_breaker : t -> string -> closed:bool -> unit

val breaker_closed : t -> string -> bool

val solution : t -> Model.solution

val frequency_hz : t -> float

val served_mw : t -> float

val shed_mw : t -> float

val total_demand_mw : t -> float

val tripped_lines : t -> int

val line_tripped : t -> string -> bool

(** DC solves performed so far. *)
val solves : t -> int

(** Electrical trips, oldest first: (time, line name). *)
val trip_log : t -> (float * string) list

(** Load-shed events, oldest first: (time, load name, MW). *)
val shed_log : t -> (float * string * float) list

(** Current scaled readings for one PLC's measurement points, in
    {!Model.points_for} order. *)
val analogs_for : t -> plc:string -> (string * int) list

val analog_names_for : t -> plc:string -> string list

val all_analogs : t -> (string * int) list

(** Lines overloaded continuously past the worst-case trip delay plus
    [grace] (protection failures): (line name, overloaded since). *)
val stuck_overloads : t -> grace:float -> (string * float) list

(** Register the [power.grid] probe
    (frequency_hz/served_mw/shed_mw/tripped_lines) into a registry. *)
val register_probe : t -> Obs.Probe.t -> unit
