(* Prime replica: orchestrates pre-ordering, ordering, suspect-leader,
   view changes, reconciliation and catchup over an abstract transport.

   The replica owns timers on the simulation engine:
   - summary emission (when the preorder vector advanced);
   - leader pre-prepare emission (every delta_pp while updates flow, a
     slower heartbeat when idle);
   - suspect-leader evaluation (turnaround-time and matrix-freshness
     checks);
   - reconciliation re-requests and catchup probing.

   Misbehaviour knobs ([set_misbehavior]) model the attacks the
   benchmarks measure: a silently crashed leader, a leader delaying
   pre-prepares to just under the detection bound, and a leader censoring
   one origin's summaries. *)

type misbehavior =
  | Honest
  | Crash_silent
  | Slow_leader of float (* added delay before each pre-prepare emission *)
  | Censor_origin of int (* leader zeroes this origin's matrix column *)
  | Equivocate (* leader sends conflicting pre-prepares to different replicas *)

type transport = {
  send : dst:int -> Msg.t -> unit;
  broadcast : Msg.t -> unit; (* to every other replica *)
  reply_to_client : client:string -> Msg.t -> unit;
}

type app = {
  apply : exec_seq:int -> Msg.Update.t -> unit;
  (* Replication-level catchup cannot cover the gap: the application must
     run its own state transfer (Section III-A), then call
     [install_app_checkpoint]. *)
  state_transfer_needed : unit -> unit;
}

(* Pending turnaround-time entries: summaries I broadcast that the
   leader's pre-prepares have not yet covered. *)
type tat_pending = { sent_at : float; sent_sum : int }

type freshness = {
  mutable best_sum : int; (* freshest sum announced by this origin *)
  mutable armed_sum : int; (* the announcement the current deadline tracks *)
  mutable cover_deadline : float option;
}

type t = {
  config : Config.t;
  id : int;
  keypair : Crypto.Signature.keypair;
  keystore : Crypto.Signature.keystore;
  engine : Sim.Engine.t;
  trace : Sim.Trace.t;
  transport : transport;
  mutable app : app;
  mutable preorder : Preorder.t;
  mutable order : Order.t;
  (* view / leader election *)
  mutable view : int;
  mutable suspected_view : int; (* highest view I've sent a suspect for *)
  suspects : (int, (int, unit) Hashtbl.t) Hashtbl.t; (* view -> suspecting replicas *)
  vc_reports : (int, (int, Msg.t) Hashtbl.t) Hashtbl.t; (* view -> reports *)
  mutable leader_active : bool; (* I am leader of [view] and finished VC *)
  (* View-change liveness: [view_live] turns true once the view's leader
     demonstrably works (we accepted one of its pre-prepares, or we are
     it); until then our Vc_report is retransmitted alongside other
     reconciliation traffic, because a single lost report can otherwise
     wedge the view change forever on a lossy network. *)
  mutable view_live : bool;
  mutable my_vc_report : Msg.t option;
  mutable next_pp_seq : int;
  mutable last_pp_matrix_digest : string;
  mutable last_pp_time : float;
  (* suspect-leader state *)
  mutable last_summary_time : float;
  mutable tat_pending : tat_pending list;
  (* Censorship detection: per origin, the freshest summary sum we know
     and the deadline by which the leader must cover it (None = covered). *)
  origin_freshness : (int, freshness) Hashtbl.t;
  (* execution / client dedup / catchup *)
  executed_clients : (string * int, int) Hashtbl.t; (* executed op -> exec_seq (reply cache) *)
  exec_log : (int, Msg.Update.t) Hashtbl.t;
  mutable awaiting_app_transfer : bool;
  mutable catchup_votes : (string, int * Msg.t) Hashtbl.t; (* digest -> count, sample *)
  (* reconciliation *)
  outstanding_recon : (int * int, float) Hashtbl.t;
  (* origin resets after proactive recovery *)
  mutable origin_synced : bool; (* my own sequence is safely above any prior use *)
  stored_resets : (int, int * Crypto.Auth.t) Hashtbl.t; (* origin -> new_start, sig *)
  rebase_reports : (int, int) Hashtbl.t; (* reporter -> its view of my column *)
  (* amortized crypto pipeline *)
  sig_cache : Sigcache.t;
  mutable outbox : (string * (Crypto.Auth.t -> unit)) list; (* newest first *)
  mutable flush_scheduled : bool;
  (* lifecycle / behaviour *)
  mutable running : bool;
  mutable timers : Sim.Engine.timer list;
  mutable misbehavior : misbehavior;
  counters : Sim.Stats.Counter.t;
  mutable on_execute_hooks : (exec_seq:int -> Msg.Update.t -> unit) list;
  (* Called whenever execution reaches a settled point: the ordering
     cursors, [Order.exec_seq], and the application state all describe the
     same point of the agreed history. Fired after each fully-executed
     batch and after a catchup reply is adopted in full — never mid-batch,
     where [Order.try_execute] has already advanced the cursors past the
     update currently being applied. *)
  mutable on_batch_hooks : (unit -> unit) list;
  (* False while catchup entries are being adopted: [Order.exec_cursor] and
     [next_exec_pp] lag the true execution point until the responder's
     cursors are installed at [cr_upto], so durable checkpoints taken in
     that window would not be a deterministic function of the ordered
     history. *)
  mutable cursors_settled : bool;
}

let null_app =
  { apply = (fun ~exec_seq:_ _ -> ()); state_transfer_needed = (fun () -> ()) }

let create ~engine ~trace ~keystore ~keypair ~transport ~id config =
  let t =
  {
    config;
    id;
    keypair;
    keystore;
    engine;
    trace;
    transport;
    app = null_app;
    preorder = Preorder.create config ~my_id:id;
    order = Order.create config ~my_id:id;
    view = 0;
    suspected_view = -1;
    suspects = Hashtbl.create 8;
    vc_reports = Hashtbl.create 8;
    leader_active = id = Config.leader_of_view config 0;
    view_live = true;
    my_vc_report = None;
    next_pp_seq = 1;
    last_pp_matrix_digest = "";
    last_pp_time = 0.0;
    last_summary_time = 0.0;
    tat_pending = [];
    origin_freshness = Hashtbl.create 8;
    executed_clients = Hashtbl.create 1024;
    exec_log = Hashtbl.create 4096;
    awaiting_app_transfer = false;
    catchup_votes = Hashtbl.create 8;
    outstanding_recon = Hashtbl.create 64;
    origin_synced = true;
    stored_resets = Hashtbl.create 8;
    rebase_reports = Hashtbl.create 8;
    sig_cache = Sigcache.create ~capacity:config.Config.sig_cache_capacity;
    outbox = [];
    flush_scheduled = false;
    running = false;
    timers = [];
    misbehavior = Honest;
    counters = Sim.Stats.Counter.create ();
    on_execute_hooks = [];
    on_batch_hooks = [];
    cursors_settled = true;
  }
  in
  (* Telemetry: certification has no single message of its own — it is
     completed by whichever request/ack closed the quorum — so the
     preorder state machine reports it through this hook. The global
     span store keeps only the first mark per stage, i.e. the earliest
     certification across the replica group. *)
  Preorder.set_on_certified t.preorder (fun ~origin ~po_seq ->
      if Obs.Registry.enabled Obs.Registry.default then
        match Preorder.update_for t.preorder ~origin ~po_seq with
        | Some u ->
            Obs.Registry.mark Obs.Registry.default ~trace:u.Msg.Update.op
              ~stage:Obs.Registry.stage_preorder ~time:(Sim.Engine.now engine)
        | None -> ());
  (* Health probes: no-ops unless a harness enabled the registry before
     building the deployment (ordinary tests never accumulate these). *)
  Obs.Probe.register Obs.Probe.default ~name:(Printf.sprintf "prime.replica.%d" id)
    (fun () ->
      [
        ("aru", float_of_int (Array.fold_left ( + ) 0 (Preorder.aru t.preorder)));
        ("backlog", float_of_int (List.length t.outbox));
        ("exec_seq", float_of_int (Order.exec_seq t.order));
        ("running", if t.running then 1.0 else 0.0);
        ("view", float_of_int t.view);
      ]);
  Obs.Probe.register Obs.Probe.default ~name:(Printf.sprintf "crypto.sigcache.%d" id)
    (fun () ->
      let hits = float_of_int (Sim.Stats.Counter.get t.counters "crypto.cache_hit") in
      let verifies = float_of_int (Sim.Stats.Counter.get t.counters "crypto.verify") in
      [
        ("hit_rate", if hits +. verifies > 0.0 then hits /. (hits +. verifies) else 0.0);
        ("hits", hits);
        ("size", float_of_int (Sigcache.size t.sig_cache));
        ("verifies", verifies);
      ]);
  t

let id t = t.id

let view t = t.view

let counters t = t.counters

let exec_seq t = Order.exec_seq t.order

let is_running t = t.running

let origin_synced t = t.origin_synced

let misbehavior t = t.misbehavior

let is_leader t = t.id = Config.leader_of_view t.config t.view && t.leader_active

let set_app t app = t.app <- app

let set_misbehavior t m = t.misbehavior <- m

(* Registration, not replacement: chaos invariants and the durable store
   both observe executions. *)
let set_on_execute t hook = t.on_execute_hooks <- t.on_execute_hooks @ [ hook ]

let set_on_batch_end t hook = t.on_batch_hooks <- t.on_batch_hooks @ [ hook ]

let cursors_settled t = t.cursors_settled

let now t = Sim.Engine.now t.engine

let tracef t fmt = Sim.Trace.record t.trace ~time:(now t) ~category:"prime" fmt

let silent t = (not t.running) || t.misbehavior = Crash_silent

let send t ~dst msg = if not (silent t) then t.transport.send ~dst msg

let broadcast t msg = if not (silent t) then t.transport.broadcast msg

(* --- amortized crypto pipeline ---------------------------------------- *)

let count_sign t =
  Sim.Stats.Counter.incr t.counters "crypto.sign";
  Obs.Registry.incr Obs.Registry.default "crypto.sign"

let count_check t = function
  | `Hit ->
      Sim.Stats.Counter.incr t.counters "crypto.cache_hit";
      Obs.Registry.incr Obs.Registry.default "crypto.cache_hit";
      true
  | `Valid ->
      Sim.Stats.Counter.incr t.counters "crypto.verify";
      Obs.Registry.incr Obs.Registry.default "crypto.verify";
      true
  | `Invalid ->
      Sim.Stats.Counter.incr t.counters "crypto.verify";
      Obs.Registry.incr Obs.Registry.default "crypto.verify";
      false

(* Direct (unbatched) signing: summaries, pre-prepares, view-change
   traffic, client replies — messages that are rare, latency-critical for
   protocol progress, or whose receivers span views. *)
let sign t body =
  count_sign t;
  Crypto.Auth.sign t.keypair body

let verify_from t ~rep body auth =
  count_check t
    (Sigcache.check t.sig_cache t.keystore ~signer:(Msg.replica_identity rep) body auth)

(* Client update signatures go through the same cache: the identical
   (client, body, tag) triple arrives via f+1 direct sends, n po-request
   relays and every retransmission thereof. *)
let verify_update t (u : Msg.Update.t) =
  count_check t
    (Sigcache.check_signature t.sig_cache t.keystore ~signer:u.Msg.Update.client
       (Msg.Update.encode u) u.Msg.Update.signature)

(* Summaries are re-verified inside every matrix; the cache collapses
   each re-check of an already-seen summary to a hash-table probe. *)
let verify_summary t (s : Msg.summary) =
  verify_from t ~rep:s.Msg.sum_rep (Msg.encode_summary s) s.Msg.sum_sig

(* Outbound batching: bodies queued within one batch window are signed
   under a single Merkle-aggregated signature at flush time. Only wire
   emission is deferred — local state transitions (our own prepare/commit
   counting toward quorums) happen immediately at the call site. *)
let flush_outbox t =
  t.flush_scheduled <- false;
  let items = List.rev t.outbox in
  t.outbox <- [];
  (match items with
  | [] -> ()
  | _ ->
      if Obs.Flight.recording Obs.Flight.default then
        Obs.Flight.record Obs.Flight.default ~time:(now t) ~severity:Obs.Flight.Info
          ~subsystem:"prime" ~kind:"batch.flush"
          (Printf.sprintf "replica %d flushed %d signed bodies" t.id (List.length items)));
  match items with
  | [] -> ()
  | [ (body, emit) ] ->
      (* A batch of one gains nothing from the proof machinery. *)
      count_sign t;
      Sim.Stats.Counter.incr t.counters "crypto.batch_flush";
      Sim.Stats.Counter.incr t.counters "crypto.batch_msgs";
      Obs.Registry.observe Obs.Registry.default "crypto.batch_size" 1.0;
      emit (Crypto.Auth.sign t.keypair body)
  | items ->
      let bodies = Array.of_list (List.map fst items) in
      count_sign t;
      Sim.Stats.Counter.incr t.counters "crypto.batch_flush";
      Sim.Stats.Counter.incr ~by:(Array.length bodies) t.counters "crypto.batch_msgs";
      Obs.Registry.observe Obs.Registry.default "crypto.batch_size"
        (float_of_int (Array.length bodies));
      let auths = Crypto.Auth.sign_batch t.keypair bodies in
      List.iteri (fun i (_, emit) -> emit auths.(i)) items

let enqueue_signed t body emit =
  if (not t.config.Config.batch_signing) || t.config.Config.batch_window <= 0.0 then
    emit (sign t body)
  else begin
    t.outbox <- (body, emit) :: t.outbox;
    if not t.flush_scheduled then begin
      t.flush_scheduled <- true;
      ignore
        (Sim.Engine.schedule t.engine ~delay:t.config.Config.batch_window (fun () ->
             flush_outbox t))
    end
  end

(* --- summaries --------------------------------------------------------- *)

let current_summary t =
  let aru = Preorder.aru t.preorder in
  let body = Msg.encode_summary_body ~sum_rep:t.id ~aru in
  { Msg.sum_rep = t.id; aru = Array.copy aru; sum_sig = sign t body }

let aru_sum a = Array.fold_left ( + ) 0 a

let emit_summary ?(arm_tat = true) t =
  let s = current_summary t in
  Preorder.receive_summary t.preorder s;
  t.last_summary_time <- now t;
  (* Turnaround-time deadlines are armed only for summaries carrying new
     information: a periodic refresh of an unchanged vector does not force
     the leader to produce a new pre-prepare, so timing it would create
     false suspicion. *)
  if arm_tat then
    t.tat_pending <- { sent_at = now t; sent_sum = aru_sum s.Msg.aru } :: t.tat_pending;
  Sim.Stats.Counter.incr t.counters "summary.sent";
  broadcast t (Msg.Po_summary s)

(* --- client updates and preordering -------------------------------------- *)

let reply_to_client t ~exec_seq (u : Msg.Update.t) =
  if silent t then ()
  else
  let body =
    Msg.encode_client_reply ~rep:t.id ~client:u.Msg.Update.client
      ~client_seq:u.Msg.Update.client_seq ~exec_seq
  in
  t.transport.reply_to_client ~client:u.Msg.Update.client
    (Msg.Client_reply
       {
         crep_rep = t.id;
         crep_client = u.Msg.Update.client;
         crep_client_seq = u.Msg.Update.client_seq;
         crep_exec_seq = exec_seq;
         crep_sig = sign t body;
       })

let handle_client_update t (u : Msg.Update.t) =
  if not t.origin_synced then
    (* Just recovered: do not assign preorder sequences until we have
       re-based our own sequence above anything used before the wipe.
       Clients retransmit, so dropping is safe. *)
    Sim.Stats.Counter.incr t.counters "update.deferred_unsynced"
  else if not (verify_update t u) then
    Sim.Stats.Counter.incr t.counters "update.bad_sig"
  else if Preorder.seen_update t.preorder u then begin
    Sim.Stats.Counter.incr t.counters "update.duplicate";
    (* Reply cache: a retransmission means the client may have lost our
       reply (e.g. its session failed over while we executed). *)
    match Hashtbl.find_opt t.executed_clients (Msg.Update.key u) with
    | Some exec_seq -> reply_to_client t ~exec_seq u
    | None -> ()
  end
  else begin
    Obs.Registry.mark Obs.Registry.default ~trace:u.Msg.Update.op
      ~stage:Obs.Registry.stage_accept ~time:(now t);
    Obs.Registry.incr Obs.Registry.default "prime.update.accepted";
    let po_seq = Preorder.assign t.preorder u in
    Sim.Stats.Counter.incr t.counters "update.accepted";
    let body = Msg.encode_po_request ~origin:t.id ~po_seq u in
    enqueue_signed t body (fun po_sig ->
        broadcast t (Msg.Po_request { origin = t.id; po_seq; update = u; po_sig }))
  end

let handle_po_request t ~origin ~po_seq update po_sig =
  let body = Msg.encode_po_request ~origin ~po_seq update in
  if not (verify_from t ~rep:origin body po_sig) then
    Sim.Stats.Counter.incr t.counters "po_request.bad_sig"
  else if not (verify_update t update) then
    Sim.Stats.Counter.incr t.counters "po_request.bad_update_sig"
  else
    let send_ack digest =
      let ack_body = Msg.encode_po_ack ~acker:t.id ~origin ~po_seq ~digest in
      enqueue_signed t ack_body (fun ack_sig ->
          broadcast t
            (Msg.Po_ack
               {
                 acker = t.id;
                 ack_origin = origin;
                 ack_po_seq = po_seq;
                 ack_digest = digest;
                 ack_sig;
               }))
    in
    match Preorder.receive_request t.preorder ~origin ~po_seq update with
    | `Conflict ->
        Sim.Stats.Counter.incr t.counters "po_request.conflict";
        tracef t "replica %d: conflicting po-request from %d at %d" t.id origin po_seq
    | `Already_acked digest ->
        (* A retransmitted request means someone is still missing acks:
           re-broadcast ours so recovering replicas can certify. *)
        send_ack digest
    | `Ack digest -> send_ack digest

let handle_po_ack t ~acker ~origin ~po_seq ~digest ack_sig =
  let body = Msg.encode_po_ack ~acker ~origin ~po_seq ~digest in
  if verify_from t ~rep:acker body ack_sig then
    Preorder.receive_ack t.preorder ~acker ~origin ~po_seq ~digest
  else Sim.Stats.Counter.incr t.counters "po_ack.bad_sig"

(* After a proactive recovery, re-base our preorder sequence above
   anything we may have used before the wipe: peers' summaries tell us
   how far our old incarnation got. The margin covers slots that were
   assigned but never certified. *)
let reset_margin = 100

let maybe_rebase_origin t (s : Msg.summary) =
  if (not t.origin_synced) && s.Msg.sum_rep <> t.id then begin
    (* Collect a quorum of reports before choosing the restart point:
       individual reporters (other recently-recovered replicas, or up to
       f byzantine ones) may report a stale view of our column. *)
    Hashtbl.replace t.rebase_reports s.Msg.sum_rep s.Msg.aru.(t.id);
    if Hashtbl.length t.rebase_reports >= t.config.Config.quorum then begin
      let known = Hashtbl.fold (fun _ v acc -> max v acc) t.rebase_reports 0 in
      let known = max known (Preorder.floor_of t.preorder ~origin:t.id) in
      let new_start = known + reset_margin in
      t.origin_synced <- true;
      Hashtbl.reset t.rebase_reports;
      Preorder.begin_reset t.preorder ~new_start;
      let body = Msg.encode_origin_reset ~rep:t.id ~new_start in
      let or_sig = sign t body in
      Hashtbl.replace t.stored_resets t.id (new_start, or_sig);
      Sim.Stats.Counter.incr t.counters "origin_reset.sent";
      tracef t "replica %d re-bases its preorder sequence at %d after recovery" t.id new_start;
      broadcast t (Msg.Origin_reset { or_rep = t.id; or_new_start = new_start; or_sig })
    end
  end

let handle_po_summary t (s : Msg.summary) =
  if verify_summary t s then begin
    maybe_rebase_origin t s;
    Preorder.receive_summary t.preorder s;
    (* Freshness bookkeeping for censorship detection: once I know origin
       r reached sum S, the leader must cover S within the allowance.
       A re-announcement of an already-known sum must not re-arm the
       deadline (periodic refreshes would otherwise cause false alarms
       whenever the leader has nothing new to propose). *)
    let sum = aru_sum s.Msg.aru in
    (match Hashtbl.find_opt t.origin_freshness s.Msg.sum_rep with
    | Some f when sum > f.best_sum ->
        f.best_sum <- sum;
        (* Each announcement must be covered within the allowance of the
           moment we learned it; while one deadline is pending, later
           announcements queue behind it (they get their own deadline when
           the pending one is covered). *)
        if f.cover_deadline = None then begin
          f.armed_sum <- sum;
          f.cover_deadline <- Some (now t +. t.config.Config.tat_allowance)
        end
    | Some _ -> ()
    | None ->
        Hashtbl.replace t.origin_freshness s.Msg.sum_rep
          {
            best_sum = sum;
            armed_sum = sum;
            cover_deadline = Some (now t +. t.config.Config.tat_allowance);
          })
  end
  else Sim.Stats.Counter.incr t.counters "summary.bad_sig"

(* --- execution -------------------------------------------------------------- *)

let request_missing t missing =
  List.iter
    (fun { Order.miss_origin; miss_po_seq } ->
      let key = (miss_origin, miss_po_seq) in
      if not (Hashtbl.mem t.outstanding_recon key) then begin
        Hashtbl.replace t.outstanding_recon key (now t);
        Sim.Stats.Counter.incr t.counters "recon.requested";
        broadcast t
          (Msg.Recon_request { rr_rep = t.id; rr_origin = miss_origin; rr_po_seq = miss_po_seq })
      end)
    missing

let execute_ready t =
  if not t.awaiting_app_transfer then begin
    let update_for ~origin ~po_seq = Preorder.update_for t.preorder ~origin ~po_seq in
    let floor_for ~origin = Preorder.floor_of t.preorder ~origin in
    let executed, missing = Order.try_execute t.order ~update_for ~floor_for in
    List.iter
      (fun (exec_seq, _origin, _po_seq, u) ->
        Hashtbl.remove t.outstanding_recon (_origin, _po_seq);
        Hashtbl.replace t.exec_log exec_seq u;
        Hashtbl.remove t.exec_log (exec_seq - t.config.Config.log_retention);
        (* Client-level dedup: the same supervisory command introduced by
           several origins executes only once against the application. *)
        if not (Hashtbl.mem t.executed_clients (Msg.Update.key u)) then begin
          Hashtbl.replace t.executed_clients (Msg.Update.key u) exec_seq;
          Sim.Stats.Counter.incr t.counters "executed";
          Obs.Registry.incr Obs.Registry.default "prime.executed";
          Obs.Registry.mark Obs.Registry.default ~trace:u.Msg.Update.op
            ~stage:Obs.Registry.stage_execute ~time:(now t);
          t.app.apply ~exec_seq u;
          List.iter (fun h -> h ~exec_seq u) t.on_execute_hooks;
          reply_to_client t ~exec_seq u
        end
        else Sim.Stats.Counter.incr t.counters "executed.duplicate_client_seq")
      executed;
    if executed <> [] then List.iter (fun h -> h ()) t.on_batch_hooks;
    if missing <> [] then request_missing t missing
  end

(* --- ordering ----------------------------------------------------------------- *)

let matrix_for_proposal t =
  let my_summary = current_summary t in
  let m = Preorder.matrix t.preorder ~my_summary in
  (match t.misbehavior with
  | Censor_origin o when o <> t.id -> m.(o) <- None
  | Honest | Crash_silent | Slow_leader _ | Censor_origin _ | Equivocate -> ());
  m

let matrix_valid t (m : Msg.matrix) =
  Array.for_all (function None -> true | Some s -> verify_summary t s) m

let broadcast_commit t ~view ~pp_seq ~digest =
  let body = Msg.encode_commit ~rep:t.id ~view ~pp_seq ~digest in
  enqueue_signed t body (fun com_sig ->
      (* Retain our own authenticator for commit-certificate serving (it
         materializes only here, at batch-flush time). *)
      Order.record_commit_auth t.order ~rep:t.id ~view ~pp_seq ~digest com_sig;
      broadcast t
        (Msg.Commit
           { com_rep = t.id; com_view = view; com_seq = pp_seq; com_digest = digest;
             com_sig }));
  if Order.add_commit t.order ~rep:t.id ~view ~pp_seq ~digest then execute_ready t

let broadcast_prepare t ~view ~pp_seq ~digest =
  let body = Msg.encode_prepare ~rep:t.id ~view ~pp_seq ~digest in
  enqueue_signed t body (fun prep_sig ->
      broadcast t
        (Msg.Prepare
           { prep_rep = t.id; prep_view = view; prep_seq = pp_seq; prep_digest = digest;
             prep_sig }));
  (* Our own prepare may complete the quorum (e.g. when ours is the last
     to be counted locally). *)
  if Order.add_prepare t.order ~rep:t.id ~view ~pp_seq ~digest then
    broadcast_commit t ~view ~pp_seq ~digest

let note_tat_covered t (m : Msg.matrix) =
  (match m.(t.id) with
  | Some s ->
      let covered = aru_sum s.Msg.aru in
      let still_pending, covered_entries =
        List.partition (fun p -> p.sent_sum > covered) t.tat_pending
      in
      List.iter
        (fun p ->
          let tat = now t -. p.sent_at in
          Sim.Stats.Counter.incr t.counters "tat.measured";
          ignore tat)
        covered_entries;
      t.tat_pending <- still_pending
  | None -> ());
  (* Freshness deadlines satisfied by this matrix. Covering the armed
     announcement clears its deadline; if fresher information is already
     waiting, a new deadline is armed for it from now — so a leader with
     a bounded lag is fine, while persistent censorship still fires
     within one allowance. *)
  Array.iteri
    (fun origin entry ->
      match (entry, Hashtbl.find_opt t.origin_freshness origin) with
      | Some s, Some f when aru_sum s.Msg.aru >= f.armed_sum ->
          if f.best_sum > aru_sum s.Msg.aru then begin
            f.armed_sum <- f.best_sum;
            f.cover_deadline <- Some (now t +. t.config.Config.tat_allowance)
          end
          else f.cover_deadline <- None
      | _ -> ())
    m

let rec emit_pre_prepare ?delay_broadcast t =
  let matrix = matrix_for_proposal t in
  let digest_now = Msg.encode_matrix matrix in
  let heartbeat_due = now t -. t.last_pp_time >= t.config.Config.heartbeat_period in
  if (not (String.equal digest_now t.last_pp_matrix_digest)) || heartbeat_due then begin
    t.last_pp_matrix_digest <- digest_now;
    t.last_pp_time <- now t;
    let pp_seq = t.next_pp_seq in
    t.next_pp_seq <- t.next_pp_seq + 1;
    let view = t.view in
    let body = Msg.encode_pre_prepare ~view ~pp_seq matrix in
    let pp_sig = sign t body in
    let send () =
      if t.view = view && not (silent t) then begin
        Sim.Stats.Counter.incr t.counters "pre_prepare.sent";
        broadcast t (Msg.Pre_prepare { pp_view = view; pp_seq; pp_matrix = matrix; pp_sig });
        (* The leader is a participant too: accept our own pre-prepare. *)
        handle_pre_prepare t ~pp_view:view ~pp_seq ~matrix pp_sig
      end
    in
    match delay_broadcast with
    | None -> send ()
    | Some extra ->
        (* A lagging leader proposes *stale* information: the matrix was
           captured now but only reaches the wire [extra] later, so every
           summary's coverage — and thus every update's ordering — is
           delayed by [extra]. *)
        ignore (Sim.Engine.schedule t.engine ~delay:extra send)
  end

and leader_tick t =
  if is_leader t && not (silent t) then
    match t.misbehavior with
    | Slow_leader extra -> emit_pre_prepare ~delay_broadcast:extra t
    | Honest | Censor_origin _ -> emit_pre_prepare t
    | Equivocate -> emit_equivocation t
    | Crash_silent -> ()

(* A fully Byzantine leader with its signing key: send one pre-prepare to
   half the replicas and a conflicting one to the other half. Safety must
   hold regardless (neither variant can gather a prepare quorum), at the
   cost of liveness until the suspect-leader protocol evicts it. *)
and emit_equivocation t =
  let matrix_a = matrix_for_proposal t in
  let matrix_b = Array.copy matrix_a in
  (* The conflicting variant hides one honest summary. *)
  let victim = (t.id + 1) mod t.config.Config.n in
  matrix_b.(victim) <- None;
  let pp_seq = t.next_pp_seq in
  t.next_pp_seq <- t.next_pp_seq + 1;
  let view = t.view in
  let msg_of matrix =
    let body = Msg.encode_pre_prepare ~view ~pp_seq matrix in
    Msg.Pre_prepare { pp_view = view; pp_seq; pp_matrix = matrix; pp_sig = sign t body }
  in
  let a = msg_of matrix_a and b = msg_of matrix_b in
  Sim.Stats.Counter.incr t.counters "pre_prepare.equivocated";
  for dst = 0 to t.config.Config.n - 1 do
    if dst <> t.id then send t ~dst (if dst mod 2 = 0 then a else b)
  done

and handle_pre_prepare t ~pp_view ~pp_seq ~matrix pp_sig =
  let leader = Config.leader_of_view t.config pp_view in
  let body = Msg.encode_pre_prepare ~view:pp_view ~pp_seq matrix in
  if not (verify_from t ~rep:leader body pp_sig) then
    Sim.Stats.Counter.incr t.counters "pre_prepare.bad_sig"
  else if pp_view < t.view then Sim.Stats.Counter.incr t.counters "pre_prepare.stale_view"
  else if not (matrix_valid t matrix) then
    Sim.Stats.Counter.incr t.counters "pre_prepare.bad_matrix"
  else begin
    if pp_view > t.view then begin
      (* A recovering or partitioned replica adopts the established view. *)
      tracef t "replica %d adopts view %d from pre-prepare" t.id pp_view;
      enter_view t pp_view ~report:false
    end;
    (* A verified pre-prepare from the current view's leader is proof the
       view works: stop retransmitting our view-change report. *)
    if pp_view = t.view then t.view_live <- true;
    (* Learn peers' summaries from the matrix: keeps followers' matrices
       converging even when individual summary broadcasts were lost. *)
    Array.iter
      (function
        | Some s ->
            maybe_rebase_origin t s;
            Preorder.receive_summary t.preorder s
        | None -> ())
      matrix;
    note_tat_covered t matrix;
    match Order.accept_pre_prepare t.order ~view:pp_view ~pp_seq ~matrix ~pp_sig with
    | `Accept digest -> broadcast_prepare t ~view:pp_view ~pp_seq ~digest
    | `Conflicting_leader ->
        Sim.Stats.Counter.incr t.counters "pre_prepare.equivocation";
        suspect_leader t pp_view
    | `Duplicate | `Already_ordered | `Stale -> ()
  end

and handle_prepare t ~rep ~view ~pp_seq ~digest sig_ =
  let body = Msg.encode_prepare ~rep ~view ~pp_seq ~digest in
  if verify_from t ~rep body sig_ then begin
    if Order.add_prepare t.order ~rep ~view ~pp_seq ~digest then
      broadcast_commit t ~view ~pp_seq ~digest
  end
  else Sim.Stats.Counter.incr t.counters "prepare.bad_sig"

and handle_commit t ~rep ~view ~pp_seq ~digest sig_ =
  let body = Msg.encode_commit ~rep ~view ~pp_seq ~digest in
  if verify_from t ~rep body sig_ then begin
    Order.record_commit_auth t.order ~rep ~view ~pp_seq ~digest sig_;
    if Order.add_commit t.order ~rep ~view ~pp_seq ~digest then begin
      Sim.Stats.Counter.incr t.counters "ordered";
      execute_ready t
    end
  end
  else Sim.Stats.Counter.incr t.counters "commit.bad_sig"

(* --- suspect-leader and view change ---------------------------------------------- *)

and suspect_leader t view =
  if view >= t.view && t.suspected_view < view then begin
    t.suspected_view <- view;
    Sim.Stats.Counter.incr t.counters "suspect.sent";
    if Obs.Flight.recording Obs.Flight.default then
      Obs.Flight.record Obs.Flight.default ~time:(now t) ~severity:Obs.Flight.Warn
        ~subsystem:"prime" ~kind:"leader.suspect"
        (Printf.sprintf "replica %d suspects leader of view %d" t.id view);
    tracef t "replica %d suspects leader of view %d" t.id view;
    let body = Msg.encode_suspect ~rep:t.id ~view in
    broadcast t (Msg.Suspect_leader { sus_rep = t.id; sus_view = view; sus_sig = sign t body });
    note_suspect t ~rep:t.id ~view
  end

and note_suspect t ~rep ~view =
  let tbl =
    match Hashtbl.find_opt t.suspects view with
    | Some tbl -> tbl
    | None ->
        let tbl = Hashtbl.create 8 in
        Hashtbl.replace t.suspects view tbl;
        tbl
  in
  Hashtbl.replace tbl rep ();
  if view >= t.view && Hashtbl.length tbl >= t.config.Config.quorum then begin
    tracef t "replica %d: view %d has a suspicion quorum, moving to view %d" t.id view (view + 1);
    enter_view t (view + 1) ~report:true
  end

and enter_view t view ~report =
  if view > t.view then begin
    t.view <- view;
    t.leader_active <- false;
    t.view_live <- false;
    t.my_vc_report <- None;
    t.tat_pending <- [];
    (* Give the new leader a clean slate of deadlines, but remember which
       sums we already know: re-announcements (periodic refreshes) of old
       information must not arm deadlines against the new leader. *)
    Hashtbl.iter (fun _ f -> f.cover_deadline <- None) t.origin_freshness;
    Sim.Stats.Counter.incr t.counters "view_change";
    if Obs.Flight.recording Obs.Flight.default then
      Obs.Flight.record Obs.Flight.default ~time:(now t) ~severity:Obs.Flight.Warn
        ~subsystem:"prime" ~kind:"view.change"
        (Printf.sprintf "replica %d enters view %d" t.id view);
    if report then begin
      let prepared = Order.prepared_certs t.order in
      let max_ordered = Order.max_executed t.order in
      let body =
        Msg.encode_vc_report ~rep:t.id ~view ~max_ordered ~prepared
      in
      let msg =
        Msg.Vc_report
          { vc_rep = t.id; vc_view = view; vc_max_ordered = max_ordered;
            vc_prepared = prepared; vc_sig = sign t body }
      in
      t.my_vc_report <- Some msg;
      broadcast t msg;
      handle_vc_report t ~rep:t.id ~view ~max_ordered ~prepared (sign t body)
    end
  end

and handle_vc_report t ~rep ~view ~max_ordered ~prepared sig_ =
  let body = Msg.encode_vc_report ~rep ~view ~max_ordered ~prepared in
  if not (verify_from t ~rep body sig_) then
    Sim.Stats.Counter.incr t.counters "vc.bad_sig"
  else if view < t.view then ()
  else begin
    if view > t.view then enter_view t view ~report:true;
    let tbl =
      match Hashtbl.find_opt t.vc_reports view with
      | Some tbl -> tbl
      | None ->
          let tbl = Hashtbl.create 8 in
          Hashtbl.replace t.vc_reports view tbl;
          tbl
    in
    Hashtbl.replace tbl rep
      (Msg.Vc_report { vc_rep = rep; vc_view = view; vc_max_ordered = max_ordered;
                       vc_prepared = prepared; vc_sig = sig_ });
    maybe_activate_leader t view
  end

and maybe_activate_leader t view =
  if
    view = t.view
    && t.id = Config.leader_of_view t.config view
    && not t.leader_active
  then
    match Hashtbl.find_opt t.vc_reports view with
    | Some tbl when Hashtbl.length tbl >= t.config.Config.quorum ->
        t.leader_active <- true;
        t.view_live <- true;
        Sim.Stats.Counter.incr t.counters "leader.activated";
        if Obs.Flight.recording Obs.Flight.default then
          Obs.Flight.record Obs.Flight.default ~time:(now t) ~severity:Obs.Flight.Info
            ~subsystem:"prime" ~kind:"leader.activated"
            (Printf.sprintf "replica %d leads view %d" t.id view);
        tracef t "replica %d is the active leader of view %d" t.id view;
        (* Re-propose every prepared certificate above the highest ordered
           point any reporter disclosed, then continue fresh. *)
        let reports = Hashtbl.fold (fun _ m acc -> m :: acc) tbl [] in
        let max_ordered =
          List.fold_left
            (fun acc m ->
              match m with Msg.Vc_report { vc_max_ordered; _ } -> max acc vc_max_ordered | _ -> acc)
            (Order.max_executed t.order) reports
        in
        let to_repropose = Hashtbl.create 8 in
        List.iter
          (fun m ->
            match m with
            | Msg.Vc_report { vc_prepared; _ } ->
                List.iter
                  (fun (c : Msg.prepared_cert) ->
                    if c.Msg.pc_seq > max_ordered then
                      match Hashtbl.find_opt to_repropose c.Msg.pc_seq with
                      | Some (existing : Msg.prepared_cert) when existing.Msg.pc_view >= c.Msg.pc_view -> ()
                      | _ -> Hashtbl.replace to_repropose c.Msg.pc_seq c)
                  vc_prepared
            | _ -> ())
          reports;
        let reproposals =
          Hashtbl.fold (fun _ c acc -> c :: acc) to_repropose []
          |> List.sort (fun a b -> compare a.Msg.pc_seq b.Msg.pc_seq)
        in
        let highest =
          List.fold_left (fun acc c -> max acc c.Msg.pc_seq) max_ordered reproposals
        in
        t.next_pp_seq <- max (highest + 1) (Order.max_seen_pp t.order + 1);
        t.last_pp_matrix_digest <- "";
        List.iter
          (fun (c : Msg.prepared_cert) ->
            let body = Msg.encode_pre_prepare ~view ~pp_seq:c.Msg.pc_seq c.Msg.pc_matrix in
            let pp_sig = sign t body in
            broadcast t
              (Msg.Pre_prepare
                 { pp_view = view; pp_seq = c.Msg.pc_seq; pp_matrix = c.Msg.pc_matrix;
                   pp_sig });
            handle_pre_prepare t ~pp_view:view ~pp_seq:c.Msg.pc_seq ~matrix:c.Msg.pc_matrix
              pp_sig)
          reproposals;
        (* Gap filling: sequences between [max_ordered] and [next_pp_seq]
           covered by neither a re-proposal nor a local ordering are
           pre-prepares of the old view that never gathered a prepare
           quorum anywhere — the execution walk is strictly sequential,
           so leaving them unproposed wedges every replica forever (the
           old leader's retransmissions are now stale-view). Re-proposing
           fresh content there is safe: had the sequence been ordered
           anywhere, a quorum of reports necessarily includes either a
           prepared certificate for it or a reporter whose max_ordered
           covers it (quorum intersection). *)
        let fill_matrix = ref None in
        for pp_seq = max_ordered + 1 to t.next_pp_seq - 1 do
          if (not (Hashtbl.mem to_repropose pp_seq)) && not (Order.is_ordered t.order pp_seq)
          then begin
            let matrix =
              match !fill_matrix with
              | Some m -> m
              | None ->
                  let m = matrix_for_proposal t in
                  fill_matrix := Some m;
                  m
            in
            Sim.Stats.Counter.incr t.counters "pre_prepare.gap_fill";
            let body = Msg.encode_pre_prepare ~view ~pp_seq matrix in
            let pp_sig = sign t body in
            broadcast t
              (Msg.Pre_prepare { pp_view = view; pp_seq; pp_matrix = matrix; pp_sig });
            handle_pre_prepare t ~pp_view:view ~pp_seq ~matrix pp_sig
          end
        done
    | Some _ | None -> ()

(* Suspect evaluation: any summary of mine that the leader failed to cover
   within the allowance, or any origin whose known-fresh summary the
   leader keeps omitting, triggers suspicion. *)
let tat_check t =
  let deadline_passed = ref false in
  List.iter
    (fun p ->
      if now t -. p.sent_at > t.config.Config.tat_allowance then deadline_passed := true)
    t.tat_pending;
  Hashtbl.iter
    (fun _origin f ->
      match f.cover_deadline with
      | Some deadline when now t > deadline -> deadline_passed := true
      | Some _ | None -> ())
    t.origin_freshness;
  if !deadline_passed then suspect_leader t t.view

(* --- reconciliation / catchup -------------------------------------------------------- *)

let apply_origin_reset t ~origin ~new_start or_sig =
  let body = Msg.encode_origin_reset ~rep:origin ~new_start in
  if verify_from t ~rep:origin body or_sig then begin
    if Preorder.apply_origin_reset t.preorder ~origin ~new_start then begin
      Hashtbl.replace t.stored_resets origin (new_start, or_sig);
      Sim.Stats.Counter.incr t.counters "origin_reset.applied";
      (* Requests for voided slots are moot now. *)
      Hashtbl.iter
        (fun (o, s) _ ->
          if o = origin && s < new_start then Hashtbl.remove t.outstanding_recon (o, s))
        (Hashtbl.copy t.outstanding_recon);
      execute_ready t
    end
  end
  else Sim.Stats.Counter.incr t.counters "origin_reset.bad_sig"

let handle_recon_request t ~rr_rep ~rr_origin ~rr_po_seq =
  (* A request for a slot voided by an origin reset is answered with the
     relayed (origin-signed) reset instead of a body. *)
  if rr_po_seq <= Preorder.floor_of t.preorder ~origin:rr_origin then begin
    match Hashtbl.find_opt t.stored_resets rr_origin with
    | Some (new_start, or_sig) ->
        send t ~dst:rr_rep
          (Msg.Recon_floor { rf_origin = rr_origin; rf_new_start = new_start; rf_sig = or_sig })
    | None -> ()
  end
  else
    match Preorder.update_for t.preorder ~origin:rr_origin ~po_seq:rr_po_seq with
    | Some u ->
        send t ~dst:rr_rep
          (Msg.Recon_reply { rp_rep = t.id; rp_origin = rr_origin; rp_po_seq = rr_po_seq; rp_update = u })
    | None -> ()

let handle_recon_reply t ~rp_origin ~rp_po_seq ~rp_update =
  if verify_update t rp_update then begin
    match Preorder.store_body t.preorder ~origin:rp_origin ~po_seq:rp_po_seq rp_update with
    | `Stored ->
        Hashtbl.remove t.outstanding_recon (rp_origin, rp_po_seq);
        execute_ready t
    | `Mismatch -> Sim.Stats.Counter.incr t.counters "recon.digest_mismatch"
  end

let reconcile_tick t =
  let horizon = now t -. t.config.Config.reconcile_period in
  Hashtbl.iter
    (fun (origin, po_seq) asked ->
      if asked < horizon then begin
        Hashtbl.replace t.outstanding_recon (origin, po_seq) (now t);
        broadcast t (Msg.Recon_request { rr_rep = t.id; rr_origin = origin; rr_po_seq = po_seq })
      end)
    t.outstanding_recon;
  (* Ordering-message retransmission: relay the (leader-signed)
     pre-prepare and our own prepare/commit for the oldest instances still
     blocking execution, so replicas that missed them can complete the
     quorum. *)
  List.iter
    (fun (pp_seq, view, matrix, digest, pp_sig, prepared) ->
      if view = t.view then begin
        Sim.Stats.Counter.incr t.counters "order.retransmit";
        broadcast t (Msg.Pre_prepare { pp_view = view; pp_seq; pp_matrix = matrix; pp_sig });
        let prep_body = Msg.encode_prepare ~rep:t.id ~view ~pp_seq ~digest in
        enqueue_signed t prep_body (fun prep_sig ->
            broadcast t
              (Msg.Prepare
                 { prep_rep = t.id; prep_view = view; prep_seq = pp_seq;
                   prep_digest = digest; prep_sig }));
        if prepared then begin
          let com_body = Msg.encode_commit ~rep:t.id ~view ~pp_seq ~digest in
          enqueue_signed t com_body (fun com_sig ->
              Order.record_commit_auth t.order ~rep:t.id ~view ~pp_seq ~digest com_sig;
              broadcast t
                (Msg.Commit
                   { com_rep = t.id; com_view = view; com_seq = pp_seq;
                     com_digest = digest; com_sig }))
        end
      end)
    (Order.stalled_instances t.order ~limit:5);
  (* View-change liveness: suspicion and reports are sent once on the
     transition, so on a lossy network a dropped copy can leave the
     cluster split across views (or the new leader one report short of
     its activation quorum) forever. Retransmit both until the view
     demonstrably works. *)
  if t.suspected_view = t.view then begin
    Sim.Stats.Counter.incr t.counters "suspect.retransmit";
    let body = Msg.encode_suspect ~rep:t.id ~view:t.view in
    broadcast t
      (Msg.Suspect_leader { sus_rep = t.id; sus_view = t.view; sus_sig = sign t body })
  end;
  if not t.view_live then begin
    match t.my_vc_report with
    | Some msg ->
        Sim.Stats.Counter.incr t.counters "vc.retransmit";
        broadcast t msg
    | None -> ()
  end;
  (* Origin-side retransmission: rebroadcast our own PO-Requests that are
     not *executed* yet. Resending until execution (not merely until our
     own certification) matters: we may hold a certificate while peers
     are still missing acknowledgements that were lost, and only a
     retransmitted request makes them re-ack. *)
  let my_floor = Preorder.floor_of t.preorder ~origin:t.id in
  let my_done = max (Order.exec_cursor t.order).(t.id) my_floor in
  let next = Preorder.next_po_seq t.preorder in
  let limit = min next (my_done + 20) (* resend a bounded window per tick *) in
  for po_seq = my_done + 1 to limit do
    match Preorder.update_for t.preorder ~origin:t.id ~po_seq with
    | Some u ->
        Sim.Stats.Counter.incr t.counters "po_request.retransmit";
        let body = Msg.encode_po_request ~origin:t.id ~po_seq u in
        enqueue_signed t body (fun po_sig ->
            broadcast t (Msg.Po_request { origin = t.id; po_seq; update = u; po_sig }))
    | None -> ()
  done

(* Catchup replies are matched by the digest of their canonical binary
   encoding; the digest only keys the local vote table, so raw bytes
   suffice (no hex round-trip). *)
let catchup_digest entries ~upto ~next_exec_pp ~cursor =
  Crypto.Sha256.digest
    (Wire.encode ~size_hint:256 (fun b ->
         Buffer.add_string b "catchup:";
         Wire.w_int b upto;
         Wire.w_int b next_exec_pp;
         Wire.w_int_array b cursor;
         Wire.w_u32 b (List.length entries);
         List.iter
           (fun (i, u) ->
             Wire.w_int b i;
             Wire.w_str b (Msg.Update.encode u))
           entries))

(* Commit certificates are served in a bounded window per request: the
   requester re-probes once its cursor advances. *)
let catchup_cert_window = 8

let handle_catchup_request t ~cu_rep ~cu_from ~cu_next_pp =
  (* Serve commit certificates for ordered instances at or above the
     requester's ordering cursor. This is what re-drives ordering to
     completion after a heal: a replica that already ordered (and maybe
     executed) an instance never re-sends its commit, and the stragglers'
     own quorums can be permanently incompletable — the certificate is
     the proof they can no longer assemble from live traffic. *)
  if cu_next_pp >= 1 then begin
    let upper = min (Order.max_ordered_seen t.order) (cu_next_pp + catchup_cert_window - 1) in
    for pp_seq = cu_next_pp to upper do
      match Order.ordered_cert t.order pp_seq with
      | Some (oc_view, oc_matrix, oc_pp_sig, oc_commits) ->
          Sim.Stats.Counter.incr t.counters "order_cert.served";
          send t ~dst:cu_rep
            (Msg.Order_cert
               { oc_rep = t.id; oc_seq = pp_seq; oc_view; oc_matrix; oc_pp_sig; oc_commits })
      | None -> ()
    done
  end;
  let my_max = Order.exec_seq t.order in
  if cu_from <= my_max then begin
    let oldest_retained = max 1 (my_max - t.config.Config.log_retention + 1) in
    let reply ~entries ~behind =
      send t ~dst:cu_rep
        (Msg.Catchup_reply
           {
             cr_rep = t.id;
             cr_entries = entries;
             cr_upto = my_max;
             cr_behind_log = behind;
             cr_next_exec_pp = Order.next_exec_pp t.order;
             cr_cursor = Order.exec_cursor t.order;
           })
    in
    if cu_from < oldest_retained then reply ~entries:[] ~behind:true
    else begin
      let entries = ref [] in
      for i = my_max downto cu_from do
        match Hashtbl.find_opt t.exec_log i with
        | Some u -> entries := (i, u) :: !entries
        | None -> ()
      done;
      reply ~entries:!entries ~behind:false
    end
  end

(* Catchup replies are only trusted with f + 1 matching copies: a single
   compromised replica cannot feed a recovering peer fabricated history. *)
let handle_catchup_reply t ~cr_entries ~cr_upto ~cr_behind_log ~cr_next_exec_pp ~cr_cursor =
  if cr_upto > Order.exec_seq t.order then begin
    let sample =
      Msg.Catchup_reply
        { cr_rep = 0; cr_entries; cr_upto; cr_behind_log; cr_next_exec_pp; cr_cursor }
    in
    if cr_behind_log then begin
      let key = "behind" in
      let count =
        match Hashtbl.find_opt t.catchup_votes key with Some (c, _) -> c + 1 | None -> 1
      in
      Hashtbl.replace t.catchup_votes key (count, sample);
      if count >= t.config.Config.f + 1 && not t.awaiting_app_transfer then begin
        t.awaiting_app_transfer <- true;
        Hashtbl.reset t.catchup_votes;
        Sim.Stats.Counter.incr t.counters "catchup.app_transfer_needed";
        tracef t "replica %d: catchup impossible at replication level, signalling application"
          t.id;
        t.app.state_transfer_needed ()
      end
    end
    else begin
      let all_valid = List.for_all (fun (_, u) -> verify_update t u) cr_entries in
      if all_valid then begin
        let key =
          "entries:"
          ^ catchup_digest cr_entries ~upto:cr_upto ~next_exec_pp:cr_next_exec_pp
              ~cursor:cr_cursor
        in
        let count =
          match Hashtbl.find_opt t.catchup_votes key with Some (c, _) -> c + 1 | None -> 1
        in
        Hashtbl.replace t.catchup_votes key (count, sample);
        if count >= t.config.Config.f + 1 then begin
          Hashtbl.reset t.catchup_votes;
          let applied = ref 0 in
          List.iter
            (fun (exec_seq, u) ->
              if exec_seq = Order.exec_seq t.order + 1 then begin
                incr applied;
                t.cursors_settled <- false;
                Hashtbl.replace t.exec_log exec_seq u;
                if not (Hashtbl.mem t.executed_clients (Msg.Update.key u)) then begin
                  Hashtbl.replace t.executed_clients (Msg.Update.key u) exec_seq;
                  t.app.apply ~exec_seq u;
                  List.iter (fun h -> h ~exec_seq u) t.on_execute_hooks
                end;
                Order.install_checkpoint t.order
                  ~next_exec_pp:(Order.next_exec_pp t.order)
                  ~exec_seq ~cursor:(Order.exec_cursor t.order)
              end)
            cr_entries;
          (* If the reply brought us fully current, adopt the responder's
             ordering cursors so normal execution resumes from here, and
             fast-forward the preorder floors to match: slots below the
             cursor are settled history this replica will never re-certify. *)
          if Order.exec_seq t.order = cr_upto then begin
            Order.install_checkpoint t.order ~next_exec_pp:cr_next_exec_pp
              ~exec_seq:cr_upto ~cursor:cr_cursor;
            Preorder.install_floors t.preorder ~cursor:cr_cursor;
            t.cursors_settled <- true;
            List.iter (fun h -> h ()) t.on_batch_hooks
          end;
          if !applied > 0 then Sim.Stats.Counter.incr ~by:!applied t.counters "catchup.applied"
        end
      end
    end
  end

(* Install a relayed commit certificate after verifying every
   constituent: the leader's pre-prepare authenticator over the matrix
   and a quorum of distinct commit authenticators over the derived
   digest. Nothing about the relayer is trusted. *)
let handle_order_cert t ~oc_seq ~oc_view ~oc_matrix ~oc_pp_sig ~oc_commits =
  if oc_seq >= Order.next_exec_pp t.order && not (Order.is_ordered t.order oc_seq) then begin
    let leader = Config.leader_of_view t.config oc_view in
    let pp_body = Msg.encode_pre_prepare ~view:oc_view ~pp_seq:oc_seq oc_matrix in
    if not (verify_from t ~rep:leader pp_body oc_pp_sig) then
      Sim.Stats.Counter.incr t.counters "order_cert.bad_pp_sig"
    else if not (matrix_valid t oc_matrix) then
      Sim.Stats.Counter.incr t.counters "order_cert.bad_matrix"
    else begin
      let digest = Msg.matrix_digest ~view:oc_view ~pp_seq:oc_seq oc_matrix in
      let voters = Hashtbl.create 8 in
      List.iter
        (fun (rep, auth) ->
          if rep >= 0 && rep < t.config.Config.n && not (Hashtbl.mem voters rep) then begin
            let body = Msg.encode_commit ~rep ~view:oc_view ~pp_seq:oc_seq ~digest in
            if verify_from t ~rep body auth then Hashtbl.replace voters rep auth
          end)
        oc_commits;
      if Hashtbl.length voters < t.config.Config.quorum then
        Sim.Stats.Counter.incr t.counters "order_cert.short_quorum"
      else begin
        (* Learn the matrix's summaries exactly as a pre-prepare would:
           eligibility derivation needs the preorder state converging. *)
        Array.iter
          (function
            | Some s ->
                maybe_rebase_origin t s;
                Preorder.receive_summary t.preorder s
            | None -> ())
          oc_matrix;
        let commits = Hashtbl.fold (fun rep auth acc -> (rep, auth) :: acc) voters [] in
        if
          Order.install_cert t.order ~pp_seq:oc_seq ~view:oc_view ~matrix:oc_matrix ~digest
            ~pp_sig:oc_pp_sig ~commits
        then begin
          Sim.Stats.Counter.incr t.counters "order_cert.installed";
          execute_ready t
        end
      end
    end
  end

let catchup_tick t =
  (* Probe when ordering has visibly moved past our execution point. *)
  if
    Order.max_seen_pp t.order > Order.next_exec_pp t.order + 2
    && not t.awaiting_app_transfer
  then begin
    Sim.Stats.Counter.incr t.counters "catchup.probe";
    broadcast t
      (Msg.Catchup_request
         {
           cu_rep = t.id;
           cu_from = Order.exec_seq t.order + 1;
           cu_next_pp = Order.next_exec_pp t.order;
         })
  end

(* After the application completed its own state transfer (or ground-truth
   rebuild), fast-forward the replication cursors to match. *)
let install_app_checkpoint t ~next_exec_pp ~exec_seq ~cursor ~client_seqs =
  Order.install_checkpoint t.order ~next_exec_pp ~exec_seq ~cursor;
  Preorder.install_floors t.preorder ~cursor;
  Hashtbl.reset t.executed_clients;
  (* Exec points for transferred entries are unknown; 0 marks "executed
     before my checkpoint" (reply-cache answers then carry 0 and do not
     contribute to the client's f+1 matching set). *)
  List.iter (fun key -> Hashtbl.replace t.executed_clients key 0) client_seqs;
  t.awaiting_app_transfer <- false;
  t.cursors_settled <- true;
  Sim.Stats.Counter.incr t.counters "app_checkpoint.installed"

let order_state t =
  ( Order.next_exec_pp t.order,
    Order.exec_seq t.order,
    Order.exec_cursor t.order,
    Hashtbl.fold (fun key _ acc -> key :: acc) t.executed_clients [] )

(* --- message dispatch ------------------------------------------------------------------ *)

let handle_message t msg =
  if t.running then begin
    Sim.Stats.Counter.incr t.counters "msg.rx";
    match msg with
    | Msg.Update_msg u -> handle_client_update t u
    | Msg.Po_request { origin; po_seq; update; po_sig } ->
        handle_po_request t ~origin ~po_seq update po_sig;
        execute_ready t
    | Msg.Po_ack { acker; ack_origin; ack_po_seq; ack_digest; ack_sig } ->
        handle_po_ack t ~acker ~origin:ack_origin ~po_seq:ack_po_seq ~digest:ack_digest ack_sig
    | Msg.Po_summary s -> handle_po_summary t s
    | Msg.Pre_prepare { pp_view; pp_seq; pp_matrix; pp_sig } ->
        handle_pre_prepare t ~pp_view ~pp_seq ~matrix:pp_matrix pp_sig
    | Msg.Prepare { prep_rep; prep_view; prep_seq; prep_digest; prep_sig } ->
        handle_prepare t ~rep:prep_rep ~view:prep_view ~pp_seq:prep_seq ~digest:prep_digest
          prep_sig
    | Msg.Commit { com_rep; com_view; com_seq; com_digest; com_sig } ->
        handle_commit t ~rep:com_rep ~view:com_view ~pp_seq:com_seq ~digest:com_digest com_sig
    | Msg.Suspect_leader { sus_rep; sus_view; sus_sig } ->
        let body = Msg.encode_suspect ~rep:sus_rep ~view:sus_view in
        if verify_from t ~rep:sus_rep body sus_sig then note_suspect t ~rep:sus_rep ~view:sus_view
    | Msg.Vc_report { vc_rep; vc_view; vc_max_ordered; vc_prepared; vc_sig } ->
        handle_vc_report t ~rep:vc_rep ~view:vc_view ~max_ordered:vc_max_ordered
          ~prepared:vc_prepared vc_sig
    | Msg.Origin_reset { or_rep; or_new_start; or_sig } ->
        apply_origin_reset t ~origin:or_rep ~new_start:or_new_start or_sig
    | Msg.Recon_floor { rf_origin; rf_new_start; rf_sig } ->
        apply_origin_reset t ~origin:rf_origin ~new_start:rf_new_start rf_sig
    | Msg.Recon_request { rr_rep; rr_origin; rr_po_seq } ->
        handle_recon_request t ~rr_rep ~rr_origin ~rr_po_seq
    | Msg.Recon_reply { rp_origin; rp_po_seq; rp_update; _ } ->
        handle_recon_reply t ~rp_origin ~rp_po_seq ~rp_update
    | Msg.Order_cert { oc_seq; oc_view; oc_matrix; oc_pp_sig; oc_commits; oc_rep = _ } ->
        handle_order_cert t ~oc_seq ~oc_view ~oc_matrix ~oc_pp_sig ~oc_commits
    | Msg.Catchup_request { cu_rep; cu_from; cu_next_pp } ->
        handle_catchup_request t ~cu_rep ~cu_from ~cu_next_pp
    | Msg.Catchup_reply { cr_entries; cr_upto; cr_behind_log; cr_next_exec_pp; cr_cursor; _ } ->
        handle_catchup_reply t ~cr_entries ~cr_upto ~cr_behind_log ~cr_next_exec_pp ~cr_cursor
    | Msg.Client_reply _ -> () (* replicas do not consume client replies *)
  end

(* Client updates enter through the replica a client session is attached
   to (in Spire, via the external Spines network). *)
let submit_update t u = if t.running then handle_client_update t u

(* --- lifecycle ----------------------------------------------------------------------------- *)

let start t =
  if t.running then invalid_arg "Replica.start: already running";
  t.running <- true;
  let summary_timer =
    Sim.Engine.every t.engine ~period:t.config.Config.summary_period (fun () ->
        if not (silent t) then begin
          (* Emit when the vector advanced, and also refresh periodically:
             a lost summary must not leave the leader's matrix stale
             forever once traffic quiesces. *)
          let refresh_due =
            aru_sum (Preorder.aru t.preorder) > 0
            && now t -. t.last_summary_time >= t.config.Config.heartbeat_period
          in
          if Preorder.dirty t.preorder then begin
            Preorder.clear_dirty t.preorder;
            emit_summary t
          end
          else if refresh_due then emit_summary ~arm_tat:false t
        end)
  in
  let pp_timer = Sim.Engine.every t.engine ~period:t.config.Config.delta_pp (fun () -> leader_tick t) in
  let tat_timer =
    Sim.Engine.every t.engine ~period:t.config.Config.tat_check_period (fun () ->
        if not (silent t) then tat_check t)
  in
  let recon_timer =
    Sim.Engine.every t.engine ~period:t.config.Config.reconcile_period (fun () ->
        if not (silent t) then reconcile_tick t)
  in
  let catchup_timer =
    Sim.Engine.every t.engine ~period:1.0 (fun () -> if not (silent t) then catchup_tick t)
  in
  t.timers <- [ summary_timer; pp_timer; tat_timer; recon_timer; catchup_timer ]

let shutdown t =
  if t.running then begin
    t.running <- false;
    List.iter (Sim.Engine.cancel_timer t.engine) t.timers;
    t.timers <- []
  end

(* Proactive recovery: come back with protocol state wiped (the new
   diverse variant starts from a clean image) and let catchup / the
   application state transfer rebuild. The keypair survives (keys are
   re-provisioned by the recovery infrastructure). *)
let restart_clean t =
  if t.running then shutdown t;
  t.preorder <- Preorder.create t.config ~my_id:t.id;
  t.order <- Order.create t.config ~my_id:t.id;
  t.view <- 0;
  t.suspected_view <- -1;
  Hashtbl.reset t.suspects;
  Hashtbl.reset t.vc_reports;
  t.leader_active <- t.id = Config.leader_of_view t.config 0;
  t.view_live <- true;
  t.my_vc_report <- None;
  t.next_pp_seq <- 1;
  t.last_pp_matrix_digest <- "";
  t.last_pp_time <- 0.0;
  t.tat_pending <- [];
  Hashtbl.reset t.origin_freshness;
  Hashtbl.reset t.executed_clients;
  Hashtbl.reset t.exec_log;
  t.awaiting_app_transfer <- false;
  t.cursors_settled <- true;
  Hashtbl.reset t.catchup_votes;
  Hashtbl.reset t.outstanding_recon;
  Hashtbl.reset t.stored_resets;
  Hashtbl.reset t.rebase_reports;
  (* Forget cached verifications and drop queued-but-unsigned outbound
     bodies: they reference pre-wipe state. *)
  Sigcache.clear t.sig_cache;
  t.outbox <- [];
  t.flush_scheduled <- false;
  t.origin_synced <- false;
  t.misbehavior <- Honest;
  start t;
  (* Announce our (empty) vector right away: after a whole-system reset
     every replica is waiting for a quorum of peers' summaries to choose
     its new starting sequence. *)
  Preorder.force_dirty t.preorder
