(* Prime protocol messages with canonical binary encodings for signing.

   Every protocol message is authenticated by its sender and verified on
   receipt; client updates carry their own client signature end-to-end (a
   replica cannot fabricate supervisory commands on behalf of an HMI).
   Replica-to-replica authenticators are [Crypto.Auth.t]: either a direct
   signature or a share of a Merkle-aggregated batch signature — the
   amortization that keeps the signing hot path off the latency budget.

   Canonical bodies are built with the binary [Wire] codec: fixed-width
   big-endian integers and raw 32-byte digests, with a leading tag byte
   per body kind for domain separation. The previous sprintf/hex
   encodings cost a decimal render per field and doubled every digest;
   these bodies are both smaller and allocation-cheaper, and byte
   stability across deployments is by construction (no formatting
   involved). *)

(* Leading tag byte of each signed body kind. *)
let tag_update = 0x01

let tag_summary = 0x02

let tag_pp_digest = 0x03

let tag_po_request = 0x04

let tag_po_ack = 0x05

let tag_pre_prepare = 0x06

let tag_prepare = 0x07

let tag_commit = 0x08

let tag_suspect = 0x09

let tag_origin_reset = 0x0A

let tag_vc_report = 0x0B

let tag_client_reply = 0x0C

(* 0x0D is reserved for Order_cert, which carries no signed body of its
   own: a commit certificate is authenticated by its constituents (the
   leader's pre-prepare authenticator plus a quorum of commit
   authenticators, each already domain-separated by its own tag). *)

module Update = struct
  type t = {
    client : string; (* signing identity of the submitting client *)
    client_seq : int;
    op : string; (* application-opaque serialized operation *)
    signature : Crypto.Signature.t;
  }

  let write_body b ~client ~client_seq ~op =
    Wire.w_u8 b tag_update;
    Wire.w_str b client;
    Wire.w_int b client_seq;
    Wire.w_str b op

  let encode_body ~client ~client_seq ~op =
    Wire.encode ~size_hint:(32 + String.length client + String.length op) (fun b ->
        write_body b ~client ~client_seq ~op)

  let create ~keypair ~client_seq ~op =
    let client = Crypto.Signature.identity keypair in
    {
      client;
      client_seq;
      op;
      signature = Crypto.Signature.sign keypair (encode_body ~client ~client_seq ~op);
    }

  let encode u = encode_body ~client:u.client ~client_seq:u.client_seq ~op:u.op

  let write b u = write_body b ~client:u.client ~client_seq:u.client_seq ~op:u.op

  let verify ks u = Crypto.Signature.verify ks ~signer:u.client (encode u) u.signature

  let digest u = Crypto.Sha256.digest (encode u)

  let size u = 80 + String.length u.op + Crypto.Signature.size_bytes

  let key u = (u.client, u.client_seq)

  let pp ppf u = Fmt.pf ppf "%s#%d" u.client u.client_seq
end

(* A replica's cumulative preorder vector: aru.(i) is the highest
   sequence s such that all of origin i's preorder slots 1..s hold
   certified updates at this replica. *)
type summary = { sum_rep : int; aru : int array; sum_sig : Crypto.Auth.t }

let write_summary_body b ~sum_rep ~aru =
  Wire.w_u8 b tag_summary;
  Wire.w_int b sum_rep;
  Wire.w_int_array b aru

let encode_summary_body ~sum_rep ~aru =
  Wire.encode ~size_hint:(16 + (8 * Array.length aru)) (fun b ->
      write_summary_body b ~sum_rep ~aru)

let encode_summary s = encode_summary_body ~sum_rep:s.sum_rep ~aru:s.aru

(* Replica signing identities are interned: rendering "replica-%d" per
   verification was measurable on the hot path. *)
let replica_identity =
  let memo = Hashtbl.create 16 in
  fun rep ->
    match Hashtbl.find_opt memo rep with
    | Some id -> id
    | None ->
        let id = Printf.sprintf "replica-%d" rep in
        Hashtbl.replace memo rep id;
        id

let verify_summary ks s =
  Crypto.Auth.verify ks ~signer:(replica_identity s.sum_rep) (encode_summary s) s.sum_sig

(* The proof matrix carried by a pre-prepare: the freshest summary the
   leader holds from each replica (None until one is received). Only the
   summary *bodies* enter the matrix encoding — each summary's own
   authenticator is verified separately — so the matrix digest is
   canonical regardless of whether summaries arrived direct or batched. *)
type matrix = summary option array

let write_matrix b (m : matrix) =
  Wire.w_u32 b (Array.length m);
  Array.iter
    (function
      | None -> Wire.w_bool b false
      | Some s ->
          Wire.w_bool b true;
          write_summary_body b ~sum_rep:s.sum_rep ~aru:s.aru)
    m

let encode_matrix (m : matrix) =
  Wire.encode ~size_hint:(8 + (Array.length m * 96)) (fun b -> write_matrix b m)

let matrix_digest ~view ~pp_seq m =
  let ctx = Crypto.Sha256.init () in
  let b = Buffer.create (32 + (Array.length m * 96)) in
  Wire.w_u8 b tag_pp_digest;
  Wire.w_int b view;
  Wire.w_int b pp_seq;
  write_matrix b m;
  Crypto.Sha256.feed_bytes ctx (Buffer.to_bytes b);
  Crypto.Sha256.finalize ctx

(* A prepared certificate carried in view-change reports, enough for the
   new leader to re-propose the same pre-prepare content. *)
type prepared_cert = { pc_seq : int; pc_view : int; pc_matrix : matrix }

type t =
  | Update_msg of Update.t
  | Po_request of { origin : int; po_seq : int; update : Update.t; po_sig : Crypto.Auth.t }
  | Po_ack of {
      acker : int;
      ack_origin : int;
      ack_po_seq : int;
      ack_digest : Crypto.Sha256.digest;
      ack_sig : Crypto.Auth.t;
    }
  | Po_summary of summary
  | Pre_prepare of { pp_view : int; pp_seq : int; pp_matrix : matrix; pp_sig : Crypto.Auth.t }
  | Prepare of {
      prep_rep : int;
      prep_view : int;
      prep_seq : int;
      prep_digest : Crypto.Sha256.digest;
      prep_sig : Crypto.Auth.t;
    }
  | Commit of {
      com_rep : int;
      com_view : int;
      com_seq : int;
      com_digest : Crypto.Sha256.digest;
      com_sig : Crypto.Auth.t;
    }
  | Suspect_leader of { sus_rep : int; sus_view : int; sus_sig : Crypto.Auth.t }
  | Vc_report of {
      vc_rep : int;
      vc_view : int; (* the view being installed *)
      vc_max_ordered : int;
      vc_prepared : prepared_cert list;
      vc_sig : Crypto.Auth.t;
    }
  | Origin_reset of { or_rep : int; or_new_start : int; or_sig : Crypto.Auth.t }
  | Recon_floor of { rf_origin : int; rf_new_start : int; rf_sig : Crypto.Auth.t }
  | Recon_request of { rr_rep : int; rr_origin : int; rr_po_seq : int }
  | Recon_reply of { rp_rep : int; rp_origin : int; rp_po_seq : int; rp_update : Update.t }
  | Order_cert of {
      oc_rep : int; (* relaying replica (untrusted; the cert is self-certifying) *)
      oc_seq : int;
      oc_view : int;
      oc_matrix : matrix;
      oc_pp_sig : Crypto.Auth.t; (* leader's pre-prepare authenticator *)
      oc_commits : (int * Crypto.Auth.t) list; (* quorum of commit authenticators *)
    }
  | Catchup_request of {
      cu_rep : int;
      cu_from : int; (* next exec seq wanted *)
      cu_next_pp : int; (* requester's ordering cursor: serve commit certs from here *)
    }
  | Catchup_reply of {
      cr_rep : int;
      cr_entries : (int * Update.t) list; (* exec_seq, update *)
      cr_upto : int; (* responder's max exec seq *)
      cr_behind_log : bool; (* requested range no longer in the log *)
      cr_next_exec_pp : int; (* responder's ordering cursor ... *)
      cr_cursor : int array; (* ... and per-origin execution cursor *)
    }
  | Client_reply of {
      crep_rep : int;
      crep_client : string;
      crep_client_seq : int;
      crep_exec_seq : int;
      crep_sig : Crypto.Auth.t;
    }

type Netbase.Packet.payload += Prime_msg of t

(* Canonical byte strings covered by each message's authenticator. *)
let encode_po_request ~origin ~po_seq update =
  Wire.encode ~size_hint:(64 + String.length update.Update.op) (fun b ->
      Wire.w_u8 b tag_po_request;
      Wire.w_int b origin;
      Wire.w_int b po_seq;
      Update.write b update)

let encode_po_ack ~acker ~origin ~po_seq ~digest =
  Wire.encode ~size_hint:64 (fun b ->
      Wire.w_u8 b tag_po_ack;
      Wire.w_int b acker;
      Wire.w_int b origin;
      Wire.w_int b po_seq;
      Wire.w_digest b digest)

let encode_pre_prepare ~view ~pp_seq matrix =
  Wire.encode ~size_hint:(32 + (Array.length matrix * 96)) (fun b ->
      Wire.w_u8 b tag_pre_prepare;
      Wire.w_int b view;
      Wire.w_int b pp_seq;
      write_matrix b matrix)

let encode_order_vote tag ~rep ~view ~pp_seq ~digest =
  Wire.encode ~size_hint:64 (fun b ->
      Wire.w_u8 b tag;
      Wire.w_int b rep;
      Wire.w_int b view;
      Wire.w_int b pp_seq;
      Wire.w_digest b digest)

let encode_prepare ~rep ~view ~pp_seq ~digest =
  encode_order_vote tag_prepare ~rep ~view ~pp_seq ~digest

let encode_commit ~rep ~view ~pp_seq ~digest =
  encode_order_vote tag_commit ~rep ~view ~pp_seq ~digest

let encode_suspect ~rep ~view =
  Wire.encode ~size_hint:24 (fun b ->
      Wire.w_u8 b tag_suspect;
      Wire.w_int b rep;
      Wire.w_int b view)

(* Signed by the recovering origin itself: "my preorder sequence restarts
   at new_start; everything below that I never completed is void". *)
let encode_origin_reset ~rep ~new_start =
  Wire.encode ~size_hint:24 (fun b ->
      Wire.w_u8 b tag_origin_reset;
      Wire.w_int b rep;
      Wire.w_int b new_start)

let write_prepared_cert b c =
  Wire.w_int b c.pc_seq;
  Wire.w_int b c.pc_view;
  write_matrix b c.pc_matrix

let encode_vc_report ~rep ~view ~max_ordered ~prepared =
  Wire.encode ~size_hint:(48 + (List.length prepared * 128)) (fun b ->
      Wire.w_u8 b tag_vc_report;
      Wire.w_int b rep;
      Wire.w_int b view;
      Wire.w_int b max_ordered;
      Wire.w_u32 b (List.length prepared);
      List.iter (write_prepared_cert b) prepared)

let encode_client_reply ~rep ~client ~client_seq ~exec_seq =
  Wire.encode ~size_hint:(48 + String.length client) (fun b ->
      Wire.w_u8 b tag_client_reply;
      Wire.w_int b rep;
      Wire.w_str b client;
      Wire.w_int b client_seq;
      Wire.w_int b exec_seq)

(* Approximate wire sizes (bytes) for traffic modelling. *)
let summary_size s = 24 + (8 * Array.length s.aru) + Crypto.Auth.size_bytes s.sum_sig

let matrix_size m =
  Array.fold_left
    (fun acc entry -> acc + match entry with None -> 1 | Some s -> 1 + summary_size s)
    4 m

(* The cluster-size parameter is retained for interface stability; sizes
   are now derived from the actual matrices and authenticators. *)
let size _config_n = function
  | Update_msg u -> Update.size u
  | Po_request { update; po_sig; _ } -> Update.size update + 48 + Crypto.Auth.size_bytes po_sig
  | Po_ack { ack_sig; _ } -> 80 + Crypto.Auth.size_bytes ack_sig
  | Po_summary s -> 16 + summary_size s
  | Pre_prepare { pp_matrix; pp_sig; _ } ->
      48 + matrix_size pp_matrix + Crypto.Auth.size_bytes pp_sig
  | Prepare { prep_sig; _ } -> 80 + Crypto.Auth.size_bytes prep_sig
  | Commit { com_sig; _ } -> 80 + Crypto.Auth.size_bytes com_sig
  | Suspect_leader { sus_sig; _ } -> 48 + Crypto.Auth.size_bytes sus_sig
  | Vc_report { vc_prepared; vc_sig; _ } ->
      64 + Crypto.Auth.size_bytes vc_sig
      + List.fold_left (fun acc c -> acc + 16 + matrix_size c.pc_matrix) 0 vc_prepared
  | Origin_reset { or_sig; _ } -> 48 + Crypto.Auth.size_bytes or_sig
  | Recon_floor { rf_sig; _ } -> 48 + Crypto.Auth.size_bytes rf_sig
  | Recon_request _ -> 48
  | Recon_reply { rp_update; _ } -> 48 + Update.size rp_update
  | Order_cert { oc_matrix; oc_pp_sig; oc_commits; _ } ->
      48 + matrix_size oc_matrix
      + Crypto.Auth.size_bytes oc_pp_sig
      + List.fold_left (fun acc (_, a) -> acc + 16 + Crypto.Auth.size_bytes a) 0 oc_commits
  | Catchup_request _ -> 48
  | Catchup_reply { cr_entries; cr_cursor; _ } ->
      48 + (8 * Array.length cr_cursor)
      + List.fold_left (fun acc (_, u) -> acc + 16 + Update.size u) 0 cr_entries
  | Client_reply { crep_sig; _ } -> 80 + Crypto.Auth.size_bytes crep_sig

let describe = function
  | Update_msg u -> Printf.sprintf "update %s#%d" u.Update.client u.Update.client_seq
  | Po_request { origin; po_seq; _ } -> Printf.sprintf "po-request (%d,%d)" origin po_seq
  | Po_ack { acker; ack_origin; ack_po_seq; _ } ->
      Printf.sprintf "po-ack by %d for (%d,%d)" acker ack_origin ack_po_seq
  | Po_summary s -> Printf.sprintf "po-summary from %d" s.sum_rep
  | Pre_prepare { pp_view; pp_seq; _ } -> Printf.sprintf "pre-prepare v%d #%d" pp_view pp_seq
  | Prepare { prep_rep; prep_seq; _ } -> Printf.sprintf "prepare by %d #%d" prep_rep prep_seq
  | Commit { com_rep; com_seq; _ } -> Printf.sprintf "commit by %d #%d" com_rep com_seq
  | Suspect_leader { sus_rep; sus_view; _ } ->
      Printf.sprintf "suspect v%d by %d" sus_view sus_rep
  | Vc_report { vc_rep; vc_view; _ } -> Printf.sprintf "vc-report v%d by %d" vc_view vc_rep
  | Origin_reset { or_rep; or_new_start; _ } ->
      Printf.sprintf "origin-reset %d -> %d" or_rep or_new_start
  | Recon_floor { rf_origin; rf_new_start; _ } ->
      Printf.sprintf "recon-floor %d -> %d" rf_origin rf_new_start
  | Recon_request { rr_rep; rr_origin; rr_po_seq } ->
      Printf.sprintf "recon-request by %d for (%d,%d)" rr_rep rr_origin rr_po_seq
  | Recon_reply { rp_origin; rp_po_seq; _ } ->
      Printf.sprintf "recon-reply for (%d,%d)" rp_origin rp_po_seq
  | Order_cert { oc_rep; oc_seq; oc_view; _ } ->
      Printf.sprintf "order-cert v%d #%d via %d" oc_view oc_seq oc_rep
  | Catchup_request { cu_rep; cu_from; _ } ->
      Printf.sprintf "catchup-request by %d from %d" cu_rep cu_from
  | Catchup_reply { cr_upto; _ } -> Printf.sprintf "catchup-reply upto %d" cr_upto
  | Client_reply { crep_client; crep_client_seq; _ } ->
      Printf.sprintf "client-reply %s#%d" crep_client crep_client_seq
