(** Prime replication parameters: n = 3f + 2k + 1 replicas tolerate f
    intrusions while k replicas undergo proactive recovery, with quorums
    of 2f + k + 1. *)

type t = {
  f : int; (* tolerated intrusions *)
  k : int; (* simultaneous proactive recoveries *)
  n : int; (* 3f + 2k + 1 *)
  quorum : int; (* 2f + k + 1 *)
  delta_pp : float; (* pre-prepare emission interval while updates flow *)
  summary_period : float; (* PO-summary emission interval when aru changed *)
  heartbeat_period : float; (* idle-leader pre-prepare heartbeat *)
  tat_check_period : float; (* suspect-leader evaluation interval *)
  tat_allowance : float; (* acceptable turnaround beyond network delay *)
  reconcile_period : float; (* missing-update re-request interval *)
  log_retention : int; (* ordered-log entries kept for catchup *)
  batch_signing : bool; (* aggregate outbound ack/prepare/commit signatures *)
  batch_window : float; (* accumulation window before a batch flush *)
  sig_cache_capacity : int; (* verified-signature cache entries (0 disables) *)
  route_cache : bool; (* Spines: cache next-hop tables per view epoch *)
  coalescing : bool; (* Spines: pack same-neighbor payloads into one frame *)
  egress_capacity : int; (* Spines: per-neighbor egress queue bound *)
  coalesce_window : float; (* Spines: egress flush window, seconds *)
  durable_store : bool; (* WAL + authenticated checkpoints per replica *)
  checkpoint_interval : int; (* executions between durable checkpoints *)
  wal_segment_size : int; (* bytes per WAL segment before rotation *)
  fsync_every : int; (* WAL appends between durability points *)
}

(** Raises [Invalid_argument] for f < 1 or k < 0 (and on out-of-range
    batching/egress knobs). *)
val create :
  ?f:int ->
  ?k:int ->
  ?delta_pp:float ->
  ?summary_period:float ->
  ?heartbeat_period:float ->
  ?tat_check_period:float ->
  ?tat_allowance:float ->
  ?reconcile_period:float ->
  ?log_retention:int ->
  ?batch_signing:bool ->
  ?batch_window:float ->
  ?sig_cache_capacity:int ->
  ?route_cache:bool ->
  ?coalescing:bool ->
  ?egress_capacity:int ->
  ?coalesce_window:float ->
  ?durable_store:bool ->
  ?checkpoint_interval:int ->
  ?wal_segment_size:int ->
  ?fsync_every:int ->
  unit ->
  t

(** The 2017 red-team configuration: 4 replicas (f = 1, k = 0). *)
val red_team : unit -> t

(** The 2018 power-plant configuration: 6 replicas (f = 1, k = 1). *)
val power_plant : unit -> t

val replica_ids : t -> int list

val leader_of_view : t -> int -> int

val pp : Format.formatter -> t -> unit
